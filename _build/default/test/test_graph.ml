(* Graph engine: CSR structure, Dijkstra against a Bellman–Ford oracle,
   A*/bidirectional/landmark/arc-flag equivalence with Dijkstra. *)

module G = Psp_graph.Graph

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* small connected test graph:
       0 --1.0-- 1 --1.0-- 2
       |                   |
      5.0                 1.0
       |                   |
       3 ------1.0-------- 4
   plus a directed shortcut 0 -> 4 with weight 3.5 *)
let diamond () =
  let b = G.Builder.create () in
  let coords = [ (0.0, 0.0); (1.0, 0.0); (2.0, 0.0); (0.0, -1.0); (2.0, -1.0) ] in
  List.iter (fun (x, y) -> ignore (G.Builder.add_node b ~x ~y)) coords;
  G.Builder.add_undirected b 0 1 1.0;
  G.Builder.add_undirected b 1 2 1.0;
  G.Builder.add_undirected b 0 3 5.0;
  G.Builder.add_undirected b 2 4 1.0;
  G.Builder.add_undirected b 3 4 1.0;
  G.Builder.add_edge b 0 4 3.5;
  G.Builder.freeze b

(* random connected graph generator for property tests: a random tree
   plus extra random edges, generic weights *)
let random_graph_gen =
  QCheck2.Gen.(
    let* n = int_range 2 40 in
    let* extra = int_range 0 60 in
    let* seed = int_range 0 10_000 in
    return (n, extra, seed))

let build_random (n, extra, seed) =
  let rng = Psp_util.Rng.create seed in
  let b = G.Builder.create () in
  for _ = 1 to n do
    ignore
      (G.Builder.add_node b ~x:(Psp_util.Rng.float rng 100.0)
         ~y:(Psp_util.Rng.float rng 100.0))
  done;
  for v = 1 to n - 1 do
    let u = Psp_util.Rng.int rng v in
    G.Builder.add_undirected b u v (0.5 +. Psp_util.Rng.float rng 10.0)
  done;
  for _ = 1 to extra do
    let u = Psp_util.Rng.int rng n and v = Psp_util.Rng.int rng n in
    if u <> v then G.Builder.add_edge b u v (0.5 +. Psp_util.Rng.float rng 10.0)
  done;
  G.Builder.freeze b

(* O(VE) Bellman–Ford reference *)
let bellman_ford g source =
  let n = G.node_count g in
  let dist = Array.make n infinity in
  dist.(source) <- 0.0;
  for _ = 1 to n do
    G.iter_edges g (fun e ->
        if dist.(e.G.src) +. e.G.weight < dist.(e.G.dst) then
          dist.(e.G.dst) <- dist.(e.G.src) +. e.G.weight)
  done;
  dist

let close a b = (a = infinity && b = infinity) || Float.abs (a -. b) < 1e-6

(* ------------------------------------------------------------------ *)

let test_builder_csr () =
  let g = diamond () in
  Alcotest.(check int) "nodes" 5 (G.node_count g);
  Alcotest.(check int) "edges" 11 (G.edge_count g);
  Alcotest.(check int) "deg 0" 3 (G.out_degree g 0);
  let targets = G.fold_out g 0 (fun acc e -> e.G.dst :: acc) [] in
  Alcotest.(check int) "three out-edges of 0" 3 (List.length targets);
  List.iter
    (fun t -> Alcotest.(check bool) "expected target" true (List.mem t [ 1; 3; 4 ]))
    targets

let test_builder_validation () =
  let b = G.Builder.create () in
  ignore (G.Builder.add_node b ~x:0.0 ~y:0.0);
  Alcotest.check_raises "unknown endpoint"
    (Invalid_argument "Graph.Builder.add_edge: unknown endpoint") (fun () ->
      G.Builder.add_edge b 0 1 1.0);
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Graph.Builder.add_edge: weight must be positive") (fun () ->
      G.Builder.add_edge b 0 0 0.0)

let test_iter_in_matches_out () =
  let g = diamond () in
  let in_edges = ref [] in
  G.iter_in g 4 (fun e -> in_edges := (e.G.src, e.G.dst) :: !in_edges);
  List.iter (fun (_, d) -> Alcotest.(check int) "incoming ends at 4" 4 d) !in_edges;
  Alcotest.(check int) "in-degree of 4" 3 (List.length !in_edges)

let test_reverse () =
  let g = diamond () in
  let r = G.reverse g in
  Alcotest.(check int) "same edges" (G.edge_count g) (G.edge_count r);
  (* directed shortcut 0->4 becomes 4->0 *)
  let has_40 = G.fold_out r 4 (fun acc e -> acc || e.G.dst = 0) false in
  Alcotest.(check bool) "flipped shortcut" true has_40

let test_euclidean_and_bbox () =
  let g = diamond () in
  Alcotest.(check (float 1e-9)) "euclid" 2.0 (G.euclidean g 0 2);
  let x0, y0, x1, y1 = G.bounding_box g in
  Alcotest.(check (float 0.0)) "min x" 0.0 x0;
  Alcotest.(check (float 0.0)) "min y" (-1.0) y0;
  Alcotest.(check (float 0.0)) "max x" 2.0 x1;
  Alcotest.(check (float 0.0)) "max y" 0.0 y1;
  Alcotest.(check int) "nearest" 4 (G.nearest_node g ~x:1.9 ~y:(-0.9))

let test_subgraph_of_edges () =
  let g = diamond () in
  (* keep only the top chain 0-1-2 *)
  let keep =
    G.fold_out g 0 (fun acc e -> if e.G.dst = 1 then e.G.id :: acc else acc) []
    @ G.fold_out g 1 (fun acc e -> if e.G.dst = 2 then e.G.id :: acc else acc) []
  in
  let sub = G.subgraph_of_edges g keep in
  Alcotest.(check int) "edges kept" 2 (G.edge_count sub);
  Alcotest.(check (float 1e-6)) "path via chain" 2.0 (Psp_graph.Dijkstra.distance sub 0 2);
  Alcotest.(check bool) "no path back" true (Psp_graph.Dijkstra.distance sub 2 0 = infinity)

(* ------------------------------------------------------------------ *)
(* Dijkstra *)

let test_dijkstra_diamond () =
  let g = diamond () in
  Alcotest.(check (float 1e-9)) "0->2" 2.0 (Psp_graph.Dijkstra.distance g 0 2);
  Alcotest.(check (float 1e-9)) "0->4 via chain beats shortcut" 3.0
    (Psp_graph.Dijkstra.distance g 0 4);
  Alcotest.(check (float 1e-9)) "0->3" 4.0 (Psp_graph.Dijkstra.distance g 0 3);
  Alcotest.(check (float 0.0)) "self" 0.0 (Psp_graph.Dijkstra.distance g 2 2)

let dijkstra_vs_bellman_ford =
  qtest "dijkstra matches bellman-ford" random_graph_gen (fun spec ->
      let g = build_random spec in
      let spt = Psp_graph.Dijkstra.tree g ~source:0 in
      let reference = bellman_ford g 0 in
      Array.for_all2 close spt.Psp_graph.Dijkstra.dist reference)

let dijkstra_path_valid =
  qtest "dijkstra paths are valid and cost-consistent" random_graph_gen (fun spec ->
      let g = build_random spec in
      let n = G.node_count g in
      let ok = ref true in
      for t = 0 to min (n - 1) 10 do
        match Psp_graph.Dijkstra.shortest_path g 0 t with
        | None -> ()
        | Some p ->
            if not (Psp_graph.Path.is_valid g p) then ok := false;
            if not (close (Psp_graph.Path.cost p) (Psp_graph.Dijkstra.distance g 0 t)) then
              ok := false
      done;
      !ok)

let test_dijkstra_tree_until () =
  let g = diamond () in
  let spt = Psp_graph.Dijkstra.tree_until g ~source:0 ~targets:[ 1 ] in
  Alcotest.(check (float 1e-9)) "target settled" 1.0 spt.Psp_graph.Dijkstra.dist.(1);
  Alcotest.(check bool) "early stop" true (spt.Psp_graph.Dijkstra.settled <= 3)

let test_dijkstra_restricted () =
  let g = diamond () in
  (* forbid node 1: 0->2 must go 0->4 (shortcut) ->2 *)
  let allowed v = v <> 1 in
  match Psp_graph.Dijkstra.restricted g ~allowed ~source:0 ~target:2 with
  | None -> Alcotest.fail "expected a path"
  | Some p -> Alcotest.(check (float 1e-9)) "detour cost" 4.5 (Psp_graph.Path.cost p)

let test_dijkstra_unreachable () =
  let b = G.Builder.create () in
  ignore (G.Builder.add_node b ~x:0.0 ~y:0.0);
  ignore (G.Builder.add_node b ~x:1.0 ~y:0.0);
  let g = G.Builder.freeze b in
  Alcotest.(check bool) "unreachable" true (Psp_graph.Dijkstra.distance g 0 1 = infinity);
  Alcotest.(check bool) "no path" true (Psp_graph.Dijkstra.shortest_path g 0 1 = None)

(* ------------------------------------------------------------------ *)
(* A* *)

let astar_equals_dijkstra =
  qtest "euclidean A* finds optimal costs" random_graph_gen (fun spec ->
      let g = build_random spec in
      let n = G.node_count g in
      let ok = ref true in
      for t = 0 to min (n - 1) 8 do
        let d = Psp_graph.Dijkstra.distance g 0 t in
        let a = Psp_graph.Astar.search_euclidean g ~source:0 ~target:t in
        (match (a.Psp_graph.Astar.path, d = infinity) with
        | None, true -> ()
        | Some p, false -> if not (close (Psp_graph.Path.cost p) d) then ok := false
        | _ -> ok := false)
      done;
      !ok)

let test_astar_visited_order () =
  let g = diamond () in
  let order =
    Psp_graph.Astar.visited_order g
      ~heuristic:(Psp_graph.Astar.euclidean_heuristic g ~target:2)
      ~source:0 ~target:2
  in
  Alcotest.(check int) "starts at source" 0 (List.hd order);
  Alcotest.(check int) "ends at target" 2 (List.nth order (List.length order - 1))

(* ------------------------------------------------------------------ *)
(* Bidirectional *)

let bidirectional_equals_dijkstra =
  qtest "bidirectional matches dijkstra" random_graph_gen (fun spec ->
      let g = build_random spec in
      let n = G.node_count g in
      let ok = ref true in
      for t = 0 to min (n - 1) 8 do
        let d = Psp_graph.Dijkstra.distance g 0 t in
        let b = Psp_graph.Bidirectional.distance g 0 t in
        if not (close d b) then ok := false
      done;
      !ok)

let bidirectional_path_valid =
  qtest "bidirectional paths are valid" random_graph_gen (fun spec ->
      let g = build_random spec in
      let n = G.node_count g in
      let ok = ref true in
      for t = 0 to min (n - 1) 6 do
        match
          (Psp_graph.Bidirectional.search g ~source:0 ~target:t).Psp_graph.Bidirectional.path
        with
        | None -> ()
        | Some p ->
            if not (Psp_graph.Path.is_valid g p) then ok := false;
            if Psp_graph.Path.source p <> 0 || Psp_graph.Path.target p <> t then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Landmark (ALT) *)

let test_landmark_admissible_and_exact () =
  let g = build_random (30, 40, 77) in
  let lm = Psp_graph.Landmark.select_farthest g ~count:4 ~seed:3 in
  Alcotest.(check int) "anchors" 4 (Psp_graph.Landmark.anchor_count lm);
  for t = 0 to 9 do
    let h = Psp_graph.Landmark.heuristic lm ~target:t in
    for v = 0 to 29 do
      let d = Psp_graph.Dijkstra.distance g v t in
      if d < infinity then Alcotest.(check bool) "admissible" true (h v <= d +. 1e-6)
    done;
    let a = Psp_graph.Astar.search g ~heuristic:h ~source:5 ~target:t in
    let d = Psp_graph.Dijkstra.distance g 5 t in
    match a.Psp_graph.Astar.path with
    | None -> Alcotest.(check bool) "both unreachable" true (d = infinity)
    | Some p -> Alcotest.(check bool) "optimal" true (close (Psp_graph.Path.cost p) d)
  done

let test_landmark_vector_bytes () =
  let g = diamond () in
  let lm = Psp_graph.Landmark.select_farthest g ~count:3 ~seed:1 in
  Alcotest.(check int) "8 bytes per anchor" 24 (Psp_graph.Landmark.vector_bytes lm)

(* ------------------------------------------------------------------ *)
(* Arc-flags *)

let grid_regions g cells =
  (* partition nodes into [cells] vertical stripes by x coordinate *)
  let x0, _, x1, _ = G.bounding_box g in
  let width = (x1 -. x0) /. float_of_int cells in
  Array.init (G.node_count g) (fun v ->
      min (cells - 1) (max 0 (int_of_float ((G.x g v -. x0) /. Float.max width 1e-9))))

let arcflag_exact =
  qtest ~count:30 "arc-flag query matches dijkstra" random_graph_gen (fun spec ->
      let g = build_random spec in
      let region_of = grid_regions g 4 in
      let af = Psp_graph.Arcflag.compute g ~region_of ~region_count:4 in
      let n = G.node_count g in
      let ok = ref true in
      for t = 0 to min (n - 1) 8 do
        let d = Psp_graph.Dijkstra.distance g 0 t in
        let r = Psp_graph.Arcflag.query af g ~region_of ~source:0 ~target:t in
        (match (r.Psp_graph.Arcflag.path, d = infinity) with
        | None, true -> ()
        | Some p, false -> if not (close (Psp_graph.Path.cost p) d) then ok := false
        | _ -> ok := false)
      done;
      !ok)

let test_arcflag_internal_edges_flagged () =
  let g = build_random (20, 20, 5) in
  let region_of = grid_regions g 3 in
  let af = Psp_graph.Arcflag.compute g ~region_of ~region_count:3 in
  G.iter_edges g (fun e ->
      if region_of.(e.G.src) = region_of.(e.G.dst) then
        Alcotest.(check bool) "internal edge has own-region flag" true
          (Psp_graph.Arcflag.flag af ~edge:e.G.id ~region:region_of.(e.G.dst)))

let test_arcflag_prunes () =
  let g = build_random (40, 30, 9) in
  let region_of = grid_regions g 4 in
  let af = Psp_graph.Arcflag.compute g ~region_of ~region_count:4 in
  Alcotest.(check int) "flag bytes" 1 (Psp_graph.Arcflag.flag_bytes_per_edge af);
  let pruned = ref false in
  G.iter_edges g (fun e ->
      for r = 0 to 3 do
        if not (Psp_graph.Arcflag.flag af ~edge:e.G.id ~region:r) then pruned := true
      done);
  Alcotest.(check bool) "some pruning happens" true !pruned

(* ------------------------------------------------------------------ *)
(* Path *)

let test_path_make_and_validate () =
  let g = diamond () in
  let e01 = G.fold_out g 0 (fun acc e -> if e.G.dst = 1 then Some e.G.id else acc) None in
  let e12 = G.fold_out g 1 (fun acc e -> if e.G.dst = 2 then Some e.G.id else acc) None in
  let p = Psp_graph.Path.make g ~edges:[ Option.get e01; Option.get e12 ] in
  Alcotest.(check int) "source" 0 (Psp_graph.Path.source p);
  Alcotest.(check int) "target" 2 (Psp_graph.Path.target p);
  Alcotest.(check int) "hops" 2 (Psp_graph.Path.hop_count p);
  Alcotest.(check (float 1e-9)) "cost" 2.0 (Psp_graph.Path.cost p);
  Alcotest.(check bool) "valid" true (Psp_graph.Path.is_valid g p);
  Alcotest.check_raises "non-contiguous"
    (Invalid_argument "Path.make: edges are not contiguous") (fun () ->
      ignore (Psp_graph.Path.make g ~edges:[ Option.get e12; Option.get e01 ]))

let test_path_trivial () =
  let p = Psp_graph.Path.trivial 7 in
  Alcotest.(check int) "source=target" 7 (Psp_graph.Path.source p);
  Alcotest.(check (float 0.0)) "zero cost" 0.0 (Psp_graph.Path.cost p);
  Alcotest.(check int) "no hops" 0 (Psp_graph.Path.hop_count p)

let () =
  Alcotest.run "graph"
    [ ( "structure",
        [ Alcotest.test_case "builder/CSR" `Quick test_builder_csr;
          Alcotest.test_case "validation" `Quick test_builder_validation;
          Alcotest.test_case "iter_in" `Quick test_iter_in_matches_out;
          Alcotest.test_case "reverse" `Quick test_reverse;
          Alcotest.test_case "euclid/bbox/nearest" `Quick test_euclidean_and_bbox;
          Alcotest.test_case "subgraph of edges" `Quick test_subgraph_of_edges ] );
      ( "dijkstra",
        [ Alcotest.test_case "diamond" `Quick test_dijkstra_diamond;
          dijkstra_vs_bellman_ford;
          dijkstra_path_valid;
          Alcotest.test_case "tree_until" `Quick test_dijkstra_tree_until;
          Alcotest.test_case "restricted" `Quick test_dijkstra_restricted;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable ] );
      ( "astar",
        [ astar_equals_dijkstra;
          Alcotest.test_case "visited order" `Quick test_astar_visited_order ] );
      ( "bidirectional", [ bidirectional_equals_dijkstra; bidirectional_path_valid ] );
      ( "landmark",
        [ Alcotest.test_case "admissible and exact" `Slow test_landmark_admissible_and_exact;
          Alcotest.test_case "vector bytes" `Quick test_landmark_vector_bytes ] );
      ( "arcflag",
        [ arcflag_exact;
          Alcotest.test_case "internal edges flagged" `Quick test_arcflag_internal_edges_flagged;
          Alcotest.test_case "prunes" `Quick test_arcflag_prunes ] );
      ( "path",
        [ Alcotest.test_case "make/validate" `Quick test_path_make_and_validate;
          Alcotest.test_case "trivial" `Quick test_path_trivial ] ) ]
