(* Storage engine: page files and the no-straddle record packer. *)

module PF = Psp_storage.Page_file
module Packer = Psp_storage.Packer

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Page_file *)

let test_page_file_basics () =
  let f = PF.create ~name:"t" ~page_size:64 in
  Alcotest.(check string) "name" "t" (PF.name f);
  Alcotest.(check int) "page size" 64 (PF.page_size f);
  Alcotest.(check int) "empty" 0 (PF.page_count f);
  let p0 = PF.append f (Bytes.of_string "hello") in
  let p1 = PF.append_blank f in
  Alcotest.(check int) "page 0" 0 p0;
  Alcotest.(check int) "page 1" 1 p1;
  Alcotest.(check int) "count" 2 (PF.page_count f);
  Alcotest.(check int) "size" 128 (PF.size_bytes f)

let test_page_file_padding () =
  let f = PF.create ~name:"t" ~page_size:8 in
  ignore (PF.append f (Bytes.of_string "abc"));
  let page = PF.read f 0 in
  Alcotest.(check int) "padded length" 8 (Bytes.length page);
  Alcotest.(check string) "payload preserved" "abc" (Bytes.to_string (PF.payload f 0));
  Alcotest.(check int) "payload length" 3 (PF.payload_length f 0);
  Alcotest.(check char) "padding zero" '\000' (Bytes.get page 7)

let test_page_file_bounds () =
  let f = PF.create ~name:"t" ~page_size:8 in
  Alcotest.check_raises "oversized"
    (Invalid_argument "Page_file.append(t): payload 9 exceeds page size 8") (fun () ->
      ignore (PF.append f (Bytes.make 9 'x')));
  Alcotest.check_raises "read oob" (Invalid_argument "Page_file.read(t): page 0 out of range")
    (fun () -> ignore (PF.read f 0))

let test_page_file_utilization () =
  let f = PF.create ~name:"t" ~page_size:10 in
  ignore (PF.append f (Bytes.make 10 'x'));
  ignore (PF.append f (Bytes.make 5 'x'));
  Alcotest.(check (float 1e-9)) "utilization" 0.75 (PF.utilization f);
  Alcotest.(check (float 0.0)) "empty file utilization" 0.0
    (PF.utilization (PF.create ~name:"e" ~page_size:10))

let test_page_file_iter () =
  let f = PF.create ~name:"t" ~page_size:4 in
  ignore (PF.append f (Bytes.of_string "a"));
  ignore (PF.append f (Bytes.of_string "b"));
  let seen = ref [] in
  PF.iter_pages f (fun i page -> seen := (i, Bytes.get page 0) :: !seen);
  Alcotest.(check (list (pair int char))) "iterated" [ (1, 'b'); (0, 'a') ] !seen

(* ------------------------------------------------------------------ *)
(* Packer *)

let test_packer_no_straddle () =
  let p = Packer.create ~page_size:10 in
  let a = Packer.add p (Bytes.make 6 'a') in
  let b = Packer.add p (Bytes.make 6 'b') in
  (* b does not fit after a: must start page 1, not straddle *)
  Alcotest.(check int) "a page" 0 a.Packer.first_page;
  Alcotest.(check int) "b page" 1 b.Packer.first_page;
  Alcotest.(check int) "b offset" 0 b.Packer.offset;
  Alcotest.(check int) "b span" 1 b.Packer.page_span

let test_packer_fills_free_space () =
  let p = Packer.create ~page_size:10 in
  ignore (Packer.add p (Bytes.make 4 'a'));
  let b = Packer.add p (Bytes.make 6 'b') in
  Alcotest.(check int) "same page" 0 b.Packer.first_page;
  Alcotest.(check int) "offset after a" 4 b.Packer.offset;
  Alcotest.(check int) "free" 0 (Packer.current_page_free p)

let test_packer_oversized () =
  let p = Packer.create ~page_size:10 in
  ignore (Packer.add p (Bytes.make 3 'a'));
  let big = Packer.add p (Bytes.make 22 'b') in
  Alcotest.(check int) "fresh page" 1 big.Packer.first_page;
  Alcotest.(check int) "span ceil(22/10)" 3 big.Packer.page_span;
  Alcotest.(check int) "offset" 0 big.Packer.offset;
  Alcotest.(check int) "max span" 3 (Packer.max_span p);
  (* next record may share the oversized record's trailing page *)
  let c = Packer.add p (Bytes.make 2 'c') in
  Alcotest.(check int) "after oversized" 3 c.Packer.first_page;
  Alcotest.(check int) "offset past tail" 2 c.Packer.offset

let test_packer_flush_roundtrip () =
  let p = Packer.create ~page_size:10 in
  let records = [ Bytes.make 4 'a'; Bytes.make 7 'b'; Bytes.make 25 'c'; Bytes.make 1 'd' ] in
  let placements = List.map (Packer.add p) records in
  let f = PF.create ~name:"t" ~page_size:10 in
  Packer.flush_to p f;
  Alcotest.(check int) "page count" (Packer.page_count p) (PF.page_count f);
  (* each record's bytes are recoverable from its placement *)
  List.iter2
    (fun record (pl : Packer.placement) ->
      let window =
        Bytes.concat Bytes.empty
          (List.init pl.Packer.page_span (fun k -> PF.read f (pl.Packer.first_page + k)))
      in
      let got = Bytes.sub window pl.Packer.offset (Bytes.length record) in
      Alcotest.(check string) "record recovered" (Bytes.to_string record) (Bytes.to_string got))
    records placements

let packer_invariants =
  qtest "packer placements never straddle and stay in order"
    QCheck2.Gen.(pair (int_range 8 64) (list_size (int_range 1 40) (int_range 1 100)))
    (fun (page_size, sizes) ->
      let p = Packer.create ~page_size in
      let placements = List.map (fun n -> Packer.add p (Bytes.make n 'x')) sizes in
      let ok = ref true in
      let last = ref (-1) in
      List.iter2
        (fun n (pl : Packer.placement) ->
          (* monotone page order *)
          if pl.Packer.first_page < !last then ok := false;
          last := pl.Packer.first_page;
          if n <= page_size then begin
            if pl.Packer.page_span <> 1 then ok := false;
            if pl.Packer.offset + n > page_size then ok := false
          end
          else begin
            if pl.Packer.offset <> 0 then ok := false;
            if pl.Packer.page_span <> (n + page_size - 1) / page_size then ok := false
          end)
        sizes placements;
      !ok)

let test_page_file_save_load () =
  let f = PF.create ~name:"persisted" ~page_size:32 in
  ignore (PF.append f (Bytes.of_string "alpha"));
  ignore (PF.append f (Bytes.make 32 'z'));
  ignore (PF.append_blank f);
  let path = Filename.temp_file "psp" ".pages" in
  PF.save f ~path;
  let g = PF.load ~path in
  Sys.remove path;
  Alcotest.(check string) "name" "persisted" (PF.name g);
  Alcotest.(check int) "page size" 32 (PF.page_size g);
  Alcotest.(check int) "pages" 3 (PF.page_count g);
  Alcotest.(check string) "payload 0" "alpha" (Bytes.to_string (PF.payload g 0));
  Alcotest.(check int) "payload 1 full" 32 (PF.payload_length g 1);
  Alcotest.(check int) "payload 2 blank" 0 (PF.payload_length g 2);
  Alcotest.(check (float 1e-9)) "utilization preserved" (PF.utilization f) (PF.utilization g)

let test_page_file_load_garbage () =
  let path = Filename.temp_file "psp" ".pages" in
  let oc = open_out path in
  output_string oc "not a page file";
  close_out oc;
  (match PF.load ~path with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument");
  Sys.remove path

let test_packer_sealed () =
  let p = Packer.create ~page_size:8 in
  ignore (Packer.add p (Bytes.make 2 'a'));
  let f = PF.create ~name:"t" ~page_size:8 in
  Packer.flush_to p f;
  Alcotest.check_raises "sealed" (Invalid_argument "Packer.add: already flushed") (fun () ->
      ignore (Packer.add p (Bytes.make 1 'b')))

let () =
  Alcotest.run "storage"
    [ ( "page_file",
        [ Alcotest.test_case "basics" `Quick test_page_file_basics;
          Alcotest.test_case "padding" `Quick test_page_file_padding;
          Alcotest.test_case "bounds" `Quick test_page_file_bounds;
          Alcotest.test_case "utilization" `Quick test_page_file_utilization;
          Alcotest.test_case "iteration" `Quick test_page_file_iter;
          Alcotest.test_case "save/load" `Quick test_page_file_save_load;
          Alcotest.test_case "load garbage" `Quick test_page_file_load_garbage ] );
      ( "packer",
        [ Alcotest.test_case "no straddle" `Quick test_packer_no_straddle;
          Alcotest.test_case "fills free space" `Quick test_packer_fills_free_space;
          Alcotest.test_case "oversized records" `Quick test_packer_oversized;
          Alcotest.test_case "flush roundtrip" `Quick test_packer_flush_roundtrip;
          packer_invariants;
          Alcotest.test_case "sealed" `Quick test_packer_sealed ] ) ]
