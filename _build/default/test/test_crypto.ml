(* Crypto substrate: known-answer vectors plus structural properties. *)

open Psp_crypto

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let hex_of = Sha256.hex

(* ------------------------------------------------------------------ *)
(* SHA-256: FIPS 180-4 known-answer tests *)

let test_sha256_empty () =
  Alcotest.(check string) "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (hex_of (Sha256.digest_string ""))

let test_sha256_abc () =
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (hex_of (Sha256.digest_string "abc"))

let test_sha256_448bits () =
  Alcotest.(check string) "two-block boundary"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (hex_of (Sha256.digest_string "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))

let test_sha256_million_a () =
  let ctx = Sha256.init () in
  for _ = 1 to 1000 do
    Sha256.feed_string ctx (String.make 1000 'a')
  done;
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (hex_of (Sha256.finalize ctx))

let test_sha256_streaming_equals_oneshot () =
  let data = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let ctx = Sha256.init () in
  (* feed in awkward chunk sizes crossing block boundaries *)
  let pos = ref 0 and step = ref 1 in
  while !pos < String.length data do
    let take = min !step (String.length data - !pos) in
    Sha256.feed_string ctx (String.sub data !pos take);
    pos := !pos + take;
    step := (!step * 2 mod 97) + 1
  done;
  Alcotest.(check string) "streaming == one-shot"
    (hex_of (Sha256.digest_string data))
    (hex_of (Sha256.finalize ctx))

(* ------------------------------------------------------------------ *)
(* HMAC-SHA-256: RFC 4231 vectors *)

let test_hmac_rfc4231_case1 () =
  let key = Bytes.make 20 '\x0b' in
  Alcotest.(check string) "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (hex_of (Hmac.mac_string ~key "Hi There"))

let test_hmac_rfc4231_case2 () =
  let key = Bytes.of_string "Jefe" in
  Alcotest.(check string) "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (hex_of (Hmac.mac_string ~key "what do ya want for nothing?"))

let test_hmac_rfc4231_case3 () =
  let key = Bytes.make 20 '\xaa' in
  let data = Bytes.make 50 '\xdd' in
  Alcotest.(check string) "case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (hex_of (Hmac.mac ~key data))

let test_hmac_rfc4231_long_key () =
  let key = Bytes.make 131 '\xaa' in
  Alcotest.(check string) "case 6 (key > block)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (hex_of (Hmac.mac_string ~key "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_hmac_verify () =
  let key = Bytes.of_string "secret" in
  let tag = Hmac.mac_string ~key "message" in
  Alcotest.(check bool) "accepts" true (Hmac.verify ~key (Bytes.of_string "message") ~tag);
  Alcotest.(check bool) "rejects" false (Hmac.verify ~key (Bytes.of_string "messagf") ~tag)

let test_hmac_derive_labels () =
  let key = Bytes.of_string "master" in
  let a = Hmac.derive ~key ~label:"a" and b = Hmac.derive ~key ~label:"b" in
  Alcotest.(check bool) "independent" true (a <> b);
  Alcotest.(check bool) "deterministic" true (a = Hmac.derive ~key ~label:"a")

(* ------------------------------------------------------------------ *)
(* ChaCha20: RFC 8439 §2.4.2 test vector *)

let rfc8439_key = Bytes.init 32 Char.chr

let rfc8439_nonce =
  Bytes.of_string "\x00\x00\x00\x00\x00\x00\x00\x4a\x00\x00\x00\x00"

let test_chacha20_rfc8439 () =
  let plaintext =
    "Ladies and Gentlemen of the class of '99: If I could offer you \
     only one tip for the future, sunscreen would be it."
  in
  let ciphertext =
    Chacha20.encrypt ~key:rfc8439_key ~nonce:rfc8439_nonce ~counter:1
      (Bytes.of_string plaintext)
  in
  Alcotest.(check string) "first 16 bytes"
    "6e2e359a2568f98041ba0728dd0d6981"
    (hex_of (Bytes.sub ciphertext 0 16));
  Alcotest.(check string) "last 16 bytes"
    "0bbf74a35be6b40b8eedf2785e42874d"
    (hex_of (Bytes.sub ciphertext (Bytes.length ciphertext - 16) 16))

let chacha20_roundtrip =
  qtest "chacha20 decrypt . encrypt = id" QCheck2.Gen.(string_size (int_range 0 300))
    (fun s ->
      let key = Sha256.digest_string "k" in
      let nonce = Bytes.make 12 'n' in
      let data = Bytes.of_string s in
      Chacha20.decrypt ~key ~nonce (Chacha20.encrypt ~key ~nonce data) = data)

let test_chacha20_nonce_separation () =
  let key = Sha256.digest_string "k" in
  let data = Bytes.make 64 'x' in
  let c1 = Chacha20.encrypt ~key ~nonce:(Bytes.make 12 '1') data in
  let c2 = Chacha20.encrypt ~key ~nonce:(Bytes.make 12 '2') data in
  Alcotest.(check bool) "distinct ciphertexts" true (c1 <> c2)

let test_chacha20_bad_sizes () =
  Alcotest.check_raises "short key" (Invalid_argument "Chacha20: key must be 32 bytes")
    (fun () -> ignore (Chacha20.block ~key:(Bytes.make 16 'k') ~nonce:(Bytes.make 12 'n') ~counter:0));
  Alcotest.check_raises "short nonce" (Invalid_argument "Chacha20: nonce must be 12 bytes")
    (fun () -> ignore (Chacha20.block ~key:(Bytes.make 32 'k') ~nonce:(Bytes.make 8 'n') ~counter:0))

(* ------------------------------------------------------------------ *)
(* PRF *)

let test_prf_deterministic () =
  let key = Sha256.digest_string "key" in
  let f = Prf.create ~key ~label:"test" in
  Alcotest.(check int) "same input same output" (Prf.int f 42) (Prf.int f 42);
  Alcotest.(check bool) "nonnegative" true (Prf.int f 42 >= 0)

let test_prf_label_separation () =
  let key = Sha256.digest_string "key" in
  let a = Prf.create ~key ~label:"a" and b = Prf.create ~key ~label:"b" in
  let differ = ref 0 in
  for x = 0 to 63 do
    if Prf.int a x <> Prf.int b x then incr differ
  done;
  Alcotest.(check bool) "labels separate" true (!differ > 60)

let prf_int_mod_range =
  qtest "prf int_mod in range" QCheck2.Gen.(pair small_nat (int_range 1 1000))
    (fun (x, m) ->
      let f = Prf.create ~key:(Sha256.digest_string "k") ~label:"r" in
      let v = Prf.int_mod f x m in
      v >= 0 && v < m)

let test_prf_bytes_length () =
  let f = Prf.create ~key:(Sha256.digest_string "k") ~label:"b" in
  List.iter
    (fun n -> Alcotest.(check int) "length" n (Bytes.length (Prf.bytes f 7 n)))
    [ 1; 31; 32; 33; 100 ]

let test_prf_indices () =
  let f = Prf.create ~key:(Sha256.digest_string "k") ~label:"i" in
  let idx = Prf.indices f 123 ~count:5 ~modulus:97 in
  Alcotest.(check int) "count" 5 (List.length idx);
  List.iter (fun i -> Alcotest.(check bool) "range" true (i >= 0 && i < 97)) idx;
  Alcotest.(check (list int)) "deterministic" idx (Prf.indices f 123 ~count:5 ~modulus:97)

(* ------------------------------------------------------------------ *)
(* Feistel small-domain PRP *)

let feistel_bijective =
  qtest ~count:50 "feistel is a bijection on [0,n)" QCheck2.Gen.(int_range 1 500)
    (fun n ->
      let p = Feistel.create ~key:(Sha256.digest_string "k") ~domain:n in
      let image = Feistel.to_array p in
      let sorted = Array.copy image in
      Array.sort compare sorted;
      sorted = Array.init n (fun i -> i))

let feistel_inverse =
  qtest ~count:50 "feistel backward inverts forward"
    QCheck2.Gen.(pair (int_range 1 500) small_nat)
    (fun (n, x) ->
      let x = x mod n in
      let p = Feistel.create ~key:(Sha256.digest_string "inv") ~domain:n in
      Feistel.backward p (Feistel.forward p x) = x
      && Feistel.forward p (Feistel.backward p x) = x)

let test_feistel_key_sensitivity () =
  let n = 256 in
  let p1 = Feistel.create ~key:(Sha256.digest_string "a") ~domain:n in
  let p2 = Feistel.create ~key:(Sha256.digest_string "b") ~domain:n in
  let same = Array.to_list (Array.init n (fun i -> Feistel.forward p1 i = Feistel.forward p2 i)) in
  let count = List.length (List.filter Fun.id same) in
  Alcotest.(check bool) "permutations differ" true (count < n / 4)

let test_feistel_domain_checks () =
  let p = Feistel.create ~key:(Sha256.digest_string "k") ~domain:10 in
  Alcotest.(check int) "domain" 10 (Feistel.domain p);
  Alcotest.check_raises "out of domain" (Invalid_argument "Feistel: point out of domain")
    (fun () -> ignore (Feistel.forward p 10))

(* ------------------------------------------------------------------ *)
(* Bloom filter *)

let test_bloom_no_false_negatives () =
  let key = Sha256.digest_string "bloom" in
  let b = Bloom.sized_for ~key ~label:"t" ~expected:500 ~fp_rate:0.01 in
  for x = 0 to 499 do
    Bloom.add b (x * 7)
  done;
  for x = 0 to 499 do
    Alcotest.(check bool) "member found" true (Bloom.mem b (x * 7))
  done;
  Alcotest.(check int) "count" 500 (Bloom.count b)

let test_bloom_fp_rate () =
  let key = Sha256.digest_string "bloom2" in
  let b = Bloom.sized_for ~key ~label:"fp" ~expected:1000 ~fp_rate:0.01 in
  for x = 0 to 999 do
    Bloom.add b x
  done;
  let fp = ref 0 in
  let probes = 10_000 in
  for x = 1_000_000 to 1_000_000 + probes - 1 do
    if Bloom.mem b x then incr fp
  done;
  let rate = float_of_int !fp /. float_of_int probes in
  Alcotest.(check bool) (Printf.sprintf "fp rate %.4f < 0.03" rate) true (rate < 0.03);
  Alcotest.(check bool) "estimate sane" true (Bloom.fp_estimate b < 0.03)

let test_bloom_clear () =
  let key = Sha256.digest_string "bloom3" in
  let b = Bloom.create ~key ~label:"c" ~bits:128 ~hashes:3 in
  Bloom.add b 1;
  Bloom.clear b;
  Alcotest.(check int) "count reset" 0 (Bloom.count b);
  Alcotest.(check bool) "cleared" false (Bloom.mem b 1)

let () =
  Alcotest.run "crypto"
    [ ( "sha256",
        [ Alcotest.test_case "empty" `Quick test_sha256_empty;
          Alcotest.test_case "abc" `Quick test_sha256_abc;
          Alcotest.test_case "448 bits" `Quick test_sha256_448bits;
          Alcotest.test_case "million a" `Slow test_sha256_million_a;
          Alcotest.test_case "streaming" `Quick test_sha256_streaming_equals_oneshot ] );
      ( "hmac",
        [ Alcotest.test_case "rfc4231 case1" `Quick test_hmac_rfc4231_case1;
          Alcotest.test_case "rfc4231 case2" `Quick test_hmac_rfc4231_case2;
          Alcotest.test_case "rfc4231 case3" `Quick test_hmac_rfc4231_case3;
          Alcotest.test_case "rfc4231 long key" `Quick test_hmac_rfc4231_long_key;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
          Alcotest.test_case "derive labels" `Quick test_hmac_derive_labels ] );
      ( "chacha20",
        [ Alcotest.test_case "rfc8439 vector" `Quick test_chacha20_rfc8439;
          chacha20_roundtrip;
          Alcotest.test_case "nonce separation" `Quick test_chacha20_nonce_separation;
          Alcotest.test_case "bad sizes" `Quick test_chacha20_bad_sizes ] );
      ( "prf",
        [ Alcotest.test_case "deterministic" `Quick test_prf_deterministic;
          Alcotest.test_case "label separation" `Quick test_prf_label_separation;
          prf_int_mod_range;
          Alcotest.test_case "bytes length" `Quick test_prf_bytes_length;
          Alcotest.test_case "indices" `Quick test_prf_indices ] );
      ( "feistel",
        [ feistel_bijective;
          feistel_inverse;
          Alcotest.test_case "key sensitivity" `Quick test_feistel_key_sensitivity;
          Alcotest.test_case "domain checks" `Quick test_feistel_domain_checks ] );
      ( "bloom",
        [ Alcotest.test_case "no false negatives" `Quick test_bloom_no_false_negatives;
          Alcotest.test_case "fp rate" `Slow test_bloom_fp_rate;
          Alcotest.test_case "clear" `Quick test_bloom_clear ] ) ]
