(* Partitioning: KD-tree construction invariants, packed-vs-plain
   utilization (the §5.6 claim), locate/assignment consistency, header
   serialization, border-node coverage. *)

module G = Psp_graph.Graph
module K = Psp_partition.Kdtree
module B = Psp_partition.Border

let qtest ?(count = 25) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let network ?(nodes = 400) ?(seed = 3) () =
  Psp_netgen.Synthetic.generate
    { Psp_netgen.Synthetic.nodes;
      edges = nodes + (nodes / 8);
      width = 1000.0;
      height = 1000.0;
      seed }

let node_bytes g = Psp_index.Encoding.node_bytes Psp_index.Encoding.plain_config g

let test_every_node_assigned () =
  let g = network () in
  let t = K.build_packed g ~node_bytes:(node_bytes g) ~capacity:500 in
  Alcotest.(check bool) "several regions" true (t.K.region_count > 1);
  Array.iteri
    (fun v r ->
      Alcotest.(check bool) (Printf.sprintf "node %d assigned" v) true
        (r >= 0 && r < t.K.region_count))
    t.K.assignment;
  let total = Array.fold_left (fun acc ns -> acc + Array.length ns) 0 t.K.region_nodes in
  Alcotest.(check int) "regions partition the nodes" (G.node_count g) total

let test_capacity_respected () =
  let g = network () in
  List.iter
    (fun build ->
      let t = build g ~node_bytes:(node_bytes g) ~capacity:500 in
      for r = 0 to t.K.region_count - 1 do
        Alcotest.(check bool) "region payload fits" true
          (K.region_bytes t ~node_bytes:(node_bytes g) r <= 500)
      done)
    [ K.build_packed; K.build_plain ]

let test_packed_utilization_over_90 () =
  let g = network ~nodes:1500 () in
  let t = K.build_packed g ~node_bytes:(node_bytes g) ~capacity:500 in
  let u = K.utilization t ~node_bytes:(node_bytes g) ~capacity:500 in
  Alcotest.(check bool) (Printf.sprintf "packed utilization %.1f%% > 90%%" (100. *. u)) true
    (u > 0.90)

let test_packed_beats_plain () =
  let g = network ~nodes:1500 () in
  let packed = K.build_packed g ~node_bytes:(node_bytes g) ~capacity:500 in
  let plain = K.build_plain g ~node_bytes:(node_bytes g) ~capacity:500 in
  let u t = K.utilization t ~node_bytes:(node_bytes g) ~capacity:500 in
  Alcotest.(check bool)
    (Printf.sprintf "packed %.1f%% >= plain %.1f%%" (100. *. u packed) (100. *. u plain))
    true
    (u packed >= u plain);
  Alcotest.(check bool) "packed needs fewer regions" true
    (packed.K.region_count <= plain.K.region_count)

let test_locate_matches_assignment () =
  let g = network () in
  List.iter
    (fun build ->
      let t = build g ~node_bytes:(node_bytes g) ~capacity:400 in
      for v = 0 to G.node_count g - 1 do
        Alcotest.(check int) "locate = assignment" t.K.assignment.(v)
          (K.locate t ~x:(G.x g v) ~y:(G.y g v))
      done)
    [ K.build_packed; K.build_plain ]

let locate_assignment_property =
  qtest "locate agrees with assignment on random networks"
    QCheck2.Gen.(pair (int_range 50 400) (int_range 0 1000))
    (fun (nodes, seed) ->
      let g = network ~nodes ~seed () in
      let t = K.build_packed g ~node_bytes:(node_bytes g) ~capacity:300 in
      let ok = ref true in
      for v = 0 to G.node_count g - 1 do
        if K.locate t ~x:(G.x g v) ~y:(G.y g v) <> t.K.assignment.(v) then ok := false
      done;
      !ok)

let test_single_region_when_capacity_huge () =
  let g = network ~nodes:50 () in
  let t = K.build_packed g ~node_bytes:(node_bytes g) ~capacity:1_000_000 in
  Alcotest.(check int) "one region" 1 t.K.region_count

let test_oversized_node_rejected () =
  let g = network ~nodes:50 () in
  match K.build_packed g ~node_bytes:(fun _ -> 1000) ~capacity:100 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_serialize_roundtrip () =
  let g = network () in
  let t = K.build_packed g ~node_bytes:(node_bytes g) ~capacity:400 in
  let tree, count = K.deserialize (K.serialize t) in
  Alcotest.(check int) "region count" t.K.region_count count;
  for v = 0 to G.node_count g - 1 do
    Alcotest.(check int) "client-side locate" t.K.assignment.(v)
      (K.locate_tree tree ~x:(G.x g v) ~y:(G.y g v))
  done

let test_header_is_concise () =
  (* the partitioning info shipped to clients stays small: one split
     coordinate per internal node *)
  let g = network ~nodes:2000 () in
  let t = K.build_packed g ~node_bytes:(node_bytes g) ~capacity:500 in
  let blob = K.serialize t in
  Alcotest.(check bool)
    (Printf.sprintf "%d bytes for %d regions" (Bytes.length blob) t.K.region_count)
    true
    (Bytes.length blob < 16 * (2 * t.K.region_count))

(* ------------------------------------------------------------------ *)
(* Border nodes *)

let setup_borders () =
  let g = network () in
  let t = K.build_packed g ~node_bytes:(node_bytes g) ~capacity:400 in
  let b = B.compute g ~assignment:t.K.assignment ~region_count:t.K.region_count in
  (g, t, b)

let test_border_definition () =
  let g, t, b = setup_borders () in
  (* every border node of r is an outside endpoint of a crossing edge *)
  for r = 0 to t.K.region_count - 1 do
    Array.iter
      (fun v ->
        Alcotest.(check bool) "border node is outside r" true (t.K.assignment.(v) <> r);
        let touches = ref false in
        G.iter_out g v (fun e -> if t.K.assignment.(e.G.dst) = r then touches := true);
        G.iter_in g v (fun e -> if t.K.assignment.(e.G.src) = r then touches := true);
        Alcotest.(check bool) "adjacent to r" true !touches)
      (B.border_nodes b r)
  done

let test_border_covers_crossings () =
  let g, t, b = setup_borders () in
  (* for every crossing edge, dst is border of src's region and vice versa *)
  G.iter_edges g (fun e ->
      let ru = t.K.assignment.(e.G.src) and rv = t.K.assignment.(e.G.dst) in
      if ru <> rv then begin
        Alcotest.(check bool) "dst in border(ru)" true
          (Array.mem e.G.dst (B.border_nodes b ru));
        Alcotest.(check bool) "src in border(rv)" true
          (Array.mem e.G.src (B.border_nodes b rv))
      end)

let test_entering_edges () =
  let g, t, b = setup_borders () in
  for r = 0 to t.K.region_count - 1 do
    Array.iter
      (fun id ->
        let e = G.edge g id in
        Alcotest.(check bool) "enters r" true
          (t.K.assignment.(e.G.src) <> r && t.K.assignment.(e.G.dst) = r))
      (B.entering_edges b r)
  done

let test_all_border_nodes_union () =
  let _, t, b = setup_borders () in
  let union = B.all_border_nodes b in
  Alcotest.(check bool) "sorted distinct" true
    (Array.to_list union = List.sort_uniq compare (Array.to_list union));
  for r = 0 to t.K.region_count - 1 do
    Array.iter
      (fun v -> Alcotest.(check bool) "member of union" true (Array.mem v union))
      (B.border_nodes b r)
  done

let test_crossing_counts () =
  let g, t, b = setup_borders () in
  let total = ref 0 in
  for r = 0 to t.K.region_count - 1 do
    total := !total + B.crossing_count b r
  done;
  let crossing_edges = ref 0 in
  G.iter_edges g (fun e ->
      if t.K.assignment.(e.G.src) <> t.K.assignment.(e.G.dst) then incr crossing_edges);
  (* each crossing edge counts once for each side *)
  Alcotest.(check int) "sum = 2x crossing edges" (2 * !crossing_edges) !total

(* ------------------------------------------------------------------ *)
(* Geometric border nodes (the paper's exact §5.2 construction) *)

module Geo = Psp_partition.Geometric

let test_geometric_metric_preserved () =
  (* splitting edges at split-line crossings must not change any
     shortest-path cost *)
  let g, t, _ = setup_borders () in
  let aug = Geo.augment g t in
  Alcotest.(check bool) "virtual nodes exist" true (Geo.virtual_count aug > 0);
  let qs = Psp_netgen.Synthetic.random_queries g ~count:40 ~seed:12 in
  Array.iter
    (fun (s, dst) ->
      let original = Psp_graph.Dijkstra.distance g s dst in
      let augmented = Psp_graph.Dijkstra.distance aug.Geo.graph s dst in
      Alcotest.(check bool)
        (Printf.sprintf "d(%d,%d) %f = %f" s dst original augmented)
        true
        (Float.abs (original -. augmented) < 1e-6 *. Float.max 1.0 original))
    qs

let test_geometric_borders_on_boundaries () =
  let g, t, graph_borders = setup_borders () in
  let aug = Geo.augment g t in
  (* every crossing edge produces at least one virtual node, so regions
     with graph-theoretic borders also have geometric ones *)
  for r = 0 to t.K.region_count - 1 do
    if Array.length (B.border_nodes graph_borders r) > 0 then
      Alcotest.(check bool)
        (Printf.sprintf "region %d has geometric borders" r)
        true
        (Geo.border_count aug r > 0)
  done;
  (* virtual nodes have degree >= 2 (they sit on split edges) and map
     back to original edges *)
  for v = aug.Geo.original_nodes to Psp_graph.Graph.node_count aug.Geo.graph - 1 do
    Alcotest.(check bool) "degree >= 1" true (Psp_graph.Graph.out_degree aug.Geo.graph v >= 1)
  done;
  Array.iteri
    (fun id orig ->
      if orig >= 0 then begin
        let piece = Psp_graph.Graph.edge aug.Geo.graph id in
        let original = Psp_graph.Graph.edge g orig in
        Alcotest.(check bool) "piece weight within original" true
          (piece.Psp_graph.Graph.weight <= original.Psp_graph.Graph.weight +. 1e-6)
      end)
    aug.Geo.orig_edge;
  Alcotest.(check bool) "every augmented edge is mapped" true
    (Array.for_all (fun o -> o >= 0) aug.Geo.orig_edge)

let () =
  Alcotest.run "partition"
    [ ( "kdtree",
        [ Alcotest.test_case "every node assigned" `Quick test_every_node_assigned;
          Alcotest.test_case "capacity respected" `Quick test_capacity_respected;
          Alcotest.test_case "packed utilization" `Quick test_packed_utilization_over_90;
          Alcotest.test_case "packed beats plain" `Quick test_packed_beats_plain;
          Alcotest.test_case "locate = assignment" `Quick test_locate_matches_assignment;
          locate_assignment_property;
          Alcotest.test_case "single region" `Quick test_single_region_when_capacity_huge;
          Alcotest.test_case "oversized node" `Quick test_oversized_node_rejected;
          Alcotest.test_case "serialize roundtrip" `Quick test_serialize_roundtrip;
          Alcotest.test_case "header concise" `Quick test_header_is_concise ] );
      ( "border",
        [ Alcotest.test_case "definition" `Quick test_border_definition;
          Alcotest.test_case "covers crossings" `Quick test_border_covers_crossings;
          Alcotest.test_case "entering edges" `Quick test_entering_edges;
          Alcotest.test_case "union" `Quick test_all_border_nodes_union;
          Alcotest.test_case "crossing counts" `Quick test_crossing_counts ] );
      ( "geometric",
        [ Alcotest.test_case "metric preserved" `Quick test_geometric_metric_preserved;
          Alcotest.test_case "borders on boundaries" `Quick test_geometric_borders_on_boundaries ] ) ]
