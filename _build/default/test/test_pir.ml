(* PIR substrate: Table 2 cost model, square-root ORAM obliviousness and
   correctness, server session accounting and the adversary trace. *)

module CM = Psp_pir.Cost_model
module OS = Psp_pir.Oblivious_store
module Server = Psp_pir.Server
module Session = Psp_pir.Server.Session
module Trace = Psp_pir.Trace
module PF = Psp_storage.Page_file

let key = Psp_crypto.Sha256.digest_string "test key"

let make_file ?(name = "data") ~pages ~page_size () =
  let f = PF.create ~name ~page_size in
  for i = 0 to pages - 1 do
    ignore (PF.append f (Bytes.of_string (Printf.sprintf "page-%06d" i)))
  done;
  f

(* ------------------------------------------------------------------ *)
(* Cost model *)

let test_table2_constants () =
  let c = CM.ibm4764 in
  Alcotest.(check int) "page size" 4096 c.CM.page_size;
  Alcotest.(check (float 0.0)) "seek" 0.011 c.CM.disk_seek;
  Alcotest.(check (float 0.0)) "rtt" 0.7 c.CM.rtt;
  Alcotest.(check int) "scp ram" (32 * 1024 * 1024) c.CM.scp_memory

let test_page_op_cost () =
  (* dominated by the 11 ms seek; crypto adds ~0.8 ms *)
  let t = CM.page_op_seconds CM.ibm4764 in
  Alcotest.(check bool) (Printf.sprintf "%.4fs in [0.011, 0.013]" t) true
    (t >= 0.011 && t <= 0.013)

let test_pir_1s_per_gb () =
  (* the paper: ~1 second per retrieval from a 1 GByte file *)
  let pages = 1_000_000_000 / 4096 in
  let t = CM.pir_fetch_seconds CM.ibm4764 ~file_pages:pages in
  Alcotest.(check bool) (Printf.sprintf "%.2fs within [0.8, 1.2]" t) true
    (t >= 0.8 && t <= 1.2)

let test_pir_monotone () =
  let f n = CM.pir_fetch_seconds CM.ibm4764 ~file_pages:n in
  Alcotest.(check bool) "larger file costs more" true (f 100_000 > f 1_000);
  Alcotest.(check bool) "small file costs at least one op" true
    (f 2 >= CM.page_op_seconds CM.ibm4764)

let test_max_file_2_5gb () =
  (* 32 MB SCP RAM, c = 10: the paper quotes a 2.5 GByte bound *)
  let limit = CM.max_file_bytes CM.ibm4764 in
  Alcotest.(check bool)
    (Printf.sprintf "limit %.2f GB in [2.3, 3.0]" (float_of_int limit /. 1e9))
    true
    (limit >= 2_300_000_000 && limit <= 3_000_000_000);
  Alcotest.(check bool) "supports 1GB" true (CM.supports_file CM.ibm4764 ~bytes:1_000_000_000);
  Alcotest.(check bool) "rejects 5GB" false (CM.supports_file CM.ibm4764 ~bytes:5_000_000_000)

let test_scp_memory_needed () =
  let c = CM.ibm4764 in
  let need = CM.scp_memory_needed c ~file_pages:10_000 in
  Alcotest.(check int) "c*sqrt(N) pages" (10 * 100 * 4096) need

let test_with_max_file () =
  let c = CM.with_max_file CM.ibm4764 ~bytes:10_000_000 in
  let limit = CM.max_file_bytes c in
  Alcotest.(check bool)
    (Printf.sprintf "rescaled limit %d ~ 10MB" limit)
    true
    (abs (limit - 10_000_000) < 1_000_000)

let test_transfer_time () =
  (* 48 KB at 48 KB/s = 1 s *)
  Alcotest.(check (float 1e-9)) "1s" 1.0 (CM.transfer_seconds CM.ibm4764 ~bytes:48_000)

(* ------------------------------------------------------------------ *)
(* Oblivious store *)

let test_store_reads_correct () =
  let f = make_file ~pages:37 ~page_size:64 () in
  let s = OS.create ~key f in
  Alcotest.(check int) "pages" 37 (OS.page_count s);
  for round = 1 to 3 do
    ignore round;
    for i = 0 to 36 do
      let got = OS.read s i in
      Alcotest.(check string) "content" (Printf.sprintf "page-%06d" i)
        (Bytes.to_string (Bytes.sub got 0 11))
    done
  done

let test_store_repeated_reads () =
  let f = make_file ~pages:25 ~page_size:32 () in
  let s = OS.create ~key f in
  for _ = 1 to 40 do
    let got = OS.read s 7 in
    Alcotest.(check string) "same page every time" "page-000007"
      (Bytes.to_string (Bytes.sub got 0 11))
  done

let slots_of_epoch events epoch =
  List.filter_map
    (function
      | OS.Slot { epoch = e; slot } when e = epoch -> Some slot
      | _ -> None)
    events

let all_distinct l = List.length (List.sort_uniq compare l) = List.length l

let test_store_no_slot_repeats_within_epoch () =
  let f = make_file ~pages:50 ~page_size:32 () in
  let s = OS.create ~key f in
  (* heavily repeated logical pattern *)
  for _ = 1 to 30 do
    ignore (OS.read s 3)
  done;
  let events = OS.physical_trace s in
  for e = 0 to OS.epoch s do
    Alcotest.(check bool) "distinct slots per epoch" true (all_distinct (slots_of_epoch events e))
  done

let trace_shape events =
  (* the adversary's view reduced to structure: per-event tag and epoch *)
  List.map (function OS.Slot { epoch; _ } -> `S epoch | OS.Reshuffle { epoch } -> `R epoch) events

let test_store_pattern_independent_shape () =
  (* two very different logical sequences of the same length must give
     structurally identical physical traces *)
  let mk () = OS.create ~key (make_file ~pages:40 ~page_size:32 ()) in
  let s1 = mk () and s2 = mk () in
  for i = 0 to 59 do
    ignore (OS.read s1 (i mod 40)); (* scan *)
    ignore (OS.read s2 0) (* hammer one page *)
  done;
  Alcotest.(check bool) "same shape" true
    (trace_shape (OS.physical_trace s1) = trace_shape (OS.physical_trace s2));
  Alcotest.(check int) "same epoch count" (OS.epoch s1) (OS.epoch s2)

let test_store_reshuffle_cadence () =
  let f = make_file ~pages:16 ~page_size:32 () in
  let s = OS.create ~key f in
  let cap = OS.shelter_capacity s in
  for _ = 1 to cap do
    ignore (OS.read s 1)
  done;
  Alcotest.(check int) "one reshuffle after shelter fills" 1 (OS.epoch s)

let test_store_key_changes_slots () =
  let f = make_file ~pages:30 ~page_size:32 () in
  let s1 = OS.create ~key f in
  let s2 = OS.create ~key:(Psp_crypto.Sha256.digest_string "other") f in
  let probe s = List.filter_map (function OS.Slot { slot; _ } -> Some slot | _ -> None)
                  (ignore (OS.read s 0); ignore (OS.read s 1); ignore (OS.read s 2);
                   OS.physical_trace s) in
  Alcotest.(check bool) "different keys -> different slots" true (probe s1 <> probe s2)

let test_store_tamper_detection () =
  let f = make_file ~pages:20 ~page_size:32 () in
  let s = OS.create ~key f in
  (* honest reads fine, then the host corrupts every slot *)
  ignore (OS.read s 0);
  for slot = 0 to OS.slot_count s - 1 do
    OS.corrupt_slot s ~slot
  done;
  let caught = ref false in
  (try
     for i = 1 to 19 do
       ignore (OS.read s i)
     done
   with OS.Tampering_detected _ -> caught := true);
  Alcotest.(check bool) "tampering detected" true !caught

let test_store_bounds () =
  let f = make_file ~pages:4 ~page_size:32 () in
  let s = OS.create ~key f in
  Alcotest.check_raises "oob" (Invalid_argument "Oblivious_store.read: page out of range")
    (fun () -> ignore (OS.read s 4))

let oram_random_sequences =
  (* over random logical access sequences: both stores stay correct and
     their host-visible slots stay distinct within each epoch *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25 ~name:"oram correct under random sequences"
       QCheck2.Gen.(
         let* pages = int_range 5 40 in
         let* len = int_range 1 80 in
         let* seed = int_range 0 10_000 in
         return (pages, len, seed))
       (fun (pages, len, seed) ->
         let f = make_file ~pages ~page_size:32 () in
         let s = OS.create ~key f in
         let rng = Psp_util.Rng.create seed in
         let ok = ref true in
         for _ = 1 to len do
           let i = Psp_util.Rng.int rng pages in
           let got = Bytes.to_string (Bytes.sub (OS.read s i) 0 11) in
           if got <> Printf.sprintf "page-%06d" i then ok := false
         done;
         (* distinctness within epochs *)
         let seen = Hashtbl.create 64 in
         List.iter
           (function
             | OS.Slot { epoch; slot } ->
                 if Hashtbl.mem seen (epoch, slot) then ok := false
                 else Hashtbl.replace seen (epoch, slot) ()
             | OS.Reshuffle _ -> ())
           (OS.physical_trace s);
         !ok))

(* ------------------------------------------------------------------ *)
(* Pyramid (hierarchical) store *)

(* a tiny model so tests can hand-check the arithmetic *)
let small_cost = { CM.ibm4764 with CM.page_size = 64 }

module PS = Psp_pir.Pyramid_store

let test_pyramid_reads_correct () =
  let f = make_file ~pages:60 ~page_size:32 () in
  let s = PS.create ~key f in
  Alcotest.(check int) "pages" 60 (PS.page_count s);
  Alcotest.(check bool) "multiple levels" true (PS.level_count s >= 2);
  let rng = Psp_util.Rng.create 3 in
  for q = 1 to 400 do
    let i = if q mod 4 = 0 then 9 else Psp_util.Rng.int rng 60 in
    let got = PS.read s i in
    Alcotest.(check string) "content" (Printf.sprintf "page-%06d" i)
      (Bytes.to_string (Bytes.sub got 0 11))
  done

let pyramid_shape events =
  List.map
    (function
      | PS.Slot { level; epoch; _ } -> `S (level, epoch)
      | PS.Rebuild { level; items } -> `R (level, items))
    events

let test_pyramid_pattern_independent () =
  let f = make_file ~pages:50 ~page_size:32 () in
  let mk () = PS.create ~key f in
  let s1 = mk () and s2 = mk () in
  for i = 0 to 149 do
    ignore (PS.read s1 (i mod 50));
    ignore (PS.read s2 0)
  done;
  Alcotest.(check bool) "same host-visible shape" true
    (pyramid_shape (PS.physical_trace s1) = pyramid_shape (PS.physical_trace s2))

let test_pyramid_no_slot_repeats () =
  let f = make_file ~pages:40 ~page_size:32 () in
  let s = PS.create ~key f in
  let rng = Psp_util.Rng.create 8 in
  for _ = 1 to 200 do
    ignore (PS.read s (Psp_util.Rng.int rng 40))
  done;
  let tbl = Hashtbl.create 64 in
  List.iter
    (function
      | PS.Slot { level; epoch; slot } ->
          let k = (level, epoch) in
          let seen = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
          Alcotest.(check bool) "slot fresh within level epoch" false (List.mem slot seen);
          Hashtbl.replace tbl k (slot :: seen)
      | PS.Rebuild _ -> ())
    (PS.physical_trace s)

let test_pyramid_one_touch_per_level () =
  let f = make_file ~pages:30 ~page_size:32 () in
  let s = PS.create ~key f in
  PS.clear_trace s;
  ignore (PS.read s 5);
  let slots =
    List.filter_map
      (function PS.Slot { level; _ } -> Some level | PS.Rebuild _ -> None)
      (PS.physical_trace s)
  in
  Alcotest.(check int) "one slot per level" (PS.level_count s) (List.length slots);
  Alcotest.(check (list int)) "top-down order" (List.init (PS.level_count s) (fun i -> i + 1))
    slots

let test_pyramid_server_mode () =
  let f = make_file ~pages:20 ~page_size:64 () in
  let server = Server.create ~mode:`Pyramid ~cost:small_cost ~key [ f ] in
  let s = Session.start server in
  for i = 0 to 19 do
    let got = Session.fetch s ~file:"data" ~page:i in
    Alcotest.(check string) "pyramid-served read" (Printf.sprintf "page-%06d" i)
      (Bytes.to_string (Bytes.sub got 0 11))
  done

(* ------------------------------------------------------------------ *)
(* Server sessions *)

let test_server_fetch_accounting () =
  let f = make_file ~pages:10 ~page_size:64 () in
  let server = Server.create ~cost:small_cost ~key [ f ] in
  let s = Session.start server in
  ignore (Session.fetch s ~file:"data" ~page:3);
  Session.next_round s;
  ignore (Session.fetch s ~file:"data" ~page:4);
  ignore (Session.fetch s ~file:"data" ~page:4);
  let stats = Session.finish s in
  Alcotest.(check int) "rounds" 2 stats.Session.rounds;
  Alcotest.(check (list (pair string int))) "fetch counts" [ ("data", 3) ]
    stats.Session.pir_fetches;
  let expected_pir = 3.0 *. CM.pir_fetch_seconds small_cost ~file_pages:10 in
  Alcotest.(check (float 1e-9)) "pir time" expected_pir stats.Session.pir_seconds;
  let expected_comm =
    (2.0 *. small_cost.CM.rtt) +. (3.0 *. CM.transfer_seconds small_cost ~bytes:64)
  in
  Alcotest.(check (float 1e-9)) "comm time" expected_comm stats.Session.comm_seconds

let test_server_trace_hides_pages () =
  let f = make_file ~pages:10 ~page_size:64 () in
  let server = Server.create ~cost:small_cost ~key [ f ] in
  let run pages =
    let s = Session.start server in
    List.iter (fun p -> ignore (Session.fetch s ~file:"data" ~page:p)) pages;
    (Session.finish s).Session.trace
  in
  (* different page numbers, same trace *)
  Alcotest.(check bool) "same view" true (Trace.equal (run [ 1; 2; 3 ]) (run [ 9; 9; 0 ]))

let test_server_oblivious_mode () =
  let f = make_file ~pages:12 ~page_size:64 () in
  let server = Server.create ~mode:`Oblivious ~cost:small_cost ~key [ f ] in
  let s = Session.start server in
  for i = 0 to 11 do
    let got = Session.fetch s ~file:"data" ~page:i in
    Alcotest.(check string) "oblivious read correct" (Printf.sprintf "page-%06d" i)
      (Bytes.to_string (Bytes.sub got 0 11))
  done

let test_server_file_too_large () =
  let cost = CM.with_max_file small_cost ~bytes:(64 * 4) in
  let f = make_file ~pages:100 ~page_size:64 () in
  match Server.create ~cost ~key [ f ] with
  | exception Server.File_too_large { file; _ } -> Alcotest.(check string) "file" "data" file
  | _ -> Alcotest.fail "expected File_too_large"

let test_server_duplicate_names () =
  let a = make_file ~pages:1 ~page_size:64 () in
  let b = make_file ~pages:1 ~page_size:64 () in
  Alcotest.check_raises "dup" (Invalid_argument "Server.create: duplicate file \"data\"")
    (fun () -> ignore (Server.create ~cost:small_cost ~key [ a; b ]))

let test_server_download () =
  let f = make_file ~name:"header" ~pages:3 ~page_size:64 () in
  let server = Server.create ~cost:small_cost ~key [ f ] in
  let s = Session.start server in
  let pages = Session.download s ~file:"header" in
  Alcotest.(check int) "all pages" 3 (Array.length pages);
  let stats = Session.finish s in
  Alcotest.(check (float 1e-9)) "no pir" 0.0 stats.Session.pir_seconds;
  let expected = small_cost.CM.rtt +. CM.transfer_seconds small_cost ~bytes:(3 * 64) in
  Alcotest.(check (float 1e-9)) "download comm" expected stats.Session.comm_seconds

let test_server_plain_fetch () =
  let f = make_file ~pages:5 ~page_size:64 () in
  let server = Server.create ~cost:small_cost ~key [ f ] in
  let s = Session.start server in
  ignore (Session.plain_fetch s ~file:"data" ~page:2);
  let stats = Session.finish s in
  Alcotest.(check bool) "server cpu charged" true (stats.Session.server_cpu_seconds > 0.0);
  Alcotest.(check (list (pair string int))) "not a pir fetch" [] stats.Session.pir_fetches

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_fingerprint_and_counts () =
  let t = Trace.create () in
  Trace.record t (Trace.Plain_download { round = 1; file = "header"; pages = 2 });
  Trace.record t (Trace.Pir_fetch { round = 2; file = "lookup" });
  Trace.record t (Trace.Pir_fetch { round = 3; file = "index" });
  Trace.record t (Trace.Pir_fetch { round = 3; file = "index" });
  Alcotest.(check int) "length" 4 (Trace.length t);
  Alcotest.(check (list (pair (pair int string) int))) "counts"
    [ ((2, "lookup"), 1); ((3, "index"), 2) ]
    (Trace.per_round_file_counts t);
  let t2 = Trace.create () in
  Trace.record t2 (Trace.Plain_download { round = 1; file = "header"; pages = 2 });
  Trace.record t2 (Trace.Pir_fetch { round = 2; file = "lookup" });
  Trace.record t2 (Trace.Pir_fetch { round = 3; file = "index" });
  Trace.record t2 (Trace.Pir_fetch { round = 3; file = "index" });
  Alcotest.(check string) "fingerprint equal" (Trace.fingerprint t) (Trace.fingerprint t2);
  Alcotest.(check bool) "equal" true (Trace.equal t t2);
  Trace.record t2 (Trace.Pir_fetch { round = 4; file = "data" });
  Alcotest.(check bool) "prefix not equal" false (Trace.equal t t2)

let () =
  Alcotest.run "pir"
    [ ( "cost_model",
        [ Alcotest.test_case "table 2" `Quick test_table2_constants;
          Alcotest.test_case "page op" `Quick test_page_op_cost;
          Alcotest.test_case "1s per GB" `Quick test_pir_1s_per_gb;
          Alcotest.test_case "monotone" `Quick test_pir_monotone;
          Alcotest.test_case "2.5GB cap" `Quick test_max_file_2_5gb;
          Alcotest.test_case "scp memory" `Quick test_scp_memory_needed;
          Alcotest.test_case "with_max_file" `Quick test_with_max_file;
          Alcotest.test_case "transfer" `Quick test_transfer_time ] );
      ( "oblivious_store",
        [ Alcotest.test_case "reads correct" `Quick test_store_reads_correct;
          Alcotest.test_case "repeated reads" `Quick test_store_repeated_reads;
          Alcotest.test_case "no slot repeats" `Quick test_store_no_slot_repeats_within_epoch;
          Alcotest.test_case "pattern-independent shape" `Quick test_store_pattern_independent_shape;
          Alcotest.test_case "reshuffle cadence" `Quick test_store_reshuffle_cadence;
          Alcotest.test_case "key sensitivity" `Quick test_store_key_changes_slots;
          Alcotest.test_case "tamper detection" `Quick test_store_tamper_detection;
          Alcotest.test_case "bounds" `Quick test_store_bounds;
          oram_random_sequences ] );
      ( "pyramid_store",
        [ Alcotest.test_case "reads correct" `Quick test_pyramid_reads_correct;
          Alcotest.test_case "pattern independent" `Quick test_pyramid_pattern_independent;
          Alcotest.test_case "no slot repeats" `Quick test_pyramid_no_slot_repeats;
          Alcotest.test_case "one touch per level" `Quick test_pyramid_one_touch_per_level;
          Alcotest.test_case "server mode" `Quick test_pyramid_server_mode ] );
      ( "server",
        [ Alcotest.test_case "fetch accounting" `Quick test_server_fetch_accounting;
          Alcotest.test_case "trace hides pages" `Quick test_server_trace_hides_pages;
          Alcotest.test_case "oblivious mode" `Quick test_server_oblivious_mode;
          Alcotest.test_case "file too large" `Quick test_server_file_too_large;
          Alcotest.test_case "duplicate names" `Quick test_server_duplicate_names;
          Alcotest.test_case "download" `Quick test_server_download;
          Alcotest.test_case "plain fetch" `Quick test_server_plain_fetch ] );
      ( "trace",
        [ Alcotest.test_case "fingerprint/counts" `Quick test_trace_fingerprint_and_counts ] ) ]
