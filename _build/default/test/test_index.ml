(* Index construction: encodings, pre-computation covering property,
   the compressed F_i builder, query plans, headers, and database
   builders' structural invariants. *)

module G = Psp_graph.Graph
module K = Psp_partition.Kdtree
module E = Psp_index.Encoding
module FB = Psp_index.Fi_builder
module QP = Psp_index.Query_plan
module DB = Psp_index.Database
module PF = Psp_storage.Page_file

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let network ?(nodes = 350) ?(seed = 11) () =
  Psp_netgen.Synthetic.generate
    { Psp_netgen.Synthetic.nodes;
      edges = nodes + (nodes / 8);
      width = 1000.0;
      height = 1000.0;
      seed }

let setup ?nodes ?seed ?(capacity = 400) () =
  let g = network ?nodes ?seed () in
  let node_bytes = E.node_bytes E.plain_config g in
  let t = K.build_packed g ~node_bytes ~capacity in
  let b = Psp_partition.Border.compute g ~assignment:t.K.assignment ~region_count:t.K.region_count in
  (g, t, b)

(* ------------------------------------------------------------------ *)
(* Encoding *)

let test_region_encoding_roundtrip () =
  let g, t, _ = setup () in
  for r = 0 to min 5 (t.K.region_count - 1) do
    let nodes = K.nodes_of_region t r in
    let blob = E.encode_region E.plain_config g nodes in
    let decoded = E.decode_region E.plain_config blob in
    Alcotest.(check int) "node count" (Array.length nodes) (List.length decoded);
    List.iteri
      (fun i (rec_ : E.node_record) ->
        let v = nodes.(i) in
        Alcotest.(check int) "id" v rec_.E.id;
        Alcotest.(check bool) "x f32-close" true (Float.abs (rec_.E.x -. G.x g v) < 0.1);
        Alcotest.(check int) "degree" (G.out_degree g v) (List.length rec_.E.adj);
        List.iter
          (fun (a : E.adj) ->
            let w = G.fold_out g v (fun acc e -> if e.G.dst = a.E.target then Some e.G.weight else acc) None in
            match w with
            | None -> Alcotest.fail "decoded edge not in graph"
            | Some w ->
                Alcotest.(check bool) "weight f32-close" true
                  (Float.abs (w -. a.E.weight) < 1e-3 *. Float.max 1.0 w))
          rec_.E.adj)
      decoded
  done

let test_node_bytes_matches_encoding () =
  let g, _, _ = setup () in
  for v = 0 to min 50 (G.node_count g - 1) do
    let blob = E.encode_region E.plain_config g [| v |] in
    (* region blob = varint count (1 byte here) + node record *)
    Alcotest.(check int) "size prediction" (E.node_bytes E.plain_config g v)
      (Bytes.length blob - 1)
  done

let test_landmark_flag_encoding () =
  let g, t, _ = setup () in
  let lm = Psp_graph.Landmark.select_farthest g ~count:3 ~seed:4 in
  let config = { E.plain_config with E.with_region_ids = true; landmark_anchors = 3 } in
  let nodes = K.nodes_of_region t 0 in
  let blob = E.encode_region config g ~region_of:t.K.assignment ~landmark:lm nodes in
  let decoded = E.decode_region config blob in
  List.iteri
    (fun i (rec_ : E.node_record) ->
      let v = nodes.(i) in
      (match rec_.E.landmark with
      | None -> Alcotest.fail "missing landmark vector"
      | Some (to_a, from_a) ->
          Alcotest.(check int) "vector length" 3 (Array.length to_a);
          for a = 0 to 2 do
            let expect = Psp_graph.Landmark.to_anchor lm a v in
            if expect < infinity then
              Alcotest.(check bool) "to-anchor close" true
                (Float.abs (to_a.(a) -. expect) < 0.5 +. (1e-4 *. expect));
            let expect = Psp_graph.Landmark.from_anchor lm a v in
            if expect < infinity then
              Alcotest.(check bool) "from-anchor close" true
                (Float.abs (from_a.(a) -. expect) < 0.5 +. (1e-4 *. expect))
          done);
      List.iter
        (fun (a : E.adj) ->
          Alcotest.(check int) "region id present" t.K.assignment.(a.E.target) a.E.target_region)
        rec_.E.adj)
    decoded

let test_lookup_entry_roundtrip () =
  let blob = E.encode_lookup_entry ~page:123456 ~offset:789 ~span:3 in
  Alcotest.(check int) "fixed size" E.lookup_entry_bytes (Bytes.length blob);
  Alcotest.(check (triple int int int)) "roundtrip" (123456, 789, 3)
    (E.decode_lookup_entry blob ~pos:0)

let region_ids_roundtrip =
  qtest "region-id delta list roundtrip" QCheck2.Gen.(list_size (int_range 0 50) (int_bound 500))
    (fun ids ->
      let sorted = List.sort_uniq compare ids in
      let arr = Array.of_list sorted in
      let w = Psp_util.Byte_io.Writer.create () in
      E.encode_region_ids w arr;
      let r = Psp_util.Byte_io.Reader.of_bytes (Psp_util.Byte_io.Writer.contents w) in
      E.decode_region_ids r ~count:(Array.length arr) = arr)

(* ------------------------------------------------------------------ *)
(* Precompute: the covering property that makes CI/PI correct *)

let test_precompute_covering () =
  let g, t, b = setup () in
  let pre =
    Psp_index.Precompute.compute g ~assignment:t.K.assignment ~border:b ~want_sets:true
      ~want_subgraphs:true
  in
  let queries = Psp_netgen.Synthetic.random_queries g ~count:60 ~seed:21 in
  Array.iter
    (fun (s, dst) ->
      match Psp_graph.Dijkstra.shortest_path g s dst with
      | None -> ()
      | Some p ->
          let rs = t.K.assignment.(s) and rt = t.K.assignment.(dst) in
          let allowed = Psp_index.Precompute.region_set pre rs rt in
          (* every region the true shortest path crosses is fetchable *)
          Array.iter
            (fun v ->
              let r = t.K.assignment.(v) in
              Alcotest.(check bool)
                (Printf.sprintf "region %d of node %d covered (pair %d,%d)" r v rs rt)
                true
                (r = rs || r = rt || Array.mem r allowed))
            p.Psp_graph.Path.nodes;
          (* PI: the same cost must be achievable inside
             region data of rs,rt plus the passage subgraph *)
          let sub = Psp_index.Precompute.subgraph pre rs rt in
          let edge_ok = Hashtbl.create 64 in
          Array.iter (fun e -> Hashtbl.replace edge_ok e ()) sub;
          (* edges whose source lies in rs or rt are available from F_d *)
          let available e =
            Hashtbl.mem edge_ok e
            ||
            let edge = G.edge g e in
            t.K.assignment.(edge.G.src) = rs || t.K.assignment.(edge.G.src) = rt
          in
          let cost_via_subgraph =
            (* dijkstra over available edges only *)
            let n = G.node_count g in
            let dist = Array.make n infinity in
            let heap = Psp_util.Min_heap.create () in
            dist.(s) <- 0.0;
            Psp_util.Min_heap.push heap ~priority:0.0 s;
            let rec drain () =
              match Psp_util.Min_heap.pop heap with
              | None -> ()
              | Some (d, u) ->
                  if d <= dist.(u) then
                    G.iter_out g u (fun e ->
                        if available e.G.id then begin
                          let nd = d +. e.G.weight in
                          if nd < dist.(e.G.dst) then begin
                            dist.(e.G.dst) <- nd;
                            Psp_util.Min_heap.push heap ~priority:nd e.G.dst
                          end
                        end);
                  drain ()
            in
            drain ();
            dist.(dst)
          in
          Alcotest.(check bool)
            (Printf.sprintf "PI subgraph preserves optimal cost %f vs %f"
               cost_via_subgraph (Psp_graph.Path.cost p))
            true
            (Float.abs (cost_via_subgraph -. Psp_graph.Path.cost p) < 1e-6))
    queries

let test_precompute_diagonal_exists () =
  let g, t, b = setup () in
  let pre =
    Psp_index.Precompute.compute g ~assignment:t.K.assignment ~border:b ~want_sets:true
      ~want_subgraphs:false
  in
  for r = 0 to t.K.region_count - 1 do
    (* diagonal sets exist (possibly empty) and never contain r itself *)
    let s = Psp_index.Precompute.region_set pre r r in
    Alcotest.(check bool) "no self in S_rr" true (not (Array.mem r s))
  done

let test_precompute_parallel_equals_sequential () =
  let g, t, b = setup () in
  let run domains =
    Psp_index.Precompute.compute ~domains g ~assignment:t.K.assignment ~border:b
      ~want_sets:true ~want_subgraphs:true
  in
  let seq = run 1 and par = run 4 in
  for i = 0 to t.K.region_count - 1 do
    for j = i to t.K.region_count - 1 do
      Alcotest.(check bool) "same region sets" true
        (Psp_index.Precompute.region_set seq i j = Psp_index.Precompute.region_set par i j);
      Alcotest.(check bool) "same subgraphs" true
        (Psp_index.Precompute.subgraph seq i j = Psp_index.Precompute.subgraph par i j)
    done
  done

let test_pair_index_bijective () =
  let rc = 13 in
  let seen = Hashtbl.create 100 in
  for i = 0 to rc - 1 do
    for j = i to rc - 1 do
      let p = Psp_index.Precompute.pair_index ~region_count:rc i j in
      Alcotest.(check bool) "fresh" false (Hashtbl.mem seen p);
      Hashtbl.replace seen p ();
      Alcotest.(check int) "symmetric" p (Psp_index.Precompute.pair_index ~region_count:rc j i)
    done
  done;
  Alcotest.(check int) "dense" (rc * (rc + 1) / 2) (Hashtbl.length seen)

let test_histogram_sums_to_pairs () =
  let g, t, b = setup () in
  let pre =
    Psp_index.Precompute.compute g ~assignment:t.K.assignment ~border:b ~want_sets:true
      ~want_subgraphs:false
  in
  let h = Psp_index.Precompute.set_cardinality_histogram pre in
  Alcotest.(check int) "histogram total" (Psp_index.Precompute.pair_count pre)
    (Array.fold_left ( + ) 0 h);
  Alcotest.(check int) "max matches histogram length"
    (Psp_index.Precompute.max_set_cardinality pre)
    (Array.length h - 1)

(* ------------------------------------------------------------------ *)
(* Fi_builder *)

let test_fi_builder_decode_superset () =
  let g, _, _ = setup () in
  let builder = FB.create ~graph:g ~page_size:256 ~compress:true ~quantize:0.0 ~m_bound:(Some 30) in
  let rng = Psp_util.Rng.create 5 in
  let sets =
    Array.init 40 (fun _ ->
        Array.init (Psp_util.Rng.int rng 20) (fun _ -> Psp_util.Rng.int rng 60))
  in
  let placements = Array.map (fun s -> FB.add builder ~kind:FB.Region_set s) sets in
  let file = PF.create ~name:"index" ~page_size:256 in
  FB.flush_to builder file;
  Array.iteri
    (fun i (pl : FB.placement) ->
      let pages =
        Array.init pl.FB.span (fun k -> PF.read file (pl.FB.page + k))
      in
      match FB.decode ~quantize:0.0 ~pages ~base_page:0 ~offset:pl.FB.offset with
      | FB.Edges _ -> Alcotest.fail "wrong kind"
      | FB.Regions fetched ->
          let wanted = List.sort_uniq compare (Array.to_list sets.(i)) in
          List.iter
            (fun r -> Alcotest.(check bool) "required region fetched" true (Array.mem r fetched))
            wanted;
          Alcotest.(check bool) "inflation bounded by m" true (Array.length fetched <= 30);
          Alcotest.(check bool) "matches builder" true
            (fetched = FB.fetch_set builder pl))
    placements

let test_fi_builder_subgraph_roundtrip () =
  let g, _, _ = setup () in
  let builder = FB.create ~graph:g ~page_size:256 ~compress:true ~quantize:0.0 ~m_bound:None in
  let rng = Psp_util.Rng.create 6 in
  let sets =
    Array.init 25 (fun _ ->
        Array.init (5 + Psp_util.Rng.int rng 60) (fun _ -> Psp_util.Rng.int rng (G.edge_count g)))
  in
  let placements = Array.map (fun s -> FB.add builder ~kind:FB.Subgraph s) sets in
  let file = PF.create ~name:"index" ~page_size:256 in
  FB.flush_to builder file;
  Array.iteri
    (fun i (pl : FB.placement) ->
      let pages = Array.init pl.FB.span (fun k -> PF.read file (pl.FB.page + k)) in
      match FB.decode ~quantize:0.0 ~pages ~base_page:0 ~offset:pl.FB.offset with
      | FB.Regions _ -> Alcotest.fail "wrong kind"
      | FB.Edges triples ->
          (* every requested edge appears among the decoded triples *)
          Array.iter
            (fun e ->
              let t = E.triple_of_edge g e in
              Alcotest.(check bool) "edge present" true
                (Array.exists
                   (fun (d : E.edge_triple) ->
                     d.E.e_src = t.E.e_src && d.E.e_dst = t.E.e_dst)
                   triples))
            sets.(i))
    placements

let test_fi_builder_chain_compression () =
  (* heavily overlapping multi-page records must compress via reference
     chains, and every record must decode to a superset of its set *)
  let g, _, _ = setup () in
  let mk compress =
    FB.create ~graph:g ~page_size:256 ~compress ~quantize:0.0 ~m_bound:None
  in
  let rng = Psp_util.Rng.create 9 in
  let base = Array.init 120 (fun _ -> Psp_util.Rng.int rng (G.edge_count g)) in
  let sets =
    Array.init 30 (fun _ ->
        (* ~90% shared elements, a few private ones *)
        Array.append base
          (Array.init 12 (fun _ -> Psp_util.Rng.int rng (G.edge_count g))))
  in
  let with_c = mk true and without_c = mk false in
  let placements = Array.map (fun s -> FB.add with_c ~kind:FB.Subgraph s) sets in
  Array.iter (fun s -> ignore (FB.add without_c ~kind:FB.Subgraph s)) sets;
  Alcotest.(check bool)
    (Printf.sprintf "chained %d pages << plain %d pages" (FB.page_count with_c)
       (FB.page_count without_c))
    true
    (2 * FB.page_count with_c < FB.page_count without_c);
  let file = PF.create ~name:"index" ~page_size:256 in
  FB.flush_to with_c file;
  Array.iteri
    (fun i (pl : FB.placement) ->
      let pages = Array.init pl.FB.span (fun k -> PF.read file (pl.FB.page + k)) in
      match FB.decode ~quantize:0.0 ~pages ~base_page:0 ~offset:pl.FB.offset with
      | FB.Regions _ -> Alcotest.fail "wrong kind"
      | FB.Edges triples ->
          Array.iter
            (fun e ->
              let t = E.triple_of_edge g e in
              Alcotest.(check bool) "edge present" true
                (Array.exists
                   (fun (d : E.edge_triple) -> d.E.e_src = t.E.e_src && d.E.e_dst = t.E.e_dst)
                   triples))
            sets.(i))
    placements

let test_fi_builder_span_budget () =
  (* chains must never blow a record's span past 1.5x (+1) of its plain
     span — that bound is what keeps the query plan tight *)
  let g, _, _ = setup () in
  let builder = FB.create ~graph:g ~page_size:256 ~compress:true ~quantize:0.0 ~m_bound:None in
  let rng = Psp_util.Rng.create 10 in
  for _ = 1 to 60 do
    let set = Array.init (20 + Psp_util.Rng.int rng 100) (fun _ -> Psp_util.Rng.int rng (G.edge_count g)) in
    let plain_bytes = 8 + (10 * Array.length set) in
    let plain_span = max 1 ((plain_bytes + 255) / 256) in
    let pl = FB.add builder ~kind:FB.Subgraph set in
    Alcotest.(check bool)
      (Printf.sprintf "span %d within budget of plain %d" pl.FB.span plain_span)
      true
      (pl.FB.span <= plain_span + max 1 (plain_span / 2) + 1)
  done

let test_fi_builder_compression_shrinks () =
  let g, t, b = setup () in
  let pre =
    Psp_index.Precompute.compute g ~assignment:t.K.assignment ~border:b ~want_sets:true
      ~want_subgraphs:false
  in
  let build compress =
    let builder =
      FB.create ~graph:g ~page_size:256 ~compress ~quantize:0.0
        ~m_bound:(Some (Psp_index.Precompute.max_set_cardinality pre))
    in
    for i = 0 to t.K.region_count - 1 do
      for j = i to t.K.region_count - 1 do
        ignore (FB.add builder ~kind:FB.Region_set (Psp_index.Precompute.region_set pre i j))
      done
    done;
    FB.page_count builder
  in
  let compressed = build true and plain = build false in
  Alcotest.(check bool)
    (Printf.sprintf "compressed %d <= plain %d pages" compressed plain)
    true (compressed <= plain)

(* ------------------------------------------------------------------ *)
(* Query plans and headers *)

let plans =
  [ QP.Ci { fi_span = 2; m = 17 };
    QP.Pi { fi_span = 5 };
    QP.Hy { r = 1; round4 = 9 };
    QP.Pi_star { fi_span = 4; cluster = 3 };
    QP.Lm { total_data_pages = 21 };
    QP.Af { pages_per_region = 2; max_regions = 9 } ]

let test_plan_roundtrip () =
  List.iter
    (fun p ->
      let p' = QP.decode (QP.encode p) in
      Alcotest.(check string) "roundtrip"
        (Format.asprintf "%a" QP.pp p)
        (Format.asprintf "%a" QP.pp p'))
    plans

let test_plan_budgets () =
  Alcotest.(check int) "CI fetches" (1 + 2 + 19)
    (QP.total_pir_fetches (QP.Ci { fi_span = 2; m = 17 }));
  Alcotest.(check int) "PI fetches" (1 + 5 + 2) (QP.total_pir_fetches (QP.Pi { fi_span = 5 }));
  Alcotest.(check int) "CI rounds" 4 (QP.rounds (QP.Ci { fi_span = 2; m = 17 }));
  Alcotest.(check int) "PI rounds" 3 (QP.rounds (QP.Pi { fi_span = 5 }));
  Alcotest.(check int) "LM rounds" 21 (QP.rounds (QP.Lm { total_data_pages = 21 }))

let test_header_roundtrip () =
  let g, t, _ = setup () in
  let header =
    { Psp_index.Header.scheme = "CI";
      tree = t.K.tree;
      region_count = t.K.region_count;
      region_first_page = Array.init t.K.region_count (fun r -> r);
      pages_per_region = 1;
      plan = QP.Ci { fi_span = 1; m = 9 };
      config = E.plain_config;
      heuristic_scale = 1.0;
      index_pages = 7;
      lookup_pages = 2;
      data_pages = t.K.region_count;
      data_offset = 0 }
  in
  let file = Psp_index.Header.to_page_file header ~page_size:256 in
  let pages = Array.init (PF.page_count file) (PF.read file) in
  let header' = Psp_index.Header.of_pages pages in
  Alcotest.(check string) "scheme" "CI" header'.Psp_index.Header.scheme;
  Alcotest.(check int) "regions" t.K.region_count header'.Psp_index.Header.region_count;
  Alcotest.(check int) "index pages" 7 header'.Psp_index.Header.index_pages;
  (* locate works through the decoded tree *)
  for v = 0 to 20 do
    Alcotest.(check int) "locate" t.K.assignment.(v)
      (Psp_index.Header.locate header' ~x:(G.x g v) ~y:(G.y g v))
  done

(* ------------------------------------------------------------------ *)
(* Database builders: structural invariants *)

let test_ci_database_structure () =
  let g = network () in
  let db = DB.build_ci ~page_size:512 g in
  Alcotest.(check string) "scheme" "CI" db.DB.scheme;
  Alcotest.(check int) "one page per region"
    db.DB.header.Psp_index.Header.region_count
    (PF.page_count db.DB.data);
  Alcotest.(check bool) "lookup exists" true (db.DB.lookup <> None);
  Alcotest.(check bool) "index exists" true (db.DB.index <> None);
  Alcotest.(check int) "4 files" 4 (List.length (DB.files db));
  (match db.DB.header.Psp_index.Header.plan with
  | QP.Ci { m; fi_span } ->
      Alcotest.(check bool) "m positive" true (m > 0);
      Alcotest.(check bool) "span positive" true (fi_span >= 1)
  | _ -> Alcotest.fail "wrong plan");
  Alcotest.(check bool) "total bytes accounted" true
    (DB.total_bytes db = List.fold_left (fun a f -> a + PF.size_bytes f) 0 (DB.files db))

let test_pi_database_bigger_than_ci () =
  let g = network () in
  let ci = DB.build_ci ~page_size:512 g in
  let pi = DB.build_pi ~page_size:512 g in
  Alcotest.(check bool)
    (Printf.sprintf "PI %d > CI %d bytes" (DB.total_bytes pi) (DB.total_bytes ci))
    true
    (DB.total_bytes pi > DB.total_bytes ci)

let test_compression_reduces_index () =
  let g = network ~nodes:600 () in
  let on = DB.build_pi ~compress:true ~page_size:512 g in
  let off = DB.build_pi ~compress:false ~page_size:512 g in
  let index_pages db = PF.page_count (Option.get db.DB.index) in
  Alcotest.(check bool)
    (Printf.sprintf "compressed %d <= plain %d" (index_pages on) (index_pages off))
    true
    (index_pages on <= index_pages off)

let test_packed_reduces_database () =
  let g = network ~nodes:600 () in
  let packed = DB.build_ci ~packed:true ~page_size:512 g in
  let plain = DB.build_ci ~packed:false ~page_size:512 g in
  Alcotest.(check bool) "fewer data pages" true
    (PF.page_count packed.DB.data <= PF.page_count plain.DB.data)

let test_hy_combined_file () =
  let g = network () in
  let db = DB.build_hy ~threshold:6 ~page_size:512 g in
  Alcotest.(check bool) "no separate index" true (db.DB.index = None);
  Alcotest.(check string) "combined name" "combined" (PF.name db.DB.data);
  Alcotest.(check bool) "data offset set" true (db.DB.header.Psp_index.Header.data_offset > 0);
  Alcotest.(check bool) "some replacement happened" true (db.DB.stats.DB.replaced_pairs > 0)

let test_hy_threshold_tradeoff () =
  let g = network ~nodes:600 () in
  let tight = DB.build_hy ~threshold:4 ~page_size:512 g in
  let loose = DB.build_hy ~threshold:1000 ~page_size:512 g in
  Alcotest.(check bool) "no replacement at huge threshold" true
    (loose.DB.stats.DB.replaced_pairs = 0);
  Alcotest.(check bool) "lower threshold -> more space" true
    (DB.total_bytes tight >= DB.total_bytes loose)

let test_pi_star_cluster () =
  let g = network () in
  let db = DB.build_pi_star ~cluster:3 ~page_size:512 g in
  Alcotest.(check int) "pages per region" 3 db.DB.header.Psp_index.Header.pages_per_region;
  Alcotest.(check int) "data pages = 3x regions"
    (3 * db.DB.header.Psp_index.Header.region_count)
    (PF.page_count db.DB.data)

let test_pi_star_shrinks_index () =
  let g = network ~nodes:600 () in
  let pi = DB.build_pi ~page_size:512 g in
  let star = DB.build_pi_star ~cluster:4 ~page_size:512 g in
  let index_pages db = PF.page_count (Option.get db.DB.index) in
  Alcotest.(check bool)
    (Printf.sprintf "PI* index %d < PI index %d" (index_pages star) (index_pages pi))
    true
    (index_pages star < index_pages pi)

let test_lm_af_structure () =
  let g = network () in
  let lm, landmark = DB.build_lm ~anchors:4 ~seed:2 ~page_size:512 g in
  Alcotest.(check int) "anchors" 4 (Psp_graph.Landmark.anchor_count landmark);
  Alcotest.(check int) "lm config anchors" 4
    lm.DB.header.Psp_index.Header.config.E.landmark_anchors;
  Alcotest.(check bool) "lm no lookup/index" true (lm.DB.lookup = None && lm.DB.index = None);
  let af, flags = DB.build_af ~target_regions:12 ~page_size:512 g in
  Alcotest.(check int) "af flag bits = regions"
    af.DB.header.Psp_index.Header.region_count
    af.DB.header.Psp_index.Header.config.E.flag_bits;
  Alcotest.(check int) "arcflag regions" af.DB.header.Psp_index.Header.region_count
    (Psp_graph.Arcflag.region_count flags)

let test_with_plan () =
  let g = network () in
  let db, _ = DB.build_lm ~anchors:3 ~seed:2 ~page_size:512 g in
  let db' = DB.with_plan db (QP.Lm { total_data_pages = 5 }) in
  match db'.DB.header.Psp_index.Header.plan with
  | QP.Lm { total_data_pages } -> Alcotest.(check int) "plan replaced" 5 total_data_pages
  | _ -> Alcotest.fail "wrong plan"

let () =
  Alcotest.run "index"
    [ ( "encoding",
        [ Alcotest.test_case "region roundtrip" `Quick test_region_encoding_roundtrip;
          Alcotest.test_case "node size prediction" `Quick test_node_bytes_matches_encoding;
          Alcotest.test_case "landmark+flags payloads" `Quick test_landmark_flag_encoding;
          Alcotest.test_case "lookup entries" `Quick test_lookup_entry_roundtrip;
          region_ids_roundtrip ] );
      ( "precompute",
        [ Alcotest.test_case "covering property" `Slow test_precompute_covering;
          Alcotest.test_case "diagonal" `Quick test_precompute_diagonal_exists;
          Alcotest.test_case "parallel = sequential" `Quick test_precompute_parallel_equals_sequential;
          Alcotest.test_case "pair index" `Quick test_pair_index_bijective;
          Alcotest.test_case "histogram" `Quick test_histogram_sums_to_pairs ] );
      ( "fi_builder",
        [ Alcotest.test_case "decode superset" `Quick test_fi_builder_decode_superset;
          Alcotest.test_case "subgraph roundtrip" `Quick test_fi_builder_subgraph_roundtrip;
          Alcotest.test_case "chain compression" `Quick test_fi_builder_chain_compression;
          Alcotest.test_case "span budget" `Quick test_fi_builder_span_budget;
          Alcotest.test_case "compression shrinks" `Quick test_fi_builder_compression_shrinks ] );
      ( "plans",
        [ Alcotest.test_case "roundtrip" `Quick test_plan_roundtrip;
          Alcotest.test_case "budgets" `Quick test_plan_budgets ] );
      ( "header", [ Alcotest.test_case "roundtrip" `Quick test_header_roundtrip ] );
      ( "database",
        [ Alcotest.test_case "CI structure" `Quick test_ci_database_structure;
          Alcotest.test_case "PI bigger than CI" `Quick test_pi_database_bigger_than_ci;
          Alcotest.test_case "compression reduces" `Slow test_compression_reduces_index;
          Alcotest.test_case "packing reduces" `Slow test_packed_reduces_database;
          Alcotest.test_case "HY combined file" `Quick test_hy_combined_file;
          Alcotest.test_case "HY threshold" `Slow test_hy_threshold_tradeoff;
          Alcotest.test_case "PI* cluster" `Quick test_pi_star_cluster;
          Alcotest.test_case "PI* shrinks index" `Slow test_pi_star_shrinks_index;
          Alcotest.test_case "LM/AF structure" `Quick test_lm_af_structure;
          Alcotest.test_case "with_plan" `Quick test_with_plan ] ) ]
