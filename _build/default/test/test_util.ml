(* Unit and property tests for the utility substrate. *)

open Psp_util

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_uniformity () =
  let rng = Rng.create 11 in
  let counts = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let v = Rng.int rng 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 8 in
      Alcotest.(check bool) "within 10%" true (abs (c - expected) < expected / 10))
    counts

let test_rng_float_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_permutation () =
  let rng = Rng.create 5 in
  let p = Rng.permutation rng 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check bool) "is permutation" true (sorted = Array.init 100 (fun i -> i))

let test_rng_shuffle_preserves_elements () =
  let rng = Rng.create 9 in
  let a = Array.init 50 (fun i -> i * 3) in
  let b = Array.copy a in
  Rng.shuffle rng b;
  Array.sort compare b;
  Alcotest.(check bool) "multiset preserved" true (a = b)

let test_rng_gaussian_moments () =
  let rng = Rng.create 13 in
  let n = 50_000 in
  let samples = Array.init n (fun _ -> Rng.gaussian rng ~mean:5.0 ~stddev:2.0) in
  let m = Stats.mean samples in
  let s = Stats.stddev samples in
  Alcotest.(check bool) "mean ~5" true (Float.abs (m -. 5.0) < 0.05);
  Alcotest.(check bool) "stddev ~2" true (Float.abs (s -. 2.0) < 0.05)

let test_rng_pick_empty () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

(* ------------------------------------------------------------------ *)
(* Min_heap *)

let heap_sorts =
  qtest "min_heap drains in sorted order"
    QCheck2.Gen.(list (pair (float_bound_inclusive 1000.0) small_nat))
    (fun entries ->
      let heap = Min_heap.of_list entries in
      let drained = Min_heap.to_sorted_list heap in
      let priorities = List.map fst drained in
      List.sort compare priorities = priorities
      && List.length drained = List.length entries)

let test_heap_basics () =
  let h = Min_heap.create () in
  Alcotest.(check bool) "empty" true (Min_heap.is_empty h);
  Min_heap.push h ~priority:3.0 30;
  Min_heap.push h ~priority:1.0 10;
  Min_heap.push h ~priority:2.0 20;
  Alcotest.(check int) "length" 3 (Min_heap.length h);
  Alcotest.(check (option (pair (float 0.0) int))) "peek" (Some (1.0, 10)) (Min_heap.peek h);
  Alcotest.(check (option (pair (float 0.0) int))) "pop1" (Some (1.0, 10)) (Min_heap.pop h);
  Alcotest.(check (option (pair (float 0.0) int))) "pop2" (Some (2.0, 20)) (Min_heap.pop h);
  Alcotest.(check (option (pair (float 0.0) int))) "pop3" (Some (3.0, 30)) (Min_heap.pop h);
  Alcotest.(check (option (pair (float 0.0) int))) "pop4" None (Min_heap.pop h)

let test_heap_duplicates () =
  let h = Min_heap.create () in
  for i = 1 to 50 do
    Min_heap.push h ~priority:1.0 i
  done;
  Alcotest.(check int) "all kept" 50 (Min_heap.length h);
  Min_heap.clear h;
  Alcotest.(check bool) "cleared" true (Min_heap.is_empty h)

(* ------------------------------------------------------------------ *)
(* Dyn_array *)

let test_dyn_array_push_get () =
  let d = Dyn_array.create () in
  for i = 0 to 999 do
    Dyn_array.push d (i * 2)
  done;
  Alcotest.(check int) "length" 1000 (Dyn_array.length d);
  Alcotest.(check int) "get 0" 0 (Dyn_array.get d 0);
  Alcotest.(check int) "get 999" 1998 (Dyn_array.get d 999);
  Dyn_array.set d 10 (-5);
  Alcotest.(check int) "set" (-5) (Dyn_array.get d 10)

let test_dyn_array_bounds () =
  let d = Dyn_array.of_array [| 1; 2; 3 |] in
  Alcotest.check_raises "oob" (Invalid_argument "Dyn_array: index out of range") (fun () ->
      ignore (Dyn_array.get d 3))

let test_dyn_array_pop () =
  let d = Dyn_array.of_array [| 1; 2 |] in
  Alcotest.(check (option int)) "pop" (Some 2) (Dyn_array.pop d);
  Alcotest.(check (option int)) "last" (Some 1) (Dyn_array.last d);
  Alcotest.(check (option int)) "pop" (Some 1) (Dyn_array.pop d);
  Alcotest.(check (option int)) "pop empty" None (Dyn_array.pop d)

let dyn_array_roundtrip =
  qtest "dyn_array to_array/of_array roundtrip" QCheck2.Gen.(list small_int) (fun l ->
      let a = Array.of_list l in
      Dyn_array.to_array (Dyn_array.of_array a) = a)

let test_dyn_array_sort_fold () =
  let d = Dyn_array.of_array [| 3; 1; 2 |] in
  Dyn_array.sort compare d;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Dyn_array.to_list d);
  Alcotest.(check int) "fold" 6 (Dyn_array.fold_left ( + ) 0 d);
  Alcotest.(check bool) "exists" true (Dyn_array.exists (fun x -> x = 2) d);
  Alcotest.(check (list int)) "map" [ 2; 4; 6 ] (Dyn_array.to_list (Dyn_array.map (fun x -> 2 * x) d))

(* ------------------------------------------------------------------ *)
(* Bitset *)

let test_bitset_basics () =
  let b = Bitset.create 100 in
  Alcotest.(check int) "cardinal 0" 0 (Bitset.cardinal b);
  Bitset.set b 0;
  Bitset.set b 63;
  Bitset.set b 64;
  Bitset.set b 99;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal b);
  Alcotest.(check bool) "mem 63" true (Bitset.mem b 63);
  Alcotest.(check bool) "mem 62" false (Bitset.mem b 62);
  Bitset.unset b 63;
  Alcotest.(check bool) "unset" false (Bitset.mem b 63);
  Alcotest.(check (list int)) "to_list" [ 0; 64; 99 ] (Bitset.to_list b)

let bitset_bytes_roundtrip =
  qtest "bitset byte serialization roundtrip"
    QCheck2.Gen.(pair (int_range 1 200) (list small_nat))
    (fun (n, items) ->
      let items = List.filter (fun i -> i < n) items in
      let b = Bitset.of_list n items in
      Bitset.equal b (Bitset.of_bytes n (Bitset.to_bytes b)))

let test_bitset_union_inter () =
  let a = Bitset.of_list 10 [ 1; 3; 5 ] in
  let b = Bitset.of_list 10 [ 3; 4 ] in
  let u = Bitset.copy a in
  Bitset.union_into ~dst:u b;
  Alcotest.(check (list int)) "union" [ 1; 3; 4; 5 ] (Bitset.to_list u);
  let i = Bitset.copy a in
  Bitset.inter_into ~dst:i b;
  Alcotest.(check (list int)) "inter" [ 3 ] (Bitset.to_list i)

let test_bitset_mismatch () =
  let a = Bitset.create 4 and b = Bitset.create 5 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitset.union_into: capacity mismatch")
    (fun () -> Bitset.union_into ~dst:a b)

(* ------------------------------------------------------------------ *)
(* Byte_io *)

let test_byte_io_scalars () =
  let w = Byte_io.Writer.create () in
  Byte_io.Writer.u8 w 255;
  Byte_io.Writer.u16 w 65535;
  Byte_io.Writer.u32 w 0xDEADBEEF;
  Byte_io.Writer.i64 w (-1L);
  Byte_io.Writer.float64 w 3.25;
  Byte_io.Writer.string w "hello";
  let r = Byte_io.Reader.of_bytes (Byte_io.Writer.contents w) in
  Alcotest.(check int) "u8" 255 (Byte_io.Reader.u8 r);
  Alcotest.(check int) "u16" 65535 (Byte_io.Reader.u16 r);
  Alcotest.(check int) "u32" 0xDEADBEEF (Byte_io.Reader.u32 r);
  Alcotest.(check int64) "i64" (-1L) (Byte_io.Reader.i64 r);
  Alcotest.(check (float 0.0)) "f64" 3.25 (Byte_io.Reader.float64 r);
  Alcotest.(check string) "string" "hello" (Byte_io.Reader.string r)

let varint_roundtrip =
  qtest "varint roundtrip" QCheck2.Gen.(int_bound 1_000_000_000) (fun v ->
      let w = Byte_io.Writer.create () in
      Byte_io.Writer.varint w v;
      let encoded = Byte_io.Writer.contents w in
      Bytes.length encoded = Byte_io.varint_size v
      && Byte_io.Reader.varint (Byte_io.Reader.of_bytes encoded) = v)

let test_byte_io_underflow () =
  let r = Byte_io.Reader.of_bytes (Bytes.of_string "a") in
  ignore (Byte_io.Reader.u8 r);
  Alcotest.check_raises "underflow" Byte_io.Reader.Underflow (fun () ->
      ignore (Byte_io.Reader.u8 r))

let test_byte_io_negative_varint () =
  let w = Byte_io.Writer.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Writer.varint: negative") (fun () ->
      Byte_io.Writer.varint w (-1))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Stats.total xs);
  let lo, hi = Stats.min_max xs in
  Alcotest.(check (float 0.0)) "min" 1.0 lo;
  Alcotest.(check (float 0.0)) "max" 4.0 hi;
  Alcotest.(check (float 1e-9)) "p50" 2.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Stats.percentile xs 100.0)

let test_stats_histogram () =
  let xs = [| 0.1; 0.9; 1.5; 2.5; 9.9; -3.0; 42.0 |] in
  let h = Stats.histogram ~buckets:10 ~lo:0.0 ~hi:10.0 xs in
  Alcotest.(check int) "bucket 0 (incl clamped low)" 3 h.(0);
  Alcotest.(check int) "bucket 9 (incl clamped high)" 2 h.(9);
  Alcotest.(check int) "total" 7 (Array.fold_left ( + ) 0 h)

let test_stats_empty () =
  Alcotest.(check (float 0.0)) "mean empty" 0.0 (Stats.mean [||]);
  Alcotest.check_raises "min_max empty" (Invalid_argument "Stats.min_max: empty") (fun () ->
      ignore (Stats.min_max [||]))

let () =
  Alcotest.run "util"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int uniformity" `Slow test_rng_int_uniformity;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "permutation" `Quick test_rng_permutation;
          Alcotest.test_case "shuffle preserves" `Quick test_rng_shuffle_preserves_elements;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "pick empty" `Quick test_rng_pick_empty ] );
      ( "min_heap",
        [ heap_sorts;
          Alcotest.test_case "basics" `Quick test_heap_basics;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates ] );
      ( "dyn_array",
        [ Alcotest.test_case "push/get" `Quick test_dyn_array_push_get;
          Alcotest.test_case "bounds" `Quick test_dyn_array_bounds;
          Alcotest.test_case "pop" `Quick test_dyn_array_pop;
          dyn_array_roundtrip;
          Alcotest.test_case "sort/fold/map" `Quick test_dyn_array_sort_fold ] );
      ( "bitset",
        [ Alcotest.test_case "basics" `Quick test_bitset_basics;
          bitset_bytes_roundtrip;
          Alcotest.test_case "union/inter" `Quick test_bitset_union_inter;
          Alcotest.test_case "mismatch" `Quick test_bitset_mismatch ] );
      ( "byte_io",
        [ Alcotest.test_case "scalars" `Quick test_byte_io_scalars;
          varint_roundtrip;
          Alcotest.test_case "underflow" `Quick test_byte_io_underflow;
          Alcotest.test_case "negative varint" `Quick test_byte_io_negative_varint ] );
      ( "stats",
        [ Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "empty" `Quick test_stats_empty ] ) ]
