test/test_partition.ml: Alcotest Array Bytes Float List Printf Psp_graph Psp_index Psp_netgen Psp_partition QCheck2 QCheck_alcotest
