test/test_storage.ml: Alcotest Bytes Filename List Psp_storage QCheck2 QCheck_alcotest Sys
