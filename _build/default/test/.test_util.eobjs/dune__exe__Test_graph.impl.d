test/test_graph.ml: Alcotest Array Float List Option Psp_graph Psp_util QCheck2 QCheck_alcotest
