test/test_index.ml: Alcotest Array Bytes Float Format Hashtbl List Option Printf Psp_graph Psp_index Psp_netgen Psp_partition Psp_storage Psp_util QCheck2 QCheck_alcotest
