test/test_crypto.ml: Alcotest Array Bloom Bytes Chacha20 Char Feistel Fun Hmac List Prf Printf Psp_crypto QCheck2 QCheck_alcotest Sha256 String
