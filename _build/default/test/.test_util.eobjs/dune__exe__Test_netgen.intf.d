test/test_netgen.mli:
