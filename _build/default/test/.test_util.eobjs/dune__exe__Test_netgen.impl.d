test/test_netgen.ml: Alcotest Array Filename Float List Option Printf Psp_graph Psp_netgen Psp_util QCheck2 QCheck_alcotest Sys
