test/test_util.ml: Alcotest Array Bitset Byte_io Bytes Dyn_array Float List Min_heap Psp_util QCheck2 QCheck_alcotest Rng Stats
