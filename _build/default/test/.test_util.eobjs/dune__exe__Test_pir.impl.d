test/test_pir.ml: Alcotest Array Bytes Hashtbl List Option Printf Psp_crypto Psp_pir Psp_storage Psp_util QCheck2 QCheck_alcotest
