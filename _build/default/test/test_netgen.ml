(* Road-network generation: exact node counts, road-like sparsity,
   connectivity, determinism; DIMACS round-trips; Table 1 presets. *)

module G = Psp_graph.Graph
module S = Psp_netgen.Synthetic
module P = Psp_netgen.Presets

let qtest ?(count = 20) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let spec ?(nodes = 300) ?(edges = 340) ?(seed = 1) () =
  { S.nodes; edges; width = 1000.0; height = 1000.0; seed }

let is_connected g =
  let spt = Psp_graph.Dijkstra.tree g ~source:0 in
  Array.for_all (fun d -> d < infinity) spt.Psp_graph.Dijkstra.dist

let test_exact_node_count () =
  List.iter
    (fun n ->
      let g = S.generate (spec ~nodes:n ~edges:(n + (n / 8)) ()) in
      Alcotest.(check int) "node count" n (G.node_count g))
    [ 16; 100; 333; 1024 ]

let test_edge_count_tolerance () =
  let g = S.generate (spec ~nodes:500 ~edges:560 ()) in
  let streets = G.edge_count g / 2 in
  Alcotest.(check bool)
    (Printf.sprintf "street count %d within 2%% of 560" streets)
    true
    (abs (streets - 560) <= 560 / 50 + 2)

let test_connected () =
  List.iter
    (fun seed -> Alcotest.(check bool) "connected" true (is_connected (S.generate (spec ~seed ()))))
    [ 1; 2; 3; 4; 5 ]

let test_deterministic () =
  let a = S.generate (spec ()) and b = S.generate (spec ()) in
  Alcotest.(check int) "same nodes" (G.node_count a) (G.node_count b);
  Alcotest.(check int) "same edges" (G.edge_count a) (G.edge_count b);
  for v = 0 to G.node_count a - 1 do
    Alcotest.(check (float 0.0)) "same coords" (G.x a v) (G.x b v)
  done;
  let c = S.generate (spec ~seed:99 ()) in
  Alcotest.(check bool) "seed changes layout" true
    (Array.init 20 (fun v -> G.x a v) <> Array.init 20 (fun v -> G.x c v))

let test_weights_euclidean_admissible () =
  let g = S.generate (spec ()) in
  let scale = G.min_weight_per_distance g in
  Alcotest.(check bool) "scale positive" true (scale > 0.0);
  G.iter_edges g (fun e ->
      Alcotest.(check bool) "weight >= scale * distance" true
        (e.G.weight +. 1e-9 >= scale *. G.euclidean g e.G.src e.G.dst))

let test_degree_small () =
  let g = S.generate (spec ()) in
  for v = 0 to G.node_count g - 1 do
    Alcotest.(check bool) "degree bounded" true (G.out_degree g v <= 8)
  done

let generated_connected =
  qtest "generated networks are connected and exact-sized"
    QCheck2.Gen.(pair (int_range 16 400) (int_range 0 5000))
    (fun (n, seed) ->
      let g = S.generate { S.nodes = n; edges = n + (n / 10) + 2; width = 500.0; height = 500.0; seed } in
      G.node_count g = n && is_connected g)

let test_generate_validation () =
  Alcotest.check_raises "tiny" (Invalid_argument "Synthetic.generate: nodes must be >= 4")
    (fun () -> ignore (S.generate (spec ~nodes:2 ())));
  Alcotest.check_raises "too few edges"
    (Invalid_argument "Synthetic.generate: edges must be >= nodes - 1") (fun () ->
      ignore (S.generate (spec ~nodes:100 ~edges:50 ())))

let test_random_queries () =
  let g = S.generate (spec ()) in
  let q = S.random_queries g ~count:200 ~seed:5 in
  Alcotest.(check int) "count" 200 (Array.length q);
  Array.iter
    (fun (s, t) ->
      Alcotest.(check bool) "distinct endpoints" true (s <> t);
      Alcotest.(check bool) "in range" true (s >= 0 && s < G.node_count g && t >= 0 && t < G.node_count g))
    q

(* ------------------------------------------------------------------ *)
(* Workload distributions *)

let test_workload_distributions () =
  let g = S.generate (spec ()) in
  let check dist =
    let q = Psp_netgen.Workload.generate g dist ~count:80 ~seed:9 in
    Alcotest.(check int) "count" 80 (Array.length q);
    Array.iter (fun (s, t) -> Alcotest.(check bool) "s <> t" true (s <> t)) q;
    q
  in
  ignore (check Psp_netgen.Workload.Uniform);
  let local = check (Psp_netgen.Workload.Local { radius = 150.0 }) in
  let mean_dist qs =
    Psp_util.Stats.mean (Array.map (fun (s, t) -> G.euclidean g s t) qs)
  in
  let uniform = check Psp_netgen.Workload.Uniform in
  Alcotest.(check bool) "local queries are shorter" true
    (mean_dist local < mean_dist uniform);
  let repeated = check (Psp_netgen.Workload.Repeated { distinct = 3 }) in
  Alcotest.(check int) "only 3 distinct pairs" 3
    (List.length (List.sort_uniq compare (Array.to_list repeated)));
  ignore (check (Psp_netgen.Workload.Commute { hubs = 2 }));
  Alcotest.(check string) "describe" "commute(2 hubs)"
    (Psp_netgen.Workload.describe (Psp_netgen.Workload.Commute { hubs = 2 }))

let test_workload_validation () =
  let g = S.generate (spec ()) in
  List.iter
    (fun dist ->
      match Psp_netgen.Workload.generate g dist ~count:1 ~seed:0 with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")
    [ Psp_netgen.Workload.Local { radius = 0.0 };
      Psp_netgen.Workload.Commute { hubs = 0 };
      Psp_netgen.Workload.Repeated { distinct = 0 } ]

(* ------------------------------------------------------------------ *)
(* Presets (Table 1) *)

let test_preset_table1_counts () =
  Alcotest.(check int) "Oldenburg nodes" 6_105 (P.paper_nodes P.Oldenburg);
  Alcotest.(check int) "Oldenburg edges" 7_029 (P.paper_edges P.Oldenburg);
  Alcotest.(check int) "Germany nodes" 28_867 (P.paper_nodes P.Germany);
  Alcotest.(check int) "Argentina edges" 88_357 (P.paper_edges P.Argentina);
  Alcotest.(check int) "Denmark nodes" 136_377 (P.paper_nodes P.Denmark);
  Alcotest.(check int) "India edges" 155_483 (P.paper_edges P.India);
  Alcotest.(check int) "North America nodes" 175_813 (P.paper_nodes P.North_america);
  Alcotest.(check int) "six networks" 6 (Array.length P.all)

let test_preset_scaling () =
  let s = P.spec ~scale:10.0 P.Germany in
  Alcotest.(check int) "scaled nodes" 2_886 s.S.nodes;
  let g = P.graph ~scale:32.0 P.Oldenburg in
  Alcotest.(check int) "generated at scale" (6105 / 32) (G.node_count g);
  Alcotest.(check bool) "connected" true (is_connected g)

let test_preset_names () =
  Alcotest.(check (option bool)) "of_string old" (Some true)
    (Option.map (fun n -> n = P.Oldenburg) (P.of_string "old"));
  Alcotest.(check (option bool)) "of_string Nor." (Some true)
    (Option.map (fun n -> n = P.North_america) (P.of_string "Nor."));
  Alcotest.(check bool) "unknown" true (P.of_string "mars" = None);
  Alcotest.(check string) "short" "Arg." (P.short_name P.Argentina);
  Alcotest.(check string) "full" "North America" (P.full_name P.North_america)

(* ------------------------------------------------------------------ *)
(* DIMACS *)

let test_dimacs_roundtrip () =
  let g = S.generate (spec ~nodes:60 ~edges:70 ()) in
  let gr, co = Psp_netgen.Dimacs.render g ~comment:"roundtrip test" in
  let g' = Psp_netgen.Dimacs.parse ~gr ~co in
  Alcotest.(check int) "nodes" (G.node_count g) (G.node_count g');
  Alcotest.(check int) "edges" (G.edge_count g) (G.edge_count g');
  (* weights are rounded to DIMACS integers; compare coarsely *)
  for v = 0 to G.node_count g - 1 do
    Alcotest.(check bool) "coords close" true
      (Float.abs (G.x g v -. G.x g' v) <= 0.51 && Float.abs (G.y g v -. G.y g' v) <= 0.51)
  done

let test_dimacs_parse_minimal () =
  let gr = "c tiny\np sp 2 1\na 1 2 5\n" in
  let co = "c tiny\np aux sp co 2\nv 1 0 0\nv 2 3 4\n" in
  let g = Psp_netgen.Dimacs.parse ~gr ~co in
  Alcotest.(check int) "nodes" 2 (G.node_count g);
  Alcotest.(check (float 1e-9)) "weight" 5.0 (Psp_graph.Dijkstra.distance g 0 1);
  Alcotest.(check bool) "one way" true (Psp_graph.Dijkstra.distance g 1 0 = infinity)

let test_dimacs_errors () =
  let check_fails gr co =
    match Psp_netgen.Dimacs.parse ~gr ~co with
    | exception Psp_netgen.Dimacs.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected Parse_error"
  in
  check_fails "a 1 9 5\n" "v 1 0 0\n";
  check_fails "a 1 2\n" "v 1 0 0\nv 2 0 0\n";
  check_fails "a 1 2 0\n" "v 1 0 0\nv 2 0 0\n";
  check_fails "" "p aux sp co 3\nv 1 0 0\n"

let test_dimacs_files () =
  let g = S.generate (spec ~nodes:30 ~edges:35 ()) in
  let gr_path = Filename.temp_file "psp" ".gr" and co_path = Filename.temp_file "psp" ".co" in
  Psp_netgen.Dimacs.write_files g ~comment:"t" ~gr_path ~co_path;
  let g' = Psp_netgen.Dimacs.parse_files ~gr_path ~co_path in
  Sys.remove gr_path;
  Sys.remove co_path;
  Alcotest.(check int) "roundtrip via files" (G.node_count g) (G.node_count g')

let () =
  Alcotest.run "netgen"
    [ ( "synthetic",
        [ Alcotest.test_case "exact node count" `Quick test_exact_node_count;
          Alcotest.test_case "edge tolerance" `Quick test_edge_count_tolerance;
          Alcotest.test_case "connected" `Quick test_connected;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "admissible weights" `Quick test_weights_euclidean_admissible;
          Alcotest.test_case "small degrees" `Quick test_degree_small;
          generated_connected;
          Alcotest.test_case "validation" `Quick test_generate_validation;
          Alcotest.test_case "random queries" `Quick test_random_queries ] );
      ( "workload",
        [ Alcotest.test_case "distributions" `Quick test_workload_distributions;
          Alcotest.test_case "validation" `Quick test_workload_validation ] );
      ( "presets",
        [ Alcotest.test_case "table 1 counts" `Quick test_preset_table1_counts;
          Alcotest.test_case "scaling" `Quick test_preset_scaling;
          Alcotest.test_case "names" `Quick test_preset_names ] );
      ( "dimacs",
        [ Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "parse minimal" `Quick test_dimacs_parse_minimal;
          Alcotest.test_case "errors" `Quick test_dimacs_errors;
          Alcotest.test_case "file roundtrip" `Quick test_dimacs_files ] ) ]
