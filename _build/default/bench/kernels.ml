(* Bechamel micro-benchmarks of the computational kernels underneath the
   schemes: exact search, ORAM reads, crypto primitives, record
   decoding, and one end-to-end private query per scheme.  These measure
   real wall-clock on this machine (the experiment tables report
   *simulated* 2012-hardware times instead). *)

open Bechamel
open Toolkit
module DB = Psp_index.Database
module G = Psp_graph.Graph

let tests env =
  let g = Harness.graph env Psp_netgen.Presets.Oldenburg in
  let queries = Harness.workload env Psp_netgen.Presets.Oldenburg in
  let pick =
    let i = ref 0 in
    fun () ->
      let q = queries.(!i mod Array.length queries) in
      incr i;
      q
  in
  let db = DB.build_ci ~page_size:env.Harness.page_size g in
  let server = Psp_pir.Server.create ~cost:env.Harness.cost ~key:Harness.key (DB.files db) in
  let store_file = Psp_storage.Page_file.create ~name:"k" ~page_size:4096 in
  for i = 0 to 255 do
    ignore (Psp_storage.Page_file.append store_file (Bytes.make 64 (Char.chr (i land 0xff))))
  done;
  let store = Psp_pir.Oblivious_store.create ~key:Harness.key store_file in
  let blob = Bytes.make 4096 'x' in
  let chacha_key = Psp_crypto.Sha256.digest_string "bench" in
  let nonce = Bytes.make 12 'n' in
  let region_blob =
    Psp_index.Encoding.encode_region Psp_index.Encoding.plain_config g
      (Psp_partition.Kdtree.nodes_of_region db.DB.partition 0)
  in
  [ Test.make ~name:"dijkstra p2p" (Staged.stage (fun () ->
        let s, t = pick () in
        ignore (Psp_graph.Dijkstra.distance g s t)));
    Test.make ~name:"bidirectional p2p" (Staged.stage (fun () ->
        let s, t = pick () in
        ignore (Psp_graph.Bidirectional.distance g s t)));
    Test.make ~name:"astar euclid p2p" (Staged.stage (fun () ->
        let s, t = pick () in
        ignore (Psp_graph.Astar.search_euclidean g ~source:s ~target:t)));
    Test.make ~name:"sha256 4KB" (Staged.stage (fun () -> ignore (Psp_crypto.Sha256.digest blob)));
    Test.make ~name:"chacha20 4KB" (Staged.stage (fun () ->
        ignore (Psp_crypto.Chacha20.encrypt ~key:chacha_key ~nonce blob)));
    Test.make ~name:"oram read" (Staged.stage (fun () ->
        ignore (Psp_pir.Oblivious_store.read store 17)));
    Test.make ~name:"region decode" (Staged.stage (fun () ->
        ignore (Psp_index.Encoding.decode_region Psp_index.Encoding.plain_config region_blob)));
    Test.make ~name:"CI private query e2e" (Staged.stage (fun () ->
        let s, t = pick () in
        ignore (Psp_core.Client.query_nodes server g s t))) ]

let run env =
  Harness.header_line "Bechamel kernels (real wall-clock on this machine)";
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"kernels" ~fmt:"%s %s" (tests env))
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan
      in
      rows := [ name; Printf.sprintf "%.1f us" (ns /. 1e3) ] :: !rows)
    results;
  Harness.table ~columns:[ "kernel"; "time/run" ] (List.sort compare !rows)
