bench/main.mli:
