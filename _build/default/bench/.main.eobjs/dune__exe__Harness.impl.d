bench/harness.ml: Array Calibrate Client Float Hashtbl List Option Printf Psp_core Psp_crypto Psp_graph Psp_index Psp_netgen Psp_pir Psp_storage Response_time String
