bench/main.ml: Arg Cmd Cmdliner Experiments Fun Harness Kernels List Option Printf String Term Unix
