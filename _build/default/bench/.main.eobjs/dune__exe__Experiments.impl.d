bench/experiments.ml: Array Client Float Harness Lazy List Obf Printf Psp_core Psp_graph Psp_index Psp_netgen Psp_pir Psp_storage Response_time
