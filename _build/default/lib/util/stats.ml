let total xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else total xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int n)
  end

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let histogram ~buckets ~lo ~hi xs =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets must be positive";
  let counts = Array.make buckets 0 in
  let width = (hi -. lo) /. float_of_int buckets in
  Array.iter
    (fun x ->
      let i =
        if width <= 0.0 then 0
        else max 0 (min (buckets - 1) (int_of_float ((x -. lo) /. width)))
      in
      counts.(i) <- counts.(i) + 1)
    xs;
  counts

let pp_duration ppf seconds =
  if seconds < 1e-3 then Format.fprintf ppf "%.1fus" (seconds *. 1e6)
  else if seconds < 1.0 then Format.fprintf ppf "%.1fms" (seconds *. 1e3)
  else Format.fprintf ppf "%.2fs" seconds

let pp_bytes ppf n =
  let f = float_of_int n in
  if f < 1e3 then Format.fprintf ppf "%dB" n
  else if f < 1e6 then Format.fprintf ppf "%.1fKB" (f /. 1e3)
  else if f < 1e9 then Format.fprintf ppf "%.2fMB" (f /. 1e6)
  else Format.fprintf ppf "%.2fGB" (f /. 1e9)
