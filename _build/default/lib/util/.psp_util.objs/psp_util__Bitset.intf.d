lib/util/bitset.mli:
