lib/util/byte_io.mli:
