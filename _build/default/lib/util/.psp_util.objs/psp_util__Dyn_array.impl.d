lib/util/dyn_array.ml: Array
