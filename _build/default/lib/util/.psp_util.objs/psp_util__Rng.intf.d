lib/util/rng.mli:
