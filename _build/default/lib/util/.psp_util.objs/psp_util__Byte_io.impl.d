lib/util/byte_io.ml: Buffer Bytes Char Int64 String
