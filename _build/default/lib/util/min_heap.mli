(** Binary min-heap keyed by float priorities.

    The workhorse priority queue for Dijkstra and A*: payloads are
    integers (node ids), priorities are floats (tentative distances).
    Supports lazy decrease-key usage: push duplicates and skip stale
    pops at the call site, or use {!push_or_decrease} with an external
    position map for strict decrease-key semantics. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty heap.  [capacity] pre-sizes the backing store. *)

val length : t -> int
(** Number of queued entries (duplicates included). *)

val is_empty : t -> bool

val push : t -> priority:float -> int -> unit
(** Insert a payload with the given priority. *)

val pop : t -> (float * int) option
(** Remove and return the minimum-priority entry, or [None] if empty. *)

val peek : t -> (float * int) option
(** Minimum entry without removing it. *)

val clear : t -> unit
(** Empty the heap, retaining its backing store. *)

val of_list : (float * int) list -> t
(** Heapify a list of (priority, payload) pairs. *)

val to_sorted_list : t -> (float * int) list
(** Destructively drain the heap in ascending priority order. *)
