(** Growable arrays (OCaml 5.1 predates [Stdlib.Dynarray]).

    Used by graph builders and index-construction passes that accumulate
    records of unknown count before freezing into flat arrays. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-range index. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument on out-of-range index. *)

val push : 'a t -> 'a -> unit
(** Append an element, growing the backing store as needed. *)

val pop : 'a t -> 'a option
(** Remove and return the last element. *)

val last : 'a t -> 'a option

val clear : 'a t -> unit

val to_array : 'a t -> 'a array
(** Snapshot of the current contents. *)

val of_array : 'a array -> 'a t
val to_list : 'a t -> 'a list
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val map : ('a -> 'b) -> 'a t -> 'b t
val exists : ('a -> bool) -> 'a t -> bool
val sort : ('a -> 'a -> int) -> 'a t -> unit
