(** Fixed-capacity bit sets.

    Used for Arc-flag bit-vectors (one bit per region attached to every
    edge) and for visited marks in graph traversals. *)

type t

val create : int -> t
(** [create n] is a set over the universe [0..n-1], initially empty. *)

val capacity : t -> int
val set : t -> int -> unit
val unset : t -> int -> unit
val mem : t -> int -> bool
val cardinal : t -> int
(** Population count. *)

val clear : t -> unit
val copy : t -> t
val union_into : dst:t -> t -> unit
(** [union_into ~dst src] sets every bit of [src] in [dst].  Capacities
    must match. *)

val inter_into : dst:t -> t -> unit
val equal : t -> t -> bool
val iter : (int -> unit) -> t -> unit
(** Iterate set bits in increasing order. *)

val to_list : t -> int list
val of_list : int -> int list -> t

val byte_size : t -> int
(** Serialized size in bytes: ceil(capacity/8). *)

val to_bytes : t -> bytes
val of_bytes : int -> bytes -> t
(** [of_bytes n b] decodes a set of capacity [n] from [to_bytes] output. *)
