(** Little-endian byte stream encoding and decoding.

    All on-page records (node entries, adjacency lists, look-up entries,
    region-set deltas) are serialized through this module so that sizes
    are measured in real bytes — page utilization and database sizes in
    the experiments are computed from these encodings. *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int

  val u8 : t -> int -> unit
  (** @raise Invalid_argument if outside [0,255]. *)

  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  (** @raise Invalid_argument if outside the unsigned range. *)

  val i64 : t -> int64 -> unit
  val varint : t -> int -> unit
  (** LEB128 encoding of a non-negative integer. *)

  val float64 : t -> float -> unit
  val bytes : t -> bytes -> unit
  val string : t -> string -> unit
  (** Length-prefixed (varint) string. *)

  val contents : t -> bytes
end

module Reader : sig
  type t

  exception Underflow
  (** Raised when a read runs past the end of the buffer. *)

  val of_bytes : ?pos:int -> bytes -> t
  val pos : t -> int
  val remaining : t -> int
  val seek : t -> int -> unit

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val i64 : t -> int64
  val varint : t -> int
  val float64 : t -> float
  val bytes : t -> int -> bytes
  val string : t -> string
end

val varint_size : int -> int
(** Encoded size in bytes of a non-negative integer, without encoding it. *)
