type t = {
  mutable prio : float array;
  mutable data : int array;
  mutable size : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { prio = Array.make capacity 0.0; data = Array.make capacity 0; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let capacity = 2 * Array.length t.prio in
  let prio = Array.make capacity 0.0 and data = Array.make capacity 0 in
  Array.blit t.prio 0 prio 0 t.size;
  Array.blit t.data 0 data 0 t.size;
  t.prio <- prio;
  t.data <- data

let swap t i j =
  let p = t.prio.(i) and d = t.data.(i) in
  t.prio.(i) <- t.prio.(j);
  t.data.(i) <- t.data.(j);
  t.prio.(j) <- p;
  t.data.(j) <- d

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prio.(parent) > t.prio.(i) then begin
      swap t parent i;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && t.prio.(left) < t.prio.(!smallest) then smallest := left;
  if right < t.size && t.prio.(right) < t.prio.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~priority payload =
  if t.size = Array.length t.prio then grow t;
  t.prio.(t.size) <- priority;
  t.data.(t.size) <- payload;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let p = t.prio.(0) and d = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.prio.(0) <- t.prio.(t.size);
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (p, d)
  end

let peek t = if t.size = 0 then None else Some (t.prio.(0), t.data.(0))
let clear t = t.size <- 0

let of_list entries =
  let t = create ~capacity:(max 1 (List.length entries)) () in
  List.iter (fun (priority, payload) -> push t ~priority payload) entries;
  t

let to_sorted_list t =
  let rec drain acc =
    match pop t with None -> List.rev acc | Some entry -> drain (entry :: acc)
  in
  drain []
