(** Deterministic pseudo-random number generation.

    A small, fast, seedable generator (xoshiro256 star-star) used everywhere a
    reproducible random stream is needed: network generation, workload
    sampling, ORAM shuffling in tests.  Keeping our own generator (rather
    than [Stdlib.Random]) guarantees experiment reproducibility across
    OCaml versions. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed via splitmix64
    expansion.  Equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate via Box–Muller. *)

val split : t -> t
(** A generator seeded from the next output of [t]; useful to give
    sub-components independent streams. *)
