(** Small descriptive-statistics helpers for the experiment harness. *)

val mean : float array -> float
(** Arithmetic mean; 0 on empty input. *)

val total : float array -> float

val stddev : float array -> float
(** Population standard deviation; 0 on fewer than two samples. *)

val min_max : float array -> float * float
(** @raise Invalid_argument on empty input. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0,100], nearest-rank on a sorted copy.
    @raise Invalid_argument on empty input or p outside [0,100]. *)

val histogram : buckets:int -> lo:float -> hi:float -> float array -> int array
(** Fixed-width bucket counts over [lo,hi]; values outside the range are
    clamped into the first/last bucket. *)

val pp_duration : Format.formatter -> float -> unit
(** Render seconds human-readably (µs/ms/s). *)

val pp_bytes : Format.formatter -> int -> unit
(** Render a byte count human-readably (B/KB/MB/GB), decimal units as in
    the paper. *)
