type t = { words : int array; n : int }

let words_for n = (n + 62) / 63

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make (words_for n) 0; n }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let set t i =
  check t i;
  t.words.(i / 63) <- t.words.(i / 63) lor (1 lsl (i mod 63))

let unset t i =
  check t i;
  t.words.(i / 63) <- t.words.(i / 63) land lnot (1 lsl (i mod 63))

let mem t i =
  check t i;
  t.words.(i / 63) land (1 lsl (i mod 63)) <> 0

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  loop x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words
let clear t = Array.fill t.words 0 (Array.length t.words) 0
let copy t = { words = Array.copy t.words; n = t.n }

let union_into ~dst src =
  if dst.n <> src.n then invalid_arg "Bitset.union_into: capacity mismatch";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) lor src.words.(i)
  done

let inter_into ~dst src =
  if dst.n <> src.n then invalid_arg "Bitset.inter_into: capacity mismatch";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land src.words.(i)
  done

let equal a b = a.n = b.n && a.words = b.words

let iter f t =
  for i = 0 to t.n - 1 do
    if t.words.(i / 63) land (1 lsl (i mod 63)) <> 0 then f i
  done

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let of_list n items =
  let t = create n in
  List.iter (set t) items;
  t

let byte_size t = (t.n + 7) / 8

let to_bytes t =
  let b = Bytes.make (byte_size t) '\000' in
  iter
    (fun i ->
      let c = Char.code (Bytes.get b (i / 8)) in
      Bytes.set b (i / 8) (Char.chr (c lor (1 lsl (i mod 8)))))
    t;
  b

let of_bytes n b =
  let t = create n in
  for i = 0 to n - 1 do
    if Char.code (Bytes.get b (i / 8)) land (1 lsl (i mod 8)) <> 0 then set t i
  done;
  t
