(** Border-pair shortest-path pre-computation (§5.2, §6).

    For every unordered region pair (i, j), i ≤ j (our networks are
    undirected, so S_{i,j} = S_{j,i}; the paper makes the same
    reduction), grow a shortest-path tree from every border node and
    walk it to every other border node, accumulating:

    - the *region set* S_{i,j}: identifiers of intermediate regions
      crossed by at least one border-to-border shortest path (excluding
      i and j themselves) — the CI payload;
    - the *passage subgraph* G_{i,j}: the exact edges on those paths,
      plus the crossing edges entering R_i and R_j (which a client
      cannot otherwise see, since their sources lie outside the two
      fetched regions) — the PI payload.

    The i = j diagonal is included: a shortest path between two nodes of
    the same region may detour through neighbours. *)

type t

val compute :
  ?domains:int ->
  Psp_graph.Graph.t ->
  assignment:int array ->
  border:Psp_partition.Border.t ->
  want_sets:bool ->
  want_subgraphs:bool ->
  t
(** One pass computes whichever payloads are requested (HY needs both).
    [domains] parallelizes over border-node sources with OCaml 5
    domains (default: up to 4, per the machine); the result is
    identical for any value, because the accumulators are set unions. *)

val region_count : t -> int

val pair_index : region_count:int -> int -> int -> int
(** Dense index of the unordered pair; arguments in any order. *)

val pair_count : t -> int

val region_set : t -> int -> int -> int array
(** S_{i,j}, sorted.  @raise Invalid_argument if sets were not computed. *)

val subgraph : t -> int -> int -> int array
(** G_{i,j} as sorted edge ids.
    @raise Invalid_argument if subgraphs were not computed. *)

val max_set_cardinality : t -> int
(** The paper's m: max |S_{i,j}| over all pairs. *)

val set_cardinality_histogram : t -> int array
(** histogram.(c) = number of pairs with |S_{i,j}| = c — Figure 10(a). *)
