(** On-page record encodings shared by every scheme.

    All database sizes, page utilizations and spans in the experiments
    come from these byte layouts, so they are defined once here.

    Node records (region data file F_d, §5.3): node id, coordinates
    (float32), adjacency list.  Scheme-dependent extras: the target's
    region id per edge (LM/AF chase nodes into not-yet-fetched regions),
    the Landmark vector per node (LM), the Arc-flag bit-vector per edge
    (AF).

    Network-index records (F_i) are built by {!Fi_builder} on top of the
    element encodings here: region-id sets for CI, edge triples for
    PI/HY/PI*.

    Look-up entries (F_l) are fixed-size: page number, in-page offset,
    page span. *)

type config = {
  with_region_ids : bool;  (** store the target's region id with each edge *)
  landmark_anchors : int;  (** 0 = no landmark vectors *)
  flag_bits : int;         (** 0 = no arc-flags; else bits per edge *)
  quantize : float;
      (** 0 = exact float32 weights; epsilon > 0 stores each weight as a
          varint index on the multiplicative grid (1+epsilon)^k, rounded
          up.  Any path computed on quantized weights has true cost
          within (1+epsilon) of optimal, and weights shrink from 4 to
          ~2 bytes — the paper's future-work "lossy compression /
          approximate schemes with bounded cost deviation". *)
}

val plain_config : config
(** CI/PI/HY/PI* node payload: no extras, exact weights. *)

val quantize_up : epsilon:float -> float -> float
(** The smallest grid value >= the weight; identity when epsilon = 0. *)

type adj = {
  target : int;
  weight : float;
  target_region : int;           (** -1 when not stored *)
  flags : Psp_util.Bitset.t option;
}

type node_record = {
  id : int;
  x : float;
  y : float;
  adj : adj list;
  landmark : (float array * float array) option;
      (** (to-anchor, from-anchor) distance vectors *)
}

val node_bytes : config -> Psp_graph.Graph.t -> int -> int
(** Encoded size of one node under a config — drives KD-tree packing. *)

val encode_region :
  config ->
  Psp_graph.Graph.t ->
  ?region_of:int array ->
  ?landmark:Psp_graph.Landmark.t ->
  ?flags:(int -> Psp_util.Bitset.t) ->
  int array ->
  bytes
(** Encode the node records of a region's members. *)

val decode_region : config -> bytes -> node_record list
(** Client-side decoding of a region blob (or concatenated region
    pages trimmed to payload length). *)

(** {2 Look-up entries (F_l)} *)

val lookup_entry_bytes : int
(** 10: u32 base page, u32 byte offset from the base, u16 page span. *)

val encode_lookup_entry : page:int -> offset:int -> span:int -> bytes
val decode_lookup_entry : bytes -> pos:int -> int * int * int
(** [(page, offset, span)] at byte position [pos]. *)

(** {2 Element lists inside F_i records} *)

val encode_region_ids : Psp_util.Byte_io.Writer.t -> int array -> unit
(** Sorted region ids as varint deltas. *)

val decode_region_ids : Psp_util.Byte_io.Reader.t -> count:int -> int array

type edge_triple = { e_src : int; e_dst : int; e_weight : float }

val encode_edge_triples :
  ?quantize:float -> Psp_util.Byte_io.Writer.t -> edge_triple array -> unit

val decode_edge_triples :
  ?quantize:float -> Psp_util.Byte_io.Reader.t -> count:int -> edge_triple array

val triple_of_edge : Psp_graph.Graph.t -> int -> edge_triple
