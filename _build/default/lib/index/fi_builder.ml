module W = Psp_util.Byte_io.Writer
module R = Psp_util.Byte_io.Reader

type kind = Region_set | Subgraph

type placement = { page : int; offset : int; span : int }

(* A candidate reference: an earlier record's placement, resolved fetch
   set and chain depth (bounded so decoding recursion stays shallow). *)
type recent = {
  r_kind : kind;
  r_placement : placement;
  r_fetched : int array; (* sorted *)
  r_depth : int;
}

type t = {
  graph : Psp_graph.Graph.t;
  page_size : int;
  compress : bool;
  quantize : float;
  m_bound : int option;
  pages : bytes Psp_util.Dyn_array.t; (* closed page payloads *)
  mutable current : Buffer.t;
  mutable recents : recent list; (* newest first, bounded *)
  fetch_sets : (int * int, int array) Hashtbl.t; (* (page, offset) -> fetched *)
  mutable span_set : int;
  mutable span_sub : int;
  mutable sealed : bool;
}

let max_recents = 16
let max_chain_depth = 200

let create ~graph ~page_size ~compress ~quantize ~m_bound =
  if page_size <= 0 then invalid_arg "Fi_builder.create: page_size must be positive";
  { graph;
    page_size;
    compress;
    quantize;
    m_bound;
    pages = Psp_util.Dyn_array.create ();
    current = Buffer.create page_size;
    recents = [];
    fetch_sets = Hashtbl.create 64;
    span_set = 0;
    span_sub = 0;
    sealed = false }

let sort_dedup a =
  let a = Array.copy a in
  Array.sort compare a;
  let out = Psp_util.Dyn_array.create () in
  Array.iteri (fun i v -> if i = 0 || v <> a.(i - 1) then Psp_util.Dyn_array.push out v) a;
  Psp_util.Dyn_array.to_array out

let inter a b =
  let out = Psp_util.Dyn_array.create () in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a && !j < Array.length b do
    let c = compare a.(!i) b.(!j) in
    if c = 0 then begin
      Psp_util.Dyn_array.push out a.(!i);
      incr i;
      incr j
    end
    else if c < 0 then incr i
    else incr j
  done;
  Psp_util.Dyn_array.to_array out

let diff a b =
  let out = Psp_util.Dyn_array.create () in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a do
    if !j >= Array.length b || a.(!i) < b.(!j) then begin
      Psp_util.Dyn_array.push out a.(!i);
      incr i
    end
    else if a.(!i) = b.(!j) then begin
      incr i;
      incr j
    end
    else incr j
  done;
  Psp_util.Dyn_array.to_array out

let union a b = sort_dedup (Array.append a b)

let no_ref = 0xFFFFFFFF

let encode_elements t ~kind w elements =
  match kind with
  | Region_set -> Encoding.encode_region_ids w elements
  | Subgraph ->
      Encoding.encode_edge_triples ~quantize:t.quantize w
        (Array.map (Encoding.triple_of_edge t.graph) elements)

(* Encode a record.  [ref_] is (base-relative pointer, ref fetched set)
   or None.  Returns (bytes, fetched set the client reconstructs). *)
let encode_record t ~kind ?ref_ elements =
  let w = W.create ~capacity:128 () in
  W.u8 w (match kind with Region_set -> 0 | Subgraph -> 1);
  match ref_ with
  | None ->
      W.u32 w no_ref;
      W.varint w (Array.length elements);
      encode_elements t ~kind w elements;
      if kind = Region_set then W.varint w 0;
      (W.contents w, elements)
  | Some (pointer, ref_fetched) ->
      let incl = diff elements ref_fetched in
      let fetched = union ref_fetched incl in
      let excl =
        match (kind, t.m_bound) with
        | Subgraph, _ | Region_set, None -> [||]
        | Region_set, Some m ->
            let over = Array.length fetched - m in
            if over <= 0 then [||]
            else begin
              let removable = diff ref_fetched elements in
              Array.sub removable 0 (min over (Array.length removable))
            end
      in
      let fetched = if Array.length excl = 0 then fetched else diff fetched excl in
      W.u32 w pointer;
      W.varint w (Array.length incl);
      encode_elements t ~kind w incl;
      if kind = Region_set then begin
        W.varint w (Array.length excl);
        Encoding.encode_region_ids w excl
      end;
      (W.contents w, fetched)

let closed_pages t = Psp_util.Dyn_array.length t.pages
let position t = (closed_pages t * t.page_size) + Buffer.length t.current

let close_current t =
  Psp_util.Dyn_array.push t.pages (Buffer.to_bytes t.current);
  t.current <- Buffer.create t.page_size

(* Append raw bytes at the current position, closing pages as they
   fill. *)
let append_bytes t blob =
  let len = Bytes.length blob in
  let pos = ref 0 in
  while !pos < len do
    let take = min (t.page_size - Buffer.length t.current) (len - !pos) in
    Buffer.add_bytes t.current (Bytes.sub blob !pos take);
    pos := !pos + take;
    if Buffer.length t.current = t.page_size then close_current t
  done

let ceil_div a b = (a + b - 1) / b

let bump_span t kind span =
  match kind with
  | Region_set -> t.span_set <- max t.span_set span
  | Subgraph -> t.span_sub <- max t.span_sub span

let remember t ~kind ~placement ~fetched ~depth =
  let r = { r_kind = kind; r_placement = placement; r_fetched = fetched; r_depth = depth } in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  t.recents <- r :: take (max_recents - 1) t.recents

(* Place a plain record per §5.3: no straddling below one page; start a
   fresh page exactly when that lowers a big record's span. *)
let place_plain t blob fetched =
  let len = Bytes.length blob in
  let free = t.page_size - Buffer.length t.current in
  if len <= t.page_size then begin
    if len > free then close_current t;
    let placement =
      { page = closed_pages t; offset = Buffer.length t.current; span = 1 }
    in
    append_bytes t blob;
    (placement, fetched)
  end
  else begin
    let span_shared = ceil_div (Buffer.length t.current + len) t.page_size in
    let span_fresh = ceil_div len t.page_size in
    if span_shared > span_fresh && Buffer.length t.current > 0 then close_current t;
    let placement =
      { page = closed_pages t;
        offset = Buffer.length t.current;
        span = ceil_div (Buffer.length t.current + len) t.page_size }
    in
    append_bytes t blob;
    (placement, fetched)
  end

let add t ~kind elements =
  if t.sealed then invalid_arg "Fi_builder.add: already flushed";
  let elements = sort_dedup elements in
  let plain, plain_fetched = encode_record t ~kind elements in
  let plain_span = max 1 (ceil_div (Bytes.length plain) t.page_size) in
  let span_budget = plain_span + max 1 (plain_span / 2) in
  (* best admissible delta: pick the candidate with the highest element
     overlap whose window span (estimated) stays within budget, then
     encode once and re-check for real *)
  let per_element = match kind with Region_set -> 2 | Subgraph -> 9 in
  let delta =
    if not t.compress then None
    else begin
      let best = ref None in
      let good_enough = 95 * Array.length elements / 100 in
      (try
         List.iter
           (fun r ->
             if r.r_kind = kind && r.r_depth < max_chain_depth then begin
               let overlap = Array.length (inter r.r_fetched elements) in
               if overlap > 0 then begin
                 let base = r.r_placement.page in
                 let rec_offset = position t - (base * t.page_size) in
                 let est_len = 8 + (per_element * (Array.length elements - overlap)) in
                 let est_span = ceil_div (rec_offset + est_len) t.page_size in
                 if est_span <= span_budget then begin
                   (match !best with
                   | Some (_, best_overlap) when best_overlap >= overlap -> ()
                   | _ -> best := Some (r, overlap));
                   (* recents are newest-first: a near-total overlap up
                      front will not be beaten enough to matter *)
                   if overlap >= good_enough then raise Exit
                 end
               end
             end)
           t.recents
       with Exit -> ());
      match !best with
      | None -> None
      | Some (r, _) ->
          let base = r.r_placement.page in
          let rec_offset = position t - (base * t.page_size) in
          let pointer = r.r_placement.offset in
          let encoded, fetched =
            encode_record t ~kind ~ref_:(pointer, r.r_fetched) elements
          in
          let span = ceil_div (rec_offset + Bytes.length encoded) t.page_size in
          if span <= span_budget && Bytes.length encoded < Bytes.length plain then
            Some (base, rec_offset, encoded, fetched, r.r_depth, Bytes.length encoded)
          else None
    end
  in
  let placement, fetched, depth =
    match delta with
    | Some (base, rec_offset, encoded, fetched, ref_depth, _) ->
        let placement =
          { page = base;
            offset = rec_offset;
            span = ceil_div (rec_offset + Bytes.length encoded) t.page_size }
        in
        append_bytes t encoded;
        (placement, fetched, ref_depth + 1)
    | None ->
        let placement, fetched = place_plain t plain plain_fetched in
        (placement, fetched, 0)
  in
  Hashtbl.replace t.fetch_sets (placement.page, placement.offset) fetched;
  bump_span t kind placement.span;
  remember t ~kind ~placement ~fetched ~depth;
  placement

let fetch_set t placement =
  match Hashtbl.find_opt t.fetch_sets (placement.page, placement.offset) with
  | Some f -> Array.copy f
  | None -> invalid_arg "Fi_builder.fetch_set: unknown placement"

let max_span t ~kind = match kind with Region_set -> t.span_set | Subgraph -> t.span_sub

let page_count t =
  Psp_util.Dyn_array.length t.pages + (if Buffer.length t.current > 0 then 1 else 0)

let flush_to t file =
  if Psp_storage.Page_file.page_size file <> t.page_size then
    invalid_arg "Fi_builder.flush_to: page size mismatch";
  t.sealed <- true;
  Psp_util.Dyn_array.iter (fun p -> ignore (Psp_storage.Page_file.append file p)) t.pages;
  if Buffer.length t.current > 0 then
    ignore (Psp_storage.Page_file.append file (Buffer.to_bytes t.current))

type decoded =
  | Regions of int array
  | Edges of Encoding.edge_triple array

let decode ~quantize ~pages ~base_page ~offset =
  let blob = Bytes.concat Bytes.empty (Array.to_list pages) in
  let base =
    if Array.length pages = 0 then invalid_arg "Fi_builder.decode: no pages"
    else base_page * Bytes.length pages.(0)
  in
  let rec parse offset =
    let r = R.of_bytes ~pos:(base + offset) blob in
    let kind = R.u8 r in
    let pointer = R.u32 r in
    let incl_count = R.varint r in
    match kind with
    | 0 ->
        let incl = Encoding.decode_region_ids r ~count:incl_count in
        let excl_count = R.varint r in
        let excl = Encoding.decode_region_ids r ~count:excl_count in
        let resolved = if pointer = no_ref then [||] else expect_regions (parse pointer) in
        Regions (diff (union resolved incl) excl)
    | 1 ->
        let incl = Encoding.decode_edge_triples ~quantize r ~count:incl_count in
        let resolved = if pointer = no_ref then [||] else expect_edges (parse pointer) in
        Edges (Array.append resolved incl)
    | k -> invalid_arg (Printf.sprintf "Fi_builder.decode: bad record kind %d" k)
  and expect_regions = function
    | Regions r -> r
    | Edges _ -> invalid_arg "Fi_builder.decode: region record references a subgraph"
  and expect_edges = function
    | Edges e -> e
    | Regions _ -> invalid_arg "Fi_builder.decode: subgraph record references a region set"
  in
  parse offset
