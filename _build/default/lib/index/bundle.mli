(** Persisted scheme databases.

    The offline pipeline (partitioning, pre-computation, file formation)
    runs once at the data owner; the LBS then only needs the resulting
    page files.  A bundle is exactly that deployable artifact: the files
    plus a manifest, written to a directory and reloadable into a
    servable form without the original graph. *)

type t = {
  scheme : string;
  page_size : int;
  header : Header.t;          (** decoded from the header file *)
  files : Psp_storage.Page_file.t list;  (** header first, as served *)
}

val of_database : Database.t -> t

val save : t -> dir:string -> unit
(** Write `manifest` plus one `<name>.pages` file per page file.  The
    directory is created if missing.
    @raise Sys_error on I/O failure. *)

val load : dir:string -> t
(** @raise Invalid_argument on a malformed bundle. *)

val files : t -> Psp_storage.Page_file.t list
(** What to hand to {!Psp_pir.Server.create}. *)
