module G = Psp_graph.Graph

type t = {
  region_count : int;
  sets : int array array option; (* pair index -> sorted region ids *)
  subgraphs : int array array option; (* pair index -> sorted edge ids *)
}

let pair_index ~region_count i j =
  let i, j = if i <= j then (i, j) else (j, i) in
  if i < 0 || j >= region_count then invalid_arg "Precompute.pair_index: out of range";
  (i * region_count) - (i * (i - 1) / 2) + (j - i)

let npairs region_count = region_count * (region_count + 1) / 2

(* A tiny int-set accumulator with O(1) dedup via an epoch-stamped
   mark array; reused across walks to avoid allocation. *)
module Marked = struct
  type t = { marks : int array; mutable epoch : int; items : int Psp_util.Dyn_array.t }

  let create n = { marks = Array.make n 0; epoch = 0; items = Psp_util.Dyn_array.create () }

  let reset t =
    t.epoch <- t.epoch + 1;
    Psp_util.Dyn_array.clear t.items

  let add t v =
    if t.marks.(v) <> t.epoch then begin
      t.marks.(v) <- t.epoch;
      Psp_util.Dyn_array.push t.items v
    end

  let items t = Psp_util.Dyn_array.to_array t.items
end

let default_domains () = max 1 (min 4 (Domain.recommended_domain_count () - 1))

(* The per-source work: one shortest-path tree, then a parent-chain walk
   to every other border node, accumulating region ids and edge ids into
   the caller's pair-indexed tables.  Used by both the sequential path
   and each worker domain (tables are then per-domain and merged). *)
let process_source g ~assignment ~borders_of ~sources ~idx ~set_acc ~sub_acc
    ~walk_regions ~walk_edges src =
  let spt = Psp_graph.Dijkstra.tree g ~source:src in
  let rows = borders_of.(src) in
  Array.iter
    (fun dst ->
      if spt.Psp_graph.Dijkstra.dist.(dst) < infinity then begin
        let cols = borders_of.(dst) in
        Marked.reset walk_regions;
        Psp_util.Dyn_array.clear walk_edges;
        (* walk the tree chain dst -> src *)
        let v = ref dst in
        Marked.add walk_regions assignment.(!v);
        while spt.Psp_graph.Dijkstra.parent_edge.(!v) >= 0 do
          Psp_util.Dyn_array.push walk_edges spt.Psp_graph.Dijkstra.parent_edge.(!v);
          v := spt.Psp_graph.Dijkstra.parent.(!v);
          Marked.add walk_regions assignment.(!v)
        done;
        let regions = Marked.items walk_regions in
        let edges = Psp_util.Dyn_array.to_array walk_edges in
        List.iter
          (fun i ->
            List.iter
              (fun j ->
                let p = idx i j in
                (match set_acc with
                | Some acc ->
                    let table = acc.(p) in
                    Array.iter
                      (fun r -> if r <> i && r <> j then Hashtbl.replace table r ())
                      regions
                | None -> ());
                match sub_acc with
                | Some acc ->
                    let table = acc.(p) in
                    Array.iter (fun e -> Hashtbl.replace table e ()) edges
                | None -> ())
              cols)
          rows
      end)
    sources

let compute ?domains g ~assignment ~border ~want_sets ~want_subgraphs =
  let n = G.node_count g in
  if Array.length assignment <> n then
    invalid_arg "Precompute.compute: assignment length mismatch";
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let region_count = Psp_partition.Border.region_count border in
  let pairs = npairs region_count in
  let idx = pair_index ~region_count in
  (* node -> regions for which it is a border node *)
  let borders_of = Array.make n [] in
  for r = 0 to region_count - 1 do
    Array.iter
      (fun v -> borders_of.(v) <- r :: borders_of.(v))
      (Psp_partition.Border.border_nodes border r)
  done;
  let sources = Psp_partition.Border.all_border_nodes border in
  let make_acc want =
    if want then
      Some (Array.init pairs (fun _ : (int, unit) Hashtbl.t -> Hashtbl.create 4))
    else None
  in
  let set_acc = make_acc want_sets in
  let sub_acc = make_acc want_subgraphs in
  let run_chunk ~set_acc ~sub_acc lo hi =
    let walk_regions = Marked.create region_count in
    let walk_edges = Psp_util.Dyn_array.create () in
    for k = lo to hi - 1 do
      process_source g ~assignment ~borders_of ~sources ~idx ~set_acc ~sub_acc
        ~walk_regions ~walk_edges sources.(k)
    done
  in
  let total = Array.length sources in
  if domains <= 1 || total < 2 * domains then
    run_chunk ~set_acc ~sub_acc 0 total
  else begin
    (* each worker fills private tables over its source chunk; the
       results are set unions, so the merge order is irrelevant and the
       output is identical to a sequential run *)
    let chunk = (total + domains - 1) / domains in
    let workers =
      List.init domains (fun d ->
          let lo = d * chunk and hi = min total ((d + 1) * chunk) in
          Domain.spawn (fun () ->
              let local_set = make_acc want_sets in
              let local_sub = make_acc want_subgraphs in
              if lo < hi then run_chunk ~set_acc:local_set ~sub_acc:local_sub lo hi;
              (local_set, local_sub)))
    in
    let merge ~into from =
      match (into, from) with
      | Some dst, Some src ->
          Array.iteri
            (fun p table -> Hashtbl.iter (fun k () -> Hashtbl.replace dst.(p) k ()) table)
            src
      | _ -> ()
    in
    List.iter
      (fun worker ->
        let local_set, local_sub = Domain.join worker in
        merge ~into:set_acc local_set;
        merge ~into:sub_acc local_sub)
      workers
  end;
  let sets =
    match set_acc with
    | None -> None
    | Some acc ->
        Some
          (Array.map
             (fun table ->
               let out = Hashtbl.fold (fun r () acc -> r :: acc) table [] in
               Array.of_list (List.sort compare out))
             acc)
  in
  let subgraphs =
    match sub_acc with
    | None -> None
    | Some acc ->
        (* add the crossing edges entering each endpoint region *)
        for i = 0 to region_count - 1 do
          let entering = Psp_partition.Border.entering_edges border i in
          for j = 0 to region_count - 1 do
            let p = idx i j in
            let table = acc.(p) in
            Array.iter (fun e -> Hashtbl.replace table e ()) entering
          done
        done;
        Some
          (Array.map
             (fun table ->
               let out = Hashtbl.fold (fun e () acc -> e :: acc) table [] in
               Array.of_list (List.sort compare out))
             acc)
  in
  { region_count; sets; subgraphs }

let region_count t = t.region_count
let pair_count t = npairs t.region_count

let region_set t i j =
  match t.sets with
  | None -> invalid_arg "Precompute.region_set: sets were not computed"
  | Some sets -> sets.(pair_index ~region_count:t.region_count i j)

let subgraph t i j =
  match t.subgraphs with
  | None -> invalid_arg "Precompute.subgraph: subgraphs were not computed"
  | Some subs -> subs.(pair_index ~region_count:t.region_count i j)

let max_set_cardinality t =
  match t.sets with
  | None -> invalid_arg "Precompute.max_set_cardinality: sets were not computed"
  | Some sets -> Array.fold_left (fun acc s -> max acc (Array.length s)) 0 sets

let set_cardinality_histogram t =
  match t.sets with
  | None -> invalid_arg "Precompute.set_cardinality_histogram: sets were not computed"
  | Some sets ->
      let m = Array.fold_left (fun acc s -> max acc (Array.length s)) 0 sets in
      let histogram = Array.make (m + 1) 0 in
      Array.iter (fun s -> histogram.(Array.length s) <- histogram.(Array.length s) + 1) sets;
      histogram
