module G = Psp_graph.Graph
module K = Psp_partition.Kdtree
module PF = Psp_storage.Page_file

type stats = {
  m : int;
  fi_span_sets : int;
  fi_span_subgraphs : int;
  replaced_pairs : int;
  borders_total : int;
  precompute_pairs : int;
}

type t = {
  scheme : string;
  graph : G.t;
  partition : K.t;
  header : Header.t;
  header_file : PF.t;
  lookup : PF.t option;
  index : PF.t option;
  data : PF.t;
  stats : stats;
}

let files t =
  (t.header_file :: Option.to_list t.lookup)
  @ Option.to_list t.index
  @ [ t.data ]

let total_bytes t = List.fold_left (fun acc f -> acc + PF.size_bytes f) 0 (files t)

let with_plan t plan =
  let header = { t.header with Header.plan } in
  let header_file = Header.to_page_file header ~page_size:(PF.page_size t.data) in
  { t with header; header_file }

type prepared = {
  p_partition : K.t;
  p_border : Psp_partition.Border.t;
  p_pre : Precompute.t;
  p_page_size : int;
}

let prepare ~page_size g =
  let node_bytes = Encoding.node_bytes Encoding.plain_config g in
  let partition = K.build_packed g ~node_bytes ~capacity:(page_size - 4) in
  let border =
    Psp_partition.Border.compute g ~assignment:partition.K.assignment
      ~region_count:partition.K.region_count
  in
  let pre =
    Precompute.compute g ~assignment:partition.K.assignment ~border ~want_sets:true
      ~want_subgraphs:true
  in
  { p_partition = partition; p_border = border; p_pre = pre; p_page_size = page_size }

let prepared_histogram p = Precompute.set_cardinality_histogram p.p_pre
let prepared_max_cardinality p = Precompute.max_set_cardinality p.p_pre

let no_stats =
  { m = 0;
    fi_span_sets = 0;
    fi_span_subgraphs = 0;
    replaced_pairs = 0;
    borders_total = 0;
    precompute_pairs = 0 }

(* Region blobs laid out at a fixed stride of [pages_per_region] pages;
   a region's payload may straddle its own pages (the client always
   fetches all of them together). *)
let write_regions file ~pages_per_region blobs =
  let psize = PF.page_size file in
  Array.iter
    (fun blob ->
      let len = Bytes.length blob in
      if len > pages_per_region * psize then
        invalid_arg "Database.write_regions: region payload exceeds its page budget";
      for p = 0 to pages_per_region - 1 do
        let start = p * psize in
        if start >= len then ignore (PF.append_blank file)
        else
          ignore (PF.append file (Bytes.sub blob start (min psize (len - start))))
      done)
    blobs

(* Dense look-up file: entry (i, j) at logical slot i*R + j, fixed
   8-byte entries, packed pages. *)
let build_lookup ~page_size ~region_count placements =
  let file = PF.create ~name:"lookup" ~page_size in
  let per_page = page_size / Encoding.lookup_entry_bytes in
  let buf = Buffer.create page_size in
  let flush () =
    if Buffer.length buf > 0 then begin
      ignore (PF.append file (Buffer.to_bytes buf));
      Buffer.clear buf
    end
  in
  let count = ref 0 in
  for i = 0 to region_count - 1 do
    for j = 0 to region_count - 1 do
      let p : Fi_builder.placement = placements i j in
      Buffer.add_bytes buf
        (Encoding.encode_lookup_entry ~page:p.Fi_builder.page ~offset:p.Fi_builder.offset
           ~span:p.Fi_builder.span);
      incr count;
      if !count mod per_page = 0 then flush ()
    done
  done;
  flush ();
  file

let region_blobs config g partition ?region_of ?landmark ?flags () =
  Array.init (partition : K.t).K.region_count (fun r ->
      Encoding.encode_region config g ?region_of ?landmark ?flags (K.nodes_of_region partition r))

let make_header ~scheme ~g ~partition ~pages_per_region ~plan ~config ~index_pages
    ~lookup_pages ~data_pages ~data_offset ~page_size =
  let region_count = (partition : K.t).K.region_count in
  let header =
    { Header.scheme;
      tree = partition.K.tree;
      region_count;
      region_first_page =
        Array.init region_count (fun r -> data_offset + (r * pages_per_region));
      pages_per_region;
      plan;
      config;
      heuristic_scale = G.min_weight_per_distance g;
      index_pages;
      lookup_pages;
      data_pages;
      data_offset }
  in
  (header, Header.to_page_file header ~page_size)

(* Shared pipeline for CI and PI. *)
let build_ci_pi ~scheme ~packed ~compress ~prepared ~epsilon ~page_size g =
  let config = { Encoding.plain_config with Encoding.quantize = epsilon } in
  let want_sets = scheme = "CI" in
  let partition, border, pre =
    match prepared with
    | Some p ->
        if not packed then invalid_arg "Database: prepared implies packed partitioning";
        if p.p_page_size <> page_size then
          invalid_arg "Database: prepared page size mismatch";
        (p.p_partition, p.p_border, p.p_pre)
    | None ->
        let node_bytes = Encoding.node_bytes config g in
        let capacity = page_size - 4 in
        let partition =
          if packed then K.build_packed g ~node_bytes ~capacity
          else K.build_plain g ~node_bytes ~capacity
        in
        let border =
          Psp_partition.Border.compute g ~assignment:partition.K.assignment
            ~region_count:partition.K.region_count
        in
        let pre =
          Precompute.compute g ~assignment:partition.K.assignment ~border ~want_sets
            ~want_subgraphs:(not want_sets)
        in
        (partition, border, pre)
  in
  let region_count = partition.K.region_count in
  let m = if want_sets then Precompute.max_set_cardinality pre else 0 in
  let builder =
    Fi_builder.create ~graph:g ~page_size ~compress ~quantize:epsilon
      ~m_bound:(if want_sets then Some m else None)
  in
  let placements = Hashtbl.create 256 in
  for i = 0 to region_count - 1 do
    for j = i to region_count - 1 do
      let placement =
        if want_sets then
          Fi_builder.add builder ~kind:Fi_builder.Region_set (Precompute.region_set pre i j)
        else Fi_builder.add builder ~kind:Fi_builder.Subgraph (Precompute.subgraph pre i j)
      in
      Hashtbl.replace placements (i, j) placement
    done
  done;
  let index = PF.create ~name:"index" ~page_size in
  Fi_builder.flush_to builder index;
  let lookup =
    build_lookup ~page_size ~region_count (fun i j ->
        Hashtbl.find placements (min i j, max i j))
  in
  let data = PF.create ~name:"data" ~page_size in
  write_regions data ~pages_per_region:1 (region_blobs config g partition ());
  let fi_span_sets = Fi_builder.max_span builder ~kind:Fi_builder.Region_set in
  let fi_span_subgraphs = Fi_builder.max_span builder ~kind:Fi_builder.Subgraph in
  let plan =
    if want_sets then Query_plan.Ci { fi_span = max 1 fi_span_sets; m }
    else Query_plan.Pi { fi_span = max 1 fi_span_subgraphs }
  in
  let header, header_file =
    make_header ~scheme ~g ~partition ~pages_per_region:1 ~plan ~config
      ~index_pages:(PF.page_count index) ~lookup_pages:(PF.page_count lookup)
      ~data_pages:(PF.page_count data) ~data_offset:0 ~page_size
  in
  { scheme;
    graph = g;
    partition;
    header;
    header_file;
    lookup = Some lookup;
    index = Some index;
    data;
    stats =
      { no_stats with
        m;
        fi_span_sets;
        fi_span_subgraphs;
        borders_total = Array.length (Psp_partition.Border.all_border_nodes border);
        precompute_pairs = Precompute.pair_count pre } }

let build_ci ?(packed = true) ?(compress = true) ?prepared ?(epsilon = 0.0) ~page_size g
    =
  build_ci_pi ~scheme:"CI" ~packed ~compress ~prepared ~epsilon ~page_size g

let build_pi ?(packed = true) ?(compress = true) ?prepared ?(epsilon = 0.0) ~page_size g
    =
  build_ci_pi ~scheme:"PI" ~packed ~compress ~prepared ~epsilon ~page_size g

let build_pi_star ?(compress = true) ~cluster ~page_size g =
  if cluster < 1 then invalid_arg "Database.build_pi_star: cluster must be >= 1";
  let config = Encoding.plain_config in
  let node_bytes = Encoding.node_bytes config g in
  let capacity = (cluster * page_size) - 4 in
  let partition = K.build_packed g ~node_bytes ~capacity in
  let border =
    Psp_partition.Border.compute g ~assignment:partition.K.assignment
      ~region_count:partition.K.region_count
  in
  let pre =
    Precompute.compute g ~assignment:partition.K.assignment ~border ~want_sets:false
      ~want_subgraphs:true
  in
  let region_count = partition.K.region_count in
  let builder = Fi_builder.create ~graph:g ~page_size ~compress ~quantize:0.0 ~m_bound:None in
  let placements = Hashtbl.create 256 in
  for i = 0 to region_count - 1 do
    for j = i to region_count - 1 do
      Hashtbl.replace placements (i, j)
        (Fi_builder.add builder ~kind:Fi_builder.Subgraph (Precompute.subgraph pre i j))
    done
  done;
  let index = PF.create ~name:"index" ~page_size in
  Fi_builder.flush_to builder index;
  let lookup =
    build_lookup ~page_size ~region_count (fun i j ->
        Hashtbl.find placements (min i j, max i j))
  in
  let data = PF.create ~name:"data" ~page_size in
  write_regions data ~pages_per_region:cluster (region_blobs config g partition ());
  let fi_span_subgraphs = Fi_builder.max_span builder ~kind:Fi_builder.Subgraph in
  let plan = Query_plan.Pi_star { fi_span = max 1 fi_span_subgraphs; cluster } in
  let header, header_file =
    make_header ~scheme:"PI*" ~g ~partition ~pages_per_region:cluster ~plan ~config
      ~index_pages:(PF.page_count index) ~lookup_pages:(PF.page_count lookup)
      ~data_pages:(PF.page_count data) ~data_offset:0 ~page_size
  in
  { scheme = "PI*";
    graph = g;
    partition;
    header;
    header_file;
    lookup = Some lookup;
    index = Some index;
    data;
    stats =
      { no_stats with
        fi_span_subgraphs;
        borders_total = Array.length (Psp_partition.Border.all_border_nodes border);
        precompute_pairs = Precompute.pair_count pre } }

let build_hy ?(compress = true) ?prepared ~threshold ~page_size g =
  if threshold < 0 then invalid_arg "Database.build_hy: threshold must be >= 0";
  let config = Encoding.plain_config in
  let partition, border, pre =
    match prepared with
    | Some p ->
        if p.p_page_size <> page_size then
          invalid_arg "Database: prepared page size mismatch";
        (p.p_partition, p.p_border, p.p_pre)
    | None ->
        let node_bytes = Encoding.node_bytes config g in
        let partition = K.build_packed g ~node_bytes ~capacity:(page_size - 4) in
        let border =
          Psp_partition.Border.compute g ~assignment:partition.K.assignment
            ~region_count:partition.K.region_count
        in
        let pre =
          Precompute.compute g ~assignment:partition.K.assignment ~border ~want_sets:true
            ~want_subgraphs:true
        in
        (partition, border, pre)
  in
  let region_count = partition.K.region_count in
  let m = Precompute.max_set_cardinality pre in
  let builder =
    Fi_builder.create ~graph:g ~page_size ~compress ~quantize:0.0 ~m_bound:(Some threshold)
  in
  let placements = Hashtbl.create 256 in
  let kinds = Hashtbl.create 256 in
  let replaced = ref 0 in
  for i = 0 to region_count - 1 do
    for j = i to region_count - 1 do
      let set = Precompute.region_set pre i j in
      if Array.length set > threshold then begin
        incr replaced;
        Hashtbl.replace kinds (i, j) Fi_builder.Subgraph;
        Hashtbl.replace placements (i, j)
          (Fi_builder.add builder ~kind:Fi_builder.Subgraph (Precompute.subgraph pre i j))
      end
      else begin
        Hashtbl.replace kinds (i, j) Fi_builder.Region_set;
        Hashtbl.replace placements (i, j)
          (Fi_builder.add builder ~kind:Fi_builder.Region_set set)
      end
    done
  done;
  (* combined file: index pages first, then region data *)
  let combined = PF.create ~name:"combined" ~page_size in
  Fi_builder.flush_to builder combined;
  let data_offset = PF.page_count combined in
  write_regions combined ~pages_per_region:1 (region_blobs config g partition ());
  let lookup =
    build_lookup ~page_size ~region_count (fun i j ->
        Hashtbl.find placements (min i j, max i j))
  in
  let r = max 1 (Fi_builder.max_span builder ~kind:Fi_builder.Region_set) in
  (* round-4 budget: worst over pairs of what remains after the r
     round-3 pages *)
  let round4 = ref 0 in
  for i = 0 to region_count - 1 do
    for j = i to region_count - 1 do
      let p = Hashtbl.find placements (i, j) in
      let need =
        match Hashtbl.find kinds (i, j) with
        | Fi_builder.Region_set -> Array.length (Fi_builder.fetch_set builder p) + 2
        | Fi_builder.Subgraph -> max 0 (p.Fi_builder.span - r) + 2
      in
      if need > !round4 then round4 := need
    done
  done;
  let plan = Query_plan.Hy { r; round4 = !round4 } in
  let header, header_file =
    make_header ~scheme:"HY" ~g ~partition ~pages_per_region:1 ~plan ~config
      ~index_pages:data_offset ~lookup_pages:(PF.page_count lookup)
      ~data_pages:(PF.page_count combined - data_offset) ~data_offset ~page_size
  in
  { scheme = "HY";
    graph = g;
    partition;
    header;
    header_file;
    lookup = Some lookup;
    index = None;
    data = combined;
    stats =
      { m;
        fi_span_sets = Fi_builder.max_span builder ~kind:Fi_builder.Region_set;
        fi_span_subgraphs = Fi_builder.max_span builder ~kind:Fi_builder.Subgraph;
        replaced_pairs = !replaced;
        borders_total = Array.length (Psp_partition.Border.all_border_nodes border);
        precompute_pairs = Precompute.pair_count pre } }

let build_lm ~anchors ~seed ~page_size g =
  let landmark = Psp_graph.Landmark.select_farthest g ~count:anchors ~seed in
  let config =
    { Encoding.plain_config with
      Encoding.with_region_ids = true;
      landmark_anchors = Psp_graph.Landmark.anchor_count landmark }
  in
  let node_bytes = Encoding.node_bytes config g in
  let capacity = page_size - 4 in
  let partition = K.build_packed g ~node_bytes ~capacity in
  let data = PF.create ~name:"data" ~page_size in
  write_regions data ~pages_per_region:1
    (region_blobs config g partition ~region_of:partition.K.assignment ~landmark ());
  (* provisional plan: reading the entire data file; calibration tightens it *)
  let plan = Query_plan.Lm { total_data_pages = PF.page_count data } in
  let header, header_file =
    make_header ~scheme:"LM" ~g ~partition ~pages_per_region:1 ~plan ~config ~index_pages:0
      ~lookup_pages:0 ~data_pages:(PF.page_count data) ~data_offset:0 ~page_size
  in
  ( { scheme = "LM";
      graph = g;
      partition;
      header;
      header_file;
      lookup = None;
      index = None;
      data;
      stats = no_stats },
    landmark )

let build_af ~target_regions ~page_size g =
  if target_regions < 2 then invalid_arg "Database.build_af: target_regions must be >= 2";
  let base_config = { Encoding.plain_config with Encoding.with_region_ids = true } in
  let base_bytes = Encoding.node_bytes base_config g in
  let total = ref 0 in
  for v = 0 to G.node_count g - 1 do
    total := !total + base_bytes v
  done;
  let capacity = max 64 (!total / target_regions) in
  let partition = K.build_packed g ~node_bytes:base_bytes ~capacity in
  let region_count = partition.K.region_count in
  let flags =
    Psp_graph.Arcflag.compute g ~region_of:partition.K.assignment ~region_count
  in
  let config = { base_config with Encoding.flag_bits = region_count } in
  let blobs =
    region_blobs config g partition ~region_of:partition.K.assignment
      ~flags:(Psp_graph.Arcflag.flags_of_edge flags) ()
  in
  let max_blob = Array.fold_left (fun acc b -> max acc (Bytes.length b)) 0 blobs in
  let pages_per_region = max 1 ((max_blob + page_size - 1) / page_size) in
  let data = PF.create ~name:"data" ~page_size in
  write_regions data ~pages_per_region blobs;
  let plan = Query_plan.Af { pages_per_region; max_regions = region_count } in
  let header, header_file =
    make_header ~scheme:"AF" ~g ~partition ~pages_per_region ~plan ~config ~index_pages:0
      ~lookup_pages:0 ~data_pages:(PF.page_count data) ~data_offset:0 ~page_size
  in
  ( { scheme = "AF";
      graph = g;
      partition;
      header;
      header_file;
      lookup = None;
      index = None;
      data;
      stats = no_stats },
    flags )
