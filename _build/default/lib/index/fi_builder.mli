(** Network-index file (F_i) construction with delta compression
    (§5.5 for region sets, §6 for subgraphs).

    Records are added in ascending (i, j) key order and packed
    contiguously.  A record may be stored as a *delta* against an
    earlier record — inclusions plus (for region sets) exclusions — when
    they share elements.  Retrieval must stay plan-shaped: the client
    always fetches a fixed number of consecutive pages starting at the
    page its look-up entry names.  We therefore anchor every record to a
    {e window base}: the first page of its reference chain.  The look-up
    entry stores (base page, byte offset from the base, page span
    through the record's end), so the fetched window always contains the
    record and its entire chain.  Reference pointers are byte offsets
    relative to the base page.

    Span discipline (what keeps the query plan tight):
    - a plain record smaller than a page never straddles one (§5.3);
    - a plain record larger than a page starts on a fresh page exactly
      when that reduces its span (§5.3);
    - a delta is used only when its window span stays within 1.5x (+1)
      of the record's plain span, so the plan's fi-span never blows up
      while long chains of well-overlapping records compress freely.

    Exclusions keep a region-set's inflated fetch set within the
    caller's m bound (inflation is free: the plan pads data-page
    fetches to m + 2 anyway).  Subgraph deltas never need exclusions —
    extra real edges cannot mislead a shortest-path search.

    Record wire format:
      u8 kind (0 = region set, 1 = edge subgraph)
      u32 reference pointer, base-relative (0xFFFFFFFF = none)
      varint inclusion count; encoded elements
      varint exclusion count; region-id deltas  (kind 0 only) *)

type kind = Region_set | Subgraph

type placement = {
  page : int;    (** window base page *)
  offset : int;  (** byte offset of the record from the base page start *)
  span : int;    (** pages from the base through the record's end *)
}

type t

val create :
  graph:Psp_graph.Graph.t -> page_size:int -> compress:bool -> quantize:float ->
  m_bound:int option -> t
(** [m_bound] activates exclusion logic for region sets: the inflated
    fetch set is kept within the bound (CI's m / HY's threshold).
    [quantize] > 0 stores subgraph edge weights on the (1+epsilon)
    grid. *)

val add : t -> kind:kind -> int array -> placement
(** Add the next record (elements: region ids for [Region_set], edge
    ids for [Subgraph]).  Returns its placement. *)

val fetch_set : t -> placement -> int array
(** The inflated element set a client will obtain for a record —
    superset of what was passed to {!add} (testing / plan auditing). *)

val max_span : t -> kind:kind -> int
(** Largest [span] among records of a kind (0 if none). *)

val page_count : t -> int

val flush_to : t -> Psp_storage.Page_file.t -> unit
(** Emit all pages.  No further [add] is allowed. *)

(** {2 Client-side record decoding} *)

type decoded =
  | Regions of int array                 (** inflated region-id fetch set *)
  | Edges of Encoding.edge_triple array  (** subgraph edge list (may repeat) *)

val decode :
  quantize:float -> pages:bytes array -> base_page:int -> offset:int -> decoded
(** Decode a record from a fetched page window.  [base_page] is the
    index *within the window* of the record's base page; [offset] the
    record's byte offset from that base (it may exceed one page).
    Reference chains resolve against the same base. *)
