(** Scheme databases: the files the LBS hosts, per scheme (§5–§6).

    Each builder runs the full offline pipeline — partitioning,
    pre-computation, file formation — and returns the resulting page
    files together with the header and build statistics.  File names
    follow the paper: "header" (F_h), "lookup" (F_l), "index" (F_i),
    "data" (F_d); HY concatenates index and data into one "combined"
    file precisely so the adversary cannot tell which kind of record
    answered a query (§6).

    LM and AF databases are built with a provisional plan whose page
    budget must be calibrated against a query workload (the paper
    derives it from exhaustive execution; see
    [Psp_core.Lm.calibrate] / [Psp_core.Af.calibrate]). *)

type stats = {
  m : int;                 (** CI/HY: max |S_{i,j}| before replacement *)
  fi_span_sets : int;      (** max pages spanned by a region-set record *)
  fi_span_subgraphs : int; (** max pages spanned by a subgraph record *)
  replaced_pairs : int;    (** HY: sets replaced by subgraphs *)
  borders_total : int;
  precompute_pairs : int;
}

type t = {
  scheme : string;
  graph : Psp_graph.Graph.t;
  partition : Psp_partition.Kdtree.t;
  header : Header.t;
  header_file : Psp_storage.Page_file.t;
  lookup : Psp_storage.Page_file.t option;
  index : Psp_storage.Page_file.t option;
  data : Psp_storage.Page_file.t;   (** HY: the combined file *)
  stats : stats;
}

val files : t -> Psp_storage.Page_file.t list
(** All files to register with the server (header first). *)

val total_bytes : t -> int

val with_plan : t -> Query_plan.t -> t
(** Replace the plan and re-emit the header file (plan calibration). *)

type prepared
(** The partition, border sets and full border-pair pre-computation for
    a (graph, page size) pair — the expensive offline work.  Parameter
    sweeps (HY thresholds, compression on/off) hand the same [prepared]
    to several builders instead of recomputing it. *)

val prepare : page_size:int -> Psp_graph.Graph.t -> prepared
(** Packed partitioning at one page per region plus both S_{i,j} and
    G_{i,j} pre-computations. *)

val prepared_histogram : prepared -> int array
(** |S_{i,j}| cardinality histogram (Figure 10a). *)

val prepared_max_cardinality : prepared -> int

val build_ci :
  ?packed:bool -> ?compress:bool -> ?prepared:prepared -> ?epsilon:float ->
  page_size:int -> Psp_graph.Graph.t -> t
(** Concise Index (§5).  [packed] (default true) selects §5.6
    partitioning; [compress] (default true) the §5.5 index compression.
    [prepared] (packed only) reuses an existing pre-computation.
    [epsilon] > 0 builds the approximate variant from the paper's
    future-work list: weights are stored on a (1+epsilon) grid,
    shrinking the database while bounding every answer's cost deviation
    by the factor (1+epsilon). *)

val build_pi :
  ?packed:bool -> ?compress:bool -> ?prepared:prepared -> ?epsilon:float ->
  page_size:int -> Psp_graph.Graph.t -> t
(** Passage Index (§6). *)

val build_hy :
  ?compress:bool -> ?prepared:prepared -> threshold:int -> page_size:int ->
  Psp_graph.Graph.t -> t
(** Hybrid (§6): region sets with |S_{i,j}| > [threshold] are replaced
    by their G_{i,j} subgraphs; index and data share one combined file. *)

val build_pi_star :
  ?compress:bool -> cluster:int -> page_size:int -> Psp_graph.Graph.t -> t
(** Clustered PI (§6): [cluster] pages per region. *)

val build_lm :
  anchors:int -> seed:int -> page_size:int -> Psp_graph.Graph.t ->
  t * Psp_graph.Landmark.t
(** Landmark baseline (§4); plan requires calibration. *)

val build_af :
  target_regions:int -> page_size:int -> Psp_graph.Graph.t ->
  t * Psp_graph.Arcflag.t
(** Arc-flag baseline (§4); plan requires calibration. *)
