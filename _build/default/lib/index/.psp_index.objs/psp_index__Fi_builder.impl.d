lib/index/fi_builder.ml: Array Buffer Bytes Encoding Hashtbl List Printf Psp_graph Psp_storage Psp_util
