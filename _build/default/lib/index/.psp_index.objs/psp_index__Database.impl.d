lib/index/database.ml: Array Buffer Bytes Encoding Fi_builder Hashtbl Header List Option Precompute Psp_graph Psp_partition Psp_storage Query_plan
