lib/index/header.ml: Array Bytes Encoding Psp_partition Psp_storage Psp_util Query_plan
