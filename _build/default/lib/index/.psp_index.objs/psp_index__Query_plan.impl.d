lib/index/query_plan.ml: Format List Printf Psp_util
