lib/index/precompute.ml: Array Domain Hashtbl List Psp_graph Psp_partition Psp_util
