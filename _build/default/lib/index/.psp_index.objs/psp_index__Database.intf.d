lib/index/database.mli: Header Psp_graph Psp_partition Psp_storage Query_plan
