lib/index/fi_builder.mli: Encoding Psp_graph Psp_storage
