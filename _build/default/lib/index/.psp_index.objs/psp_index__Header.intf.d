lib/index/header.mli: Encoding Psp_partition Psp_storage Query_plan
