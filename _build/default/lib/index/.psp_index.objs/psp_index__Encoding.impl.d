lib/index/encoding.ml: Array Int32 List Psp_graph Psp_util
