lib/index/encoding.mli: Psp_graph Psp_util
