lib/index/precompute.mli: Psp_graph Psp_partition
