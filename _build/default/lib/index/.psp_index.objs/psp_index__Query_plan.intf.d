lib/index/query_plan.mli: Format
