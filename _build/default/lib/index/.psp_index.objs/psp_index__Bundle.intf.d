lib/index/bundle.mli: Database Header Psp_storage
