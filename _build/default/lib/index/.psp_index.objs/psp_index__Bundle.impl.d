lib/index/bundle.ml: Array Buffer Database Filename Fun Header List Printf Psp_storage String Sys
