(** The public header file F_h (§5.3).

    Downloaded in full by every querying client (it is
    query-independent, so the plain download leaks nothing): the KD-tree
    partitioning, the region → data-page map, the query plan, and
    metadata of the other files.  The header is what a client needs to
    run the whole protocol with no other out-of-band knowledge. *)

type t = {
  scheme : string;                (** "CI", "PI", "HY", "PI*", "LM", "AF" *)
  tree : Psp_partition.Kdtree.tree;
  region_count : int;
  region_first_page : int array;  (** region id -> first page in the data file *)
  pages_per_region : int;
  plan : Query_plan.t;
  config : Encoding.config;       (** node-record layout of the data file *)
  heuristic_scale : float;
      (** graph-wide minimum edge cost per Euclidean length — the scale
          that makes distance-based lower bounds admissible for clients
          (LM's frontier bound); 0 disables them *)
  index_pages : int;              (** page count of F_i (0 if absent) *)
  lookup_pages : int;
  data_pages : int;
  data_offset : int;              (** HY: index of the first data page in the
                                      combined file; 0 elsewhere *)
}

val encode : t -> bytes
val decode : bytes -> t

val to_page_file : t -> page_size:int -> Psp_storage.Page_file.t
(** Chunk the encoded header into pages of a file named "header". *)

val of_pages : bytes array -> t
(** Reassemble from downloaded header pages. *)

val locate : t -> x:float -> y:float -> int
(** Map a coordinate to its region — the client's first step. *)
