module W = Psp_util.Byte_io.Writer
module R = Psp_util.Byte_io.Reader

type t = {
  scheme : string;
  tree : Psp_partition.Kdtree.tree;
  region_count : int;
  region_first_page : int array;
  pages_per_region : int;
  plan : Query_plan.t;
  config : Encoding.config;
  heuristic_scale : float;
  index_pages : int;
  lookup_pages : int;
  data_pages : int;
  data_offset : int;
}

(* Serializing just the tree requires a Kdtree.t; we only hold the tree,
   so we re-implement the same preorder encoding here for both ways. *)
let encode_tree w tree =
  let rec emit = function
    | Psp_partition.Kdtree.Leaf { region } ->
        W.u8 w 0;
        W.varint w region
    | Psp_partition.Kdtree.Split { axis; coord; less; geq } ->
        W.u8 w (match axis with Psp_partition.Kdtree.X -> 1 | Psp_partition.Kdtree.Y -> 2);
        W.float64 w coord;
        emit less;
        emit geq
  in
  emit tree

let decode_tree r =
  let rec parse () =
    match R.u8 r with
    | 0 -> Psp_partition.Kdtree.Leaf { region = R.varint r }
    | tag ->
        let axis = if tag = 1 then Psp_partition.Kdtree.X else Psp_partition.Kdtree.Y in
        let coord = R.float64 r in
        let less = parse () in
        let geq = parse () in
        Psp_partition.Kdtree.Split { axis; coord; less; geq }
  in
  parse ()

let encode t =
  let w = W.create ~capacity:1024 () in
  W.string w t.scheme;
  W.varint w t.region_count;
  Array.iter (fun p -> W.varint w p) t.region_first_page;
  W.varint w t.pages_per_region;
  let plan = Query_plan.encode t.plan in
  W.varint w (Bytes.length plan);
  W.bytes w plan;
  W.u8 w (if t.config.Encoding.with_region_ids then 1 else 0);
  W.varint w t.config.Encoding.landmark_anchors;
  W.varint w t.config.Encoding.flag_bits;
  W.float64 w t.config.Encoding.quantize;
  W.float64 w t.heuristic_scale;
  W.varint w t.index_pages;
  W.varint w t.lookup_pages;
  W.varint w t.data_pages;
  W.varint w t.data_offset;
  encode_tree w t.tree;
  W.contents w

let decode blob =
  let r = R.of_bytes blob in
  let scheme = R.string r in
  let region_count = R.varint r in
  let region_first_page = Array.init region_count (fun _ -> R.varint r) in
  let pages_per_region = R.varint r in
  let plan_len = R.varint r in
  let plan = Query_plan.decode (R.bytes r plan_len) in
  let with_region_ids = R.u8 r = 1 in
  let landmark_anchors = R.varint r in
  let flag_bits = R.varint r in
  let quantize = R.float64 r in
  let heuristic_scale = R.float64 r in
  let index_pages = R.varint r in
  let lookup_pages = R.varint r in
  let data_pages = R.varint r in
  let data_offset = R.varint r in
  let tree = decode_tree r in
  { scheme;
    tree;
    region_count;
    region_first_page;
    pages_per_region;
    plan;
    config = { Encoding.with_region_ids; landmark_anchors; flag_bits; quantize };
    heuristic_scale;
    index_pages;
    lookup_pages;
    data_pages;
    data_offset }

let to_page_file t ~page_size =
  let file = Psp_storage.Page_file.create ~name:"header" ~page_size in
  let blob = encode t in
  let len = Bytes.length blob in
  (* first page begins with the total byte length *)
  let w = W.create () in
  W.u32 w len;
  let prefix = W.contents w in
  let first_payload = min (page_size - Bytes.length prefix) len in
  ignore
    (Psp_storage.Page_file.append file
       (Bytes.cat prefix (Bytes.sub blob 0 first_payload)));
  let pos = ref first_payload in
  while !pos < len do
    let take = min page_size (len - !pos) in
    ignore (Psp_storage.Page_file.append file (Bytes.sub blob !pos take));
    pos := !pos + take
  done;
  file

let of_pages pages =
  let blob = Bytes.concat Bytes.empty (Array.to_list pages) in
  let r = R.of_bytes blob in
  let len = R.u32 r in
  decode (Bytes.sub blob 4 len)

let locate t ~x ~y = Psp_partition.Kdtree.locate_tree t.tree ~x ~y
