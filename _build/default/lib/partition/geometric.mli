(** The paper's exact geometric border nodes (§5.2).

    Border nodes are the intersection points of network edges with the
    KD-tree's split lines: virtual nodes that exist only during
    pre-computation and are discarded afterwards.  The production
    pipeline ({!Border}) uses the graph-theoretic realization (outside
    endpoints of crossing edges), which has the same covering guarantee;
    this module materializes the geometric construction so the two can
    be compared and the substitution audited.

    [augment] splits every region-crossing edge at each split-line
    crossing, producing a graph whose shortest-path metric is identical
    to the original's (each edge's pieces keep cost proportional to
    their length and sum to the original weight). *)

type t = {
  graph : Psp_graph.Graph.t;
      (** the augmented graph: original nodes first, then virtual
          border nodes *)
  original_nodes : int;
  orig_edge : int array;
      (** augmented edge id -> the original edge it is a piece of *)
  border_nodes : int array array;
      (** region -> virtual border nodes on its boundary *)
}

val augment : Psp_graph.Graph.t -> Kdtree.t -> t
(** @raise Invalid_argument on an empty graph. *)

val virtual_count : t -> int
(** Number of geometric border nodes created. *)

val border_count : t -> int -> int
(** Geometric border nodes on region [r]'s boundary. *)
