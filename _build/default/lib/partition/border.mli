(** Border nodes of a partition (§5.2).

    The paper's border nodes are the geometric intersections of edges
    with KD-tree split lines; they exist only during pre-computation and
    are discarded afterwards.  We realize them graph-theoretically: the
    border set of region R is the set of *outside endpoints of crossing
    edges* — every path from inside R to outside (or vice versa)
    traverses a crossing edge and therefore visits such a node
    immediately after leaving (before entering) R.  This preserves the
    covering property the pre-computation relies on: for any s ∈ Ri,
    t ∈ Rj, the shortest path decomposes as

      s ⇝ (inside Ri) → v ∈ border(Ri) ⇝ u ∈ border(Rj) → (inside Rj) ⇝ t

    so the regions/edges of all border-to-border shortest paths cover
    every possible query path outside Ri ∪ Rj. *)

type t

val compute : Psp_graph.Graph.t -> assignment:int array -> region_count:int -> t
(** @raise Invalid_argument on length mismatch. *)

val region_count : t -> int

val border_nodes : t -> int -> int array
(** Outside endpoints of edges crossing region [r]'s boundary (either
    direction), sorted, deduplicated. *)

val all_border_nodes : t -> int array
(** Union over all regions, sorted, deduplicated — the Dijkstra sources
    of the pre-computation. *)

val entering_edges : t -> int -> int array
(** Edge ids u→w with u outside region [r] and w inside — the crossing
    edges PI must pack into G_{i,j} so a client can re-enter R_j. *)

val crossing_count : t -> int -> int
(** Number of crossing edges (both directions) at region [r]. *)
