module G = Psp_graph.Graph

type t = {
  region_count : int;
  border : int array array; (* region -> outside endpoints *)
  entering : int array array; (* region -> edge ids entering it *)
  crossing : int array; (* region -> crossing edge count *)
}

let sort_dedup a =
  let a = Array.copy a in
  Array.sort compare a;
  let out = Psp_util.Dyn_array.create () in
  Array.iteri
    (fun i v -> if i = 0 || v <> a.(i - 1) then Psp_util.Dyn_array.push out v)
    a;
  Psp_util.Dyn_array.to_array out

let compute g ~assignment ~region_count =
  if Array.length assignment <> G.node_count g then
    invalid_arg "Border.compute: assignment length mismatch";
  let border = Array.make region_count [] in
  let entering = Array.make region_count [] in
  let crossing = Array.make region_count 0 in
  G.iter_edges g (fun e ->
      let ru = assignment.(e.G.src) and rv = assignment.(e.G.dst) in
      if ru <> rv then begin
        (* outside endpoint for the source's region is dst, and vice versa *)
        border.(ru) <- e.G.dst :: border.(ru);
        border.(rv) <- e.G.src :: border.(rv);
        entering.(rv) <- e.G.id :: entering.(rv);
        crossing.(ru) <- crossing.(ru) + 1;
        crossing.(rv) <- crossing.(rv) + 1
      end);
  { region_count;
    border = Array.map (fun l -> sort_dedup (Array.of_list l)) border;
    entering = Array.map (fun l -> sort_dedup (Array.of_list l)) entering;
    crossing }

let region_count t = t.region_count
let border_nodes t r = Array.copy t.border.(r)

let all_border_nodes t =
  sort_dedup (Array.concat (Array.to_list t.border))

let entering_edges t r = Array.copy t.entering.(r)
let crossing_count t r = t.crossing.(r)
