lib/partition/geometric.mli: Kdtree Psp_graph
