lib/partition/render.ml: Buffer Float Fun Kdtree List Printf Psp_graph String
