lib/partition/geometric.ml: Array Float Hashtbl Kdtree List Psp_graph
