lib/partition/border.mli: Psp_graph
