lib/partition/kdtree.ml: Array Printf Psp_graph Psp_util
