lib/partition/render.mli: Kdtree Psp_graph
