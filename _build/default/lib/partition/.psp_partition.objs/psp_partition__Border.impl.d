lib/partition/border.ml: Array Psp_graph Psp_util
