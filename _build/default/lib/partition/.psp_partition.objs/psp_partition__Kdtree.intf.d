lib/partition/kdtree.mli: Psp_graph
