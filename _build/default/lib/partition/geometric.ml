module G = Psp_graph.Graph

type t = {
  graph : G.t;
  original_nodes : int;
  orig_edge : int array;
  border_nodes : int array array;
}

(* Split segments of the tree, each clipped to its node's bounding box:
   (axis, coord, lo, hi) where [lo, hi] is the perpendicular extent. *)
let split_segments tree bbox =
  let segments = ref [] in
  let rec walk tree (x0, y0, x1, y1) =
    match tree with
    | Kdtree.Leaf _ -> ()
    | Kdtree.Split { axis; coord; less; geq } -> (
        match axis with
        | Kdtree.X ->
            segments := (Kdtree.X, coord, y0, y1) :: !segments;
            walk less (x0, y0, coord, y1);
            walk geq (coord, y0, x1, y1)
        | Kdtree.Y ->
            segments := (Kdtree.Y, coord, x0, x1) :: !segments;
            walk less (x0, y0, x1, coord);
            walk geq (x0, coord, x1, y1))
  in
  walk tree bbox;
  !segments

(* Parameters t in (0,1) where the segment (ux,uy)-(vx,vy) crosses a
   split segment. *)
let crossings segments ~ux ~uy ~vx ~vy =
  List.filter_map
    (fun (axis, coord, lo, hi) ->
      let a, b, pa, pb =
        match axis with
        | Kdtree.X -> (ux, vx, uy, vy)
        | Kdtree.Y -> (uy, vy, ux, vx)
      in
      if (a -. coord) *. (b -. coord) >= 0.0 || Float.abs (b -. a) < 1e-12 then None
      else begin
        let t = (coord -. a) /. (b -. a) in
        let perp = pa +. (t *. (pb -. pa)) in
        if t > 1e-9 && t < 1.0 -. 1e-9 && perp >= lo -. 1e-9 && perp <= hi +. 1e-9 then
          Some t
        else None
      end)
    segments
  |> List.sort_uniq compare

let augment g (part : Kdtree.t) =
  let n = G.node_count g in
  if n = 0 then invalid_arg "Geometric.augment: empty graph";
  let segments = split_segments part.Kdtree.tree (G.bounding_box g) in
  let b = G.Builder.create () in
  for v = 0 to n - 1 do
    ignore (G.Builder.add_node b ~x:(G.x g v) ~y:(G.y g v))
  done;
  (* the two directions of an undirected street share virtual nodes *)
  let virtuals : (int * int * int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let virtual_node ~u ~v ~x ~y =
    let key = (min u v, max u v, int_of_float (x *. 1e6), int_of_float (y *. 1e6)) in
    match Hashtbl.find_opt virtuals key with
    | Some id -> id
    | None ->
        let id = G.Builder.add_node b ~x ~y in
        Hashtbl.replace virtuals key id;
        id
  in
  (* one pass collects the augmented edge pieces with their origins;
     freeze re-sorts edges, so origins are recovered afterwards by an
     (endpoints, weight) key *)
  let weight_key w = int_of_float (w *. 1e6) in
  let origin_of : (int * int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  G.iter_edges g (fun e ->
      let ux, uy = G.coords g e.G.src and vx, vy = G.coords g e.G.dst in
      let points =
        List.map
          (fun t ->
            let x = ux +. (t *. (vx -. ux)) and y = uy +. (t *. (vy -. uy)) in
            (t, virtual_node ~u:e.G.src ~v:e.G.dst ~x ~y))
          (crossings segments ~ux ~uy ~vx ~vy)
      in
      let stops = ((0.0, e.G.src) :: points) @ [ (1.0, e.G.dst) ] in
      let rec pieces = function
        | (ta, a) :: ((tb, bn) :: _ as rest) ->
            let w = Float.max 1e-9 (e.G.weight *. (tb -. ta)) in
            G.Builder.add_edge b a bn w;
            Hashtbl.replace origin_of (a, bn, weight_key w) e.G.id;
            pieces rest
        | _ -> ()
      in
      pieces stops);
  let graph = G.Builder.freeze b in
  let orig_edge = Array.make (G.edge_count graph) (-1) in
  G.iter_edges graph (fun e ->
      match Hashtbl.find_opt origin_of (e.G.src, e.G.dst, weight_key e.G.weight) with
      | Some orig -> orig_edge.(e.G.id) <- orig
      | None -> ());
  (* border sets: a virtual node borders the regions its incident pieces
     lead into (located at piece midpoints) *)
  let region_count = part.Kdtree.region_count in
  let border_sets = Array.make region_count [] in
  for v = n to G.node_count graph - 1 do
    let regions = ref [] in
    G.iter_out graph v (fun e ->
        let mx = 0.5 *. (G.x graph v +. G.x graph e.G.dst) in
        let my = 0.5 *. (G.y graph v +. G.y graph e.G.dst) in
        let r = Kdtree.locate part ~x:mx ~y:my in
        if not (List.mem r !regions) then regions := r :: !regions);
    List.iter (fun r -> border_sets.(r) <- v :: border_sets.(r)) !regions
  done;
  { graph;
    original_nodes = n;
    orig_edge;
    border_nodes =
      Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) border_sets }

let virtual_count t = G.node_count t.graph - t.original_nodes
let border_count t r = Array.length t.border_nodes.(r)
