(** SVG rendering of road networks, KD-tree partitions and query
    footprints.

    Produces self-contained SVG documents for documentation and
    debugging: the network's edges, the partition's split lines, shaded
    regions (e.g. the set a CI query fetches), and a highlighted path.
    `pspc render` exposes this on the command line. *)

type options = {
  width : int;            (** pixel width; height follows the aspect ratio *)
  show_splits : bool;     (** draw KD-tree split lines *)
  highlight_regions : int list;  (** regions to shade *)
  path : int list;        (** node sequence to draw on top *)
}

val default_options : options

val svg : ?options:options -> Psp_graph.Graph.t -> Kdtree.t option -> string
(** An SVG document.  With a partition, split lines and shaded regions
    are available; without, just the network (and path). *)

val save : path:string -> string -> unit
(** Write an SVG document to a file. *)
