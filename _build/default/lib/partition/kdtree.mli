(** KD-tree partitioning of a road network into disk-page regions.

    §5.1: regions are the leaves of a KD-tree superimposed on the
    Euclidean plane.  The tree is concise (one split coordinate per
    internal node), lets any client map a coordinate pair to a region
    id, and produces spatially compact regions.

    Two constructions:

    - {!build_plain}: classic middle-of-the-byte-stream splitting until
      a leaf's node information fits in the page capacity.  Leaf
      payloads land anywhere in (capacity/2, capacity], wasting up to
      half of every page — the CI-P / PI-P configuration of Figure 8.
    - {!build_packed}: the §5.6 packing construction.  With z the
      largest single node's byte size, a "root-type" split is made at
      byte 2^i·(capacity − z) for the smallest i putting the split past
      the middle of the stream; its left subtree is then split plainly
      for exactly i levels (each leaf receiving ≈ capacity − z bytes),
      and the procedure recurses on the right subtree with the
      alternate axis.  Every page but possibly the last of each packed
      run is guaranteed at least capacity − 2z payload bytes — over
      95 % utilization on our networks.

    Node payload sizes are supplied by the caller ([node_bytes]),
    because they depend on the scheme (LM stores landmark vectors with
    each node, PI* enlarges capacity to several pages). *)

type axis = X | Y

type tree =
  | Leaf of { region : int }
  | Split of { axis : axis; coord : float; less : tree; geq : tree }
      (** points with axis-coordinate < coord go to [less] *)

type t = private {
  tree : tree;
  region_count : int;
  assignment : int array;    (** graph node -> region id *)
  region_nodes : int array array;  (** region id -> member nodes *)
}

val build_packed :
  Psp_graph.Graph.t -> node_bytes:(int -> int) -> capacity:int -> t
(** @raise Invalid_argument if any node's payload exceeds [capacity] or
    the graph is empty. *)

val build_plain :
  Psp_graph.Graph.t -> node_bytes:(int -> int) -> capacity:int -> t

val locate : t -> x:float -> y:float -> int
(** Region containing a point (clients map their source/destination
    coordinates with this, using only header information). *)

val region_of_node : t -> int -> int
val nodes_of_region : t -> int -> int array

val region_bytes : t -> node_bytes:(int -> int) -> int -> int
(** Total payload bytes of a region under the given encoding. *)

val utilization : t -> node_bytes:(int -> int) -> capacity:int -> float
(** Mean payload/capacity over regions — Figure 8(a). *)

val serialize : t -> bytes
(** Concise header form: structure tags + split coordinates + region
    ids (preorder). *)

val deserialize : bytes -> tree * int
(** [(tree, region_count)] back from {!serialize} output — what a
    client reconstructs from the header (it has no assignment array). *)

val locate_tree : tree -> x:float -> y:float -> int
(** Point location on a client-side deserialized tree. *)
