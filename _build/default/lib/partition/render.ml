module G = Psp_graph.Graph

type options = {
  width : int;
  show_splits : bool;
  highlight_regions : int list;
  path : int list;
}

let default_options =
  { width = 900; show_splits = true; highlight_regions = []; path = [] }

(* Walk the tree tracking each node's bounding box to materialize split
   segments and leaf rectangles. *)
let rec walk tree (x0, y0, x1, y1) ~on_split ~on_leaf =
  match tree with
  | Kdtree.Leaf { region } -> on_leaf region (x0, y0, x1, y1)
  | Kdtree.Split { axis; coord; less; geq } -> (
      match axis with
      | Kdtree.X ->
          on_split (coord, y0, coord, y1);
          walk less (x0, y0, coord, y1) ~on_split ~on_leaf;
          walk geq (coord, y0, x1, y1) ~on_split ~on_leaf
      | Kdtree.Y ->
          on_split (x0, coord, x1, coord);
          walk less (x0, y0, x1, coord) ~on_split ~on_leaf;
          walk geq (x0, coord, x1, y1) ~on_split ~on_leaf)

let svg ?(options = default_options) g partition =
  let x0, y0, x1, y1 = G.bounding_box g in
  let margin = 0.03 *. Float.max (x1 -. x0) (y1 -. y0) in
  let x0 = x0 -. margin and y0 = y0 -. margin in
  let x1 = x1 +. margin and y1 = y1 +. margin in
  let w = float_of_int options.width in
  let scale = w /. (x1 -. x0) in
  let h = (y1 -. y0) *. scale in
  let px x = (x -. x0) *. scale in
  (* SVG y grows downward; flip so north stays up *)
  let py y = h -. ((y -. y0) *. scale) in
  let buf = Buffer.create 65536 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
     viewBox=\"0 0 %.0f %.0f\">\n"
    w h w h;
  out "<rect width=\"100%%\" height=\"100%%\" fill=\"#fdfdf8\"/>\n";
  (* shaded regions first (underneath everything) *)
  (match partition with
  | Some part when options.highlight_regions <> [] ->
      walk part.Kdtree.tree (x0, y0, x1, y1)
        ~on_split:(fun _ -> ())
        ~on_leaf:(fun region (rx0, ry0, rx1, ry1) ->
          if List.mem region options.highlight_regions then
            out
              "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
               fill=\"#ffd54a\" fill-opacity=\"0.45\"/>\n"
              (px rx0) (py ry1)
              ((rx1 -. rx0) *. scale)
              ((ry1 -. ry0) *. scale))
  | _ -> ());
  (* edges: highways (fast factor) drawn heavier *)
  let ratio e = e.G.weight /. Float.max 1e-9 (G.euclidean g e.G.src e.G.dst) in
  G.iter_edges g (fun e ->
      if e.G.src < e.G.dst then begin
        let sx, sy = G.coords g e.G.src and tx, ty = G.coords g e.G.dst in
        let highway = ratio e < 0.9 in
        out
          "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\" \
           stroke-width=\"%.1f\"/>\n"
          (px sx) (py sy) (px tx) (py ty)
          (if highway then "#7a7a72" else "#c4c4ba")
          (if highway then 1.8 else 0.8)
      end);
  (* KD split lines *)
  (match partition with
  | Some part when options.show_splits ->
      walk part.Kdtree.tree (x0, y0, x1, y1)
        ~on_leaf:(fun _ _ -> ())
        ~on_split:(fun (ax, ay, bx, by) ->
          out
            "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#4a7ab5\" \
             stroke-width=\"0.9\" stroke-dasharray=\"5,4\" stroke-opacity=\"0.8\"/>\n"
            (px ax) (py ay) (px bx) (py by))
  | _ -> ());
  (* path on top *)
  (match options.path with
  | [] | [ _ ] -> ()
  | nodes ->
      let points =
        String.concat " "
          (List.map
             (fun v ->
               let x, y = G.coords g v in
               Printf.sprintf "%.1f,%.1f" (px x) (py y))
             nodes)
      in
      out
        "<polyline points=\"%s\" fill=\"none\" stroke=\"#c0392b\" stroke-width=\"3\" \
         stroke-linejoin=\"round\" stroke-linecap=\"round\"/>\n"
        points;
      let mark v label =
        let x, y = G.coords g v in
        out
          "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"6\" fill=\"#c0392b\"/>\n\
           <text x=\"%.1f\" y=\"%.1f\" font-family=\"sans-serif\" font-size=\"14\" \
           fill=\"#222\">%s</text>\n"
          (px x) (py y)
          (px x +. 9.0)
          (py y -. 9.0)
          label
      in
      mark (List.hd nodes) "s";
      mark (List.nth nodes (List.length nodes - 1)) "t");
  out "</svg>\n";
  Buffer.contents buf

let save ~path document =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc document)
