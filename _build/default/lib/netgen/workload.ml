module G = Psp_graph.Graph

type distribution =
  | Uniform
  | Local of { radius : float }
  | Commute of { hubs : int }
  | Repeated of { distinct : int }

let describe = function
  | Uniform -> "uniform"
  | Local { radius } -> Printf.sprintf "local(r=%.0f)" radius
  | Commute { hubs } -> Printf.sprintf "commute(%d hubs)" hubs
  | Repeated { distinct } -> Printf.sprintf "repeated(%d)" distinct

let generate g distribution ~count ~seed =
  let rng = Psp_util.Rng.create seed in
  let n = G.node_count g in
  if n < 2 then invalid_arg "Workload.generate: need at least two nodes";
  let uniform_other s =
    let rec draw () =
      let t = Psp_util.Rng.int rng n in
      if t = s then draw () else t
    in
    draw ()
  in
  (* rejection-sample a node within radius; give up to uniform after a
     bounded number of attempts (isolated corners of sparse maps) *)
  let near ~of_ ~radius =
    let rec attempt k =
      if k = 0 then uniform_other of_
      else begin
        let v = Psp_util.Rng.int rng n in
        if v <> of_ && G.euclidean g of_ v <= radius then v else attempt (k - 1)
      end
    in
    attempt 64
  in
  match distribution with
  | Uniform ->
      Array.init count (fun _ ->
          let s = Psp_util.Rng.int rng n in
          (s, uniform_other s))
  | Local { radius } ->
      if radius <= 0.0 then invalid_arg "Workload.generate: radius must be positive";
      Array.init count (fun _ ->
          let s = Psp_util.Rng.int rng n in
          (s, near ~of_:s ~radius))
  | Commute { hubs } ->
      if hubs < 1 then invalid_arg "Workload.generate: hubs must be >= 1";
      let hub_nodes = Array.init hubs (fun _ -> Psp_util.Rng.int rng n) in
      let x0, y0, x1, y1 = G.bounding_box g in
      let radius = 0.08 *. Float.max (x1 -. x0) (y1 -. y0) in
      Array.init count (fun _ ->
          let s = Psp_util.Rng.int rng n in
          let hub = Psp_util.Rng.pick rng hub_nodes in
          let t = near ~of_:hub ~radius in
          if t = s then (s, uniform_other s) else (s, t))
  | Repeated { distinct } ->
      if distinct < 1 then invalid_arg "Workload.generate: distinct must be >= 1";
      let base =
        Array.init distinct (fun _ ->
            let s = Psp_util.Rng.int rng n in
            (s, uniform_other s))
      in
      Array.init count (fun i -> base.(i mod distinct))
