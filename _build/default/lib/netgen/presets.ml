type name = Oldenburg | Germany | Argentina | Denmark | India | North_america

let all = [| Oldenburg; Germany; Argentina; Denmark; India; North_america |]

let short_name = function
  | Oldenburg -> "Old."
  | Germany -> "Ger."
  | Argentina -> "Arg."
  | Denmark -> "Den."
  | India -> "Ind."
  | North_america -> "Nor."

let full_name = function
  | Oldenburg -> "Oldenburg"
  | Germany -> "Germany"
  | Argentina -> "Argentina"
  | Denmark -> "Denmark"
  | India -> "India"
  | North_america -> "North America"

let of_string s =
  match String.lowercase_ascii s with
  | "old" | "old." | "oldenburg" -> Some Oldenburg
  | "ger" | "ger." | "germany" -> Some Germany
  | "arg" | "arg." | "argentina" -> Some Argentina
  | "den" | "den." | "denmark" -> Some Denmark
  | "ind" | "ind." | "india" -> Some India
  | "nor" | "nor." | "north america" | "north_america" -> Some North_america
  | _ -> None

(* Table 1 of the paper. *)
let paper_nodes = function
  | Oldenburg -> 6_105
  | Germany -> 28_867
  | Argentina -> 85_287
  | Denmark -> 136_377
  | India -> 149_566
  | North_america -> 175_813

let paper_edges = function
  | Oldenburg -> 7_029
  | Germany -> 30_429
  | Argentina -> 88_357
  | Denmark -> 143_612
  | India -> 155_483
  | North_america -> 179_179

let default_seed = function
  | Oldenburg -> 0x01d
  | Germany -> 0x6e7
  | Argentina -> 0xa76
  | Denmark -> 0xde2
  | India -> 0x12d
  | North_america -> 0x207

let spec ?(scale = 1.0) ?seed name =
  if scale <= 0.0 then invalid_arg "Presets.spec: scale must be positive";
  let scaled v = max 16 (int_of_float (float_of_int v /. scale)) in
  let nodes = scaled (paper_nodes name) in
  let edges = max (nodes + 4) (scaled (paper_edges name)) in
  (* Extent grows with sqrt(n) so road density stays constant. *)
  let extent = 1_000.0 *. sqrt (float_of_int nodes /. 1_000.0) in
  { Synthetic.nodes;
    edges;
    width = extent;
    height = extent;
    seed = (match seed with Some s -> s | None -> default_seed name) }

let graph ?scale ?seed name = Synthetic.generate (spec ?scale ?seed name)
