(** Synthetic road-network generation.

    The paper evaluates on six real maps (Table 1) that we cannot ship.
    Real road networks are extremely sparse — edge/node ratios of
    1.02–1.15, because most nodes are degree-2 polyline points along
    road segments.  The generator reproduces exactly that structure:

    + a jittered grid of junctions sized so its cyclomatic number
      (edges − nodes, the count of independent cycles) matches the
      target network's;
    + random junction-junction streets deleted (keeping connectivity)
      to fine-tune the cyclomatic number;
    + edges repeatedly subdivided with intermediate polyline nodes —
      each subdivision adds one node and one edge, preserving the
      cyclomatic number — until the target node count is reached.

    Weights are Euclidean lengths times a per-street curvature factor;
    every fifth backbone line is a highway with a lower factor, giving
    the road hierarchy real maps have (shortest paths collapse onto
    shared corridors).  The Euclidean A* heuristic stays admissible via
    {!Psp_graph.Graph.min_weight_per_distance} scaling.
    All randomness is seeded: a spec generates the same network
    everywhere. *)

type spec = {
  nodes : int;        (** target node count (±0) *)
  edges : int;        (** target undirected street count (approximate, ±2%) *)
  width : float;      (** extent of the Euclidean bounding box *)
  height : float;
  seed : int;
}

val generate : spec -> Psp_graph.Graph.t
(** Connected, undirected (each street is two directed edges) road-like
    network with exactly [spec.nodes] nodes.
    @raise Invalid_argument if [nodes < 4] or [edges < nodes - 1]. *)

val random_queries :
  Psp_graph.Graph.t -> count:int -> seed:int -> (int * int) array
(** Uniformly random source–destination node pairs (s ≠ t) — the
    1,000-query workloads of §7.1. *)
