(** The six road networks of the paper's Table 1, as generator presets.

    Every preset mirrors the published node and edge counts; [scale]
    divides both so the heavy index pre-computations stay tractable in
    continuous-integration runs (the paper's own pre-computation ran
    offline).  [scale = 1.0] reproduces the full published sizes. *)

type name = Oldenburg | Germany | Argentina | Denmark | India | North_america

val all : name array
(** In the paper's order (ascending size). *)

val of_string : string -> name option
(** Accepts the paper's abbreviations ("old", "ger", "arg", "den",
    "ind", "nor") and full names, case-insensitively. *)

val short_name : name -> string
(** "Old.", "Ger.", ... as printed in the paper's charts. *)

val full_name : name -> string

val paper_nodes : name -> int
val paper_edges : name -> int

val spec : ?scale:float -> ?seed:int -> name -> Synthetic.spec
(** Generator spec with node/edge counts = paper counts / scale
    (default scale 1.0; default seed fixed per network). *)

val graph : ?scale:float -> ?seed:int -> name -> Psp_graph.Graph.t
(** Generate the network. *)
