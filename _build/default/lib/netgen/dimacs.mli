(** DIMACS shortest-path challenge format I/O.

    Real road maps (e.g. the 9th DIMACS Implementation Challenge files
    used throughout the literature) come as a `.gr` graph file (`a u v w`
    arc lines, 1-based ids) and a `.co` coordinate file (`v id x y`).
    Parsing them makes the whole framework runnable on real data when it
    is available; writing lets generated networks be exported. *)

exception Parse_error of string * int
(** (message, line number). *)

val parse : gr:string -> co:string -> Psp_graph.Graph.t
(** Build a graph from the contents of a `.gr` and a `.co` file.
    Integer DIMACS weights and coordinates are used as-is (floats).
    @raise Parse_error on malformed input, unknown node ids, or a node
    count mismatch between the two files. *)

val parse_files : gr_path:string -> co_path:string -> Psp_graph.Graph.t
(** Same, reading from disk. *)

val render : Psp_graph.Graph.t -> comment:string -> string * string
(** [(gr, co)] file contents for a graph. *)

val write_files :
  Psp_graph.Graph.t -> comment:string -> gr_path:string -> co_path:string -> unit
