module G = Psp_graph.Graph

exception Parse_error of string * int

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (m, line))) fmt

let lines_of s = String.split_on_char '\n' s

let tokens line = String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let parse ~gr ~co =
  (* first pass over .co to learn coordinates, ids are 1-based *)
  let coords = Hashtbl.create 1024 in
  let expected_nodes = ref None in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match tokens line with
      | [] | "c" :: _ -> ()
      | [ "p"; "aux"; "sp"; "co"; n ] ->
          expected_nodes := int_of_string_opt n
      | [ "v"; id; x; y ] -> (
          match (int_of_string_opt id, float_of_string_opt x, float_of_string_opt y) with
          | Some id, Some x, Some y -> Hashtbl.replace coords id (x, y)
          | _ -> fail lineno "co: malformed v line %S" line)
      | _ -> fail lineno "co: unrecognized line %S" line)
    (lines_of co);
  (match !expected_nodes with
  | Some n when Hashtbl.length coords <> n ->
      fail 0 "co: header declares %d nodes but %d v-lines found" n (Hashtbl.length coords)
  | _ -> ());
  let n = Hashtbl.length coords in
  let b = G.Builder.create () in
  for id = 1 to n do
    match Hashtbl.find_opt coords id with
    | None -> fail 0 "co: node ids are not contiguous (missing %d)" id
    | Some (x, y) -> ignore (G.Builder.add_node b ~x ~y)
  done;
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match tokens line with
      | [] | "c" :: _ | "p" :: _ -> ()
      | [ "a"; u; v; w ] -> (
          match (int_of_string_opt u, int_of_string_opt v, float_of_string_opt w) with
          | Some u, Some v, Some w when u >= 1 && u <= n && v >= 1 && v <= n ->
              if w <= 0.0 then fail lineno "gr: non-positive weight"
              else G.Builder.add_edge b (u - 1) (v - 1) w
          | _ -> fail lineno "gr: malformed a line %S" line)
      | _ -> fail lineno "gr: unrecognized line %S" line)
    (lines_of gr);
  G.Builder.freeze b

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_files ~gr_path ~co_path =
  parse ~gr:(read_file gr_path) ~co:(read_file co_path)

let render g ~comment =
  let n = G.node_count g and m = G.edge_count g in
  let gr = Buffer.create (32 * m) in
  Buffer.add_string gr (Printf.sprintf "c %s\n" comment);
  Buffer.add_string gr (Printf.sprintf "p sp %d %d\n" n m);
  G.iter_edges g (fun e ->
      Buffer.add_string gr
        (Printf.sprintf "a %d %d %d\n" (e.G.src + 1) (e.G.dst + 1)
           (max 1 (int_of_float (Float.round e.G.weight)))));
  let co = Buffer.create (24 * n) in
  Buffer.add_string co (Printf.sprintf "c %s\n" comment);
  Buffer.add_string co (Printf.sprintf "p aux sp co %d\n" n);
  for v = 0 to n - 1 do
    Buffer.add_string co
      (Printf.sprintf "v %d %d %d\n" (v + 1)
         (int_of_float (Float.round (G.x g v)))
         (int_of_float (Float.round (G.y g v))))
  done;
  (Buffer.contents gr, Buffer.contents co)

let write_files g ~comment ~gr_path ~co_path =
  let gr, co = render g ~comment in
  let write path data =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc data)
  in
  write gr_path gr;
  write co_path co
