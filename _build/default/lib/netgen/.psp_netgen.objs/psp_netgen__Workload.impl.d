lib/netgen/workload.ml: Array Float Printf Psp_graph Psp_util
