lib/netgen/workload.mli: Psp_graph
