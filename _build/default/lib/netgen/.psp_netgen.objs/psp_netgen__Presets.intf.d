lib/netgen/presets.mli: Psp_graph Synthetic
