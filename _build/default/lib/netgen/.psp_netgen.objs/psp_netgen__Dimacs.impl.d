lib/netgen/dimacs.ml: Buffer Float Fun Hashtbl List Printf Psp_graph String
