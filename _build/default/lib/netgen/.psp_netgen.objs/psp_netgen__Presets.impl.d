lib/netgen/presets.ml: String Synthetic
