lib/netgen/synthetic.ml: Array Float List Psp_graph Psp_util Queue
