lib/netgen/synthetic.mli: Psp_graph
