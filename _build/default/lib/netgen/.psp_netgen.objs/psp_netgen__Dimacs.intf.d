lib/netgen/dimacs.mli: Psp_graph
