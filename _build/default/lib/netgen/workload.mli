(** Query workload generation.

    The paper's evaluation uses uniformly random source–destination
    pairs (§7.1); real deployments see skewed patterns.  Because every
    query is padded to the same plan, the private schemes' response
    times are *identical* across all of these distributions — a property
    the benchmark's extras section demonstrates with this module. *)

type distribution =
  | Uniform
      (** independent uniform endpoints (the paper's workload) *)
  | Local of { radius : float }
      (** destination within Euclidean [radius] of the source —
          neighbourhood errands *)
  | Commute of { hubs : int }
      (** destinations concentrated near a few hub nodes — rush-hour
          traffic into business districts *)
  | Repeated of { distinct : int }
      (** the same few queries over and over — exactly the pattern
          access-pattern attacks exploit against weaker schemes *)

val generate :
  Psp_graph.Graph.t -> distribution -> count:int -> seed:int -> (int * int) array
(** [count] queries with s <> t; deterministic in [seed]. *)

val describe : distribution -> string
