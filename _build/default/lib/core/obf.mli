(** The obfuscation baseline OBF [Lee et al., CIKM 2009] (§2.1, §7.3).

    The client hides s among a set S of decoy sources and t among a set
    T of decoy destinations; the LBS computes all |S|·|T| shortest paths
    in plaintext and ships them back; the client keeps the real one.
    Decoys are drawn uniformly from the network (as in the paper's
    experiment, which randomizes decoys to leak a little less than the
    near-by placement of the original scheme).

    This scheme is *not* private — the LBS learns S and T — and is
    benchmarked only to position the PIR schemes' overhead (Figure 6).
    Server processing is measured (real path computations on the
    hosted graph); communication is modeled as the encoded size of all
    returned paths over the Table 2 client link. *)

type t

type placement =
  | Uniform
      (** decoys anywhere on the network — the paper's experiment (§7.3),
          leaking a little less *)
  | Near of float
      (** decoys within a Euclidean radius of the real endpoints — the
          original scheme [Lee et al.], faster for the server but telling
          the LBS roughly where s and t are *)

val create :
  cost:Psp_pir.Cost_model.t -> seed:int -> Psp_graph.Graph.t -> t

val query :
  ?placement:placement -> t -> set_size:int -> s:int -> t_node:int ->
  Response_time.t * Psp_graph.Path.t option
(** One obfuscated query with |S| = |T| = [set_size]; decoys drawn per
    [placement] (default [Uniform]).
    @raise Invalid_argument if [set_size < 1]. *)
