(** Theorem 1 as executable checks.

    The security argument has two parts the code can verify:

    + every query produces a byte-for-byte identical adversary view
      (same rounds, same files, same page counts, in the same order);
    + that view matches the published query plan, so it was knowable
      before any query ran — the adversary learns nothing it did not
      already know.

    The test suite runs these checks for every scheme over random
    workloads; the [audit_privacy] example demonstrates them
    interactively. *)

val indistinguishable :
  Psp_pir.Trace.t list -> (unit, string) Stdlib.result
(** [Ok ()] iff all traces are pairwise equal (vacuously for <2). *)

val expected_trace :
  Psp_index.Header.t -> header_pages:int -> Psp_pir.Trace.t
(** The trace any conforming query must produce, derived from the plan
    alone. *)

val conforms :
  Psp_index.Header.t -> header_pages:int -> Psp_pir.Trace.t -> (unit, string) Stdlib.result
(** Check one observed trace against the plan-derived expectation. *)
