lib/core/response_time.ml: Client Format List Psp_pir
