lib/core/response_time.mli: Client Format
