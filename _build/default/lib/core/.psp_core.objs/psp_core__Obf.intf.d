lib/core/obf.mli: Psp_graph Psp_pir Response_time
