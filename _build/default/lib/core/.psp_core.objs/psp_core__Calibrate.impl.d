lib/core/calibrate.ml: Array Bytes Client Psp_index Psp_pir
