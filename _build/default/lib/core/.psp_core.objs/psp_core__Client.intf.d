lib/core/client.mli: Psp_graph Psp_pir
