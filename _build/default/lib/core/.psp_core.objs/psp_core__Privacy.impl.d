lib/core/privacy.ml: Format Printf Psp_index Psp_pir
