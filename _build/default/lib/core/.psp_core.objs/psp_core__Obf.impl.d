lib/core/obf.ml: Array Psp_graph Psp_pir Psp_util Response_time Sys
