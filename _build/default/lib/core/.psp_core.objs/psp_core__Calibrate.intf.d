lib/core/calibrate.mli: Psp_index
