lib/core/privacy.mli: Psp_index Psp_pir Stdlib
