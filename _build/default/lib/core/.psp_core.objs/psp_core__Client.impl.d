lib/core/client.ml: Array Bytes Float Hashtbl List Option Printf Psp_graph Psp_index Psp_partition Psp_pir Psp_storage Psp_util Sys
