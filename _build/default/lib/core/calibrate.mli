(** Query-plan calibration for the LM and AF baselines (§4).

    Their plans are a single page budget: the maximum number of data
    pages any query needs.  The paper derives it by executing the
    algorithm for *every* source–destination pair; that is quadratic in
    the network, so we derive it from a query workload (use the same
    workload the experiment will run, or a superset).  The budget is
    computed by running the real client algorithm unpadded against a
    scratch server and taking the maximum. *)

val lm :
  Psp_index.Database.t -> queries:(int * int) array -> Psp_index.Database.t
(** Returns the database with its [Lm] plan bound to the workload
    maximum. *)

val af :
  Psp_index.Database.t -> queries:(int * int) array -> Psp_index.Database.t
