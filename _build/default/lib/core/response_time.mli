(** Response-time decomposition (§7.1, Table 3).

    The paper reports elapsed time from query submission to the client
    holding the shortest path, split into (i) server processing — PIR
    time for the private schemes, plaintext query processing for OBF —
    (ii) communication time and (iii) client-side computation. *)

type t = {
  pir_seconds : float;
  comm_seconds : float;
  server_cpu_seconds : float;
  client_seconds : float;
}

val total : t -> float

val of_result : Client.result -> t

val zero : t
val add : t -> t -> t
val scale : float -> t -> t

val mean : t list -> t
(** Component-wise mean (the 1,000-query workload average). *)

val pp : Format.formatter -> t -> unit
