module DB = Psp_index.Database
module QP = Psp_index.Query_plan

(* Run the real (unpadded) client over the workload on a scratch
   simulated server and record the largest number of regions fetched. *)
let max_regions_needed db ~queries =
  let server =
    Psp_pir.Server.create ~mode:`Simulated ~cost:Psp_pir.Cost_model.ibm4764
      ~key:(Bytes.make 32 'k') (DB.files db)
  in
  Array.fold_left
    (fun acc (s, t) ->
      let r = Client.query_nodes ~pad:false server db.DB.graph s t in
      max acc r.Client.regions_fetched)
    2 queries

let lm db ~queries =
  match db.DB.header.Psp_index.Header.plan with
  | QP.Lm _ ->
      let regions = max_regions_needed db ~queries in
      DB.with_plan db (QP.Lm { total_data_pages = regions })
  | _ -> invalid_arg "Calibrate.lm: not an LM database"

let af db ~queries =
  match db.DB.header.Psp_index.Header.plan with
  | QP.Af { pages_per_region; _ } ->
      let regions = max_regions_needed db ~queries in
      DB.with_plan db (QP.Af { pages_per_region; max_regions = regions })
  | _ -> invalid_arg "Calibrate.af: not an AF database"
