module T = Psp_pir.Trace
module H = Psp_index.Header
module QP = Psp_index.Query_plan

let indistinguishable traces =
  match traces with
  | [] | [ _ ] -> Ok ()
  | first :: rest ->
      let rec check i = function
        | [] -> Ok ()
        | t :: tl ->
            if T.equal first t then check (i + 1) tl
            else
              Error
                (Printf.sprintf "trace %d differs from trace 0 (%s vs %s)" i
                   (T.fingerprint t) (T.fingerprint first))
      in
      check 1 rest

let expected_trace header ~header_pages =
  let t = T.create () in
  T.record t (T.Plain_download { round = 1; file = "header"; pages = header_pages });
  let fetches round file count =
    for _ = 1 to count do
      T.record t (T.Pir_fetch { round; file })
    done
  in
  (match header.H.plan with
  | QP.Ci { fi_span; m } ->
      fetches 2 "lookup" 1;
      fetches 3 "index" fi_span;
      fetches 4 "data" (m + 2)
  | QP.Pi { fi_span } ->
      fetches 2 "lookup" 1;
      fetches 3 "index" fi_span;
      fetches 3 "data" (2 * header.H.pages_per_region)
  | QP.Pi_star { fi_span; cluster } ->
      fetches 2 "lookup" 1;
      fetches 3 "index" fi_span;
      fetches 3 "data" (2 * cluster)
  | QP.Hy { r; round4 } ->
      fetches 2 "lookup" 1;
      fetches 3 "combined" r;
      fetches 4 "combined" round4
  | QP.Lm { total_data_pages } ->
      fetches 2 "data" 2;
      for round = 3 to total_data_pages do
        fetches round "data" 1
      done
  | QP.Af { pages_per_region; max_regions } ->
      fetches 2 "data" (2 * pages_per_region);
      for k = 3 to max_regions do
        fetches k "data" pages_per_region
      done);
  t

let conforms header ~header_pages trace =
  let expected = expected_trace header ~header_pages in
  if T.equal expected trace then Ok ()
  else
    Error
      (Format.asprintf "trace deviates from plan.@ expected:@ %a@ got:@ %a" T.pp expected
         T.pp trace)
