type placement = { first_page : int; page_span : int; offset : int }

type t = {
  psize : int;
  full : bytes Psp_util.Dyn_array.t; (* completed page payloads *)
  mutable current : Buffer.t;
  placements : placement Psp_util.Dyn_array.t;
  mutable sealed : bool;
}

let create ~page_size =
  if page_size <= 0 then invalid_arg "Packer.create: page_size must be positive";
  { psize = page_size;
    full = Psp_util.Dyn_array.create ();
    current = Buffer.create page_size;
    placements = Psp_util.Dyn_array.create ();
    sealed = false }

let page_size t = t.psize
let current_page_free t = t.psize - Buffer.length t.current

let close_current t =
  Psp_util.Dyn_array.push t.full (Buffer.to_bytes t.current);
  t.current <- Buffer.create t.psize

let add t record =
  if t.sealed then invalid_arg "Packer.add: already flushed";
  let len = Bytes.length record in
  if len <= t.psize then begin
    (* small record: never straddle a page boundary *)
    if len > current_page_free t then close_current t;
    let placement =
      { first_page = Psp_util.Dyn_array.length t.full;
        page_span = 1;
        offset = Buffer.length t.current }
    in
    Buffer.add_bytes t.current record;
    Psp_util.Dyn_array.push t.placements placement;
    placement
  end
  else begin
    (* oversized record: start on a fresh page, span ceil(len/psize) *)
    if Buffer.length t.current > 0 then close_current t;
    let placement =
      { first_page = Psp_util.Dyn_array.length t.full;
        page_span = (len + t.psize - 1) / t.psize;
        offset = 0 }
    in
    let pos = ref 0 in
    while !pos < len do
      let take = min t.psize (len - !pos) in
      Buffer.add_bytes t.current (Bytes.sub record !pos take);
      pos := !pos + take;
      if Buffer.length t.current = t.psize then close_current t
    done;
    Psp_util.Dyn_array.push t.placements placement;
    placement
  end

let placements t = Psp_util.Dyn_array.to_array t.placements

let max_span t =
  Psp_util.Dyn_array.fold_left (fun acc p -> max acc p.page_span) 0 t.placements

let page_count t =
  Psp_util.Dyn_array.length t.full + (if Buffer.length t.current > 0 then 1 else 0)

let flush_to t file =
  if Page_file.page_size file <> t.psize then
    invalid_arg "Packer.flush_to: page size mismatch";
  t.sealed <- true;
  Psp_util.Dyn_array.iter (fun payload -> ignore (Page_file.append file payload)) t.full;
  if Buffer.length t.current > 0 then ignore (Page_file.append file (Buffer.to_bytes t.current))
