lib/storage/page_file.ml: Bytes Fun Printf Psp_util
