lib/storage/packer.mli: Page_file
