lib/storage/page_file.mli:
