lib/storage/packer.ml: Buffer Bytes Page_file Psp_util
