(** Equal-sized disk pages organized in named files.

    The LBS database (§3.1) is a set of files stored as sequences of
    equal-sized pages; the PIR interface retrieves one page at a time
    and the adversary observes only (file, round) per retrieval.  This
    module is the in-memory model of such files: page payloads are real
    serialized bytes, and per-page payload lengths are recorded so the
    experiments can report page utilization (Figure 8a) and database
    sizes from actual encodings. *)

type t

val create : name:string -> page_size:int -> t
(** Empty file.  @raise Invalid_argument if [page_size <= 0]. *)

val name : t -> string
val page_size : t -> int
val page_count : t -> int

val size_bytes : t -> int
(** [page_count * page_size] — the on-disk footprint. *)

val append : t -> bytes -> int
(** Add one page holding the given payload (padded with zeros to the
    page size); returns its page number.
    @raise Invalid_argument if the payload exceeds the page size. *)

val append_blank : t -> int
(** Add an all-zero page (used to round files up to layout boundaries). *)

val read : t -> int -> bytes
(** Full page content (payload plus padding), [page_size] bytes.
    @raise Invalid_argument on an out-of-range page number. *)

val payload : t -> int -> bytes
(** Only the stored payload of a page. *)

val payload_length : t -> int -> int

val utilization : t -> float
(** Mean fraction of page bytes holding payload; 0 for an empty file. *)

val iter_pages : t -> (int -> bytes -> unit) -> unit

val save : t -> path:string -> unit
(** Serialize to disk (magic, name, page size, per-page payloads —
    padding is not stored and is reconstructed on load). *)

val load : path:string -> t
(** @raise Invalid_argument on a malformed or truncated file. *)
