(** Sequential record-to-page packing with the paper's no-straddle rule.

    §5.3 (network index file formation): records are placed contiguously
    in key order, but a record smaller than a page must not stretch over
    two pages — if it does not fit in the current page's free space it
    starts a new page, leaving the gap unutilized.  A record larger than
    a page starts on a fresh page so it spans exactly
    ceil(size / page_size) pages.  The packer reports each record's
    placement so a dense look-up file (F_l) can be built over it, and
    the maximum span, which fixes the query plan (§5.4). *)

type placement = {
  first_page : int;  (** page number where the record starts *)
  page_span : int;   (** number of consecutive pages it occupies *)
  offset : int;      (** byte offset of the record within the first page *)
}

type t

val create : page_size:int -> t
(** @raise Invalid_argument if [page_size <= 0]. *)

val page_size : t -> int

val current_page_free : t -> int
(** Free bytes remaining in the page currently being filled. *)

val add : t -> bytes -> placement
(** Place the next record. *)

val placements : t -> placement array
(** Placements in insertion order. *)

val max_span : t -> int
(** Largest [page_span] over all records; 0 if none. *)

val flush_to : t -> Page_file.t -> unit
(** Emit every (possibly partially filled) page into a page file, in
    order.  The packer may not be added to afterwards.
    @raise Invalid_argument if page sizes differ. *)

val page_count : t -> int
(** Pages that [flush_to] will emit. *)
