type t = {
  name : string;
  page_size : int;
  pages : bytes Psp_util.Dyn_array.t; (* padded to page_size *)
  lengths : int Psp_util.Dyn_array.t; (* payload bytes per page *)
}

let create ~name ~page_size =
  if page_size <= 0 then invalid_arg "Page_file.create: page_size must be positive";
  { name;
    page_size;
    pages = Psp_util.Dyn_array.create ();
    lengths = Psp_util.Dyn_array.create () }

let name t = t.name
let page_size t = t.page_size
let page_count t = Psp_util.Dyn_array.length t.pages
let size_bytes t = page_count t * t.page_size

let append t payload =
  let len = Bytes.length payload in
  if len > t.page_size then
    invalid_arg
      (Printf.sprintf "Page_file.append(%s): payload %d exceeds page size %d" t.name
         len t.page_size);
  let page = Bytes.make t.page_size '\000' in
  Bytes.blit payload 0 page 0 len;
  Psp_util.Dyn_array.push t.pages page;
  Psp_util.Dyn_array.push t.lengths len;
  page_count t - 1

let append_blank t = append t Bytes.empty

let check t no =
  if no < 0 || no >= page_count t then
    invalid_arg (Printf.sprintf "Page_file.read(%s): page %d out of range" t.name no)

let read t no =
  check t no;
  Bytes.copy (Psp_util.Dyn_array.get t.pages no)

let payload_length t no =
  check t no;
  Psp_util.Dyn_array.get t.lengths no

let payload t no = Bytes.sub (read t no) 0 (payload_length t no)

let utilization t =
  if page_count t = 0 then 0.0
  else begin
    let used = Psp_util.Dyn_array.fold_left ( + ) 0 t.lengths in
    float_of_int used /. float_of_int (size_bytes t)
  end

let iter_pages t f =
  for no = 0 to page_count t - 1 do
    f no (read t no)
  done

let magic = "PSPPAGES1"

let save t ~path =
  let w = Psp_util.Byte_io.Writer.create ~capacity:(size_bytes t) () in
  Psp_util.Byte_io.Writer.string w magic;
  Psp_util.Byte_io.Writer.string w t.name;
  Psp_util.Byte_io.Writer.varint w t.page_size;
  Psp_util.Byte_io.Writer.varint w (page_count t);
  for no = 0 to page_count t - 1 do
    let len = payload_length t no in
    Psp_util.Byte_io.Writer.varint w len;
    Psp_util.Byte_io.Writer.bytes w (Bytes.sub (Psp_util.Dyn_array.get t.pages no) 0 len)
  done;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc (Psp_util.Byte_io.Writer.contents w))

let load ~path =
  let ic = open_in_bin path in
  let blob =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let r = Psp_util.Byte_io.Reader.of_bytes (Bytes.of_string blob) in
  let fail msg = invalid_arg (Printf.sprintf "Page_file.load(%s): %s" path msg) in
  (try if Psp_util.Byte_io.Reader.string r <> magic then fail "bad magic"
   with Psp_util.Byte_io.Reader.Underflow -> fail "truncated header");
  try
    let name = Psp_util.Byte_io.Reader.string r in
    let page_size = Psp_util.Byte_io.Reader.varint r in
    let count = Psp_util.Byte_io.Reader.varint r in
    let t = create ~name ~page_size in
    for _ = 1 to count do
      let len = Psp_util.Byte_io.Reader.varint r in
      ignore (append t (Psp_util.Byte_io.Reader.bytes r len))
    done;
    t
  with Psp_util.Byte_io.Reader.Underflow -> fail "truncated"
