type t = { nodes : int array; edges : int array; cost : float }

let trivial v = { nodes = [| v |]; edges = [||]; cost = 0.0 }

let make g ~edges =
  match edges with
  | [] -> invalid_arg "Path.make: empty edge list (use trivial)"
  | first :: _ ->
      let first = Graph.edge g first in
      let nodes = Psp_util.Dyn_array.create () in
      Psp_util.Dyn_array.push nodes first.Graph.src;
      let cost = ref 0.0 in
      let cursor = ref first.Graph.src in
      List.iter
        (fun id ->
          let e = Graph.edge g id in
          if e.Graph.src <> !cursor then
            invalid_arg "Path.make: edges are not contiguous";
          Psp_util.Dyn_array.push nodes e.Graph.dst;
          cost := !cost +. e.Graph.weight;
          cursor := e.Graph.dst)
        edges;
      { nodes = Psp_util.Dyn_array.to_array nodes;
        edges = Array.of_list edges;
        cost = !cost }

let source t = t.nodes.(0)
let target t = t.nodes.(Array.length t.nodes - 1)
let cost t = t.cost
let hop_count t = Array.length t.edges

let is_valid g t =
  if Array.length t.edges = 0 then Array.length t.nodes = 1
  else begin
    try
      let rebuilt = make g ~edges:(Array.to_list t.edges) in
      rebuilt.nodes = t.nodes && Float.abs (rebuilt.cost -. t.cost) < 1e-9
    with Invalid_argument _ -> false
  end

let equal a b = a.nodes = b.nodes && a.edges = b.edges

let pp ppf t =
  Format.fprintf ppf "@[<h>path %d->%d cost=%.3f hops=%d@]" (source t) (target t)
    t.cost (hop_count t)
