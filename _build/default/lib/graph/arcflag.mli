(** Arc-flag pre-computation [Köhler, Möhring & Schilling 2006].

    Given a partition of the nodes into regions, every edge e carries a
    bit-vector with one bit per region: bit j is set iff e lies on a
    shortest path towards some node of region j.  A query towards
    destination region j then only relaxes edges whose bit j is set.
    This is the pre-computed payload of the AF baseline (§4). *)

type t

val compute : Graph.t -> region_of:int array -> region_count:int -> t
(** Standard boundary-node construction: for every region j and every
    boundary node b of j (a node of j with an in-edge from outside),
    grow a backward shortest-path tree from b and flag its tree edges
    with j; edges internal to j are flagged with j as well.
    @raise Invalid_argument if [region_of] has the wrong length or
    contains an id outside [0, region_count). *)

val region_count : t -> int

val flag : t -> edge:int -> region:int -> bool
(** Is edge [edge] useful towards region [region]? *)

val flags_of_edge : t -> int -> Psp_util.Bitset.t
(** The full bit-vector of an edge (copy). *)

val flag_bytes_per_edge : t -> int
(** Serialized size of one edge's bit-vector. *)

type search_result = { path : Path.t option; settled : int; relaxed : int }

val query :
  t -> Graph.t -> region_of:int array -> source:int -> target:int -> search_result
(** Dijkstra that only relaxes edges flagged for the target's region.
    Exactness relies on the construction above. *)
