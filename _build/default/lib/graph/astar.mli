(** A* search [Hart, Nilsson & Raphael 1968].

    The search procedure of the LM baseline (§4): expansion is ordered
    by g(v) + h(v) where h is an admissible lower bound on the remaining
    cost — either the scaled Euclidean distance or the Landmark (ALT)
    bound.  Statistics expose how many nodes were settled, which drives
    the page-access counts of the baseline schemes. *)

type result = { path : Path.t option; settled : int; relaxed : int }

val search :
  Graph.t -> heuristic:(int -> float) -> source:int -> target:int -> result
(** Generic A*.  [heuristic v] must lower-bound the v→target cost for
    correctness (admissibility is the caller's contract). *)

val euclidean_heuristic : Graph.t -> target:int -> int -> float
(** h(v) = scale · ‖v − target‖₂ with scale = {!Graph.min_weight_per_distance},
    always admissible. *)

val search_euclidean : Graph.t -> source:int -> target:int -> result

val visited_order :
  Graph.t -> heuristic:(int -> float) -> source:int -> target:int -> int list
(** Nodes in settlement order (stops at target) — used by LM to replay
    which regions the search enters. *)
