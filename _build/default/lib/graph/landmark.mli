(** Landmark (ALT) pre-computation [Goldberg & Harrelson 2005].

    Chooses anchor nodes and stores, for every node, the shortest-path
    costs to and from each anchor.  The triangle inequality then yields
    an admissible A* heuristic:
      h(v) = max_a max(d(v,a) − d(t,a), d(a,t) − d(a,v)).
    This is the pre-computed payload of the LM baseline (§4): the
    landmark vector is stored with each node in the region data file,
    so the anchor count directly sizes F_d (Figure 5b). *)

type t

val select_farthest : Graph.t -> count:int -> seed:int -> t
(** Greedy farthest-point anchor selection (standard ALT heuristic):
    start from a random node, repeatedly add the node maximizing the
    distance to the chosen set.  Pre-computes both distance directions.
    @raise Invalid_argument if [count < 1] or the graph is empty. *)

val anchor_count : t -> int
val anchors : t -> int array

val to_anchor : t -> int -> int -> float
(** [to_anchor t a v] = d(v, anchor_a). *)

val from_anchor : t -> int -> int -> float
(** [from_anchor t a v] = d(anchor_a, v). *)

val heuristic : t -> target:int -> int -> float
(** The ALT lower bound towards [target]. *)

val vector_bytes : t -> int
(** Serialized size of one node's landmark vector (two float32 per
    anchor) — used when laying out the LM region data file. *)
