(** Weighted directed graphs with Euclidean node coordinates.

    The road-network model of the paper (§3.1): nodes are junctions with
    (x, y) coordinates, directed edges carry positive traversal costs.
    Storage is compressed sparse row (CSR), so edges have dense integer
    ids [0 .. edge_count-1] — these ids key the Arc-flag bit-vectors and
    the PI passage subgraphs.

    Graphs are immutable once frozen from a {!Builder}. *)

type t

type edge = { src : int; dst : int; weight : float; id : int }

module Builder : sig
  type graph := t
  type t

  val create : unit -> t

  val add_node : t -> x:float -> y:float -> int
  (** Returns the new node's id (consecutive from 0). *)

  val add_edge : t -> int -> int -> float -> unit
  (** [add_edge b u v w] adds the directed edge u→v of weight [w].
      @raise Invalid_argument on unknown endpoints or non-positive
      weight. *)

  val add_undirected : t -> int -> int -> float -> unit
  (** Both directions with the same weight. *)

  val node_count : t -> int

  val freeze : t -> graph
  (** Build the immutable CSR graph.  Duplicate parallel edges are kept
      (road networks can have them). *)
end

val node_count : t -> int
val edge_count : t -> int

val x : t -> int -> float
val y : t -> int -> float
val coords : t -> int -> float * float

val out_degree : t -> int -> int

val iter_out : t -> int -> (edge -> unit) -> unit
(** Iterate outgoing edges of a node. *)

val fold_out : t -> int -> ('acc -> edge -> 'acc) -> 'acc -> 'acc

val iter_in : t -> int -> (edge -> unit) -> unit
(** Iterate incoming edges (reverse adjacency is built lazily and
    cached; edge ids refer to the forward edge). *)

val edge : t -> int -> edge
(** Edge by id. @raise Invalid_argument if out of range. *)

val iter_edges : t -> (edge -> unit) -> unit

val euclidean : t -> int -> int -> float
(** Straight-line distance between two nodes' coordinates. *)

val min_weight_per_distance : t -> float
(** min over edges of weight / euclidean-length — the admissibility
    scale factor for the Euclidean A* heuristic (1.0 when weights are
    the Euclidean lengths; can be <1 for time-based weights).  Returns
    1.0 for a graph with no usable edge. *)

val bounding_box : t -> float * float * float * float
(** (min_x, min_y, max_x, max_y) over all nodes.
    @raise Invalid_argument on an empty graph. *)

val nearest_node : t -> x:float -> y:float -> int
(** Node whose coordinates are closest to the given point (linear scan —
    clients hold small region subgraphs).
    @raise Invalid_argument on an empty graph. *)

val reverse : t -> t
(** The graph with every edge flipped.  Edge ids are re-assigned; use
    {!iter_in} on the original graph when forward edge ids are needed
    during a backward traversal. *)

val subgraph_of_edges : t -> int list -> t
(** Graph on the same node set containing only the listed edge ids
    (ids are re-assigned densely).  Used to materialize PI passage
    subgraphs on the client. *)
