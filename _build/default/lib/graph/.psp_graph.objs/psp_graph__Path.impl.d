lib/graph/path.ml: Array Float Format Graph List Psp_util
