lib/graph/astar.mli: Graph Path
