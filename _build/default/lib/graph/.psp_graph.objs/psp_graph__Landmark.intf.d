lib/graph/landmark.mli: Graph
