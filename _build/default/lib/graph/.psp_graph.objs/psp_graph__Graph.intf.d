lib/graph/graph.mli:
