lib/graph/astar.ml: Array Graph List Path Psp_util
