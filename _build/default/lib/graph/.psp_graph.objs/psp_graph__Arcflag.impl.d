lib/graph/arcflag.ml: Array Graph Path Psp_util
