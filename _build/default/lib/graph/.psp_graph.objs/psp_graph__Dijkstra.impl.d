lib/graph/dijkstra.ml: Array Graph Hashtbl List Path Psp_util
