lib/graph/landmark.ml: Array Dijkstra Float Graph Psp_util
