lib/graph/bidirectional.mli: Graph Path
