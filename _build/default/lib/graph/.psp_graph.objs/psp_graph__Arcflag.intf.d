lib/graph/arcflag.mli: Graph Path Psp_util
