lib/graph/bidirectional.ml: Array Graph List Path Psp_util
