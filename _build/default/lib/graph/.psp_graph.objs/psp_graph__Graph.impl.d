lib/graph/graph.ml: Array Float List Psp_util
