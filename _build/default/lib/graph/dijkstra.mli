(** Dijkstra's algorithm [Dijkstra 1959] with lazy-deletion heaps.

    Used (i) by the client on the downloaded subgraph (§5.4 round four),
    (ii) by index pre-computation to find border-to-border shortest
    paths, and (iii) as the exact reference in tests. *)

type spt = {
  dist : float array;       (** dist.(v) = cost of SP(source, v); [infinity] if unreachable *)
  parent : int array;       (** predecessor node on the tree; -1 at source/unreachable *)
  parent_edge : int array;  (** edge id into v; -1 at source/unreachable *)
  settled : int;            (** number of nodes popped — the search effort *)
}

val tree : Graph.t -> source:int -> spt
(** Full single-source shortest-path tree. *)

val tree_until : Graph.t -> source:int -> targets:int list -> spt
(** Stop as soon as every target is settled (exact distances for the
    settled prefix; [infinity] elsewhere means "not settled", not
    necessarily unreachable). *)

val distance : Graph.t -> int -> int -> float
(** Point-to-point cost; [infinity] if unreachable. *)

val shortest_path : Graph.t -> int -> int -> Path.t option
(** SP(s, t), or [None] if t is unreachable.  [Some (trivial s)] when
    s = t. *)

val path_to : Graph.t -> spt -> int -> Path.t option
(** Extract the tree path to a node from a computed SPT. *)

val restricted : Graph.t -> allowed:(int -> bool) -> source:int -> target:int -> Path.t option
(** Dijkstra confined to nodes satisfying [allowed] (both endpoints must
    satisfy it) — models the client searching only the union of fetched
    regions. *)
