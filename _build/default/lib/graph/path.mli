(** Paths in a road network.

    A path is the query result SP(s, t): the node sequence, the edge ids
    traversed, and the summed cost.  Construction validates contiguity
    so a malformed result cannot be represented. *)

type t = private { nodes : int array; edges : int array; cost : float }

val make : Graph.t -> edges:int list -> t
(** Path from a contiguous edge-id sequence; cost is recomputed from the
    graph.  @raise Invalid_argument if edges are not contiguous. *)

val trivial : int -> t
(** The zero-cost path at a single node (s = t). *)

val source : t -> int
val target : t -> int
val cost : t -> float
val hop_count : t -> int

val is_valid : Graph.t -> t -> bool
(** Re-checks contiguity and cost against the graph. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
