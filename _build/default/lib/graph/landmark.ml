type t = {
  anchors : int array;
  to_anchor : float array array; (* to_anchor.(a).(v) = d(v, anchor_a) *)
  from_anchor : float array array; (* from_anchor.(a).(v) = d(anchor_a, v) *)
}

let select_farthest g ~count ~seed =
  let n = Graph.node_count g in
  if n = 0 then invalid_arg "Landmark.select_farthest: empty graph";
  if count < 1 then invalid_arg "Landmark.select_farthest: count must be >= 1";
  let count = min count n in
  let rng = Psp_util.Rng.create seed in
  let rev = Graph.reverse g in
  let anchors = Psp_util.Dyn_array.create () in
  (* distance from each node to its closest already-chosen anchor *)
  let closest = Array.make n infinity in
  let add_anchor a =
    Psp_util.Dyn_array.push anchors a;
    let spt = Dijkstra.tree g ~source:a in
    for v = 0 to n - 1 do
      closest.(v) <- Float.min closest.(v) spt.Dijkstra.dist.(v)
    done
  in
  add_anchor (Psp_util.Rng.int rng n);
  while Psp_util.Dyn_array.length anchors < count do
    let best = ref 0 and best_d = ref neg_infinity in
    for v = 0 to n - 1 do
      let d = closest.(v) in
      let d = if d = infinity then -1.0 else d in
      if d > !best_d then begin
        best := v;
        best_d := d
      end
    done;
    add_anchor !best
  done;
  let anchors = Psp_util.Dyn_array.to_array anchors in
  let to_anchor =
    Array.map (fun a -> (Dijkstra.tree rev ~source:a).Dijkstra.dist) anchors
  in
  let from_anchor =
    Array.map (fun a -> (Dijkstra.tree g ~source:a).Dijkstra.dist) anchors
  in
  { anchors; to_anchor; from_anchor }

let anchor_count t = Array.length t.anchors
let anchors t = Array.copy t.anchors
let to_anchor t a v = t.to_anchor.(a).(v)
let from_anchor t a v = t.from_anchor.(a).(v)

let heuristic t ~target v =
  let bound = ref 0.0 in
  for a = 0 to anchor_count t - 1 do
    let dv_a = t.to_anchor.(a).(v) and dt_a = t.to_anchor.(a).(target) in
    let da_v = t.from_anchor.(a).(v) and da_t = t.from_anchor.(a).(target) in
    if dv_a < infinity && dt_a < infinity then
      bound := Float.max !bound (dv_a -. dt_a);
    if da_v < infinity && da_t < infinity then
      bound := Float.max !bound (da_t -. da_v)
  done;
  Float.max !bound 0.0

let vector_bytes t = 2 * 4 * anchor_count t
