type spt = {
  dist : float array;
  parent : int array;
  parent_edge : int array;
  settled : int;
}

(* Core loop shared by every entry point.  [stop] may terminate the
   search after a node is settled; [allowed] prunes relaxations. *)
let run g ~source ~stop ~allowed =
  let n = Graph.node_count g in
  if source < 0 || source >= n then invalid_arg "Dijkstra: source out of range";
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let done_ = Array.make n false in
  let heap = Psp_util.Min_heap.create () in
  dist.(source) <- 0.0;
  Psp_util.Min_heap.push heap ~priority:0.0 source;
  let settled = ref 0 in
  let finished = ref false in
  while (not !finished) && not (Psp_util.Min_heap.is_empty heap) do
    match Psp_util.Min_heap.pop heap with
    | None -> finished := true
    | Some (d, u) ->
        if not done_.(u) then begin
          done_.(u) <- true;
          incr settled;
          if stop u then finished := true
          else
            Graph.iter_out g u (fun e ->
                let v = e.Graph.dst in
                if allowed v then begin
                  let nd = d +. e.Graph.weight in
                  if nd < dist.(v) then begin
                    dist.(v) <- nd;
                    parent.(v) <- u;
                    parent_edge.(v) <- e.Graph.id;
                    Psp_util.Min_heap.push heap ~priority:nd v
                  end
                end)
        end
  done;
  ({ dist; parent; parent_edge; settled = !settled }, done_)

let tree g ~source =
  fst (run g ~source ~stop:(fun _ -> false) ~allowed:(fun _ -> true))

let tree_until g ~source ~targets =
  let pending = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace pending t ()) targets;
  let stop u =
    Hashtbl.remove pending u;
    Hashtbl.length pending = 0
  in
  fst (run g ~source ~stop ~allowed:(fun _ -> true))

let path_to g spt target =
  if spt.dist.(target) = infinity then None
  else if spt.parent.(target) = -1 then Some (Path.trivial target)
  else begin
    let rec collect v acc =
      if spt.parent_edge.(v) = -1 then acc
      else collect spt.parent.(v) (spt.parent_edge.(v) :: acc)
    in
    Some (Path.make g ~edges:(collect target []))
  end

let distance g s t =
  if s = t then 0.0
  else begin
    let spt, _ = run g ~source:s ~stop:(fun u -> u = t) ~allowed:(fun _ -> true) in
    spt.dist.(t)
  end

let shortest_path g s t =
  if s = t then Some (Path.trivial s)
  else begin
    let spt, _ = run g ~source:s ~stop:(fun u -> u = t) ~allowed:(fun _ -> true) in
    path_to g spt t
  end

let restricted g ~allowed ~source ~target =
  if not (allowed source && allowed target) then None
  else if source = target then Some (Path.trivial source)
  else begin
    let spt, _ = run g ~source ~stop:(fun u -> u = target) ~allowed in
    path_to g spt target
  end
