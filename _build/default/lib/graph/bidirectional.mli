(** Bidirectional Dijkstra.

    Included in the graph engine as a faster exact point-to-point solver
    for workload generation and as an independent oracle in tests (its
    results must match unidirectional Dijkstra on every query). *)

type result = { path : Path.t option; settled : int }

val search : Graph.t -> source:int -> target:int -> result
(** Alternates forward search from [source] and backward search from
    [target]; stops when the frontiers' top keys exceed the best meeting
    cost. *)

val distance : Graph.t -> int -> int -> float
(** Cost only; [infinity] if unreachable. *)
