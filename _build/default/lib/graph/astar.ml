type result = { path : Path.t option; settled : int; relaxed : int }

let run g ~heuristic ~source ~target ~on_settle =
  let n = Graph.node_count g in
  if source < 0 || source >= n || target < 0 || target >= n then
    invalid_arg "Astar: endpoint out of range";
  let dist = Array.make n infinity in
  let parent_edge = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let closed = Array.make n false in
  let heap = Psp_util.Min_heap.create () in
  dist.(source) <- 0.0;
  Psp_util.Min_heap.push heap ~priority:(heuristic source) source;
  let settled = ref 0 and relaxed = ref 0 in
  let found = ref false in
  while (not !found) && not (Psp_util.Min_heap.is_empty heap) do
    match Psp_util.Min_heap.pop heap with
    | None -> ()
    | Some (_, u) ->
        if not closed.(u) then begin
          closed.(u) <- true;
          incr settled;
          on_settle u;
          if u = target then found := true
          else
            Graph.iter_out g u (fun e ->
                let v = e.Graph.dst in
                let nd = dist.(u) +. e.Graph.weight in
                if nd < dist.(v) then begin
                  incr relaxed;
                  dist.(v) <- nd;
                  parent.(v) <- u;
                  parent_edge.(v) <- e.Graph.id;
                  Psp_util.Min_heap.push heap ~priority:(nd +. heuristic v) v
                end)
        end
  done;
  let path =
    if source = target then Some (Path.trivial source)
    else if not !found then None
    else begin
      let rec collect v acc =
        if parent_edge.(v) = -1 then acc else collect parent.(v) (parent_edge.(v) :: acc)
      in
      Some (Path.make g ~edges:(collect target []))
    end
  in
  { path; settled = !settled; relaxed = !relaxed }

let search g ~heuristic ~source ~target =
  run g ~heuristic ~source ~target ~on_settle:(fun _ -> ())

let euclidean_heuristic g ~target =
  let scale = Graph.min_weight_per_distance g in
  fun v -> scale *. Graph.euclidean g v target

let search_euclidean g ~source ~target =
  search g ~heuristic:(euclidean_heuristic g ~target) ~source ~target

let visited_order g ~heuristic ~source ~target =
  let order = ref [] in
  let _ = run g ~heuristic ~source ~target ~on_settle:(fun u -> order := u :: !order) in
  List.rev !order
