type t = { flags : Psp_util.Bitset.t array; (* per edge *) region_count : int }

(* Backward Dijkstra from [b] over incoming edges, flagging every tree
   edge (a canonical shortest path into b) with [region]. *)
let flag_backward_tree g flags ~b ~region =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let tree_edge = Array.make n (-1) in
  let closed = Array.make n false in
  let heap = Psp_util.Min_heap.create () in
  dist.(b) <- 0.0;
  Psp_util.Min_heap.push heap ~priority:0.0 b;
  let rec drain () =
    match Psp_util.Min_heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if not closed.(u) then begin
          closed.(u) <- true;
          if tree_edge.(u) >= 0 then Psp_util.Bitset.set flags.(tree_edge.(u)) region;
          Graph.iter_in g u (fun e ->
              let v = e.Graph.src in
              let nd = d +. e.Graph.weight in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                tree_edge.(v) <- e.Graph.id;
                Psp_util.Min_heap.push heap ~priority:nd v
              end)
        end;
        drain ()
  in
  drain ()

let compute g ~region_of ~region_count =
  let n = Graph.node_count g in
  if Array.length region_of <> n then
    invalid_arg "Arcflag.compute: region_of length mismatch";
  Array.iter
    (fun r ->
      if r < 0 || r >= region_count then
        invalid_arg "Arcflag.compute: region id out of range")
    region_of;
  let flags = Array.init (Graph.edge_count g) (fun _ -> Psp_util.Bitset.create region_count) in
  (* internal edges are always useful inside their own region *)
  Graph.iter_edges g (fun e ->
      if region_of.(e.Graph.src) = region_of.(e.Graph.dst) then
        Psp_util.Bitset.set flags.(e.Graph.id) region_of.(e.Graph.dst));
  (* boundary nodes: region-j nodes with an in-edge from outside j *)
  for v = 0 to n - 1 do
    let r = region_of.(v) in
    let is_boundary = ref false in
    Graph.iter_in g v (fun e ->
        if region_of.(e.Graph.src) <> r then is_boundary := true);
    if !is_boundary then flag_backward_tree g flags ~b:v ~region:r
  done;
  { flags; region_count }

let region_count t = t.region_count

let flag t ~edge ~region = Psp_util.Bitset.mem t.flags.(edge) region
let flags_of_edge t e = Psp_util.Bitset.copy t.flags.(e)

let flag_bytes_per_edge t = (t.region_count + 7) / 8

type search_result = { path : Path.t option; settled : int; relaxed : int }

let query t g ~region_of ~source ~target =
  let n = Graph.node_count g in
  if source < 0 || source >= n || target < 0 || target >= n then
    invalid_arg "Arcflag.query: endpoint out of range";
  let dest_region = region_of.(target) in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let closed = Array.make n false in
  let heap = Psp_util.Min_heap.create () in
  dist.(source) <- 0.0;
  Psp_util.Min_heap.push heap ~priority:0.0 source;
  let settled = ref 0 and relaxed = ref 0 in
  let found = ref false in
  while (not !found) && not (Psp_util.Min_heap.is_empty heap) do
    match Psp_util.Min_heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if not closed.(u) then begin
          closed.(u) <- true;
          incr settled;
          if u = target then found := true
          else
            Graph.iter_out g u (fun e ->
                if Psp_util.Bitset.mem t.flags.(e.Graph.id) dest_region then begin
                  let v = e.Graph.dst in
                  let nd = d +. e.Graph.weight in
                  if nd < dist.(v) then begin
                    incr relaxed;
                    dist.(v) <- nd;
                    parent.(v) <- u;
                    parent_edge.(v) <- e.Graph.id;
                    Psp_util.Min_heap.push heap ~priority:nd v
                  end
                end)
        end
  done;
  let path =
    if source = target then Some (Path.trivial source)
    else if not !found then None
    else begin
      let rec collect v acc =
        if parent_edge.(v) = -1 then acc else collect parent.(v) (parent_edge.(v) :: acc)
      in
      Some (Path.make g ~edges:(collect target []))
    end
  in
  { path; settled = !settled; relaxed = !relaxed }
