type result = { path : Path.t option; settled : int }

type side = {
  dist : float array;
  parent : int array;
  parent_edge : int array; (* forward edge ids on both sides *)
  closed : bool array;
  heap : Psp_util.Min_heap.t;
}

let make_side n source =
  let s =
    { dist = Array.make n infinity;
      parent = Array.make n (-1);
      parent_edge = Array.make n (-1);
      closed = Array.make n false;
      heap = Psp_util.Min_heap.create () }
  in
  s.dist.(source) <- 0.0;
  Psp_util.Min_heap.push s.heap ~priority:0.0 source;
  s

let search g ~source ~target =
  let n = Graph.node_count g in
  if source < 0 || source >= n || target < 0 || target >= n then
    invalid_arg "Bidirectional: endpoint out of range";
  if source = target then { path = Some (Path.trivial source); settled = 0 }
  else begin
    let fwd = make_side n source and bwd = make_side n target in
    let best = ref infinity and meet = ref (-1) in
    let settled = ref 0 in
    let try_meet v =
      if fwd.dist.(v) < infinity && bwd.dist.(v) < infinity then begin
        let total = fwd.dist.(v) +. bwd.dist.(v) in
        if total < !best then begin
          best := total;
          meet := v
        end
      end
    in
    let step side iterate =
      match Psp_util.Min_heap.pop side.heap with
      | None -> ()
      | Some (d, u) ->
          if not side.closed.(u) then begin
            side.closed.(u) <- true;
            incr settled;
            iterate u (fun (other, edge_id, w) ->
                let nd = d +. w in
                if nd < side.dist.(other) then begin
                  side.dist.(other) <- nd;
                  side.parent.(other) <- u;
                  side.parent_edge.(other) <- edge_id;
                  Psp_util.Min_heap.push side.heap ~priority:nd other
                end;
                try_meet other);
            try_meet u
          end
    in
    let fwd_iter u f = Graph.iter_out g u (fun e -> f (e.Graph.dst, e.Graph.id, e.Graph.weight)) in
    let bwd_iter u f = Graph.iter_in g u (fun e -> f (e.Graph.src, e.Graph.id, e.Graph.weight)) in
    let top side =
      match Psp_util.Min_heap.peek side.heap with None -> infinity | Some (p, _) -> p
    in
    let continue () =
      top fwd +. top bwd < !best
      && not (Psp_util.Min_heap.is_empty fwd.heap && Psp_util.Min_heap.is_empty bwd.heap)
    in
    while continue () do
      if top fwd <= top bwd then step fwd fwd_iter else step bwd bwd_iter
    done;
    let path =
      if !meet = -1 then None
      else begin
        let rec fwd_edges v acc =
          if fwd.parent_edge.(v) = -1 then acc
          else fwd_edges fwd.parent.(v) (fwd.parent_edge.(v) :: acc)
        in
        let rec bwd_edges v acc =
          (* backward tree stores forward edges v -> parent direction *)
          if bwd.parent_edge.(v) = -1 then List.rev acc
          else bwd_edges bwd.parent.(v) (bwd.parent_edge.(v) :: acc)
        in
        let edges = fwd_edges !meet [] @ bwd_edges !meet [] in
        if edges = [] then Some (Path.trivial source)
        else Some (Path.make g ~edges)
      end
    in
    { path; settled = !settled }
  end

let distance g s t =
  match (search g ~source:s ~target:t).path with
  | None -> infinity
  | Some p -> Path.cost p
