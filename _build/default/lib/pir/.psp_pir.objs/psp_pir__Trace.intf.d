lib/pir/trace.mli: Format
