lib/pir/server.ml: Array Cost_model Hashtbl List Oblivious_store Option Printf Psp_storage Pyramid_store Trace
