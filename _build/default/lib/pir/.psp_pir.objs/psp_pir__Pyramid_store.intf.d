lib/pir/pyramid_store.mli: Psp_storage
