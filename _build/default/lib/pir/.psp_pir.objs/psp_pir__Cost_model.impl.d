lib/pir/cost_model.ml: Float
