lib/pir/pyramid_store.ml: Array Bytes Char Hashtbl List Printf Psp_crypto Psp_storage Psp_util
