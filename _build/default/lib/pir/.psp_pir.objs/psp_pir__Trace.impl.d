lib/pir/trace.ml: Buffer Format Hashtbl List Option Printf Psp_crypto Psp_util
