lib/pir/oblivious_store.ml: Array Bytes Char Hashtbl Printf Psp_crypto Psp_storage Psp_util
