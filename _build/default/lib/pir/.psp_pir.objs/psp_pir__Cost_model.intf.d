lib/pir/cost_model.mli:
