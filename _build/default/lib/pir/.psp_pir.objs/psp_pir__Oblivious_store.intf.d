lib/pir/oblivious_store.mli: Psp_storage
