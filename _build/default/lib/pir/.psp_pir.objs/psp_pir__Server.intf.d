lib/pir/server.mli: Cost_model Psp_storage Trace
