(** The LBS with its secure co-processor — the server side of Figure 1.

    The server hosts a set of page files (the scheme's database) and
    exposes the two access paths of the architecture:

    - {!Session.fetch}: one page via the PIR interface.  The host learns
      only (round, file); latency follows {!Cost_model}.
    - {!Session.download}: a whole file in plaintext over the SSL link —
      only ever used for the public header, which every client fetches.
    - {!Session.plain_fetch}: an unsecured page read, used exclusively
      by the non-private OBF baseline for comparison.

    Three execution modes: [`Simulated] serves pages straight from the
    page files (fast — used by the benchmark harness; costs and traces
    are identical), [`Oblivious] routes every PIR fetch through a real
    square-root ORAM ({!Oblivious_store}), and [`Pyramid] through the
    Williams–Sion-style hierarchical store ({!Pyramid_store}) — both
    used by the privacy tests and examples. *)

type t

type mode = [ `Simulated | `Oblivious | `Pyramid ]

exception File_too_large of { file : string; bytes : int; limit : int }
(** Raised at registration when a file exceeds what the SCP can support
    (§3.2) — this is how PI "becomes inapplicable" on large networks. *)

val create :
  ?mode:mode -> cost:Cost_model.t -> key:bytes -> Psp_storage.Page_file.t list -> t
(** @raise File_too_large per the cost model's [max_file_bytes].
    @raise Invalid_argument on duplicate file names. *)

val mode : t -> mode
val cost : t -> Cost_model.t
val file : t -> string -> Psp_storage.Page_file.t
(** @raise Not_found for an unregistered name. *)

val file_names : t -> string list
val database_bytes : t -> int
(** Total size across all files. *)

module Session : sig
  type server := t
  type t

  val start : server -> t
  (** Opens the SSL connection; the query starts in round 1. *)

  val next_round : t -> unit
  (** Advance to the next round of the protocol (adds one RTT). *)

  val round : t -> int

  val fetch : t -> file:string -> page:int -> bytes
  (** Private page retrieval via the SCP.
      @raise Not_found on unknown file; Invalid_argument on a bad page
      number. *)

  val download : t -> file:string -> bytes array
  (** Plaintext download of an entire (public) file. *)

  val plain_fetch : t -> file:string -> page:int -> bytes
  (** Unsecured read: the LBS sees the page number (OBF baseline only). *)

  val add_server_compute : t -> float -> unit
  (** Charge server CPU seconds (OBF's path computations). *)

  type stats = {
    rounds : int;
    pir_seconds : float;        (** time inside the PIR protocol *)
    comm_seconds : float;       (** SSL transfer + per-round RTTs *)
    server_cpu_seconds : float; (** plaintext processing (OBF) *)
    pir_fetches : (string * int) list;  (** per-file private page counts *)
    trace : Trace.t;            (** the adversary's view *)
  }

  val finish : t -> stats
end
