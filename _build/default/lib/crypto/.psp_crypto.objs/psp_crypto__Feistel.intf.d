lib/crypto/feistel.mli:
