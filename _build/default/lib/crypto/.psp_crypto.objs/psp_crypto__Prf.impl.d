lib/crypto/prf.ml: Buffer Bytes Char Hmac List
