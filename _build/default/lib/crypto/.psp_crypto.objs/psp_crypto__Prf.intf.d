lib/crypto/prf.mli:
