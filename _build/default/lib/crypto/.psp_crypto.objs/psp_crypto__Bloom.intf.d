lib/crypto/bloom.mli:
