lib/crypto/bloom.ml: Float List Prf Psp_util
