lib/crypto/feistel.ml: Array Prf Printf
