lib/crypto/hmac.mli:
