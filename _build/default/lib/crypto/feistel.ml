type t = {
  domain : int;
  half_bits : int; (* bits per Feistel half; total width = 2*half_bits *)
  round_keys : Prf.t array;
}

let rounds = 4

let create ~key ~domain =
  if domain <= 0 then invalid_arg "Feistel.create: domain must be positive";
  (* Smallest even bit-width covering the domain. *)
  let rec bits_for n acc = if n <= 1 then acc else bits_for ((n + 1) / 2) (acc + 1) in
  let width = max 2 (bits_for domain 0) in
  let width = if width mod 2 = 0 then width else width + 1 in
  let round_keys =
    Array.init rounds (fun i -> Prf.create ~key ~label:(Printf.sprintf "feistel-round-%d" i))
  in
  { domain; half_bits = width / 2; round_keys }

let domain t = t.domain

let split t x =
  let half_mask = (1 lsl t.half_bits) - 1 in
  ((x lsr t.half_bits) land half_mask, x land half_mask)

let join t (left, right) = (left lsl t.half_bits) lor right

(* One pass of the full network.  Forward round i maps (l, r) to
   (r, l xor F_i(r)); backward inverts rounds in reverse order. *)
let once_fwd t x =
  let half_mask = (1 lsl t.half_bits) - 1 in
  let state = ref (split t x) in
  for i = 0 to rounds - 1 do
    let l, r = !state in
    state := (r, l lxor (Prf.int t.round_keys.(i) r land half_mask))
  done;
  join t !state

let once_bwd t x =
  let half_mask = (1 lsl t.half_bits) - 1 in
  let state = ref (split t x) in
  for i = rounds - 1 downto 0 do
    let l, r = !state in
    state := (r lxor (Prf.int t.round_keys.(i) l land half_mask), l)
  done;
  join t !state

(* Cycle-walk: iterate the width-wide permutation until we land back
   inside the domain; this restriction is itself a permutation. *)
let walk t step x =
  if x < 0 || x >= t.domain then invalid_arg "Feistel: point out of domain";
  let rec loop y =
    let y = step t y in
    if y < t.domain then y else loop y
  in
  loop x

let forward t x = walk t once_fwd x
let backward t x = walk t once_bwd x
let to_array t = Array.init t.domain (forward t)
