(** ChaCha20 stream cipher (RFC 8439), pure OCaml.

    Pages stored in the oblivious levels of the simulated PIR server are
    encrypted with ChaCha20 under per-level keys; re-encryption during
    reshuffles uses a fresh nonce so ciphertexts are unlinkable. *)

val block : key:bytes -> nonce:bytes -> counter:int -> bytes
(** The 64-byte keystream block for a 32-byte key, a 12-byte nonce and
    a 32-bit block counter.
    @raise Invalid_argument on wrong key/nonce sizes. *)

val encrypt : key:bytes -> nonce:bytes -> ?counter:int -> bytes -> bytes
(** XOR the keystream into the plaintext.  Encryption and decryption are
    the same operation. *)

val decrypt : key:bytes -> nonce:bytes -> ?counter:int -> bytes -> bytes

val keystream : key:bytes -> nonce:bytes -> int -> bytes
(** First [n] keystream bytes, counter starting at 0 — handy as a PRG. *)
