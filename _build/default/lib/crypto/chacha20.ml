let mask = 0xFFFFFFFF

let read_le32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let write_le32 b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xFF))

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

let quarter_round st a b c d =
  st.(a) <- (st.(a) + st.(b)) land mask;
  st.(d) <- rotl (st.(d) lxor st.(a)) 16;
  st.(c) <- (st.(c) + st.(d)) land mask;
  st.(b) <- rotl (st.(b) lxor st.(c)) 12;
  st.(a) <- (st.(a) + st.(b)) land mask;
  st.(d) <- rotl (st.(d) lxor st.(a)) 8;
  st.(c) <- (st.(c) + st.(d)) land mask;
  st.(b) <- rotl (st.(b) lxor st.(c)) 7

let block ~key ~nonce ~counter =
  if Bytes.length key <> 32 then invalid_arg "Chacha20: key must be 32 bytes";
  if Bytes.length nonce <> 12 then invalid_arg "Chacha20: nonce must be 12 bytes";
  let st = Array.make 16 0 in
  st.(0) <- 0x61707865;
  st.(1) <- 0x3320646e;
  st.(2) <- 0x79622d32;
  st.(3) <- 0x6b206574;
  for i = 0 to 7 do
    st.(4 + i) <- read_le32 key (4 * i)
  done;
  st.(12) <- counter land mask;
  for i = 0 to 2 do
    st.(13 + i) <- read_le32 nonce (4 * i)
  done;
  let working = Array.copy st in
  for _ = 1 to 10 do
    quarter_round working 0 4 8 12;
    quarter_round working 1 5 9 13;
    quarter_round working 2 6 10 14;
    quarter_round working 3 7 11 15;
    quarter_round working 0 5 10 15;
    quarter_round working 1 6 11 12;
    quarter_round working 2 7 8 13;
    quarter_round working 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    write_le32 out (4 * i) ((working.(i) + st.(i)) land mask)
  done;
  out

let encrypt ~key ~nonce ?(counter = 0) data =
  let n = Bytes.length data in
  let out = Bytes.create n in
  let blocks = (n + 63) / 64 in
  for b = 0 to blocks - 1 do
    let ks = block ~key ~nonce ~counter:(counter + b) in
    let off = 64 * b in
    let len = min 64 (n - off) in
    for i = 0 to len - 1 do
      Bytes.set out (off + i)
        (Char.chr (Char.code (Bytes.get data (off + i)) lxor Char.code (Bytes.get ks i)))
    done
  done;
  out

let decrypt = encrypt

let keystream ~key ~nonce n = encrypt ~key ~nonce (Bytes.make n '\000')
