type t = {
  cells : Psp_util.Bitset.t;
  prf : Prf.t;
  hashes : int;
  mutable inserted : int;
}

let create ~key ~label ~bits ~hashes =
  if bits <= 0 || hashes <= 0 then invalid_arg "Bloom.create: sizes must be positive";
  { cells = Psp_util.Bitset.create bits;
    prf = Prf.create ~key ~label:("bloom:" ^ label);
    hashes;
    inserted = 0 }

let sized_for ~key ~label ~expected ~fp_rate =
  if expected <= 0 then invalid_arg "Bloom.sized_for: expected must be positive";
  if fp_rate <= 0.0 || fp_rate >= 1.0 then invalid_arg "Bloom.sized_for: fp_rate in (0,1)";
  let ln2 = log 2.0 in
  let bits =
    int_of_float (ceil (-.float_of_int expected *. log fp_rate /. (ln2 *. ln2)))
  in
  let hashes = max 1 (int_of_float (Float.round (float_of_int bits /. float_of_int expected *. ln2))) in
  create ~key ~label ~bits:(max 8 bits) ~hashes

let positions t x =
  Prf.indices t.prf x ~count:t.hashes ~modulus:(Psp_util.Bitset.capacity t.cells)

let add t x =
  List.iter (Psp_util.Bitset.set t.cells) (positions t x);
  t.inserted <- t.inserted + 1

let mem t x = List.for_all (Psp_util.Bitset.mem t.cells) (positions t x)
let count t = t.inserted
let bits t = Psp_util.Bitset.capacity t.cells

let fp_estimate t =
  let m = float_of_int (bits t) and n = float_of_int t.inserted in
  let k = float_of_int t.hashes in
  (1.0 -. exp (-.k *. n /. m)) ** k

let clear t =
  Psp_util.Bitset.clear t.cells;
  t.inserted <- 0
