type t = { key : bytes }

let create ~key ~label = { key = Hmac.derive ~key ~label }

let mac_of_int t x salt =
  let buf = Bytes.create 16 in
  for i = 0 to 7 do
    Bytes.set buf i (Char.chr ((x lsr (8 * i)) land 0xFF));
    Bytes.set buf (8 + i) (Char.chr ((salt lsr (8 * i)) land 0xFF))
  done;
  Hmac.mac ~key:t.key buf

let int_of_digest d off =
  let v = ref 0 in
  for i = 0 to 7 do
    v := !v lor (Char.code (Bytes.get d (off + i)) lsl (8 * i))
  done;
  !v land max_int

let int t x = int_of_digest (mac_of_int t x 0) 0

let int_mod t x m =
  if m <= 0 then invalid_arg "Prf.int_mod: modulus must be positive";
  int t x mod m

let bytes t x n =
  let out = Buffer.create n in
  let block = ref 0 in
  while Buffer.length out < n do
    Buffer.add_bytes out (mac_of_int t x !block);
    incr block
  done;
  Bytes.sub (Buffer.to_bytes out) 0 n

let indices t x ~count ~modulus =
  if modulus <= 0 then invalid_arg "Prf.indices: modulus must be positive";
  List.init count (fun i -> int_of_digest (mac_of_int t x (i + 1)) 0 mod modulus)
