(** HMAC-SHA-256 (RFC 2104) and an HKDF-style key deriver.

    Keys in the simulated SCP are 32-byte strings; all session keys and
    per-level ORAM keys are derived from a master key with [derive]. *)

val mac : key:bytes -> bytes -> bytes
(** 32-byte authentication tag. *)

val mac_string : key:bytes -> string -> bytes

val verify : key:bytes -> bytes -> tag:bytes -> bool
(** Constant-time tag comparison. *)

val derive : key:bytes -> label:string -> bytes
(** [derive ~key ~label] is a 32-byte subkey bound to [label];
    distinct labels give independent subkeys. *)
