(** Small-domain pseudo-random permutations via a balanced Feistel
    network with cycle-walking.

    The Williams–Sion construction scrambles each ORAM level with a
    secret permutation of its slots.  A four-round Feistel network over
    [ceil(log2 n)] bits, keyed per level and epoch, gives an invertible
    permutation of [[0,n)] without materializing it — the SCP can map a
    slot in O(1) space. *)

type t

val create : key:bytes -> domain:int -> t
(** Permutation of [[0, domain)].
    @raise Invalid_argument if [domain <= 0]. *)

val domain : t -> int

val forward : t -> int -> int
(** Image of a point.  @raise Invalid_argument if out of domain. *)

val backward : t -> int -> int
(** Pre-image of a point; [backward t (forward t x) = x]. *)

val to_array : t -> int array
(** Materialize the full permutation (testing/shuffles of small levels). *)
