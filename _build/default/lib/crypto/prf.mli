(** Keyed pseudo-random functions over integers.

    Thin, typed wrappers over HMAC-SHA-256 used by the oblivious store:
    mapping logical page ids to level positions, deriving per-epoch
    nonces, and hashing into Bloom filters. *)

type t
(** A keyed PRF instance. *)

val create : key:bytes -> label:string -> t
(** Instance keyed by [derive key label]; distinct labels are
    independent PRFs. *)

val int : t -> int -> int
(** [int t x] is a 62-bit non-negative pseudo-random value of [x]. *)

val int_mod : t -> int -> int -> int
(** [int_mod t x m] is uniform-ish in [[0,m)].
    @raise Invalid_argument if [m <= 0]. *)

val bytes : t -> int -> int -> bytes
(** [bytes t x n] is an [n]-byte pseudo-random string for input [x]. *)

val indices : t -> int -> count:int -> modulus:int -> int list
(** [count] independent values in [[0,modulus)] for input [x] —
    the Bloom-filter probe positions for element [x]. *)
