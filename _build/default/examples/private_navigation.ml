(* Private navigation: the scenario from the paper's introduction.

   Clients ask a location-based service for driving directions to
   sensitive destinations — a clinic, a place of worship, a lawyer.
   With plain LBS queries the provider learns all of it; behind the PIR
   interface it learns only that *a* query happened.

   The example drives several clients through the Passage Index scheme
   (§6, the fastest one), checks every route against an oracle, and
   shows that the provider's logs are identical for all of them —
   including two clients asking for the *same* route.

     dune exec examples/private_navigation.exe
*)

module DB = Psp_index.Database
module G = Psp_graph.Graph

type errand = { who : string; about : string; s : int; t : int }

let () =
  let city =
    Psp_netgen.Synthetic.generate
      { Psp_netgen.Synthetic.nodes = 2500;
        edges = 2800;
        width = 5000.0;
        height = 5000.0;
        seed = 7 }
  in
  let db = DB.build_pi ~page_size:4096 city in
  let server =
    Psp_pir.Server.create ~cost:Psp_pir.Cost_model.ibm4764
      ~key:(Psp_crypto.Sha256.digest_string "navigation") (DB.files db)
  in
  Printf.printf
    "LBS online: %d-node road network, PI database (%.2f MB), plan %s\n\n"
    (G.node_count city)
    (float_of_int (DB.total_bytes db) /. 1e6)
    (Format.asprintf "%a" Psp_index.Query_plan.pp db.DB.header.Psp_index.Header.plan);

  let errands =
    [ { who = "alice"; about = "oncology clinic appointment"; s = 12; t = 2051 };
      { who = "bob"; about = "addiction support meeting"; s = 830; t = 91 };
      { who = "carol"; about = "same clinic as alice"; s = 12; t = 2051 };
      { who = "dan"; about = "divorce lawyer"; s = 1999; t = 404 };
      { who = "erin"; about = "political rally"; s = 333; t = 1337 } ]
  in
  let traces =
    List.map
      (fun e ->
        let r = Psp_core.Client.query_nodes server city e.s e.t in
        (match r.Psp_core.Client.path with
        | None -> Printf.printf "%-6s no route?!\n" e.who
        | Some (nodes, cost) ->
            let truth = Psp_graph.Dijkstra.distance city e.s e.t in
            Printf.printf "%-6s gets a %3d-hop route, cost %8.1f (oracle %8.1f) - %s\n"
              e.who
              (List.length nodes - 1)
              cost truth e.about);
        r.Psp_core.Client.stats.Psp_pir.Server.Session.trace)
      errands
  in
  print_newline ();
  (match Psp_core.Privacy.indistinguishable traces with
  | Ok () ->
      Printf.printf
        "the LBS cannot tell any of these %d queries apart - not even\n\
         alice's and carol's identical ones. All it logged, per query:\n"
        (List.length traces);
      Format.printf "%a@." Psp_pir.Trace.pp (List.hd traces)
  | Error e -> Printf.printf "PRIVACY VIOLATION: %s\n" e);

  (* contrast: the obfuscation baseline leaks candidate sets *)
  let obf = Psp_core.Obf.create ~cost:Psp_pir.Cost_model.ibm4764 ~seed:3 city in
  let rt, _ = Psp_core.Obf.query obf ~set_size:20 ~s:12 ~t_node:2051 in
  Printf.printf
    "\nfor comparison, OBF with |S|=|T|=20 responds in %.1f s and still\n\
     hands the LBS 20 candidate sources and 20 candidate destinations\n\
     (alice's clinic is one of them).\n"
    (Psp_core.Response_time.total rt)
