examples/private_navigation.ml: Format List Printf Psp_core Psp_crypto Psp_graph Psp_index Psp_netgen Psp_pir
