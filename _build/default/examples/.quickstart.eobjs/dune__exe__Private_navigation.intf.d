examples/private_navigation.mli:
