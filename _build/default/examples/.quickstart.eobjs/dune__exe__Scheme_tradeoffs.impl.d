examples/scheme_tradeoffs.ml: Array Float List Printf Psp_core Psp_crypto Psp_graph Psp_index Psp_netgen Psp_pir String
