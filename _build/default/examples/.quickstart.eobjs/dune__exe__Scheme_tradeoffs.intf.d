examples/scheme_tradeoffs.mli:
