examples/audit_privacy.mli:
