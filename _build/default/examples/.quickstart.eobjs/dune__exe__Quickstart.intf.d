examples/quickstart.mli:
