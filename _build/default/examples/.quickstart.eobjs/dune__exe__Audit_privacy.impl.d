examples/audit_privacy.ml: Array Bytes Format Hashtbl List Option Printf Psp_core Psp_crypto Psp_index Psp_netgen Psp_pir Psp_storage
