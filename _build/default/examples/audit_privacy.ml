(* Privacy audit: exercise Theorem 1 from the adversary's chair.

   Three checks on a live server:
   1. indistinguishability - a large batch of random queries (with
      duplicates and degenerate s = t cases mixed in) must produce
      byte-identical adversary views;
   2. plan conformance - that view must equal the one derivable from the
      public header alone, so it carries zero query information;
   3. the ORAM layer - running the same scheme through the real
      square-root ORAM, the physical slots the host sees never repeat
      within an epoch and epochs advance at a fixed cadence, whatever
      the logical access pattern.

     dune exec examples/audit_privacy.exe
*)

module DB = Psp_index.Database
module PF = Psp_storage.Page_file
module OS = Psp_pir.Oblivious_store

let () =
  let city =
    Psp_netgen.Synthetic.generate
      { Psp_netgen.Synthetic.nodes = 800;
        edges = 900;
        width = 2000.0;
        height = 2000.0;
        seed = 99 }
  in
  let db = DB.build_hy ~threshold:8 ~page_size:2048 city in
  let server =
    Psp_pir.Server.create ~cost:Psp_pir.Cost_model.ibm4764
      ~key:(Psp_crypto.Sha256.digest_string "audit") (DB.files db)
  in

  (* 1: batch with duplicates and s = t *)
  let base = Psp_netgen.Synthetic.random_queries city ~count:40 ~seed:5 in
  let queries = Array.concat [ base; Array.sub base 0 10; [| (3, 3); (3, 3) |] ] in
  let traces =
    Array.to_list
      (Array.map
         (fun (s, t) ->
           (Psp_core.Client.query_nodes server city s t).Psp_core.Client.stats
             .Psp_pir.Server.Session.trace)
         queries)
  in
  (match Psp_core.Privacy.indistinguishable traces with
  | Ok () ->
      Printf.printf "[1] %d queries (10 duplicated, 2 with s = t): all views identical\n"
        (Array.length queries)
  | Error e -> Printf.printf "[1] VIOLATION: %s\n" e);

  (* 2: the view equals what the header alone predicts *)
  let header_pages = PF.page_count db.DB.header_file in
  (match Psp_core.Privacy.conforms db.DB.header ~header_pages (List.hd traces) with
  | Ok () ->
      print_endline
        "[2] the view equals the plan derived from the public header:\n\
        \    the adversary learned nothing it did not already know";
      Format.printf "%a@." Psp_pir.Trace.pp (List.hd traces)
  | Error e -> Printf.printf "[2] VIOLATION: %s\n" e);

  (* 3: the oblivious store underneath *)
  let file = PF.create ~name:"payload" ~page_size:256 in
  for i = 0 to 99 do
    ignore (PF.append file (Bytes.of_string (Printf.sprintf "secret record %d" i)))
  done;
  let probe label plan =
    let store = OS.create ~key:(Psp_crypto.Sha256.digest_string "audit-oram") file in
    List.iter (fun i -> ignore (OS.read store i)) plan;
    let events = OS.physical_trace store in
    let per_epoch = Hashtbl.create 8 in
    let repeats = ref 0 in
    List.iter
      (function
        | OS.Slot { epoch; slot } ->
            let seen =
              Option.value ~default:[] (Hashtbl.find_opt per_epoch epoch)
            in
            if List.mem slot seen then incr repeats;
            Hashtbl.replace per_epoch epoch (slot :: seen)
        | OS.Reshuffle _ -> ())
      events;
    Printf.printf
      "    %-22s %3d slot touches, %d epochs, %d repeated slots within an epoch\n" label
      (List.length (List.filter (function OS.Slot _ -> true | _ -> false) events))
      (OS.epoch store + 1) !repeats;
    List.map (function OS.Slot _ -> `S | OS.Reshuffle _ -> `R) events
  in
  print_endline "[3] square-root ORAM host view:";
  let scan = probe "sequential scan" (List.init 30 (fun i -> i mod 100)) in
  let hammer = probe "same page 30 times" (List.init 30 (fun _ -> 7)) in
  if scan = hammer then
    print_endline
      "    identical event shapes for wildly different access patterns -\n\
      \    the host cannot distinguish them"
  else print_endline "    VIOLATION: shapes differ"
