(* Quickstart: host a road network behind the PIR interface and answer
   one shortest-path query without the server learning anything.

     dune exec examples/quickstart.exe
*)

module DB = Psp_index.Database
module G = Psp_graph.Graph

let () =
  (* 1. A road network.  Use your own via Psp_netgen.Dimacs, or
     synthesize a small city. *)
  let city =
    Psp_netgen.Synthetic.generate
      { Psp_netgen.Synthetic.nodes = 1500;
        edges = 1700;
        width = 3000.0;
        height = 3000.0;
        seed = 42 }
  in
  Printf.printf "city: %d nodes, %d directed road segments\n" (G.node_count city)
    (G.edge_count city);

  (* 2. Offline: the owner builds the Concise Index database (§5) —
     partitioning, border-node pre-computation, four files. *)
  let db = DB.build_ci ~page_size:4096 city in
  Printf.printf "database: %d regions, %.2f MB across %d files, plan %s\n"
    db.DB.header.Psp_index.Header.region_count
    (float_of_int (DB.total_bytes db) /. 1e6)
    (List.length (DB.files db))
    (Format.asprintf "%a" Psp_index.Query_plan.pp db.DB.header.Psp_index.Header.plan);

  (* 3. The LBS hosts the files; its secure co-processor mediates every
     page access (IBM 4764 cost model from the paper's Table 2). *)
  let server =
    Psp_pir.Server.create ~cost:Psp_pir.Cost_model.ibm4764
      ~key:(Psp_crypto.Sha256.digest_string "quickstart") (DB.files db)
  in

  (* 4. A client asks for a route by coordinates only. *)
  let sx, sy = G.coords city 17 and tx, ty = G.coords city 1203 in
  let result = Psp_core.Client.query server ~sx ~sy ~tx ~ty in
  (match result.Psp_core.Client.path with
  | None -> print_endline "no route found"
  | Some (nodes, cost) ->
      Printf.printf "route found: %d hops, cost %.1f\n" (List.length nodes - 1) cost;
      Printf.printf "  via nodes: %s ...\n"
        (String.concat " -> "
           (List.filteri (fun i _ -> i < 8) (List.map string_of_int nodes))));

  (* 5. What it cost, and what the server saw. *)
  Format.printf "simulated response time: %a@." Psp_core.Response_time.pp
    (Psp_core.Response_time.of_result result);
  Format.printf "the LBS observed only:@.%a@." Psp_pir.Trace.pp
    result.Psp_core.Client.stats.Psp_pir.Server.Session.trace;
  print_endline "every other query produces exactly the same view (Theorem 1)."
