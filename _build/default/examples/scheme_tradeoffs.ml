(* Scheme trade-offs: build every scheme of the paper over one network
   and print the space/time/privacy matrix a deployment would choose
   from (§5-§7 condensed into one table).

     dune exec examples/scheme_tradeoffs.exe
*)

module DB = Psp_index.Database
module G = Psp_graph.Graph
module QP = Psp_index.Query_plan

let () =
  let city =
    Psp_netgen.Synthetic.generate
      { Psp_netgen.Synthetic.nodes = 3000;
        edges = 3350;
        width = 6000.0;
        height = 6000.0;
        seed = 11 }
  in
  let queries = Psp_netgen.Synthetic.random_queries city ~count:60 ~seed:1 in
  let page_size = 4096 in
  Printf.printf "network: %d nodes, %d directed edges; %d random queries/scheme\n\n"
    (G.node_count city) (G.edge_count city) (Array.length queries);

  let prepared = DB.prepare ~page_size city in
  let lm, _ = DB.build_lm ~anchors:5 ~seed:4 ~page_size city in
  let af, _ = DB.build_af ~target_regions:12 ~page_size city in
  let threshold = max 1 (DB.prepared_max_cardinality prepared / 3) in
  let schemes =
    [ ("CI", "4 rounds, tiny index", DB.build_ci ~prepared ~page_size city);
      ("PI", "3 rounds, big index", DB.build_pi ~prepared ~page_size city);
      ("HY", "tunable middle ground", DB.build_hy ~prepared ~threshold ~page_size city);
      ("PI*", "clustered regions", DB.build_pi_star ~cluster:2 ~page_size city);
      ("LM", "baseline: ALT + A*", Psp_core.Calibrate.lm lm ~queries);
      ("AF", "baseline: arc-flags", Psp_core.Calibrate.af af ~queries) ]
  in
  Printf.printf "%-5s %-22s %10s %10s %9s %8s %9s\n" "name" "character" "time (s)"
    "space(MB)" "fetches" "rounds" "correct";
  print_endline (String.make 78 '-');
  List.iter
    (fun (name, character, db) ->
      let server =
        Psp_pir.Server.create ~cost:Psp_pir.Cost_model.ibm4764
          ~key:(Psp_crypto.Sha256.digest_string "tradeoffs") (DB.files db)
      in
      let correct = ref 0 in
      let times = ref [] in
      Array.iter
        (fun (s, t) ->
          let r = Psp_core.Client.query_nodes server city s t in
          times := Psp_core.Response_time.of_result r :: !times;
          let truth = Psp_graph.Dijkstra.distance city s t in
          match r.Psp_core.Client.path with
          | Some (_, got) when Float.abs (got -. truth) <= 1e-3 *. Float.max 1.0 truth ->
              incr correct
          | _ -> ())
        queries;
      let mean = Psp_core.Response_time.mean !times in
      let plan = db.DB.header.Psp_index.Header.plan in
      Printf.printf "%-5s %-22s %10.2f %10.2f %9d %8d %6d/%d\n" name character
        (Psp_core.Response_time.total mean)
        (float_of_int (DB.total_bytes db) /. 1e6)
        (QP.total_pir_fetches plan) (QP.rounds plan) !correct (Array.length queries))
    schemes;
  print_endline
    "\nall six give exact shortest paths and identical per-query server views;\n\
     they differ only in where they sit on the space/time curve.";
  Printf.printf "(HY built with |S_ij| threshold %d = m/3)\n" threshold
