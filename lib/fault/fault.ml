type schedule =
  | Never
  | Always
  | First of int
  | Hits of int list
  | Probability of float
  | Flapping of { up : int; down : int }

exception Injected of { point : string; hit : int }

type point = {
  schedule : schedule;
  seed : int;
  mutable rng : Psp_util.Rng.t;
  mutable hits : int;
  mutable fired : int;
}

let points : (string, point) Hashtbl.t = Hashtbl.create 8

(* cached so unarmed instrumentation sites pay one load, not a hash
   lookup *)
let armed = ref 0

let arm ?(seed = 0) name schedule =
  if not (Hashtbl.mem points name) then incr armed;
  Hashtbl.replace points name
    { schedule; seed; rng = Psp_util.Rng.create seed; hits = 0; fired = 0 }

let disarm name =
  if Hashtbl.mem points name then begin
    Hashtbl.remove points name;
    decr armed
  end

let reset () =
  Hashtbl.reset points;
  armed := 0

let rewind () =
  Hashtbl.iter
    (fun _ p ->
      p.hits <- 0;
      p.fired <- 0;
      p.rng <- Psp_util.Rng.create p.seed)
    points

let active () = !armed > 0

let fires name =
  !armed > 0
  &&
  match Hashtbl.find_opt points name with
  | None -> false
  | Some p ->
      p.hits <- p.hits + 1;
      let fail =
        match p.schedule with
        | Never -> false
        | Always -> true
        | First n -> p.hits <= n
        | Hits l -> List.mem p.hits l
        | Probability q -> Psp_util.Rng.float p.rng 1.0 < q
        | Flapping { up; down } ->
            (* a replica that cycles healthy/unhealthy: [up] passing hits,
               then [down] failing ones, repeating — still a pure function
               of the hit ordinal *)
            (p.hits - 1) mod (up + down) >= up
      in
      if fail then begin
        p.fired <- p.fired + 1;
        (* failpoint names are operator-chosen configuration, and the
           schedule is a public function of the hit ordinal *)
        Psp_obs.Obs.incr (Psp_obs.Obs.counter ("fault.fired." ^ name))
      end;
      fail

let inject name =
  if fires name then
    raise (Injected { point = name; hit = (Hashtbl.find points name).hits })

let hits name =
  match Hashtbl.find_opt points name with Some p -> p.hits | None -> 0

let fired name =
  match Hashtbl.find_opt points name with Some p -> p.fired | None -> 0

let parse_schedule spec =
  let int_of s = match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | _ -> Error (Printf.sprintf "expected a non-negative integer, got %S" s)
  in
  match String.index_opt spec ':' with
  | None -> (
      match spec with
      | "never" -> Ok Never
      | "always" -> Ok Always
      | s -> Error (Printf.sprintf "unknown schedule %S" s))
  | Some i -> (
      let kind = String.sub spec 0 i in
      let arg = String.sub spec (i + 1) (String.length spec - i - 1) in
      match kind with
      | "first" -> Result.map (fun n -> First n) (int_of arg)
      | "hits" ->
          let rec collect acc = function
            | [] -> Ok (Hits (List.rev acc))
            | s :: rest -> (
                match int_of s with
                | Ok n when n >= 1 -> collect (n :: acc) rest
                | Ok _ -> Error "hit ordinals are 1-based"
                | Error e -> Error e)
          in
          collect [] (String.split_on_char ',' arg)
      | "p" -> (
          match float_of_string_opt arg with
          | Some p when p >= 0.0 && p <= 1.0 -> Ok (Probability p)
          | _ -> Error (Printf.sprintf "expected a probability in [0,1], got %S" arg))
      | "flap" -> (
          match String.split_on_char ',' arg with
          | [ up; down ] -> (
              match (int_of up, int_of down) with
              | Ok u, Ok d when u >= 1 && d >= 1 -> Ok (Flapping { up = u; down = d })
              | Ok _, Ok _ -> Error "flap phases must be >= 1"
              | (Error e, _ | _, Error e) -> Error e)
          | _ -> Error (Printf.sprintf "expected flap:UP,DOWN, got %S" arg))
      | k -> Error (Printf.sprintf "unknown schedule %S" k))

let arm_spec ?seed spec =
  match String.index_opt spec '=' with
  | None -> Error (Printf.sprintf "fault spec %S lacks '=' (point=schedule)" spec)
  | Some i ->
      let name = String.sub spec 0 i in
      let sched = String.sub spec (i + 1) (String.length spec - i - 1) in
      if name = "" then Error "empty failpoint name"
      else
        Result.map (fun s -> arm ?seed name s) (parse_schedule sched)
