(** Deterministic fault injection: named failpoints on a global registry.

    The storage and PIR layers consult failpoints at well-known names
    (see the "Failure handling" section of DESIGN.md for the naming
    convention and the full list).  Tests, the CLI and the bench harness
    arm points with a {!schedule}; instrumented code calls {!fires} or
    {!inject} on every pass through the point.

    Determinism is the whole design: a schedule decides from the point's
    global hit counter (and, for {!Probability}, a dedicated xoshiro
    stream seeded explicitly), never from wall clock, thread identity or
    — critically for the privacy argument — query content.  Two
    executions that reach a point the same number of times see the same
    faults, which is what makes retries oblivious (Theorem 1 survives
    fault handling; DESIGN.md gives the argument).

    The registry is process-global and not thread-safe, matching the
    single-threaded simulation.  With no point armed, an instrumented
    site costs one integer load. *)

type schedule =
  | Never  (** armed but inert (useful to assert zero behaviour drift) *)
  | Always
  | First of int  (** fail the first [n] hits, then recover *)
  | Hits of int list  (** fail on exactly these 1-based hit ordinals *)
  | Probability of float  (** each hit fails with probability [p] *)
  | Flapping of { up : int; down : int }
      (** cycle: [up] passing hits, then [down] failing hits, repeating —
          a replica that keeps going down and coming back (chaos
          harness).  Still a pure function of the hit ordinal. *)

exception Injected of { point : string; hit : int }
(** The typed fault raised by {!inject}-style instrumentation sites.
    [hit] is the 1-based ordinal of the failing pass. *)

val arm : ?seed:int -> string -> schedule -> unit
(** [arm name schedule] registers (or replaces) a failpoint with fresh
    counters.  [seed] (default 0) seeds the stream used by
    [Probability] schedules. *)

val disarm : string -> unit
val reset : unit -> unit
(** Remove every failpoint. *)

val rewind : unit -> unit
(** Zero every point's counters and re-seed its stream, so the same
    schedule replays identically — run before each query when asserting
    trace equality across queries. *)

val active : unit -> bool
(** Is any failpoint armed?  O(1); the fast path of every site. *)

val fires : string -> bool
(** Consult a point: counts one hit and reports whether this hit fails.
    Unarmed points never fire (and count nothing). *)

val inject : string -> unit
(** [fires] and raise {!Injected} when it does. *)

val hits : string -> int
(** Total passes through the point since arming/rewind (0 if unarmed). *)

val fired : string -> int
(** How many of those passes failed. *)

val arm_spec : ?seed:int -> string -> (unit, string) result
(** Arm a point from a CLI/bench spec string:
    ["point=never|always|first:N|hits:N,N,...|p:F|flap:U,D"], e.g.
    ["pir.fetch.transient=hits:2,5,9"] or ["pir.fetch.corrupt=p:0.05"].
    Returns a parse diagnostic on malformed input. *)
