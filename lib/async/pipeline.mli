(** Effects-based pipelined session executor.

    A plan walk has two phases with different bottlenecks: the {e fetch}
    phase (every PIR round, bounded by the serial SCP server) and the
    {e client tail} (trailing decode plus the Dijkstra solve — handheld
    CPU only).  Running batches strictly one after the other leaves the
    server idle while a client decodes.  This executor runs each batch
    as a resumable fiber (OCaml 5 effect handlers): the fiber performs
    {!release} at the engine's release point — after its last
    server-visible operation — and parks there, letting the next batch's
    fetch pass start while the parked tail waits.  A bounded in-flight
    window ([depth], default 2) caps how many parked tails may be
    outstanding; [depth = 1] reproduces the synchronous schedule
    exactly.

    {2 What the pipeline changes — and what it provably cannot}

    Only wall-clock timing.  The fiber suspends strictly {e after} the
    engine has issued every server-visible operation of its walk (the
    overflow loop included), so the server observes the same fetch
    sequence, in the same order, as under synchronous execution; a fixed
    fault schedule therefore lands on the same retrievals of the same
    batches at every depth.  The tail that runs "late" is client-local:
    solve, result assembly, statistics.  Scheduling decisions here read
    only public signals — arrival times, plan-determined accounted
    seconds, plan-fixed decode byte volumes — never query content
    (docs/ENGINE.md, "Suspendable walks").

    {2 The modeled timeline}

    Real execution is reordered (fiber interleaving); the {e reported}
    instants come from a two-resource timeline over the public phase
    costs.  With batch [i]'s ready instant [r_i], fetch cost [F_i] and
    decode cost [D_i]:

    - start:    [s_i = max r_i  e_(i-1)  c_(i-depth)]  (serial server;
      bounded window)
    - fetch end:[e_i = s_i + F_i]
    - complete: [c_i = e_i + D_i]

    Depth 1 degenerates to [s_i = max r_i c_(i-1)] — the synchronous
    schedule. *)

type phase =
  | Fetch of float  (** seconds of serial server (PIR + comm + CPU) work *)
  | Decode of float  (** seconds of client-local decode work *)

val yield : phase -> unit
(** Report a phase cost from inside a fiber.  Costs of like phases
    accumulate.  @raise Effect.Unhandled outside {!submit}. *)

val release : unit -> unit
(** Suspend the calling fiber at its release point: every server-visible
    operation is done, only client-local work remains.  The fiber is
    resumed by the executor (window pressure, {!await} or {!drain}).  At
    most one release per fiber.
    @raise Effect.Unhandled outside {!submit}. *)

val pacing : decode_seconds:(bytes:int -> float) -> Psp_core.Engine.pacing
(** Adapt the engine's phase reports to this executor's effects: the
    engine's [on_server] becomes [yield (Fetch _)], [on_decode] becomes
    [yield (Decode (decode_seconds ~bytes))] (the caller prices the
    plan-fixed byte volume, e.g. {!Psp_pir.Cost_model.decode_seconds}),
    and [on_release] performs {!release}.  Pass the result to
    {!Psp_core.Client.query_nodes_batch} inside a {!submit} thunk. *)

type 'a t
(** A pipelined executor with a bounded in-flight window. *)

type 'a job
(** One submitted fiber and its timeline. *)

val create : ?depth:int -> unit -> 'a t
(** [depth] (default 2) bounds the in-flight window: batch [i]'s fetch
    pass may not start before batch [i - depth] completed.  [depth = 1]
    is the synchronous schedule.
    @raise Invalid_argument if [depth < 1]. *)

val depth : 'a t -> int

val submit : 'a t -> ready:float -> (unit -> 'a) -> 'a job
(** Run [f] as a fiber until it performs {!release} (or returns), then
    compute its timeline against the executor clock: the fetch may not
    start before [ready] (the batch's formation instant), before the
    previous fetch ended, or before the batch [depth] submissions ago
    completed.  Submissions must be in nondecreasing [ready] order —
    the caller's formation order.  If the window is full, the oldest
    parked tail is resumed first.  Each fiber runs under its own
    {!Psp_obs.Obs} span context, so telemetry shapes are identical to
    sequential execution at every depth.  Exceptions raised by [f]
    propagate here (or at the {!await}/{!drain} that resumes the tail). *)

val await : 'a t -> 'a job -> 'a
(** Force [job]'s tail (resuming older parked tails first, in
    submission order) and return its result.  Idempotent. *)

val drain : 'a t -> unit
(** Resume every parked tail in submission order and publish the
    executor's telemetry (overlap histogram and fraction).  Call once
    after the last {!submit}; further submissions restart the window. *)

val result : 'a job -> 'a option
(** The fiber's result, if its tail has run ([None] while parked). *)

(** {2 Job timelines} — modeled instants/costs, meaningful once the job
    was submitted (overlap keeps accruing until {!drain}). *)

val started_at : 'a job -> float
val fetch_finished_at : 'a job -> float
val completed_at : 'a job -> float
val fetch_seconds : 'a job -> float
val decode_seconds : 'a job -> float

val overlap_seconds : 'a job -> float
(** Seconds of this job's decode interval hidden under later jobs' fetch
    intervals — 0 at depth 1 by construction. *)

val in_flight : 'a t -> int
(** Parked (released, tail not yet run) fibers. *)

val makespan : 'a t -> float
(** Latest completion instant across all submitted jobs (0 if none). *)
