(* Effects-based pipelined session executor.

   Each submitted batch runs as a fiber under a deep effect handler.
   The engine (via the {!pacing} adapter) performs [Yield (Fetch _)] /
   [Yield (Decode _)] to report its public phase costs and [Release]
   at its release point — strictly after the last server-visible
   operation of the walk.  The handler parks the continuation there;
   the remaining tail (solve, result assembly) is client-local, so
   running it later cannot reorder anything the server observes.  Real
   execution order is: fiber i runs to its release point, then fiber
   i+1 starts; parked tails are resumed by window pressure (at most
   [depth] outstanding), [await] or [drain].

   The *reported* timeline is modeled, not measured: a serial server
   resource (fetch intervals never overlap each other) plus a bounded
   window (batch i's fetch waits for batch i-depth's completion).
   Depth 1 collapses to the synchronous schedule.  All inputs to the
   model — ready instants, accounted fetch seconds, plan-fixed decode
   volumes — are public, so scheduling decisions never touch query
   content. *)

module Obs = Psp_obs.Obs
module Engine = Psp_core.Engine

type phase = Fetch of float | Decode of float

type _ Effect.t +=
  | Yield : phase -> unit Effect.t
  | Release : unit Effect.t

let yield p = Effect.perform (Yield p)
let release () = Effect.perform Release

let pacing ~decode_seconds =
  { Engine.on_server = (fun ~seconds -> yield (Fetch seconds));
    on_decode = (fun ~bytes -> yield (Decode (decode_seconds ~bytes)));
    on_release = release }

(* One handler slice ends either with the fiber's value or with its
   continuation parked at the release point. *)
type 'a slice =
  | Slice_done of 'a
  | Slice_parked of (unit, 'a slice) Effect.Deep.continuation

type 'a state =
  | Parked of (unit, 'a slice) Effect.Deep.continuation
  | Finished of 'a
  | Poisoned  (* running, or its tail raised *)

type 'a job = {
  j_ready : float;
  mutable j_fetch : float;  (* summed Fetch yields *)
  mutable j_decode : float;  (* summed Decode yields *)
  mutable j_started : float;
  mutable j_fetch_end : float;
  mutable j_completed : float;
  mutable j_overlap : float;
  mutable j_ctx : Obs.context;  (* the fiber's span stack while parked *)
  mutable j_state : 'a state;
}

type 'a t = {
  t_depth : int;
  mutable t_server_free : float;  (* end of the last scheduled fetch interval *)
  mutable t_window : 'a job list;  (* last [<= depth] scheduled jobs, oldest first *)
  mutable t_parked : 'a job list;  (* released fibers, oldest first *)
  mutable t_makespan : float;
  mutable t_total_decode : float;
  mutable t_total_overlap : float;
}

(* Instruments are interned at module load, so they exist — and the
   telemetry shape is identical — in every configuration that links
   this library, used or not.  The counter value (one per submitted
   batch) and the histogram sample count (exactly one observation per
   job, at window eviction or drain) depend only on how many batches
   ran, never on the depth; gauge values and histogram magnitudes are
   excluded from Obs.shape by design. *)
let m_depth = Obs.gauge "pipeline.depth"
let m_batches = Obs.counter "pipeline.batches"
let m_overlap = Obs.histogram "pipeline.overlap_seconds"
let m_overlap_fraction = Obs.gauge "pipeline.overlap_fraction"

let create ?(depth = 2) () =
  if depth < 1 then invalid_arg "Pipeline.create: depth >= 1";
  Obs.set m_depth (float_of_int depth);
  { t_depth = depth;
    t_server_free = 0.0;
    t_window = [];
    t_parked = [];
    t_makespan = 0.0;
    t_total_decode = 0.0;
    t_total_overlap = 0.0 }

let depth t = t.t_depth

(* Every slice of a fiber — first run and resumed tail alike — executes
   on the job's own span stack; the executor's stack is restored on the
   way out, exceptions included.  Obs.switch shifts the parked spans'
   entry snapshots, so time and allocation spent by other fibers while
   this one was parked are never attributed to its spans. *)
let run_slice job thunk =
  let outer = Obs.switch job.j_ctx in
  match thunk () with
  | st ->
      job.j_ctx <- Obs.switch outer;
      st
  | exception e ->
      job.j_ctx <- Obs.switch outer;
      raise e

let first_slice job f =
  let open Effect.Deep in
  run_slice job (fun () ->
      match_with f ()
        { retc = (fun v -> Slice_done v);
          exnc = raise;
          effc =
            (fun (type b) (eff : b Effect.t) ->
              match eff with
              | Yield p ->
                  Some
                    (fun (k : (b, _) continuation) ->
                      (match p with
                      | Fetch s ->
                          if s < 0.0 then
                            invalid_arg "Pipeline: negative fetch seconds";
                          job.j_fetch <- job.j_fetch +. s
                      | Decode s ->
                          if s < 0.0 then
                            invalid_arg "Pipeline: negative decode seconds";
                          job.j_decode <- job.j_decode +. s);
                      continue k ())
              | Release -> Some (fun (k : (b, _) continuation) -> Slice_parked k)
              | _ -> None) })

(* Resume the oldest parked tail to completion. *)
let resume_tail t =
  match t.t_parked with
  | [] -> ()
  | job :: rest -> (
      t.t_parked <- rest;
      match job.j_state with
      | Parked k -> (
          job.j_state <- Poisoned;
          match run_slice job (fun () -> Effect.Deep.continue k ()) with
          | Slice_done v -> job.j_state <- Finished v
          | Slice_parked _ -> failwith "Pipeline: fiber released twice")
      | Finished _ | Poisoned -> ())

(* Place the job on the modeled timeline.  The window gate is the
   completion instant of the job [depth] submissions ago (the window
   list holds exactly the last [depth] scheduled jobs); overlap is the
   intersection of this fetch interval with the decode intervals still
   in the window. *)
let schedule t job =
  let window_gate =
    if List.length t.t_window >= t.t_depth then (List.hd t.t_window).j_completed
    else neg_infinity
  in
  let s = Float.max job.j_ready (Float.max t.t_server_free window_gate) in
  let e = s +. job.j_fetch in
  let c = e +. job.j_decode in
  job.j_started <- s;
  job.j_fetch_end <- e;
  job.j_completed <- c;
  t.t_server_free <- e;
  if c > t.t_makespan then t.t_makespan <- c;
  t.t_total_decode <- t.t_total_decode +. job.j_decode;
  List.iter
    (fun w ->
      let lo = Float.max s w.j_fetch_end and hi = Float.min e w.j_completed in
      if hi > lo then begin
        w.j_overlap <- w.j_overlap +. (hi -. lo);
        t.t_total_overlap <- t.t_total_overlap +. (hi -. lo)
      end)
    t.t_window;
  t.t_window <- t.t_window @ [ job ];
  match t.t_window with
  | oldest :: rest when List.length t.t_window > t.t_depth ->
      Obs.observe m_overlap oldest.j_overlap;
      t.t_window <- rest
  | _ -> ()

let submit t ~ready f =
  if not (ready >= 0.0) then invalid_arg "Pipeline.submit: ready must be >= 0";
  (* Keep the real in-flight window within [depth]: at depth 1 this
     resumes the previous tail before the new fetch pass runs — the
     synchronous execution order, exactly. *)
  while List.length t.t_parked >= t.t_depth do
    resume_tail t
  done;
  let job =
    { j_ready = ready;
      j_fetch = 0.0;
      j_decode = 0.0;
      j_started = 0.0;
      j_fetch_end = 0.0;
      j_completed = 0.0;
      j_overlap = 0.0;
      j_ctx = Obs.context ();
      j_state = Poisoned }
  in
  (match first_slice job f with
  | Slice_done v -> job.j_state <- Finished v
  | Slice_parked k ->
      job.j_state <- Parked k;
      t.t_parked <- t.t_parked @ [ job ]);
  schedule t job;
  Obs.incr m_batches;
  job

let rec await t job =
  match job.j_state with
  | Finished v -> v
  | Parked _ ->
      resume_tail t;
      await t job
  | Poisoned -> failwith "Pipeline.await: fiber failed"

let drain t =
  while t.t_parked <> [] do
    resume_tail t
  done;
  List.iter (fun w -> Obs.observe m_overlap w.j_overlap) t.t_window;
  t.t_window <- [];
  let frac =
    if t.t_total_decode > 0.0 then t.t_total_overlap /. t.t_total_decode else 0.0
  in
  Obs.set m_overlap_fraction frac

let result job = match job.j_state with Finished v -> Some v | _ -> None
let started_at job = job.j_started
let fetch_finished_at job = job.j_fetch_end
let completed_at job = job.j_completed
let fetch_seconds job = job.j_fetch
let decode_seconds job = job.j_decode
let overlap_seconds job = job.j_overlap
let in_flight t = List.length t.t_parked
let makespan t = t.t_makespan
