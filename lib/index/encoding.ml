module G = Psp_graph.Graph
module W = Psp_util.Byte_io.Writer
module R = Psp_util.Byte_io.Reader

type config = {
  with_region_ids : bool;
  landmark_anchors : int;
  flag_bits : int;
  quantize : float;
}

let plain_config =
  { with_region_ids = false; landmark_anchors = 0; flag_bits = 0; quantize = 0.0 }

(* Multiplicative weight grid: index k represents (1+eps)^(k - bias);
   weights round *up*, so quantized shortest paths never undercost and
   the found path's true cost is within (1+eps) of optimal. *)
let grid_bias = 16384

let grid_index ~epsilon w =
  if w <= 0.0 then invalid_arg "Encoding.grid_index: weight must be positive";
  let k = int_of_float (ceil (log w /. log (1.0 +. epsilon))) + grid_bias in
  max 0 (min 65535 k)

let grid_value ~epsilon k = (1.0 +. epsilon) ** float_of_int (k - grid_bias)

let quantize_up ~epsilon w =
  if epsilon <= 0.0 then w else grid_value ~epsilon (grid_index ~epsilon w)

type adj = {
  target : int;
  weight : float;
  target_region : int;
  flags : Psp_util.Bitset.t option;
}

type node_record = {
  id : int;
  x : float;
  y : float;
  adj : adj list;
  landmark : (float array * float array) option;
}

let f32 w v = W.u32 w (Int32.to_int (Int32.bits_of_float v) land 0xFFFFFFFF)

let read_f32 r =
  let bits = R.u32 r in
  (* sign-extend back into an Int32 *)
  Int32.float_of_bits (Int32.of_int bits)

let flag_bytes bits = (bits + 7) / 8

let weight_bytes config w =
  if config.quantize <= 0.0 then 4
  else Psp_util.Byte_io.varint_size (grid_index ~epsilon:config.quantize w)

let write_weight config w v =
  if config.quantize <= 0.0 then f32 w v
  else W.varint w (grid_index ~epsilon:config.quantize v)

let read_weight config r =
  if config.quantize <= 0.0 then read_f32 r
  else grid_value ~epsilon:config.quantize (R.varint r)

let node_bytes config g v =
  let base = Psp_util.Byte_io.varint_size v + 8 (* two f32 coords *) + 1 in
  let per_edge e =
    Psp_util.Byte_io.varint_size e.G.dst
    + weight_bytes config e.G.weight
    + (if config.with_region_ids then 2 else 0)
    + flag_bytes config.flag_bits
  in
  let adj = G.fold_out g v (fun acc e -> acc + per_edge e) 0 in
  base + adj + (2 * 4 * config.landmark_anchors)

let encode_node config g ?region_of ?landmark ?flags w v =
  W.varint w v;
  f32 w (G.x g v);
  f32 w (G.y g v);
  (match landmark with
  | None -> ()
  | Some lm ->
      for a = 0 to Psp_graph.Landmark.anchor_count lm - 1 do
        f32 w (Psp_graph.Landmark.to_anchor lm a v);
        f32 w (Psp_graph.Landmark.from_anchor lm a v)
      done);
  W.varint w (G.out_degree g v);
  G.iter_out g v (fun e ->
      W.varint w e.G.dst;
      write_weight config w e.G.weight;
      if config.with_region_ids then
        W.u16 w
          (match region_of with
          | Some regions -> regions.(e.G.dst)
          | None -> invalid_arg "Encoding.encode_node: region ids requested but absent");
      if config.flag_bits > 0 then
        match flags with
        | Some flag_of -> W.bytes w (Psp_util.Bitset.to_bytes (flag_of e.G.id))
        | None -> invalid_arg "Encoding.encode_node: flags requested but absent")

let encode_region config g ?region_of ?landmark ?flags nodes =
  let w = W.create ~capacity:4096 () in
  W.varint w (Array.length nodes);
  Array.iter (fun v -> encode_node config g ?region_of ?landmark ?flags w v) nodes;
  W.contents w

let decode_node config r =
  let id = R.varint r in
  let x = read_f32 r in
  let y = read_f32 r in
  let landmark =
    if config.landmark_anchors = 0 then None
    else begin
      let to_a = Array.make config.landmark_anchors 0.0 in
      let from_a = Array.make config.landmark_anchors 0.0 in
      for a = 0 to config.landmark_anchors - 1 do
        to_a.(a) <- read_f32 r;
        from_a.(a) <- read_f32 r
      done;
      Some (to_a, from_a)
    end
  in
  let degree = R.varint r in
  let adj =
    List.init degree (fun _ ->
        let target = R.varint r in
        let weight = read_weight config r in
        let target_region = if config.with_region_ids then R.u16 r else -1 in
        let flags =
          if config.flag_bits = 0 then None
          else
            Some
              (Psp_util.Bitset.of_bytes config.flag_bits
                 (R.bytes r (flag_bytes config.flag_bits)))
        in
        { target; weight; target_region; flags })
  in
  { id; x; y; adj; landmark }

let decode_region config blob =
  let r = R.of_bytes blob in
  let count = R.varint r in
  List.init count (fun _ -> decode_node config r)

let lookup_entry_bytes = 10

(* Look-up entries are fixed-width on purpose: the client reads one at a
   secret-dependent offset, so a variable-length encoding (say, varints)
   would turn the entry's position into a function of its content. *)
let encode_lookup_entry ~page ~offset ~span =
  let w = W.create ~capacity:10 () in
  W.u32 w page;
  W.u32 w offset;
  W.u16 w span;
  W.contents w
  [@@oblivious]

let decode_lookup_entry blob ~pos:(pos [@secret]) =
  let r = R.of_bytes ~pos blob in
  let page = R.u32 r in
  let offset = R.u32 r in
  let span = R.u16 r in
  (page, offset, span)
  [@@oblivious]

let encode_region_ids w ids =
  let prev = ref 0 in
  Array.iter
    (fun id ->
      W.varint w (id - !prev);
      prev := id)
    ids

let decode_region_ids r ~count =
  let prev = ref 0 in
  Array.init count (fun _ ->
      let id = !prev + R.varint r in
      prev := id;
      id)

type edge_triple = { e_src : int; e_dst : int; e_weight : float }

let encode_edge_triples ?(quantize = 0.0) w triples =
  Array.iter
    (fun t ->
      W.varint w t.e_src;
      W.varint w t.e_dst;
      if quantize <= 0.0 then f32 w t.e_weight
      else W.varint w (grid_index ~epsilon:quantize t.e_weight))
    triples

let decode_edge_triples ?(quantize = 0.0) r ~count =
  Array.init count (fun _ ->
      let e_src = R.varint r in
      let e_dst = R.varint r in
      let e_weight =
        if quantize <= 0.0 then read_f32 r else grid_value ~epsilon:quantize (R.varint r)
      in
      { e_src; e_dst; e_weight })

let triple_of_edge g id =
  let e = G.edge g id in
  { e_src = e.G.src; e_dst = e.G.dst; e_weight = e.G.weight }
