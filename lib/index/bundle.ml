module PF = Psp_storage.Page_file

type t = {
  scheme : string;
  page_size : int;
  header : Header.t;
  files : PF.t list;
}

let of_database db =
  { scheme = db.Database.scheme;
    page_size = PF.page_size db.Database.data;
    header = db.Database.header;
    files = Database.files db }

let files t = t.files

let manifest_name = "manifest"

let save t ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let manifest = Buffer.create 128 in
  Buffer.add_string manifest "psp-bundle 1\n";
  Buffer.add_string manifest (Printf.sprintf "scheme %s\n" t.scheme);
  Buffer.add_string manifest (Printf.sprintf "page_size %d\n" t.page_size);
  List.iter
    (fun f ->
      Buffer.add_string manifest (Printf.sprintf "file %s\n" (PF.name f));
      PF.save f ~path:(Filename.concat dir (PF.name f) ^ ".pages"))
    t.files;
  let oc = open_out_bin (Filename.concat dir manifest_name) in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Buffer.contents manifest))

let load ~dir =
  let path = Filename.concat dir manifest_name in
  if not (Sys.file_exists path) then
    invalid_arg (Printf.sprintf "Bundle.load: no manifest in %s" dir);
  let ic = open_in_bin path in
  let body =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let lines = String.split_on_char '\n' body in
  let scheme = ref "" and page_size = ref 0 and names = ref [] in
  List.iter
    (fun line ->
      match String.split_on_char ' ' line with
      | [ "psp-bundle"; "1" ] | [ "" ] -> ()
      | [ "scheme"; s ] -> scheme := s
      | [ "page_size"; n ] -> page_size := int_of_string n
      | [ "file"; n ] -> names := n :: !names
      | _ -> invalid_arg (Printf.sprintf "Bundle.load: bad manifest line %S" line))
    lines;
  if !scheme = "" || !page_size = 0 || !names = [] then
    invalid_arg "Bundle.load: incomplete manifest";
  let files =
    List.rev_map
      (fun name -> PF.load_exn ~path:(Filename.concat dir name ^ ".pages"))
      !names
  in
  let header_file =
    match List.find_opt (fun f -> PF.name f = "header") files with
    | Some f -> f
    | None -> invalid_arg "Bundle.load: bundle has no header file"
  in
  let header =
    Header.of_pages (Array.init (PF.page_count header_file) (PF.read header_file))
  in
  if header.Header.scheme <> !scheme then
    invalid_arg "Bundle.load: manifest scheme disagrees with the header";
  { scheme = !scheme; page_size = !page_size; header; files }
