module W = Psp_util.Byte_io.Writer
module R = Psp_util.Byte_io.Reader

type t =
  | Ci of { fi_span : int; m : int }
  | Pi of { fi_span : int }
  | Hy of { r : int; round4 : int }
  | Pi_star of { fi_span : int; cluster : int }
  | Lm of { total_data_pages : int }
  | Af of { pages_per_region : int; max_regions : int }

type step =
  | Next_round
  | Fetch_window of { file : string; count : int }
  | Decode_barrier of { label : string }

type overflow = { file : string; window : int; per_round : bool }

(* The plan is public by construction: everything below may depend only
   on the published scheme parameters, never on a query. *)

(* The step list is the plan's operational form: an execution engine that
   walks it — filling every fetch slot with a real or dummy page — produces
   a conforming trace by construction, and Privacy.expected_trace folds over
   the same list, so there is exactly one source of truth for the shape. *)
let steps t ~pages_per_region =
  let window file count = Fetch_window { file; count } in
  let barrier label = Decode_barrier { label } in
  let repeat n body = List.concat (List.init (max 0 n) (fun _ -> body)) in
  match t with
  | Ci { fi_span; m } ->
      [ Next_round;
        window "lookup" 1;
        barrier "lookup";
        Next_round;
        window "index" fi_span;
        barrier "decode";
        Next_round;
        window "data" (m + 2) ]
  | Pi { fi_span } ->
      (* round 3 carries both the index window and the two region reads *)
      [ Next_round;
        window "lookup" 1;
        barrier "lookup";
        Next_round;
        window "index" fi_span;
        barrier "decode";
        window "data" (2 * pages_per_region) ]
  | Pi_star { fi_span; cluster } ->
      [ Next_round;
        window "lookup" 1;
        barrier "lookup";
        Next_round;
        window "index" fi_span;
        barrier "decode";
        window "data" (2 * cluster) ]
  | Hy { r; round4 } ->
      [ Next_round;
        window "lookup" 1;
        barrier "lookup";
        Next_round;
        window "combined" r;
        barrier "decode";
        Next_round;
        window "combined" round4 ]
  | Lm { total_data_pages } ->
      (Next_round :: window "data" 2 :: barrier "setup"
      :: repeat (total_data_pages - 2) [ Next_round; window "data" 1 ])
  | Af { pages_per_region; max_regions } ->
      (Next_round
      :: window "data" (2 * pages_per_region)
      :: barrier "setup"
      :: repeat (max_regions - 2) [ Next_round; window "data" pages_per_region ])
  [@@oblivious]

(* LM/AF (and HY's long subgraph records) may legitimately out-grow a
   mis-calibrated plan; the walker then keeps fetching past the step list
   instead of failing the query — the trace deviation is exactly the
   access-pattern cost those schemes accept, and Calibrate exists to make
   it unreachable.  CI and PI bound their needs by construction and fail
   closed instead. *)
let overflow = function
  | Ci _ | Pi _ | Pi_star _ -> None
  | Hy _ -> Some { file = "combined"; window = 1; per_round = false }
  | Lm _ -> Some { file = "data"; window = 1; per_round = true }
  | Af { pages_per_region; _ } ->
      Some { file = "data"; window = pages_per_region; per_round = true }
  [@@oblivious]

let pir_fetches = function
  | Ci { fi_span; m } -> [ ("lookup", 1); ("index", fi_span); ("data", m + 2) ]
  | Pi { fi_span } -> [ ("lookup", 1); ("index", fi_span); ("data", 2) ]
  | Hy { r; round4 } -> [ ("lookup", 1); ("combined", r + round4) ]
  | Pi_star { fi_span; cluster } ->
      [ ("lookup", 1); ("index", fi_span); ("data", 2 * cluster) ]
  | Lm { total_data_pages } -> [ ("data", total_data_pages) ]
  | Af { pages_per_region; max_regions } -> [ ("data", pages_per_region * max_regions) ]
  [@@oblivious]

let total_pir_fetches t = List.fold_left (fun acc (_, n) -> acc + n) 0 (pir_fetches t)

(* round 1 is the header download; each Next_round step adds one.  The
   per-round window widths never change the round count, so any
   pages_per_region works here. *)
let rounds t =
  1
  + List.length
      (List.filter (function Next_round -> true | _ -> false) (steps t ~pages_per_region:1))
  [@@oblivious]

let encode t =
  let w = W.create ~capacity:16 () in
  (match t with
  | Ci { fi_span; m } ->
      W.u8 w 0;
      W.varint w fi_span;
      W.varint w m
  | Pi { fi_span } ->
      W.u8 w 1;
      W.varint w fi_span
  | Hy { r; round4 } ->
      W.u8 w 2;
      W.varint w r;
      W.varint w round4
  | Pi_star { fi_span; cluster } ->
      W.u8 w 3;
      W.varint w fi_span;
      W.varint w cluster
  | Lm { total_data_pages } ->
      W.u8 w 4;
      W.varint w total_data_pages
  | Af { pages_per_region; max_regions } ->
      W.u8 w 5;
      W.varint w pages_per_region;
      W.varint w max_regions);
  W.contents w
  [@@oblivious]

let decode blob =
  let r = R.of_bytes blob in
  match R.u8 r with
  | 0 ->
      let fi_span = R.varint r in
      Ci { fi_span; m = R.varint r }
  | 1 -> Pi { fi_span = R.varint r }
  | 2 ->
      let rr = R.varint r in
      Hy { r = rr; round4 = R.varint r }
  | 3 ->
      let fi_span = R.varint r in
      Pi_star { fi_span; cluster = R.varint r }
  | 4 -> Lm { total_data_pages = R.varint r }
  | 5 ->
      let pages_per_region = R.varint r in
      Af { pages_per_region; max_regions = R.varint r }
  | tag -> invalid_arg (Printf.sprintf "Query_plan.decode: bad tag %d" tag)

let pp ppf = function
  | Ci { fi_span; m } -> Format.fprintf ppf "CI(fi_span=%d, m=%d)" fi_span m
  | Pi { fi_span } -> Format.fprintf ppf "PI(fi_span=%d)" fi_span
  | Hy { r; round4 } -> Format.fprintf ppf "HY(r=%d, round4=%d)" r round4
  | Pi_star { fi_span; cluster } ->
      Format.fprintf ppf "PI*(fi_span=%d, cluster=%d)" fi_span cluster
  | Lm { total_data_pages } -> Format.fprintf ppf "LM(pages=%d)" total_data_pages
  | Af { pages_per_region; max_regions } ->
      Format.fprintf ppf "AF(pages/region=%d, regions=%d)" pages_per_region max_regions
