(** Published query plans (§3.1, §5.4).

    The plan is part of the public header: it dictates, for every query,
    the number of rounds, which files are touched in each round and how
    many pages are fetched from each — the invariant that makes all
    queries indistinguishable (Theorem 1).  Clients pad their real needs
    with dummy retrievals up to the plan.

    Per scheme:
    - CI: header; 1 page F_l; [fi_span] pages F_i; [m] + 2 pages F_d.
    - PI: header; 1 page F_l; [fi_span] pages F_i and 2 pages F_d in the
      same round (3 rounds total).
    - HY: header; 1 page F_l; [r] pages of the combined index+data file;
      [round4] further pages of the combined file.
    - PI*: PI with [cluster] pages per region: 2·cluster F_d pages.
    - LM: header; then data pages one region per round (two in the first
      data round), [total_data_pages] in total.
    - AF: like LM but regions span [pages_per_region] pages each;
      [max_regions] regions fetched in total. *)

type t =
  | Ci of { fi_span : int; m : int }
  | Pi of { fi_span : int }
  | Hy of { r : int; round4 : int }
  | Pi_star of { fi_span : int; cluster : int }
  | Lm of { total_data_pages : int }
  | Af of { pages_per_region : int; max_regions : int }

type step =
  | Next_round  (** advance the protocol round (one RTT) *)
  | Fetch_window of { file : string; count : int }
      (** [count] consecutive private fetch slots against [file]; a
          conforming client fills every slot with a real or dummy page *)
  | Decode_barrier of { label : string }
      (** a client-local decode/solve point between fetches — free of
          server-visible effects, present so the execution engine can
          place its telemetry spans at plan-fixed positions *)

type overflow = { file : string; window : int; per_round : bool }
(** How a scheme keeps fetching when a query out-grows a mis-calibrated
    plan: windows of [window] pages against [file], advancing the round
    before each window iff [per_round]. *)

val steps : t -> pages_per_region:int -> step list
(** The plan's operational form — the exact per-round fetch-slot sequence
    a conforming execution must produce (the header download of round 1
    is implicit).  {!Psp_core.Privacy.expected_trace} and the execution
    engine both consume this list, making it the single source of truth
    for Theorem 1's public query plan. *)

val overflow : t -> overflow option
(** [None] for the schemes that bound their needs by construction — CI
    and both PI variants fail closed instead; [Some _] for HY/LM/AF, whose
    queries may exceed a mis-calibrated plan at the documented
    access-pattern cost. *)

val pir_fetches : t -> (string * int) list
(** Expected total private page fetches per file name (files named
    "lookup", "index", "data", "combined") — the budget a conforming
    execution must consume exactly. *)

val total_pir_fetches : t -> int

val rounds : t -> int
(** Total protocol rounds including the header round. *)

val encode : t -> bytes
val decode : bytes -> t
(** @raise Invalid_argument on malformed input. *)

val pp : Format.formatter -> t -> unit
