module G = Psp_graph.Graph

type spec = { nodes : int; edges : int; width : float; height : float; seed : int }

(* Mutable construction state: node coordinates plus a list of
   undirected streets.  [factor] models road curvature: the traversal
   cost is factor * straight-line length, always >= 1 so the Euclidean
   heuristic stays admissible. *)
type street = { u : int; mutable v : int; factor : float }

type state = {
  xs : float Psp_util.Dyn_array.t;
  ys : float Psp_util.Dyn_array.t;
  streets : street Psp_util.Dyn_array.t;
  rng : Psp_util.Rng.t;
}

let add_node st x y =
  Psp_util.Dyn_array.push st.xs x;
  Psp_util.Dyn_array.push st.ys y;
  Psp_util.Dyn_array.length st.xs - 1

let node_count st = Psp_util.Dyn_array.length st.xs

(* Highways carry a lower cost-per-distance factor than side streets, so
   shortest paths collapse onto shared corridors — the hierarchy that
   makes real-world passage subgraphs (and goal-directed search) small. *)
let add_street ?(highway = false) st u v =
  let factor =
    if highway then 0.55 +. Psp_util.Rng.float st.rng 0.1
    else 1.0 +. Psp_util.Rng.float st.rng 0.3
  in
  Psp_util.Dyn_array.push st.streets { u; v; factor }

let connected_without st skip =
  (* BFS over streets, ignoring street index [skip] (-1 = none). *)
  let n = node_count st in
  if n = 0 then true
  else begin
    let adj = Array.make n [] in
    Psp_util.Dyn_array.iteri
      (fun i s ->
        if i <> skip then begin
          adj.(s.u) <- s.v :: adj.(s.u);
          adj.(s.v) <- s.u :: adj.(s.v)
        end)
      st.streets;
    let seen = Array.make n false in
    let queue = Queue.create () in
    Queue.add 0 queue;
    seen.(0) <- true;
    let visited = ref 0 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      incr visited;
      List.iter
        (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            Queue.add v queue
          end)
        adj.(u)
    done;
    !visited = n
  end

(* Junction grid sized so that (edges - nodes) matches the target
   cyclomatic surplus [k]: a c x r grid has rc nodes and
   r(c-1) + c(r-1) streets, surplus rc - r - c. *)
let grid_dims k =
  let c = max 3 (int_of_float (ceil (1.0 +. sqrt (float_of_int (max 1 k) +. 1.0)))) in
  (c, c)

let build_grid st spec rows cols =
  let jitter extent = Psp_util.Rng.float st.rng (0.5 *. extent) -. (0.25 *. extent) in
  let dx = spec.width /. float_of_int (max 1 (cols - 1)) in
  let dy = spec.height /. float_of_int (max 1 (rows - 1)) in
  let id = Array.make_matrix rows cols 0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let x = (float_of_int c *. dx) +. jitter dx in
      let y = (float_of_int r *. dy) +. jitter dy in
      id.(r).(c) <- add_node st x y
    done
  done;
  (* every [spacing]-th grid line is a highway corridor *)
  let spacing = 5 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then
        add_street ~highway:(r mod spacing = 2) st id.(r).(c) id.(r).(c + 1);
      if r + 1 < rows then
        add_street ~highway:(c mod spacing = 2) st id.(r).(c) id.(r + 1).(c)
    done
  done;
  id

let surplus st = Psp_util.Dyn_array.length st.streets - node_count st

(* Remove random non-bridge streets until the surplus drops to [k]. *)
let trim_streets st k =
  let attempts = ref 0 in
  while surplus st > k && !attempts < 20 * Psp_util.Dyn_array.length st.streets do
    incr attempts;
    let i = Psp_util.Rng.int st.rng (Psp_util.Dyn_array.length st.streets) in
    if connected_without st i then begin
      (* swap-remove street i *)
      let last = Psp_util.Dyn_array.length st.streets - 1 in
      Psp_util.Dyn_array.set st.streets i (Psp_util.Dyn_array.get st.streets last);
      ignore (Psp_util.Dyn_array.pop st.streets)
    end
  done

(* Add random short-range diagonal streets until the surplus rises to [k]. *)
let densify st k id rows cols =
  while surplus st < k do
    let r = Psp_util.Rng.int st.rng (rows - 1) in
    let c = Psp_util.Rng.int st.rng (cols - 1) in
    if Psp_util.Rng.bool st.rng then add_street st id.(r).(c) id.(r + 1).(c + 1)
    else add_street st id.(r).(c + 1) id.(r + 1).(c)
  done

(* Split a random street with a jittered midpoint node: +1 node,
   +1 street, surplus preserved. *)
let subdivide st =
  let i = Psp_util.Rng.int st.rng (Psp_util.Dyn_array.length st.streets) in
  let s = Psp_util.Dyn_array.get st.streets i in
  let ux = Psp_util.Dyn_array.get st.xs s.u and uy = Psp_util.Dyn_array.get st.ys s.u in
  let vx = Psp_util.Dyn_array.get st.xs s.v and vy = Psp_util.Dyn_array.get st.ys s.v in
  let len = sqrt (((vx -. ux) ** 2.0) +. ((vy -. uy) ** 2.0)) in
  let t = 0.35 +. Psp_util.Rng.float st.rng 0.3 in
  let mx = ux +. (t *. (vx -. ux)) and my = uy +. (t *. (vy -. uy)) in
  (* perpendicular jitter bends the polyline like a real road *)
  let off = Psp_util.Rng.gaussian st.rng ~mean:0.0 ~stddev:(0.08 *. len) in
  let nx, ny =
    if len > 1e-9 then (mx -. (off *. (vy -. uy) /. len), my +. (off *. (vx -. ux) /. len))
    else (mx, my)
  in
  let w = add_node st nx ny in
  let old_v = s.v in
  s.v <- w;
  Psp_util.Dyn_array.push st.streets { u = w; v = old_v; factor = s.factor }

let generate spec =
  if spec.nodes < 4 then invalid_arg "Synthetic.generate: nodes must be >= 4";
  if spec.edges < spec.nodes - 1 then
    invalid_arg "Synthetic.generate: edges must be >= nodes - 1";
  let st =
    { xs = Psp_util.Dyn_array.create ();
      ys = Psp_util.Dyn_array.create ();
      streets = Psp_util.Dyn_array.create ();
      rng = Psp_util.Rng.create spec.seed }
  in
  let k = spec.edges - spec.nodes in
  let rows, cols = grid_dims k in
  (* the junction grid must not exceed the target node count *)
  let rows, cols =
    let shrink d = max 2 (int_of_float (sqrt (float_of_int spec.nodes)) - 1) |> min d in
    (shrink rows, shrink cols)
  in
  let id = build_grid st spec rows cols in
  if surplus st > k then trim_streets st k;
  if surplus st < k then densify st k id rows cols;
  while node_count st < spec.nodes do
    subdivide st
  done;
  let b = G.Builder.create () in
  for v = 0 to node_count st - 1 do
    ignore
      (G.Builder.add_node b ~x:(Psp_util.Dyn_array.get st.xs v)
         ~y:(Psp_util.Dyn_array.get st.ys v))
  done;
  Psp_util.Dyn_array.iter
    (fun s ->
      let ux = Psp_util.Dyn_array.get st.xs s.u and uy = Psp_util.Dyn_array.get st.ys s.u in
      let vx = Psp_util.Dyn_array.get st.xs s.v and vy = Psp_util.Dyn_array.get st.ys s.v in
      let len = sqrt (((vx -. ux) ** 2.0) +. ((vy -. uy) ** 2.0)) in
      let weight = Float.max (s.factor *. len) 1e-6 in
      G.Builder.add_undirected b s.u s.v weight)
    st.streets;
  G.Builder.freeze b

let random_queries g ~count ~seed =
  let rng = Psp_util.Rng.create seed in
  let n = G.node_count g in
  if n < 2 then invalid_arg "Synthetic.random_queries: need at least two nodes";
  Array.init count (fun _ ->
      let s = Psp_util.Rng.int rng n in
      let rec other () =
        let t = Psp_util.Rng.int rng n in
        if t = s then other () else t
      in
      (s, other ()))
