module G = Psp_graph.Graph

type distribution =
  | Uniform
  | Local of { radius : float }
  | Commute of { hubs : int }
  | Repeated of { distinct : int }

let describe = function
  | Uniform -> "uniform"
  | Local { radius } -> Printf.sprintf "local(r=%.0f)" radius
  | Commute { hubs } -> Printf.sprintf "commute(%d hubs)" hubs
  | Repeated { distinct } -> Printf.sprintf "repeated(%d)" distinct

type arrival_process =
  | Steady of { rate : float }
  | Poisson of { rate : float }
  | Bursts of { period : float; mean_size : int }

let describe_arrivals = function
  | Steady { rate } -> Printf.sprintf "steady(%.2f/s)" rate
  | Poisson { rate } -> Printf.sprintf "poisson(%.2f/s)" rate
  | Bursts { period; mean_size } ->
      Printf.sprintf "bursts(every %.1fs, ~%d)" period mean_size

let arrival_of_string s =
  let num v = try Some (float_of_string v) with Failure _ -> None in
  match String.split_on_char ':' s with
  | [ "steady"; r ] -> (
      match num r with
      | Some rate when rate > 0.0 -> Ok (Steady { rate })
      | _ -> Error "steady:<rate> needs a positive rate")
  | [ "poisson"; r ] -> (
      match num r with
      | Some rate when rate > 0.0 -> Ok (Poisson { rate })
      | _ -> Error "poisson:<rate> needs a positive rate")
  | [ "bursts"; spec ] -> (
      match String.split_on_char 'x' spec with
      | [ p; m ] -> (
          match (num p, int_of_string_opt m) with
          | Some period, Some mean_size when period > 0.0 && mean_size >= 1 ->
              Ok (Bursts { period; mean_size })
          | _ -> Error "bursts:<period>x<mean-size> needs period > 0 and size >= 1")
      | _ -> Error "bursts:<period>x<mean-size>")
  | _ -> Error (Printf.sprintf "unknown arrival process %S" s)

let arrivals process ~count ~seed =
  if count < 0 then invalid_arg "Workload.arrivals: count must be >= 0";
  let rng = Psp_util.Rng.create seed in
  match process with
  | Steady { rate } ->
      if rate <= 0.0 then invalid_arg "Workload.arrivals: rate must be positive";
      Array.init count (fun i -> float_of_int i /. rate)
  | Poisson { rate } ->
      if rate <= 0.0 then invalid_arg "Workload.arrivals: rate must be positive";
      let t = ref 0.0 in
      Array.init count (fun _ ->
          (* inverse-CDF exponential gap; 1 - u avoids log 0 *)
          let u = Psp_util.Rng.float rng 1.0 in
          t := !t +. (-.log (1.0 -. u) /. rate);
          !t)
  | Bursts { period; mean_size } ->
      if period <= 0.0 then invalid_arg "Workload.arrivals: period must be positive";
      if mean_size < 1 then invalid_arg "Workload.arrivals: mean_size must be >= 1";
      let out = Array.make count 0.0 in
      let filled = ref 0 and burst = ref 0 in
      while !filled < count do
        (* burst sizes vary uniformly in [1, 2·mean - 1] (mean preserved),
           so no single fixed batch width matches every burst *)
        let size = 1 + Psp_util.Rng.int rng ((2 * mean_size) - 1) in
        let start = float_of_int !burst *. period in
        for _ = 1 to min size (count - !filled) do
          out.(!filled) <- start;
          incr filled
        done;
        incr burst
      done;
      out

let generate g distribution ~count ~seed =
  let rng = Psp_util.Rng.create seed in
  let n = G.node_count g in
  if n < 2 then invalid_arg "Workload.generate: need at least two nodes";
  let uniform_other s =
    let rec draw () =
      let t = Psp_util.Rng.int rng n in
      if t = s then draw () else t
    in
    draw ()
  in
  (* rejection-sample a node within radius; give up to uniform after a
     bounded number of attempts (isolated corners of sparse maps) *)
  let near ~of_ ~radius =
    let rec attempt k =
      if k = 0 then uniform_other of_
      else begin
        let v = Psp_util.Rng.int rng n in
        if v <> of_ && G.euclidean g of_ v <= radius then v else attempt (k - 1)
      end
    in
    attempt 64
  in
  match distribution with
  | Uniform ->
      Array.init count (fun _ ->
          let s = Psp_util.Rng.int rng n in
          (s, uniform_other s))
  | Local { radius } ->
      if radius <= 0.0 then invalid_arg "Workload.generate: radius must be positive";
      Array.init count (fun _ ->
          let s = Psp_util.Rng.int rng n in
          (s, near ~of_:s ~radius))
  | Commute { hubs } ->
      if hubs < 1 then invalid_arg "Workload.generate: hubs must be >= 1";
      let hub_nodes = Array.init hubs (fun _ -> Psp_util.Rng.int rng n) in
      let x0, y0, x1, y1 = G.bounding_box g in
      let radius = 0.08 *. Float.max (x1 -. x0) (y1 -. y0) in
      Array.init count (fun _ ->
          let s = Psp_util.Rng.int rng n in
          let hub = Psp_util.Rng.pick rng hub_nodes in
          let t = near ~of_:hub ~radius in
          if t = s then (s, uniform_other s) else (s, t))
  | Repeated { distinct } ->
      if distinct < 1 then invalid_arg "Workload.generate: distinct must be >= 1";
      let base =
        Array.init distinct (fun _ ->
            let s = Psp_util.Rng.int rng n in
            (s, uniform_other s))
      in
      Array.init count (fun i -> base.(i mod distinct))
