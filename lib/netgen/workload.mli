(** Query workload generation.

    The paper's evaluation uses uniformly random source–destination
    pairs (§7.1); real deployments see skewed patterns.  Because every
    query is padded to the same plan, the private schemes' response
    times are *identical* across all of these distributions — a property
    the benchmark's extras section demonstrates with this module. *)

type distribution =
  | Uniform
      (** independent uniform endpoints (the paper's workload) *)
  | Local of { radius : float }
      (** destination within Euclidean [radius] of the source —
          neighbourhood errands *)
  | Commute of { hubs : int }
      (** destinations concentrated near a few hub nodes — rush-hour
          traffic into business districts *)
  | Repeated of { distinct : int }
      (** the same few queries over and over — exactly the pattern
          access-pattern attacks exploit against weaker schemes *)

val generate :
  Psp_graph.Graph.t -> distribution -> count:int -> seed:int -> (int * int) array
(** [count] queries with s <> t; deterministic in [seed]. *)

val describe : distribution -> string

(** {1 Arrival processes}

    When queries are {e served} rather than replayed, the serving
    frontend's queueing behaviour depends on when they arrive.  An
    arrival process turns a query count into nondecreasing arrival
    offsets (model seconds from the start of the run) for the
    scheduler's virtual clock.  Arrival times are public: the server
    trivially observes when requests reach it. *)

type arrival_process =
  | Steady of { rate : float }
      (** one query every [1/rate] seconds — a constant drip *)
  | Poisson of { rate : float }
      (** memoryless arrivals at [rate] per second (exponential gaps) *)
  | Bursts of { period : float; mean_size : int }
      (** a burst every [period] seconds whose size varies uniformly in
          [[1, 2·mean_size - 1]] — rush-hour clumps that no single fixed
          batch width fits *)

val arrivals : arrival_process -> count:int -> seed:int -> float array
(** [count] nondecreasing arrival offsets; deterministic in [seed].
    @raise Invalid_argument on a negative count or non-positive
    rate/period/size. *)

val describe_arrivals : arrival_process -> string

val arrival_of_string : string -> (arrival_process, string) result
(** Parse a CLI spec: ["steady:2"], ["poisson:0.5"], or
    ["bursts:10x8"] (a burst every 10 s of mean size 8). *)
