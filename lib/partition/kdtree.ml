module G = Psp_graph.Graph

type axis = X | Y

type tree =
  | Leaf of { region : int }
  | Split of { axis : axis; coord : float; less : tree; geq : tree }

type t = {
  tree : tree;
  region_count : int;
  assignment : int array;
  region_nodes : int array array;
}

let other = function X -> Y | Y -> X

(* Builders operate on an item array of (node id, size); leaves are
   numbered in construction order by a shared counter. *)
type ctx = {
  g : G.t;
  sizes : int array;
  capacity : int;
  z : int; (* largest single node payload *)
  mutable next_region : int;
  leaves : int array Psp_util.Dyn_array.t; (* region id -> node ids *)
}

let coord_of ctx axis v = match axis with X -> G.x ctx.g v | Y -> G.y ctx.g v

let total_bytes ctx items = Array.fold_left (fun acc v -> acc + ctx.sizes.(v)) 0 items

let make_leaf ctx items =
  let region = ctx.next_region in
  ctx.next_region <- region + 1;
  Psp_util.Dyn_array.push ctx.leaves (Array.copy items);
  Leaf { region }

let sort_by ctx axis items =
  let items = Array.copy items in
  Array.sort
    (fun a b ->
      let c = compare (coord_of ctx axis a) (coord_of ctx axis b) in
      if c <> 0 then c else compare a b)
    items;
  items

(* Split the sorted stream at the item whose cumulative byte count first
   reaches [target]; the overlapping node is pushed left.  Returns the
   split index (start of the right part) clamped so neither side is
   empty, and the split coordinate halfway between the parts. *)
let split_at ctx axis items target =
  let n = Array.length items in
  let idx = ref 0 and acc = ref 0 in
  while !idx < n && !acc < target do
    acc := !acc + ctx.sizes.(items.(!idx));
    incr idx
  done;
  let idx = max 1 (min (n - 1) !idx) in
  let a = coord_of ctx axis items.(idx - 1) and b = coord_of ctx axis items.(idx) in
  let coord = if b > a then 0.5 *. (a +. b) else b in
  (idx, coord)

(* Plain splitting at the middle byte of the stream, used both for the
   plain variant (until the payload fits) and for packed left-subtrees
   (for an exact number of levels). *)
let rec split_plain ctx items axis ~until =
  let total = total_bytes ctx items in
  let stop = match until with `Fits -> total <= ctx.capacity | `Levels l -> l = 0 in
  if stop then
    if total <= ctx.capacity then make_leaf ctx items
    else
      (* safety net for packed construction: boundary-node pushes can in
         rare cases overfill a planned leaf — keep splitting *)
      split_plain ctx items axis ~until:`Fits
  else begin
    let sorted = sort_by ctx axis items in
    let idx, coord = split_at ctx axis sorted (total / 2) in
    let left = Array.sub sorted 0 idx in
    let right = Array.sub sorted idx (Array.length sorted - idx) in
    let until' = match until with `Fits -> `Fits | `Levels l -> `Levels (l - 1) in
    let less = split_plain ctx left (other axis) ~until:until' in
    let geq = split_plain ctx right (other axis) ~until:until' in
    Split { axis; coord; less; geq }
  end

(* §5.6 root-type split: byte position 2^i * (capacity - z) for the
   smallest i past the middle of the stream. *)
let rec split_packed ctx items axis =
  let total = total_bytes ctx items in
  if total <= ctx.capacity then make_leaf ctx items
  else begin
    let unit = max 1 (ctx.capacity - ctx.z) in
    let rec find_i i pos = if 2 * pos > total then (i, pos) else find_i (i + 1) (2 * pos) in
    let levels, target = find_i 0 unit in
    let sorted = sort_by ctx axis items in
    let idx, coord = split_at ctx axis sorted target in
    let left = Array.sub sorted 0 idx in
    let right = Array.sub sorted idx (Array.length sorted - idx) in
    let less = split_plain ctx left (other axis) ~until:(`Levels levels) in
    let geq = split_packed ctx right (other axis) in
    Split { axis; coord; less; geq }
  end

let build ~variant g ~node_bytes ~capacity =
  let n = G.node_count g in
  if n = 0 then invalid_arg "Kdtree.build: empty graph";
  if capacity <= 0 then invalid_arg "Kdtree.build: capacity must be positive";
  let sizes = Array.init n node_bytes in
  let z = Array.fold_left max 0 sizes in
  if z > capacity then
    invalid_arg
      (Printf.sprintf "Kdtree.build: node payload %d exceeds page capacity %d" z capacity);
  let ctx =
    { g; sizes; capacity; z; next_region = 0; leaves = Psp_util.Dyn_array.create () }
  in
  let items = Array.init n (fun v -> v) in
  let tree =
    match variant with
    | `Packed -> split_packed ctx items X
    | `Plain -> split_plain ctx items X ~until:`Fits
  in
  let region_nodes = Psp_util.Dyn_array.to_array ctx.leaves in
  let assignment = Array.make n (-1) in
  Array.iteri
    (fun region nodes -> Array.iter (fun v -> assignment.(v) <- region) nodes)
    region_nodes;
  { tree; region_count = ctx.next_region; assignment; region_nodes }

let build_packed g ~node_bytes ~capacity = build ~variant:`Packed g ~node_bytes ~capacity
let build_plain g ~node_bytes ~capacity = build ~variant:`Plain g ~node_bytes ~capacity

let rec locate_tree tree ~x ~y =
  match tree with
  | Leaf { region } -> region
  | Split { axis; coord; less; geq } ->
      let c = match axis with X -> x | Y -> y in
      if c < coord then locate_tree less ~x ~y else locate_tree geq ~x ~y
  [@@leak_ok
    "client-local descent of the downloaded KD-tree index: the comparisons \
     run on the client, and the resulting region only feeds the plan-shaped \
     page schedule, which is public by definition"]

let locate t ~x ~y = locate_tree t.tree ~x ~y

let region_of_node t v = t.assignment.(v)
let nodes_of_region t r = Array.copy t.region_nodes.(r)

let region_bytes t ~node_bytes r =
  Array.fold_left (fun acc v -> acc + node_bytes v) 0 t.region_nodes.(r)

let utilization t ~node_bytes ~capacity =
  if t.region_count = 0 then 0.0
  else begin
    let used = ref 0 in
    for r = 0 to t.region_count - 1 do
      used := !used + region_bytes t ~node_bytes r
    done;
    float_of_int !used /. float_of_int (t.region_count * capacity)
  end

let serialize t =
  let w = Psp_util.Byte_io.Writer.create () in
  let rec emit = function
    | Leaf { region } ->
        Psp_util.Byte_io.Writer.u8 w 0;
        Psp_util.Byte_io.Writer.varint w region
    | Split { axis; coord; less; geq } ->
        Psp_util.Byte_io.Writer.u8 w (match axis with X -> 1 | Y -> 2);
        Psp_util.Byte_io.Writer.float64 w coord;
        emit less;
        emit geq
  in
  emit t.tree;
  Psp_util.Byte_io.Writer.contents w

let deserialize data =
  let r = Psp_util.Byte_io.Reader.of_bytes data in
  let max_region = ref (-1) in
  let rec parse () =
    match Psp_util.Byte_io.Reader.u8 r with
    | 0 ->
        let region = Psp_util.Byte_io.Reader.varint r in
        if region > !max_region then max_region := region;
        Leaf { region }
    | tag ->
        let axis = if tag = 1 then X else Y in
        let coord = Psp_util.Byte_io.Reader.float64 r in
        let less = parse () in
        let geq = parse () in
        Split { axis; coord; less; geq }
  in
  let tree = parse () in
  (tree, !max_region + 1)
