module Obs = Psp_obs.Obs
module Server = Psp_pir.Server
module Cost_model = Psp_pir.Cost_model
module Client = Psp_core.Client
module Response_time = Psp_core.Response_time
module Pipeline = Psp_async.Pipeline

type policy = Adaptive | Fixed of int | Pipelined of { width : int; depth : int }

type config = { min_width : int; max_width : int; slo : float; policy : policy }

let default = { min_width = 1; max_width = 16; slo = 60.0; policy = Adaptive }

type tenant = { name : string; server : Server.t; graph : Psp_graph.Graph.t }

type served = {
  job : Queue.job;
  result : Client.result;
  response : Response_time.t;
  latency : float;
  width : int;
  dispatched : float;
  completed : float;
}

type batch_record = {
  b_tenant : string;
  b_width : int;
  b_dispatched : float;
  b_service : float;
}

type report = {
  served : served array;
  batches : batch_record list;
  makespan : float;
}

(* ------------------------------------------------------------------ *)
(* Width policy.  Everything these functions read is public — queue
   depths, clock instants, configuration and cost-model estimates — and
   the [@@oblivious] marks put them on psplint's audit surface so they
   stay that way: a future edit that threads secret data into a width
   or deadline decision becomes a lint finding, not a leak.

   Adaptive is work-conserving: whenever the serial server is idle it
   ships everything a lane has queued (clamped to [min, max]), shrinking
   the width while the estimated batch service would push the oldest
   member past the SLO ([ests.(w)] is the cost-model estimate for a
   width-[w] batch).  During a long service new arrivals pile up, so the
   next batch is naturally wider — batching tracks load with no tuning.
   Fixed [w] is the classic fill-or-timeout batcher it is benchmarked
   against: it waits for [w] members or for its head to age out the
   SLO, whichever comes first. *)

let decide_width cfg ~age ~depth ~ests =
  match cfg.policy with
  | Fixed w | Pipelined { width = w; _ } -> max 1 (min w depth)
  | Adaptive ->
      let w = ref (max cfg.min_width (min cfg.max_width depth)) in
      while !w > cfg.min_width && age +. ests.(!w) > cfg.slo do
        decr w
      done;
      max 1 !w
  [@@oblivious]

(* The instant a lane becomes due: an adaptive lane is due the moment
   it has a head (work-conserving), a fixed-width lane only when its
   head times out (its depth trigger is checked separately). *)
let lane_deadline cfg ~head =
  match cfg.policy with
  | Adaptive -> head
  | Fixed _ | Pipelined _ -> head +. cfg.slo
  [@@oblivious]

(* ------------------------------------------------------------------ *)
(* Per-tenant serving state: telemetry instruments (names derived from
   the tenant name — public configuration) and the learned service
   estimate the adaptive deadline plans against. *)

type lane_state = {
  tn : tenant;
  max_pages : int;  (* largest served file, for the width factor *)
  mutable est_unit : float;  (* EWMA of width-1 service; 0 until observed *)
  c_batches : Obs.counter;
  g_peak : Obs.gauge;
  g_width : Obs.gauge;
  h_width : Obs.histogram;
  h_latency : Obs.histogram;
}

let lane_state_of tn =
  let max_pages =
    List.fold_left
      (fun acc name ->
        max acc (Psp_storage.Page_file.page_count (Server.file tn.server name)))
      1
      (Server.file_names tn.server)
  in
  { tn;
    max_pages;
    est_unit = 0.0;
    c_batches = Obs.counter (Printf.sprintf "serve.%s.batches" tn.name);
    g_peak = Obs.gauge (Printf.sprintf "serve.%s.queue.peak" tn.name);
    g_width = Obs.gauge (Printf.sprintf "serve.%s.width.last" tn.name);
    h_width = Obs.histogram (Printf.sprintf "serve.%s.width" tn.name);
    h_latency = Obs.histogram (Printf.sprintf "serve.%s.latency" tn.name) }

(* Cost-model width factor: how much longer a width-w batch takes than a
   width-1 one, with the depth derived from the same layout formula the
   pyramid store uses.  Public by construction. *)
let width_factor st w =
  let one w =
    Cost_model.batch_response_seconds (Server.cost st.tn.server)
      ~cache_capacity:Psp_pir.Pyramid_store.default_cache_capacity
      ~file_pages:st.max_pages ~batch:w
  in
  one (max 1 w) /. one 1

let est_service st w =
  if st.est_unit <= 0.0 then 0.0 else st.est_unit *. width_factor st w

(* Estimated batch service per candidate width, indexed by width. *)
let ests_for st cfg =
  Array.init (cfg.max_width + 1) (fun w -> if w = 0 then 0.0 else est_service st w)

let learn st ~width ~service =
  let unit = service /. width_factor st width in
  st.est_unit <-
    (if st.est_unit <= 0.0 then unit else (0.5 *. st.est_unit) +. (0.5 *. unit))

(* ------------------------------------------------------------------ *)
(* Building a mixed stream *)

let mix streams =
  let all =
    List.concat_map
      (fun (tenant, pairs, arrivals) ->
        if Array.length pairs <> Array.length arrivals then
          invalid_arg "Scheduler.mix: one arrival per query required";
        Array.to_list
          (Array.mapi
             (fun k (src, dst) ->
               { Queue.tenant; src; dst; arrival = arrivals.(k); index = 0 })
             pairs))
      streams
  in
  let sorted =
    List.stable_sort
      (fun (a : Queue.job) b -> compare a.Queue.arrival b.Queue.arrival)
      all
  in
  Array.of_list (List.mapi (fun i (j : Queue.job) -> { j with Queue.index = i }) sorted)

(* ------------------------------------------------------------------ *)
(* The virtual-clock event loop: a serial server (one SCP) that, when
   idle, either dispatches a due lane or advances the clock to the next
   event (an arrival or a lane deadline).  Arrivals are known up front
   but the policies are future-blind: a lane is due only from what an
   online scheduler could see — its depth, its head's age and the end
   of the stream. *)

let eps = 1e-9

let run ?pad ?retry cfg ~tenants ~jobs =
  if cfg.min_width < 1 then invalid_arg "Scheduler.run: min_width must be >= 1";
  if cfg.max_width < cfg.min_width then
    invalid_arg "Scheduler.run: max_width must be >= min_width";
  if cfg.slo <= 0.0 then invalid_arg "Scheduler.run: slo must be positive";
  (match cfg.policy with
  | Fixed w when w < 1 -> invalid_arg "Scheduler.run: fixed width must be >= 1"
  | Pipelined { width; _ } when width < 1 ->
      invalid_arg "Scheduler.run: pipelined width must be >= 1"
  | Pipelined { depth; _ } when depth < 1 ->
      invalid_arg "Scheduler.run: pipelined depth must be >= 1"
  | _ -> ());
  let lanes = Hashtbl.create 8 in
  List.iter
    (fun tn ->
      if Hashtbl.mem lanes tn.name then
        invalid_arg (Printf.sprintf "Scheduler.run: duplicate tenant %S" tn.name);
      Hashtbl.replace lanes tn.name (lane_state_of tn))
    tenants;
  let lane name =
    match Hashtbl.find_opt lanes name with
    | Some st -> st
    | None -> invalid_arg (Printf.sprintf "Scheduler.run: unknown tenant %S" name)
  in
  let n = Array.length jobs in
  let ordered = Array.copy jobs in
  Array.stable_sort
    (fun (a : Queue.job) b -> compare a.Queue.arrival b.Queue.arrival)
    ordered;
  Array.iter (fun (j : Queue.job) -> ignore (lane j.Queue.tenant)) ordered;
  let q = Queue.create () in
  let out : served option array = Array.make n None in
  let batches = ref [] in
  let now = ref 0.0 in
  let next = ref 0 in
  let ingest () =
    while
      !next < n && ordered.(!next).Queue.arrival <= !now +. eps
    do
      let j = ordered.(!next) in
      Queue.push q j;
      let st = lane j.Queue.tenant in
      Obs.set_max st.g_peak (float_of_int (Queue.depth q j.Queue.tenant));
      incr next
    done
  in
  let cap =
    match cfg.policy with
    | Adaptive -> cfg.max_width
    | Fixed w | Pipelined { width = w; _ } -> w
  in
  let deadline_of name =
    match Queue.head_arrival q name with
    | None -> infinity
    | Some head -> lane_deadline cfg ~head
  in
  let due name =
    let flush = !next >= n in
    Queue.depth q name >= cap || flush || !now +. eps >= deadline_of name
  in
  (* The virtual clock advances by the modeled server-side service only
     (PIR + communication + plaintext server work): the measured
     client-side decode time is a property of the harness machine, and
     letting it into the schedule would make dispatch instants
     nondeterministic. *)
  let service_of r =
    let t = Response_time.of_result r in
    t.Response_time.pir_seconds +. t.Response_time.comm_seconds
    +. t.Response_time.server_cpu_seconds
  in
  (* Pipelined mode runs each batch as a Psp_async.Pipeline fiber and
     keeps TWO timelines.  The {e formation} clock is [now], and it
     advances by fetch + modeled decode per batch — the synchronous
     schedule — so which jobs are queued when the next batch forms is
     identical at every depth: batch composition, and with it every
     member's trace and the server's fetch sequence, is
     depth-independent by construction.  The {e execution} timeline
     lives in the executor: batch [i]'s fetch starts at
     [max ready_i fetch_end_(i-1) completed_(i-depth)], which at depth 1
     reproduces the formation clock exactly and at depth ≥ 2 overlaps
     batch [i]'s fetch with earlier batches' decode tails.  Reported
     latencies come from the execution timeline. *)
  let pipe =
    match cfg.policy with
    | Pipelined { depth; _ } -> Some (Pipeline.create ~depth ())
    | Adaptive | Fixed _ -> None
  in
  let pending = ref [] in
  let dispatch_pipelined pipe name =
    let st = lane name in
    let depth = Queue.depth q name in
    let head = Option.value ~default:!now (Queue.head_arrival q name) in
    let width =
      decide_width cfg ~age:(Float.max 0.0 (!now -. head)) ~depth
        ~ests:(ests_for st cfg)
    in
    let members = Queue.take q name ~max:width in
    let w = Array.length members in
    let pairs = Array.map (fun (j : Queue.job) -> (j.Queue.src, j.Queue.dst)) members in
    let cost = Server.cost st.tn.server in
    let pacing =
      Pipeline.pacing ~decode_seconds:(fun ~bytes ->
          Cost_model.decode_seconds cost ~bytes)
    in
    let dispatched = !now in
    (* The execution timeline may start this batch's fetch as soon as
       all its members have arrived and the pipeline admits it — the
       formation instant [dispatched] only decided the membership.
       (Composition is still future-blind: the members were chosen at
       the formation clock's due instant; execution merely backdates
       the fetch to when those members were available.) *)
    let ready =
      Array.fold_left
        (fun acc (j : Queue.job) -> Float.max acc j.Queue.arrival)
        0.0 members
    in
    let job =
      Pipeline.submit pipe ~ready (fun () ->
          Client.query_nodes_batch ?pad ?retry ~pacing st.tn.server st.tn.graph
            pairs)
    in
    let fetch = Pipeline.fetch_seconds job in
    let decode = Pipeline.decode_seconds job in
    now := !now +. fetch +. decode;
    Obs.incr st.c_batches;
    Obs.set st.g_width (float_of_int w);
    Obs.observe st.h_width (float_of_int w);
    batches :=
      { b_tenant = name;
        b_width = w;
        b_dispatched = dispatched;
        b_service = fetch +. decode }
      :: !batches;
    learn st ~width:w ~service:fetch;
    pending := (st, job, members, w, dispatched) :: !pending
  in
  let dispatch name =
    let st = lane name in
    let depth = Queue.depth q name in
    let head = Option.value ~default:!now (Queue.head_arrival q name) in
    let width =
      decide_width cfg ~age:(Float.max 0.0 (!now -. head)) ~depth
        ~ests:(ests_for st cfg)
    in
    let members = Queue.take q name ~max:width in
    let w = Array.length members in
    let pairs = Array.map (fun (j : Queue.job) -> (j.Queue.src, j.Queue.dst)) members in
    let results = Client.query_nodes_batch ?pad ?retry st.tn.server st.tn.graph pairs in
    let service = Array.fold_left (fun acc r -> acc +. service_of r) 0.0 results in
    let dispatched = !now in
    now := !now +. service;
    Obs.incr st.c_batches;
    Obs.set st.g_width (float_of_int w);
    Obs.observe st.h_width (float_of_int w);
    batches :=
      { b_tenant = name; b_width = w; b_dispatched = dispatched; b_service = service }
      :: !batches;
    learn st ~width:w ~service;
    Array.iteri
      (fun k (j : Queue.job) ->
        let wait =
          Cost_model.queueing_delay_seconds ~enqueued:j.Queue.arrival ~dispatched
        in
        let latency = !now -. j.Queue.arrival in
        Obs.observe st.h_latency latency;
        out.(j.Queue.index) <-
          Some
            { job = j;
              result = results.(k);
              response = Response_time.with_queue ~seconds:wait
                  (Response_time.of_result results.(k));
              latency;
              width = w;
              dispatched;
              completed = !now })
      members
  in
  let rec loop () =
    ingest ();
    if Queue.total_depth q = 0 then begin
      if !next < n then begin
        now := Float.max !now ordered.(!next).Queue.arrival;
        loop ()
      end
    end
    else begin
      let pending = Queue.tenants q in
      let ripe = List.filter due pending in
      match ripe with
      | _ :: _ ->
          (* FIFO fairness across lanes: serve the oldest head first *)
          let oldest =
            List.fold_left
              (fun best name ->
                let h name =
                  Option.value ~default:infinity (Queue.head_arrival q name)
                in
                if h name < h best then name else best)
              (List.hd ripe) (List.tl ripe)
          in
          (match pipe with
          | Some p -> dispatch_pipelined p oldest
          | None -> dispatch oldest);
          loop ()
      | [] ->
          let horizon =
            List.fold_left (fun acc name -> Float.min acc (deadline_of name)) infinity
              pending
          in
          let horizon =
            if !next < n then Float.min horizon ordered.(!next).Queue.arrival
            else horizon
          in
          now := Float.max !now horizon;
          loop ()
    end
  in
  loop ();
  (* Pipelined epilogue: force every parked tail (publishing the
     executor's overlap telemetry), then fill the output slots from the
     execution timeline.  The tails were already free of server-visible
     work — the fibers released after their last fetch — so nothing
     here changes what the server observed. *)
  let makespan =
    match pipe with
    | None -> !now
    | Some p ->
        Pipeline.drain p;
        List.iter
          (fun (st, job, (members : Queue.job array), w, dispatched) ->
            let results = Pipeline.await p job in
            let completed = Pipeline.completed_at job in
            let decode_share =
              Pipeline.decode_seconds job /. float_of_int (max 1 w)
            in
            Array.iteri
              (fun k (j : Queue.job) ->
                let wait =
                  Cost_model.queueing_delay_seconds ~enqueued:j.Queue.arrival
                    ~dispatched
                in
                let latency = completed -. j.Queue.arrival in
                Obs.observe st.h_latency latency;
                out.(j.Queue.index) <-
                  Some
                    { job = j;
                      result = results.(k);
                      response =
                        Response_time.with_decode ~seconds:decode_share
                          (Response_time.with_queue ~seconds:wait
                             (Response_time.of_result results.(k)));
                      latency;
                      width = w;
                      dispatched;
                      completed })
              members)
          (List.rev !pending);
        Pipeline.makespan p
  in
  let served =
    Array.mapi
      (fun i s ->
        match s with
        | Some s -> s
        | None ->
            invalid_arg
              (Printf.sprintf "Scheduler.run: job index %d never served \
                               (indices must be unique and dense)" i))
      out
  in
  { served; batches = List.rev !batches; makespan }
