(* Per-tenant FIFO of pending jobs.  Everything this module stores or
   reads is public: tenant names (separately published databases),
   arrival instants on the virtual clock and submission indices.  The
   endpoint node ids ride along opaquely — no operation here inspects
   them; they are only opened by the client engine once the batch is
   dispatched. *)

type job = { tenant : string; src : int; dst : int; arrival : float; index : int }

type lane = { jobs : job Stdlib.Queue.t; mutable pushed : int; mutable last : float }

type t = {
  lanes : (string, lane) Hashtbl.t;
  mutable order : string list; (* first-push order, reversed *)
  mutable pending : int;
}

let create () = { lanes = Hashtbl.create 8; order = []; pending = 0 }

let lane t tenant =
  match Hashtbl.find_opt t.lanes tenant with
  | Some l -> l
  | None ->
      let l = { jobs = Stdlib.Queue.create (); pushed = 0; last = neg_infinity } in
      Hashtbl.replace t.lanes tenant l;
      t.order <- tenant :: t.order;
      l

let push t (j : job) =
  let l = lane t j.tenant in
  if j.arrival < l.last then
    invalid_arg "Queue.push: arrivals must be nondecreasing per tenant";
  Stdlib.Queue.push j l.jobs;
  l.pushed <- l.pushed + 1;
  l.last <- j.arrival;
  t.pending <- t.pending + 1

let depth t tenant =
  match Hashtbl.find_opt t.lanes tenant with
  | Some l -> Stdlib.Queue.length l.jobs
  | None -> 0

let pushed t tenant =
  match Hashtbl.find_opt t.lanes tenant with Some l -> l.pushed | None -> 0

let head_arrival t tenant =
  match Hashtbl.find_opt t.lanes tenant with
  | Some l -> Option.map (fun (j : job) -> j.arrival) (Stdlib.Queue.peek_opt l.jobs)
  | None -> None

let take t tenant ~max =
  if max < 0 then invalid_arg "Queue.take: max must be >= 0";
  match Hashtbl.find_opt t.lanes tenant with
  | None -> [||]
  | Some l ->
      let n = min max (Stdlib.Queue.length l.jobs) in
      t.pending <- t.pending - n;
      Array.init n (fun _ -> Stdlib.Queue.pop l.jobs)

let tenants t =
  List.filter (fun name -> depth t name > 0) (List.rev t.order)

let total_depth t = t.pending
