(** Cross-plan scheduler with adaptive batch width — the multi-tenant
    serving frontend.

    One simulated SCP serves several published databases ("tenants":
    e.g. a CI plan next to a PI plan) from a mixed query stream.  The
    scheduler keeps a per-tenant FIFO ({!Queue}), and whenever the
    serial server is free it either dispatches a {e due} lane as one
    same-plan batch ({!Psp_core.Client.query_nodes_batch}, which merges
    the members' fetches into single oblivious-store passes) or advances
    its virtual clock to the next event.

    {b Width policy.}  An adaptive lane is work-conserving: the moment
    the server is free it ships everything the lane has queued, with the
    width clamped into [[min_width, max_width]] and shrunk while the
    cost-model service estimate says a batch that wide would push the
    lane's oldest member past [slo].  While a batch is in service new
    arrivals accumulate, so the next batch is naturally wider — the
    width tracks load with no tuning.  A fixed-width lane is the classic
    fill-or-timeout batcher it is benchmarked against: it idles until
    [w] members arrive or its head has waited the full SLO, which is
    exactly what [bench --experiment serve] shows costing it the tail.
    Every input to these decisions is public: queue depths, arrival
    instants, configuration and {!Psp_pir.Cost_model} estimates.  The
    decision functions carry [[\@\@oblivious]] so psplint audits that
    they stay that way.

    {b What load leaks.}  Arrival times, batch widths and which tenant
    each batch serves are visible to the LBS by definition — it serves
    the requests.  Per Theorem 1 it learns nothing {e more}: each
    member's trace stays byte-identical to a sequential run of the same
    plan, whatever the mix (test/test_serve.ml asserts this under a
    32-seed fault sweep). *)

type policy =
  | Adaptive
      (** work-conserving; width = clamp(min, max, depth), shrunk to
          keep the head's estimated latency inside the SLO *)
  | Fixed of int
      (** fill-or-timeout at width [w]: dispatch at depth ≥ w or when
          the head has waited the SLO; the comparison baseline
          benchmarked by [bench --experiment serve] *)
  | Pipelined of { width : int; depth : int }
      (** fill-or-timeout at [width] like {!Fixed}, but batches execute
          through the {!Psp_async.Pipeline} effects executor with up to
          [depth] batches in flight: batch [i]'s PIR pass overlaps
          earlier batches' client-side decode tails.  Batch composition
          is decided on a {e formation} clock that advances by fetch +
          modeled decode per batch regardless of [depth], so every
          member's trace and the server's fetch sequence are
          byte-identical across depths — [depth = 1] {e is} the
          synchronous schedule; only reported completion instants
          change (test/test_pipeline.ml asserts both).  Benchmarked by
          [bench --experiment pipeline]. *)

type config = {
  min_width : int;
  max_width : int;
  slo : float;  (** target end-to-end latency bound, model seconds *)
  policy : policy;
}

val default : config
(** width 1–16, 60 s SLO, adaptive. *)

type tenant = {
  name : string;  (** the public tenant key, e.g. ["ci"] *)
  server : Psp_pir.Server.t;
  graph : Psp_graph.Graph.t;  (** for node-id endpoint resolution *)
}

type served = {
  job : Queue.job;
  result : Psp_core.Client.result;
  response : Psp_core.Response_time.t;
      (** the member's own cost share with [queue_seconds] set to its
          dispatch wait (and, under {!Pipelined}, [decode_seconds] set
          to its share of the batch's modeled decode) *)
  latency : float;
      (** completion minus arrival on the virtual clock: queueing wait
          plus the whole batch's service (members complete together);
          under {!Pipelined} the completion instant comes from the
          execution timeline, so overlap shortens it *)
  width : int;  (** width of the batch that served it *)
  dispatched : float;
  completed : float;
}

type batch_record = {
  b_tenant : string;
  b_width : int;
  b_dispatched : float;
  b_service : float;
}

type report = {
  served : served array;  (** indexed by submission index *)
  batches : batch_record list;  (** chronological *)
  makespan : float;  (** virtual-clock instant the last batch finished *)
}

val mix : (string * (int * int) array * float array) list -> Queue.job array
(** Interleave per-tenant workloads ([tenant, query pairs, arrivals])
    into one submission-indexed stream ordered by arrival time.
    @raise Invalid_argument when a stream's pair and arrival counts
    differ. *)

val run :
  ?pad:bool ->
  ?retry:Psp_core.Client.retry_policy ->
  config ->
  tenants:tenant list ->
  jobs:Queue.job array ->
  report
(** Serve the stream to completion.  Per-tenant gauges
    ([serve.<name>.queue.peak], [serve.<name>.width.last]), counters
    ([serve.<name>.batches]) and histograms ([serve.<name>.width],
    [serve.<name>.latency]) are recorded through {!Psp_obs.Obs} under
    the constant-shape policy — all derived from the public schedule.
    [pad]/[retry] pass through to {!Psp_core.Client.query_nodes_batch}.
    @raise Invalid_argument on an invalid config, an unknown or
    duplicate tenant, or job indices that are not dense and unique. *)
