(** Per-tenant FIFO of pending queries for the serving frontend.

    The queue stores only public facts: which tenant (a separately
    published database the LBS already distinguishes by the session
    opened against it), when the query arrived on the virtual clock and
    its submission index.  The endpoint node ids ride along opaquely —
    nothing here reads them; the client engine opens them only after
    the batch is dispatched. *)

type job = {
  tenant : string;  (** which published database the query targets *)
  src : int;
  dst : int;  (** endpoint node ids — carried, never inspected here *)
  arrival : float;  (** arrival instant on the scheduler's virtual clock *)
  index : int;  (** submission index, for scatter-back *)
}

type t

val create : unit -> t

val push : t -> job -> unit
(** Append to the job's tenant lane.
    @raise Invalid_argument when the arrival precedes the lane's most
    recently pushed arrival (per-tenant arrivals must be
    nondecreasing). *)

val depth : t -> string -> int
(** Pending jobs in one tenant's lane (0 for unknown tenants). *)

val pushed : t -> string -> int
(** Total jobs ever pushed to the lane — taken ones included. *)

val head_arrival : t -> string -> float option
(** Arrival instant of the lane's oldest pending job. *)

val take : t -> string -> max:int -> job array
(** Pop up to [max] jobs from the lane's head, oldest first.
    @raise Invalid_argument when [max < 0]. *)

val tenants : t -> string list
(** Tenants with at least one pending job, in first-push order. *)

val total_depth : t -> int
(** Pending jobs across all lanes. *)
