(** Plan-keyed dispatch — the routing half of the batching split.

    {!Batcher} is the same-plan merge core: it merges queries that walk
    one public plan into single oblivious-store passes.  A multi-tenant
    frontend additionally receives queries for {e different} plans (a CI
    database next to a PI database, say) in one stream.  This module
    owns that routing: a registry of named tenants, a stable partition
    of a mixed stream into per-tenant groups, and the scatter that puts
    per-tenant results back into submission order.

    Grouping never reads query content.  The key is the tenant name —
    public configuration the LBS knows anyway, since each tenant is a
    separately published database — so a query's observable routing
    depends only on which database it asked for, exactly what the
    adversary already sees from the session it opens. *)

type t
(** A tenant registry: name → serving {!Server.t}. *)

val create : unit -> t

val register : t -> name:string -> Server.t -> unit
(** Add a tenant.
    @raise Invalid_argument on a duplicate name. *)

val names : t -> string list
(** Registered tenant names, in registration order. *)

val server : t -> string -> Server.t option

val batcher : t -> string -> width:int -> Batcher.t
(** Open a same-plan merge core of [width] sessions against the named
    tenant's server.
    @raise Invalid_argument on an unknown tenant or [width <= 0]. *)

(** {1 Stable partition / scatter} *)

type 'a group = {
  tenant : string;
  members : (int * 'a) array;
      (** (submission index, item), in submission order *)
}

val partition : ('a -> string) -> 'a array -> 'a group list
(** Group a mixed stream by tenant key.  Tenants appear in first-seen
    order; members keep their submission indices and relative order. *)

val scatter : none:'b -> ('a group * 'b array) list -> 'b array
(** Invert {!partition}: place each group's results (one per member, in
    member order) back at the members' submission indices.  [none]
    fills any index no group covers (partial serving).
    @raise Invalid_argument when a group's result count differs from
    its member count. *)
