(** The LBS with its secure co-processor — the server side of Figure 1.

    The server hosts a set of page files (the scheme's database) and
    exposes the two access paths of the architecture:

    - {!Session.fetch}: one page via the PIR interface.  The host learns
      only (round, file); latency follows {!Cost_model}.
    - {!Session.download}: a whole file in plaintext over the SSL link —
      only ever used for the public header, which every client fetches.
    - {!Session.plain_fetch}: an unsecured page read, used exclusively
      by the non-private OBF baseline for comparison.

    Three execution modes: [`Simulated] serves pages straight from the
    page files (fast — used by the benchmark harness; costs and traces
    are identical), [`Oblivious] routes every PIR fetch through a real
    square-root ORAM ({!Oblivious_store}), and [`Pyramid] through the
    Williams–Sion-style hierarchical store ({!Pyramid_store}) — both
    used by the privacy tests and examples. *)

type t

type mode = [ `Simulated | `Oblivious | `Pyramid ]

exception File_too_large of { file : string; bytes : int; limit : int }
(** Raised at registration when a file exceeds what the SCP can support
    (§3.2) — this is how PI "becomes inapplicable" on large networks. *)

exception Page_corrupt of { file : string; page : int }
(** Raised by {!Session.fetch} when a retrieved page fails its CRC-32
    check against the checksum recorded at append time — corruption in
    storage or in flight, detected before the payload reaches protocol
    code.  Clients treat it like a transient fault and re-fetch. *)

exception Tampered of { file : string; page : int }
(** Raised by {!Session.fetch} when a retrieved page passes the CRC but
    fails its pack-time HMAC tag ({!Psp_storage.Page_file.authenticate})
    — a Byzantine host altered content and recomputed the checksum.
    Unlike {!Page_corrupt} this is {e not} retried in place: the replica
    is failed over (a tampering host would tamper again). *)

exception Replica_down of { replica : int }
(** The replica refused the exchange (failpoint [pir.replica.down]).
    Fails the replica over. *)

exception Replica_timeout of { replica : int; seconds : float }
(** Cumulative latency-spike delay (failpoint [pir.replica.latency])
    crossed {!Cost_model.timeout_seconds}.  Fails the replica over. *)

val create :
  ?mode:mode ->
  ?replica:int ->
  cost:Cost_model.t ->
  key:bytes ->
  Psp_storage.Page_file.t list ->
  t
(** [replica] (default 0) is the server's public index in its replica
    set.  Files not yet {!Psp_storage.Page_file.sealed} are sealed with
    [key] at registration — the pack-time authentication step.
    @raise File_too_large per the cost model's [max_file_bytes].
    @raise Invalid_argument on duplicate file names. *)

val mode : t -> mode
val cost : t -> Cost_model.t

val replica : t -> int
(** Public replica index (0 when standalone). *)

val key : t -> bytes
(** The publisher master key the client verifies tags under. *)

val file : t -> string -> Psp_storage.Page_file.t
(** @raise Not_found for an unregistered name. *)

val file_names : t -> string list
val database_bytes : t -> int
(** Total size across all files. *)

val executed_slot_touches : t -> int
(** Physical slot touches the server's oblivious stores have executed
    since creation, summed over files (0 in [`Simulated] mode, which
    instantiates no store).  A width-k {!Session.fetch_batch} adds
    exactly {!Cost_model.batch_probe_touches} touches beyond the first
    member's pass — the identity the batch benchmark and
    [test_batch.ml] assert. *)

val executed_level_scans : t -> int
(** Merged level scans (pyramid) or epoch sweeps (square-root) the
    server's oblivious stores have executed since creation, summed over
    files (0 in [`Simulated] mode).  The executed-side amortization: a
    width-k batch runs one scan per level per chunk instead of k. *)

module Session : sig
  type server := t
  type t

  val start : ?share:int -> server -> t
  (** Opens the SSL connection; the query starts in round 1.  [share]
      (default 1) is the number of batched sessions this round trip is
      multiplexed over: a merged batch round is one message exchange, so
      each member is charged [rtt / share]. *)

  val next_round : ?share:int -> t -> unit
  (** Advance to the next round of the protocol (adds one RTT, split
      over [share] batched sessions as in {!start}). *)

  val round : t -> int

  val fetch : t -> file:string -> page:int -> bytes
  (** Private page retrieval via the SCP.  The returned page is verified
      against its recorded CRC-32 and then against its pack-time HMAC
      tag before being released.

      The trace event and cost accounting for the attempt happen
      {e before} any fault can fire: a failed retrieval is still part of
      the adversary's view.  Failpoints: [pir.fetch.transient] (raises
      {!Psp_fault.Fault.Injected}), [pir.fetch.corrupt] (flips a bit in
      the retrieved page, which the checksum gate converts into
      {!Page_corrupt}), [pir.fetch.tamper] (flips a bit {e after} the
      checksum gate — a Byzantine host recomputing the CRC — which the
      tag gate converts into {!Tampered}), [pir.replica.down] (raises
      {!Replica_down}) and [pir.replica.latency] (adds
      {!Cost_model.latency_spike_seconds} to the session; past
      {!Cost_model.timeout_seconds} cumulative it raises
      {!Replica_timeout}).

      @raise Not_found on unknown file; Invalid_argument on a bad page
      number; {!Page_corrupt} on a checksum failure; {!Tampered} on a
      tag failure; {!Replica_down}/{!Replica_timeout} on replica
      faults. *)

  val fetch_batch : file:string -> (t * int) array -> bytes array
(** One merged oblivious-store pass serving same-round requests of
      concurrent sessions (the {!Psp_pir.Batcher} building block).  Each
      member's attempt is accounted and recorded in its own trace before
      the shared [pir.fetch.transient] failpoint is consulted, so a
      fault — and the retry that re-issues every member's identical
      request — adds the same events to every member: batched sessions
      stay mutually trace-identical under any fault schedule.

      The pass cost {!Cost_model.pir_batch_fetch_seconds} is split
      evenly across members; with one request the cost, trace and fault
      behaviour equal {!fetch} exactly.  In [`Oblivious]/[`Pyramid]
      modes the k probes are {e executed} as one merged pass
      ({!Pyramid_store.fetch_many} / {!Oblivious_store.fetch_many}):
      one sequential scan per level serves every member, per-member
      slot traces stay byte-identical to sequential execution, and the
      marginal page-touch count equals the simulated cost model's
      {!Cost_model.batch_probe_touches} basis by construction (both
      sides derive the depth from {!Cost_model.pyramid_levels}).

      Replica faults are batch-granular: [pir.replica.down] and
      [pir.replica.latency] are consulted once per merged pass and their
      effect (abort, or spike delay) applies to every member, so batched
      sessions stay mutually trace-identical.  [pir.fetch.tamper]
      mirrors [pir.fetch.corrupt]: consulted per member, but any
      {!Tampered} aborts the whole batch.

      @raise Invalid_argument if the sessions belong to different
      servers or a page is out of range; {!Page_corrupt}, {!Tampered},
      {!Replica_down} and {!Replica_timeout} abort the whole batch. *)

  val download : t -> file:string -> bytes array
  (** Plaintext download of an entire (public) file.  Failpoint:
      [pir.download.transient]. *)

  val plain_fetch : t -> file:string -> page:int -> bytes
  (** Unsecured read: the LBS sees the page number (OBF baseline only). *)

  val add_server_compute : t -> float -> unit
  (** Charge server CPU seconds (OBF's path computations). *)

  val note_retry : t -> backoff:float -> unit
  (** Account one recovery attempt: counts a retry and charges its
      backoff delay to both the communication time and the session's
      recovery overhead.  Called by the client's retry loop; the
      backoff must depend only on the attempt number (see the
      oblivious-retry argument in DESIGN.md). *)

  val accounted_seconds : t -> float
  (** Server-side cost accounted so far — [pir + comm + server_cpu],
      the same total the eventual {!finish} stats report, readable
      mid-session.  The pipelined executor ({!Psp_async.Pipeline})
      samples it at a session's release point to place the batch's
      fetch phase on its virtual timeline.  A public aggregate of
      plan-determined charges. *)

  type stats = {
    rounds : int;
    pir_seconds : float;        (** time inside the PIR protocol *)
    comm_seconds : float;       (** SSL transfer + per-round RTTs *)
    server_cpu_seconds : float; (** plaintext processing (OBF) *)
    pir_fetches : (string * int) list;  (** per-file private page counts *)
    retries : int;              (** recovery attempts after faults *)
    recovery_seconds : float;   (** backoff time spent recovering *)
    trace : Trace.t;            (** the adversary's view *)
  }

  val finish : t -> stats
end
