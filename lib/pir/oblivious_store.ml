module Obs = Psp_obs.Obs

exception Tampering_detected of { slot : int }

(* Telemetry: a sqrt-ORAM read touches exactly one physical slot, and
   the reshuffle cadence is a public function of the access count
   (DESIGN.md §5) — both are safe to count.  Which slot, or whether a
   read was a shelter hit, is never recorded. *)
let m_slot_reads = Obs.counter "oram.sqrt.slot_reads"
let m_shuffles = Obs.counter "oram.sqrt.shuffles"

type physical_event =
  | Slot of { epoch : int; slot : int }
  | Reshuffle of { epoch : int }

type t = {
  master_key : bytes;
  page_size : int;
  n : int; (* logical pages *)
  dummies : int;
  plain : bytes array; (* the database content, SCP-side ground truth *)
  mutable slots : bytes array; (* encrypted physical slots, host-side *)
  mutable perm : Psp_crypto.Feistel.t; (* logical index -> physical slot *)
  mutable epoch : int;
  shelter : (int, bytes) Hashtbl.t; (* sheltered logical pages *)
  mutable dummy_cursor : int; (* dummies consumed this epoch *)
  trace : physical_event Psp_util.Dyn_array.t;
  mutable slot_touches : int; (* physical slot touches ever executed *)
  mutable sweeps : int; (* merged sweeps ever executed *)
}

let isqrt_up n = int_of_float (ceil (sqrt (float_of_int n)))

let epoch_key t = Psp_crypto.Hmac.derive ~key:t.master_key ~label:(Printf.sprintf "epoch-%d" t.epoch)

let slot_nonce slot =
  let nonce = Bytes.make 12 '\000' in
  for i = 0 to 7 do
    Bytes.set nonce i (Char.chr ((slot lsr (8 * i)) land 0xFF))
  done;
  nonce

(* encrypt-then-MAC: ciphertext followed by a 32-byte tag over it *)
let encrypt_slot ~key ~slot plaintext =
  let cipher = Psp_crypto.Chacha20.encrypt ~key ~nonce:(slot_nonce slot) plaintext in
  let mac_key = Psp_crypto.Hmac.derive ~key ~label:"slot-mac" in
  Bytes.cat cipher (Psp_crypto.Hmac.mac ~key:mac_key (Bytes.cat (slot_nonce slot) cipher))
  [@@oblivious]

let decrypt_slot ~key ~slot stored =
  let n = Bytes.length stored - 32 in
  if n < 0 then raise (Tampering_detected { slot });
  let cipher = Bytes.sub stored 0 n in
  let tag = Bytes.sub stored n 32 in
  let mac_key = Psp_crypto.Hmac.derive ~key ~label:"slot-mac" in
  if not (Psp_crypto.Hmac.verify ~key:mac_key (Bytes.cat (slot_nonce slot) cipher) ~tag)
  then raise (Tampering_detected { slot });
  Psp_crypto.Chacha20.decrypt ~key ~nonce:(slot_nonce slot) cipher
  [@@leak_ok
    "branches only on the stored ciphertext's length and MAC validity — \
     host-supplied data, not the secret page index; the abort names the \
     physical slot, which the host already observes"]
  [@@oblivious]

(* Re-scatter every page (and fresh dummies) under this epoch's keys. *)
let shuffle t =
  Obs.incr m_shuffles;
  let key = epoch_key t in
  let perm_key = Psp_crypto.Hmac.derive ~key ~label:"perm" in
  let enc_key = Psp_crypto.Hmac.derive ~key ~label:"enc" in
  let total = t.n + t.dummies in
  t.perm <- Psp_crypto.Feistel.create ~key:perm_key ~domain:total;
  let slots = Array.make total Bytes.empty in
  for i = 0 to total - 1 do
    let slot = Psp_crypto.Feistel.forward t.perm i in
    let plaintext = if i < t.n then t.plain.(i) else Bytes.make t.page_size '\000' in
    slots.(slot) <- encrypt_slot ~key:enc_key ~slot plaintext
  done;
  t.slots <- slots;
  Hashtbl.reset t.shelter;
  t.dummy_cursor <- 0
  [@@oblivious]

let create ~key file =
  let n = Psp_storage.Page_file.page_count file in
  if n = 0 then invalid_arg "Oblivious_store.create: empty file";
  let t =
    { master_key = Psp_crypto.Hmac.derive ~key ~label:("store:" ^ Psp_storage.Page_file.name file);
      page_size = Psp_storage.Page_file.page_size file;
      n;
      dummies = max 1 (isqrt_up n);
      plain = Array.init n (Psp_storage.Page_file.read file);
      slots = [||];
      perm = Psp_crypto.Feistel.create ~key ~domain:1;
      epoch = 0;
      shelter = Hashtbl.create 16;
      dummy_cursor = 0;
      trace = Psp_util.Dyn_array.create ();
      slot_touches = 0;
      sweeps = 0 }
  in
  shuffle t;
  t

let page_count t = t.n
let slot_count t = t.n + t.dummies
let shelter_capacity t = t.dummies
let epoch t = t.epoch

(* Where a chunk member's page comes from: its own (real) slot, the SCP
   shelter, or an earlier member of the same chunk.  The planned
   physical slot travels with the decision. *)
type probe = Real of int | Sheltered of int | Member of { supplier : int; slot : int }

(* Serve a width-k batch of reads as one merged sweep per epoch chunk.
   The batch is cut at the reshuffle cadence (a reshuffle re-keys and
   re-permutes every slot, so probes across it cannot share a sweep);
   within a chunk the plan decides each member's physical slot in member
   order — a repeat of a sheltered (or same-chunk) page consumes the
   next unused dummy, a fresh page maps through the epoch permutation,
   exactly as k sequential reads would — and the execution touches the
   planned slots in one sequential sweep under a single key schedule.
   Per-member slot touches are therefore byte-identical to the
   sequential execution's.

   The array itself is not marked secret — its length (the batch width)
   is public, and the loop structure below depends only on it and on the
   access count; the page indices inside are marked [@secret] where they
   are read out, exactly as Server.Session.fetch_batch treats its
   request array. *)
let fetch_many t ids =
  let k = Array.length ids in
  (* constant delta before any secret-dependent work: one slot per member *)
  Obs.add m_slot_reads k;
  (Array.iter
     (fun (i [@secret]) ->
       if i < 0 || i >= t.n then invalid_arg "Oblivious_store.fetch_many: page out of range")
     ids)
  [@leak_ok
    "bounds check fails closed with a constant message before any slot is touched; \
     the trip count is the public batch width"];
  let results = Array.make k Bytes.empty in
  let rec serve base =
    if base >= k then ()
    else begin
    (* epoch room: each read advances shelter + consumed dummies by one,
       so the chunk boundary is a public function of the access count *)
    let chunk = min (k - base) (t.dummies - (Hashtbl.length t.shelter + t.dummy_cursor)) in
    let plan =
      (Array.make chunk (Real 0))
      [@leak_ok
        "the chunk length is a public function of the access count and the batch \
         width (the reshuffle cadence), never of which pages were accessed"]
    in
    let pending =
      (Hashtbl.create (2 * chunk))
      [@leak_ok "sized by the public chunk length, as above"]
    in
    (for m = 0 to chunk - 1 do
       let (i [@secret]) = ids.(base + m) in
       let dummy () =
         let slot = Psp_crypto.Feistel.forward t.perm (t.n + t.dummy_cursor) in
         t.dummy_cursor <- t.dummy_cursor + 1;
         slot
       in
       match Hashtbl.find_opt pending i with
       | Some supplier -> plan.(m) <- Member { supplier; slot = dummy () }
       | None ->
           if Hashtbl.mem t.shelter i then plan.(m) <- Sheltered (dummy ())
           else begin
             plan.(m) <- Real (Psp_crypto.Feistel.forward t.perm i);
             Hashtbl.replace pending i m
           end
     done)
    [@leak_ok
      "every member is planned exactly one freshly permuted physical slot: a \
       sheltered or repeated page consumes the next unused dummy, a fresh page maps \
       through the epoch permutation — the host cannot tell the cases apart"];
    (* one sequential sweep over the planned slots, in member order,
       under one derived key; every probe (dummy included) is fetched
       and authenticated, as in the sequential path *)
    let enc_key = Psp_crypto.Hmac.derive ~key:(epoch_key t) ~label:"enc" in
    t.sweeps <- t.sweeps + 1;
    (for m = 0 to chunk - 1 do
       let slot =
         match plan.(m) with Real s | Sheltered s | Member { slot = s; _ } -> s
       in
       t.slot_touches <- t.slot_touches + 1;
       Psp_util.Dyn_array.push t.trace (Slot { epoch = t.epoch; slot });
       let page = decrypt_slot ~key:enc_key ~slot t.slots.(slot) in
       match plan.(m) with Real _ -> results.(base + m) <- page | _ -> ()
     done)
    [@leak_ok
      "the sweep touches and authenticates one slot per member regardless of the \
       plan arm; only the client-side retention of the decrypted page differs"];
    (* retire the chunk in member order: shelter the fresh pages, route
       repeats from the shelter or their same-chunk supplier *)
    (for m = 0 to chunk - 1 do
       let (i [@secret]) = ids.(base + m) in
       match plan.(m) with
       | Real _ -> Hashtbl.replace t.shelter i results.(base + m)
       | Sheltered _ -> results.(base + m) <- Hashtbl.find t.shelter i
       | Member { supplier; _ } -> results.(base + m) <- results.(base + supplier)
     done)
    [@leak_ok
      "payload routing between client-side copies after the host already observed \
       one slot touch per member"];
    (* sheltered + consumed dummies = accesses this epoch; reshuffling at
       a fixed access count keeps the epoch cadence pattern-independent *)
    (if Hashtbl.length t.shelter + t.dummy_cursor >= t.dummies then begin
       t.epoch <- t.epoch + 1;
       Psp_util.Dyn_array.push t.trace (Reshuffle { epoch = t.epoch });
       shuffle t
     end)
    [@leak_ok
      "shelter size + consumed dummies advances by one per read, so the reshuffle \
       cadence is a public function of the access count alone"];
    serve (base + chunk)
    end
  in
  serve 0;
  results
  [@@oblivious]

let read t (i [@secret]) =
  (if i < 0 || i >= t.n then invalid_arg "Oblivious_store.read: page out of range")
  [@leak_ok "bounds check fails closed with a constant message before any slot is touched"];
  ((fetch_many t [| i |]).(0))
  [@leak_ok
    "a width-1 merged pass: fetch_many's loop structure depends only on the public \
     batch width (here 1) and the access count, never on the page index"]
  [@@oblivious]

let physical_trace t = Psp_util.Dyn_array.to_list t.trace
let clear_trace t = Psp_util.Dyn_array.clear t.trace
let slot_touches t = t.slot_touches
let sweeps t = t.sweeps

let corrupt_slot t ~slot =
  if slot < 0 || slot >= Array.length t.slots then
    invalid_arg "Oblivious_store.corrupt_slot: slot out of range";
  let b = Bytes.copy t.slots.(slot) in
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
  t.slots.(slot) <- b
