module Obs = Psp_obs.Obs

exception Tampering_detected of { slot : int }

(* Telemetry: a sqrt-ORAM read touches exactly one physical slot, and
   the reshuffle cadence is a public function of the access count
   (DESIGN.md §5) — both are safe to count.  Which slot, or whether a
   read was a shelter hit, is never recorded. *)
let m_slot_reads = Obs.counter "oram.sqrt.slot_reads"
let m_shuffles = Obs.counter "oram.sqrt.shuffles"

type physical_event =
  | Slot of { epoch : int; slot : int }
  | Reshuffle of { epoch : int }

type t = {
  master_key : bytes;
  page_size : int;
  n : int; (* logical pages *)
  dummies : int;
  plain : bytes array; (* the database content, SCP-side ground truth *)
  mutable slots : bytes array; (* encrypted physical slots, host-side *)
  mutable perm : Psp_crypto.Feistel.t; (* logical index -> physical slot *)
  mutable epoch : int;
  shelter : (int, bytes) Hashtbl.t; (* sheltered logical pages *)
  mutable dummy_cursor : int; (* dummies consumed this epoch *)
  trace : physical_event Psp_util.Dyn_array.t;
}

let isqrt_up n = int_of_float (ceil (sqrt (float_of_int n)))

let epoch_key t = Psp_crypto.Hmac.derive ~key:t.master_key ~label:(Printf.sprintf "epoch-%d" t.epoch)

let slot_nonce slot =
  let nonce = Bytes.make 12 '\000' in
  for i = 0 to 7 do
    Bytes.set nonce i (Char.chr ((slot lsr (8 * i)) land 0xFF))
  done;
  nonce

(* encrypt-then-MAC: ciphertext followed by a 32-byte tag over it *)
let encrypt_slot ~key ~slot plaintext =
  let cipher = Psp_crypto.Chacha20.encrypt ~key ~nonce:(slot_nonce slot) plaintext in
  let mac_key = Psp_crypto.Hmac.derive ~key ~label:"slot-mac" in
  Bytes.cat cipher (Psp_crypto.Hmac.mac ~key:mac_key (Bytes.cat (slot_nonce slot) cipher))
  [@@oblivious]

let decrypt_slot ~key ~slot stored =
  let n = Bytes.length stored - 32 in
  if n < 0 then raise (Tampering_detected { slot });
  let cipher = Bytes.sub stored 0 n in
  let tag = Bytes.sub stored n 32 in
  let mac_key = Psp_crypto.Hmac.derive ~key ~label:"slot-mac" in
  if not (Psp_crypto.Hmac.verify ~key:mac_key (Bytes.cat (slot_nonce slot) cipher) ~tag)
  then raise (Tampering_detected { slot });
  Psp_crypto.Chacha20.decrypt ~key ~nonce:(slot_nonce slot) cipher
  [@@leak_ok
    "branches only on the stored ciphertext's length and MAC validity — \
     host-supplied data, not the secret page index; the abort names the \
     physical slot, which the host already observes"]
  [@@oblivious]

(* Re-scatter every page (and fresh dummies) under this epoch's keys. *)
let shuffle t =
  Obs.incr m_shuffles;
  let key = epoch_key t in
  let perm_key = Psp_crypto.Hmac.derive ~key ~label:"perm" in
  let enc_key = Psp_crypto.Hmac.derive ~key ~label:"enc" in
  let total = t.n + t.dummies in
  t.perm <- Psp_crypto.Feistel.create ~key:perm_key ~domain:total;
  let slots = Array.make total Bytes.empty in
  for i = 0 to total - 1 do
    let slot = Psp_crypto.Feistel.forward t.perm i in
    let plaintext = if i < t.n then t.plain.(i) else Bytes.make t.page_size '\000' in
    slots.(slot) <- encrypt_slot ~key:enc_key ~slot plaintext
  done;
  t.slots <- slots;
  Hashtbl.reset t.shelter;
  t.dummy_cursor <- 0
  [@@oblivious]

let create ~key file =
  let n = Psp_storage.Page_file.page_count file in
  if n = 0 then invalid_arg "Oblivious_store.create: empty file";
  let t =
    { master_key = Psp_crypto.Hmac.derive ~key ~label:("store:" ^ Psp_storage.Page_file.name file);
      page_size = Psp_storage.Page_file.page_size file;
      n;
      dummies = max 1 (isqrt_up n);
      plain = Array.init n (Psp_storage.Page_file.read file);
      slots = [||];
      perm = Psp_crypto.Feistel.create ~key ~domain:1;
      epoch = 0;
      shelter = Hashtbl.create 16;
      dummy_cursor = 0;
      trace = Psp_util.Dyn_array.create () }
  in
  shuffle t;
  t

let page_count t = t.n
let slot_count t = t.n + t.dummies
let shelter_capacity t = t.dummies
let epoch t = t.epoch

let read t (i [@secret]) =
  (* constant delta before any secret-dependent work: one read = one slot *)
  Obs.incr m_slot_reads;
  (if i < 0 || i >= t.n then invalid_arg "Oblivious_store.read: page out of range")
  [@leak_ok "bounds check fails closed with a constant message before any slot is touched"];
  let enc_key = Psp_crypto.Hmac.derive ~key:(epoch_key t) ~label:"enc" in
  let fetch_slot slot =
    Psp_util.Dyn_array.push t.trace (Slot { epoch = t.epoch; slot });
    decrypt_slot ~key:enc_key ~slot t.slots.(slot)
  in
  let result =
    (match Hashtbl.find_opt t.shelter i with
    | Some cached ->
        (* already sheltered: touch the next unused dummy instead, so the
           host cannot tell a repeat from a fresh read *)
        let slot = Psp_crypto.Feistel.forward t.perm (t.n + t.dummy_cursor) in
        t.dummy_cursor <- t.dummy_cursor + 1;
        ignore (fetch_slot slot);
        cached
    | None ->
        let slot = Psp_crypto.Feistel.forward t.perm i in
        let page = fetch_slot slot in
        Hashtbl.replace t.shelter i page;
        page)
    [@leak_ok
      "both arms touch exactly one freshly permuted physical slot: a sheltered hit \
       consumes the next unused dummy, a miss fetches the target"]
  in
  (* sheltered + consumed dummies = accesses this epoch; reshuffling at a
     fixed access count keeps the epoch cadence pattern-independent *)
  (if Hashtbl.length t.shelter + t.dummy_cursor >= t.dummies then begin
     t.epoch <- t.epoch + 1;
     Psp_util.Dyn_array.push t.trace (Reshuffle { epoch = t.epoch });
     shuffle t
   end)
  [@leak_ok
    "shelter size + consumed dummies advances by one per read, so the reshuffle \
     cadence is a public function of the access count alone"];
  result
  [@@oblivious]

let physical_trace t = Psp_util.Dyn_array.to_list t.trace
let clear_trace t = Psp_util.Dyn_array.clear t.trace

let corrupt_slot t ~slot =
  if slot < 0 || slot >= Array.length t.slots then
    invalid_arg "Oblivious_store.corrupt_slot: slot out of range";
  let b = Bytes.copy t.slots.(slot) in
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
  t.slots.(slot) <- b
