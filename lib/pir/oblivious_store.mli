(** An oblivious page store — the functional core of the PIR interface.

    The paper uses the Williams–Sion protocol as a proven black box; we
    need a concrete, *testable* stand-in, so this module implements the
    classic square-root ORAM (Goldreich–Ostrovsky) over a page file:

    - the N pages plus √N dummies are encrypted (ChaCha20, per-epoch
      keys) and scattered by a keyed Feistel permutation of the slots;
    - a shelter of √N recently-touched pages lives in SCP memory;
    - a logical read fetches the permuted slot of the page — or, if the
      page is already sheltered, the next unused dummy slot — so the
      host sees each physical slot touched at most once per epoch,
      regardless of the logical sequence;
    - after √N accesses everything is re-shuffled under fresh keys.

    The privacy invariant tested in the suite: the physical trace's
    *shape* (distinct slots per epoch, reshuffle cadence) is identical
    for any two logical sequences of equal length, and slot choices are
    determined by keys, not by the logical ids.

    Latency is *not* modeled here (see {!Cost_model}); this layer is
    about obliviousness and correctness. *)

type t

exception Tampering_detected of { slot : int }
(** The SCP authenticates every slot (encrypt-then-MAC); a host that
    modifies stored data is caught on the next read — the paper's
    "curious but not malicious" assumption, enforced rather than
    assumed. *)

type physical_event =
  | Slot of { epoch : int; slot : int }  (** host-visible slot touch *)
  | Reshuffle of { epoch : int }         (** epoch boundary *)

val create : key:bytes -> Psp_storage.Page_file.t -> t
(** Snapshot the file's current pages into a fresh oblivious store.
    @raise Invalid_argument on an empty file. *)

val page_count : t -> int
(** Logical pages (excludes dummies). *)

val slot_count : t -> int
(** Physical slots (pages + dummies). *)

val shelter_capacity : t -> int

val read : t -> int -> bytes
(** Logical page content (the page-file payload padded to page size) —
    a width-1 {!fetch_many}.
    @raise Invalid_argument on an out-of-range page. *)

val fetch_many : t -> int array -> bytes array
(** Serve a width-k batch of logical page reads as merged sweeps: per
    reshuffle-cadence chunk, one sequential pass over the epoch's slots
    under a single derived key schedule touches every member's slot
    (each probe MAC-verified, dummies included, as in the sequential
    path).  Dummy slots are consumed per member in member order, so each
    member's slot-touch subsequence of {!physical_trace} — here the
    whole chunk's trace, since slots are already visited in member
    order — is byte-identical to the k sequential {!read}s'.  Duplicate
    pages within a batch are served obliviously (the repeat draws a
    dummy, like a shelter hit).
    @raise Invalid_argument on an out-of-range page. *)

val slot_touches : t -> int
(** Physical slot touches executed since creation (the number of [Slot]
    events ever recorded, surviving {!clear_trace}) — what
    [test_batch.ml] and the batch benchmark compare against the cost
    model's page-touch basis. *)

val sweeps : t -> int
(** Merged sweeps executed since creation: sequential passes over one
    epoch's slots, each serving a whole chunk's probes under one key
    schedule.  The square-root store is a single-level hierarchy, so a
    width-k batch runs one sweep per reshuffle-cadence chunk instead of
    k. *)

val epoch : t -> int
(** Number of reshuffles performed so far. *)

val physical_trace : t -> physical_event list
(** Everything the host has observed, chronologically. *)

val clear_trace : t -> unit

val corrupt_slot : t -> slot:int -> unit
(** Test hook: flip one bit of a stored slot, as a misbehaving host
    would.  The next read of that physical slot raises
    {!Tampering_detected}. *)
