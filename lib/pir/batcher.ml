module Obs = Psp_obs.Obs

(* Telemetry: the batch width is public — the LBS trivially observes how
   many concurrent sessions it is serving — so recording it keeps the
   constant-shape policy intact for any fixed (plan, width) pair. *)
let m_batches = Obs.counter "pir.batcher.batches"
let m_width = Obs.histogram "pir.batcher.width"

type t = { server : Server.t; sessions : Server.Session.t array }

let start server ~width =
  if width <= 0 then invalid_arg "Batcher.start: width must be positive";
  Obs.incr m_batches;
  Obs.observe m_width (float_of_int width);
  { server;
    sessions = Array.init width (fun _ -> Server.Session.start ~share:width server) }

let width t = Array.length t.sessions
let server t = t.server
let sessions t = t.sessions
let session t i = t.sessions.(i)

let next_round t =
  let share = Array.length t.sessions in
  Array.iter (Server.Session.next_round ~share) t.sessions
  [@@oblivious]

let fetch t ~file ~pages:(pages [@secret]) =
  (if Array.length pages <> Array.length t.sessions then
     invalid_arg "Batcher.fetch: one page per session required")
  [@leak_ok
    "the guard reads only the array's length — the public batch width — never the \
     secret page indices inside it"];
  (Server.Session.fetch_batch ~file
     (Array.mapi (fun i page -> (t.sessions.(i), page)) pages)
  [@leak_ok
    "the merged pass branches and iterates on the batch width and session \
     identities — both public — while the page index inside each pair stays \
     opaque until the oblivious store resolves it"])
  [@@oblivious]

let note_retry t ~backoff =
  Array.iter (fun s -> Server.Session.note_retry s ~backoff) t.sessions
  [@@oblivious]

let finish t = Array.map Server.Session.finish t.sessions
