module Obs = Psp_obs.Obs

(* Telemetry: constant-shape — every instrument name below is a static
   string or derived from the public replica index, and every delta is a
   constant or a public fault outcome (DESIGN.md §5). *)
let m_attempts = Obs.counter "pir.replica.attempts"
let m_failovers = Obs.counter "pir.replica.failovers"
let m_exhausted = Obs.counter "pir.replica.exhausted"
let m_successes i = Obs.counter (Printf.sprintf "pir.replica.%d.successes" i)
let m_failures i = Obs.counter (Printf.sprintf "pir.replica.%d.failures" i)
let m_breaker i = Obs.gauge (Printf.sprintf "pir.replica.%d.breaker" i)

type t = {
  servers : Server.t array;
  breakers : Breaker.t array;
  mutable clock : float; (* simulated seconds; the breakers' time base *)
  mutable current : int; (* sticky selection *)
}

exception No_replica_available

let create ?mode ?threshold ?cooldown ~cost ~key ~replicas files =
  if replicas < 1 then invalid_arg "Replica_set.create: replicas must be >= 1";
  { servers =
      Array.init replicas (fun i -> Server.create ?mode ~replica:i ~cost ~key files);
    breakers = Array.init replicas (fun i -> Breaker.create ?threshold ?cooldown ~seed:i ());
    clock = 0.0;
    current = 0 }

let width t = Array.length t.servers
let server t i = t.servers.(i)
let breaker t i = t.breakers.(i)
let clock t = t.clock
let advance t seconds = t.clock <- t.clock +. Float.max 0.0 seconds

let gauge_of_state = function
  | Breaker.Closed -> 0.0
  | Breaker.Half_open -> 1.0
  | Breaker.Open -> 2.0

let publish_breaker t i =
  Obs.set (m_breaker i) (gauge_of_state (Breaker.state t.breakers.(i)))

(* Selection is sticky and round-robin: keep serving from the current
   replica while its breaker admits it, otherwise scan forward from it.
   A pure function of breaker state and the simulated clock — never of
   query content — so which replica sees a query reveals nothing about
   the query (docs/RESILIENCE.md). *)
let select t =
  let n = width t in
  let rec scan i tried =
    if tried >= n then None
    else
      let cand = (t.current + i) mod n in
      if Breaker.available t.breakers.(cand) ~now:t.clock then begin
        t.current <- cand;
        Some cand
      end
      else scan (i + 1) (tried + 1)
  in
  scan 0 0

let select_exn t =
  match select t with
  | Some i ->
      Obs.incr m_attempts;
      i
  | None ->
      Obs.incr m_exhausted;
      raise No_replica_available

let record_success t i =
  Obs.incr (m_successes i);
  Breaker.record_success t.breakers.(i);
  publish_breaker t i

let record_failure t i =
  Obs.incr (m_failures i);
  Obs.incr m_failovers;
  Breaker.record_failure t.breakers.(i) ~now:t.clock;
  publish_breaker t i;
  (* move off the failed replica; the next select scans from here *)
  t.current <- (i + 1) mod width t
