(** A hierarchical (pyramid) oblivious store in the style of the
    Williams–Sion "Usable PIR" protocol [NDSS 2008] — the protocol the
    paper builds on.

    Layout: a small cache lives in SCP memory; below it, level i holds
    up to 4^i items in an array of encrypted slots scattered by a keyed
    Feistel permutation, together with a keyed Bloom filter over the
    items' per-epoch tags.  A lookup walks the pyramid top-down and
    touches exactly one physical slot per level:

    - if the item was already found higher up (or is cached), a fresh
      dummy slot of the level is read;
    - otherwise the SCP consults the level's Bloom filter (in SCP
      memory: invisible to the host) and reads either the item's slot or
      a dummy on a false/true membership answer.

    The item then moves into the cache; when the cache fills, levels
    0..i are merged into level i+1 under fresh keys (a rebuild, visible
    to the host as a bulk event whose timing depends only on the access
    count).  Hence the host sees, for any logical access sequence of
    the same length: the same number of slot touches per level, all
    distinct within a level's epoch, and rebuilds at a fixed cadence —
    nothing else.

    This store is the engineering counterpart of {!Oblivious_store}
    (square-root ORAM): same interface, polylogarithmic instead of
    square-root amortized cost.  The {!Cost_model} charges the paper's
    amortized O(log² N) either way. *)

type t

type physical_event =
  | Slot of { level : int; epoch : int; slot : int }
      (** host-visible slot touch *)
  | Rebuild of { level : int; items : int }
      (** levels 0..level-1 merged into [level] *)

val default_cache_capacity : int
(** The [cache_capacity] {!create} uses when none is given (4) — also
    the capacity {!Cost_model.pyramid_levels} is consulted with when the
    server simulates a pyramid it does not instantiate. *)

val create : ?cache_capacity:int -> key:bytes -> Psp_storage.Page_file.t -> t
(** Snapshot the file's pages.  [cache_capacity] defaults to
    {!default_cache_capacity}; the pyramid depth is
    {!Cost_model.pyramid_levels}[ ~cache_capacity ~file_pages].
    @raise Invalid_argument on an empty file. *)

val page_count : t -> int
(** Logical pages served (the snapshotted file's page count). *)

val level_count : t -> int
(** Pyramid depth: number of levels below the SCP cache. *)

val cache_capacity : t -> int
(** SCP cache slots; also the flush (and level-1 rebuild) cadence. *)

val read : t -> int -> bytes
(** Logical page content — a width-1 {!fetch_many}.
    @raise Invalid_argument on an out-of-range page. *)

val fetch_many : t -> int array -> bytes array
(** Serve a width-k batch of logical page reads as merged level scans:
    per flush-cadence chunk, one sequential sweep over each level's
    epoch touches every member's slot (one Bloom consultation round and
    one key schedule per level instead of k).  Dummy slots are drawn
    per member in member order, so each member's slot-touch subsequence
    of {!physical_trace} is byte-identical to the k sequential {!read}s'
    — the host additionally learns only the batch width, which it
    observes anyway.  Each extra member beyond the first adds exactly
    {!level_count} slot touches, the
    {!Cost_model.batch_probe_touches} basis of the batched cost model.
    Duplicate pages within a batch are served obliviously (the repeat
    draws dummies, like a cache hit).
    @raise Invalid_argument on an out-of-range page. *)

val slot_touches : t -> int
(** Physical slot touches executed since creation (the number of [Slot]
    events ever recorded, surviving {!clear_trace}) — what
    [test_batch.ml] and the batch benchmark compare against the cost
    model's page-touch basis. *)

val level_scans : t -> int
(** Merged level scans executed since creation: sequential sweeps over
    one level's epoch, each serving a whole chunk's probes.  A width-k
    batch runs [level_count] scans per flush-cadence chunk instead of
    [k · level_count] — the executed-side amortization. *)

val physical_trace : t -> physical_event list
(** Host-visible events since creation (or the last {!clear_trace}),
    in order — what obliviousness tests compare across accesses. *)

val clear_trace : t -> unit
(** Forget the recorded events (the store's state is untouched). *)

val bloom_false_positives : t -> int
(** Diagnostic: dummy-vs-real slot mispredictions survived so far
    (they are handled obliviously; the count just shows the Bloom
    filters are real). *)
