(** A hierarchical (pyramid) oblivious store in the style of the
    Williams–Sion "Usable PIR" protocol [NDSS 2008] — the protocol the
    paper builds on.

    Layout: a small cache lives in SCP memory; below it, level i holds
    up to 4^i items in an array of encrypted slots scattered by a keyed
    Feistel permutation, together with a keyed Bloom filter over the
    items' per-epoch tags.  A lookup walks the pyramid top-down and
    touches exactly one physical slot per level:

    - if the item was already found higher up (or is cached), a fresh
      dummy slot of the level is read;
    - otherwise the SCP consults the level's Bloom filter (in SCP
      memory: invisible to the host) and reads either the item's slot or
      a dummy on a false/true membership answer.

    The item then moves into the cache; when the cache fills, levels
    0..i are merged into level i+1 under fresh keys (a rebuild, visible
    to the host as a bulk event whose timing depends only on the access
    count).  Hence the host sees, for any logical access sequence of
    the same length: the same number of slot touches per level, all
    distinct within a level's epoch, and rebuilds at a fixed cadence —
    nothing else.

    This store is the engineering counterpart of {!Oblivious_store}
    (square-root ORAM): same interface, polylogarithmic instead of
    square-root amortized cost.  The {!Cost_model} charges the paper's
    amortized O(log² N) either way. *)

type t

type physical_event =
  | Slot of { level : int; epoch : int; slot : int }
      (** host-visible slot touch *)
  | Rebuild of { level : int; items : int }
      (** levels 0..level-1 merged into [level] *)

val create : ?cache_capacity:int -> key:bytes -> Psp_storage.Page_file.t -> t
(** Snapshot the file's pages.  [cache_capacity] defaults to 4.
    @raise Invalid_argument on an empty file. *)

val page_count : t -> int
(** Logical pages served (the snapshotted file's page count). *)

val level_count : t -> int
(** Pyramid depth: number of levels below the SCP cache. *)

val cache_capacity : t -> int
(** SCP cache slots; also the flush (and level-1 rebuild) cadence. *)

val read : t -> int -> bytes
(** Logical page content.
    @raise Invalid_argument on an out-of-range page. *)

val physical_trace : t -> physical_event list
(** Host-visible events since creation (or the last {!clear_trace}),
    in order — what obliviousness tests compare across accesses. *)

val clear_trace : t -> unit
(** Forget the recorded events (the store's state is untouched). *)

val bloom_false_positives : t -> int
(** Diagnostic: dummy-vs-real slot mispredictions survived so far
    (they are handled obliviously; the count just shows the Bloom
    filters are real). *)
