(** N independent {!Server}s over one published database, with
    per-replica circuit breakers and deterministic selection.

    The replica set is the client-side view of a replicated LBS: every
    replica serves the same sealed page files (same pack-time HMAC
    tags), so any healthy replica can serve any query — and because
    every query walks the same public plan, failing over means replaying
    the {e entire} plan against the next replica, never resuming
    mid-plan.  Each replica therefore observes either a complete plan
    trace or a fault-schedule-determined prefix of one, both
    query-independent (Theorem 1 per replica; docs/RESILIENCE.md).

    Health tracking is public-signal only: breakers consume fault
    outcomes and the deterministic simulated clock, so replica selection
    is a pure function of public history.  The failover loop itself
    lives in [Psp_core.Client]; this module owns the servers, the
    breakers and the clock. *)

type t

exception No_replica_available
(** Every breaker is [Open] and still cooling down. *)

val create :
  ?mode:Server.mode ->
  ?threshold:int ->
  ?cooldown:float ->
  cost:Cost_model.t ->
  key:bytes ->
  replicas:int ->
  Psp_storage.Page_file.t list ->
  t
(** [replicas] servers (indices [0..replicas-1]) over the same page
    files, each with a fresh breaker ([threshold]/[cooldown] as in
    {!Breaker.create}, jitter seeded by the replica index).  The files
    are sealed once; oblivious modes build one store per replica.
    @raise Invalid_argument if [replicas < 1]. *)

val width : t -> int
val server : t -> int -> Server.t
val breaker : t -> int -> Breaker.t

val clock : t -> float
(** Simulated seconds accumulated so far — the breakers' time base. *)

val advance : t -> float -> unit
(** Advance the simulated clock (negative deltas are ignored).  The
    client charges each attempt's modeled response time here so breaker
    cooldowns elapse in simulated, not wall-clock, time. *)

val select : t -> int option
(** The replica to serve the next exchange: the current one while its
    breaker admits it, else the first available scanning forward
    (sticky round-robin).  [None] when every breaker is open.  A pure
    function of breaker state and the clock — never of query content. *)

val select_exn : t -> int
(** {!select}, counting the attempt in [pir.replica.attempts].
    @raise No_replica_available when every breaker is open. *)

val record_success : t -> int -> unit
(** The replica completed a full plan: closes its breaker. *)

val record_failure : t -> int -> unit
(** The replica failed an exchange (down, timeout, tamper, retry
    exhaustion): feeds its breaker at the current clock, counts the
    failover, and moves selection to the next replica. *)
