(* Plan-keyed dispatch over the same-plan merge core.

   Batcher merges queries that share one public plan; this layer is the
   other half of the split: it routes a mixed stream of (tenant, query)
   pairs to per-tenant batchers and scatters the per-tenant results back
   into submission order.  Nothing here reads query content — grouping
   keys are tenant names, which the LBS knows anyway (each tenant is a
   separately published database). *)

module SMap = Map.Make (String)

type t = { mutable servers : Server.t SMap.t; mutable order : string list }

let create () = { servers = SMap.empty; order = [] }

let register t ~name server =
  if SMap.mem name t.servers then
    invalid_arg (Printf.sprintf "Dispatch.register: duplicate tenant %S" name);
  t.servers <- SMap.add name server t.servers;
  t.order <- name :: t.order

let names t = List.rev t.order
let server t name = SMap.find_opt name t.servers

let batcher t name ~width =
  match server t name with
  | None -> invalid_arg (Printf.sprintf "Dispatch.batcher: unknown tenant %S" name)
  | Some s -> Batcher.start s ~width

(* Stable partition: members keep their submission index, tenants appear
   in first-seen order, and within a tenant the original order is
   preserved — so a scatter back through the indices is a permutation
   inverse, not a re-sort. *)
type 'a group = { tenant : string; members : (int * 'a) array }

let partition key items =
  let tbl : (string, (int * 'a) list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  Array.iteri
    (fun i item ->
      let k = key item in
      let cell =
        match Hashtbl.find_opt tbl k with
        | Some cell -> cell
        | None ->
            let cell = ref [] in
            Hashtbl.replace tbl k cell;
            order := k :: !order;
            cell
      in
      cell := (i, item) :: !cell)
    items;
  List.rev_map
    (fun tenant ->
      let cell = Hashtbl.find tbl tenant in
      { tenant; members = Array.of_list (List.rev !cell) })
    !order

let scatter ~none groups =
  let total =
    List.fold_left (fun acc (g, _) -> acc + Array.length g.members) 0 groups
  in
  let out = Array.make total none in
  List.iter
    (fun (g, results) ->
      if Array.length results <> Array.length g.members then
        invalid_arg "Dispatch.scatter: one result per member required";
      Array.iteri (fun j (i, _) -> out.(i) <- results.(j)) g.members)
    groups;
  out
