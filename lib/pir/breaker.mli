(** Per-replica circuit breaker driven only by public signals.

    State machine: [Closed] (serving) → [Open] after [threshold]
    consecutive failures (replica shunned) → [Half_open] once the
    cooldown elapses (one probe allowed) → [Closed] on a success, or
    straight back to [Open] on a failed probe, with exponentially
    growing cooldown.

    Obliviousness: the breaker never sees query content.  Failures are
    fault-schedule outcomes, the clock is the deterministic simulated
    time the cost model already maintains, and the cooldown jitter is
    drawn from a stream seeded by the public replica index — so replica
    selection is a pure function of public history, and any single
    replica's view of {e which} queries it serves is query-independent
    (docs/RESILIENCE.md). *)

type state = Closed | Open | Half_open

type t

val create : ?threshold:int -> ?cooldown:float -> seed:int -> unit -> t
(** [threshold] (default 3) consecutive failures trip the breaker;
    [cooldown] (default 1.0 simulated seconds) is the base shun
    duration, doubling per consecutive trip (capped at 64×) with
    deterministic jitter in [0.75, 1.25) drawn from a stream seeded by
    [seed] (conventionally the replica index).
    @raise Invalid_argument if [threshold < 1] or [cooldown <= 0]. *)

val state : t -> state

val available : t -> now:float -> bool
(** May this replica serve an exchange at simulated time [now]?  An
    [Open] breaker whose cooldown has elapsed transitions to
    [Half_open] and admits one probe. *)

val record_success : t -> unit
(** A completed exchange: resets the failure streak and closes. *)

val record_failure : t -> now:float -> unit
(** A failed exchange (down, timeout, tamper, retry exhaustion).  May
    trip the breaker; a failed [Half_open] probe re-opens it with a
    longer cooldown. *)

val cooldown_until : t -> float
(** Simulated time at which an [Open] breaker next admits a probe
    (0 before any trip). *)
