(** Timing and capacity model of the hardware-aided PIR deployment.

    The paper (§7.1, Table 2) does not run queries on a live IBM 4764 —
    it "strictly simulates" the co-processor from published device
    constants.  This module is that simulation: every retrieval's
    latency is derived from the disk, SCP and network parameters, with
    the Williams–Sion amortized O(log² N) page-operation count
    calibrated to the protocol's reported absolute speed (≈1 s per
    retrieval from a 1 GByte file on the IBM 4764).

    The SCP memory bound [c·√N] (§3.2, c = 10) yields the maximum
    supported file size; with 32 MByte of SCP RAM this lands at the
    2.5 GByte limit quoted in the paper. *)

type t = {
  page_size : int;            (** bytes per disk page *)
  disk_seek : float;          (** seconds per random page access *)
  disk_rate : float;          (** disk read/write, bytes/second *)
  scp_io_rate : float;        (** SCP read/write, bytes/second *)
  scp_crypto_rate : float;    (** SCP encryption/decryption, bytes/second *)
  bandwidth : float;          (** client link, bytes/second *)
  rtt : float;                (** client link round-trip time, seconds *)
  scp_memory : int;           (** SCP RAM, bytes *)
  pir_memory_factor : int;    (** the c in c·√N *)
  pir_calibration : float;    (** page-ops per retrieval = calibration·log2(N)² *)
  client_decode_rate : float;
      (** bytes/second the handheld client decodes delivered pages at
          (decrypt + CRC + record parse) *)
}

val ibm4764 : t
(** Table 2: 4 KByte pages, 11 ms seek, 125 MB/s disk, 80 MB/s SCP I/O,
    10 MB/s SCP crypto, 48 KByte/s & 700 ms RTT 3G link, 32 MByte SCP
    RAM, c = 10, calibration 0.26 (≈1 s/page on a 1 GByte file),
    200 KByte/s client decode (a 2010-era handheld's AES + parse). *)

val page_op_seconds : t -> float
(** One secure page operation: seek + disk transfer + SCP transfer +
    decrypt + re-encrypt of one page. *)

val pir_fetch_seconds : t -> file_pages:int -> float
(** Amortized latency of one private page retrieval from a file of
    [file_pages] pages. *)

val pyramid_levels : cache_capacity:int -> file_pages:int -> int
(** Depth of the hierarchical (pyramid) store over a file: the smallest
    [L] with [cache_capacity · 4{^L} ≥ file_pages].  The single source
    of the layout formula — {!Pyramid_store.create} sizes its hierarchy
    with it, and {!pir_batch_fetch_seconds} charges marginal batch
    probes against it, so the modeled per-probe touch count equals the
    executed one by construction.
    @raise Invalid_argument when [cache_capacity < 1] or
    [file_pages < 1]. *)

val batch_probe_touches : levels:int -> batch:int -> int
(** [(batch - 1) · levels] — the marginal physical slot touches a merged
    width-[batch] pass executes beyond the first member's full pass (one
    probe per hierarchy level per extra member).  This count is the
    basis of {!pir_batch_fetch_seconds}'s marginal term, and
    [test_batch.ml] asserts the oblivious stores execute exactly this
    many.
    @raise Invalid_argument when [levels < 0] or [batch < 1]. *)

val pir_batch_fetch_seconds : t -> file_pages:int -> levels:int -> batch:int -> float
(** Total latency of [batch] same-round retrievals from one file served
    in a single merged pass over the oblivious store.  The calibrated
    log²N term pays for the pass (level scans plus amortized reshuffle)
    once; the marginal term is derived from the executed page-touch
    count {!batch_probe_touches}: each request beyond the first adds
    [levels] page operations — one probe per hierarchy level, as the
    merged level scans actually execute — capped at the full-pass cost
    (a batch can always fall back to independent passes).  [levels] is
    the serving store's hierarchy depth ({!Pyramid_store.level_count},
    or {!pyramid_levels} when simulating; 1 for the square-root store).
    [batch = 1] equals {!pir_fetch_seconds} exactly. *)

val decode_seconds : t -> bytes:int -> float
(** Client-side decode time (decrypt + CRC + record parse) for [bytes]
    of delivered pages at {!field-client_decode_rate}.  Callers must
    price {e plan-fixed} byte counts (slot count × page size), never
    the real delivered payloads, so the quantity stays public.
    @raise Invalid_argument when [bytes < 0]. *)

val pipelined_response_seconds : fetch:float -> decode:float -> depth:int -> float
(** Steady-state per-batch response of a depth-[d] pipelined stream of
    identical batches: [max fetch ((fetch + decode) / d)] — the serial
    SCP bounds completion spacing below by the fetch pass, while a
    window of [d] in-flight batches divides the synchronous round
    (fetch {e plus} decode) by [d].  [depth = 1] is exactly the
    synchronous sum, the overlap-free baseline.
    @raise Invalid_argument when [depth < 1] or a phase cost is
    negative. *)

val queueing_delay_seconds : enqueued:float -> dispatched:float -> float
(** [dispatched - enqueued] on the serving frontend's virtual clock —
    the queueing component of a served query's latency.  Both instants
    are public events (arrival and batch dispatch), so the delay is
    publicly derivable by construction.
    @raise Invalid_argument when [dispatched < enqueued]. *)

val batch_response_seconds :
  t -> cache_capacity:int -> file_pages:int -> batch:int -> float
(** {!pir_batch_fetch_seconds} with the hierarchy depth derived from
    {!pyramid_levels} over the same layout constants the pyramid store
    uses — the service-time estimate the multi-tenant scheduler plans
    batch widths against, guaranteed to agree with the executed charge.
    @raise Invalid_argument when [cache_capacity < 1], [file_pages < 1]
    or [batch < 1]. *)

val retry_backoff_seconds : base:float -> attempt:int -> float
(** [base · 2{^attempt-1}] — the deterministic exponential backoff
    charged before retry number [attempt] (1-based).  Owned here so
    [Psp_core.Engine]'s retry loop and the response-time accounting of
    [Degraded] answers agree on the modeled extra seconds.
    @raise Invalid_argument if [attempt < 1]. *)

val latency_spike_seconds : t -> float
(** Extra delay one [pir.replica.latency] fault adds to a fetch:
    10 RTTs — a stalling-but-alive replica. *)

val timeout_seconds : t -> float
(** Cumulative spike delay at which a client declares the replica timed
    out and fails over: 25 RTTs. *)

val failover_seconds : t -> attempt:int -> float
(** Modeled cost of abandoning a replica and re-handshaking with the
    next one, with exponential backoff in the number of replicas
    already abandoned ([attempt], 1-based). *)

val plain_fetch_seconds : t -> float
(** One unsecured page read (seek + disk transfer) — the cost unit of
    the non-private OBF baseline. *)

val transfer_seconds : t -> bytes:int -> float
(** Client-link transmission time for a payload. *)

val max_file_bytes : t -> int
(** Largest file the PIR interface supports: the N at which c·√N pages
    exhaust SCP memory. *)

val supports_file : t -> bytes:int -> bool

val scp_memory_needed : t -> file_pages:int -> int
(** c·√N pages, in bytes. *)

val with_max_file : t -> bytes:int -> t
(** A model whose SCP memory is resized so that [max_file_bytes] is
    (approximately) the given bound.  Scaled-down experiment runs use
    this to shrink the 2.5 GByte limit together with the networks, so
    "file too large for the PIR interface" events reproduce at scale. *)
