module Obs = Psp_obs.Obs

type mode = [ `Simulated | `Oblivious | `Pyramid ]

type store = Sqrt of Oblivious_store.t | Pyramid of Pyramid_store.t

exception File_too_large of { file : string; bytes : int; limit : int }
exception Page_corrupt of { file : string; page : int }
exception Tampered of { file : string; page : int }
exception Replica_down of { replica : int }
exception Replica_timeout of { replica : int; seconds : float }

type t = {
  mode : mode;
  cost : Cost_model.t;
  key : bytes; (* publisher master key: page authentication at fetch time *)
  replica : int;
  files : (string, Psp_storage.Page_file.t) Hashtbl.t;
  stores : (string, store) Hashtbl.t; (* oblivious modes only *)
  order : string list;
}

let create ?(mode = `Simulated) ?(replica = 0) ~cost ~key files =
  let table = Hashtbl.create 8 and stores = Hashtbl.create 8 in
  let limit = Cost_model.max_file_bytes cost in
  List.iter
    (fun f ->
      let name = Psp_storage.Page_file.name f in
      if Hashtbl.mem table name then
        invalid_arg (Printf.sprintf "Server.create: duplicate file %S" name);
      let bytes = Psp_storage.Page_file.size_bytes f in
      if bytes > limit then raise (File_too_large { file = name; bytes; limit });
      (* pack-time sealing: a no-op when already sealed under this key,
         so replicas sharing one published Page_file seal it once (and a
         scratch server with a different key reseals for itself) *)
      Psp_storage.Page_file.seal f ~key;
      Hashtbl.replace table name f;
      if Psp_storage.Page_file.page_count f > 0 then begin
        match mode with
        | `Simulated -> ()
        | `Oblivious -> Hashtbl.replace stores name (Sqrt (Oblivious_store.create ~key f))
        | `Pyramid -> Hashtbl.replace stores name (Pyramid (Pyramid_store.create ~key f))
      end)
    files;
  { mode;
    cost;
    key;
    replica;
    files = table;
    stores;
    order = List.map Psp_storage.Page_file.name files }

let mode t = t.mode
let cost t = t.cost
let replica t = t.replica
let key t = t.key

let file t name =
  match Hashtbl.find_opt t.files name with
  | Some f -> f
  | None -> raise Not_found

let file_names t = t.order

let database_bytes t =
  List.fold_left
    (fun acc name -> acc + Psp_storage.Page_file.size_bytes (file t name))
    0 t.order

(* Executed-side accounting, summed over the instantiated oblivious
   stores (zero in `Simulated mode, where no store exists).  Both totals
   are public functions of the access count and the batch widths — what
   the batch benchmark and test_batch.ml compare against the cost
   model's page-touch basis. *)
let executed_slot_touches t =
  Hashtbl.fold
    (fun _ store acc ->
      acc
      + (match store with
        | Sqrt s -> Oblivious_store.slot_touches s
        | Pyramid s -> Pyramid_store.slot_touches s))
    t.stores 0

let executed_level_scans t =
  Hashtbl.fold
    (fun _ store acc ->
      acc
      + (match store with
        | Sqrt s -> Oblivious_store.sweeps s
        | Pyramid s -> Pyramid_store.level_scans s))
    t.stores 0

(* The hierarchy depth a batched pass probes per marginal member: the
   serving store's actual depth, or — in `Simulated mode, where no store
   is instantiated — the depth the default pyramid layout would have
   over this file.  Keeping both sides on Cost_model.pyramid_levels
   makes the simulated marginal cost equal the executed touch count by
   construction. *)
let probe_levels t ~file:name ~pages =
  match t.mode with
  | `Simulated ->
      Cost_model.pyramid_levels
        ~cache_capacity:Pyramid_store.default_cache_capacity ~file_pages:pages
  | `Oblivious | `Pyramid -> (
      match Hashtbl.find t.stores name with
      | Sqrt _ -> 1
      | Pyramid store -> Pyramid_store.level_count store)

module Session = struct
  type server = t

  (* Telemetry (DESIGN.md §5): everything recorded here is derived from
     the public query plan — file names, per-plan fetch counts, round
     counts — or from the deterministic simulated cost model, never from
     the secret page indices.  psplint's secret-telemetry rule checks
     every site inside the [@@oblivious] functions below. *)
  let m_sessions = Obs.counter "pir.sessions"
  let m_fetches = Obs.counter "pir.fetch.total"
  let m_batches = Obs.counter "pir.fetch.batches"
  let m_rounds = Obs.counter "pir.rounds"
  let m_retries = Obs.counter "pir.retries"
  let m_downloads = Obs.counter "pir.download.pages"
  let m_plain = Obs.counter "pir.plain_fetch.total"
  let m_pir_seconds = Obs.histogram "pir.session.pir_seconds"
  let m_comm_seconds = Obs.histogram "pir.session.comm_seconds"
  let m_fetch_file name = Obs.counter ("pir.fetch.pages." ^ name)

  type stats = {
    rounds : int;
    pir_seconds : float;
    comm_seconds : float;
    server_cpu_seconds : float;
    pir_fetches : (string * int) list;
    retries : int;
    recovery_seconds : float;
    trace : Trace.t;
  }

  type t = {
    server : server;
    mutable round : int;
    mutable pir_seconds : float;
    mutable comm_seconds : float;
    mutable server_cpu_seconds : float;
    mutable retries : int;
    mutable recovery_seconds : float;
    mutable spike_seconds : float; (* cumulative latency-spike delay *)
    fetch_counts : (string, int) Hashtbl.t;
    trace : Trace.t;
  }

  (* [share] is the number of batched sessions multiplexed over one
     round trip: a merged batch round is a single message exchange, so
     its latency is split evenly — the communication-side counterpart of
     the fetch_batch pass split.  share = 1 (the default) is the
     unbatched cost, unchanged. *)
  let rtt_share server ~share =
    server.cost.Cost_model.rtt /. float_of_int (max 1 share)

  let start ?(share = 1) server =
    Obs.incr m_sessions;
    { server;
      round = 1;
      pir_seconds = 0.0;
      comm_seconds = rtt_share server ~share;
      server_cpu_seconds = 0.0;
      retries = 0;
      recovery_seconds = 0.0;
      spike_seconds = 0.0;
      fetch_counts = Hashtbl.create 8;
      trace = Trace.create () }

  (* Replica-level chaos, consulted after the attempt is traced (the
     adversary saw the request even when the replica is dead).  All
     branches here are on fault-schedule outcomes — public functions of
     hit ordinals — never on query content. *)
  let m_replica_down = Obs.counter "pir.replica.down"
  let m_replica_spikes = Obs.counter "pir.replica.spikes"

  let replica_faults t =
    (if Psp_fault.Fault.fires "pir.replica.down" then begin
       Obs.incr m_replica_down;
       raise (Replica_down { replica = t.server.replica })
     end)
    [@leak_ok
      "replica outage aborts the attempt; the exception carries only the public \
       replica index and the failover replays the identical public plan elsewhere"];
    if Psp_fault.Fault.fires "pir.replica.latency" then begin
      Obs.incr m_replica_spikes;
      let s = Cost_model.latency_spike_seconds t.server.cost in
      t.comm_seconds <- t.comm_seconds +. s;
      t.spike_seconds <- t.spike_seconds +. s;
      (if t.spike_seconds > Cost_model.timeout_seconds t.server.cost then
         raise (Replica_timeout { replica = t.server.replica; seconds = t.spike_seconds }))
      [@leak_ok
        "the timeout threshold and the accumulated spike delay are deterministic \
         cost-model quantities, independent of query content"]
    end
    [@@oblivious]

  let next_round ?(share = 1) t =
    Obs.incr m_rounds;
    t.round <- t.round + 1;
    t.comm_seconds <- t.comm_seconds +. rtt_share t.server ~share
    [@@oblivious]

  let round t = t.round

  let fetch t ~file:name ~page:(page [@secret]) =
    Obs.with_span "pir_fetch" (fun () ->
        (* all recorded quantities are public: the file name, a constant
           delta per fetch and per page — never the secret index *)
        Obs.incr m_fetches;
        Obs.incr (m_fetch_file name);
        Obs.add_pages 1;
        let f = file t.server name in
        let pages = Psp_storage.Page_file.page_count f in
        (* the requested page index is secret: the abort message may only name
           the file and its public page range, never the index itself *)
        (if page < 0 || page >= pages then
           invalid_arg
             (Printf.sprintf "Session.fetch(%s): page out of range [0,%d)" name pages))
        [@leak_ok "bounds check fails closed; the message is redacted to public data"];
        t.pir_seconds <-
          t.pir_seconds +. Cost_model.pir_fetch_seconds t.server.cost ~file_pages:pages;
        t.comm_seconds <-
          t.comm_seconds
          +. Cost_model.transfer_seconds t.server.cost
               ~bytes:(Psp_storage.Page_file.page_size f);
        Hashtbl.replace t.fetch_counts name
          (1 + Option.value ~default:0 (Hashtbl.find_opt t.fetch_counts name));
        (* the attempt is recorded before any fault fires: the adversary saw
           the request whether or not the retrieval succeeded *)
        Trace.record t.trace (Trace.Pir_fetch { round = t.round; file = name });
        Psp_fault.Fault.inject "pir.fetch.transient";
        replica_faults t;
        let bytes =
          match t.server.mode with
          | `Simulated -> Psp_storage.Page_file.read f page
          | `Oblivious | `Pyramid -> (
              match Hashtbl.find t.server.stores name with
              | Sqrt store -> Oblivious_store.read store page
              | Pyramid store -> Pyramid_store.read store page)
        in
        let bytes =
          (if Psp_fault.Fault.fires "pir.fetch.corrupt" then begin
             (* flip one bit; the checksum gate below must catch it *)
             let b = Bytes.copy bytes in
             if Bytes.length b > 0 then
               Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x01));
             b
           end
           else bytes)
          [@leak_ok
            "fault-injection test hook: flips one bit of the already-fetched page, whose \
             length is the file's public page size"]
        in
        (if not (Psp_storage.Page_file.verify_page f page bytes) then
           raise (Page_corrupt { file = name; page }))
        [@leak_ok
          "integrity failure aborts the query; the exception stays inside the client trust \
           boundary and Client.recoverable redacts it to the file name before reporting"];
        let bytes =
          (if Psp_fault.Fault.fires "pir.fetch.tamper" then begin
             (* a Byzantine host recomputes the CRC after altering the page, so
                the flip lands after the checksum gate — only the keyed tag
                check below can catch it *)
             let b = Bytes.copy bytes in
             if Bytes.length b > 0 then
               Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x80));
             b
           end
           else bytes)
          [@leak_ok
            "fault-injection test hook: flips one bit of the already-fetched page, whose \
             length is the file's public page size"]
        in
        (if not (Psp_storage.Page_file.authenticate f ~key:t.server.key page bytes) then
           raise (Tampered { file = name; page }))
        [@leak_ok
          "authenticity failure aborts the replica, not the query; the exception stays \
           inside the client trust boundary and the failover replays the identical public \
           plan against the next replica"];
        bytes)
    [@@oblivious]

  (* One merged pass for same-round requests of concurrent sessions.
     Every member's attempt is accounted and recorded in its own trace
     *before* the shared failpoint is consulted, so a batch-granular
     fault (and its retry) adds the same extra events to every member —
     batched sessions stay mutually trace-identical under any fault
     schedule.  In the oblivious modes the k probes are executed as one
     merged level scan per level (fetch_many); the simulated pass cost
     charges the same marginal page-touch count and is split evenly:
     each member is charged pir_batch_fetch_seconds / batch. *)
  let fetch_batch ~file:name (requests : (t * int) array) =
    match Array.length requests with
    | 0 -> [||]
    | k ->
        Obs.with_span "pir_fetch_batch" (fun () ->
            Obs.incr m_batches;
            let server = (fst requests.(0)).server in
            Array.iter
              (fun (s, _) ->
                if s.server != server then
                  invalid_arg "Session.fetch_batch: sessions span different servers")
              requests;
            let f = file server name in
            let pages = Psp_storage.Page_file.page_count f in
            let levels = if pages = 0 then 1 else probe_levels server ~file:name ~pages in
            let share =
              Cost_model.pir_batch_fetch_seconds server.cost ~file_pages:pages ~levels
                ~batch:k
              /. float_of_int k
            in
            Array.iter
              (fun (s, (page [@secret])) ->
                Obs.incr m_fetches;
                Obs.incr (m_fetch_file name);
                Obs.add_pages 1;
                (* as in fetch: the abort message may only name the file and
                   its public page range, never the secret index *)
                (if page < 0 || page >= pages then
                   invalid_arg
                     (Printf.sprintf "Session.fetch_batch(%s): page out of range [0,%d)"
                        name pages))
                [@leak_ok "bounds check fails closed; the message is redacted to public data"];
                s.pir_seconds <- s.pir_seconds +. share;
                s.comm_seconds <-
                  s.comm_seconds
                  +. Cost_model.transfer_seconds server.cost
                       ~bytes:(Psp_storage.Page_file.page_size f);
                Hashtbl.replace s.fetch_counts name
                  (1 + Option.value ~default:0 (Hashtbl.find_opt s.fetch_counts name));
                Trace.record s.trace (Trace.Pir_fetch { round = s.round; file = name }))
              requests;
            Psp_fault.Fault.inject "pir.fetch.transient";
            (* batch-granular replica chaos: one consultation per merged
               pass, its effect applied to every member, so batched
               sessions stay mutually trace-identical under any schedule *)
            (if Psp_fault.Fault.fires "pir.replica.down" then begin
               Obs.incr m_replica_down;
               raise (Replica_down { replica = server.replica })
             end)
            [@leak_ok
              "replica outage aborts the whole batch; the exception carries only the \
               public replica index and the failover replays the identical public plan"];
            if Psp_fault.Fault.fires "pir.replica.latency" then begin
              Obs.incr m_replica_spikes;
              let spike = Cost_model.latency_spike_seconds server.cost in
              Array.iter
                (fun (s, _) ->
                  s.comm_seconds <- s.comm_seconds +. spike;
                  s.spike_seconds <- s.spike_seconds +. spike)
                requests;
              let seconds = (fst requests.(0)).spike_seconds in
              (if seconds > Cost_model.timeout_seconds server.cost then
                 raise (Replica_timeout { replica = server.replica; seconds }))
              [@leak_ok
                "the timeout threshold and the accumulated spike delay are deterministic \
                 cost-model quantities, independent of query content"]
            end;
            (* the store pass: one merged fetch serves every member's
               probe (level-major scans in the pyramid, one sweep in the
               square-root store) instead of k independent walks *)
            let contents =
              (match server.mode with
              | `Simulated ->
                  Array.map
                    (fun (_, (page [@secret])) -> Psp_storage.Page_file.read f page)
                    requests
              | `Oblivious | `Pyramid -> (
                  let ids = Array.map (fun (_, (page [@secret])) -> page) requests in
                  match Hashtbl.find server.stores name with
                  | Sqrt store -> Oblivious_store.fetch_many store ids
                  | Pyramid store -> Pyramid_store.fetch_many store ids))
              [@leak_ok
                "the merged pass's loop structure depends only on the public batch \
                 width and the access count; the secret page indices only select \
                 which pre-planned slots carry real payloads (see fetch_many)"]
            in
            Array.mapi
              (fun m (_, (page [@secret])) ->
                let bytes = contents.(m) in
                let bytes =
                  (if Psp_fault.Fault.fires "pir.fetch.corrupt" then begin
                     let b = Bytes.copy bytes in
                     if Bytes.length b > 0 then
                       Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x01));
                     b
                   end
                   else bytes)
                  [@leak_ok
                    "fault-injection test hook: flips one bit of the already-fetched page, \
                     whose length is the file's public page size"]
                in
                (if not (Psp_storage.Page_file.verify_page f page bytes) then
                   raise (Page_corrupt { file = name; page }))
                [@leak_ok
                  "integrity failure aborts the whole batch; the exception stays inside the \
                   client trust boundary and the engine's retry re-issues every member's \
                   identical request"];
                let bytes =
                  (if Psp_fault.Fault.fires "pir.fetch.tamper" then begin
                     (* as in fetch: the flip lands after the checksum gate,
                        simulating a host that recomputes the CRC *)
                     let b = Bytes.copy bytes in
                     if Bytes.length b > 0 then
                       Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x80));
                     b
                   end
                   else bytes)
                  [@leak_ok
                    "fault-injection test hook: flips one bit of the already-fetched page, \
                     whose length is the file's public page size"]
                in
                (if not (Psp_storage.Page_file.authenticate f ~key:server.key page bytes)
                 then raise (Tampered { file = name; page }))
                [@leak_ok
                  "authenticity failure aborts the whole batch and fails the replica over; \
                   the exception stays inside the client trust boundary"];
                bytes)
              requests)
    [@@oblivious]

  let download t ~file:name =
    let f = file t.server name in
    let pages = Psp_storage.Page_file.page_count f in
    t.comm_seconds <-
      t.comm_seconds
      +. Cost_model.transfer_seconds t.server.cost ~bytes:(Psp_storage.Page_file.size_bytes f);
    Trace.record t.trace (Trace.Plain_download { round = t.round; file = name; pages });
    (* public: whole-file downloads touch a page count fixed by the layout *)
    Obs.add m_downloads pages;
    Obs.add_pages pages;
    Psp_fault.Fault.inject "pir.download.transient";
    Array.init pages (Psp_storage.Page_file.read f)
    [@@oblivious]

  let plain_fetch t ~file:name ~page =
    Obs.incr m_plain;
    Obs.add_pages 1;
    let f = file t.server name in
    t.server_cpu_seconds <- t.server_cpu_seconds +. Cost_model.plain_fetch_seconds t.server.cost;
    t.comm_seconds <-
      t.comm_seconds
      +. Cost_model.transfer_seconds t.server.cost ~bytes:(Psp_storage.Page_file.page_size f);
    Psp_storage.Page_file.read f page

  let add_server_compute t seconds = t.server_cpu_seconds <- t.server_cpu_seconds +. seconds

  let note_retry t ~backoff =
    Obs.incr m_retries;
    t.retries <- t.retries + 1;
    t.recovery_seconds <- t.recovery_seconds +. backoff;
    t.comm_seconds <- t.comm_seconds +. backoff
    [@@oblivious]

  (* Server-side accounted seconds so far: the same pir + comm + cpu
     total [finish] will report, readable mid-session.  The pipelined
     executor samples it at the session's release point to place the
     batch's fetch phase on its virtual timeline — a public aggregate
     of plan-determined charges. *)
  let accounted_seconds t =
    t.pir_seconds +. t.comm_seconds +. t.server_cpu_seconds

  let finish t =
    (* simulated cost-model totals: deterministic functions of the plan *)
    Obs.observe m_pir_seconds t.pir_seconds;
    Obs.observe m_comm_seconds t.comm_seconds;
    { rounds = t.round;
      pir_seconds = t.pir_seconds;
      comm_seconds = t.comm_seconds;
      server_cpu_seconds = t.server_cpu_seconds;
      pir_fetches =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.fetch_counts [] |> List.sort compare;
      retries = t.retries;
      recovery_seconds = t.recovery_seconds;
      trace = t.trace }
end
