type event =
  | Pir_fetch of { round : int; file : string }
  | Plain_download of { round : int; file : string; pages : int }

type t = { events : event Psp_util.Dyn_array.t }

let create () = { events = Psp_util.Dyn_array.create () }
let record t e = Psp_util.Dyn_array.push t.events e [@@oblivious]
let events t = Psp_util.Dyn_array.to_list t.events
let length t = Psp_util.Dyn_array.length t.events

let equal a b = events a = events b

let fingerprint t =
  let buf = Buffer.create 256 in
  List.iter
    (fun e ->
      match e with
      | Pir_fetch { round; file } -> Buffer.add_string buf (Printf.sprintf "P%d:%s;" round file)
      | Plain_download { round; file; pages } ->
          Buffer.add_string buf (Printf.sprintf "D%d:%s:%d;" round file pages))
    (events t);
  Psp_crypto.Sha256.hex (Psp_crypto.Sha256.digest_string (Buffer.contents buf))
  [@@oblivious]

let per_round_file_counts t =
  let table = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e with
      | Pir_fetch { round; file } ->
          let key = (round, file) in
          Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key))
      | Plain_download _ -> ())
    (events t);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort compare

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun ((round, file), count) ->
      Format.fprintf ppf "round %d: %d page(s) from %s@," round count file)
    (per_round_file_counts t);
  Format.fprintf ppf "@]"
