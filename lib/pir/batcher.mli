(** Session multiplexer for batched multi-query serving.

    All same-plan queries are trace-identical by construction (Theorem
    1), so N concurrent queries walk the same public step list in
    lockstep and their per-round page requests can be merged into one
    oblivious-store pass each ({!Server.Session.fetch_batch}) — the
    amortization that lets hardware-aided PIR serve real request
    volumes.  The pass is {e executed}, not just simulated: in the
    oblivious server modes the width-k request lands in
    {!Pyramid_store.fetch_many} / {!Oblivious_store.fetch_many}, which
    serve all k probes with one sequential scan per level while keeping
    every member's slot trace byte-identical to sequential execution.
    The batch width is public: the LBS trivially observes how
    many sessions it serves, and learns nothing else beyond the one
    shared plan.

    A batcher owns one {!Server.Session} per member, so every member
    keeps its own trace, cost accounting and stats; the privacy tests
    assert the members' traces stay mutually equal and equal to a
    sequential query's trace.

    This module is deliberately the {e same-plan merge core} only.
    Routing a mixed multi-tenant stream to per-plan batchers lives in
    {!Dispatch}, and choosing {e when} and {e how wide} to dispatch
    lives in the serving frontend ([Psp_serve.Scheduler]) — the split
    keeps the part with privacy obligations (this file) small and
    auditable. *)

type t

val start : Server.t -> width:int -> t
(** Open [width] concurrent sessions against one server.
    @raise Invalid_argument when [width <= 0]. *)

val width : t -> int
val server : t -> Server.t
val sessions : t -> Server.Session.t array
val session : t -> int -> Server.Session.t

val next_round : t -> unit
(** Advance every member to its next round.  The merged round is one
    message exchange, so its round-trip latency is split evenly across
    the members ([rtt / width] each). *)

val fetch : t -> file:string -> pages:int array -> bytes array
(** One merged pass: member [i] privately retrieves [pages.(i)] from
    [file].  Cost, trace and fault semantics per
    {!Server.Session.fetch_batch}; the width flows down to the store
    layer, so each extra member costs one slot touch per hierarchy
    level — executed and simulated alike.
    @raise Invalid_argument unless there is exactly one page per
    member. *)

val note_retry : t -> backoff:float -> unit
(** Account one batch-granular recovery attempt to every member, keeping
    their traces and recovery costs identical. *)

val finish : t -> Server.Session.stats array
