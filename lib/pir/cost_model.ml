type t = {
  page_size : int;
  disk_seek : float;
  disk_rate : float;
  scp_io_rate : float;
  scp_crypto_rate : float;
  bandwidth : float;
  rtt : float;
  scp_memory : int;
  pir_memory_factor : int;
  pir_calibration : float;
}

let ibm4764 =
  { page_size = 4096;
    disk_seek = 0.011;
    disk_rate = 125.0e6;
    scp_io_rate = 80.0e6;
    scp_crypto_rate = 10.0e6;
    bandwidth = 48.0e3;
    rtt = 0.7;
    scp_memory = 32 * 1024 * 1024;
    pir_memory_factor = 10;
    pir_calibration = 0.26 }

let page_op_seconds t =
  let p = float_of_int t.page_size in
  t.disk_seek +. (p /. t.disk_rate) +. (p /. t.scp_io_rate)
  +. (2.0 *. p /. t.scp_crypto_rate)

let log2 x = log x /. log 2.0

let pir_fetch_seconds t ~file_pages =
  let n = float_of_int (max 2 file_pages) in
  let ops = Float.max 1.0 (t.pir_calibration *. (log2 n ** 2.0)) in
  ops *. page_op_seconds t

(* Same-round requests served in one pass over the oblivious store: the
   calibrated log²N term pays for the pass itself (level scans plus the
   amortized reshuffle), and each request beyond the first only adds one
   probe per hierarchy level — log N further page operations, capped at
   the full pass (a batch can always fall back to independent passes, so
   no request may cost more than its own).  With [batch = 1] this
   reduces exactly to {!pir_fetch_seconds}, which keeps single-query
   costs (and every existing benchmark) unchanged. *)
let pir_batch_fetch_seconds t ~file_pages ~batch =
  let n = float_of_int (max 2 file_pages) in
  let pass = Float.max 1.0 (t.pir_calibration *. (log2 n ** 2.0)) in
  let marginal = Float.min pass (Float.max 1.0 (log2 n)) in
  let extra = float_of_int (max 0 (batch - 1)) in
  (pass +. (extra *. marginal)) *. page_op_seconds t

(* Recovery-path latencies.  All are deterministic functions of public
   quantities (attempt ordinals and Table 2 link constants), so charging
   them cannot leak: the oblivious-retry argument of DESIGN.md extends
   unchanged. *)

let retry_backoff_seconds ~base ~attempt =
  if attempt < 1 then invalid_arg "Cost_model.retry_backoff_seconds: attempt >= 1";
  base *. float_of_int (1 lsl (attempt - 1))

let latency_spike_seconds t = 10.0 *. t.rtt
let timeout_seconds t = 25.0 *. t.rtt

let failover_seconds t ~attempt =
  (* tear down the dead session, re-handshake with the next replica, and
     back off exponentially in the number of replicas already abandoned *)
  t.rtt +. retry_backoff_seconds ~base:t.rtt ~attempt

let plain_fetch_seconds t =
  t.disk_seek +. (float_of_int t.page_size /. t.disk_rate)

let transfer_seconds t ~bytes = float_of_int bytes /. t.bandwidth

let max_file_bytes t =
  (* memory(N) = c * sqrt(N) * page_size <= scp_memory *)
  let c = float_of_int t.pir_memory_factor in
  let max_pages = (float_of_int t.scp_memory /. (c *. float_of_int t.page_size)) ** 2.0 in
  int_of_float max_pages * t.page_size

let supports_file t ~bytes = bytes <= max_file_bytes t

let scp_memory_needed t ~file_pages =
  let pages = ceil (float_of_int t.pir_memory_factor *. sqrt (float_of_int file_pages)) in
  int_of_float pages * t.page_size

let with_max_file t ~bytes =
  if bytes <= 0 then invalid_arg "Cost_model.with_max_file: bytes must be positive";
  let pages = float_of_int bytes /. float_of_int t.page_size in
  let memory =
    float_of_int t.pir_memory_factor *. sqrt pages *. float_of_int t.page_size
  in
  { t with scp_memory = int_of_float (ceil memory) }
