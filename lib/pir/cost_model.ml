type t = {
  page_size : int;
  disk_seek : float;
  disk_rate : float;
  scp_io_rate : float;
  scp_crypto_rate : float;
  bandwidth : float;
  rtt : float;
  scp_memory : int;
  pir_memory_factor : int;
  pir_calibration : float;
  client_decode_rate : float;
}

let ibm4764 =
  { page_size = 4096;
    disk_seek = 0.011;
    disk_rate = 125.0e6;
    scp_io_rate = 80.0e6;
    scp_crypto_rate = 10.0e6;
    bandwidth = 48.0e3;
    rtt = 0.7;
    scp_memory = 32 * 1024 * 1024;
    pir_memory_factor = 10;
    pir_calibration = 0.26;
    client_decode_rate = 2.0e5 }

let page_op_seconds t =
  let p = float_of_int t.page_size in
  t.disk_seek +. (p /. t.disk_rate) +. (p /. t.scp_io_rate)
  +. (2.0 *. p /. t.scp_crypto_rate)

let log2 x = log x /. log 2.0

let pir_fetch_seconds t ~file_pages =
  let n = float_of_int (max 2 file_pages) in
  let ops = Float.max 1.0 (t.pir_calibration *. (log2 n ** 2.0)) in
  ops *. page_op_seconds t

(* Pyramid depth for a file: the smallest L with cache_capacity * 4^L >=
   file_pages.  This is the one place the layout formula lives —
   Pyramid_store.create calls it to size the hierarchy, and the
   simulated batch cost below charges marginal probes against it, so the
   executed and modeled per-probe touch counts coincide by
   construction. *)
let pyramid_levels ~cache_capacity ~file_pages =
  if cache_capacity < 1 then invalid_arg "Cost_model.pyramid_levels: cache_capacity >= 1";
  if file_pages < 1 then invalid_arg "Cost_model.pyramid_levels: file_pages >= 1";
  let rec depth_for l =
    if cache_capacity * (1 lsl (2 * l)) >= file_pages then l else depth_for (l + 1)
  in
  depth_for 1

(* The physical basis of the batch amortization: a merged pass serves
   each request beyond the first with exactly one extra slot touch per
   hierarchy level, so a width-k batch executes (k-1) * levels marginal
   page touches on top of the first member's full pass.  test_batch.ml
   asserts the oblivious stores execute exactly this many. *)
let batch_probe_touches ~levels ~batch =
  if levels < 0 then invalid_arg "Cost_model.batch_probe_touches: levels >= 0";
  if batch < 1 then invalid_arg "Cost_model.batch_probe_touches: batch >= 1";
  (batch - 1) * levels

(* Same-round requests served in one pass over the oblivious store: the
   calibrated log²N term pays for the pass itself (level scans plus the
   amortized reshuffle) once, and the marginal cost is derived from the
   merged pass's executed page-touch count ({!batch_probe_touches}):
   each request beyond the first adds [levels] slot touches — one probe
   per hierarchy level — capped at the full pass (a batch can always
   fall back to independent passes, so no request may cost more than its
   own).  With [batch = 1] this reduces exactly to
   {!pir_fetch_seconds}, which keeps single-query costs (and every
   existing benchmark) unchanged. *)
let pir_batch_fetch_seconds t ~file_pages ~levels ~batch =
  let n = float_of_int (max 2 file_pages) in
  let pass = Float.max 1.0 (t.pir_calibration *. (log2 n ** 2.0)) in
  let marginal = Float.min pass (Float.max 1.0 (float_of_int levels)) in
  let extra = float_of_int (max 0 (batch - 1)) in
  (pass +. (extra *. marginal)) *. page_op_seconds t

(* Serving-frontend latencies.  The multi-tenant scheduler keeps a
   virtual clock in model seconds; a query's served latency splits into
   the time it sat queued (dispatch - arrival, both public events on
   that clock) and the response time of the batch that served it.  Both
   are functions of public quantities only — arrival timestamps, batch
   widths and the layout constants above — so the scheduler's decisions
   never have anything secret to read. *)

(* Client-side decode of a batch's delivered pages (decrypt, CRC,
   record parse) on the handheld's CPU.  The byte count priced here must
   be plan-fixed — slot count x page size, never the delivered real
   payloads — so the decode schedule the pipelined executor plans
   against stays a public quantity. *)
let decode_seconds t ~bytes =
  if bytes < 0 then invalid_arg "Cost_model.decode_seconds: bytes >= 0";
  float_of_int bytes /. t.client_decode_rate

(* The steady-state response estimate of a depth-d pipelined stream of
   identical batches: completions are spaced max(fetch, (fetch +
   decode)/d) apart — the serial SCP bounds the spacing below by the
   fetch pass, and a window of d in-flight batches divides the full
   synchronous round (fetch + decode) by d.  depth = 1 reduces exactly
   to the synchronous sum. *)
let pipelined_response_seconds ~fetch ~decode ~depth =
  if depth < 1 then invalid_arg "Cost_model.pipelined_response_seconds: depth >= 1";
  if fetch < 0.0 || decode < 0.0 then
    invalid_arg "Cost_model.pipelined_response_seconds: negative phase cost";
  Float.max fetch ((fetch +. decode) /. float_of_int depth)

let queueing_delay_seconds ~enqueued ~dispatched =
  if dispatched < enqueued then
    invalid_arg "Cost_model.queueing_delay_seconds: dispatched before enqueued";
  dispatched -. enqueued

(* The width-w service estimate the scheduler plans against: the batched
   pass cost with the hierarchy depth derived from the same layout
   formula the store uses, so the estimate and the executed charge agree
   by construction. *)
let batch_response_seconds t ~cache_capacity ~file_pages ~batch =
  pir_batch_fetch_seconds t ~file_pages
    ~levels:(pyramid_levels ~cache_capacity ~file_pages)
    ~batch

(* Recovery-path latencies.  All are deterministic functions of public
   quantities (attempt ordinals and Table 2 link constants), so charging
   them cannot leak: the oblivious-retry argument of DESIGN.md extends
   unchanged. *)

let retry_backoff_seconds ~base ~attempt =
  if attempt < 1 then invalid_arg "Cost_model.retry_backoff_seconds: attempt >= 1";
  base *. float_of_int (1 lsl (attempt - 1))

let latency_spike_seconds t = 10.0 *. t.rtt
let timeout_seconds t = 25.0 *. t.rtt

let failover_seconds t ~attempt =
  (* tear down the dead session, re-handshake with the next replica, and
     back off exponentially in the number of replicas already abandoned *)
  t.rtt +. retry_backoff_seconds ~base:t.rtt ~attempt

let plain_fetch_seconds t =
  t.disk_seek +. (float_of_int t.page_size /. t.disk_rate)

let transfer_seconds t ~bytes = float_of_int bytes /. t.bandwidth

let max_file_bytes t =
  (* memory(N) = c * sqrt(N) * page_size <= scp_memory *)
  let c = float_of_int t.pir_memory_factor in
  let max_pages = (float_of_int t.scp_memory /. (c *. float_of_int t.page_size)) ** 2.0 in
  int_of_float max_pages * t.page_size

let supports_file t ~bytes = bytes <= max_file_bytes t

let scp_memory_needed t ~file_pages =
  let pages = ceil (float_of_int t.pir_memory_factor *. sqrt (float_of_int file_pages)) in
  int_of_float pages * t.page_size

let with_max_file t ~bytes =
  if bytes <= 0 then invalid_arg "Cost_model.with_max_file: bytes must be positive";
  let pages = float_of_int bytes /. float_of_int t.page_size in
  let memory =
    float_of_int t.pir_memory_factor *. sqrt pages *. float_of_int t.page_size
  in
  { t with scp_memory = int_of_float (ceil memory) }
