(* Per-replica circuit breaker on the simulated clock.

   Everything here is driven by public signals: failure/success events
   are plan-derivable fault outcomes, the clock is the deterministic
   cost-model time, and the jitter stream is seeded from the public
   replica index.  Nothing about query content can influence which
   replica serves a query — psplint's rules apply to the callers; this
   module holds no secrets at all. *)

type state = Closed | Open | Half_open

type t = {
  threshold : int;
  cooldown : float;
  rng : Psp_util.Rng.t; (* deterministic jitter, seeded per replica *)
  mutable state : state;
  mutable failures : int; (* consecutive *)
  mutable trips : int; (* consecutive Open transitions: backoff exponent *)
  mutable open_until : float;
}

let create ?(threshold = 3) ?(cooldown = 1.0) ~seed () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  if cooldown <= 0.0 then invalid_arg "Breaker.create: cooldown must be positive";
  { threshold;
    cooldown;
    rng = Psp_util.Rng.create seed;
    state = Closed;
    failures = 0;
    trips = 0;
    open_until = 0.0 }

let state t = t.state

let available t ~now =
  match t.state with
  | Closed | Half_open -> true
  | Open ->
      if now >= t.open_until then begin
        (* cooldown elapsed: let one probe through *)
        t.state <- Half_open;
        true
      end
      else false

let record_success t =
  t.failures <- 0;
  t.trips <- 0;
  t.state <- Closed

let record_failure t ~now =
  t.failures <- t.failures + 1;
  (* a Half_open probe that fails re-opens immediately; a Closed breaker
     trips after [threshold] consecutive failures *)
  if t.state = Half_open || t.failures >= t.threshold then begin
    t.state <- Open;
    t.trips <- t.trips + 1;
    (* exponential cooldown with deterministic jitter in [0.75, 1.25):
       de-synchronizes probes across replicas without wall-clock
       randomness — the stream is a pure function of the seed and the
       trip ordinal *)
    let exp = float_of_int (1 lsl min (t.trips - 1) 6) in
    let jitter = 0.75 +. Psp_util.Rng.float t.rng 0.5 in
    t.open_until <- now +. (t.cooldown *. exp *. jitter)
  end

let cooldown_until t = t.open_until
