module Obs = Psp_obs.Obs

type physical_event =
  | Slot of { level : int; epoch : int; slot : int }
  | Rebuild of { level : int; items : int }

(* Telemetry: a pyramid read touches exactly one slot per level, and the
   flush/rebuild cadence is a public function of the query count — both
   safe to count.  The Bloom false-positive counter [fp] is the textbook
   counter-example: it depends on which pages were requested, so it is
   test-visible only (bloom_false_positives) and must never be exported
   through lib/obs (see docs/OBSERVABILITY.md). *)
let m_slot_reads = Obs.counter "oram.pyramid.slot_reads"
let m_rebuilds = Obs.counter "oram.pyramid.rebuilds"
let m_flushes = Obs.counter "oram.pyramid.flushes"

(* A merged level scan is one sequential sweep over a level's epoch that
   serves every probe of a batch chunk at once.  Its count is a public
   function of the access count and the (public) batch width, so it is
   safe to export — it is the executed-side evidence of the batch
   amortization the cost model charges. *)
let m_level_scans = Obs.counter "oram.pyramid.level_scans"

(* Level j holds at most [cap] items in [cap + dummies] encrypted slots
   scattered by a per-epoch Feistel permutation; a keyed Bloom filter
   answers membership inside the SCP. *)
type level = {
  depth : int;
  cap : int;     (* item capacity *)
  dummies : int; (* dummy slots = queries served between rebuilds (+slack) *)
  mutable epoch : int;
  mutable assign : (int, int) Hashtbl.t; (* logical id -> slot *)
  mutable contents : (int, bytes) Hashtbl.t; (* logical id -> plaintext *)
  mutable slots : bytes array;
  mutable perm : Psp_crypto.Feistel.t;
  mutable bloom : Psp_crypto.Bloom.t;
  mutable dummy_cursor : int;
}

type t = {
  master_key : bytes;
  page_size : int;
  n : int;
  cache_capacity : int;
  mutable cache : (int * bytes) list; (* newest first; may hold duplicates *)
  levels : level array; (* shallow (index 0 = level 1) to deep *)
  mutable queries : int;
  mutable flushes : int;
  mutable fp : int;
  mutable slot_touches : int; (* physical slots touched (trace Slot events) *)
  mutable scans : int; (* merged level scans executed (sweeps per level per chunk) *)
  trace : physical_event Psp_util.Dyn_array.t;
}

let level_key t level =
  Psp_crypto.Hmac.derive ~key:t.master_key
    ~label:(Printf.sprintf "level-%d-epoch-%d" level.depth level.epoch)

let slot_nonce slot =
  let nonce = Bytes.make 12 '\000' in
  for i = 0 to 7 do
    Bytes.set nonce i (Char.chr ((slot lsr (8 * i)) land 0xFF))
  done;
  nonce

(* (Re)build a level from plaintext contents under fresh per-epoch keys:
   items land on permuted slots, the Bloom filter is re-keyed, every
   slot (incl. dummies) is re-encrypted. *)
let rebuild t level contents =
  Obs.incr m_rebuilds;
  level.epoch <- level.epoch + 1;
  let key = level_key t level in
  let perm_key = Psp_crypto.Hmac.derive ~key ~label:"perm" in
  let enc_key = Psp_crypto.Hmac.derive ~key ~label:"enc" in
  let domain = level.cap + level.dummies in
  level.perm <- Psp_crypto.Feistel.create ~key:perm_key ~domain;
  level.bloom <-
    Psp_crypto.Bloom.sized_for ~key ~label:"membership" ~expected:(max 8 level.cap)
      ~fp_rate:0.01;
  level.assign <- Hashtbl.create (max 8 (Hashtbl.length contents));
  level.contents <- contents;
  level.slots <- Array.make domain Bytes.empty;
  level.dummy_cursor <- 0;
  (* deterministic item order: sorted logical ids *)
  let ids = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) contents []) in
  (* the message names the level and its public capacity only: the live
     item count reflects which pages were accessed this epoch *)
  if List.length ids > level.cap then
    invalid_arg
      (Printf.sprintf "Pyramid_store: level %d overflow (cap %d exceeded)" level.depth
         level.cap);
  List.iteri
    (fun index id ->
      let slot = Psp_crypto.Feistel.forward level.perm index in
      Hashtbl.replace level.assign id slot;
      Psp_crypto.Bloom.add level.bloom id;
      level.slots.(slot) <-
        Psp_crypto.Chacha20.encrypt ~key:enc_key ~nonce:(slot_nonce slot)
          (Hashtbl.find contents id))
    ids;
  (* dummies and unused item slots hold encrypted zeros *)
  for slot = 0 to domain - 1 do
    if Bytes.length level.slots.(slot) = 0 then
      level.slots.(slot) <-
        Psp_crypto.Chacha20.encrypt ~key:enc_key ~nonce:(slot_nonce slot)
          (Bytes.make t.page_size '\000')
  done;
  Psp_util.Dyn_array.push t.trace (Rebuild { level = level.depth; items = domain })
  [@@oblivious]

let default_cache_capacity = 4

let create ?(cache_capacity = default_cache_capacity) ~key file =
  let n = Psp_storage.Page_file.page_count file in
  if n = 0 then invalid_arg "Pyramid_store.create: empty file";
  if cache_capacity < 1 then invalid_arg "Pyramid_store.create: cache_capacity >= 1";
  let c = cache_capacity in
  (* deepest level must hold all n pages: cap_L = c * 4^L >= n.  The
     formula lives in Cost_model so the simulated batch cost and this
     layout can never drift apart. *)
  let deepest = Cost_model.pyramid_levels ~cache_capacity:c ~file_pages:n in
  let make_level depth =
    (* the deepest level must absorb the initial n pages on top of the
       usual merge traffic *)
    let cap =
      if depth = deepest then n + (c * (1 lsl (2 * depth)))
      else c * (1 lsl (2 * depth))
    in
    (* rebuild cadence of level j is c*4^(j-1) queries *)
    let dummies = (c * (1 lsl (2 * (depth - 1)))) + c in
    { depth;
      cap;
      dummies;
      epoch = 0;
      assign = Hashtbl.create 8;
      contents = Hashtbl.create 8;
      slots = [||];
      perm = Psp_crypto.Feistel.create ~key ~domain:1;
      bloom = Psp_crypto.Bloom.create ~key ~label:"init" ~bits:8 ~hashes:1;
      dummy_cursor = 0 }
  in
  let t =
    { master_key =
        Psp_crypto.Hmac.derive ~key
          ~label:("pyramid:" ^ Psp_storage.Page_file.name file);
      page_size = Psp_storage.Page_file.page_size file;
      n;
      cache_capacity = c;
      cache = [];
      levels = Array.init deepest (fun i -> make_level (i + 1));
      queries = 0;
      flushes = 0;
      fp = 0;
      slot_touches = 0;
      scans = 0;
      trace = Psp_util.Dyn_array.create () }
  in
  (* initial load: everything lives in the deepest level *)
  let all = Hashtbl.create n in
  for i = 0 to n - 1 do
    Hashtbl.replace all i (Psp_storage.Page_file.read file i)
  done;
  Array.iter (fun level -> rebuild t level (Hashtbl.create 8)) t.levels;
  rebuild t t.levels.(deepest - 1) all;
  Psp_util.Dyn_array.clear t.trace;
  t

let page_count t = t.n
let level_count t = Array.length t.levels
let cache_capacity t = t.cache_capacity

(* Reserve the level's next unused dummy slot (the planning half of the
   old touch_dummy; the physical touch happens in the merged sweep). *)
let plan_dummy level =
  if level.dummy_cursor >= level.dummies then
    invalid_arg
      (Printf.sprintf "Pyramid_store: level %d dummy budget exhausted" level.depth);
  let slot = Psp_crypto.Feistel.forward level.perm (level.cap + level.dummy_cursor) in
  level.dummy_cursor <- level.dummy_cursor + 1;
  slot
  [@@oblivious]

(* base-4 merge counter: flush f lands in level 1 + (times 4 divides f) *)
let merge_target t =
  let rec count f acc = if f mod 4 = 0 then count (f / 4) (acc + 1) else acc in
  min (Array.length t.levels) (1 + count t.flushes 0)

let flush t =
  Obs.incr m_flushes;
  t.flushes <- t.flushes + 1;
  let target = merge_target t in
  let merged = Hashtbl.create 64 in
  (* newest copy wins: cache (newest first), then shallow to deep *)
  List.iter (fun (id, page) -> if not (Hashtbl.mem merged id) then Hashtbl.replace merged id page) t.cache;
  for j = 0 to target - 1 do
    let level = t.levels.(j) in
    Hashtbl.iter
      (fun id page -> if not (Hashtbl.mem merged id) then Hashtbl.replace merged id page)
      level.contents
  done;
  (* rebuild the target with everything; empty the levels above it *)
  rebuild t t.levels.(target - 1) merged;
  for j = 0 to target - 2 do
    rebuild t t.levels.(j) (Hashtbl.create 8)
  done;
  t.cache <- []
  [@@oblivious]

(* Where a chunk member's page comes from, decided in the planning walk:
   the SCP cache, an earlier member of the same chunk (which reads it on
   the member's behalf), or a level of the pyramid. *)
type source = From_cache | From_member of int | From_level

(* Serve a width-k batch with one merged sweep per level.  The batch is
   cut into chunks at the flush cadence (a flush re-keys every level, so
   probes across it cannot share an epoch's scan); within a chunk the
   walk is split into a planning half — decide, per member in order,
   which slot each level touch lands on, consuming dummy cursors exactly
   as k sequential reads would — and an execution half that performs one
   sequential sweep per level over the planned slots, in member order.
   Hence each member's slot touches are byte-identical to the sequential
   execution's, while the host serves k probes of a level with a single
   scan of its epoch (one Bloom consultation round, one key schedule). *)
(* The array itself is not marked secret — its length (the batch width)
   is public, and the loop structure below depends only on it and on the
   access count; the page indices inside are marked [@secret] where they
   are read out, exactly as Server.Session.fetch_batch treats its
   request array. *)
let fetch_many t ids =
  let k = Array.length ids in
  let nlevels = Array.length t.levels in
  (* constant per-read delta fixed by the public layout: one slot per
     level per member *)
  (Obs.add m_slot_reads (k * nlevels))
  [@leak_ok
    "the level count is the store's public layout (a function of n and the cache \
     capacity) and the batch width is public, not a function of which pages were \
     accessed"];
  (Array.iter
     (fun (id [@secret]) ->
       if id < 0 || id >= t.n then invalid_arg "Pyramid_store.fetch_many: page out of range")
     ids)
  [@leak_ok
    "bounds check fails closed with a constant message before any slot is touched; \
     the trip count is the public batch width"];
  let results = Array.make k Bytes.empty in
  let rec serve base =
    if base >= k then ()
    else begin
    (* the chunk ends at the next flush boundary: queries is public, so
       the chunk lengths are a function of the access count and width *)
    let chunk = min (k - base) (t.cache_capacity - (t.queries mod t.cache_capacity)) in
    (* -- plan: one decision walk per member, in member order.
       plans.(m).(l) is the slot member m touches at level l; real.(m)
       is the level holding m's page (-1 when cached or supplied by an
       earlier member), and sources.(m) routes the payload. *)
    let plans =
      (Array.make_matrix chunk nlevels 0)
      [@leak_ok
        "the chunk length is a public function of the access count and the batch \
         width (the flush cadence), never of which pages were accessed"]
    in
    let real =
      (Array.make chunk (-1))
      [@leak_ok "sized by the public chunk length, as above"]
    in
    let sources =
      (Array.make chunk From_level)
      [@leak_ok "sized by the public chunk length, as above"]
    in
    let pending =
      (Hashtbl.create (2 * chunk))
      [@leak_ok "sized by the public chunk length, as above"]
    in
    (for m = 0 to chunk - 1 do
      let (id [@secret]) = ids.(base + m) in
      let found = ref false in
      (match Hashtbl.find_opt pending id with
      | Some m' ->
          sources.(m) <- From_member m';
          found := true
      | None ->
          if List.mem_assoc id t.cache then begin
            sources.(m) <- From_cache;
            found := true
          end
          else Hashtbl.replace pending id m)
      [@leak_ok
        "both the pending table and the SCP cache are client-side state; the chosen \
         source only routes the decrypted payload and never changes how many slots \
         the walk below reserves"];
      (Array.iteri
         (fun l level ->
           if !found then plans.(m).(l) <- plan_dummy level
           else if Psp_crypto.Bloom.mem level.bloom id then
             if Hashtbl.mem level.assign id then begin
               found := true;
               real.(m) <- l;
               plans.(m).(l) <- Hashtbl.find level.assign id
             end
             else begin
               (* Bloom false positive: covered by a dummy touch *)
               t.fp <- t.fp + 1;
               plans.(m).(l) <- plan_dummy level
             end
           else plans.(m).(l) <- plan_dummy level)
         t.levels)
      [@leak_ok
        "every level reserves exactly one slot per member — the real slot on the \
         first hit, a fresh dummy otherwise — so the per-level slot sequence is \
         independent of the page"];
      (if not !found then failwith "Pyramid_store: page lost (invariant violation)")
      [@leak_ok "a lost page is an invariant violation; fails closed with a constant message"]
    done)
    [@leak_ok
      "one planning decision per chunk member: the trip count is the public chunk \
       length, and every decision reserves exactly one slot per level either way"];
    (* -- execute: one merged sweep per level over the planned slots, in
       member order, so the per-member event subsequence equals the
       sequential trace while the level is scanned once per chunk *)
    (Array.iteri
       (fun l level ->
         t.scans <- t.scans + 1;
         Obs.incr m_level_scans;
         let enc_key =
           lazy (Psp_crypto.Hmac.derive ~key:(level_key t level) ~label:"enc")
         in
         for m = 0 to chunk - 1 do
           let slot = plans.(m).(l) in
           t.slot_touches <- t.slot_touches + 1;
           Psp_util.Dyn_array.push t.trace
             (Slot { level = level.depth; epoch = level.epoch; slot });
           (if real.(m) = l then
              results.(base + m) <-
                Psp_crypto.Chacha20.decrypt ~key:(Lazy.force enc_key)
                  ~nonce:(slot_nonce slot) level.slots.(slot))
           [@leak_ok
             "the slot touch the host observes happens either way; only the \
              client-side decryption of the already-planned slot is skipped for \
              dummies, exactly as in the sequential walk"]
         done)
       t.levels)
    [@leak_ok
      "the sweep runs once per level per chunk — level count and chunk length are \
       both public — and touches the chunk's pre-planned slot in each step; the \
       scan counter it reports is likewise a function of those public quantities"];
    (* -- retire the chunk in member order, reproducing the sequential
       cache growth and flush cadence *)
    (for m = 0 to chunk - 1 do
       let (id [@secret]) = ids.(base + m) in
       (match sources.(m) with
       | From_level -> ()
       | From_cache -> results.(base + m) <- List.assoc id t.cache
       | From_member m' -> results.(base + m) <- results.(base + m'))
       [@leak_ok
         "payload routing between client-side copies; the host saw one slot per \
          level for this member regardless of the source"];
       t.cache <- (id, results.(base + m)) :: t.cache;
       t.queries <- t.queries + 1;
       (if t.queries mod t.cache_capacity = 0 then flush t)
       [@leak_ok
         "the query counter advances by one per read, so the flush-and-rebuild cadence \
          is a public function of the access count alone"]
     done)
    [@leak_ok
      "payload retirement in member order: the trip count is the public chunk \
       length and the host-visible flush cadence depends on the access count alone"];
    serve (base + chunk)
    end
  in
  serve 0;
  results
  [@@oblivious]

let read t (id [@secret]) =
  (if id < 0 || id >= t.n then invalid_arg "Pyramid_store.read: page out of range")
  [@leak_ok "bounds check fails closed with a constant message before any slot is touched"];
  ((fetch_many t [| id |]).(0))
  [@leak_ok
    "a width-1 merged pass: fetch_many's loop structure depends only on the public \
     batch width (here 1) and the access count, never on the page index"]
  [@@oblivious]

let physical_trace t = Psp_util.Dyn_array.to_list t.trace
let clear_trace t = Psp_util.Dyn_array.clear t.trace
let bloom_false_positives t = t.fp
let slot_touches t = t.slot_touches
let level_scans t = t.scans
