module Obs = Psp_obs.Obs

type physical_event =
  | Slot of { level : int; epoch : int; slot : int }
  | Rebuild of { level : int; items : int }

(* Telemetry: a pyramid read touches exactly one slot per level, and the
   flush/rebuild cadence is a public function of the query count — both
   safe to count.  The Bloom false-positive counter [fp] is the textbook
   counter-example: it depends on which pages were requested, so it is
   test-visible only (bloom_false_positives) and must never be exported
   through lib/obs (see docs/OBSERVABILITY.md). *)
let m_slot_reads = Obs.counter "oram.pyramid.slot_reads"
let m_rebuilds = Obs.counter "oram.pyramid.rebuilds"
let m_flushes = Obs.counter "oram.pyramid.flushes"

(* Level j holds at most [cap] items in [cap + dummies] encrypted slots
   scattered by a per-epoch Feistel permutation; a keyed Bloom filter
   answers membership inside the SCP. *)
type level = {
  depth : int;
  cap : int;     (* item capacity *)
  dummies : int; (* dummy slots = queries served between rebuilds (+slack) *)
  mutable epoch : int;
  mutable assign : (int, int) Hashtbl.t; (* logical id -> slot *)
  mutable contents : (int, bytes) Hashtbl.t; (* logical id -> plaintext *)
  mutable slots : bytes array;
  mutable perm : Psp_crypto.Feistel.t;
  mutable bloom : Psp_crypto.Bloom.t;
  mutable dummy_cursor : int;
}

type t = {
  master_key : bytes;
  page_size : int;
  n : int;
  cache_capacity : int;
  mutable cache : (int * bytes) list; (* newest first; may hold duplicates *)
  levels : level array; (* shallow (index 0 = level 1) to deep *)
  mutable queries : int;
  mutable flushes : int;
  mutable fp : int;
  trace : physical_event Psp_util.Dyn_array.t;
}

let level_key t level =
  Psp_crypto.Hmac.derive ~key:t.master_key
    ~label:(Printf.sprintf "level-%d-epoch-%d" level.depth level.epoch)

let slot_nonce slot =
  let nonce = Bytes.make 12 '\000' in
  for i = 0 to 7 do
    Bytes.set nonce i (Char.chr ((slot lsr (8 * i)) land 0xFF))
  done;
  nonce

(* (Re)build a level from plaintext contents under fresh per-epoch keys:
   items land on permuted slots, the Bloom filter is re-keyed, every
   slot (incl. dummies) is re-encrypted. *)
let rebuild t level contents =
  Obs.incr m_rebuilds;
  level.epoch <- level.epoch + 1;
  let key = level_key t level in
  let perm_key = Psp_crypto.Hmac.derive ~key ~label:"perm" in
  let enc_key = Psp_crypto.Hmac.derive ~key ~label:"enc" in
  let domain = level.cap + level.dummies in
  level.perm <- Psp_crypto.Feistel.create ~key:perm_key ~domain;
  level.bloom <-
    Psp_crypto.Bloom.sized_for ~key ~label:"membership" ~expected:(max 8 level.cap)
      ~fp_rate:0.01;
  level.assign <- Hashtbl.create (max 8 (Hashtbl.length contents));
  level.contents <- contents;
  level.slots <- Array.make domain Bytes.empty;
  level.dummy_cursor <- 0;
  (* deterministic item order: sorted logical ids *)
  let ids = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) contents []) in
  (* the message names the level and its public capacity only: the live
     item count reflects which pages were accessed this epoch *)
  if List.length ids > level.cap then
    invalid_arg
      (Printf.sprintf "Pyramid_store: level %d overflow (cap %d exceeded)" level.depth
         level.cap);
  List.iteri
    (fun index id ->
      let slot = Psp_crypto.Feistel.forward level.perm index in
      Hashtbl.replace level.assign id slot;
      Psp_crypto.Bloom.add level.bloom id;
      level.slots.(slot) <-
        Psp_crypto.Chacha20.encrypt ~key:enc_key ~nonce:(slot_nonce slot)
          (Hashtbl.find contents id))
    ids;
  (* dummies and unused item slots hold encrypted zeros *)
  for slot = 0 to domain - 1 do
    if Bytes.length level.slots.(slot) = 0 then
      level.slots.(slot) <-
        Psp_crypto.Chacha20.encrypt ~key:enc_key ~nonce:(slot_nonce slot)
          (Bytes.make t.page_size '\000')
  done;
  Psp_util.Dyn_array.push t.trace (Rebuild { level = level.depth; items = domain })
  [@@oblivious]

let create ?(cache_capacity = 4) ~key file =
  let n = Psp_storage.Page_file.page_count file in
  if n = 0 then invalid_arg "Pyramid_store.create: empty file";
  if cache_capacity < 1 then invalid_arg "Pyramid_store.create: cache_capacity >= 1";
  let c = cache_capacity in
  (* deepest level must hold all n pages: cap_L = c * 4^L >= n *)
  let rec depth_for l = if c * (1 lsl (2 * l)) >= n then l else depth_for (l + 1) in
  let deepest = depth_for 1 in
  let make_level depth =
    (* the deepest level must absorb the initial n pages on top of the
       usual merge traffic *)
    let cap =
      if depth = deepest then n + (c * (1 lsl (2 * depth)))
      else c * (1 lsl (2 * depth))
    in
    (* rebuild cadence of level j is c*4^(j-1) queries *)
    let dummies = (c * (1 lsl (2 * (depth - 1)))) + c in
    { depth;
      cap;
      dummies;
      epoch = 0;
      assign = Hashtbl.create 8;
      contents = Hashtbl.create 8;
      slots = [||];
      perm = Psp_crypto.Feistel.create ~key ~domain:1;
      bloom = Psp_crypto.Bloom.create ~key ~label:"init" ~bits:8 ~hashes:1;
      dummy_cursor = 0 }
  in
  let t =
    { master_key =
        Psp_crypto.Hmac.derive ~key
          ~label:("pyramid:" ^ Psp_storage.Page_file.name file);
      page_size = Psp_storage.Page_file.page_size file;
      n;
      cache_capacity = c;
      cache = [];
      levels = Array.init deepest (fun i -> make_level (i + 1));
      queries = 0;
      flushes = 0;
      fp = 0;
      trace = Psp_util.Dyn_array.create () }
  in
  (* initial load: everything lives in the deepest level *)
  let all = Hashtbl.create n in
  for i = 0 to n - 1 do
    Hashtbl.replace all i (Psp_storage.Page_file.read file i)
  done;
  Array.iter (fun level -> rebuild t level (Hashtbl.create 8)) t.levels;
  rebuild t t.levels.(deepest - 1) all;
  Psp_util.Dyn_array.clear t.trace;
  t

let page_count t = t.n
let level_count t = Array.length t.levels
let cache_capacity t = t.cache_capacity

let touch_dummy t level =
  let slot = Psp_crypto.Feistel.forward level.perm (level.cap + level.dummy_cursor) in
  if level.dummy_cursor >= level.dummies then
    invalid_arg
      (Printf.sprintf "Pyramid_store: level %d dummy budget exhausted" level.depth);
  level.dummy_cursor <- level.dummy_cursor + 1;
  Psp_util.Dyn_array.push t.trace (Slot { level = level.depth; epoch = level.epoch; slot })
  [@@oblivious]

let touch_real t level (id [@secret]) =
  let slot = Hashtbl.find level.assign id in
  Psp_util.Dyn_array.push t.trace (Slot { level = level.depth; epoch = level.epoch; slot });
  let enc_key = Psp_crypto.Hmac.derive ~key:(level_key t level) ~label:"enc" in
  Psp_crypto.Chacha20.decrypt ~key:enc_key ~nonce:(slot_nonce slot) level.slots.(slot)
  [@@oblivious]

(* base-4 merge counter: flush f lands in level 1 + (times 4 divides f) *)
let merge_target t =
  let rec count f acc = if f mod 4 = 0 then count (f / 4) (acc + 1) else acc in
  min (Array.length t.levels) (1 + count t.flushes 0)

let flush t =
  Obs.incr m_flushes;
  t.flushes <- t.flushes + 1;
  let target = merge_target t in
  let merged = Hashtbl.create 64 in
  (* newest copy wins: cache (newest first), then shallow to deep *)
  List.iter (fun (id, page) -> if not (Hashtbl.mem merged id) then Hashtbl.replace merged id page) t.cache;
  for j = 0 to target - 1 do
    let level = t.levels.(j) in
    Hashtbl.iter
      (fun id page -> if not (Hashtbl.mem merged id) then Hashtbl.replace merged id page)
      level.contents
  done;
  (* rebuild the target with everything; empty the levels above it *)
  rebuild t t.levels.(target - 1) merged;
  for j = 0 to target - 2 do
    rebuild t t.levels.(j) (Hashtbl.create 8)
  done;
  t.cache <- []
  [@@oblivious]

let read t (id [@secret]) =
  (* constant per-read delta fixed by the public layout: one slot per level *)
  (Obs.add m_slot_reads (Array.length t.levels))
  [@leak_ok
    "the level count is the store's public layout (a function of n and the cache \
     capacity), not of which pages were accessed"];
  (if id < 0 || id >= t.n then invalid_arg "Pyramid_store.read: page out of range")
  [@leak_ok "bounds check fails closed with a constant message before any slot is touched"];
  let found = ref (List.assoc_opt id t.cache) in
  (Array.iter
     (fun level ->
       match !found with
       | Some _ -> touch_dummy t level
       | None ->
           if Psp_crypto.Bloom.mem level.bloom id then
             if Hashtbl.mem level.assign id then found := Some (touch_real t level id)
             else begin
               (* Bloom false positive: covered by a dummy touch *)
               t.fp <- t.fp + 1;
               touch_dummy t level
             end
           else touch_dummy t level)
     t.levels)
  [@leak_ok
    "every level is touched exactly once per read — the real slot on the first hit, a \
     fresh dummy otherwise — so the per-level slot sequence is independent of the page"];
  let page =
    (match !found with
    | Some page -> page
    | None -> failwith "Pyramid_store: page lost (invariant violation)")
    [@leak_ok "a lost page is an invariant violation; fails closed with a constant message"]
  in
  t.cache <- (id, page) :: t.cache;
  t.queries <- t.queries + 1;
  (if t.queries mod t.cache_capacity = 0 then flush t)
  [@leak_ok
    "the query counter advances by one per read, so the flush-and-rebuild cadence is a \
     public function of the access count alone"];
  page
  [@@oblivious]

let physical_trace t = Psp_util.Dyn_array.to_list t.trace
let clear_trace t = Psp_util.Dyn_array.clear t.trace
let bloom_false_positives t = t.fp
