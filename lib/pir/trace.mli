(** The adversary's view of a query execution.

    What the LBS observes (§3.1, proof of Theorem 1) is exactly: for
    each processing round, which files were touched and how many page
    operations each received — never *which* pages (the PIR protocol
    hides that), never the payloads (SSL hides those).  A scheme
    achieves the paper's security objective iff every query produces an
    {!equal} trace; the test suite checks this property on every scheme
    against random query workloads. *)

type event =
  | Pir_fetch of { round : int; file : string }
      (** one private page retrieval *)
  | Plain_download of { round : int; file : string; pages : int }
      (** a non-private bulk download (the header file) *)

type t

val create : unit -> t
(** An empty trace. *)

val record : t -> event -> unit
(** Append one observed event. *)

val events : t -> event list
(** In chronological order. *)

val length : t -> int
(** Number of recorded events. *)

val equal : t -> t -> bool
(** Event-for-event equality — the indistinguishability predicate. *)

val fingerprint : t -> string
(** A stable digest of the event sequence; equal traces have equal
    fingerprints (handy for asserting over large workloads). *)

val per_round_file_counts : t -> ((int * string) * int) list
(** ((round, file), pir-page-count) pairs sorted by round then file —
    the published "query plan" shape. *)

val pp : Format.formatter -> t -> unit
(** Per-round rendering of the view, for [pspc trace]. *)
