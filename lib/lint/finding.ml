type rule =
  | Secret_branch
  | Secret_length
  | Effectful_call
  | Secret_exception
  | Secret_telemetry
  | Secret_alloc
  | Secret_loop
  | Secret_compare
  | Missing_justification
  | Unanalyzed_module
  | Baseline_drift

let rule_slug = function
  | Secret_branch -> "secret-branch"
  | Secret_length -> "secret-length"
  | Effectful_call -> "effectful-call"
  | Secret_exception -> "secret-exception"
  | Secret_telemetry -> "secret-telemetry"
  | Secret_alloc -> "secret-alloc"
  | Secret_loop -> "secret-loop"
  | Secret_compare -> "secret-compare"
  | Missing_justification -> "missing-justification"
  | Unanalyzed_module -> "unanalyzed-module"
  | Baseline_drift -> "baseline-drift"

let all_rules =
  [ Secret_branch; Secret_length; Effectful_call; Secret_exception; Secret_telemetry;
    Secret_alloc; Secret_loop; Secret_compare; Missing_justification;
    Unanalyzed_module; Baseline_drift ]

let rule_help = function
  | Secret_branch -> "if/match/while guard or for bound steered by secret-derived data"
  | Secret_length -> "secret-dependent allocation size or variable-width encoding"
  | Effectful_call -> "oblivious code calling an ambient-effect function"
  | Secret_exception -> "secret-derived data embedded in an abort/exception payload"
  | Secret_telemetry ->
      "secret-derived data recorded through an Obs telemetry sink, or a metric \
       update under secret-dependent control flow"
  | Secret_alloc ->
      "heap allocation under secret-dependent control flow (allocation volume is \
       exported in profiles)"
  | Secret_loop -> "loop trip count (iterator over a container) depends on secrets"
  | Secret_compare ->
      "polymorphic compare, physical equality or Hashtbl.hash applied to a \
       non-immediate secret value (variable-time structural walk)"
  | Missing_justification -> "[@leak_ok] without a non-empty reason string"
  | Unanalyzed_module ->
      "module reachable from an [@@oblivious] entrypoint was not part of the \
       analyzed surface"
  | Baseline_drift ->
      "justified-site count diverged from the checked-in lint baseline"

(* One step of an interprocedural trace: either a call site or the final
   sink.  [fr_note] is a short taint-free description ("calls X", or the
   sink phrase). *)
type frame = { fr_func : string; fr_file : string; fr_line : int; fr_col : int; fr_note : string }

type t = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  func : string; (* enclosing [@@oblivious] binding *)
  message : string;
  chain : frame list; (* non-empty for interprocedural findings *)
}

let of_location ?(chain = []) ~rule ~func ~message (loc : Location.t) =
  let p = loc.Location.loc_start in
  { file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    func;
    message;
    chain }

let frame_of_location ~func ~note (loc : Location.t) =
  let p = loc.Location.loc_start in
  { fr_func = func;
    fr_file = p.Lexing.pos_fname;
    fr_line = p.Lexing.pos_lnum;
    fr_col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    fr_note = note }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> Stdlib.compare (rule_slug a.rule) (rule_slug b.rule)
          | c -> c)
      | c -> c)
  | c -> c

(* Line numbers drift with every edit, so the baseline matches findings on
   everything *except* position inside the file. *)
let fingerprint t =
  String.concat "|" [ rule_slug t.rule; t.file; t.func; t.message ]

let pp_chain ppf chain =
  List.iter
    (fun f ->
      Format.fprintf ppf "@,    %s (%s:%d): %s" f.fr_func f.fr_file f.fr_line f.fr_note)
    chain

let pp ppf t =
  Format.fprintf ppf "@[<v>%s:%d:%d: [%s] in %s: %s%a@]" t.file t.line t.col
    (rule_slug t.rule) t.func t.message pp_chain t.chain

(* One audit entry per [@@oblivious] binding: what the analyzer saw. *)
type audit = {
  a_file : string;
  a_line : int;
  a_func : string;
  secrets : string list; (* [@secret] sources in scope *)
  justified : int; (* findings silenced by a justified [@leak_ok] *)
  flagged : int; (* findings actually reported *)
}

let pp_audit ppf a =
  Format.fprintf ppf "%s:%d: %s  secrets=[%s]  justified=%d  flagged=%d" a.a_file a.a_line
    a.a_func
    (String.concat ", " a.secrets)
    a.justified a.flagged
