type rule =
  | Secret_branch
  | Secret_length
  | Effectful_call
  | Secret_exception
  | Secret_telemetry
  | Missing_justification

let rule_slug = function
  | Secret_branch -> "secret-branch"
  | Secret_length -> "secret-length"
  | Effectful_call -> "effectful-call"
  | Secret_exception -> "secret-exception"
  | Secret_telemetry -> "secret-telemetry"
  | Missing_justification -> "missing-justification"

type t = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  func : string; (* enclosing [@@oblivious] binding *)
  message : string;
}

let of_location ~rule ~func ~message (loc : Location.t) =
  let p = loc.Location.loc_start in
  { file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    func;
    message }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> Int.compare a.col b.col
      | c -> c)
  | c -> c

let pp ppf t =
  Format.fprintf ppf "%s:%d:%d: [%s] in %s: %s" t.file t.line t.col (rule_slug t.rule)
    t.func t.message

(* One audit entry per [@@oblivious] binding: what the analyzer saw. *)
type audit = {
  a_file : string;
  a_line : int;
  a_func : string;
  secrets : string list; (* [@secret] sources in scope *)
  justified : int; (* findings silenced by a justified [@leak_ok] *)
  flagged : int; (* findings actually reported *)
}

let pp_audit ppf a =
  Format.fprintf ppf "%s:%d: %s  secrets=[%s]  justified=%d  flagged=%d" a.a_file a.a_line
    a.a_func
    (String.concat ", " a.secrets)
    a.justified a.flagged
