(** Checked-in lint baseline: accepted finding fingerprints plus the
    per-function justified-site ratchet ([lint-baseline.json]). *)

type t

val empty : t

val of_string : string -> (t, string) result
val load : string -> (t, string) result

val write : string -> Finding.t list -> Finding.audit list -> unit
(** Regenerate the baseline file from the current report
    ([--write-baseline]). *)

type applied = {
  kept : Finding.t list;  (** findings not covered by the baseline *)
  suppressed : int;  (** findings matched by the accepted list *)
  drift : Finding.t list;  (** stale entries / justified-count mismatches *)
}

val apply :
  t -> baseline_file:string -> Finding.t list -> Finding.audit list -> applied
