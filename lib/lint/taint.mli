(** Taint-based obliviousness analysis over the typedtree.

    [analyze_structure] scans an implementation for value bindings marked
    [\@\@oblivious], seeds taint at patterns marked [\@secret], and returns
    the findings together with one audit record per checked binding.  See
    DESIGN.md §4 for the rule set and annotation conventions. *)

val analyze_structure : Typedtree.structure -> Finding.t list * Finding.audit list

(** {2 Callee classification — exposed for unit tests} *)

val normalize : (string * string) list -> string -> string
(** [normalize aliases name] expands a leading module alias and strips the
    [Stdlib.] prefix, e.g. [normalize ["W", "Psp_util.Byte_io.Writer"]
    "W.varint" = "Psp_util.Byte_io.Writer.varint"]. *)

val denylisted : string -> bool
(** Ambient-effect functions oblivious code must not call. *)

val length_sensitive : string -> int option
(** [Some i] when argument [i] of the named function determines an
    allocation or encoding length. *)

val mutator : string -> int option
(** [Some i] when the named function mutates its [i]-th argument with the
    other arguments' data (container writes propagate taint). *)

val telemetry : string -> int list option
(** [Some idxs] when the named function is a [lib/obs] telemetry sink;
    [idxs] are the recorded-payload arguments (instrument names and
    recorded values).  A tainted payload — or any sink call made under
    secret-dependent control flow — is a [secret-telemetry] finding. *)
