(** Taint-based obliviousness analysis over the typedtree.

    [analyze_structure] scans an implementation for value bindings marked
    [\@\@oblivious], seeds taint at patterns marked [\@secret], and returns
    the findings together with one audit record per checked binding.  See
    DESIGN.md §4 for the rule set and annotation conventions.

    The per-binding analysis consults an {!env} of interprocedural
    {!summary} values (computed by [Summary] to a whole-program fixpoint):
    a tainted argument whose summary reaches an observable sink becomes a
    finding at the call site, carrying the cross-module call chain. *)

(** {2 Interprocedural summaries} *)

type sink = {
  sk_param : int;  (** -1: ambient — reached regardless of the arguments *)
  sk_rule : Finding.rule;
  sk_short : string;  (** taint-free phrase describing the sink *)
  sk_chain : Finding.frame list;  (** call path from the callee to the sink *)
}

type summary = {
  sum_name : string;  (** canonical fq name *)
  sum_arity : int;  (** peeled leading parameters *)
  sum_ret_params : int list;  (** params flowing into the return value *)
  sum_sinks : sink list;
  sum_mutations : (int * int list) list;  (** param [i] absorbs params [js] *)
}

type env = {
  lookup : current:string -> string -> summary option;
  ty_abbrev : current:string -> string -> Types.type_expr option;
      (** type-abbreviation manifests (see [Callgraph.abbrev]), consulted
          by the [secret-compare] immediate-type exemption so aliases of
          immediates ([type id = int]) are not flagged *)
}

val empty_env : env

val param_token : int -> string
(** The taint token standing for "parameter [i]" during summary extraction. *)

val summarize : env:env -> Callgraph.fn -> summary
(** Seed every leading parameter with a token, run the analysis, and read
    off return flows, parameter-to-sink flows (with chains), ambient
    effects and parameter-mutation flows. *)

val summary_shape : summary -> int list * (int * Finding.rule) list * (int * int list) list
(** Convergence measure for the interprocedural fixpoint: which flows
    exist, ignoring chains and wording. *)

(** {2 Per-binding and per-structure analysis} *)

val analyze_binding :
  ?env:env ->
  ?prefix:string ->
  ?abbrevs:(string * Types.type_expr) list ->
  ?func:string ->
  aliases:(string * string) list ->
  Typedtree.value_binding ->
  Finding.t list * Finding.audit
(** Analyze one binding (regardless of its attributes). [func] overrides
    the display name; [prefix] is the enclosing module path used to
    resolve summaries for unqualified callees; [abbrevs] are file-local
    type-abbreviation manifests for the [secret-compare] exemption. *)

val analyze_structure :
  ?env:env -> Typedtree.structure -> Finding.t list * Finding.audit list
(** Per-module mode: every [\@\@oblivious] binding in the structure, with
    file-local naming ([Session.fetch]-style for nested modules). *)

val analyze_fn : env:env -> Callgraph.fn -> Finding.t list * Finding.audit
(** Whole-program mode: analyze one indexed function under its fully
    qualified name with an interprocedural environment. *)

(** {2 Callee classification — exposed for unit tests} *)

val normalize : (string * string) list -> string -> string
(** [normalize aliases name] expands a leading module alias and strips the
    [Stdlib.] prefix, e.g. [normalize ["W", "Psp_util.Byte_io.Writer"]
    "W.varint" = "Psp_util.Byte_io.Writer.varint"]. *)

val denylisted : string -> bool
(** Ambient-effect functions oblivious code must not call. *)

val length_sensitive : string -> int option
(** [Some i] when argument [i] of the named function determines an
    allocation or encoding length. *)

val mutator : string -> int option
(** [Some i] when the named function mutates its [i]-th argument with the
    other arguments' data (container writes propagate taint). *)

val telemetry : string -> int list option
(** [Some idxs] when the named function is a [lib/obs] telemetry sink;
    [idxs] are the recorded-payload arguments (instrument names and
    recorded values).  A tainted payload — or any sink call made under
    secret-dependent control flow — is a [secret-telemetry] finding. *)

val iterator : string -> int option
(** [Some i] when argument [i] of the named function is a container whose
    length determines the trip count (the [secret-loop] rule). *)

val compare_like : string -> bool
(** Polymorphic compare / physical equality / [Hashtbl.hash] — the
    [secret-compare] rule, modulo the immediate-type exemption. *)
