(* SARIF 2.1.0 emission.

   One run, one driver ("psplint"), the full rule catalog, one result
   per finding.  Interprocedural findings additionally carry a codeFlow
   whose single threadFlow walks the call chain from the flagged call
   site down to the sink — GitHub code scanning renders it as the
   "path" view.  partialFingerprints carries the same line-independent
   fingerprint the baseline uses, so alert identity survives edits. *)

module J = Psp_obs.Json

let version = "0.2.0"
let schema = "https://json.schemastore.org/sarif-2.1.0.json"

let rule_index =
  let tbl = List.mapi (fun i r -> (r, i)) Finding.all_rules in
  fun r -> List.assq r tbl

let rule_obj r =
  J.Obj
    [ ("id", J.String (Finding.rule_slug r));
      ("name", J.String (Finding.rule_slug r));
      ("shortDescription", J.Obj [ ("text", J.String (Finding.rule_help r)) ]);
      ( "defaultConfiguration",
        J.Obj [ ("level", J.String "error") ] ) ]

(* SARIF regions are 1-based; findings carry 0-based columns. *)
let physical_location ~file ~line ~col =
  J.Obj
    [ ("artifactLocation", J.Obj [ ("uri", J.String file) ]);
      ( "region",
        J.Obj
          [ ("startLine", J.Int (max 1 line)); ("startColumn", J.Int (col + 1)) ] ) ]

let location ?message ~func ~file ~line ~col () =
  let base =
    [ ("physicalLocation", physical_location ~file ~line ~col);
      ( "logicalLocations",
        J.List [ J.Obj [ ("fullyQualifiedName", J.String func) ] ] ) ]
  in
  let base =
    match message with
    | None -> base
    | Some text -> base @ [ ("message", J.Obj [ ("text", J.String text) ]) ]
  in
  J.Obj base

let thread_flow_location (fr : Finding.frame) =
  J.Obj
    [ ( "location",
        location ~message:fr.fr_note ~func:fr.fr_func ~file:fr.fr_file
          ~line:fr.fr_line ~col:fr.fr_col () ) ]

let code_flows (f : Finding.t) =
  match f.chain with
  | [] -> []
  | chain ->
      [ ( "codeFlows",
          J.List
            [ J.Obj
                [ ( "threadFlows",
                    J.List
                      [ J.Obj
                          [ ( "locations",
                              J.List (List.map thread_flow_location chain) ) ] ] )
                ] ] ) ]

let result (f : Finding.t) =
  J.Obj
    ([ ("ruleId", J.String (Finding.rule_slug f.rule));
       ("ruleIndex", J.Int (rule_index f.rule));
       ("level", J.String "error");
       ("message", J.Obj [ ("text", J.String f.message) ]);
       ( "locations",
         J.List [ location ~func:f.func ~file:f.file ~line:f.line ~col:f.col () ] );
       ( "partialFingerprints",
         J.Obj [ ("psplint/v1", J.String (Finding.fingerprint f)) ] ) ]
    @ code_flows f)

let render (findings : Finding.t list) =
  J.Obj
    [ ("$schema", J.String schema);
      ("version", J.String "2.1.0");
      ( "runs",
        J.List
          [ J.Obj
              [ ( "tool",
                  J.Obj
                    [ ( "driver",
                        J.Obj
                          [ ("name", J.String "psplint");
                            ("version", J.String version);
                            ( "informationUri",
                              J.String "https://example.invalid/psplint" );
                            ("rules", J.List (List.map rule_obj Finding.all_rules))
                          ] ) ] );
                ("results", J.List (List.map result findings)) ] ] ) ]

let write path findings =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (J.to_string_pretty (render findings));
      Out_channel.output_char oc '\n')
