(* Taint-based obliviousness analysis over the typedtree.

   Functions marked [@@oblivious] are checked: parameters (or any
   pattern) marked [@secret] seed the taint, which propagates through
   lets, applications, data-structure construction, known container
   mutators and control dependence (anything bound or assigned under a
   secret-steered branch is itself secret).  Reported:

   - secret-branch:     if / match / while guard / for bound steered by taint
   - secret-length:     tainted size argument to an allocation, or a
                        variable-length encoder (varint) fed a tainted value
   - effectful-call:    calls into ambient-effect APIs (I/O, clocks,
                        randomness, process state) from oblivious code
   - secret-exception:  tainted payload handed to raise/failwith/invalid_arg
   - missing-justification: a [@leak_ok] escape hatch without a reason

   A finding inside [(e [@leak_ok "reason"])] (or under a binding carrying
   the attribute) is counted as justified instead of reported; the reason
   string is mandatory.  The analysis is intraprocedural: local closures
   taking secrets must mark their own parameters [@secret]. *)

module SSet = Set.Make (String)
module IMap = Map.Make (struct
  type t = Ident.t

  let compare = Ident.compare
end)

(* ------------------------------------------------------------------ *)
(* Attribute helpers *)

let attr_names = List.map (fun (a : Parsetree.attribute) -> a.attr_name.txt)
let has_attr name attrs = List.mem name (attr_names attrs)

let string_payload (a : Parsetree.attribute) =
  match a.attr_payload with
  | Parsetree.PStr
      [ { pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _ } ] ->
      Some s
  | _ -> None

(* [@leak_ok "reason"] -> `Justified; [@leak_ok] / [@leak_ok ""] -> `Unjustified
   (with the attribute's location); no attribute -> `Absent. *)
let leak_ok attrs =
  match
    List.find_opt (fun (a : Parsetree.attribute) -> a.attr_name.txt = "leak_ok") attrs
  with
  | None -> `Absent
  | Some a -> (
      match string_payload a with
      | Some s when String.trim s <> "" -> `Justified
      | _ -> `Unjustified a.Parsetree.attr_loc)

(* ------------------------------------------------------------------ *)
(* Callee tables.  Names are matched after alias expansion and after
   stripping the [Stdlib.] prefix. *)

(* Entries ending in '.' or '_' are prefixes, others match exactly. *)
let denylist =
  [ "Printf.printf";
    "Printf.eprintf";
    "Printf.fprintf";
    "Format.printf";
    "Format.eprintf";
    "Format.fprintf";
    "print_";
    "prerr_";
    "output_";
    "input_";
    "really_input";
    "read_line";
    "read_int";
    "read_float";
    "open_";
    "close_in";
    "close_out";
    "flush";
    "flush_all";
    "exit";
    "at_exit";
    "Sys.";
    "Unix.";
    "Random.";
    "Out_channel.";
    "In_channel.";
    "Gc.";
    "Domain.";
    "Thread.";
    "Mutex.";
    "Condition.";
    "Event.";
    "Filename.temp_" ]

let denylisted name =
  List.exists
    (fun entry ->
      let n = String.length entry in
      if n > 0 && (entry.[n - 1] = '.' || entry.[n - 1] = '_') then
        String.length name >= n && String.sub name 0 n = entry
      else name = entry)
    denylist

(* (suffix, index of the length-determining argument) *)
let length_sensitive_table =
  [ ("Bytes.create", 0);
    ("Bytes.make", 0);
    ("String.make", 0);
    ("Array.make", 0);
    ("Array.init", 0);
    ("Array.create_float", 0);
    ("List.init", 0);
    ("Buffer.create", 0);
    ("Byte_io.Writer.varint", 1);
    ("Byte_io.Writer.bytes", 1);
    ("Byte_io.varint_size", 0) ]

(* (suffix, index of the mutated container argument) *)
let mutator_table =
  [ ("Hashtbl.replace", 0);
    ("Hashtbl.add", 0);
    ("Hashtbl.remove", 0);
    ("Dyn_array.push", 0);
    ("Min_heap.push", 0);
    ("Buffer.add_string", 0);
    ("Buffer.add_bytes", 0);
    ("Buffer.add_char", 0);
    ("Queue.add", 1);
    ("Queue.push", 1);
    ("Stack.push", 1);
    ("Bytes.set", 0);
    ("Bytes.blit", 2);
    ("Bytes.fill", 0);
    ("Array.set", 0);
    ("Array.blit", 2);
    ("Array.fill", 0) ]

(* (suffix, indices of the recorded-payload arguments).  Telemetry
   sinks: everything reaching lib/obs is published to the (adversarial)
   server operator, so a tainted payload — or any metric update made
   under secret control, which publishes the branch taken — leaks.
   Instrument names (argument 0 of the intern functions) are included:
   a secret-derived metric name leaks through the registry keys. *)
let telemetry_table =
  [ ("Obs.counter", [ 0 ]);
    ("Obs.gauge", [ 0 ]);
    ("Obs.histogram", [ 0 ]);
    ("Obs.incr", []);
    ("Obs.add", [ 1 ]);
    ("Obs.set", [ 1 ]);
    ("Obs.observe", [ 1 ]);
    ("Obs.add_pages", [ 0 ]);
    ("Obs.enter", [ 0 ]);
    ("Obs.exit", []);
    ("Obs.with_span", [ 0 ]) ]

let suffix_match table name =
  List.find_map
    (fun (suffix, v) ->
      let n = String.length name and s = String.length suffix in
      if name = suffix then Some v
      else if n > s && String.sub name (n - s) s = suffix && name.[n - s - 1] = '.' then
        Some v
      else None)
    table

let length_sensitive name = suffix_match length_sensitive_table name
let mutator name = suffix_match mutator_table name
let telemetry name = suffix_match telemetry_table name
let raise_like = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

let strip_stdlib name =
  let prefix = "Stdlib." in
  if String.length name > 7 && String.sub name 0 7 = prefix then
    String.sub name 7 (String.length name - 7)
  else name

(* Expand a leading module alias (collected from `module X = Path` items
   in the same file), repeatedly, then strip [Stdlib.]. *)
let normalize aliases name =
  let rec expand fuel name =
    if fuel = 0 then name
    else
      match String.index_opt name '.' with
      | None -> name
      | Some i -> (
          let head = String.sub name 0 i in
          match List.assoc_opt head aliases with
          | Some expansion ->
              expand (fuel - 1) (expansion ^ String.sub name i (String.length name - i))
          | None -> name)
  in
  strip_stdlib (expand 8 name)

(* ------------------------------------------------------------------ *)
(* The analysis proper *)

type state = {
  mutable vars : SSet.t IMap.t; (* ident -> secret sources it derives from *)
  mutable changed : bool;
  mutable findings : Finding.t list;
  mutable justified : int;
  mutable flagged : int;
  mutable secrets : SSet.t; (* all seeds seen in this binding *)
  aliases : (string * string) list;
  func : string;
}

let taint_of st id = Option.value ~default:SSet.empty (IMap.find_opt id st.vars)

let add_taint st id t =
  if not (SSet.is_empty t) then begin
    let old = taint_of st id in
    let merged = SSet.union old t in
    if not (SSet.equal old merged) then begin
      st.vars <- IMap.add id merged st.vars;
      st.changed <- true
    end
  end

let describe t = String.concat ", " (SSet.elements t)

let report st ~emit ~suppressed rule loc message =
  if emit then
    if suppressed then st.justified <- st.justified + 1
    else begin
      st.flagged <- st.flagged + 1;
      st.findings <-
        Finding.of_location ~rule ~func:st.func ~message loc :: st.findings
    end

(* Root identifier of an lvalue-ish expression: strips field projections
   so that `t.shelter` mutations taint `t`. *)
let rec root_ident (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Some id
  | Texp_field (e, _, _) -> root_ident e
  | _ -> None

let seed_pattern (type k) st (p : k Typedtree.general_pattern) =
  let seen_secret = ref false in
  let mark (type k) (p : k Typedtree.general_pattern) =
    if has_attr "secret" p.Typedtree.pat_attributes then begin
      seen_secret := true;
      List.iter
        (fun id ->
          let name = Ident.name id in
          st.secrets <- SSet.add name st.secrets;
          add_taint st id (SSet.singleton name))
        (Typedtree.pat_bound_idents p)
    end
  in
  let it =
    { Tast_iterator.default_iterator with
      pat =
        (fun sub p ->
          mark p;
          Tast_iterator.default_iterator.pat sub p) }
  in
  it.pat it p;
  !seen_secret

(* Bind every variable of [p] with taint [t] (plus any [@secret] seeds). *)
let bind_pattern (type k) st (p : k Typedtree.general_pattern) t =
  ignore (seed_pattern st p);
  List.iter (fun id -> add_taint st id t) (Typedtree.pat_bound_idents p)

let callee_name st (fn : Typedtree.expression) =
  match fn.exp_desc with
  | Texp_ident (path, _, _) -> Some (normalize st.aliases (Path.name path))
  | _ -> None

(* [eval st ~emit ~suppressed ~ct e] returns the secret sources the value
   of [e] may derive from.  [ct] is the control taint: sources steering
   the branches enclosing [e].  [emit] is false during fixpoint rounds;
   [suppressed] is true under a justified [@leak_ok]. *)
let rec eval st ~emit ~suppressed ~ct (e : Typedtree.expression) =
  let suppressed =
    match leak_ok e.exp_attributes with
    | `Justified -> true
    | `Unjustified loc ->
        report st ~emit ~suppressed:false Finding.Missing_justification loc
          "[@leak_ok] requires a non-empty justification string";
        suppressed
    | `Absent -> suppressed
  in
  let eval1 = eval st ~emit ~suppressed ~ct in
  let eval_opt = function None -> SSet.empty | Some e -> eval1 e in
  let union_all = List.fold_left (fun acc e -> SSet.union acc (eval1 e)) SSet.empty in
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> taint_of st id
  | Texp_ident _ | Texp_constant _ | Texp_unreachable | Texp_instvar _
  | Texp_extension_constructor _ | Texp_new _ ->
      SSet.empty
  | Texp_let (_, vbs, body) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          let suppressed =
            match leak_ok vb.vb_attributes with
            | `Justified -> true
            | `Unjustified loc ->
                report st ~emit ~suppressed:false Finding.Missing_justification loc
                  "[@leak_ok] requires a non-empty justification string";
                suppressed
            | `Absent -> suppressed
          in
          let t = eval st ~emit ~suppressed ~ct vb.vb_expr in
          bind_pattern st vb.vb_pat (SSet.union t ct))
        vbs;
      eval1 body
  | Texp_function { cases; _ } ->
      (* Analyze the body inline; the closure's own taint is whatever its
         body may evaluate to, so applying it propagates captured secrets. *)
      cases_taint st ~emit ~suppressed ~ct ~scrutinee:SSet.empty cases
  | Texp_apply (fn, args) ->
      let fn_taint = eval1 fn in
      let arg_exprs = List.filter_map (fun (_, a) -> a) args in
      let arg_taints = List.map eval1 arg_exprs in
      let name = callee_name st fn in
      let nth_taint i =
        match List.nth_opt arg_taints i with Some t -> t | None -> SSet.empty
      in
      let nth_arg i = List.nth_opt arg_exprs i in
      (match name with
      | None -> ()
      | Some name ->
          if denylisted name then
            report st ~emit ~suppressed Finding.Effectful_call e.exp_loc
              (Printf.sprintf "call to ambient-effect function %s from oblivious code"
                 name);
          (match length_sensitive name with
          | Some i when not (SSet.is_empty (nth_taint i)) ->
              report st ~emit ~suppressed Finding.Secret_length e.exp_loc
                (Printf.sprintf "length given to %s depends on secrets: %s" name
                   (describe (nth_taint i)))
          | _ -> ());
          (match mutator name with
          | Some i -> (
              let payload =
                List.fold_left SSet.union ct
                  (List.filteri (fun j _ -> j <> i) arg_taints)
              in
              match nth_arg i with
              | Some container when not (SSet.is_empty payload) -> (
                  match root_ident container with
                  | Some id -> add_taint st id payload
                  | None -> ())
              | _ -> ())
          | None -> ());
          (match telemetry name with
          | Some payload_idxs ->
              let payload =
                List.fold_left
                  (fun acc i -> SSet.union acc (nth_taint i))
                  SSet.empty payload_idxs
              in
              if not (SSet.is_empty payload) then
                report st ~emit ~suppressed Finding.Secret_telemetry e.exp_loc
                  (Printf.sprintf "value recorded via %s depends on secrets: %s" name
                     (describe payload))
              else if not (SSet.is_empty ct) then
                report st ~emit ~suppressed Finding.Secret_telemetry e.exp_loc
                  (Printf.sprintf
                     "metric update %s under secret-dependent control flow: %s" name
                     (describe ct))
          | None -> ());
          if List.mem name raise_like then begin
            let payload = List.fold_left SSet.union SSet.empty arg_taints in
            if not (SSet.is_empty payload) then
              report st ~emit ~suppressed Finding.Secret_exception e.exp_loc
                (Printf.sprintf "exception payload carries secrets: %s"
                   (describe payload))
          end;
          (* assignment through a reference *)
          if name = ":=" || name = "incr" || name = "decr" then begin
            let payload =
              SSet.union ct
                (match name with ":=" -> nth_taint 1 | _ -> SSet.empty)
            in
            match Option.bind (nth_arg 0) root_ident with
            | Some id -> add_taint st id payload
            | None -> ()
          end);
      List.fold_left SSet.union fn_taint arg_taints
  | Texp_match (scrut, cases, _) ->
      let t = eval1 scrut in
      if (not (SSet.is_empty t)) && not (trivial_match cases) then
        report st ~emit ~suppressed Finding.Secret_branch e.exp_loc
          (Printf.sprintf "match scrutinee depends on secrets: %s" (describe t));
      SSet.union t
        (cases_taint st ~emit ~suppressed ~ct:(SSet.union ct t) ~scrutinee:t cases)
  | Texp_try (body, cases) ->
      let t = eval1 body in
      SSet.union t (cases_taint st ~emit ~suppressed ~ct ~scrutinee:t cases)
  | Texp_ifthenelse (cond, th, el) ->
      let t = eval1 cond in
      if not (SSet.is_empty t) then
        report st ~emit ~suppressed Finding.Secret_branch e.exp_loc
          (Printf.sprintf "conditional guard depends on secrets: %s" (describe t));
      let ct' = SSet.union ct t in
      let tb = eval st ~emit ~suppressed ~ct:ct' th in
      let eb =
        match el with
        | None -> SSet.empty
        | Some el -> eval st ~emit ~suppressed ~ct:ct' el
      in
      SSet.union t (SSet.union tb eb)
  | Texp_while (cond, body) ->
      let t = eval1 cond in
      if not (SSet.is_empty t) then
        report st ~emit ~suppressed Finding.Secret_branch e.exp_loc
          (Printf.sprintf "while-loop guard depends on secrets: %s" (describe t));
      ignore (eval st ~emit ~suppressed ~ct:(SSet.union ct t) body);
      SSet.empty
  | Texp_for (id, _, lo, hi, _, body) ->
      let t = SSet.union (eval1 lo) (eval1 hi) in
      if not (SSet.is_empty t) then
        report st ~emit ~suppressed Finding.Secret_branch e.exp_loc
          (Printf.sprintf "for-loop bound depends on secrets: %s" (describe t));
      add_taint st id (SSet.union ct t);
      ignore (eval st ~emit ~suppressed ~ct:(SSet.union ct t) body);
      SSet.empty
  | Texp_sequence (a, b) ->
      ignore (eval1 a);
      eval1 b
  | Texp_tuple es | Texp_array es -> union_all es
  | Texp_construct (_, _, es) -> union_all es
  | Texp_variant (_, eo) -> eval_opt eo
  | Texp_record { fields; extended_expression; _ } ->
      let t =
        Array.fold_left
          (fun acc (_, def) ->
            match def with
            | Typedtree.Overridden (_, e) -> SSet.union acc (eval1 e)
            | Typedtree.Kept _ -> acc)
          SSet.empty fields
      in
      SSet.union t (eval_opt extended_expression)
  | Texp_field (e, _, _) -> eval1 e
  | Texp_setfield (target, _, _, value) ->
      let tv = SSet.union ct (eval1 value) in
      ignore (eval1 target);
      (match root_ident target with
      | Some id -> add_taint st id tv
      | None -> ());
      SSet.empty
  | Texp_assert (cond, _) ->
      let t = eval1 cond in
      if not (SSet.is_empty t) then
        report st ~emit ~suppressed Finding.Secret_branch e.exp_loc
          (Printf.sprintf "assertion depends on secrets: %s" (describe t));
      SSet.empty
  | Texp_lazy e -> eval1 e
  | Texp_letmodule (_, _, _, _, body) | Texp_open (_, body) -> eval1 body
  | Texp_letexception (_, body) -> eval1 body
  | Texp_letop { let_; ands; body; _ } ->
      let t =
        List.fold_left
          (fun acc (bop : Typedtree.binding_op) -> SSet.union acc (eval1 bop.bop_exp))
          (eval1 let_.bop_exp) ands
      in
      bind_pattern st body.c_lhs (SSet.union ct t);
      SSet.union t (eval1 body.c_rhs)
  | Texp_send (obj, _) -> eval1 obj
  | Texp_setinstvar (_, _, _, e) ->
      ignore (eval1 e);
      SSet.empty
  | Texp_override (_, overrides) ->
      List.fold_left (fun acc (_, _, e) -> SSet.union acc (eval1 e)) SSet.empty overrides
  | Texp_object _ | Texp_pack _ -> SSet.empty

and cases_taint :
    type k.
    state ->
    emit:bool ->
    suppressed:bool ->
    ct:SSet.t ->
    scrutinee:SSet.t ->
    k Typedtree.case list ->
    SSet.t =
 fun st ~emit ~suppressed ~ct ~scrutinee cases ->
  List.fold_left
    (fun acc (c : _ Typedtree.case) ->
      bind_pattern st c.c_lhs (SSet.union ct scrutinee);
      (match c.c_guard with Some g -> ignore (eval st ~emit ~suppressed ~ct g) | None -> ());
      SSet.union acc (eval st ~emit ~suppressed ~ct c.c_rhs))
    SSet.empty cases

(* `match e with x -> ...` with a single catch-all value case selects
   nothing, so a tainted scrutinee is not a branch leak there. *)
and trivial_match (cases : Typedtree.computation Typedtree.case list) =
  match cases with
  | [ { c_lhs = { pat_desc = Tpat_value arg; _ }; c_guard = None; _ } ] -> (
      match (arg :> Typedtree.pattern).pat_desc with
      | Typedtree.Tpat_var _ | Typedtree.Tpat_any -> true
      | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Structure walking *)

let analyze_binding ~aliases (vb : Typedtree.value_binding) =
  let func =
    match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) -> Ident.name id
    | _ -> "<binding>"
  in
  let st =
    { vars = IMap.empty;
      changed = false;
      findings = [];
      justified = 0;
      flagged = 0;
      secrets = SSet.empty;
      aliases;
      func }
  in
  let suppressed =
    match leak_ok vb.vb_attributes with
    | `Justified -> true
    | `Unjustified _ | `Absent -> false
  in
  (* Fixpoint: back edges (refs mutated under secret control read earlier
     in the loop body) need repeated rounds before reporting. *)
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < 16 do
    st.changed <- false;
    ignore (eval st ~emit:false ~suppressed ~ct:SSet.empty vb.vb_expr);
    incr rounds;
    if not st.changed then continue_ := false
  done;
  ignore (eval st ~emit:true ~suppressed ~ct:SSet.empty vb.vb_expr);
  let audit =
    { Finding.a_file = vb.vb_loc.loc_start.pos_fname;
      a_line = vb.vb_loc.loc_start.pos_lnum;
      a_func = func;
      secrets = SSet.elements st.secrets;
      justified = st.justified;
      flagged = st.flagged }
  in
  (List.rev st.findings, audit)

let rec analyze_items ~aliases items =
  let findings = ref [] and audits = ref [] in
  let aliases = ref aliases in
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              if has_attr "oblivious" vb.vb_attributes then begin
                let fs, a = analyze_binding ~aliases:!aliases vb in
                findings := !findings @ fs;
                audits := !audits @ [ a ]
              end)
            vbs
      | Tstr_module mb -> (
          match module_payload mb with
          | `Alias (name, target) -> aliases := (name, target) :: !aliases
          | `Structure (name, items) ->
              let fs, au = analyze_items ~aliases:!aliases items in
              let qualify (f : Finding.t) = { f with func = name ^ "." ^ f.func } in
              findings := !findings @ List.map qualify fs;
              audits :=
                !audits
                @ List.map
                    (fun (a : Finding.audit) ->
                      { a with Finding.a_func = name ^ "." ^ a.a_func })
                    au
          | `Other -> ())
      | Tstr_recmodule mbs ->
          List.iter
            (fun mb ->
              match module_payload mb with
              | `Structure (name, items) ->
                  let fs, au = analyze_items ~aliases:!aliases items in
                  findings :=
                    !findings
                    @ List.map (fun (f : Finding.t) -> { f with func = name ^ "." ^ f.func }) fs;
                  audits :=
                    !audits
                    @ List.map
                        (fun (a : Finding.audit) ->
                          { a with Finding.a_func = name ^ "." ^ a.a_func })
                        au
              | _ -> ())
            mbs
      | _ -> ())
    items;
  (!findings, !audits)

and module_payload (mb : Typedtree.module_binding) =
  let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
  let rec strip (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_constraint (me, _, _, _) -> strip me
    | desc -> desc
  in
  match strip mb.mb_expr with
  | Tmod_ident (p, _) -> `Alias (name, Path.name p)
  | Tmod_structure { str_items; _ } -> `Structure (name, str_items)
  | _ -> `Other

let analyze_structure (str : Typedtree.structure) =
  analyze_items ~aliases:[] str.str_items
