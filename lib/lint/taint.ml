(* Taint-based obliviousness analysis over the typedtree.

   Functions marked [@@oblivious] are checked: parameters (or any
   pattern) marked [@secret] seed the taint, which propagates through
   lets, applications, data-structure construction, known container
   mutators and control dependence (anything bound or assigned under a
   secret-steered branch is itself secret).  Reported:

   - secret-branch:     if / match / while guard / for bound steered by taint
   - secret-length:     tainted size argument to an allocation, or a
                        variable-length encoder (varint) fed a tainted value
   - secret-alloc:      a heap allocation sitting under secret-dependent
                        control flow (allocation volume is profiled)
   - secret-loop:       an iterator walking a container whose taint — and
                        hence length / trip count — derives from secrets
   - secret-compare:    polymorphic compare, physical equality or
                        [Hashtbl.hash] on non-immediate secret values
   - effectful-call:    calls into ambient-effect APIs (I/O, clocks,
                        randomness, process state) from oblivious code
   - secret-exception:  tainted payload handed to raise/failwith/invalid_arg
   - missing-justification: a [@leak_ok] escape hatch without a reason

   A finding inside [(e [@leak_ok "reason"])] (or under a binding carrying
   the attribute) is counted as justified instead of reported; the reason
   string is mandatory.

   The per-binding analysis is intraprocedural, but it consults an
   [env]: a lookup of interprocedural *summaries* (computed by
   [Summary], to a fixpoint over the whole program) describing, for each
   known function, which parameters flow to its return value, which
   parameters reach an observable sink (with the full call chain), which
   parameters absorb other parameters by mutation, and whether the
   function performs ambient effects unconditionally.  A tainted
   argument at a call site whose summary reaches a sink becomes a
   finding *at the call site*, carrying the cross-module chain. *)

module SSet = Set.Make (String)
module IMap = Map.Make (struct
  type t = Ident.t

  let compare = Ident.compare
end)

(* ------------------------------------------------------------------ *)
(* Attribute helpers *)

let attr_names = List.map (fun (a : Parsetree.attribute) -> a.attr_name.txt)
let has_attr name attrs = List.mem name (attr_names attrs)

let string_payload (a : Parsetree.attribute) =
  match a.attr_payload with
  | Parsetree.PStr
      [ { pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _ } ] ->
      Some s
  | _ -> None

(* [@leak_ok "reason"] -> `Justified; [@leak_ok] / [@leak_ok ""] -> `Unjustified
   (with the attribute's location); no attribute -> `Absent. *)
let leak_ok attrs =
  match
    List.find_opt (fun (a : Parsetree.attribute) -> a.attr_name.txt = "leak_ok") attrs
  with
  | None -> `Absent
  | Some a -> (
      match string_payload a with
      | Some s when String.trim s <> "" -> `Justified
      | _ -> `Unjustified a.Parsetree.attr_loc)

(* ------------------------------------------------------------------ *)
(* Callee tables.  Names are matched after alias expansion and after
   stripping the [Stdlib.] prefix. *)

(* Entries ending in '.' or '_' are prefixes, others match exactly. *)
let denylist =
  [ "Printf.printf";
    "Printf.eprintf";
    "Printf.fprintf";
    "Format.printf";
    "Format.eprintf";
    "Format.fprintf";
    "print_";
    "prerr_";
    "output_";
    "input_";
    "really_input";
    "read_line";
    "read_int";
    "read_float";
    "open_";
    "close_in";
    "close_out";
    "flush";
    "flush_all";
    "exit";
    "at_exit";
    "Sys.";
    "Unix.";
    "Random.";
    "Out_channel.";
    "In_channel.";
    "Gc.";
    "Domain.";
    "Thread.";
    "Mutex.";
    "Condition.";
    "Event.";
    "Filename.temp_" ]

let denylisted name =
  List.exists
    (fun entry ->
      let n = String.length entry in
      if n > 0 && (entry.[n - 1] = '.' || entry.[n - 1] = '_') then
        String.length name >= n && String.sub name 0 n = entry
      else name = entry)
    denylist

(* (suffix, index of the length-determining argument) *)
let length_sensitive_table =
  [ ("Bytes.create", 0);
    ("Bytes.make", 0);
    ("String.make", 0);
    ("Array.make", 0);
    ("Array.init", 0);
    ("Array.create_float", 0);
    ("Array.make_matrix", 0);
    ("List.init", 0);
    ("Buffer.create", 0);
    ("Hashtbl.create", 0);
    ("Byte_io.Writer.varint", 1);
    ("Byte_io.Writer.bytes", 1);
    ("Byte_io.varint_size", 0) ]

(* (suffix, index of the mutated container argument) *)
let mutator_table =
  [ ("Hashtbl.replace", 0);
    ("Hashtbl.add", 0);
    ("Hashtbl.remove", 0);
    ("Dyn_array.push", 0);
    ("Min_heap.push", 0);
    ("Buffer.add_string", 0);
    ("Buffer.add_bytes", 0);
    ("Buffer.add_char", 0);
    ("Queue.add", 1);
    ("Queue.push", 1);
    ("Stack.push", 1);
    ("Bytes.set", 0);
    ("Bytes.blit", 2);
    ("Bytes.fill", 0);
    ("Array.set", 0);
    ("Array.blit", 2);
    ("Array.fill", 0) ]

(* (suffix, indices of the recorded-payload arguments).  Telemetry
   sinks: everything reaching lib/obs is published to the (adversarial)
   server operator, so a tainted payload — or any metric update made
   under secret control, which publishes the branch taken — leaks.
   Instrument names (argument 0 of the intern functions) are included:
   a secret-derived metric name leaks through the registry keys. *)
let telemetry_table =
  [ ("Obs.counter", [ 0 ]);
    ("Obs.gauge", [ 0 ]);
    ("Obs.histogram", [ 0 ]);
    ("Obs.incr", []);
    ("Obs.add", [ 1 ]);
    ("Obs.set", [ 1 ]);
    ("Obs.observe", [ 1 ]);
    ("Obs.add_pages", [ 0 ]);
    ("Obs.enter", [ 0 ]);
    ("Obs.exit", []);
    ("Obs.with_span", [ 0 ]) ]

(* (suffix, index of the iterated container).  The trip count of these
   equals the container's length, which the server can observe through
   timing and the profiled allocation volume — a tainted container means
   a secret-dependent trip count (secret-loop).  Strings and bytes are
   deliberately absent: their lengths are page-structural and already
   policed by the length rule at the allocation/encoding boundary. *)
let iterator_table =
  [ ("List.iter", 1);
    ("List.iteri", 1);
    ("List.map", 1);
    ("List.mapi", 1);
    ("List.rev_map", 1);
    ("List.filter", 1);
    ("List.filter_map", 1);
    ("List.concat_map", 1);
    ("List.fold_left", 2);
    ("List.fold_right", 1);
    ("List.for_all", 1);
    ("List.exists", 1);
    ("List.find", 1);
    ("List.find_opt", 1);
    ("List.find_map", 1);
    ("List.sort", 1);
    ("List.stable_sort", 1);
    ("List.sort_uniq", 1);
    ("List.partition", 1);
    ("Array.iter", 1);
    ("Array.iteri", 1);
    ("Array.map", 1);
    ("Array.mapi", 1);
    ("Array.fold_left", 2);
    ("Array.fold_right", 1);
    ("Array.for_all", 1);
    ("Array.exists", 1);
    ("Hashtbl.iter", 1);
    ("Hashtbl.fold", 1);
    ("Queue.iter", 1);
    ("Queue.fold", 2);
    ("Stack.iter", 1);
    ("Stack.fold", 2);
    ("Seq.iter", 1);
    ("Seq.map", 1);
    ("Seq.fold_left", 2) ]

(* Variable-time comparisons: structural equality / compare / hashing
   walk the value; physical equality publishes sharing.  Immediate and
   unboxed-comparable types (int, char, bool, unit, float, boxed ints)
   compile to constant-time primitives and are exempted at the call
   site by inspecting the argument's type. *)
let compare_names = [ "="; "<>"; "compare"; "=="; "!="; "Hashtbl.hash" ]

let suffix_match table name =
  List.find_map
    (fun (suffix, v) ->
      let n = String.length name and s = String.length suffix in
      if name = suffix then Some v
      else if n > s && String.sub name (n - s) s = suffix && name.[n - s - 1] = '.' then
        Some v
      else None)
    table

let length_sensitive name = suffix_match length_sensitive_table name
let mutator name = suffix_match mutator_table name
let telemetry name = suffix_match telemetry_table name
let iterator name = suffix_match iterator_table name
let compare_like name = List.mem name compare_names
let raise_like = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

(* Immediates plus float and the boxed ints, whose compare is a single
   hardware comparison; the exemption proper (including abbreviation
   expansion) is [constant_time_comparable] below, which needs the
   analysis state for its abbreviation tables. *)
let immediate_type_names =
  [ "int"; "char"; "bool"; "unit"; "float"; "int32"; "int64"; "nativeint" ]

(* Format-string literals elaborate into CamlinternalFormatBasics
   constructor chains; they are compile-time constants, not
   secret-dependent allocations. *)
let format_literal (e : Typedtree.expression) =
  match Types.get_desc e.exp_type with
  | Types.Tconstr (p, _, _) ->
      let name = Path.name p in
      List.mem name
        [ "CamlinternalFormatBasics.fmt";
          "CamlinternalFormatBasics.format6";
          "CamlinternalFormatBasics.fmtty";
          "Stdlib.format6";
          "Stdlib.format4";
          "Stdlib.format";
          "format6";
          "format4";
          "format" ]
  | _ -> false

(* Expand a leading module alias (collected from `module X = Path` items
   in the same file), repeatedly, then strip [Stdlib.]. *)
let normalize = Callgraph.expand_aliases

(* ------------------------------------------------------------------ *)
(* Interprocedural summaries (computed by [Summary], consumed here) *)

type sink = {
  sk_param : int; (* -1: ambient — reached regardless of the arguments *)
  sk_rule : Finding.rule;
  sk_short : string; (* taint-free phrase describing the sink *)
  sk_chain : Finding.frame list; (* call path from the callee to the sink *)
}

type summary = {
  sum_name : string; (* canonical fq name *)
  sum_arity : int; (* peeled leading parameters *)
  sum_ret_params : int list; (* params flowing into the return value *)
  sum_sinks : sink list;
  sum_mutations : (int * int list) list; (* param i absorbs params js *)
}

type env = {
  lookup : current:string -> string -> summary option;
  ty_abbrev : current:string -> string -> Types.type_expr option;
      (* type-abbreviation manifests, for the secret-compare exemption *)
}

let empty_env =
  { lookup = (fun ~current:_ _ -> None); ty_abbrev = (fun ~current:_ _ -> None) }

(* Taint tokens standing for "parameter i" during summary extraction. *)
let param_token i = Printf.sprintf "#p%d" i

let param_of_token s =
  if String.length s > 2 && s.[0] = '#' && s.[1] = 'p' then
    int_of_string_opt (String.sub s 2 (String.length s - 2))
  else None

(* ------------------------------------------------------------------ *)
(* The analysis proper *)

(* A raw hit: a finding candidate still carrying the taint set that
   triggered it, so summary extraction can attribute it to parameters. *)
type hit = {
  h_rule : Finding.rule;
  h_loc : Location.t;
  h_message : string;
  h_short : string;
  h_taint : SSet.t;
  h_chain : Finding.frame list;
}

type state = {
  mutable vars : SSet.t IMap.t; (* ident -> secret sources it derives from *)
  mutable changed : bool;
  mutable hits : hit list;
  mutable justified : int;
  mutable flagged : int;
  mutable secrets : SSet.t; (* all seeds seen in this binding *)
  aliases : (string * string) list;
  abbrevs : (string * Types.type_expr) list; (* file-local type manifests *)
  func : string; (* display name of the binding under analysis *)
  prefix : string; (* enclosing module path, for summary resolution *)
  env : env;
}

(* Constant-time comparable: immediates plus float and the boxed ints.
   Type abbreviations ([type id = int]) are expanded syntactically —
   manifests collected from the loaded typedtrees (file-locally in
   per-module mode, through the call graph in whole-program mode) are
   followed to a bounded depth; no typing environment is rebuilt from
   the cmt.  A chain that leaves the loaded universe stays flagged
   conservatively. *)
let constant_time_comparable st (ty : Types.type_expr) =
  let rec check fuel (ty : Types.type_expr) =
    match Types.get_desc ty with
    | Types.Tconstr (p, _, _) ->
        let name = Callgraph.expand_aliases st.aliases (Path.name p) in
        List.mem name immediate_type_names
        || fuel > 0
           &&
           let manifest =
             match List.assoc_opt name st.abbrevs with
             | Some ty' -> Some ty'
             | None -> st.env.ty_abbrev ~current:st.prefix name
           in
           (match manifest with Some ty' -> check (fuel - 1) ty' | None -> false)
    | _ -> false
  in
  check 8 ty

let taint_of st id = Option.value ~default:SSet.empty (IMap.find_opt id st.vars)

let add_taint st id t =
  if not (SSet.is_empty t) then begin
    let old = taint_of st id in
    let merged = SSet.union old t in
    if not (SSet.equal old merged) then begin
      st.vars <- IMap.add id merged st.vars;
      st.changed <- true
    end
  end

let describe t = String.concat ", " (SSet.elements t)

let record st ~emit ~suppressed ?(chain = []) ?(taint = SSet.empty) ~short rule loc
    message =
  if emit then
    if suppressed then st.justified <- st.justified + 1
    else begin
      st.flagged <- st.flagged + 1;
      st.hits <-
        { h_rule = rule;
          h_loc = loc;
          h_message = message;
          h_short = short;
          h_taint = taint;
          h_chain = chain }
        :: st.hits
    end

(* Root identifier of an lvalue-ish expression: strips field projections
   so that `t.shelter` mutations taint `t`. *)
let rec root_ident (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Some id
  | Texp_field (e, _, _) -> root_ident e
  | _ -> None

let seed_pattern (type k) st (p : k Typedtree.general_pattern) =
  let seen_secret = ref false in
  let mark (type k) (p : k Typedtree.general_pattern) =
    (* [@secret] may sit on the pattern itself or on a constraint
       wrapper — type-constrained parameters ([(a [@secret] : node_id)])
       can file the attribute under [pat_extra] — so both attribute
       homes are consulted. *)
    let extra_attrs =
      List.concat_map (fun (_, _, attrs) -> attrs) p.Typedtree.pat_extra
    in
    if has_attr "secret" p.Typedtree.pat_attributes || has_attr "secret" extra_attrs
    then begin
      seen_secret := true;
      List.iter
        (fun id ->
          let name = Ident.name id in
          st.secrets <- SSet.add name st.secrets;
          add_taint st id (SSet.singleton name))
        (Typedtree.pat_bound_idents p)
    end
  in
  let it =
    { Tast_iterator.default_iterator with
      pat =
        (fun sub p ->
          mark p;
          Tast_iterator.default_iterator.pat sub p) }
  in
  it.pat it p;
  !seen_secret

(* Bind every variable of [p] with taint [t] (plus any [@secret] seeds). *)
let bind_pattern (type k) st (p : k Typedtree.general_pattern) t =
  ignore (seed_pattern st p);
  List.iter (fun id -> add_taint st id t) (Typedtree.pat_bound_idents p)

let callee_name st (fn : Typedtree.expression) =
  match fn.exp_desc with
  | Texp_ident (path, _, _) -> Some (normalize st.aliases (Path.name path))
  | _ -> None

(* The compiler elaborates an optional argument's default — [?(pos = 0)]
   — into [match *opt* with Some x -> x | None -> default].  The
   scrutinee is a compiler-generated ident (its name contains ['*'],
   unwritable in source) and the discriminator is whether the caller
   supplied the argument: call-site syntax, public by definition, so the
   select is not a secret branch.  Taint still flows from the supplied
   value into the bound variable through the [Some] case's pattern. *)
let optional_default_select (scrut : Typedtree.expression)
    (cases : Typedtree.computation Typedtree.case list) =
  let generated_ident =
    match scrut.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> String.contains (Ident.name id) '*'
    | _ -> false
  in
  let option_case (c : Typedtree.computation Typedtree.case) =
    c.c_guard = None
    &&
    match c.c_lhs.pat_desc with
    | Tpat_value arg -> (
        match (arg :> Typedtree.pattern).pat_desc with
        | Typedtree.Tpat_construct (_, cstr, _, _) ->
            cstr.Types.cstr_name = "Some" || cstr.Types.cstr_name = "None"
        | _ -> false)
    | _ -> false
  in
  generated_ident && List.length cases = 2 && List.for_all option_case cases

(* [eval st ~emit ~suppressed ~ct e] returns the secret sources the value
   of [e] may derive from.  [ct] is the control taint: sources steering
   the branches enclosing [e].  [emit] is false during fixpoint rounds;
   [suppressed] is true under a justified [@leak_ok]. *)
let rec eval st ~emit ~suppressed ~ct (e : Typedtree.expression) =
  let suppressed =
    match leak_ok e.exp_attributes with
    | `Justified -> true
    | `Unjustified loc ->
        record st ~emit ~suppressed:false ~short:"empty [@leak_ok]"
          Finding.Missing_justification loc
          "[@leak_ok] requires a non-empty justification string";
        suppressed
    | `Absent -> suppressed
  in
  let eval1 = eval st ~emit ~suppressed ~ct in
  let eval_opt = function None -> SSet.empty | Some e -> eval1 e in
  let union_all = List.fold_left (fun acc e -> SSet.union acc (eval1 e)) SSet.empty in
  (* A heap allocation performed under secret control publishes the arm
     taken through the profiled allocation volume. *)
  let check_alloc what =
    if (not (SSet.is_empty ct)) && not (format_literal e) then
      record st ~emit ~suppressed ~taint:ct ~short:(what ^ " allocation")
        Finding.Secret_alloc e.exp_loc
        (Printf.sprintf
           "%s allocated under secret-dependent control flow (%s): allocation words \
            are exported in profiles"
           what (describe ct))
  in
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> taint_of st id
  | Texp_ident _ | Texp_constant _ | Texp_unreachable | Texp_instvar _
  | Texp_extension_constructor _ | Texp_new _ ->
      SSet.empty
  | Texp_let (_, vbs, body) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          let suppressed =
            match leak_ok vb.vb_attributes with
            | `Justified -> true
            | `Unjustified loc ->
                record st ~emit ~suppressed:false ~short:"empty [@leak_ok]"
                  Finding.Missing_justification loc
                  "[@leak_ok] requires a non-empty justification string";
                suppressed
            | `Absent -> suppressed
          in
          let t = eval st ~emit ~suppressed ~ct vb.vb_expr in
          bind_pattern st vb.vb_pat (SSet.union t ct))
        vbs;
      eval1 body
  | Texp_function { cases; _ } ->
      (* Analyze the body inline; the closure's own taint is whatever its
         body may evaluate to, so applying it propagates captured secrets. *)
      cases_taint st ~emit ~suppressed ~ct ~scrutinee:SSet.empty cases
  | Texp_apply (fn, args) ->
      let fn_taint = eval1 fn in
      let arg_exprs = List.filter_map (fun (_, a) -> a) args in
      let arg_taints = List.map eval1 arg_exprs in
      let name = callee_name st fn in
      let nth_taint i =
        match List.nth_opt arg_taints i with Some t -> t | None -> SSet.empty
      in
      let nth_arg i = List.nth_opt arg_exprs i in
      let summary = ref None in
      (match name with
      | None -> ()
      | Some name ->
          summary := st.env.lookup ~current:st.prefix name;
          (* A resolvable project function is described by its summary;
             the stdlib tables would otherwise misfire on bare local
             names that collide with stdlib entries (e.g. an [exit]
             helper vs Stdlib.exit).  The telemetry table is policy, not
             behavior, so it stays active either way. *)
          let table_checks = Option.is_none !summary in
          if table_checks && denylisted name then
            record st ~emit ~suppressed ~short:("call to " ^ name)
              Finding.Effectful_call e.exp_loc
              (Printf.sprintf "call to ambient-effect function %s from oblivious code"
                 name);
          (match length_sensitive name with
          | Some i when table_checks && not (SSet.is_empty (nth_taint i)) ->
              record st ~emit ~suppressed ~taint:(nth_taint i)
                ~short:("length argument to " ^ name) Finding.Secret_length e.exp_loc
                (Printf.sprintf "length given to %s depends on secrets: %s" name
                   (describe (nth_taint i)))
          | _ -> ());
          (match iterator name with
          | Some i when table_checks && not (SSet.is_empty (nth_taint i)) ->
              record st ~emit ~suppressed ~taint:(nth_taint i)
                ~short:("trip count of " ^ name) Finding.Secret_loop e.exp_loc
                (Printf.sprintf
                   "%s iterates a container derived from secrets (%s): the trip \
                    count leaks"
                   name
                   (describe (nth_taint i)))
          | _ -> ());
          if compare_like name then begin
            let boxed_tainted =
              List.mapi (fun i arg -> (nth_taint i, arg)) arg_exprs
              |> List.filter (fun (t, (arg : Typedtree.expression)) ->
                     (not (SSet.is_empty t))
                     && not (constant_time_comparable st arg.exp_type))
            in
            match boxed_tainted with
            | [] -> ()
            | _ :: _ ->
                let t =
                  List.fold_left
                    (fun acc (t, _) -> SSet.union acc t)
                    SSet.empty boxed_tainted
                in
                record st ~emit ~suppressed ~taint:t
                  ~short:("variable-time " ^ name) Finding.Secret_compare e.exp_loc
                  (Printf.sprintf
                     "%s on a non-immediate secret value (%s): structural \
                      compare/hash is variable-time"
                     name (describe t))
          end;
          (match mutator name with
          | Some i when table_checks -> (
              let payload =
                List.fold_left SSet.union ct
                  (List.filteri (fun j _ -> j <> i) arg_taints)
              in
              match nth_arg i with
              | Some container when not (SSet.is_empty payload) -> (
                  match root_ident container with
                  | Some id -> add_taint st id payload
                  | None -> ())
              | _ -> ())
          | _ -> ());
          (match telemetry name with
          | Some payload_idxs ->
              let payload =
                List.fold_left
                  (fun acc i -> SSet.union acc (nth_taint i))
                  SSet.empty payload_idxs
              in
              if not (SSet.is_empty payload) then
                record st ~emit ~suppressed ~taint:payload
                  ~short:("telemetry payload to " ^ name) Finding.Secret_telemetry
                  e.exp_loc
                  (Printf.sprintf "value recorded via %s depends on secrets: %s" name
                     (describe payload))
              else if not (SSet.is_empty ct) then
                record st ~emit ~suppressed ~taint:ct
                  ~short:("metric update " ^ name ^ " under secret control")
                  Finding.Secret_telemetry e.exp_loc
                  (Printf.sprintf
                     "metric update %s under secret-dependent control flow: %s" name
                     (describe ct))
          | None -> ());
          if List.mem name raise_like then begin
            let payload = List.fold_left SSet.union SSet.empty arg_taints in
            if not (SSet.is_empty payload) then
              record st ~emit ~suppressed ~taint:payload
                ~short:("exception payload to " ^ name) Finding.Secret_exception
                e.exp_loc
                (Printf.sprintf "exception payload carries secrets: %s"
                   (describe payload))
          end;
          (* assignment through a reference *)
          if name = ":=" || name = "incr" || name = "decr" then begin
            let payload =
              SSet.union ct
                (match name with ":=" -> nth_taint 1 | _ -> SSet.empty)
            in
            match Option.bind (nth_arg 0) root_ident with
            | Some id -> add_taint st id payload
            | None -> ()
          end;
          (* Interprocedural: apply the callee's summary. *)
          (match !summary with
          | None -> ()
          | Some sum ->
              let call_frame note =
                Finding.frame_of_location ~func:st.func ~note e.exp_loc
              in
              List.iter
                (fun sk ->
                  let chain = call_frame ("calls " ^ sum.sum_name) :: sk.sk_chain in
                  if sk.sk_param < 0 then
                    record st ~emit ~suppressed ~chain ~short:sk.sk_short sk.sk_rule
                      e.exp_loc
                      (Printf.sprintf
                         "call to %s transitively reaches an ambient-effect sink \
                          (%s)"
                         sum.sum_name sk.sk_short)
                  else
                    let t = nth_taint sk.sk_param in
                    if not (SSet.is_empty t) then
                      record st ~emit ~suppressed ~chain ~taint:t ~short:sk.sk_short
                        sk.sk_rule e.exp_loc
                        (Printf.sprintf
                           "argument %d of %s carries secrets (%s) into a %s sink \
                            (%s)"
                           sk.sk_param sum.sum_name (describe t)
                           (Finding.rule_slug sk.sk_rule)
                           sk.sk_short))
                sum.sum_sinks;
              List.iter
                (fun (i, srcs) ->
                  let payload =
                    List.fold_left
                      (fun acc j -> SSet.union acc (nth_taint j))
                      ct srcs
                  in
                  match nth_arg i with
                  | Some container when not (SSet.is_empty payload) -> (
                      match root_ident container with
                      | Some id -> add_taint st id payload
                      | None -> ())
                  | _ -> ())
                sum.sum_mutations));
      (* Result taint: with a summary, only the parameters that flow to
         the return value contribute; otherwise every argument does. *)
      (match !summary with
      | Some sum when List.length arg_exprs >= sum.sum_arity ->
          List.fold_left
            (fun acc i -> SSet.union acc (nth_taint i))
            fn_taint sum.sum_ret_params
      | _ -> List.fold_left SSet.union fn_taint arg_taints)
  | Texp_match (scrut, cases, _) ->
      let t = eval1 scrut in
      let default_select = optional_default_select scrut cases in
      if
        (not (SSet.is_empty t))
        && (not (trivial_match cases))
        && not default_select
      then
        record st ~emit ~suppressed ~taint:t ~short:"match scrutinee"
          Finding.Secret_branch e.exp_loc
          (Printf.sprintf "match scrutinee depends on secrets: %s" (describe t));
      (* A default-select's arm choice is call-site syntax, so the arms
         are not under secret control; every other match taints them. *)
      let ct' = if default_select then ct else SSet.union ct t in
      SSet.union t (cases_taint st ~emit ~suppressed ~ct:ct' ~scrutinee:t cases)
  | Texp_try (body, cases) ->
      let t = eval1 body in
      SSet.union t (cases_taint st ~emit ~suppressed ~ct ~scrutinee:t cases)
  | Texp_ifthenelse (cond, th, el) ->
      let t = eval1 cond in
      if not (SSet.is_empty t) then
        record st ~emit ~suppressed ~taint:t ~short:"conditional guard"
          Finding.Secret_branch e.exp_loc
          (Printf.sprintf "conditional guard depends on secrets: %s" (describe t));
      let ct' = SSet.union ct t in
      let tb = eval st ~emit ~suppressed ~ct:ct' th in
      let eb =
        match el with
        | None -> SSet.empty
        | Some el -> eval st ~emit ~suppressed ~ct:ct' el
      in
      SSet.union t (SSet.union tb eb)
  | Texp_while (cond, body) ->
      let t = eval1 cond in
      if not (SSet.is_empty t) then
        record st ~emit ~suppressed ~taint:t ~short:"while-loop guard"
          Finding.Secret_branch e.exp_loc
          (Printf.sprintf "while-loop guard depends on secrets: %s" (describe t));
      ignore (eval st ~emit ~suppressed ~ct:(SSet.union ct t) body);
      SSet.empty
  | Texp_for (id, _, lo, hi, _, body) ->
      let t = SSet.union (eval1 lo) (eval1 hi) in
      if not (SSet.is_empty t) then
        record st ~emit ~suppressed ~taint:t ~short:"for-loop bound"
          Finding.Secret_branch e.exp_loc
          (Printf.sprintf "for-loop bound depends on secrets: %s" (describe t));
      add_taint st id (SSet.union ct t);
      ignore (eval st ~emit ~suppressed ~ct:(SSet.union ct t) body);
      SSet.empty
  | Texp_sequence (a, b) ->
      ignore (eval1 a);
      eval1 b
  | Texp_tuple es ->
      check_alloc "tuple";
      union_all es
  | Texp_array es ->
      if es <> [] then check_alloc "array";
      union_all es
  | Texp_construct (_, _, es) ->
      (* Constant constructors carry no arguments and don't allocate. *)
      if es <> [] then check_alloc "constructor";
      union_all es
  | Texp_variant (_, eo) ->
      if eo <> None then check_alloc "variant";
      eval_opt eo
  | Texp_record { fields; extended_expression; _ } ->
      check_alloc "record";
      let t =
        Array.fold_left
          (fun acc (_, def) ->
            match def with
            | Typedtree.Overridden (_, e) -> SSet.union acc (eval1 e)
            | Typedtree.Kept _ -> acc)
          SSet.empty fields
      in
      SSet.union t (eval_opt extended_expression)
  | Texp_field (e, _, _) -> eval1 e
  | Texp_setfield (target, _, _, value) ->
      let tv = SSet.union ct (eval1 value) in
      ignore (eval1 target);
      (match root_ident target with
      | Some id -> add_taint st id tv
      | None -> ());
      SSet.empty
  | Texp_assert (cond, _) ->
      let t = eval1 cond in
      if not (SSet.is_empty t) then
        record st ~emit ~suppressed ~taint:t ~short:"assertion" Finding.Secret_branch
          e.exp_loc
          (Printf.sprintf "assertion depends on secrets: %s" (describe t));
      SSet.empty
  | Texp_lazy e -> eval1 e
  | Texp_letmodule (_, _, _, _, body) | Texp_open (_, body) -> eval1 body
  | Texp_letexception (_, body) -> eval1 body
  | Texp_letop { let_; ands; body; _ } ->
      let t =
        List.fold_left
          (fun acc (bop : Typedtree.binding_op) -> SSet.union acc (eval1 bop.bop_exp))
          (eval1 let_.bop_exp) ands
      in
      bind_pattern st body.c_lhs (SSet.union ct t);
      SSet.union t (eval1 body.c_rhs)
  | Texp_send (obj, _) -> eval1 obj
  | Texp_setinstvar (_, _, _, e) ->
      ignore (eval1 e);
      SSet.empty
  | Texp_override (_, overrides) ->
      List.fold_left (fun acc (_, _, e) -> SSet.union acc (eval1 e)) SSet.empty overrides
  | Texp_object _ | Texp_pack _ -> SSet.empty

and cases_taint :
    type k.
    state ->
    emit:bool ->
    suppressed:bool ->
    ct:SSet.t ->
    scrutinee:SSet.t ->
    k Typedtree.case list ->
    SSet.t =
 fun st ~emit ~suppressed ~ct ~scrutinee cases ->
  List.fold_left
    (fun acc (c : _ Typedtree.case) ->
      bind_pattern st c.c_lhs (SSet.union ct scrutinee);
      (match c.c_guard with Some g -> ignore (eval st ~emit ~suppressed ~ct g) | None -> ());
      SSet.union acc (eval st ~emit ~suppressed ~ct c.c_rhs))
    SSet.empty cases

(* `match e with x -> ...` with a single catch-all value case selects
   nothing, so a tainted scrutinee is not a branch leak there. *)
and trivial_match (cases : Typedtree.computation Typedtree.case list) =
  match cases with
  | [ { c_lhs = { pat_desc = Tpat_value arg; _ }; c_guard = None; _ } ] -> (
      match (arg :> Typedtree.pattern).pat_desc with
      | Typedtree.Tpat_var _ | Typedtree.Tpat_any -> true
      | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Per-binding drivers *)

let new_state ?(env = empty_env) ?(prefix = "") ?(abbrevs = []) ~aliases ~func () =
  { vars = IMap.empty;
    changed = false;
    hits = [];
    justified = 0;
    flagged = 0;
    secrets = SSet.empty;
    aliases;
    abbrevs;
    func;
    prefix;
    env }

let finding_of_hit st (h : hit) =
  Finding.of_location ~chain:h.h_chain ~rule:h.h_rule ~func:st.func ~message:h.h_message
    h.h_loc

let run_to_fixpoint st ~suppressed (expr : Typedtree.expression) =
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < 16 do
    st.changed <- false;
    ignore (eval st ~emit:false ~suppressed ~ct:SSet.empty expr);
    incr rounds;
    if not st.changed then continue_ := false
  done;
  eval st ~emit:true ~suppressed ~ct:SSet.empty expr

let audit_of st (vb : Typedtree.value_binding) =
  { Finding.a_file = vb.vb_loc.loc_start.pos_fname;
    a_line = vb.vb_loc.loc_start.pos_lnum;
    a_func = st.func;
    secrets = SSet.elements st.secrets;
    justified = st.justified;
    flagged = st.flagged }

let analyze_binding ?env ?prefix ?abbrevs ?func ~aliases (vb : Typedtree.value_binding)
    =
  let func =
    match func with
    | Some f -> f
    | None -> (
        match vb.vb_pat.pat_desc with
        | Tpat_var (id, _) -> Ident.name id
        | _ -> "<binding>")
  in
  let st = new_state ?env ?prefix ?abbrevs ~aliases ~func () in
  let suppressed =
    match leak_ok vb.vb_attributes with
    | `Justified -> true
    | `Unjustified _ | `Absent -> false
  in
  ignore (run_to_fixpoint st ~suppressed vb.vb_expr);
  (List.rev_map (finding_of_hit st) st.hits, audit_of st vb)

(* ------------------------------------------------------------------ *)
(* Summary extraction: seed every leading parameter with a #p<i> token,
   run the same analysis, and read off which tokens reached the return
   value, a sink, or another parameter's container. *)

let summarize ~env (fn : Callgraph.fn) =
  let vb = fn.Callgraph.fn_binding in
  let st =
    new_state ~env ~prefix:fn.Callgraph.fn_prefix ~aliases:fn.Callgraph.fn_aliases
      ~func:fn.Callgraph.fn_name ()
  in
  let suppressed =
    match leak_ok vb.vb_attributes with
    | `Justified -> true
    | `Unjustified _ | `Absent -> false
  in
  (* Peel the leading [fun] layers, seeding one token per parameter.  A
     multi-case [function] layer both binds its patterns and *is* a
     dispatch on that parameter. *)
  let param_roots = ref [] in
  let rec peel i (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_function { cases = [ ({ c_guard = None; _ } as c) ]; _ } ->
        let tok = SSet.singleton (param_token i) in
        param_roots := (i, Typedtree.pat_bound_idents c.c_lhs) :: !param_roots;
        bind_pattern st c.c_lhs tok;
        peel (i + 1) c.c_rhs
    | Texp_function { cases; _ } when List.length cases > 1 ->
        let tok = SSet.singleton (param_token i) in
        List.iter (fun (c : _ Typedtree.case) -> bind_pattern st c.c_lhs tok) cases;
        record st ~emit:true ~suppressed ~taint:tok ~short:"function dispatch"
          Finding.Secret_branch e.exp_loc
          (Printf.sprintf "parameter %d is dispatched on by a multi-case function" i);
        (i + 1, e)
    | _ -> (i, e)
  in
  let arity, body = peel 0 vb.vb_expr in
  (* The dispatch hit recorded during peeling must survive the fixpoint
     rounds; [run_to_fixpoint] only appends on the final emit pass, and
     peeling already ran with emit:true, so nothing is lost. *)
  let ret = run_to_fixpoint st ~suppressed body in
  let params_of set =
    SSet.fold
      (fun s acc -> match param_of_token s with Some i -> i :: acc | None -> acc)
      set []
    |> List.sort_uniq Int.compare
  in
  let sinks = ref [] in
  let seen = Hashtbl.create 8 in
  let push sk =
    let key = (sk.sk_param, sk.sk_rule) in
    if (not (Hashtbl.mem seen key)) && List.length !sinks < 16 then begin
      Hashtbl.add seen key ();
      sinks := sk :: !sinks
    end
  in
  List.iter
    (fun h ->
      let chain =
        match h.h_chain with
        | [] ->
            [ Finding.frame_of_location ~func:fn.Callgraph.fn_name ~note:h.h_short
                h.h_loc ]
        | chain -> chain
      in
      match params_of h.h_taint with
      | [] ->
          if h.h_rule = Finding.Effectful_call then
            push { sk_param = -1; sk_rule = h.h_rule; sk_short = h.h_short; sk_chain = chain }
      | params ->
          List.iter
            (fun i ->
              push { sk_param = i; sk_rule = h.h_rule; sk_short = h.h_short; sk_chain = chain })
            params)
    (List.rev st.hits);
  let mutations =
    List.filter_map
      (fun (i, ids) ->
        let absorbed =
          List.fold_left (fun acc id -> SSet.union acc (taint_of st id)) SSet.empty ids
          |> params_of
          |> List.filter (fun j -> j <> i)
        in
        if absorbed = [] then None else Some (i, absorbed))
      !param_roots
  in
  { sum_name = fn.Callgraph.fn_name;
    sum_arity = arity;
    sum_ret_params = params_of ret;
    sum_sinks = List.rev !sinks;
    sum_mutations = mutations }

(* Convergence measure for the interprocedural fixpoint: chains and
   messages may deepen without changing *which* flows exist. *)
let summary_shape s =
  ( s.sum_ret_params,
    List.map (fun sk -> (sk.sk_param, sk.sk_rule)) s.sum_sinks,
    s.sum_mutations )

(* ------------------------------------------------------------------ *)
(* Structure walking (per-module mode, used by [Lint.analyze_cmt]) *)

let rec analyze_items ?(env = empty_env) ?(abbrevs = []) ~aliases items =
  let findings = ref [] and audits = ref [] in
  let aliases = ref aliases in
  let abbrevs = ref abbrevs in
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_type (_, decls) ->
          (* file-local abbreviation manifests feed the secret-compare
             exemption (bare names: types are referenced unqualified
             within their own module) *)
          List.iter
            (fun (td : Typedtree.type_declaration) ->
              match td.typ_manifest with
              | Some cty -> abbrevs := (td.typ_name.txt, cty.ctyp_type) :: !abbrevs
              | None -> ())
            decls
      | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              if has_attr "oblivious" vb.vb_attributes then begin
                let fs, a =
                  analyze_binding ~env ~abbrevs:!abbrevs ~aliases:!aliases vb
                in
                findings := !findings @ fs;
                audits := !audits @ [ a ]
              end)
            vbs
      | Tstr_module mb -> (
          match module_payload mb with
          | `Alias (name, target) -> aliases := (name, target) :: !aliases
          | `Structure (name, items) ->
              let fs, au =
                analyze_items ~env ~abbrevs:!abbrevs ~aliases:!aliases items
              in
              let qualify (f : Finding.t) = { f with func = name ^ "." ^ f.func } in
              findings := !findings @ List.map qualify fs;
              audits :=
                !audits
                @ List.map
                    (fun (a : Finding.audit) ->
                      { a with Finding.a_func = name ^ "." ^ a.a_func })
                    au
          | `Other -> ())
      | Tstr_recmodule mbs ->
          List.iter
            (fun mb ->
              match module_payload mb with
              | `Structure (name, items) ->
                  let fs, au =
                    analyze_items ~env ~abbrevs:!abbrevs ~aliases:!aliases items
                  in
                  findings :=
                    !findings
                    @ List.map (fun (f : Finding.t) -> { f with func = name ^ "." ^ f.func }) fs;
                  audits :=
                    !audits
                    @ List.map
                        (fun (a : Finding.audit) ->
                          { a with Finding.a_func = name ^ "." ^ a.a_func })
                        au
              | _ -> ())
            mbs
      | _ -> ())
    items;
  (!findings, !audits)

and module_payload (mb : Typedtree.module_binding) =
  let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
  let rec strip (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_constraint (me, _, _, _) -> strip me
    | desc -> desc
  in
  match strip mb.mb_expr with
  | Tmod_ident (p, _) -> `Alias (name, Path.name p)
  | Tmod_structure { str_items; _ } -> `Structure (name, str_items)
  | _ -> `Other

let analyze_structure ?env (str : Typedtree.structure) =
  analyze_items ?env ~aliases:[] str.str_items

(* Whole-program mode: analyze one indexed function with fully qualified
   naming and an interprocedural environment. *)
let analyze_fn ~env (fn : Callgraph.fn) =
  analyze_binding ~env ~prefix:fn.Callgraph.fn_prefix ~func:fn.Callgraph.fn_name
    ~aliases:fn.Callgraph.fn_aliases fn.Callgraph.fn_binding
