(* Driver: load .cmt files, run the taint analysis, report.

   Two modes:

   - per-module ([run]): each .cmt is analyzed on its own, with no
     interprocedural environment.  Used by the fixture tests and for
     quick single-file checks.

   - whole-program ([run_program], the [--root] CLI mode): every .cmt
     under the given directories is indexed into one [Callgraph]
     universe, per-function summaries are iterated to a fixpoint
     ([Summary.compute]), and each [@@oblivious] entrypoint is analyzed
     with that environment — so a secret flowing through three modules
     into an observable sink is one finding with the full call chain.
     Reachability is then checked: a call from the oblivious surface
     into a project-namespace module that was never loaded is an
     [unanalyzed-module] finding, which is what lets the build rules
     glob directories instead of hand-listing modules. *)

type report = {
  findings : Finding.t list;
  audits : Finding.audit list;
  errors : string list; (* unreadable inputs *)
  modules : int; (* implementations analyzed *)
}

let empty = { findings = []; audits = []; errors = []; modules = 0 }

let merge a b =
  { findings = a.findings @ b.findings;
    audits = a.audits @ b.audits;
    errors = a.errors @ b.errors;
    modules = a.modules + b.modules }

let analyze_cmt path =
  match Cmt_format.read_cmt path with
  | exception e ->
      { empty with errors = [ Printf.sprintf "%s: %s" path (Printexc.to_string e) ] }
  | cmt -> (
      match cmt.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str ->
          let findings, audits = Taint.analyze_structure str in
          { empty with findings; audits; modules = 1 }
      | _ -> empty)

let is_cmt path =
  Filename.check_suffix path ".cmt" && not (Filename.check_suffix path ".cmti")

(* Directories are walked recursively; explicit files must be .cmt. *)
let rec collect path =
  match Sys.is_directory path with
  | exception Sys_error e -> Error e
  | true ->
      let entries = Array.to_list (Sys.readdir path) in
      List.fold_left
        (fun acc entry ->
          match (acc, collect (Filename.concat path entry)) with
          | Error e, _ -> Error e
          | Ok acc, Ok more -> Ok (acc @ more)
          | Ok _, Error e -> Error e)
        (Ok []) (List.sort compare entries)
  | false -> if is_cmt path then Ok [ path ] else Ok []

let run paths =
  List.fold_left
    (fun acc path ->
      match collect path with
      | Error e -> { acc with errors = acc.errors @ [ e ] }
      | Ok cmts -> List.fold_left (fun acc cmt -> merge acc (analyze_cmt cmt)) acc cmts)
    empty paths

(* ------------------------------------------------------------------ *)
(* Whole-program mode *)

module SSet = Set.Make (String)

(* The enclosing module path of a (dotted) value name. *)
let module_of name =
  match String.rindex_opt name '.' with
  | None -> None
  | Some i -> Some (String.sub name 0 i)

(* BFS over resolved call edges from the oblivious entrypoints; calls
   into the project namespace that neither resolve nor land in a loaded
   module are the discovery gaps. *)
let reachability_findings graph =
  let visited = ref SSet.empty in
  let gaps = ref [] in
  let flagged_modules = ref SSet.empty in
  let queue = Queue.create () in
  List.iter
    (fun (fn : Callgraph.fn) ->
      if fn.fn_oblivious then Queue.add fn queue)
    (Callgraph.fns graph);
  while not (Queue.is_empty queue) do
    let fn = Queue.pop queue in
    if not (SSet.mem fn.Callgraph.fn_name !visited) then begin
      visited := SSet.add fn.Callgraph.fn_name !visited;
      List.iter
        (fun (callee, loc) ->
          match Callgraph.resolve graph ~current:fn.Callgraph.fn_prefix callee with
          | Some target ->
              if not (SSet.mem target.Callgraph.fn_name !visited) then
                Queue.add target queue
          | None ->
              if
                Callgraph.project_name graph callee
                && not (Callgraph.covered graph callee)
              then begin
                match module_of (Callgraph.canon callee) with
                | Some m when not (SSet.mem m !flagged_modules) ->
                    flagged_modules := SSet.add m !flagged_modules;
                    gaps :=
                      Finding.of_location ~rule:Finding.Unanalyzed_module
                        ~func:fn.Callgraph.fn_name
                        ~message:
                          (Printf.sprintf
                             "call to %s reaches module %s, which was never loaded \
                              into the analysis surface (add its library's .cmt \
                              directory to the lint inputs)"
                             callee m)
                        loc
                      :: !gaps
                | _ -> ()
              end)
        fn.Callgraph.fn_calls
    end
  done;
  List.rev !gaps

let load_program paths =
  let graph = Callgraph.create () in
  let errors = ref [] in
  let modules = ref 0 in
  List.iter
    (fun path ->
      match collect path with
      | Error e -> errors := !errors @ [ e ]
      | Ok cmts ->
          List.iter
            (fun cmt_path ->
              match Cmt_format.read_cmt cmt_path with
              | exception e ->
                  errors :=
                    !errors
                    @ [ Printf.sprintf "%s: %s" cmt_path (Printexc.to_string e) ]
              | cmt -> (
                  match cmt.Cmt_format.cmt_annots with
                  | Cmt_format.Implementation str ->
                      incr modules;
                      Callgraph.add_structure graph
                        ~modname:cmt.Cmt_format.cmt_modname str
                  | _ -> ()))
            cmts)
    paths;
  (graph, !errors, !modules)

let run_program ~root paths =
  let paths =
    List.map
      (fun p -> if Filename.is_relative p then Filename.concat root p else p)
      (if paths = [] then [ "." ] else paths)
  in
  let graph, errors, modules = load_program paths in
  let summaries = Summary.compute graph in
  let env = Summary.env summaries in
  let findings, audits =
    List.fold_left
      (fun (fs, aus) (fn : Callgraph.fn) ->
        if fn.fn_oblivious then begin
          let f, a = Taint.analyze_fn ~env fn in
          (fs @ f, aus @ [ a ])
        end
        else (fs, aus))
      ([], []) (Callgraph.fns graph)
  in
  let findings = findings @ reachability_findings graph in
  { findings; audits; errors; modules }

(* ------------------------------------------------------------------ *)
(* CLI entry shared by bin/psplint and `pspc lint` *)

let print_report ~quiet ~audit r =
  if audit then begin
    Printf.printf "oblivious functions audited: %d\n" (List.length r.audits);
    List.iter
      (fun a -> Format.printf "  %a@." Finding.pp_audit a)
      (List.sort compare r.audits)
  end;
  if not quiet then
    List.iter
      (fun f -> Format.printf "%a@." Finding.pp f)
      (List.sort Finding.compare r.findings);
  List.iter (fun e -> Printf.eprintf "psplint: error: %s\n" e) r.errors;
  let justified = List.fold_left (fun acc a -> acc + a.Finding.justified) 0 r.audits in
  Printf.printf
    "psplint: %d module(s), %d oblivious function(s), %d justified leak site(s), %d \
     finding(s)\n"
    r.modules (List.length r.audits) justified
    (List.length r.findings)

let exit_code r =
  if r.errors <> [] then 2 else if r.findings <> [] then 1 else 0

let main ?root ?sarif ?baseline ?write_baseline ~paths ~quiet ~audit () =
  if paths = [] && root = None then begin
    Printf.eprintf
      "psplint: no inputs (pass .cmt files or directories, e.g. _build/default/lib)\n";
    2
  end
  else begin
    let r =
      match root with Some root -> run_program ~root paths | None -> run paths
    in
    (match write_baseline with
    | Some file ->
        Baseline.write file r.findings r.audits;
        Printf.printf "psplint: baseline written to %s (%d finding(s), %d audited \
                       function(s))\n"
          file (List.length r.findings) (List.length r.audits)
    | None -> ());
    let r, suppressed =
      match baseline with
      | None -> (r, 0)
      | Some file -> (
          match Baseline.load file with
          | Error e -> ({ r with errors = r.errors @ [ e ] }, 0)
          | Ok b ->
              let applied = Baseline.apply b ~baseline_file:file r.findings r.audits in
              ( { r with findings = applied.Baseline.kept @ applied.Baseline.drift },
                applied.Baseline.suppressed ))
    in
    (match sarif with
    | Some file -> Sarif.write file r.findings
    | None -> ());
    print_report ~quiet ~audit r;
    if suppressed > 0 then
      Printf.printf "psplint: %d baselined finding(s) suppressed\n" suppressed;
    if write_baseline <> None then if r.errors <> [] then 2 else 0 else exit_code r
  end
