(* Driver: load .cmt files, run the taint analysis, report. *)

type report = {
  findings : Finding.t list;
  audits : Finding.audit list;
  errors : string list; (* unreadable inputs *)
  modules : int; (* implementations analyzed *)
}

let empty = { findings = []; audits = []; errors = []; modules = 0 }

let merge a b =
  { findings = a.findings @ b.findings;
    audits = a.audits @ b.audits;
    errors = a.errors @ b.errors;
    modules = a.modules + b.modules }

let analyze_cmt path =
  match Cmt_format.read_cmt path with
  | exception e ->
      { empty with errors = [ Printf.sprintf "%s: %s" path (Printexc.to_string e) ] }
  | cmt -> (
      match cmt.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str ->
          let findings, audits = Taint.analyze_structure str in
          { empty with findings; audits; modules = 1 }
      | _ -> empty)

let is_cmt path =
  Filename.check_suffix path ".cmt" && not (Filename.check_suffix path ".cmti")

(* Directories are walked recursively; explicit files must be .cmt. *)
let rec collect path =
  match Sys.is_directory path with
  | exception Sys_error e -> Error e
  | true ->
      let entries = Array.to_list (Sys.readdir path) in
      List.fold_left
        (fun acc entry ->
          match (acc, collect (Filename.concat path entry)) with
          | Error e, _ -> Error e
          | Ok acc, Ok more -> Ok (acc @ more)
          | Ok _, Error e -> Error e)
        (Ok []) (List.sort compare entries)
  | false -> if is_cmt path then Ok [ path ] else Ok []

let run paths =
  List.fold_left
    (fun acc path ->
      match collect path with
      | Error e -> { acc with errors = acc.errors @ [ e ] }
      | Ok cmts -> List.fold_left (fun acc cmt -> merge acc (analyze_cmt cmt)) acc cmts)
    empty paths

(* ------------------------------------------------------------------ *)
(* CLI entry shared by bin/psplint and `pspc lint` *)

let print_report ~quiet ~audit r =
  if audit then begin
    Printf.printf "oblivious functions audited: %d\n" (List.length r.audits);
    List.iter
      (fun a -> Format.printf "  %a@." Finding.pp_audit a)
      (List.sort compare r.audits)
  end;
  if not quiet then
    List.iter
      (fun f -> Format.printf "%a@." Finding.pp f)
      (List.sort Finding.compare r.findings);
  List.iter (fun e -> Printf.eprintf "psplint: error: %s\n" e) r.errors;
  let justified = List.fold_left (fun acc a -> acc + a.Finding.justified) 0 r.audits in
  Printf.printf
    "psplint: %d module(s), %d oblivious function(s), %d justified leak site(s), %d \
     finding(s)\n"
    r.modules (List.length r.audits) justified
    (List.length r.findings)

let exit_code r =
  if r.errors <> [] then 2 else if r.findings <> [] then 1 else 0

let main ~paths ~quiet ~audit =
  if paths = [] then begin
    Printf.eprintf
      "psplint: no inputs (pass .cmt files or directories, e.g. _build/default/lib)\n";
    2
  end
  else begin
    let r = run paths in
    print_report ~quiet ~audit r;
    exit_code r
  end
