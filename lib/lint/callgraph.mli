(** Cross-module function universe for the whole-program analysis.

    Loaded [.cmt] structures are indexed under canonical fully qualified
    names (dune's wrapped-library mangling undone), including bindings
    nested in submodules and functor bodies.  Functor instances
    ([module Lm = Incremental.Make (C)] or [include Incremental.Make (C)])
    become redirects so calls through the instance resolve into the
    functor body. *)

type fn = {
  fn_name : string;  (** canonical fq name, e.g. ["Psp_pir.Server.Session.fetch"] *)
  fn_prefix : string;  (** enclosing module path *)
  fn_oblivious : bool;  (** carries [[\@\@oblivious]] *)
  fn_binding : Typedtree.value_binding;
  fn_aliases : (string * string) list;  (** in-scope module aliases *)
  fn_calls : (string * Location.t) list;  (** alias-expanded callee names *)
}

type t

val create : unit -> t

val add_structure : t -> modname:string -> Typedtree.structure -> unit
(** Index one module's implementation; [modname] is the mangled
    [cmt_modname] (e.g. ["Psp_core__Engine"]). *)

val fns : t -> fn list
val modules : t -> string list
(** Canonical names of the loaded modules, in load order. *)

val find : t -> string -> fn option
val resolve : t -> current:string -> string -> fn option
(** [resolve t ~current name] looks up an alias-expanded callee name as
    seen from inside module path [current]: as-is, through functor
    redirects, then qualified by each enclosing prefix. *)

val abbrev : t -> current:string -> string -> Types.type_expr option
(** [abbrev t ~current name] looks up a type abbreviation's manifest
    (collected from [Tstr_type] items at indexing time) with the same
    candidate search as {!resolve}: as-is, through redirects, then
    qualified by each enclosing prefix of [current].  Lets the
    [secret-compare] exemption expand [type id = int] to an immediate. *)

val covered : t -> string -> bool
(** The name's module (after redirects) was loaded into the universe. *)

val project_name : t -> string -> bool
(** The name lives in the project namespace ([Psp_*] or a loaded
    library's top component) and therefore belongs on the audit surface. *)

val canon : string -> string
(** Undo dune's name mangling: ["Psp_core__Engine.run"] ->
    ["Psp_core.Engine.run"]; the wrapper alias ["Psp_core__.X"] -> ["Psp_core.X"]. *)

val expand_aliases : (string * string) list -> string -> string
(** Expand a leading module alias repeatedly, then strip [Stdlib.]. *)
