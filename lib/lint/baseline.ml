(* Checked-in lint baseline: the escape valve that lets CI fail on *new*
   findings only.

   The file records position-independent fingerprints of accepted
   findings plus the per-function count of justified [@leak_ok] sites.
   Both are ratchets: a finding not in [accepted] fails the build, and a
   justified-site count that moves in either direction without the
   baseline being regenerated is reported as [baseline-drift] — silently
   growing the set of "reviewed" leaks is exactly what the linter
   exists to prevent. *)

module SSet = Set.Make (String)
module SMap = Map.Make (String)

type t = { accepted : SSet.t; justified : int SMap.t }

let empty = { accepted = SSet.empty; justified = SMap.empty }

(* ------------------------------------------------------------------ *)
(* Parsing.  lib/obs deliberately ships an emitter only, so the reader
   lives here: a tiny recursive-descent parser over the subset the
   baseline uses (objects, arrays, strings, integers, bools, null). *)

exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then pos := !pos + l
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 32 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' as c) | Some ('\\' as c) | Some ('/' as c) ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ();
              go ()
          | Some 'r' ->
              Buffer.add_char buf '\r';
              advance ();
              go ()
          | Some 'b' ->
              Buffer.add_char buf '\b';
              advance ();
              go ()
          | Some 'f' ->
              Buffer.add_char buf '\012';
              advance ();
              go ()
          | Some 'u' ->
              (* Baseline content is fingerprints and OCaml paths; a
                 \u escape is decoded only for the ASCII range. *)
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> Buffer.add_char buf '?'
              | None -> fail "bad \\u escape");
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          `Obj []
        end
        else begin
          let members = ref [] in
          let rec member () =
            skip_ws ();
            let key = parse_string () in
            expect ':';
            let v = parse_value () in
            members := (key, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                member ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          member ();
          `Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          `List []
        end
        else begin
          let items = ref [] in
          let rec item () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                item ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          item ();
          `List (List.rev !items)
        end
    | Some '"' -> `String (parse_string ())
    | Some 't' ->
        literal "true";
        `Bool true
    | Some 'f' ->
        literal "false";
        `Bool false
    | Some 'n' ->
        literal "null";
        `Null
    | Some ('-' | '0' .. '9') ->
        let start = !pos in
        if peek () = Some '-' then advance ();
        let rec digits () =
          match peek () with
          | Some '0' .. '9' ->
              advance ();
              digits ()
          | _ -> ()
        in
        digits ();
        let lit = String.sub s start (!pos - start) in
        (match int_of_string_opt lit with
        | Some i -> `Int i
        | None -> fail "bad number")
    | _ -> fail "unexpected character"
  in
  match parse_value () with
  | exception Parse msg -> Error msg
  | v -> (
      skip_ws ();
      if !pos <> n then Error "trailing content after JSON value"
      else
        match v with
        | `Obj members ->
            let accepted =
              match List.assoc_opt "accepted" members with
              | Some (`List items) ->
                  List.fold_left
                    (fun acc -> function
                      | `String fp -> SSet.add fp acc
                      | _ -> acc)
                    SSet.empty items
              | _ -> SSet.empty
            in
            let justified =
              match List.assoc_opt "justified" members with
              | Some (`Obj entries) ->
                  List.fold_left
                    (fun acc (k, v) ->
                      match v with `Int i -> SMap.add k i acc | _ -> acc)
                    SMap.empty entries
              | _ -> SMap.empty
            in
            Ok { accepted; justified }
        | _ -> Error "baseline must be a JSON object")

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> (
      match of_string contents with
      | Ok t -> Ok t
      | Error e -> Error (Printf.sprintf "%s: %s" path e))

(* ------------------------------------------------------------------ *)
(* Rendering *)

let justified_by_func (audits : Finding.audit list) =
  List.fold_left
    (fun acc (a : Finding.audit) ->
      if a.justified = 0 then acc
      else
        SMap.update a.a_func
          (function None -> Some a.justified | Some j -> Some (j + a.justified))
          acc)
    SMap.empty audits

let render (findings : Finding.t list) (audits : Finding.audit list) =
  let fingerprints =
    List.map Finding.fingerprint findings |> List.sort_uniq String.compare
  in
  Psp_obs.Json.Obj
    [ ("version", Psp_obs.Json.Int 1);
      ( "accepted",
        Psp_obs.Json.List (List.map (fun f -> Psp_obs.Json.String f) fingerprints) );
      ( "justified",
        Psp_obs.Json.Obj
          (SMap.bindings (justified_by_func audits)
          |> List.map (fun (k, v) -> (k, Psp_obs.Json.Int v))) ) ]

let write path (findings : Finding.t list) (audits : Finding.audit list) =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (Psp_obs.Json.to_string_pretty (render findings audits));
      Out_channel.output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Application *)

type applied = {
  kept : Finding.t list; (* findings not covered by the baseline *)
  suppressed : int; (* findings matched by [accepted] *)
  drift : Finding.t list; (* stale entries / justified-count mismatches *)
}

let apply t ~baseline_file (findings : Finding.t list) (audits : Finding.audit list) =
  let kept, matched =
    List.partition (fun f -> not (SSet.mem (Finding.fingerprint f) t.accepted)) findings
  in
  let present =
    List.fold_left (fun acc f -> SSet.add (Finding.fingerprint f) acc) SSet.empty findings
  in
  let at_baseline message =
    { Finding.file = baseline_file;
      line = 1;
      col = 0;
      rule = Finding.Baseline_drift;
      func = "<baseline>";
      message;
      chain = [] }
  in
  let stale =
    SSet.diff t.accepted present |> SSet.elements
    |> List.map (fun fp ->
           at_baseline
             (Printf.sprintf
                "stale accepted fingerprint no longer produced by the analysis: %s \
                 (regenerate with --write-baseline)"
                fp))
  in
  let actual = justified_by_func audits in
  let audit_loc func =
    List.find_opt (fun (a : Finding.audit) -> a.a_func = func) audits
  in
  let mismatches =
    SMap.merge
      (fun _ recorded actual ->
        let r = Option.value ~default:0 recorded
        and a = Option.value ~default:0 actual in
        if r = a then None else Some (r, a))
      t.justified actual
    |> SMap.bindings
    |> List.map (fun (func, (recorded, actual)) ->
           let message =
             Printf.sprintf
               "%s has %d justified leak site(s) but the baseline records %d \
                (review the [@leak_ok] changes, then --write-baseline)"
               func actual recorded
           in
           match audit_loc func with
           | Some a ->
               { Finding.file = a.a_file;
                 line = a.a_line;
                 col = 0;
                 rule = Finding.Baseline_drift;
                 func;
                 message;
                 chain = [] }
           | None -> { (at_baseline message) with func })
  in
  { kept; suppressed = List.length matched; drift = stale @ mismatches }
