(** Findings reported by the static obliviousness linter. *)

type rule =
  | Secret_branch  (** if/match/while/for steered by secret-derived data *)
  | Secret_length  (** secret-dependent allocation or encoding length *)
  | Effectful_call  (** oblivious code calling an ambient-effect function *)
  | Secret_exception  (** secret-derived data embedded in an abort/exception *)
  | Secret_telemetry
      (** secret-derived data recorded through an [Obs] metric/span sink,
          or a metric update made under secret-dependent control flow *)
  | Secret_alloc
      (** heap allocation under secret-dependent control flow — allocation
          words are exported in profiles, so the arm taken leaks *)
  | Secret_loop
      (** iterator applied to a container whose taint (hence length) is
          secret-derived: the trip count leaks beyond the length rule *)
  | Secret_compare
      (** polymorphic compare, physical equality or [Hashtbl.hash] on a
          non-immediate secret value: the structural walk is variable-time *)
  | Missing_justification  (** [\@leak_ok] without a non-empty reason string *)
  | Unanalyzed_module
      (** a module reachable from an [\@\@oblivious] entrypoint was never
          loaded into the whole-program analysis surface *)
  | Baseline_drift
      (** justified-site counts no longer match [lint-baseline.json] *)

val rule_slug : rule -> string
val rule_help : rule -> string
val all_rules : rule list

(** One step of an interprocedural trace (rendered as a SARIF code flow). *)
type frame = { fr_func : string; fr_file : string; fr_line : int; fr_col : int; fr_note : string }

type t = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  func : string;
  message : string;
  chain : frame list;  (** call path to the sink; [[]] for intraprocedural *)
}

val of_location :
  ?chain:frame list -> rule:rule -> func:string -> message:string -> Location.t -> t

val frame_of_location : func:string -> note:string -> Location.t -> frame
val compare : t -> t -> int

val fingerprint : t -> string
(** Position-independent identity used by the baseline: rule, file,
    enclosing function and message — never the line number. *)

val pp : Format.formatter -> t -> unit

type audit = {
  a_file : string;
  a_line : int;
  a_func : string;
  secrets : string list;
  justified : int;
  flagged : int;
}

val pp_audit : Format.formatter -> audit -> unit
