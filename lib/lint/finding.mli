(** Findings reported by the static obliviousness linter. *)

type rule =
  | Secret_branch  (** if/match/while/for steered by secret-derived data *)
  | Secret_length  (** secret-dependent allocation or encoding length *)
  | Effectful_call  (** oblivious code calling an ambient-effect function *)
  | Secret_exception  (** secret-derived data embedded in an abort/exception *)
  | Secret_telemetry
      (** secret-derived data recorded through an [Obs] metric/span sink,
          or a metric update made under secret-dependent control flow *)
  | Missing_justification  (** [\@leak_ok] without a non-empty reason string *)

val rule_slug : rule -> string

type t = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  func : string;
  message : string;
}

val of_location : rule:rule -> func:string -> message:string -> Location.t -> t
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

type audit = {
  a_file : string;
  a_line : int;
  a_func : string;
  secrets : string list;
  justified : int;
  flagged : int;
}

val pp_audit : Format.formatter -> audit -> unit
