(* Whole-program fixpoint over per-function taint summaries.

   Every function in the universe is summarized with the current
   environment; summaries that change re-dirty the table until the set
   of flows stabilizes (chains and wording are allowed to keep deepening
   without forcing another round).  Call cycles converge because the
   flow lattice is finite: params × (return ∪ sinks-by-rule ∪ params). *)

type t = {
  graph : Callgraph.t;
  tbl : (string, Taint.summary) Hashtbl.t;
  rounds : int;
}

let env_of graph tbl =
  { Taint.lookup =
      (fun ~current name ->
        match Callgraph.resolve graph ~current name with
        | Some fn -> Hashtbl.find_opt tbl fn.Callgraph.fn_name
        | None -> None);
    ty_abbrev = (fun ~current name -> Callgraph.abbrev graph ~current name) }

let max_rounds = 12

let compute graph =
  let tbl = Hashtbl.create 256 in
  let env = env_of graph tbl in
  let fns = Callgraph.fns graph in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < max_rounds do
    changed := false;
    incr rounds;
    List.iter
      (fun fn ->
        let s = Taint.summarize ~env fn in
        let stable =
          match Hashtbl.find_opt tbl fn.Callgraph.fn_name with
          | Some old -> Taint.summary_shape old = Taint.summary_shape s
          | None -> false
        in
        Hashtbl.replace tbl fn.Callgraph.fn_name s;
        if not stable then changed := true)
      fns
  done;
  { graph; tbl; rounds = !rounds }

let env t = env_of t.graph t.tbl
let rounds t = t.rounds
let find t name = Hashtbl.find_opt t.tbl name
let size t = Hashtbl.length t.tbl
