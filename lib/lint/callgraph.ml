(* Cross-module function universe for the whole-program analysis.

   Every loaded .cmt contributes its top-level (and nested-module, and
   functor-body) value bindings under a canonical fully qualified name:
   dune's wrapped-library mangling ("Psp_core__Engine", or the wrapper
   alias "Psp_core__.Engine") is undone so that the names the typedtree
   prints at call sites ("Psp_pir.Server.replica", "Psp_core.Engine.run")
   resolve directly.

   Functor instances are handled with *redirects*: both

     module Lm = Incremental.Make (C)          (* module-level instance *)
     include Incremental.Make (C)              (* whole-module instance *)

   record "…Lm ↦ …Incremental.Make", so a call to [Lm.next_page] lands on
   the function indexed inside the functor body.  The functor's own
   parameter stays opaque (conservative: unresolved). *)

module SMap = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* Canonical names *)

(* Undo dune's name mangling, component-wise:
   "Psp_core__Engine" -> "Psp_core.Engine"; the wrapper alias module
   "Psp_core__" -> "Psp_core".  Only capitalized components are touched —
   a value called [foo__bar] is left alone. *)
let canon name =
  let split_mangled comp =
    if comp = "" || not (comp.[0] >= 'A' && comp.[0] <= 'Z') then [ comp ]
    else begin
      let parts = ref [] and buf = Buffer.create (String.length comp) in
      let n = String.length comp in
      let i = ref 0 in
      while !i < n do
        if !i + 1 < n && comp.[!i] = '_' && comp.[!i + 1] = '_' then begin
          if Buffer.length buf > 0 then parts := Buffer.contents buf :: !parts;
          Buffer.clear buf;
          i := !i + 2
        end
        else begin
          Buffer.add_char buf comp.[!i];
          incr i
        end
      done;
      if Buffer.length buf > 0 then parts := Buffer.contents buf :: !parts;
      match List.rev !parts with [] -> [ comp ] | ps -> ps
    end
  in
  String.split_on_char '.' name |> List.concat_map split_mangled |> String.concat "."

let top_component name =
  match String.index_opt name '.' with
  | None -> name
  | Some i -> String.sub name 0 i

(* ------------------------------------------------------------------ *)
(* Attribute helper (shared shape with Taint, duplicated to keep the
   dependency order Finding < Callgraph < Taint acyclic) *)

let has_attr name attrs =
  List.exists (fun (a : Parsetree.attribute) -> a.attr_name.txt = name) attrs

(* ------------------------------------------------------------------ *)
(* The universe *)

type fn = {
  fn_name : string; (* canonical fq name, e.g. "Psp_pir.Server.Session.fetch" *)
  fn_prefix : string; (* enclosing module path, e.g. "Psp_pir.Server.Session" *)
  fn_oblivious : bool;
  fn_binding : Typedtree.value_binding;
  fn_aliases : (string * string) list; (* in-scope module aliases, innermost first *)
  fn_calls : (string * Location.t) list; (* alias-expanded callee names *)
}

type t = {
  fns : fn SMap.t ref;
  redirects : string SMap.t ref; (* canonical module ↦ canonical functor path *)
  mods : string list ref; (* canonical names of loaded modules *)
  abbrevs : Types.type_expr SMap.t ref; (* canonical type name ↦ manifest *)
}

let create () =
  { fns = ref SMap.empty;
    redirects = ref SMap.empty;
    mods = ref [];
    abbrevs = ref SMap.empty }
let fns t = List.map snd (SMap.bindings !(t.fns))
let modules t = List.rev !(t.mods)
let find t name = SMap.find_opt name !(t.fns)

(* ------------------------------------------------------------------ *)
(* Alias expansion (same semantics as Taint.normalize; kept here so the
   call-edge list is expanded with the aliases in scope at indexing time) *)

let strip_stdlib name =
  let prefix = "Stdlib." in
  if String.length name > 7 && String.sub name 0 7 = prefix then
    String.sub name 7 (String.length name - 7)
  else name

let expand_aliases aliases name =
  let rec expand fuel name =
    if fuel = 0 then name
    else
      match String.index_opt name '.' with
      | None -> name
      | Some i -> (
          let head = String.sub name 0 i in
          match List.assoc_opt head aliases with
          | Some expansion ->
              expand (fuel - 1) (expansion ^ String.sub name i (String.length name - i))
          | None -> name)
  in
  strip_stdlib (expand 8 name)

(* ------------------------------------------------------------------ *)
(* Call-edge collection: every [Texp_apply] whose head is an identifier *)

let collect_calls aliases (e : Typedtree.expression) =
  let calls = ref [] in
  let it =
    { Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.Typedtree.exp_desc with
          | Typedtree.Texp_apply (fn, _) -> (
              match fn.Typedtree.exp_desc with
              | Typedtree.Texp_ident (path, _, _) ->
                  calls := (expand_aliases aliases (Path.name path), fn.exp_loc) :: !calls
              | _ -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e) }
  in
  it.expr it e;
  List.rev !calls

(* ------------------------------------------------------------------ *)
(* Structure indexing *)

let binding_name (vb : Typedtree.value_binding) =
  match vb.vb_pat.pat_desc with Tpat_var (id, _) -> Some (Ident.name id) | _ -> None

let rec strip_constraint (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_constraint (me, _, _, _) -> strip_constraint me
  | desc -> desc

(* The functor path of [F (A) (B)], if the head is a named functor. *)
let rec functor_head (me : Typedtree.module_expr) =
  match strip_constraint me with
  | Tmod_apply (f, _, _) -> functor_head f
  | Tmod_ident (p, _) -> Some (Path.name p)
  | _ -> None

let add_fn t ~prefix ~aliases (vb : Typedtree.value_binding) =
  match binding_name vb with
  | None -> ()
  | Some name ->
      let fq = if prefix = "" then name else prefix ^ "." ^ name in
      let fn =
        { fn_name = fq;
          fn_prefix = prefix;
          fn_oblivious = has_attr "oblivious" vb.vb_attributes;
          fn_binding = vb;
          fn_aliases = aliases;
          fn_calls = collect_calls aliases vb.vb_expr }
      in
      (* First definition wins: shadowed re-definitions of the same name
         are rare and the first is the one an external caller sees least
         surprisingly wrong; precision, not soundness, is at stake. *)
      if not (SMap.mem fq !(t.fns)) then t.fns := SMap.add fq fn !(t.fns)

(* Type abbreviations ([type id = int]): the manifest, keyed under the
   canonical fq type name, so the secret-compare exemption can expand
   aliases of immediate types without rebuilding a typing environment
   from the cmt.  First definition wins, like [add_fn]. *)
let add_abbrev t ~prefix (td : Typedtree.type_declaration) =
  match td.typ_manifest with
  | None -> ()
  | Some cty ->
      let name = td.typ_name.txt in
      let fq = if prefix = "" then name else prefix ^ "." ^ name in
      if not (SMap.mem fq !(t.abbrevs)) then
        t.abbrevs := SMap.add fq cty.ctyp_type !(t.abbrevs)

let rec index_items t ~prefix ~aliases items =
  let aliases = ref aliases in
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) -> List.iter (add_fn t ~prefix ~aliases:!aliases) vbs
      | Tstr_type (_, decls) -> List.iter (add_abbrev t ~prefix) decls
      | Tstr_module mb -> index_module t ~prefix ~aliases mb
      | Tstr_recmodule mbs -> List.iter (index_module t ~prefix ~aliases) mbs
      | Tstr_include { incl_mod; _ } -> (
          (* [include F (C)] : the whole enclosing module is an instance
             of F — record a redirect so [This.f] resolves into F's body. *)
          match strip_constraint incl_mod with
          | Tmod_apply _ -> (
              match functor_head incl_mod with
              | Some f when prefix <> "" ->
                  let target = canon (expand_aliases !aliases f) in
                  t.redirects := SMap.add prefix target !(t.redirects)
              | _ -> ())
          | Tmod_structure { str_items; _ } -> index_items t ~prefix ~aliases:!aliases str_items
          | _ -> ())
      | _ -> ())
    items

and index_module t ~prefix ~aliases (mb : Typedtree.module_binding) =
  let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
  let sub_prefix = if prefix = "" then name else prefix ^ "." ^ name in
  match strip_constraint mb.mb_expr with
  | Tmod_ident (p, _) ->
      aliases := (name, expand_aliases !aliases (Path.name p)) :: !aliases
  | Tmod_structure { str_items; _ } ->
      index_items t ~prefix:sub_prefix ~aliases:!aliases str_items
  | Tmod_apply _ as app -> (
      (* [module X = F (C)]: redirect X to F, and if F's application is a
         literal structure-returning expression we still only see F. *)
      match functor_head { mb.mb_expr with mod_desc = app } with
      | Some f ->
          let target = canon (expand_aliases !aliases f) in
          t.redirects := SMap.add sub_prefix target !(t.redirects)
      | None -> ())
  | Tmod_functor (_, body) -> (
      (* Index the functor body under "Prefix.X": a redirect from each
         instance maps "Instance.f" onto "Prefix.X.f". *)
      match strip_constraint body with
      | Tmod_structure { str_items; _ } ->
          index_items t ~prefix:sub_prefix ~aliases:!aliases str_items
      | _ -> ())
  | _ -> ()

let add_structure t ~modname (str : Typedtree.structure) =
  let m = canon modname in
  t.mods := m :: !(t.mods);
  index_items t ~prefix:m ~aliases:[] str.str_items

(* ------------------------------------------------------------------ *)
(* Resolution *)

(* Rewrite the longest module prefix of [name] through the redirect
   table, repeatedly (an instance of an instance needs two hops). *)
let apply_redirects t name =
  let rewrite name =
    let rec try_prefix i =
      (* longest dotted prefix first *)
      match String.rindex_from_opt name i '.' with
      | None -> None
      | Some j -> (
          let prefix = String.sub name 0 j in
          match SMap.find_opt prefix !(t.redirects) with
          | Some target ->
              Some (target ^ String.sub name j (String.length name - j))
          | None -> try_prefix (j - 1))
    in
    try_prefix (String.length name - 1)
  in
  let rec go fuel name =
    if fuel = 0 then name
    else match rewrite name with Some name' -> go (fuel - 1) name' | None -> name
  in
  go 4 name

(* Candidate spellings of an alias-expanded name as seen from inside
   [current] (the caller's enclosing module path): the name as-is, then
   qualified by each enclosing prefix from innermost to outermost (a
   bare [helper] or a sibling [Session.fetch]). *)
let candidates ~current name =
  let rec prefixes acc p =
    match String.rindex_opt p '.' with
    | None -> List.rev (p :: acc)
    | Some i -> prefixes (p :: acc) (String.sub p 0 i)
  in
  let qualified =
    if current = "" then [] else List.map (fun p -> p ^ "." ^ name) (prefixes [] current)
  in
  name :: qualified

let first_candidate ~current name try_one =
  List.fold_left
    (fun acc cand -> match acc with Some _ -> acc | None -> try_one cand)
    None
    (candidates ~current name)

(* Resolve an alias-expanded callee name: each candidate spelling is
   tried as-is and through the functor redirects. *)
let resolve t ~current name =
  first_candidate ~current (canon name) (fun n ->
      match find t n with
      | Some fn -> Some fn
      | None -> find t (apply_redirects t n))

(* Same search over the type-abbreviation table: [abbrev t ~current
   "id"] from inside "Psp_util.Byte_io" finds "Psp_util.Byte_io.id". *)
let abbrev t ~current name =
  first_candidate ~current (canon name) (fun n ->
      match SMap.find_opt n !(t.abbrevs) with
      | Some ty -> Some ty
      | None -> SMap.find_opt (apply_redirects t n) !(t.abbrevs))

(* Does [name] live inside a module that was loaded into the universe?
   Used to separate "resolvable in principle but not a function we track"
   (e.g. a record accessor, a submodule value) from "module never
   analyzed". *)
let covered t name =
  let name = canon name in
  let name' = apply_redirects t name in
  List.exists
    (fun m ->
      let is_prefix n =
        let lm = String.length m and ln = String.length n in
        ln > lm && String.sub n 0 lm = m && n.[lm] = '.'
      in
      is_prefix name || is_prefix name')
    !(t.mods)

(* Project-namespace heuristic: the libraries all live under "Psp_*", so
   any dotted callee whose top component matches a loaded library's
   namespace — or the "Psp_" prefix itself — must be part of the audit
   surface. *)
let project_name t name =
  let top = top_component (canon name) in
  let psp_prefixed =
    String.length top >= 4 && String.sub top 0 4 = "Psp_"
  in
  psp_prefixed
  || List.exists (fun m -> top_component m = top) !(t.mods)
