(** Linter driver: load [.cmt] files, analyze, report. *)

type report = {
  findings : Finding.t list;
  audits : Finding.audit list;
  errors : string list;
  modules : int;
}

val analyze_cmt : string -> report
(** Analyze one [.cmt] file.  Unreadable files land in [errors]; interface
    and pack artifacts yield an empty report. *)

val run : string list -> report
(** Analyze every [.cmt] under the given files or directories. *)

val print_report : quiet:bool -> audit:bool -> report -> unit
val exit_code : report -> int
(** [0] clean, [1] findings, [2] input errors. *)

val main : paths:string list -> quiet:bool -> audit:bool -> int
(** Full CLI behaviour: run, print, return the exit code. *)
