(** Linter driver: load [.cmt] files, analyze, report. *)

type report = {
  findings : Finding.t list;
  audits : Finding.audit list;
  errors : string list;
  modules : int;
}

val analyze_cmt : string -> report
(** Analyze one [.cmt] file in per-module mode (no interprocedural
    environment).  Unreadable files land in [errors]; interface and pack
    artifacts yield an empty report. *)

val run : string list -> report
(** Per-module mode over every [.cmt] under the given files or
    directories. *)

val run_program : root:string -> string list -> report
(** Whole-program mode: index every [.cmt] under [root]-relative [paths]
    into one call graph, compute interprocedural summaries to a
    fixpoint, analyze each [\@\@oblivious] entrypoint with cross-module
    chains, and flag project modules reachable from the oblivious
    surface that were never loaded ([unanalyzed-module]). *)

val print_report : quiet:bool -> audit:bool -> report -> unit
val exit_code : report -> int
(** [0] clean, [1] findings, [2] input errors. *)

val main :
  ?root:string ->
  ?sarif:string ->
  ?baseline:string ->
  ?write_baseline:string ->
  paths:string list ->
  quiet:bool ->
  audit:bool ->
  unit ->
  int
(** Full CLI behaviour: run (whole-program when [root] is given),
    optionally write a SARIF report and/or regenerate the baseline,
    apply the baseline filter, print, and return the exit code
    ([--write-baseline] returns 0 unless there were input errors). *)
