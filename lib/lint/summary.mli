(** Whole-program fixpoint over per-function taint summaries. *)

type t

val compute : Callgraph.t -> t
(** Summarize every function in the universe, iterating until the set of
    interprocedural flows (return / sink / mutation) stabilizes. *)

val env : t -> Taint.env
(** Lookup environment over the computed table, resolving callee names
    through the call graph (aliases, functor redirects, enclosing
    prefixes). *)

val rounds : t -> int
(** Fixpoint rounds taken (diagnostic). *)

val find : t -> string -> Taint.summary option
(** Summary under a canonical fully qualified name. *)

val size : t -> int
