(** SARIF 2.1.0 emission for psplint findings: full rule catalog,
    per-result partial fingerprints, and codeFlows walking the
    interprocedural chain of a finding. *)

val render : Finding.t list -> Psp_obs.Json.t
val write : string -> Finding.t list -> unit
