type t = {
  xs : float array;
  ys : float array;
  row : int array; (* CSR offsets, length n+1 *)
  g_dst : int array; (* edge targets, by edge id *)
  g_src : int array; (* edge sources, by edge id *)
  g_w : float array;
  mutable rev : rev option; (* lazy reverse adjacency *)
}

and rev = { rrow : int array; redge : int array (* forward edge ids *) }

type edge = { src : int; dst : int; weight : float; id : int }

module Builder = struct
  type t = {
    xs : float Psp_util.Dyn_array.t;
    ys : float Psp_util.Dyn_array.t;
    e_src : int Psp_util.Dyn_array.t;
    e_dst : int Psp_util.Dyn_array.t;
    e_w : float Psp_util.Dyn_array.t;
  }

  let create () =
    { xs = Psp_util.Dyn_array.create ();
      ys = Psp_util.Dyn_array.create ();
      e_src = Psp_util.Dyn_array.create ();
      e_dst = Psp_util.Dyn_array.create ();
      e_w = Psp_util.Dyn_array.create () }

  let node_count b = Psp_util.Dyn_array.length b.xs

  let add_node b ~x ~y =
    Psp_util.Dyn_array.push b.xs x;
    Psp_util.Dyn_array.push b.ys y;
    node_count b - 1

  let add_edge b u v w =
    let n = node_count b in
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Graph.Builder.add_edge: unknown endpoint";
    if w <= 0.0 then invalid_arg "Graph.Builder.add_edge: weight must be positive";
    Psp_util.Dyn_array.push b.e_src u;
    Psp_util.Dyn_array.push b.e_dst v;
    Psp_util.Dyn_array.push b.e_w w

  let add_undirected b u v w =
    add_edge b u v w;
    add_edge b v u w

  let freeze b =
    let n = node_count b in
    let m = Psp_util.Dyn_array.length b.e_src in
    let srcs = Psp_util.Dyn_array.to_array b.e_src in
    let dsts = Psp_util.Dyn_array.to_array b.e_dst in
    let ws = Psp_util.Dyn_array.to_array b.e_w in
    (* counting sort of edges by source to build CSR; edge ids follow
       CSR order so out-edges of a node are contiguous *)
    let row = Array.make (n + 1) 0 in
    Array.iter (fun u -> row.(u + 1) <- row.(u + 1) + 1) srcs;
    for i = 1 to n do
      row.(i) <- row.(i) + row.(i - 1)
    done;
    let cursor = Array.copy row in
    let dst = Array.make m 0 and src = Array.make m 0 and weight = Array.make m 0.0 in
    for e = 0 to m - 1 do
      let slot = cursor.(srcs.(e)) in
      cursor.(srcs.(e)) <- slot + 1;
      src.(slot) <- srcs.(e);
      dst.(slot) <- dsts.(e);
      weight.(slot) <- ws.(e)
    done;
    { xs = Psp_util.Dyn_array.to_array b.xs;
      ys = Psp_util.Dyn_array.to_array b.ys;
      row;
      g_dst = dst;
      g_src = src;
      g_w = weight;
      rev = None }
end

let node_count t = Array.length t.xs
let edge_count t = Array.length t.g_dst

let check_node t v =
  if v < 0 || v >= node_count t then invalid_arg "Graph: node out of range"
  [@@leak_ok
    "single-compare bounds guard; out-of-range node ids abort the protocol \
     with a constant message, and aborts are public by design"]

let x t v =
  check_node t v;
  t.xs.(v)

let y t v =
  check_node t v;
  t.ys.(v)

let coords t v = (x t v, y t v)

let out_degree t v =
  check_node t v;
  t.row.(v + 1) - t.row.(v)

let iter_out t v f =
  check_node t v;
  for e = t.row.(v) to t.row.(v + 1) - 1 do
    f { src = v; dst = t.g_dst.(e); weight = t.g_w.(e); id = e }
  done

let fold_out t v f init =
  let acc = ref init in
  iter_out t v (fun e -> acc := f !acc e);
  !acc

let edge t e =
  if e < 0 || e >= edge_count t then invalid_arg "Graph.edge: id out of range";
  { src = t.g_src.(e); dst = t.g_dst.(e); weight = t.g_w.(e); id = e }

let iter_edges t f =
  for e = 0 to edge_count t - 1 do
    f { src = t.g_src.(e); dst = t.g_dst.(e); weight = t.g_w.(e); id = e }
  done

let build_rev t =
  match t.rev with
  | Some r -> r
  | None ->
      let n = node_count t and m = edge_count t in
      let rrow = Array.make (n + 1) 0 in
      Array.iter (fun v -> rrow.(v + 1) <- rrow.(v + 1) + 1) t.g_dst;
      for i = 1 to n do
        rrow.(i) <- rrow.(i) + rrow.(i - 1)
      done;
      let cursor = Array.copy rrow in
      let redge = Array.make m 0 in
      for e = 0 to m - 1 do
        let slot = cursor.(t.g_dst.(e)) in
        cursor.(t.g_dst.(e)) <- slot + 1;
        redge.(slot) <- e
      done;
      let r = { rrow; redge } in
      t.rev <- Some r;
      r

let iter_in t v f =
  check_node t v;
  let r = build_rev t in
  for i = r.rrow.(v) to r.rrow.(v + 1) - 1 do
    let e = r.redge.(i) in
    f { src = t.g_src.(e); dst = t.g_dst.(e); weight = t.g_w.(e); id = e }
  done

let euclidean t u v =
  let dx = x t u -. x t v and dy = y t u -. y t v in
  sqrt ((dx *. dx) +. (dy *. dy))

let min_weight_per_distance t =
  let best = ref infinity in
  iter_edges t (fun e ->
      let d = euclidean t e.src e.dst in
      if d > 1e-12 then best := Float.min !best (e.weight /. d));
  if !best = infinity then 1.0 else !best

let bounding_box t =
  if node_count t = 0 then invalid_arg "Graph.bounding_box: empty graph";
  let min_x = ref t.xs.(0) and max_x = ref t.xs.(0) in
  let min_y = ref t.ys.(0) and max_y = ref t.ys.(0) in
  for v = 1 to node_count t - 1 do
    min_x := Float.min !min_x t.xs.(v);
    max_x := Float.max !max_x t.xs.(v);
    min_y := Float.min !min_y t.ys.(v);
    max_y := Float.max !max_y t.ys.(v)
  done;
  (!min_x, !min_y, !max_x, !max_y)

let nearest_node t ~x:px ~y:py =
  if node_count t = 0 then invalid_arg "Graph.nearest_node: empty graph";
  let best = ref 0 and best_d = ref infinity in
  for v = 0 to node_count t - 1 do
    let dx = t.xs.(v) -. px and dy = t.ys.(v) -. py in
    let d = (dx *. dx) +. (dy *. dy) in
    if d < !best_d then begin
      best := v;
      best_d := d
    end
  done;
  !best

let reverse t =
  let n = node_count t and m = edge_count t in
  let row = Array.make (n + 1) 0 in
  Array.iter (fun v -> row.(v + 1) <- row.(v + 1) + 1) t.g_dst;
  for i = 1 to n do
    row.(i) <- row.(i) + row.(i - 1)
  done;
  let cursor = Array.copy row in
  let dst = Array.make m 0 and src = Array.make m 0 and weight = Array.make m 0.0 in
  for e = 0 to m - 1 do
    let slot = cursor.(t.g_dst.(e)) in
    cursor.(t.g_dst.(e)) <- slot + 1;
    src.(slot) <- t.g_dst.(e);
    dst.(slot) <- t.g_src.(e);
    weight.(slot) <- t.g_w.(e)
  done;
  { xs = Array.copy t.xs; ys = Array.copy t.ys; row; g_dst = dst; g_src = src; g_w = weight; rev = None }

let subgraph_of_edges t edge_ids =
  let b = Builder.create () in
  for v = 0 to node_count t - 1 do
    ignore (Builder.add_node b ~x:t.xs.(v) ~y:t.ys.(v))
  done;
  List.iter
    (fun e ->
      let e = edge t e in
      Builder.add_edge b e.src e.dst e.weight)
    edge_ids;
  Builder.freeze b
