(** Equal-sized disk pages organized in named files.

    The LBS database (§3.1) is a set of files stored as sequences of
    equal-sized pages; the PIR interface retrieves one page at a time
    and the adversary observes only (file, round) per retrieval.  This
    module is the in-memory model of such files: page payloads are real
    serialized bytes, and per-page payload lengths are recorded so the
    experiments can report page utilization (Figure 8a) and database
    sizes from actual encodings.

    Integrity: every page carries a CRC-32 computed when it is appended.
    The PIR server re-verifies it on each fetch ({!verify_page}), and
    the on-disk format stores it per page plus a whole-file checksum, so
    {!load} detects torn writes and bit rot as a typed {!error} instead
    of crashing.  {!save} is atomic (temp file + rename): a fault
    mid-save never clobbers an existing good file.

    Authenticity: a CRC defeats bit rot, not a Byzantine host — whoever
    flips page bits can recompute the checksum.  {!seal} computes a
    per-page HMAC-SHA-256 tag under a subkey derived from the
    publisher's master key (which the host never sees), bound to the
    file name and page number; {!authenticate} is the client-side gate
    that makes tampering a detectable, typed condition distinct from
    bit rot.  Tags travel with the file ({!save}/{!load}). *)

type t

type error = Corrupt of { path : string; reason : string }
(** A malformed, truncated or checksum-failing on-disk file. *)

exception Error of error

val create : name:string -> page_size:int -> t
(** Empty file.  @raise Invalid_argument if [page_size <= 0]. *)

val name : t -> string
val page_size : t -> int
val page_count : t -> int

val size_bytes : t -> int
(** [page_count * page_size] — the on-disk footprint. *)

val append : t -> bytes -> int
(** Add one page holding the given payload (padded with zeros to the
    page size); returns its page number.
    @raise Invalid_argument if the payload exceeds the page size. *)

val append_blank : t -> int
(** Add an all-zero page (used to round files up to layout boundaries). *)

val read : t -> int -> bytes
(** Full page content (payload plus padding), [page_size] bytes.
    @raise Invalid_argument on an out-of-range page number. *)

val payload : t -> int -> bytes
(** Only the stored payload of a page. *)

val payload_length : t -> int -> int

val page_crc : t -> int -> int
(** CRC-32 of the padded page, recorded at append time.
    @raise Invalid_argument on an out-of-range page number. *)

val verify_page : t -> int -> bytes -> bool
(** [verify_page t no page] checks a (purported) copy of page [no]
    against its recorded checksum — the server's integrity gate on
    every PIR fetch.
    @raise Invalid_argument on an out-of-range page number. *)

val tag_size : int
(** Bytes per authentication tag (32: HMAC-SHA-256). *)

val seal : t -> key:bytes -> unit
(** [seal t ~key] computes a per-page authentication tag
    [HMAC(derive(key, "page-auth:" ^ name), u32 page_no || page)]
    over every (padded) page — the publisher's pack-time step.
    A no-op when already sealed under the same key; a different key
    recomputes every tag.  Any later {!append} invalidates the seal
    (and a {!load}ed file reseals on first use, reproducing its stored
    tags when the key is the pack key). *)

val sealed : t -> bool

val page_tag : t -> int -> bytes
(** Tag recorded by {!seal}.
    @raise Invalid_argument if out of range or not sealed. *)

val authenticate : t -> key:bytes -> int -> bytes -> bool
(** [authenticate t ~key no page] checks a (purported) copy of page
    [no] against its pack-time tag — the client's authenticity gate on
    every PIR fetch.  [false] for an unsealed file, a wrong-sized page,
    or any forged/altered content; constant-time tag comparison.
    @raise Invalid_argument on an out-of-range page number. *)

val utilization : t -> float
(** Mean fraction of page bytes holding payload; 0 for an empty file. *)

val iter_pages : t -> (int -> bytes -> unit) -> unit

val save : t -> path:string -> unit
(** Serialize to disk (magic, name, page size, per-page payloads with
    their CRCs, whole-file checksum — padding is not stored and is
    reconstructed on load).  The write is atomic: bytes go to
    [path ^ ".tmp"], renamed over [path] only when complete.

    Failpoints: [storage.page_file.save.transient] (raises
    {!Psp_fault.Fault.Injected} before anything is written) and
    [storage.page_file.save.torn] (persists only a prefix of the blob,
    simulating a torn write that {!load} must catch). *)

val load : path:string -> (t, error) result
(** Read a file back.  Any malformation — bad magic, truncation, a
    flipped bit anywhere (caught by the whole-file and per-page
    checksums), trailing garbage — yields [Error (Corrupt _)]; no
    exception escapes for malformed input.
    @raise Sys_error if the file cannot be opened at all. *)

val load_exn : path:string -> t
(** [load], raising {!Error} on a malformed file. *)
