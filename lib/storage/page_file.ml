module Obs = Psp_obs.Obs

(* Telemetry: page-level traffic volumes only — how many pages were
   read/appended/saved — never which page (DESIGN.md §5). *)
let m_page_reads = Obs.counter "storage.page_reads"
let m_page_appends = Obs.counter "storage.page_appends"
let m_file_saves = Obs.counter "storage.file_saves"
let m_file_loads = Obs.counter "storage.file_loads"

type t = {
  name : string;
  page_size : int;
  pages : bytes Psp_util.Dyn_array.t; (* padded to page_size *)
  lengths : int Psp_util.Dyn_array.t; (* payload bytes per page *)
  crcs : int Psp_util.Dyn_array.t; (* CRC-32 of each padded page *)
  mutable tags : bytes Psp_util.Dyn_array.t option;
      (* per-page HMAC-SHA-256 tags, present once {!seal}ed *)
  mutable seal_key : bytes option;
      (* the derived auth key the tags were computed under, so resealing
         with the same master key is a no-op while a different key (e.g.
         a scratch calibration server) recomputes *)
}

type error = Corrupt of { path : string; reason : string }

exception Error of error

let corrupt path reason = raise (Error (Corrupt { path; reason }))

let create ~name ~page_size =
  if page_size <= 0 then invalid_arg "Page_file.create: page_size must be positive";
  { name;
    page_size;
    pages = Psp_util.Dyn_array.create ();
    lengths = Psp_util.Dyn_array.create ();
    crcs = Psp_util.Dyn_array.create ();
    tags = None;
    seal_key = None }

let name t = t.name
let page_size t = t.page_size
let page_count t = Psp_util.Dyn_array.length t.pages
let size_bytes t = page_count t * t.page_size

let append t payload =
  Obs.incr m_page_appends;
  let len = Bytes.length payload in
  (* build-time only: the payload length describes the file being
     constructed (or re-parsed), not any query *)
  if len > t.page_size then
    invalid_arg
      (Printf.sprintf "Page_file.append(%s): payload %d exceeds page size %d" t.name
         len t.page_size);
  let page = Bytes.make t.page_size '\000' in
  Bytes.blit payload 0 page 0 len;
  Psp_util.Dyn_array.push t.pages page;
  Psp_util.Dyn_array.push t.lengths len;
  Psp_util.Dyn_array.push t.crcs (Psp_util.Crc32.digest page);
  (* any mutation invalidates the authentication tags *)
  t.tags <- None;
  t.seal_key <- None;
  page_count t - 1

let append_blank t = append t Bytes.empty

let check t (no [@secret]) =
  (* the index is secret when reached from the PIR hot path (Session.fetch
     serves [@secret] page numbers): the abort message may only name the
     file and its public page range, never the index itself *)
  (if no < 0 || no >= page_count t then
     invalid_arg
       (Printf.sprintf "Page_file.read(%s): page out of range [0,%d)" t.name
          (page_count t)))
  [@leak_ok "bounds check fails closed; the message is redacted to public data"]
  [@@oblivious]

let read t (no [@secret]) =
  Obs.incr m_page_reads;
  check t no;
  Bytes.copy (Psp_util.Dyn_array.get t.pages no)
  [@@oblivious]

let payload_length t no =
  check t no;
  Psp_util.Dyn_array.get t.lengths no

let payload t no = Bytes.sub (read t no) 0 (payload_length t no)

let page_crc t (no [@secret]) =
  check t no;
  Psp_util.Dyn_array.get t.crcs no
  [@@oblivious]

let verify_page t (no [@secret]) page =
  (* no branch: && returns a secret-derived bool the caller must justify *)
  Bytes.length page = t.page_size && Psp_util.Crc32.digest page = page_crc t no
  [@@oblivious]

(* -- authenticated pages ------------------------------------------------

   A CRC catches bit rot but not a Byzantine host: whoever can flip page
   bits can recompute the CRC.  Tags are HMAC-SHA-256 under a subkey the
   host never sees, bound to the file name and page number, computed at
   pack time by the publisher and verified by the client on every fetch
   (DESIGN.md §3c).  The host stores and serves them but cannot forge
   them. *)

let tag_size = 32

let auth_key ~key name =
  Psp_crypto.Hmac.derive ~key ~label:("page-auth:" ^ name)

let tag_message (no [@secret]) page =
  (* fixed-width page number: the message length must not vary with the
     (secret) index *)
  let w = Psp_util.Byte_io.Writer.create ~capacity:(4 + Bytes.length page) () in
  Psp_util.Byte_io.Writer.u32 w no;
  Psp_util.Byte_io.Writer.bytes w page;
  Psp_util.Byte_io.Writer.contents w
  [@@oblivious]

let seal t ~key =
  let k = auth_key ~key t.name in
  let already = match t.seal_key with Some k0 -> Bytes.equal k0 k | None -> false in
  if not already then begin
    let tags = Psp_util.Dyn_array.create () in
    for no = 0 to page_count t - 1 do
      Psp_util.Dyn_array.push tags
        (Psp_crypto.Hmac.mac ~key:k
           (tag_message no (Psp_util.Dyn_array.get t.pages no)))
    done;
    t.tags <- Some tags;
    t.seal_key <- Some k
  end

let sealed t = t.tags <> None

let page_tag t (no [@secret]) =
  check t no;
  match t.tags with
  | None ->
      invalid_arg (Printf.sprintf "Page_file.page_tag(%s): file not sealed" t.name)
  | Some tags -> Psp_util.Dyn_array.get tags no
  [@@oblivious]

let authenticate t ~key (no [@secret]) page =
  (* no branch on secrets: the seal check is public state, and the final
     verdict is a secret-derived bool the caller must justify, exactly as
     with {!verify_page} *)
  Bytes.length page = t.page_size
  && sealed t
  && Psp_crypto.Hmac.verify
       ~key:(auth_key ~key t.name)
       (tag_message no page) ~tag:(page_tag t no)
  [@@oblivious]

let utilization t =
  if page_count t = 0 then 0.0
  else begin
    let used = Psp_util.Dyn_array.fold_left ( + ) 0 t.lengths in
    float_of_int used /. float_of_int (size_bytes t)
  end

let iter_pages t f =
  for no = 0 to page_count t - 1 do
    f no (read t no)
  done

let magic = "PSPPAGES3"
let magic_v2 = "PSPPAGES2"

(* Serialized layout: magic, name, page size, page count, tagged flag,
   then per page (payload length, padded-page CRC, [32-byte tag when
   tagged], payload bytes), and a trailing CRC-32 of everything before
   it.  The trailing checksum is what makes torn writes detectable: any
   truncation or bit flip anywhere in the body fails it before parsing
   even starts.  Files written by the previous (untagged) revision carry
   the v2 magic and still load, as unsealed. *)

let save t ~path =
  Obs.incr m_file_saves;
  Psp_fault.Fault.inject "storage.page_file.save.transient";
  let w = Psp_util.Byte_io.Writer.create ~capacity:(size_bytes t) () in
  Psp_util.Byte_io.Writer.string w magic;
  Psp_util.Byte_io.Writer.string w t.name;
  Psp_util.Byte_io.Writer.varint w t.page_size;
  Psp_util.Byte_io.Writer.varint w (page_count t);
  Psp_util.Byte_io.Writer.u8 w (if sealed t then 1 else 0);
  for no = 0 to page_count t - 1 do
    let len = payload_length t no in
    Psp_util.Byte_io.Writer.varint w len;
    Psp_util.Byte_io.Writer.u32 w (page_crc t no);
    if sealed t then Psp_util.Byte_io.Writer.bytes w (page_tag t no);
    Psp_util.Byte_io.Writer.bytes w (Bytes.sub (Psp_util.Dyn_array.get t.pages no) 0 len)
  done;
  let body = Psp_util.Byte_io.Writer.contents w in
  Psp_util.Byte_io.Writer.u32 w (Psp_util.Crc32.digest body);
  let blob = Psp_util.Byte_io.Writer.contents w in
  let blob =
    (* a torn write persists only a prefix of the blob *)
    if Psp_fault.Fault.fires "storage.page_file.save.torn" then
      Bytes.sub blob 0 (Bytes.length blob / 2)
    else blob
  in
  (* write-then-rename so a crash mid-save never clobbers an existing
     good file with a partial one *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc blob);
  Sys.rename tmp path

(* Parse diagnostics below may name page numbers and lengths: they
   describe the on-disk artifact being loaded offline, which the host
   already possesses in full — nothing query-dependent flows here. *)
let parse ~path blob =
  let total = Bytes.length blob in
  if total < String.length magic + 4 then corrupt path "truncated header";
  let body_len = total - 4 in
  let footer = Psp_util.Byte_io.Reader.of_bytes ~pos:body_len blob in
  if Psp_util.Byte_io.Reader.u32 footer <> Psp_util.Crc32.sub blob ~pos:0 ~len:body_len
  then corrupt path "file checksum mismatch (torn or corrupted write)";
  let r = Psp_util.Byte_io.Reader.of_bytes blob in
  let file_magic = Psp_util.Byte_io.Reader.string r in
  if file_magic <> magic && file_magic <> magic_v2 then corrupt path "bad magic";
  let name = Psp_util.Byte_io.Reader.string r in
  let page_size = Psp_util.Byte_io.Reader.varint r in
  if page_size <= 0 then corrupt path "non-positive page size";
  let count = Psp_util.Byte_io.Reader.varint r in
  let tagged =
    if file_magic = magic_v2 then false
    else
      match Psp_util.Byte_io.Reader.u8 r with
      | 0 -> false
      | 1 -> true
      | b -> corrupt path (Printf.sprintf "bad tagged flag %d" b)
  in
  let t = create ~name ~page_size in
  let tags = Psp_util.Dyn_array.create () in
  for no = 0 to count - 1 do
    let len = Psp_util.Byte_io.Reader.varint r in
    if len < 0 || len > page_size then
      corrupt path (Printf.sprintf "page %d: payload length %d out of range" no len);
    let stored_crc = Psp_util.Byte_io.Reader.u32 r in
    if tagged then Psp_util.Dyn_array.push tags (Psp_util.Byte_io.Reader.bytes r tag_size);
    ignore (append t (Psp_util.Byte_io.Reader.bytes r len));
    if page_crc t no <> stored_crc then
      corrupt path (Printf.sprintf "page %d: checksum mismatch" no)
  done;
  if Psp_util.Byte_io.Reader.pos r <> body_len then corrupt path "trailing bytes";
  if tagged then t.tags <- Some tags;
  t

let load ~path =
  Obs.incr m_file_loads;
  let ic = open_in_bin path in
  let blob =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* every malformation — truncation, bit flips, garbage — must surface
     as the typed error, so catch the decoder's low-level failures too *)
  match parse ~path (Bytes.of_string blob) with
  | t -> Ok t
  | exception Error e -> Stdlib.Error e
  | exception Psp_util.Byte_io.Reader.Underflow ->
      Stdlib.Error (Corrupt { path; reason = "truncated" })
  | exception Invalid_argument reason -> Stdlib.Error (Corrupt { path; reason })
  | exception Failure reason -> Stdlib.Error (Corrupt { path; reason })

let load_exn ~path =
  match load ~path with Ok t -> t | Error e -> raise (Error e)
