(* Table-driven CRC-32 (reflected, polynomial 0xEDB88320). *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32.update: slice out of range";
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get buf i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let sub buf ~pos ~len = update 0 buf ~pos ~len
let digest buf = update 0 buf ~pos:0 ~len:(Bytes.length buf)
let string s = digest (Bytes.unsafe_of_string s)
