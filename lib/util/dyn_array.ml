type 'a t = {
  mutable data : 'a array;
  mutable size : int;
  mutable dummy : 'a option;
      (* first pushed element; reused to fill fresh slots so we never
         need Obj.magic for the uninitialised tail *)
}

(* [capacity] is advisory: the backing store is only materialized at the
   first push (we have no element to fill fresh slots with before that). *)
let create ?capacity:_ () = { data = [||]; size = 0; dummy = None }

let length t = t.size
let is_empty t = t.size = 0

let check t i =
  if i < 0 || i >= t.size then invalid_arg "Dyn_array: index out of range"
  [@@leak_ok
    "single-compare bounds guard; out-of-range aborts the protocol with a \
     constant message, and aborts are public by design"]

let get t i =
  check t i;
  t.data.(i)

let set t i v =
  check t i;
  t.data.(i) <- v

let push t v =
  (match t.dummy with None -> t.dummy <- Some v | Some _ -> ());
  if t.size = Array.length t.data then begin
    let capacity = max 8 (2 * Array.length t.data) in
    let fresh = Array.make capacity v in
    Array.blit t.data 0 fresh 0 t.size;
    t.data <- fresh
  end;
  t.data.(t.size) <- v;
  t.size <- t.size + 1
  [@@leak_ok
    "dummy capture, growth and slot writes branch on the element count only, \
     never on element contents; a secret-dependent element count must be \
     justified where the pushes are issued"]

let pop t =
  if t.size = 0 then None
  else begin
    t.size <- t.size - 1;
    Some t.data.(t.size)
  end

let last t = if t.size = 0 then None else Some t.data.(t.size - 1)
let clear t = t.size <- 0
let to_array t = Array.sub t.data 0 t.size

let of_array a =
  { data = Array.copy a;
    size = Array.length a;
    dummy = (if Array.length a > 0 then Some a.(0) else None) }

let to_list t = Array.to_list (to_array t)

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.size - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let map f t = of_array (Array.map f (to_array t))
let exists p t = Array.exists p (to_array t)

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.size
