(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) checksums.

    Used by the storage layer to detect corrupted or torn page data:
    every page carries a checksum computed at append time, verified on
    PIR fetch and on file load.  Values are in [[0, 2^32)], stored as
    little-endian [u32] on disk. *)

val digest : bytes -> int
(** Checksum of a whole buffer. *)

val sub : bytes -> pos:int -> len:int -> int
(** Checksum of a slice.
    @raise Invalid_argument on an out-of-range slice. *)

val update : int -> bytes -> pos:int -> len:int -> int
(** Fold more data into a running checksum ([digest b = update 0 b ...]
    composed over consecutive slices). *)

val string : string -> int
