let varint_size v =
  if v < 0 then invalid_arg "Byte_io.varint_size: negative";
  let rec loop v acc = if v < 0x80 then acc else loop (v lsr 7) (acc + 1) in
  loop v 1

module Writer = struct
  type t = Buffer.t

  let create ?(capacity = 64) () = Buffer.create capacity
  let length = Buffer.length

  let u8 t v =
    if v < 0 || v > 0xFF then invalid_arg "Writer.u8: out of range";
    Buffer.add_char t (Char.chr v)
  [@@leak_ok
    "range guard is a single compare; violations abort encoding, and exactly \
     one byte is written per call"]

  let u16 t v =
    (if v < 0 || v > 0xFFFF then invalid_arg "Writer.u16: out of range")
    [@leak_ok "range guard is a single compare; two bytes written per call"];
    u8 t (v land 0xFF);
    u8 t (v lsr 8)

  let u32 t v =
    (if v < 0 || v > 0xFFFFFFFF then invalid_arg "Writer.u32: out of range")
    [@leak_ok "range guard is a single compare; four bytes written per call"];
    u16 t (v land 0xFFFF);
    u16 t (v lsr 16)

  let i64 t v =
    for i = 0 to 7 do
      Buffer.add_char t
        (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
    done

  let rec varint t v =
    if v < 0 then invalid_arg "Writer.varint: negative";
    if v < 0x80 then u8 t v
    else begin
      u8 t (0x80 lor (v land 0x7F));
      varint t (v lsr 7)
    end

  let float64 t v = i64 t (Int64.bits_of_float v)
  let bytes t b = Buffer.add_bytes t b

  let string t s =
    varint t (String.length s);
    Buffer.add_string t s

  let contents t = Buffer.to_bytes t
end

module Reader = struct
  type t = { buf : bytes; mutable pos : int }

  exception Underflow

  let of_bytes ?(pos = 0) buf = { buf; pos }
  let pos t = t.pos
  let remaining t = Bytes.length t.buf - t.pos

  let seek t pos =
    if pos < 0 || pos > Bytes.length t.buf then invalid_arg "Reader.seek";
    t.pos <- pos

  let u8 t =
    if t.pos >= Bytes.length t.buf then raise Underflow;
    let v = Char.code (Bytes.get t.buf t.pos) in
    t.pos <- t.pos + 1;
    v
  [@@leak_ok
    "single-compare bounds guard on the read cursor; decode failures abort \
     with a constant exception before any payload is interpreted"]

  let u16 t =
    let lo = u8 t in
    let hi = u8 t in
    lo lor (hi lsl 8)

  let u32 t =
    let lo = u16 t in
    let hi = u16 t in
    lo lor (hi lsl 16)

  let i64 t =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (u8 t)) (8 * i))
    done;
    !v

  let varint t =
    let rec loop shift acc =
      let b = u8 t in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else loop (shift + 7) acc
    in
    loop 0 0

  let float64 t = Int64.float_of_bits (i64 t)

  let bytes t n =
    if remaining t < n then raise Underflow;
    let b = Bytes.sub t.buf t.pos n in
    t.pos <- t.pos + n;
    b

  let string t =
    let n = varint t in
    Bytes.to_string (bytes t n)
end
