(** Fixed-capacity bit sets.

    Used for Arc-flag bit-vectors (one bit per region attached to every
    edge) and for visited marks in graph traversals. *)

type t

val create : int -> t
(** [create n] is a set over the universe [0..n-1], initially empty. *)

val capacity : t -> int
(** The universe size [n] the set was created with. *)

val set : t -> int -> unit
(** [set t i] adds [i] to the set.  Raises [Invalid_argument] when [i]
    is outside [0..capacity t - 1]. *)

val unset : t -> int -> unit
(** [unset t i] removes [i] from the set. *)

val mem : t -> int -> bool
(** [mem t i] is [true] iff [i] is in the set. *)

val cardinal : t -> int
(** Population count. *)

val clear : t -> unit
(** Remove every element, keeping the capacity. *)

val copy : t -> t
(** An independent copy with the same capacity and contents. *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] sets every bit of [src] in [dst].  Capacities
    must match. *)

val inter_into : dst:t -> t -> unit
(** [inter_into ~dst src] clears every bit of [dst] not set in [src].
    Capacities must match. *)

val equal : t -> t -> bool
(** Same capacity and same members. *)

val iter : (int -> unit) -> t -> unit
(** Iterate set bits in increasing order. *)

val to_list : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n l] is the set of capacity [n] holding the members of
    [l]. *)

val byte_size : t -> int
(** Serialized size in bytes: ceil(capacity/8). *)

val to_bytes : t -> bytes
(** Little-endian bit-packed encoding, [byte_size t] bytes long. *)

val of_bytes : int -> bytes -> t
(** [of_bytes n b] decodes a set of capacity [n] from [to_bytes] output. *)
