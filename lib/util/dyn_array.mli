(** Growable arrays (OCaml 5.1 predates [Stdlib.Dynarray]).

    Used by graph builders and index-construction passes that accumulate
    records of unknown count before freezing into flat arrays. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** An empty array; [capacity] pre-sizes the backing store. *)

val length : 'a t -> int
(** Number of elements currently held. *)

val is_empty : 'a t -> bool
(** [is_empty t] is [length t = 0]. *)

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-range index. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument on out-of-range index. *)

val push : 'a t -> 'a -> unit
(** Append an element, growing the backing store as needed. *)

val pop : 'a t -> 'a option
(** Remove and return the last element. *)

val last : 'a t -> 'a option
(** The last element without removing it, if any. *)

val clear : 'a t -> unit
(** Drop every element (the backing store is kept). *)

val to_array : 'a t -> 'a array
(** Snapshot of the current contents. *)

val of_array : 'a array -> 'a t
(** A dynamic array seeded with a copy of the given elements. *)

val to_list : 'a t -> 'a list
(** Contents in index order. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Apply a function to every element in index order. *)

val iteri : (int -> 'a -> unit) -> 'a t -> unit
(** Like {!iter}, also passing the element's index. *)

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Fold over the elements in index order. *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** A fresh dynamic array of the images, in order. *)

val exists : ('a -> bool) -> 'a t -> bool
(** Whether any element satisfies the predicate. *)

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** Sort in place by the given comparison. *)
