(** Little-endian byte stream encoding and decoding.

    All on-page records (node entries, adjacency lists, look-up entries,
    region-set deltas) are serialized through this module so that sizes
    are measured in real bytes — page utilization and database sizes in
    the experiments are computed from these encodings. *)

(** Append-only growable buffer of encoded values. *)
module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** A fresh writer; [capacity] pre-sizes the backing buffer. *)

  val length : t -> int
  (** Bytes written so far. *)

  val u8 : t -> int -> unit
  (** @raise Invalid_argument if outside [0,255]. *)

  val u16 : t -> int -> unit
  (** Little-endian 16-bit unsigned write.
      @raise Invalid_argument if outside [0,65535]. *)

  val u32 : t -> int -> unit
  (** Little-endian 32-bit unsigned write.
      @raise Invalid_argument if outside the unsigned range. *)

  val i64 : t -> int64 -> unit
  (** Little-endian 64-bit write. *)

  val varint : t -> int -> unit
  (** LEB128 encoding of a non-negative integer. *)

  val float64 : t -> float -> unit
  (** IEEE-754 double, little-endian. *)

  val bytes : t -> bytes -> unit
  (** Raw bytes, no length prefix. *)

  val string : t -> string -> unit
  (** Length-prefixed (varint) string. *)

  val contents : t -> bytes
  (** Copy of everything written so far. *)
end

(** Cursor over an immutable byte buffer; reads mirror {!Writer}. *)
module Reader : sig
  type t

  exception Underflow
  (** Raised when a read runs past the end of the buffer. *)

  val of_bytes : ?pos:int -> bytes -> t
  (** A reader over [b], starting at [pos] (default 0). *)

  val pos : t -> int
  (** Current cursor position. *)

  val remaining : t -> int
  (** Bytes left before {!Underflow}. *)

  val seek : t -> int -> unit
  (** Move the cursor to an absolute position. *)

  val u8 : t -> int
  (** Read one unsigned byte. *)

  val u16 : t -> int
  (** Read a little-endian 16-bit unsigned value. *)

  val u32 : t -> int
  (** Read a little-endian 32-bit unsigned value. *)

  val i64 : t -> int64
  (** Read a little-endian 64-bit value. *)

  val varint : t -> int
  (** Read a LEB128 non-negative integer. *)

  val float64 : t -> float
  (** Read an IEEE-754 double. *)

  val bytes : t -> int -> bytes
  (** [bytes r n] reads exactly [n] raw bytes. *)

  val string : t -> string
  (** Read a varint-length-prefixed string. *)
end

val varint_size : int -> int
(** Encoded size in bytes of a non-negative integer, without encoding it. *)
