(** Minimal JSON emission, shared by the metrics exporter and the bench
    harness.

    Only what the observability artifacts need: objects, arrays, strings
    with full escaping, integers and floats.  Floats are rendered with
    ["%.17g"] so a round-trip through any conforming parser recovers the
    exact double; non-finite floats (which JSON cannot represent) are
    rendered as strings ["inf"], ["-inf"] and ["nan"].  No parser lives
    here — the test suite carries its own tiny reader to validate
    round-trips from the outside. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
      (** Members are emitted in the given order (callers sort when a
          canonical form matters). *)

val escape : string -> string
(** [escape s] is [s] with the JSON string escapes applied — quotes,
    backslash, control characters — {e without} the surrounding
    quotes. *)

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for committed artifacts meant to be
    read and diffed by humans (the [BENCH_*.json] files). *)
