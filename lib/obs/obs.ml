(* Process-global observability registry.  Zero dependencies by design:
   everything from lib/fault up instruments through this module, so it
   must sit at the very bottom of the library stack.

   Leakage policy (DESIGN.md §5): only publicly-derivable quantities may
   reach this module.  The enforcement lives in psplint's
   secret-telemetry rule, which treats every entry point below as a
   sink; nothing here inspects its inputs. *)

(* ---------------------------------------------------------------- *)
(* Counters *)

type counter = { c_name : string; mutable c_value : int }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace counters name c;
      c

let add c n =
  if n < 0 then
    invalid_arg (Printf.sprintf "Obs.add(%s): negative delta" c.c_name);
  let v = c.c_value + n in
  (* saturate instead of wrapping past max_int *)
  c.c_value <- (if v < c.c_value then max_int else v)

let incr c = add c 1
let count c = c.c_value

(* ---------------------------------------------------------------- *)
(* Gauges *)

type gauge = { mutable g_value : float }

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
      let g = { g_value = 0.0 } in
      Hashtbl.replace gauges name g;
      g

let set g v = g.g_value <- v
let set_max g v = if v > g.g_value then g.g_value <- v
let get g = g.g_value

(* ---------------------------------------------------------------- *)
(* Histograms: 64 log2 buckets over a 1 ns base resolution.  Constant
   memory whatever the sample count. *)

let n_buckets = 64
let base = 1e-9

type histogram = {
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          h_buckets = Array.make n_buckets 0;
          h_count = 0;
          h_sum = 0.0;
          h_min = nan;
          h_max = nan;
        }
      in
      Hashtbl.replace histograms name h;
      h

let bucket_of v =
  if not (v >= base) then 0 (* catches negatives, sub-base and nan *)
  else if v = infinity then n_buckets - 1
  else
    (* v/base in [2^(e-1), 2^e)  <=>  frexp (v/base) = (_, e) *)
    let _, e = Float.frexp (v /. base) in
    if e < 1 then 1 else if e > n_buckets - 1 then n_buckets - 1 else e

let bucket_bounds i =
  if i <= 0 then (neg_infinity, base)
  else if i >= n_buckets - 1 then (base *. (2.0 ** float_of_int (n_buckets - 2)), infinity)
  else (base *. (2.0 ** float_of_int (i - 1)), base *. (2.0 ** float_of_int i))

let observe h v =
  let i = bucket_of v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if h.h_count = 1 then begin
    h.h_min <- v;
    h.h_max <- v
  end
  else begin
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end

let samples h = h.h_count
let sum h = h.h_sum
let min_value h = h.h_min
let max_value h = h.h_max
let bucket_count h i = h.h_buckets.(i)

let quantile h q =
  if h.h_count = 0 then nan
  else if q <= 0.0 then h.h_min
  else if q >= 1.0 then h.h_max
  else begin
    (* nearest rank over the bucket counts, then clamp the bucket's
       upper bound into the exact observed range *)
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int h.h_count)) in
      if r < 1 then 1 else if r > h.h_count then h.h_count else r
    in
    let i = ref 0 and cum = ref h.h_buckets.(0) in
    while !cum < rank do
      Stdlib.incr i;
      cum := !cum + h.h_buckets.(!i)
    done;
    let _, hi = bucket_bounds !i in
    let v = if Float.is_finite hi then hi else h.h_max in
    Float.min h.h_max (Float.max h.h_min v)
  end

(* ---------------------------------------------------------------- *)
(* Spans *)

let clock = ref Sys.time
let set_clock f = clock := f

(* global page-I/O odometer; spans snapshot it on entry *)
let pages_total = ref 0

type span = {
  sp_path : string;
  (* entry snapshots are mutable so a context switch can shift them
     forward by whatever accrued while the owning fiber was parked —
     see [switch] below *)
  mutable sp_t0 : float;
  mutable sp_alloc0 : float;
  mutable sp_pages0 : int;
  mutable sp_open : bool;
}

type span_stats = {
  calls : int;
  seconds : float;
  alloc_bytes : float;
  pages : int;
}

type agg = {
  mutable a_calls : int;
  mutable a_seconds : float;
  mutable a_alloc : float;
  mutable a_pages : int;
}

let span_aggs : (string, agg) Hashtbl.t = Hashtbl.create 32
let stack : span list ref = ref []
let misnested () = counter "obs.span.misnested"
let add_pages n = pages_total := !pages_total + n

let current_path () =
  match !stack with [] -> "" | sp :: _ -> sp.sp_path

let enter name =
  let path =
    match !stack with [] -> name | sp :: _ -> sp.sp_path ^ "/" ^ name
  in
  let sp =
    {
      sp_path = path;
      sp_t0 = !clock ();
      sp_alloc0 = Gc.allocated_bytes ();
      sp_pages0 = !pages_total;
      sp_open = true;
    }
  in
  stack := sp :: !stack;
  sp
  [@@leak_ok
    "wall-clock and GC sampling for constant-shape spans: every plan step \
     enters its span unconditionally, so the sampling schedule is plan-derived, \
     never secret-derived"]

let finalize sp =
  sp.sp_open <- false;
  let agg =
    match Hashtbl.find_opt span_aggs sp.sp_path with
    | Some a -> a
    | None ->
        let a = { a_calls = 0; a_seconds = 0.0; a_alloc = 0.0; a_pages = 0 } in
        Hashtbl.replace span_aggs sp.sp_path a;
        a
  in
  agg.a_calls <- agg.a_calls + 1;
  agg.a_seconds <- agg.a_seconds +. (!clock () -. sp.sp_t0);
  agg.a_alloc <- agg.a_alloc +. (Gc.allocated_bytes () -. sp.sp_alloc0);
  agg.a_pages <- agg.a_pages + (!pages_total - sp.sp_pages0)
  [@@leak_ok
    "span aggregation samples the clock and allocator on the same \
     constant-shape schedule as enter; aggregates are published knowingly \
     through the snapshot API"]

let exit sp =
  if not sp.sp_open then incr (misnested ())
  else if not (List.memq sp !stack) then begin
    (* open but no longer on the stack: it was force-closed by an
       enclosing exit; the double anomaly was already counted there *)
    sp.sp_open <- false;
    incr (misnested ())
  end
  else begin
    (* force-close anything opened inside [sp] and not exited *)
    let rec pop () =
      match !stack with
      | [] -> () (* unreachable: memq checked above *)
      | top :: rest ->
          stack := rest;
          finalize top;
          if top != sp then begin
            incr (misnested ());
            pop ()
          end
    in
    pop ()
  end

let with_span name f =
  let sp = enter name in
  Fun.protect ~finally:(fun () -> exit sp) f

(* -------------------------------------------------------------- *)
(* Span contexts: cooperative fibers (lib/async) run each session on
   its own span stack.  A context remembers its stack plus the clock /
   allocator / page-odometer readings at the instant it was last
   switched out; switching back in shifts every still-open span's entry
   snapshot forward by exactly what accrued in between, so time, bytes
   and pages spent by *other* fibers are never attributed to a parked
   fiber's spans.  This is what keeps [shape] byte-identical between a
   pipelined and a synchronous run of the same plans. *)

type context = {
  ctx_stack : span list;
  ctx_t : float;
  ctx_alloc : float;
  ctx_pages : int;
}

let context () =
  { ctx_stack = [];
    ctx_t = !clock ();
    ctx_alloc = Gc.allocated_bytes ();
    ctx_pages = !pages_total }
  [@@leak_ok
    "clock/allocator snapshots for context bookkeeping: taken on the fiber \
     scheduler's public switch points, never on secret-dependent paths"]

let switch next =
  let now_t = !clock () in
  let now_a = Gc.allocated_bytes () in
  let now_p = !pages_total in
  let prev =
    { ctx_stack = !stack; ctx_t = now_t; ctx_alloc = now_a; ctx_pages = now_p }
  in
  let dt = now_t -. next.ctx_t in
  let da = now_a -. next.ctx_alloc in
  let dp = now_p - next.ctx_pages in
  List.iter
    (fun sp ->
      sp.sp_t0 <- sp.sp_t0 +. dt;
      sp.sp_alloc0 <- sp.sp_alloc0 +. da;
      sp.sp_pages0 <- sp.sp_pages0 + dp)
    next.ctx_stack;
  stack := next.ctx_stack;
  prev
  [@@leak_ok
    "context switches happen on the fiber scheduler's public schedule; the \
     shifted quantities are the same constant-shape samples enter/finalize \
     already take"]

let span_stats path =
  Hashtbl.find_opt span_aggs path
  |> Option.map (fun a ->
         {
           calls = a.a_calls;
           seconds = a.a_seconds;
           alloc_bytes = a.a_alloc;
           pages = a.a_pages;
         })

(* ---------------------------------------------------------------- *)
(* Registry control & export *)

let reset () =
  (* zero in place: handles interned by other modules stay valid *)
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.0) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.h_buckets 0 n_buckets 0;
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_min <- nan;
      h.h_max <- nan)
    histograms;
  Hashtbl.reset span_aggs;
  List.iter (fun sp -> sp.sp_open <- false) !stack;
  stack := [];
  pages_total := 0

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

(* The shape export: one sorted line per instrument, public fields
   only.  Durations, allocation and gauge values are content-dependent
   and deliberately absent — see the .mli preamble. *)
let shape () =
  let lines = ref [] in
  let push l = lines := l :: !lines in
  List.iter
    (fun k ->
      let c = Hashtbl.find counters k in
      push (Printf.sprintf "counter %s = %d" k c.c_value))
    (sorted_keys counters);
  List.iter (fun k -> push (Printf.sprintf "gauge %s" k)) (sorted_keys gauges);
  List.iter
    (fun k ->
      let h = Hashtbl.find histograms k in
      push (Printf.sprintf "hist %s n=%d" k h.h_count))
    (sorted_keys histograms);
  List.iter
    (fun k ->
      let a = Hashtbl.find span_aggs k in
      push (Printf.sprintf "span %s calls=%d pages=%d" k a.a_calls a.a_pages))
    (sorted_keys span_aggs);
  String.concat "\n" (List.rev !lines)

let to_json () =
  let open Json in
  let member_of_counter k = (k, Int (Hashtbl.find counters k).c_value) in
  let member_of_gauge k = (k, Float (Hashtbl.find gauges k).g_value) in
  let member_of_hist k =
    let h = Hashtbl.find histograms k in
    let buckets =
      (* sparse: only occupied buckets *)
      let acc = ref [] in
      for i = n_buckets - 1 downto 0 do
        if h.h_buckets.(i) > 0 then
          acc := List [ Int i; Int h.h_buckets.(i) ] :: !acc
      done;
      List !acc
    in
    ( k,
      Obj
        [
          ("count", Int h.h_count);
          ("sum", Float h.h_sum);
          ("min", Float h.h_min);
          ("max", Float h.h_max);
          ("p50", Float (quantile h 0.5));
          ("p95", Float (quantile h 0.95));
          ("p99", Float (quantile h 0.99));
          ("buckets", buckets);
        ] )
  in
  let member_of_span k =
    let a = Hashtbl.find span_aggs k in
    ( k,
      Obj
        [
          ("calls", Int a.a_calls);
          ("seconds", Float a.a_seconds);
          ("alloc_bytes", Float a.a_alloc);
          ("pages", Int a.a_pages);
        ] )
  in
  Obj
    [
      ("counters", Obj (List.map member_of_counter (sorted_keys counters)));
      ("gauges", Obj (List.map member_of_gauge (sorted_keys gauges)));
      ("histograms", Obj (List.map member_of_hist (sorted_keys histograms)));
      ("spans", Obj (List.map member_of_span (sorted_keys span_aggs)));
    ]

let pp fmt () =
  let pr f = Format.fprintf fmt f in
  let keys = sorted_keys counters in
  if keys <> [] then begin
    pr "counters@.";
    List.iter
      (fun k -> pr "  %-44s %d@." k (Hashtbl.find counters k).c_value)
      keys
  end;
  let keys = sorted_keys gauges in
  if keys <> [] then begin
    pr "gauges@.";
    List.iter
      (fun k -> pr "  %-44s %g@." k (Hashtbl.find gauges k).g_value)
      keys
  end;
  let keys = sorted_keys histograms in
  if keys <> [] then begin
    pr "histograms (seconds)@.";
    List.iter
      (fun k ->
        let h = Hashtbl.find histograms k in
        if h.h_count = 0 then pr "  %-44s (empty)@." k
        else
          pr "  %-44s n=%d mean=%.6g p50=%.6g p95=%.6g p99=%.6g max=%.6g@." k
            h.h_count
            (h.h_sum /. float_of_int h.h_count)
            (quantile h 0.5) (quantile h 0.95) (quantile h 0.99) h.h_max)
      keys
  end;
  let keys = sorted_keys span_aggs in
  if keys <> [] then begin
    pr "spans@.";
    List.iter
      (fun k ->
        let a = Hashtbl.find span_aggs k in
        pr "  %-44s calls=%d time=%.6gs alloc=%.3gMB pages=%d@." k a.a_calls
          a.a_seconds
          (a.a_alloc /. 1048576.0)
          a.a_pages)
      keys
  end
