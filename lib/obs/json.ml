(* Hand-rolled JSON emitter: the observability layer must stay
   zero-dependency so every library in the repo can link it. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_nan f then "\"nan\""
  else if f = Float.infinity then "\"inf\""
  else if f = Float.neg_infinity then "\"-inf\""
  else
    let s = Printf.sprintf "%.17g" f in
    (* make sure the token still parses as a JSON number, not an int *)
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let rec emit ~indent ~level buf v =
  let nl pad =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * pad) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          emit ~indent ~level:(level + 1) buf item)
        items;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if indent then "\": " else "\":");
          emit ~indent ~level:(level + 1) buf item)
        members;
      nl level;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit ~indent:false ~level:0 buf v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 256 in
  emit ~indent:true ~level:0 buf v;
  Buffer.contents buf
