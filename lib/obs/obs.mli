(** Leakage-safe observability: counters, gauges, latency histograms,
    hierarchical spans and profiling hooks for the PIR query pipeline.

    {1 The constant-shape contract}

    In this system the adversary model is unusual: the server operator
    is the adversary, and anything the process records about its own
    execution — a counter, a log line, a span — is {e visible} to them.
    Instrumentation therefore obeys one rule, mirrored from the paper's
    Theorem 1 and enforced statically by [psplint]'s [secret-telemetry]
    rule (see DESIGN.md §5 and docs/OBSERVABILITY.md):

    {e only publicly-derivable quantities may be recorded.}

    Concretely: metric {e names} must be static strings or derived from
    public configuration (file names, scheme ids); counter {e deltas}
    must be constants or public plan quantities (pages per region,
    rounds per query); and no metric update may sit under
    secret-dependent control flow inside an [[@@oblivious]] function
    unless the site carries a justified [[@leak_ok]].  Durations and
    allocation volumes of whole oblivious rounds are recordable because
    the plan fixes the work done per round; per-item timings keyed by
    secret data are not.

    The {!shape} export makes the contract testable: it renders every
    registered metric's {e structure} (names, counter values, sample
    and call counts, page attributions) while omitting every
    content-dependent measurement (durations, allocation).  Two queries
    executed under the same public plan must produce byte-identical
    shapes; [test/test_obs.ml] enforces this.

    {1 Design notes}

    The substrate is zero-dependency (stdlib only) so every library in
    the repository can link it, including [lib/fault] and
    [lib/storage] at the bottom of the stack.  All state lives in one
    process-global registry: instruments are interned by name, so
    [counter "x"] returns the same handle everywhere, and modules may
    intern at initialisation time without coordination.  Histograms use
    a fixed array of 64 log2 buckets — constant memory regardless of
    sample count.  Counters saturate at [max_int] instead of wrapping.
    The registry is not thread-safe; the query pipeline is
    single-threaded per session.  *)

(** {1 Counters} *)

type counter
(** A monotonic counter.  Saturates at [max_int]; never wraps. *)

val counter : string -> counter
(** [counter name] interns (or retrieves) the counter [name].  Names
    are conventionally dotted paths, e.g. ["pir.fetch.pages"]. *)

val incr : counter -> unit
(** Add 1. *)

val add : counter -> int -> unit
(** [add c n] adds [n] (which must be [>= 0]; negative deltas raise
    [Invalid_argument] — counters are monotonic).  Saturates at
    [max_int]. *)

val count : counter -> int
(** Current value. *)

(** {1 Gauges} *)

type gauge
(** A point-in-time float value (sizes, ratios, configuration). *)

val gauge : string -> gauge
(** Intern (or retrieve) the gauge [name]. *)

val set : gauge -> float -> unit
(** Replace the gauge's value. *)

val set_max : gauge -> float -> unit
(** Raise the gauge to [v] if [v] exceeds the current value — a
    high-watermark update (peak queue depth, widest batch).  Values at
    or below the current reading are ignored, so the gauge is monotone
    between {!reset}s. *)

val get : gauge -> float
(** Current value (0.0 before any {!set}). *)

(** {1 Histograms}

    Fixed-shape log2 histograms sized for latencies in seconds: 64
    buckets over a base resolution of 1 ns.  Bucket 0 catches values
    below 1 ns (including 0), bucket [i] for [1 <= i <= 62] covers
    [[base·2{^i-1}, base·2{^i})], and bucket 63 is the overflow
    bucket.  Exact count, sum, min and max are tracked alongside the
    buckets, so means are exact and quantiles are bucket-resolution
    estimates (within a factor of 2). *)

type histogram

val histogram : string -> histogram
(** Intern (or retrieve) the histogram [name]. *)

val observe : histogram -> float -> unit
(** Record one sample (typically seconds). *)

val samples : histogram -> int
(** Number of recorded samples. *)

val sum : histogram -> float
(** Sum of all recorded samples. *)

val min_value : histogram -> float
(** Smallest recorded sample ([nan] when empty). *)

val max_value : histogram -> float
(** Largest recorded sample ([nan] when empty). *)

val bucket_of : float -> int
(** The bucket index a value falls into (exposed for tests). *)

val bucket_bounds : int -> float * float
(** [bucket_bounds i] is the half-open interval [[lo, hi)] covered by
    bucket [i]; bucket 0 has [lo = neg_infinity] and bucket 63 has
    [hi = infinity]. *)

val bucket_count : histogram -> int -> int
(** Occupancy of one bucket. *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [[0, 1]]: a nearest-rank estimate at
    bucket resolution, clamped to the exact observed [[min, max]].
    [nan] when the histogram is empty. *)

(** {1 Spans}

    Hierarchical regions covering the query lifecycle (plan selection,
    per-round oblivious fetch, PIR server work, decode, path
    assembly).  A span's {e path} is its name prefixed by the names of
    the spans open at entry, joined with ['/'] — e.g.
    ["query/fetch_regions/pir_fetch"].  Per-path aggregates record
    call count, inclusive wall-clock, inclusive allocated bytes
    (profiling hook: {!Gc.allocated_bytes} deltas) and inclusive page
    I/O (profiling hook: {!add_pages} deltas), so hot phases can be
    attributed without a sampling profiler.

    Mismatched exits never raise: exiting a span that is not the
    innermost force-closes the spans opened inside it, and each
    anomaly increments the ["obs.span.misnested"] counter so tests
    (and CI) can assert clean nesting. *)

type span

val enter : string -> span
(** Open a span named [name] under the currently-innermost span. *)

val exit : span -> unit
(** Close a span, recording its aggregates.  Closing twice, or closing
    while inner spans are still open, increments
    ["obs.span.misnested"] (inner spans are force-closed). *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a span, closing it even on
    exceptions.  Preferred over {!enter}/{!exit} pairs. *)

val add_pages : int -> unit
(** Attribute [n] physical page retrievals to every currently-open
    span (the page-I/O profiling hook; called by the PIR server at
    each page retrieval — fetch, bulk download or plain fetch). *)

type span_stats = {
  calls : int;  (** completed executions of this path *)
  seconds : float;  (** inclusive wall-clock total *)
  alloc_bytes : float;  (** inclusive allocation total *)
  pages : int;  (** inclusive page retrievals (see {!add_pages}) *)
}

val span_stats : string -> span_stats option
(** Aggregates for one span path, if it has completed at least once. *)

val current_path : unit -> string
(** Path of the innermost open span ([""] when none are open). *)

(** {1 Span contexts}

    Cooperative fibers ({!Psp_async.Pipeline}) run each session on its
    own span stack.  A {!context} captures a stack together with the
    clock, allocator and page-odometer readings at the instant it was
    switched out; {!switch}ing back in shifts every still-open span's
    entry snapshot forward by exactly what accrued in between.  Time,
    allocation and page I/O spent by {e other} fibers while this one
    was parked are therefore never attributed to its spans — which is
    what keeps {!shape} byte-identical between a pipelined and a
    synchronous execution of the same plans, whatever the interleaving. *)

type context

val context : unit -> context
(** A fresh context with an empty span stack, snapshotted now.  Spans
    entered after switching into it start a new root path. *)

val switch : context -> context
(** [switch next] installs [next]'s span stack as the current one and
    returns the previous state as a context (capture it to switch
    back).  Open spans carried by [next] have their entry snapshots
    shifted so the parked interval is excluded from their aggregates. *)

(** {1 Registry control & export} *)

val set_clock : (unit -> float) -> unit
(** Replace the span clock (default {!Sys.time}).  Tests inject a
    deterministic counter; the bench harness injects the simulated
    cost-model clock it already maintains. *)

val reset : unit -> unit
(** Zero every registered instrument in place (handles held by other
    modules stay valid), drop span aggregates and abandon any open
    spans.  Used between bench experiments and by tests. *)

val shape : unit -> string
(** Canonical, deterministic rendering of the metric {e shape}: one
    sorted line per instrument carrying only publicly-derivable
    fields — counter values, histogram sample counts, span call and
    page counts, gauge and histogram names.  Durations, allocation
    volumes and gauge values are deliberately omitted (they vary with
    machine noise, never with the plan).  Two same-plan queries must
    produce equal shapes; see the module preamble. *)

val to_json : unit -> Json.t
(** Full snapshot (including durations and allocation) as JSON, for
    [BENCH_*.json] artifacts and [pspc --metrics]. *)

val pp : Format.formatter -> unit -> unit
(** Human-readable report (the [pspc stats] output). *)
