(** Keyed Bloom filters over integer elements.

    The Williams–Sion PIR server stores, per pyramid level, an encrypted
    Bloom filter that lets the SCP test level membership without
    touching the level's buckets.  Probe positions come from a keyed PRF
    so the host cannot predict them. *)

type t

val create : key:bytes -> label:string -> bits:int -> hashes:int -> t
(** Empty filter of [bits] cells probed [hashes] times per element.
    @raise Invalid_argument unless both are positive. *)

val sized_for : key:bytes -> label:string -> expected:int -> fp_rate:float -> t
(** Filter dimensioned by the standard formulas for [expected] insertions
    at target false-positive rate [fp_rate]. *)

val add : t -> int -> unit
(** Insert an element (idempotent for the filter's purposes). *)

val mem : t -> int -> bool
(** No false negatives; false positives at roughly the design rate. *)

val count : t -> int
(** Number of [add] calls so far. *)

val bits : t -> int
(** Cell count the filter was created with. *)

val fp_estimate : t -> float
(** Expected false-positive probability given current load. *)

val clear : t -> unit
(** Empty the filter in place, keeping key, size and probe count. *)
