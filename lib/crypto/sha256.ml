(* All 32-bit words are kept in native ints masked to 32 bits. *)

let mask = 0xFFFFFFFF

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
     0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
     0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
     0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

type ctx = {
  h : int array; (* 8 state words *)
  block : bytes; (* 64-byte input block being filled *)
  mutable fill : int;
  mutable total : int; (* total message bytes fed *)
  w : int array; (* 64-entry message schedule scratch *)
}

let init () =
  { h =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
         0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    block = Bytes.create 64;
    fill = 0;
    total = 0;
    w = Array.make 64 0 }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let compress ctx =
  let w = ctx.w in
  for i = 0 to 15 do
    w.(i) <-
      (Char.code (Bytes.get ctx.block (4 * i)) lsl 24)
      lor (Char.code (Bytes.get ctx.block ((4 * i) + 1)) lsl 16)
      lor (Char.code (Bytes.get ctx.block ((4 * i) + 2)) lsl 8)
      lor Char.code (Bytes.get ctx.block ((4 * i) + 3))
  done;
  for i = 16 to 63 do
    let s0 = rotr w.(i - 15) 7 lxor rotr w.(i - 15) 18 lxor (w.(i - 15) lsr 3) in
    let s1 = rotr w.(i - 2) 17 lxor rotr w.(i - 2) 19 lxor (w.(i - 2) lsr 10) in
    w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land mask
  done;
  let a = ref ctx.h.(0) and b = ref ctx.h.(1) and c = ref ctx.h.(2) in
  let d = ref ctx.h.(3) and e = ref ctx.h.(4) and f = ref ctx.h.(5) in
  let g = ref ctx.h.(6) and hh = ref ctx.h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let t1 = (!hh + s1 + ch + k.(i) + w.(i)) land mask in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land mask
  done;
  ctx.h.(0) <- (ctx.h.(0) + !a) land mask;
  ctx.h.(1) <- (ctx.h.(1) + !b) land mask;
  ctx.h.(2) <- (ctx.h.(2) + !c) land mask;
  ctx.h.(3) <- (ctx.h.(3) + !d) land mask;
  ctx.h.(4) <- (ctx.h.(4) + !e) land mask;
  ctx.h.(5) <- (ctx.h.(5) + !f) land mask;
  ctx.h.(6) <- (ctx.h.(6) + !g) land mask;
  ctx.h.(7) <- (ctx.h.(7) + !hh) land mask

let feed ctx data =
  let n = Bytes.length data in
  ctx.total <- ctx.total + n;
  let pos = ref 0 in
  while !pos < n do
    let take = min (64 - ctx.fill) (n - !pos) in
    Bytes.blit data !pos ctx.block ctx.fill take;
    ctx.fill <- ctx.fill + take;
    pos := !pos + take;
    if ctx.fill = 64 then begin
      compress ctx;
      ctx.fill <- 0
    end
  done
  [@@leak_ok
    "compression schedule depends only on the input length, never on content; \
     every length fed here is public (block-padded pages, fixed-size tags)"]

let feed_string ctx s = feed ctx (Bytes.of_string s)

let finalize ctx =
  let bit_len = Int64.of_int (8 * ctx.total) in
  (* padding: 0x80, zeros, 8-byte big-endian bit length *)
  feed ctx (Bytes.make 1 '\x80');
  let zeros = (64 + 56 - ctx.fill) mod 64 in
  if zeros > 0 then feed ctx (Bytes.make zeros '\000');
  let len = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set len i
      (Char.chr (Int64.to_int (Int64.shift_right_logical bit_len (8 * (7 - i))) land 0xFF))
  done;
  feed ctx len;
  assert (ctx.fill = 0);
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    Bytes.set out (4 * i) (Char.chr ((ctx.h.(i) lsr 24) land 0xFF));
    Bytes.set out ((4 * i) + 1) (Char.chr ((ctx.h.(i) lsr 16) land 0xFF));
    Bytes.set out ((4 * i) + 2) (Char.chr ((ctx.h.(i) lsr 8) land 0xFF));
    Bytes.set out ((4 * i) + 3) (Char.chr (ctx.h.(i) land 0xFF))
  done;
  out
  [@@leak_ok
    "padding arithmetic depends only on the fed length, never on content; the \
     32-byte output buffer is fixed-size"]

let digest data =
  let ctx = init () in
  feed ctx data;
  finalize ctx

let digest_string s = digest (Bytes.of_string s)

let hex b =
  let buf = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf
