(** SHA-256 (FIPS 180-4), pure OCaml.

    The hash underlying every keyed primitive in the simulated secure
    co-processor: HMAC, the PRF, the Feistel round functions and Bloom
    filter indexing.  Verified against the FIPS test vectors in the test
    suite. *)

type ctx
(** Streaming hash context. *)

val init : unit -> ctx
(** A fresh context. *)

val feed : ctx -> bytes -> unit
(** Absorb a chunk; chunks may arrive at any granularity. *)

val feed_string : ctx -> string -> unit
(** {!feed} for strings. *)

val finalize : ctx -> bytes
(** 32-byte digest.  The context must not be reused afterwards. *)

val digest : bytes -> bytes
(** One-shot hash. *)

val digest_string : string -> bytes
(** One-shot hash of a string. *)

val hex : bytes -> string
(** Lowercase hexadecimal rendering of a digest. *)
