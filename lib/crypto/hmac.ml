let block_size = 64

let normalize_key key =
  let key = if Bytes.length key > block_size then Sha256.digest key else key in
  let padded = Bytes.make block_size '\000' in
  Bytes.blit key 0 padded 0 (Bytes.length key);
  padded
  [@@leak_ok
    "branches on the key length only; keys are fixed-size protocol secrets \
     whose length is public"]

let xor_pad key byte =
  Bytes.map (fun c -> Char.chr (Char.code c lxor byte)) key

let mac ~key data =
  let key = normalize_key key in
  let inner = Sha256.init () in
  Sha256.feed inner (xor_pad key 0x36);
  Sha256.feed inner data;
  let inner_hash = Sha256.finalize inner in
  let outer = Sha256.init () in
  Sha256.feed outer (xor_pad key 0x5C);
  Sha256.feed outer inner_hash;
  Sha256.finalize outer

let mac_string ~key s = mac ~key (Bytes.of_string s)

let verify ~key data ~tag =
  let expected = mac ~key data in
  if Bytes.length expected <> Bytes.length tag then false
  else begin
    let diff = ref 0 in
    for i = 0 to Bytes.length expected - 1 do
      diff := !diff lor (Char.code (Bytes.get expected i) lxor Char.code (Bytes.get tag i))
    done;
    !diff = 0
  end
  [@@leak_ok
    "length check then a constant-time fold over fixed-size tags; the \
     accept/reject outcome is the protocol's public result"]

let derive ~key ~label = mac_string ~key ("psp-derive:" ^ label)
