module Server = Psp_pir.Server
module Session = Psp_pir.Server.Session
module H = Psp_index.Header
module QP = Psp_index.Query_plan
module E = Psp_index.Encoding
module FB = Psp_index.Fi_builder
module Obs = Psp_obs.Obs

(* Telemetry (DESIGN.md §5): query/status totals and whole-query
   latency.  Span names below ("query", "plan", "lookup", ...) are
   static strings, and every recorded value is either a constant delta
   or the wall-clock of a whole oblivious phase whose work the public
   plan fixes. *)
let m_queries = Obs.counter "client.queries"
let m_served = Obs.counter "client.status.served"
let m_degraded = Obs.counter "client.status.degraded"
let m_unavailable = Obs.counter "client.status.unavailable"
let m_query_seconds = Obs.histogram "client.query_seconds"

type retry_policy = { max_attempts : int; base_backoff : float }

let default_retry = { max_attempts = 4; base_backoff = 0.1 }

type status =
  | Served
  | Degraded of { retries : int }
  | Unavailable of { point : string; attempts : int }

type result = {
  path : (int list * float) option;
  stats : Psp_pir.Server.Session.stats;
  client_seconds : float;
  regions_fetched : int;
  status : status;
}

(* ------------------------------------------------------------------ *)
(* Client-side store of downloaded network data                        *)

type store = {
  records : (int, E.node_record) Hashtbl.t;
  adj : (int, (int * float) Psp_util.Dyn_array.t) Hashtbl.t;
  by_region : (int, E.node_record list) Hashtbl.t;
}

let store_create () =
  { records = Hashtbl.create 256; adj = Hashtbl.create 256; by_region = Hashtbl.create 8 }

let adj_of store v =
  match Hashtbl.find_opt store.adj v with
  | Some a -> a
  | None ->
      let a = Psp_util.Dyn_array.create () in
      Hashtbl.replace store.adj v a;
      a

let add_record store region (r : E.node_record) =
  if not (Hashtbl.mem store.records r.E.id) then begin
    Hashtbl.replace store.records r.E.id r;
    Hashtbl.replace store.by_region region
      (r :: Option.value ~default:[] (Hashtbl.find_opt store.by_region region));
    let a = adj_of store r.E.id in
    List.iter (fun e -> Psp_util.Dyn_array.push a (e.E.target, e.E.weight)) r.E.adj
  end

let add_triple store (t : E.edge_triple) =
  Psp_util.Dyn_array.push (adj_of store t.E.e_src) (t.E.e_dst, t.E.e_weight)

let snap store region ~x ~y =
  match Hashtbl.find_opt store.by_region region with
  | None | Some [] -> failwith "Client: located region holds no nodes"
  | Some records ->
      let best = ref (List.hd records) and best_d = ref infinity in
      List.iter
        (fun (r : E.node_record) ->
          let dx = r.E.x -. x and dy = r.E.y -. y in
          let d = (dx *. dx) +. (dy *. dy) in
          if d < !best_d then begin
            best := r;
            best_d := d
          end)
        records;
      !best.E.id

(* Plain Dijkstra over the downloaded adjacency. *)
let dijkstra_store store ~source ~target =
  if source = target then Some ([ source ], 0.0)
  else begin
    let dist = Hashtbl.create 256 and parent = Hashtbl.create 256 in
    let closed = Hashtbl.create 256 in
    let heap = Psp_util.Min_heap.create () in
    Hashtbl.replace dist source 0.0;
    Psp_util.Min_heap.push heap ~priority:0.0 source;
    let found = ref false in
    while (not !found) && not (Psp_util.Min_heap.is_empty heap) do
      match Psp_util.Min_heap.pop heap with
      | None -> ()
      | Some (d, u) ->
          if not (Hashtbl.mem closed u) then begin
            Hashtbl.replace closed u ();
            if u = target then found := true
            else
              match Hashtbl.find_opt store.adj u with
              | None -> ()
              | Some edges ->
                  Psp_util.Dyn_array.iter
                    (fun (v, w) ->
                      let nd = d +. w in
                      let better =
                        match Hashtbl.find_opt dist v with
                        | Some old -> nd < old
                        | None -> true
                      in
                      if better then begin
                        Hashtbl.replace dist v nd;
                        Hashtbl.replace parent v u;
                        Psp_util.Min_heap.push heap ~priority:nd v
                      end)
                    edges
          end
    done;
    if not !found then None
    else begin
      let rec build v acc =
        match Hashtbl.find_opt parent v with
        | None -> v :: acc
        | Some p -> build p (v :: acc)
      in
      Some (build target [], Hashtbl.find dist target)
    end
  end

(* ------------------------------------------------------------------ *)
(* Protocol plumbing                                                   *)

type ctx = { session : Session.t; policy : retry_policy }

exception Gave_up of { point : string; attempts : int }

let recoverable = function
  | Psp_fault.Fault.Injected { point; _ } -> Some point
  | Server.Page_corrupt { file; _ } -> Some (Printf.sprintf "pir.fetch.corrupt(%s)" file)
  | _ -> None

(* Bounded retry with deterministic exponential backoff.  Obliviousness
   hinges on the schedule here: whether, when and how long we retry is a
   function of the fault outcome and the attempt number alone — never of
   the query's coordinates, pages or intermediate results.  A retried
   fetch re-issues the identical page request, so under a fixed fault
   schedule every query's trace gains the same extra events in the same
   places (DESIGN.md, "Failure handling"). *)
let with_retry ctx op =
  let rec go attempt =
    match op () with
    | v -> v
    | exception e -> (
        match recoverable e with
        | None -> raise e
        | Some point ->
            if attempt >= ctx.policy.max_attempts then
              raise (Gave_up { point; attempts = attempt })
            else begin
              Session.note_retry ctx.session
                ~backoff:(ctx.policy.base_backoff *. float_of_int (1 lsl (attempt - 1)));
              go (attempt + 1)
            end)
  in
  go 1
  [@@oblivious]

let fetch ctx ~file ~page:(page [@secret]) =
  with_retry ctx (fun () -> Session.fetch ctx.session ~file ~page)
  [@@oblivious]

let fetch_window ctx ~file ~first:(first [@secret]) ~count:(count [@secret]) =
  Array.init count (fun k -> fetch ctx ~file ~page:(first + k))
  [@leak_ok
    "window lengths are public plan constants (fi_span, r, pages_per_region) except the \
     HY round-4 tail, whose length counts against the padded round4 budget"]
  [@@oblivious]

let dummy_fetch ctx ~file = ignore (fetch ctx ~file ~page:0) [@@oblivious]

let lookup_entry ctx header ~psize (rs [@secret]) (rt [@secret]) =
  let region_count = header.H.region_count in
  let per_page = psize / E.lookup_entry_bytes in
  let idx = (rs * region_count) + rt in
  let page = idx / per_page in
  let blob = fetch ctx ~file:"lookup" ~page in
  E.decode_lookup_entry blob ~pos:(idx mod per_page * E.lookup_entry_bytes)
  [@@oblivious]

let decode_region_window header pages =
  let blob = Bytes.concat Bytes.empty (Array.to_list pages) in
  E.decode_region header.H.config blob

(* No span here: fetch_region runs once per *real* region while dummy
   fetches skip it, so a span at this site would put a data-dependent
   call count into the telemetry shape (the constant-shape test catches
   exactly this).  The decode span lives at the once-per-query FB.decode
   sites instead. *)
let fetch_region ctx header store ~file (region [@secret]) =
  let first = header.H.region_first_page.(region) in
  let pages = fetch_window ctx ~file ~first ~count:header.H.pages_per_region in
  let records = decode_region_window header pages in
  List.iter (add_record store region) records
  [@@oblivious]

(* ------------------------------------------------------------------ *)
(* CI (§5.4)                                                           *)

let query_ci ctx header ~pad ~psize ~rs:(rs [@secret]) ~rt:(rt [@secret])
    ~sx:(sx [@secret]) ~sy:(sy [@secret]) ~tx:(tx [@secret]) ~ty:(ty [@secret]) =
  let fi_span, m =
    match header.H.plan with
    | QP.Ci { fi_span; m } -> (fi_span, m)
    | _ -> failwith "Client: CI database with non-CI plan"
  in
  Session.next_round ctx.session;
  let page, offset, _span =
    Obs.with_span "lookup" (fun () -> lookup_entry ctx header ~psize rs rt)
  in
  Session.next_round ctx.session;
  let start = max 0 (min page (header.H.index_pages - fi_span)) in
  let window =
    Obs.with_span "index_scan" (fun () ->
        fetch_window ctx ~file:"index" ~first:start ~count:fi_span)
  in
  let regions =
    Obs.with_span "decode" (fun () ->
        (match
           FB.decode ~quantize:header.H.config.E.quantize ~pages:window
             ~base_page:(page - start) ~offset
         with
        | FB.Regions r -> r
        | FB.Edges _ -> failwith "Client: CI look-up led to a subgraph record")
        [@leak_ok
          "client-local decode of an already-fetched window; a malformed record fails \
           closed with a constant message before any further fetch is issued"])
  in
  Session.next_round ctx.session;
  let to_fetch =
    List.sort_uniq compare (rs :: rt :: Array.to_list regions)
  in
  let budget = m + 2 in
  (if List.length to_fetch > budget then
     failwith "Client: CI fetch set exceeds the query plan budget")
  [@leak_ok
    "budget check fails closed with a constant message; a well-formed database never \
     trips it (m bounds every FI region set)"];
  let store = store_create () in
  Obs.with_span "fetch_regions" (fun () ->
      List.iter (fetch_region ctx header store ~file:"data") to_fetch;
      (if pad then
         for _ = List.length to_fetch + 1 to budget do
           dummy_fetch ctx ~file:"data"
         done)
      [@leak_ok
        "padding loop: real plus dummy region fetches always sum to the public plan \
         budget m + 2, so the round-4 page count is query-independent"]);
  Obs.with_span "solve" (fun () ->
      let s = snap store rs ~x:sx ~y:sy and t = snap store rt ~x:tx ~y:ty in
      (dijkstra_store store ~source:s ~target:t, List.length to_fetch))
  [@@oblivious]

(* ------------------------------------------------------------------ *)
(* PI and PI* (§6)                                                     *)

let query_pi ctx header ~pad ~psize ~rs:(rs [@secret]) ~rt:(rt [@secret])
    ~sx:(sx [@secret]) ~sy:(sy [@secret]) ~tx:(tx [@secret]) ~ty:(ty [@secret]) =
  ignore pad;
  let fi_span =
    match header.H.plan with
    | QP.Pi { fi_span } -> fi_span
    | QP.Pi_star { fi_span; _ } -> fi_span
    | _ -> failwith "Client: PI database with non-PI plan"
  in
  Session.next_round ctx.session;
  let page, offset, _span =
    Obs.with_span "lookup" (fun () -> lookup_entry ctx header ~psize rs rt)
  in
  Session.next_round ctx.session;
  let start = max 0 (min page (header.H.index_pages - fi_span)) in
  let window =
    Obs.with_span "index_scan" (fun () ->
        fetch_window ctx ~file:"index" ~first:start ~count:fi_span)
  in
  let triples =
    Obs.with_span "decode" (fun () ->
        (match
           FB.decode ~quantize:header.H.config.E.quantize ~pages:window
             ~base_page:(page - start) ~offset
         with
        | FB.Edges e -> e
        | FB.Regions _ -> failwith "Client: PI look-up led to a region-set record")
        [@leak_ok
          "client-local decode of an already-fetched window; a malformed record fails \
           closed with a constant message before any further fetch is issued"])
  in
  let store = store_create () in
  Obs.with_span "fetch_regions" (fun () ->
      fetch_region ctx header store ~file:"data" rs;
      (if rt <> rs then fetch_region ctx header store ~file:"data" rt
       else
         (* the plan always reads two regions' worth of data pages *)
         for _ = 1 to header.H.pages_per_region do
           dummy_fetch ctx ~file:"data"
         done)
      [@leak_ok
        "balanced branch: both arms fetch exactly pages_per_region data pages, so the \
         trace is identical whether or not source and target share a region"]);
  Array.iter (add_triple store) triples;
  Obs.with_span "solve" (fun () ->
      let s = snap store rs ~x:sx ~y:sy and t = snap store rt ~x:tx ~y:ty in
      (dijkstra_store store ~source:s ~target:t, 2))
  [@@oblivious]

(* ------------------------------------------------------------------ *)
(* HY (§6): one combined index+data file                               *)

let query_hy ctx header ~pad ~psize ~rs:(rs [@secret]) ~rt:(rt [@secret])
    ~sx:(sx [@secret]) ~sy:(sy [@secret]) ~tx:(tx [@secret]) ~ty:(ty [@secret]) =
  let r_pages, round4 =
    match header.H.plan with
    | QP.Hy { r; round4 } -> (r, round4)
    | _ -> failwith "Client: HY database with non-HY plan"
  in
  Session.next_round ctx.session;
  let page, offset, span =
    Obs.with_span "lookup" (fun () -> lookup_entry ctx header ~psize rs rt)
  in
  Session.next_round ctx.session;
  let store = store_create () in
  let fetch_data_page (region [@secret]) =
    let first = header.H.region_first_page.(region) in
    let pages = fetch_window ctx ~file:"combined" ~first ~count:1 in
    List.iter (add_record store region) (decode_region_window header pages)
  in
  let fetched_data = ref 0 in
  let finish_with_regions (regions [@secret]) =
    let to_fetch = List.sort_uniq compare (rs :: rt :: Array.to_list regions) in
    (if List.length to_fetch > round4 then
       failwith "Client: HY fetch set exceeds the query plan budget")
    [@leak_ok
      "budget check fails closed with a constant message; a well-formed database \
       never trips it (round4 bounds every region set plus endpoints)"];
    List.iter fetch_data_page to_fetch;
    fetched_data := !fetched_data + List.length to_fetch;
    let s = snap store rs ~x:sx ~y:sy and t = snap store rt ~x:tx ~y:ty in
    (dijkstra_store store ~source:s ~target:t, List.length to_fetch)
  in
  let finish_with_triples (triples [@secret]) =
    fetch_data_page rs;
    (if rt <> rs then fetch_data_page rt else dummy_fetch ctx ~file:"combined")
    [@leak_ok
      "balanced branch: exactly one combined-file page is fetched either way"];
    fetched_data := !fetched_data + 2;
    Array.iter (add_triple store) triples;
    let s = snap store rs ~x:sx ~y:sy and t = snap store rt ~x:tx ~y:ty in
    (dijkstra_store store ~source:s ~target:t, 2)
  in
  (* one span covers rounds 3-4 including padding, so the span's page
     count is the constant r + round4 regardless of where the record's
     real/dummy split falls *)
  Obs.with_span "rounds" (fun () ->
      let answer =
        (if span <= r_pages then begin
           (* the whole record (and its reference chain) fits in round 3 *)
           let start = max 0 (min page (header.H.data_offset - r_pages)) in
           let window = fetch_window ctx ~file:"combined" ~first:start ~count:r_pages in
           let decoded =
             Obs.with_span "decode" (fun () ->
                 FB.decode ~quantize:header.H.config.E.quantize ~pages:window
                   ~base_page:(page - start) ~offset)
           in
           Session.next_round ctx.session;
           match decoded with
           | FB.Regions regions -> finish_with_regions regions
           | FB.Edges triples -> finish_with_triples triples
         end
         else begin
           (* only subgraph records may span past r (r bounds region sets) *)
           let head = fetch_window ctx ~file:"combined" ~first:page ~count:r_pages in
           Session.next_round ctx.session;
           let tail =
             fetch_window ctx ~file:"combined" ~first:(page + r_pages)
               ~count:(span - r_pages)
           in
           fetched_data := span - r_pages;
           match
             Obs.with_span "decode" (fun () ->
                 FB.decode ~quantize:header.H.config.E.quantize
                   ~pages:(Array.append head tail) ~base_page:0 ~offset)
           with
           | FB.Edges triples -> finish_with_triples triples
           | FB.Regions _ -> failwith "Client: HY record past r is not a subgraph"
         end)
        [@leak_ok
          "both branches fetch exactly r combined pages in round 3; the long-record \
           tail and every round-4 fetch count against the round4 budget, which the \
           padding loop below tops up to its public value"]
      in
      (if pad then
         for _ = !fetched_data + 1 to round4 do
           dummy_fetch ctx ~file:"combined"
         done)
      [@leak_ok
        "padding loop: real plus dummy round-4 fetches always sum to the public plan \
         budget round4"];
      answer)
  [@@oblivious]

(* ------------------------------------------------------------------ *)
(* LM and AF (§4): incremental region fetching                         *)

let alt_heuristic (v : E.node_record) (t : E.node_record) =
  match (v.E.landmark, t.E.landmark) with
  | Some (to_v, from_v), Some (to_t, from_t) ->
      let bound = ref 0.0 in
      for a = 0 to Array.length to_v - 1 do
        bound := Float.max !bound (to_v.(a) -. to_t.(a));
        bound := Float.max !bound (from_t.(a) -. from_v.(a))
      done;
      Float.max !bound 0.0
  | _ -> 0.0

(* Leaf bounding rectangles of the header's KD-tree; the root box is
   unbounded, so sides may be infinite. *)
let region_rects header =
  let rects = Array.make header.H.region_count (neg_infinity, neg_infinity, infinity, infinity) in
  let rec walk tree ((x0, y0, x1, y1) as box) =
    match tree with
    | Psp_partition.Kdtree.Leaf { region } -> rects.(region) <- box
    | Psp_partition.Kdtree.Split { axis; coord; less; geq } -> (
        match axis with
        | Psp_partition.Kdtree.X ->
            walk less (x0, y0, coord, y1);
            walk geq (coord, y0, x1, y1)
        | Psp_partition.Kdtree.Y ->
            walk less (x0, y0, x1, coord);
            walk geq (x0, coord, x1, y1))
  in
  walk header.H.tree (neg_infinity, neg_infinity, infinity, infinity);
  rects

let rect_distance (x0, y0, x1, y1) ~x ~y =
  let dx = Float.max 0.0 (Float.max (x0 -. x) (x -. x1)) in
  let dy = Float.max 0.0 (Float.max (y0 -. y) (y -. y1)) in
  sqrt ((dx *. dx) +. (dy *. dy))

(* Best-first search that fetches a region the first time it pops a node
   living there.  [heuristic = true] uses ALT (LM); otherwise plain
   Dijkstra, optionally pruned by arc-flags towards [rt] (AF).

   A frontier node in a not-yet-fetched region has no ALT vector, but
   its region's rectangle (public, from the header) gives an admissible
   stand-in: heuristic_scale times the rectangle's distance to the
   destination.  Without this, distant regions look free and get
   fetched eagerly. *)
let query_incremental ctx header ~pad ~rs:(rs [@secret]) ~rt:(rt [@secret])
    ~sx:(sx [@secret]) ~sy:(sy [@secret]) ~tx:(tx [@secret]) ~ty:(ty [@secret])
    ~use_alt ~use_flags =
  let budget_pages =
    match header.H.plan with
    | QP.Lm { total_data_pages } -> total_data_pages
    | QP.Af { pages_per_region; max_regions } -> pages_per_region * max_regions
    | _ -> failwith "Client: LM/AF database with wrong plan"
  in
  let store = store_create () in
  let fetched = Hashtbl.create 16 in
  let pages_fetched = ref 0 in
  let fetch (region [@secret]) =
    (if not (Hashtbl.mem fetched region) then begin
       Hashtbl.replace fetched region ();
       fetch_region ctx header store ~file:"data" region;
       pages_fetched := !pages_fetched + header.H.pages_per_region
     end)
    [@leak_ok
      "region-level dedup: LM/AF deliberately trade access-pattern privacy for \
       cost (DESIGN.md); with padding only the total page count — the public \
       budget — is fixed, never the fetch order"]
  in
  (* round 2: the source and destination regions *)
  Session.next_round ctx.session;
  Obs.with_span "fetch_regions" (fun () ->
      fetch rs;
      (if rt <> rs then fetch rt
       else begin
         for _ = 1 to header.H.pages_per_region do
           dummy_fetch ctx ~file:"data"
         done;
         pages_fetched := !pages_fetched + header.H.pages_per_region
       end)
      [@leak_ok
        "balanced branch: both arms fetch exactly pages_per_region data pages in \
         round 2"]);
  let s = snap store rs ~x:sx ~y:sy and t = snap store rt ~x:tx ~y:ty in
  let t_record = Hashtbl.find store.records t in
  let rects = if use_alt then Some (region_rects header) else None in
  let dist = Hashtbl.create 1024 and parent = Hashtbl.create 1024 in
  let closed = Hashtbl.create 1024 in
  let region_of_frontier = Hashtbl.create 64 in
  let h (v [@secret]) =
    (if not use_alt then 0.0
     else
       match Hashtbl.find_opt store.records v with
       | Some r -> alt_heuristic r t_record
       | None -> (
           (* unfetched: bound by its region's rectangle *)
           match (rects, Hashtbl.find_opt region_of_frontier v) with
           | Some rects, Some region ->
               header.H.heuristic_scale
               *. rect_distance rects.(region) ~x:t_record.E.x ~y:t_record.E.y
           | _ -> 0.0))
    [@leak_ok
      "heuristic evaluation is client-local arithmetic; it only steers which \
       region the search pulls next, the incremental schemes' accepted \
       access-pattern cost"]
  in
  let heap = Psp_util.Min_heap.create () in
  Hashtbl.replace dist s 0.0;
  Psp_util.Min_heap.push heap ~priority:(h s) s;
  let found = ref false in
  (* the search span's fetch count is query-dependent — exactly the
     access-pattern cost LM/AF accept; the padding loop below still tops
     the session total up to the public budget *)
  (Obs.with_span "search" (fun () ->
       while (not !found) && not (Psp_util.Min_heap.is_empty heap) do
       match Psp_util.Min_heap.pop heap with
       | None -> ()
       | Some (key, u) ->
           if not (Hashtbl.mem closed u) then begin
             match Hashtbl.find_opt store.records u with
             | None ->
                 (* node lives in a region we have not fetched yet *)
                 let region =
                   match Hashtbl.find_opt region_of_frontier u with
                   | Some r -> r
                   | None -> failwith "Client: frontier node with unknown region"
                 in
                 Session.next_round ctx.session;
                 fetch region;
                 Psp_util.Min_heap.push heap ~priority:(Hashtbl.find dist u +. h u) u
             | Some record when key +. 1e-12 < Hashtbl.find dist u +. h u ->
                 (* the node was queued before its region (and heuristic)
                    was known: its key understates g + h, and closing it now
                    could be premature — re-queue at the proper key *)
                 ignore record;
                 Psp_util.Min_heap.push heap ~priority:(Hashtbl.find dist u +. h u) u
             | Some record ->
                 Hashtbl.replace closed u ();
                 if u = t then found := true
                 else begin
                   let du = Hashtbl.find dist u in
                   List.iter
                     (fun (e : E.adj) ->
                       let usable =
                         (not use_flags)
                         ||
                         match e.E.flags with
                         | Some flags -> Psp_util.Bitset.mem flags rt
                         | None -> failwith "Client: AF database lacks arc-flags"
                       in
                       if usable then begin
                         let nd = du +. e.E.weight in
                         let better =
                           match Hashtbl.find_opt dist e.E.target with
                           | Some old -> nd < old
                           | None -> true
                         in
                         if better then begin
                           Hashtbl.replace dist e.E.target nd;
                           Hashtbl.replace parent e.E.target u;
                           (* the mixed (rect / ALT) heuristic is admissible
                              but not consistent, so a strict improvement
                              must reopen an already-closed node; with
                              reopening, stopping at t's first pop stays
                              exact *)
                           Hashtbl.remove closed e.E.target;
                           if e.E.target_region >= 0 then
                             Hashtbl.replace region_of_frontier e.E.target e.E.target_region;
                           Psp_util.Min_heap.push heap ~priority:(nd +. h e.E.target) e.E.target
                         end
                       end)
                     record.E.adj
                 end
           end
       done))
  [@leak_ok
    "the best-first search order is secret-dependent by design in LM/AF; every \
     server-visible fetch it issues is counted against — and padded up to — the \
     public page budget before the query returns"];
  (if pad then
     while !pages_fetched < budget_pages do
       Session.next_round ctx.session;
       for _ = 1 to header.H.pages_per_region do
         dummy_fetch ctx ~file:"data"
       done;
       pages_fetched := !pages_fetched + header.H.pages_per_region
     done)
  [@leak_ok
    "padding loop: tops the session up to the public page budget, one region's \
     worth of dummy fetches per round"];
  let path =
    (if not !found then None
     else begin
       let rec build v acc =
         match Hashtbl.find_opt parent v with
         | None -> v :: acc
         | Some p -> build p (v :: acc)
       in
       Some (build t [], Hashtbl.find dist t)
     end)
    [@leak_ok "path reconstruction is client-local; no fetch is issued after it"]
  in
  (* report the page budget consumed (in region units) rather than the
     distinct-region count: the rs = rt dummy slot counts against the
     plan, and calibration must budget for it *)
  (path, !pages_fetched / header.H.pages_per_region)
  [@@oblivious]

(* ------------------------------------------------------------------ *)

let query ?(pad = true) ?(retry = default_retry) server ~sx:(sx [@secret])
    ~sy:(sy [@secret]) ~tx:(tx [@secret]) ~ty:(ty [@secret]) =
  Obs.incr m_queries;
  Obs.with_span "query" (fun () ->
      let started =
        (Sys.time ())
        [@leak_ok
          "wall-clock sample for the public stats record; it never influences the \
           fetch schedule"]
      in
      let session = Session.start server in
      let ctx = { session; policy = retry } in
      (* exhausting the retry budget degrades the result instead of raising:
         the session still finishes, so the partial trace and the recovery
         cost remain observable *)
      let outcome =
        (match
          let header, psize, rs, rt =
            (* plan selection: the header download and region location fix
               the public query plan before any oblivious round begins *)
            Obs.with_span "plan" (fun () ->
                let header_pages =
                  with_retry ctx (fun () -> Session.download session ~file:"header")
                in
                let header = H.of_pages header_pages in
                let psize = Bytes.length header_pages.(0) in
                (header, psize, H.locate header ~x:sx ~y:sy, H.locate header ~x:tx ~y:ty))
          in
          match header.H.scheme with
          | "CI" -> query_ci ctx header ~pad ~psize ~rs ~rt ~sx ~sy ~tx ~ty
          | "PI" | "PI*" -> query_pi ctx header ~pad ~psize ~rs ~rt ~sx ~sy ~tx ~ty
          | "HY" -> query_hy ctx header ~pad ~psize ~rs ~rt ~sx ~sy ~tx ~ty
          | "LM" ->
              query_incremental ctx header ~pad ~rs ~rt ~sx ~sy ~tx ~ty ~use_alt:true
                ~use_flags:false
          | "AF" ->
              query_incremental ctx header ~pad ~rs ~rt ~sx ~sy ~tx ~ty ~use_alt:false
                ~use_flags:true
          | scheme -> failwith (Printf.sprintf "Client: unknown scheme %S" scheme)
        with
        | answer -> Ok answer
        | exception Gave_up { point; attempts } -> Error (point, attempts))
        [@leak_ok
          "the exception arm is steered by the fault schedule and retry budget alone \
           (with_retry re-issues identical requests); degrading instead of raising \
           keeps the partial trace and recovery cost observable"]
      in
      let stats = Session.finish session in
      let client_seconds =
        (Sys.time () -. started)
        [@leak_ok
          "wall-clock sample for the public stats record; the session is already \
           finished"]
      in
      Obs.observe m_query_seconds client_seconds;
      (match outcome with
      | Ok (path, regions_fetched) ->
          let status =
            match stats.Session.retries with
            | 0 ->
                Obs.incr m_served;
                Served
            | retries ->
                Obs.incr m_degraded;
                Degraded { retries }
          in
          { path; stats; client_seconds; regions_fetched; status }
      | Error (point, attempts) ->
          Obs.incr m_unavailable;
          { path = None;
            stats;
            client_seconds;
            regions_fetched = 0;
            status = Unavailable { point; attempts } })
      [@leak_ok
        "result assembly happens after the session closed; the server observes \
         nothing from this match"])
  [@@oblivious]

let query_nodes ?pad ?retry server g (s [@secret]) (t [@secret]) =
  let sx, sy = Psp_graph.Graph.coords g s in
  let tx, ty = Psp_graph.Graph.coords g t in
  query ?pad ?retry server ~sx ~sy ~tx ~ty
  [@@oblivious]
