module Session = Psp_pir.Server.Session
module Batcher = Psp_pir.Batcher
module H = Psp_index.Header
module Obs = Psp_obs.Obs

(* The client facade: header download, region location and scheme
   dispatch.  The retrieval protocol itself lives in {!Engine} (one
   plan-walker for every scheme) and the per-scheme state machines under
   schemes/ — this module only assembles results and telemetry. *)

(* Telemetry (DESIGN.md §5): query/status totals and whole-query
   latency.  Span names below ("query", "plan", ...) are static strings,
   and every recorded value is either a constant delta or the wall-clock
   of a whole oblivious phase whose work the public plan fixes. *)
let m_queries = Obs.counter "client.queries"
let m_served = Obs.counter "client.status.served"
let m_degraded = Obs.counter "client.status.degraded"
let m_unavailable = Obs.counter "client.status.unavailable"
let m_unknown = Obs.counter "client.status.unknown_scheme"
let m_query_seconds = Obs.histogram "client.query_seconds"
let m_batches = Obs.counter "client.batches"
let m_batch_width = Obs.histogram "client.batch_width"

type retry_policy = Engine.retry_policy = {
  max_attempts : int;
  base_backoff : float;
}

let default_retry = Engine.default_retry

type status =
  | Served
  | Degraded of { retries : int }
  | Unavailable of { point : string; attempts : int }
  | Unknown_scheme of { scheme : string }

exception Replica_failed of {
  replica : int;
  reason : string;
  stats : Psp_pir.Server.Session.stats array;
}

type result = {
  path : (int list * float) option;
  stats : Psp_pir.Server.Session.stats;
  client_seconds : float;
  regions_fetched : int;
  status : status;
}

type endpoints = { sx : float; sy : float; tx : float; ty : float }

(* ------------------------------------------------------------------ *)

let locate header (e [@secret]) =
  { Engine.rs = H.locate header ~x:e.sx ~y:e.sy;
    rt = H.locate header ~x:e.tx ~y:e.ty;
    sx = e.sx;
    sy = e.sy;
    tx = e.tx;
    ty = e.ty }
  [@@oblivious]

let status_of_stats stats =
  match stats.Session.retries with
  | 0 ->
      Obs.incr m_served;
      Served
  | retries ->
      Obs.incr m_degraded;
      Degraded { retries }

let unavailable_result stats client_seconds ~point ~attempts =
  Obs.incr m_unavailable;
  { path = None;
    stats;
    client_seconds;
    regions_fetched = 0;
    status = Unavailable { point; attempts } }

let unknown_result stats client_seconds ~scheme =
  Obs.incr m_unknown;
  { path = None;
    stats;
    client_seconds;
    regions_fetched = 0;
    status = Unknown_scheme { scheme } }

(* ------------------------------------------------------------------ *)

let query ?(pad = true) ?(retry = default_retry) server ~sx:(sx [@secret])
    ~sy:(sy [@secret]) ~tx:(tx [@secret]) ~ty:(ty [@secret]) =
  Obs.incr m_queries;
  Obs.with_span "query" (fun () ->
      let started =
        (Sys.time ())
        [@leak_ok
          "wall-clock sample for the public stats record; it never influences the \
           fetch schedule"]
      in
      let session = Session.start server in
      let on_retry ~backoff = Session.note_retry session ~backoff in
      (* exhausting the retry budget degrades the result instead of raising:
         the session still finishes, so the partial trace and the recovery
         cost remain observable *)
      let outcome =
        (match
           let header, psize =
             (* plan selection: the header download and region location fix
                the public query plan before any oblivious round begins *)
             Obs.with_span "plan" (fun () ->
                 let header_pages =
                   Engine.with_retry ~policy:retry ~on_retry (fun () ->
                       Session.download session ~file:"header")
                 in
                 (H.of_pages header_pages, Bytes.length header_pages.(0)))
           in
           match Registry.find header.H.scheme with
           | None -> `Unknown header.H.scheme
           | Some scheme ->
               let ctx = { Engine.header; psize; pad } in
               let q = locate header { sx; sy; tx; ty } in
               `Answer (Engine.run scheme session ~policy:retry ctx q)
         with
        | v -> Ok v
        | exception Engine.Gave_up { point; attempts } -> Error (`Gave_up (point, attempts))
        | exception e when Engine.failover_class e <> None ->
            Error (`Failover (Option.get (Engine.failover_class e))))
        [@leak_ok
          "the exception arms are steered by the fault schedule and retry budget alone \
           (with_retry re-issues identical requests); degrading instead of raising \
           keeps the partial trace and recovery cost observable"]
      in
      let stats = Session.finish session in
      let client_seconds =
        (Sys.time () -. started)
        [@leak_ok
          "wall-clock sample for the public stats record; the session is already \
           finished"]
      in
      Obs.observe m_query_seconds client_seconds;
      (match outcome with
      | Ok (`Answer (path, regions_fetched)) ->
          { path; stats; client_seconds; regions_fetched; status = status_of_stats stats }
      | Ok (`Unknown scheme) -> unknown_result stats client_seconds ~scheme
      | Error (`Gave_up (point, attempts)) ->
          unavailable_result stats client_seconds ~point ~attempts
      | Error (`Failover reason) ->
          (* the session was finished first: the abandoned attempt's
             partial trace and accounted cost travel with the exception
             so the failover loop can charge them *)
          raise
            (Replica_failed
               { replica = Psp_pir.Server.replica server; reason; stats = [| stats |] }))
      [@leak_ok
        "result assembly happens after the session closed; the server observes \
         nothing from this match"])
  [@@oblivious]

(* ------------------------------------------------------------------ *)
(* Batched serving: N same-plan queries walk the plan in lockstep, each
   fetch slot becoming one merged oblivious-store pass (Batcher). *)

let query_batch ?(pad = true) ?(retry = default_retry)
    ?(pacing = Engine.sequential) server (queries : endpoints array) =
  (let width = Array.length queries in
   if width = 0 then [||]
   else begin
     Obs.incr m_batches;
     Obs.observe m_batch_width (float_of_int width);
     Obs.add m_queries width;
     Obs.with_span "query" (fun () ->
         let started =
           (Sys.time ())
           [@leak_ok
             "wall-clock sample for the public stats records; it never influences \
              the fetch schedule"]
         in
         let batcher = Batcher.start server ~width in
         (* every member downloads the header over its own session, so each
            per-member trace carries the same plain download a sequential
            query's would *)
         let outcome =
           (match
              let header, psize =
                Obs.with_span "plan" (fun () ->
                    let pages = ref [||] in
                    Array.iter
                      (fun session ->
                        pages :=
                          Engine.with_retry ~policy:retry
                            ~on_retry:(fun ~backoff ->
                              Session.note_retry session ~backoff)
                            (fun () -> Session.download session ~file:"header"))
                      (Batcher.sessions batcher);
                    (H.of_pages !pages, Bytes.length !pages.(0)))
              in
              match Registry.find header.H.scheme with
              | None -> `Unknown header.H.scheme
              | Some scheme ->
                  let ctx = { Engine.header; psize; pad } in
                  let qs = Array.map (locate header) queries in
                  `Answers (Engine.run_batch ~pacing scheme batcher ~policy:retry ctx qs)
            with
           | v -> Ok v
           | exception Engine.Gave_up { point; attempts } ->
               Error (`Gave_up (point, attempts))
           | exception e when Engine.failover_class e <> None ->
               Error (`Failover (Option.get (Engine.failover_class e))))
           [@leak_ok
             "the exception arms are steered by the fault schedule and retry budget \
              alone; a batch-granular failure degrades every member identically, \
              keeping their partial traces mutually equal"]
         in
         let stats = Batcher.finish batcher in
         let client_seconds =
           ((Sys.time () -. started) /. float_of_int width)
           [@leak_ok
             "wall-clock sample for the public stats records; the sessions are \
              already finished"]
         in
         Obs.observe m_query_seconds client_seconds;
         (match outcome with
         | Ok (`Answers answers) ->
             Array.mapi
               (fun i (path, regions_fetched) ->
                 { path;
                   stats = stats.(i);
                   client_seconds;
                   regions_fetched;
                   status = status_of_stats stats.(i) })
               answers
         | Ok (`Unknown scheme) ->
             Array.map (fun s -> unknown_result s client_seconds ~scheme) stats
         | Error (`Gave_up (point, attempts)) ->
             Array.map
               (fun s -> unavailable_result s client_seconds ~point ~attempts)
               stats
         | Error (`Failover reason) ->
             raise
               (Replica_failed
                  { replica = Psp_pir.Server.replica server; reason; stats }))
         [@leak_ok
           "result assembly happens after every session closed; the server \
            observes nothing from this match"])
   end)
  [@leak_ok
    "the batch width is public (the server trivially observes how many sessions \
     it serves); the empty-batch shortcut issues no request at all"]
  [@@oblivious]

(* ------------------------------------------------------------------ *)
(* Replicated serving: whole-plan replay failover over a Replica_set.
   A failed replica is never resumed mid-plan — the entire public plan
   (header download included) is replayed against the next healthy one,
   so each replica observes either a complete plan trace or a
   fault-schedule-determined prefix, both query-independent.  Every
   branch below is steered by statuses and exceptions that are pure
   functions of the fault schedule, never by query content. *)

module RS = Psp_pir.Replica_set

type abandoned = {
  on_replica : int;
  reason : string;
  attempt_stats : Psp_pir.Server.Session.stats array;
}

type replicated = {
  results : result array;
  replica : int;
  failovers : int;
  failover_seconds : float;
  abandoned : abandoned list;
}

(* a query that survived via failover is Degraded even when its final
   attempt ran clean: the recovery cost is real and must be reported *)
let degrade ~failovers r =
  if failovers = 0 then r
  else
    match r.status with
    | Served ->
        Obs.incr m_degraded;
        { r with status = Degraded { retries = failovers } }
    | Degraded { retries } -> { r with status = Degraded { retries = retries + failovers } }
    | Unavailable _ | Unknown_scheme _ -> r

let stats_seconds (s : Session.stats) =
  s.Session.pir_seconds +. s.Session.comm_seconds +. s.Session.server_cpu_seconds

let replicated_run rset ~max_failovers run =
  let cost = Psp_pir.Server.cost (RS.server rset 0) in
  let is_unavailable r = match r.status with Unavailable _ -> true | _ -> false in
  let rec go ~failovers ~fo_seconds ~abandoned ~last =
    let finished ~replica results =
      { results;
        replica;
        failovers;
        failover_seconds = fo_seconds;
        abandoned = List.rev abandoned }
    in
    let give_up () =
      match last with
      | Some (replica, results) -> finished ~replica results
      | None -> (
          match abandoned with
          | [] -> raise RS.No_replica_available
          | { on_replica; reason; attempt_stats } :: _ ->
              (* every attempt died mid-plan: report the newest abandoned
                 attempt's partial stats as the Unavailable results.
                 [failovers] counted one failure per attempt, so it is
                 exactly the number of plan attempts made *)
              finished ~replica:on_replica
                (Array.map
                   (fun s ->
                     unavailable_result s 0.0 ~point:reason ~attempts:failovers)
                   attempt_stats))
    in
    if failovers > max_failovers then give_up ()
    else
      match RS.select rset with
      | None -> give_up ()
      | Some i -> (
          match run (RS.server rset i) with
          | results ->
              Array.iter (fun r -> RS.advance rset (stats_seconds r.stats)) results;
              if Array.length results > 0 && Array.for_all is_unavailable results then begin
                (* retry exhaustion is a failed exchange too: shun the
                   replica and replay the whole plan elsewhere *)
                RS.record_failure rset i;
                let fo =
                  Psp_pir.Cost_model.failover_seconds cost ~attempt:(failovers + 1)
                in
                RS.advance rset fo;
                go ~failovers:(failovers + 1) ~fo_seconds:(fo_seconds +. fo) ~abandoned
                  ~last:(Some (i, results))
              end
              else begin
                RS.record_success rset i;
                finished ~replica:i (Array.map (degrade ~failovers) results)
              end
          | exception Replica_failed { replica; reason; stats } ->
              Array.iter (fun s -> RS.advance rset (stats_seconds s)) stats;
              RS.record_failure rset replica;
              let fo = Psp_pir.Cost_model.failover_seconds cost ~attempt:(failovers + 1) in
              RS.advance rset fo;
              go ~failovers:(failovers + 1) ~fo_seconds:(fo_seconds +. fo)
                ~abandoned:
                  ({ on_replica = replica; reason; attempt_stats = stats } :: abandoned)
                ~last)
  in
  go ~failovers:0 ~fo_seconds:0.0 ~abandoned:[] ~last:None

let failover_budget ?max_failovers rset =
  match max_failovers with Some n -> n | None -> 3 * RS.width rset

let query_replicated ?pad ?retry ?max_failovers rset ~sx:(sx [@secret])
    ~sy:(sy [@secret]) ~tx:(tx [@secret]) ~ty:(ty [@secret]) =
  replicated_run rset ~max_failovers:(failover_budget ?max_failovers rset)
    (fun server -> [| query ?pad ?retry server ~sx ~sy ~tx ~ty |])
  [@@oblivious]

let query_batch_replicated ?pad ?retry ?max_failovers rset (queries : endpoints array) =
  replicated_run rset ~max_failovers:(failover_budget ?max_failovers rset)
    (fun server -> query_batch ?pad ?retry server queries)
  [@@oblivious]

(* ------------------------------------------------------------------ *)

let query_nodes ?pad ?retry server g (s [@secret]) (t [@secret]) =
  let sx, sy = Psp_graph.Graph.coords g s in
  let tx, ty = Psp_graph.Graph.coords g t in
  query ?pad ?retry server ~sx ~sy ~tx ~ty
  [@@oblivious]

let query_nodes_batch ?pad ?retry ?pacing server g (pairs [@secret]) =
  query_batch ?pad ?retry ?pacing server
    (Array.map
       (fun (s, t) ->
         let sx, sy = Psp_graph.Graph.coords g s in
         let tx, ty = Psp_graph.Graph.coords g t in
         { sx; sy; tx; ty })
       pairs
    [@leak_ok
      "trip count is the batch length, which the server observes as the number of \
       plan executions regardless; the endpoints inside stay secret"])
  [@@oblivious]

let query_nodes_replicated ?pad ?retry ?max_failovers rset g (s [@secret]) (t [@secret]) =
  let sx, sy = Psp_graph.Graph.coords g s in
  let tx, ty = Psp_graph.Graph.coords g t in
  query_replicated ?pad ?retry ?max_failovers rset ~sx ~sy ~tx ~ty
  [@@oblivious]

let query_nodes_batch_replicated ?pad ?retry ?max_failovers rset g (pairs [@secret]) =
  query_batch_replicated ?pad ?retry ?max_failovers rset
    (Array.map
       (fun (s, t) ->
         let sx, sy = Psp_graph.Graph.coords g s in
         let tx, ty = Psp_graph.Graph.coords g t in
         { sx; sy; tx; ty })
       pairs
    [@leak_ok
      "trip count is the batch length, which the server observes as the number of \
       plan executions regardless; the endpoints inside stay secret"])
  [@@oblivious]
