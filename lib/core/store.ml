module E = Psp_index.Encoding

(* The client-side accumulation of downloaded network data.  Everything
   here is client-local: no function issues a fetch, so nothing in this
   module can touch the adversary's view. *)

type t = {
  records : (int, E.node_record) Hashtbl.t;
  adj : (int, (int * float) Psp_util.Dyn_array.t) Hashtbl.t;
  by_region : (int, E.node_record list) Hashtbl.t;
}

let create () =
  { records = Hashtbl.create 256; adj = Hashtbl.create 256; by_region = Hashtbl.create 8 }

let adj_of store v =
  match Hashtbl.find_opt store.adj v with
  | Some a -> a
  | None ->
      let a = Psp_util.Dyn_array.create () in
      Hashtbl.replace store.adj v a;
      a

let record store v = Hashtbl.find_opt store.records v
let has_record store v = Hashtbl.mem store.records v

let add_record store region (r : E.node_record) =
  if not (Hashtbl.mem store.records r.E.id) then begin
    Hashtbl.replace store.records r.E.id r;
    Hashtbl.replace store.by_region region
      (r :: Option.value ~default:[] (Hashtbl.find_opt store.by_region region));
    let a = adj_of store r.E.id in
    List.iter (fun e -> Psp_util.Dyn_array.push a (e.E.target, e.E.weight)) r.E.adj
  end

let add_triple store (t : E.edge_triple) =
  Psp_util.Dyn_array.push (adj_of store t.E.e_src) (t.E.e_dst, t.E.e_weight)

let snap store region ~x ~y =
  match Hashtbl.find_opt store.by_region region with
  | None | Some [] -> failwith "Client: located region holds no nodes"
  | Some records ->
      let best = ref (List.hd records) and best_d = ref infinity in
      List.iter
        (fun (r : E.node_record) ->
          let dx = r.E.x -. x and dy = r.E.y -. y in
          let d = (dx *. dx) +. (dy *. dy) in
          if d < !best_d then begin
            best := r;
            best_d := d
          end)
        records;
      !best.E.id
  [@@leak_ok
    "client-local nearest-node scan over already-downloaded region records; \
     the server cannot observe this loop or its branches"]

(* Plain Dijkstra over the downloaded adjacency. *)
let dijkstra store ~source ~target =
  if source = target then Some ([ source ], 0.0)
  else begin
    let dist = Hashtbl.create 256 and parent = Hashtbl.create 256 in
    let closed = Hashtbl.create 256 in
    let heap = Psp_util.Min_heap.create () in
    Hashtbl.replace dist source 0.0;
    Psp_util.Min_heap.push heap ~priority:0.0 source;
    let found = ref false in
    while (not !found) && not (Psp_util.Min_heap.is_empty heap) do
      match Psp_util.Min_heap.pop heap with
      | None -> ()
      | Some (d, u) ->
          if not (Hashtbl.mem closed u) then begin
            Hashtbl.replace closed u ();
            if u = target then found := true
            else
              match Hashtbl.find_opt store.adj u with
              | None -> ()
              | Some edges ->
                  Psp_util.Dyn_array.iter
                    (fun (v, w) ->
                      let nd = d +. w in
                      let better =
                        match Hashtbl.find_opt dist v with
                        | Some old -> nd < old
                        | None -> true
                      in
                      if better then begin
                        Hashtbl.replace dist v nd;
                        Hashtbl.replace parent v u;
                        Psp_util.Min_heap.push heap ~priority:nd v
                      end)
                    edges
          end
    done;
    if not !found then None
    else begin
      let rec build v acc =
        match Hashtbl.find_opt parent v with
        | None -> v :: acc
        | Some p -> build p (v :: acc)
      in
      Some (build target [], Hashtbl.find dist target)
    end
  end
  [@@leak_ok
    "client-local Dijkstra over the already-downloaded adjacency; timing, \
     allocation and heap growth here are invisible to the server"]
