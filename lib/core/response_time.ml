type t = {
  pir_seconds : float;
  comm_seconds : float;
  server_cpu_seconds : float;
  client_seconds : float;
  decode_seconds : float;
  queue_seconds : float;
}

let total t =
  t.pir_seconds +. t.comm_seconds +. t.server_cpu_seconds +. t.client_seconds
  +. t.decode_seconds +. t.queue_seconds

let of_result (r : Client.result) =
  { pir_seconds = r.Client.stats.Psp_pir.Server.Session.pir_seconds;
    comm_seconds = r.Client.stats.Psp_pir.Server.Session.comm_seconds;
    server_cpu_seconds = r.Client.stats.Psp_pir.Server.Session.server_cpu_seconds;
    client_seconds = r.Client.client_seconds;
    decode_seconds = 0.0;
    queue_seconds = 0.0 }

let zero =
  { pir_seconds = 0.0;
    comm_seconds = 0.0;
    server_cpu_seconds = 0.0;
    client_seconds = 0.0;
    decode_seconds = 0.0;
    queue_seconds = 0.0 }

let of_stats (s : Psp_pir.Server.Session.stats) =
  { pir_seconds = s.Psp_pir.Server.Session.pir_seconds;
    comm_seconds = s.Psp_pir.Server.Session.comm_seconds;
    server_cpu_seconds = s.Psp_pir.Server.Session.server_cpu_seconds;
    client_seconds = 0.0;
    decode_seconds = 0.0;
    queue_seconds = 0.0 }

let with_queue ~seconds t =
  if seconds < 0.0 then invalid_arg "Response_time.with_queue: negative delay";
  { t with queue_seconds = seconds }

let with_decode ~seconds t =
  if seconds < 0.0 then invalid_arg "Response_time.with_decode: negative decode";
  { t with decode_seconds = seconds }

let add a b =
  { pir_seconds = a.pir_seconds +. b.pir_seconds;
    comm_seconds = a.comm_seconds +. b.comm_seconds;
    server_cpu_seconds = a.server_cpu_seconds +. b.server_cpu_seconds;
    client_seconds = a.client_seconds +. b.client_seconds;
    decode_seconds = a.decode_seconds +. b.decode_seconds;
    queue_seconds = a.queue_seconds +. b.queue_seconds }

let scale k t =
  { pir_seconds = k *. t.pir_seconds;
    comm_seconds = k *. t.comm_seconds;
    server_cpu_seconds = k *. t.server_cpu_seconds;
    client_seconds = k *. t.client_seconds;
    decode_seconds = k *. t.decode_seconds;
    queue_seconds = k *. t.queue_seconds }

(* A failover-surviving query's honest response time: the serving
   attempt, plus every abandoned attempt's already-accounted cost, plus
   the modeled switch/backoff seconds (charged as communication time —
   the client spends them waiting on the link). *)
let of_replicated (r : Client.replicated) =
  let per_member i =
    List.fold_left
      (fun acc (a : Client.abandoned) ->
        if i < Array.length a.Client.attempt_stats then
          add acc (of_stats a.Client.attempt_stats.(i))
        else acc)
      zero r.Client.abandoned
  in
  let switch = { zero with comm_seconds = r.Client.failover_seconds } in
  Array.mapi
    (fun i res -> add (add (of_result res) (per_member i)) switch)
    r.Client.results

let mean = function
  | [] -> zero
  | ts -> scale (1.0 /. float_of_int (List.length ts)) (List.fold_left add zero ts)

let pp ppf t =
  Format.fprintf ppf
    "total=%.2fs (pir=%.2fs comm=%.2fs server=%.2fs client=%.3fs decode=%.2fs \
     queue=%.2fs)"
    (total t) t.pir_seconds t.comm_seconds t.server_cpu_seconds t.client_seconds
    t.decode_seconds t.queue_seconds
