module G = Psp_graph.Graph

type placement = Uniform | Near of float

type t = { graph : G.t; cost : Psp_pir.Cost_model.t; rng : Psp_util.Rng.t }

let create ~cost ~seed graph = { graph; cost; rng = Psp_util.Rng.create seed }

(* Encoded size of one returned path: a node id (4 bytes) per hop plus
   the cost. *)
let path_bytes p = (4 * (Psp_graph.Path.hop_count p + 1)) + 8

let query ?(placement = Uniform) t ~set_size ~s ~t_node =
  if set_size < 1 then invalid_arg "Obf.query: set_size must be >= 1";
  let n = G.node_count t.graph in
  let pick_decoy real =
    match placement with
    | Uniform -> Psp_util.Rng.int t.rng n
    | Near radius ->
        (* rejection-sample near the real endpoint; fall back to uniform
           so sparse corners cannot loop forever *)
        let rec attempt k =
          if k = 0 then Psp_util.Rng.int t.rng n
          else begin
            let v = Psp_util.Rng.int t.rng n in
            if G.euclidean t.graph real v <= radius then v else attempt (k - 1)
          end
        in
        attempt 64
  in
  let decoys k real = Array.init k (fun i -> if i = 0 then real else pick_decoy real) in
  let sources = decoys set_size s in
  let targets = decoys set_size t_node in
  (* server side: all |S| x |T| paths, computed for real and timed *)
  let started = Sys.time () in
  let result = ref None in
  let bytes = ref 0 in
  Array.iter
    (fun src ->
      let spt =
        Psp_graph.Dijkstra.tree_until t.graph ~source:src ~targets:(Array.to_list targets)
      in
      Array.iter
        (fun dst ->
          match Psp_graph.Dijkstra.path_to t.graph spt dst with
          | None -> ()
          | Some p ->
              bytes := !bytes + path_bytes p;
              if src = s && dst = t_node then result := Some p)
        targets)
    sources;
  let server_cpu = Sys.time () -. started in
  (* client -> server request: the two obfuscation sets *)
  let request_bytes = 2 * 4 * set_size in
  let comm =
    t.cost.Psp_pir.Cost_model.rtt
    +. Psp_pir.Cost_model.transfer_seconds t.cost ~bytes:(request_bytes + !bytes)
  in
  ( { Response_time.pir_seconds = 0.0;
      comm_seconds = comm;
      server_cpu_seconds = server_cpu;
      client_seconds = 0.0;
      decode_seconds = 0.0;
      queue_seconds = 0.0 },
    !result )
