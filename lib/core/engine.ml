module Server = Psp_pir.Server
module Session = Psp_pir.Server.Session
module Batcher = Psp_pir.Batcher
module H = Psp_index.Header
module QP = Psp_index.Query_plan
module Obs = Psp_obs.Obs

type retry_policy = { max_attempts : int; base_backoff : float }

let default_retry = { max_attempts = 4; base_backoff = 0.1 }

type ctx = { header : H.t; psize : int; pad : bool }

type query = { rs : int; rt : int; sx : float; sy : float; tx : float; ty : float }

type answer = (int list * float) option * int

module type SCHEME = sig
  type state

  val init : ctx -> query -> state
  val next_page : state -> file:string -> int option
  val deliver : state -> file:string -> bytes -> unit
  val barrier : state -> label:string -> unit
  val exhausted : state -> bool
  val answer : state -> answer
end

type scheme = (module SCHEME)

(* ------------------------------------------------------------------ *)
(* Retry (moved here from the client so the engine owns it once)        *)

exception Gave_up of { point : string; attempts : int }

let recoverable = function
  | Psp_fault.Fault.Injected { point; _ } -> Some point
  | Server.Page_corrupt { file; _ } -> Some (Printf.sprintf "pir.fetch.corrupt(%s)" file)
  | _ -> None

(* Replica-level failures are deliberately NOT [recoverable]: retrying a
   tampering host in place would hand the adversary another shot, and a
   dead or stalled replica will not answer the re-issued request either.
   The client's failover loop replays the whole public plan against the
   next replica instead (docs/RESILIENCE.md).  As with [recoverable],
   the classification redacts to public data: file names and replica
   indices, never page numbers. *)
let failover_class = function
  | Server.Tampered { file; _ } -> Some (Printf.sprintf "pir.fetch.tamper(%s)" file)
  | Server.Replica_down { replica } -> Some (Printf.sprintf "pir.replica.down(%d)" replica)
  | Server.Replica_timeout { replica; _ } ->
      Some (Printf.sprintf "pir.replica.timeout(%d)" replica)
  | _ -> None

(* Bounded retry with deterministic exponential backoff.  Obliviousness
   hinges on the schedule here: whether, when and how long we retry is a
   function of the fault outcome and the attempt number alone — never of
   the query's coordinates, pages or intermediate results.  A retried
   fetch re-issues the identical page request(s), so under a fixed fault
   schedule every query's trace gains the same extra events in the same
   places (DESIGN.md, "Failure handling"). *)
let with_retry ~policy ~on_retry op =
  let rec go attempt =
    match op () with
    | v -> v
    | exception e -> (
        match recoverable e with
        | None -> raise e
        | Some point ->
            if attempt >= policy.max_attempts then
              raise (Gave_up { point; attempts = attempt })
            else begin
              on_retry
                ~backoff:
                  (Psp_pir.Cost_model.retry_backoff_seconds ~base:policy.base_backoff
                     ~attempt);
              go (attempt + 1)
            end)
  in
  go 1
  [@@oblivious]

(* ------------------------------------------------------------------ *)
(* Transports: how a walk reaches the server — one session, or one
   batcher multiplexing N lockstep sessions.  The page array's length is
   the batch width; it rides down through Batcher.fetch into the
   oblivious store's merged pass, which serves the whole batch with one
   level scan per level per chunk. *)

type transport = {
  next_round : unit -> unit;
  fetch : file:string -> int array -> bytes array;
  on_retry : backoff:float -> unit;
  accounted : unit -> float;
}

let session_transport session =
  { next_round = (fun () -> Session.next_round session);
    fetch = (fun ~file pages -> [| Session.fetch session ~file ~page:pages.(0) |]);
    on_retry = (fun ~backoff -> Session.note_retry session ~backoff);
    accounted = (fun () -> Session.accounted_seconds session) }

let batcher_transport batcher =
  { next_round = (fun () -> Batcher.next_round batcher);
    fetch = (fun ~file pages -> Batcher.fetch batcher ~file ~pages);
    on_retry = (fun ~backoff -> Batcher.note_retry batcher ~backoff);
    accounted =
      (fun () ->
        Array.fold_left
          (fun acc s -> acc +. Session.accounted_seconds s)
          0.0 (Batcher.sessions batcher)) }

(* ------------------------------------------------------------------ *)
(* Pacing: how a walk reports its phase boundaries to an execution
   scheduler.  A pipelined executor (Psp_async.Pipeline) threads a
   record whose [on_release] suspends the running fiber at the release
   point — after the last server-visible operation, before the
   client-local solve — so the next batch's PIR pass can start while
   this batch decodes.  Everything reported is public: the accounted
   server seconds are plan-determined aggregates, and the decode byte
   count is plan-fixed (slot count x page size, overflow excluded) by
   construction.  The default is inert, so sequential callers pay
   nothing. *)

type pacing = {
  on_server : seconds:float -> unit;
      (* total server-side accounted seconds at the release point *)
  on_decode : bytes:int -> unit;
      (* plan-fixed delivered byte volume the client decodes *)
  on_release : unit -> unit;
      (* the suspension point: server done, client tail remains *)
}

let sequential =
  { on_server = (fun ~seconds:_ -> ());
    on_decode = (fun ~bytes:_ -> ());
    on_release = (fun () -> ()) }

(* Plan-fixed fetch slots per member: the sum of the public step list's
   window counts.  Overflow fetches are deliberately excluded — their
   count is query-dependent (the documented access-pattern cost of the
   unpadded/overflow modes), so pricing them would leak. *)
let plan_slots ctx =
  List.fold_left
    (fun acc step ->
      match step with
      | QP.Fetch_window { count; _ } -> acc + count
      | QP.Next_round | QP.Decode_barrier _ -> acc)
    0
    (QP.steps ctx.header.H.plan ~pages_per_region:ctx.header.H.pages_per_region)

(* ------------------------------------------------------------------ *)
(* The walker: one engine drives every scheme over the public step list,
   owning padding, retry, telemetry spans and — by construction — trace
   conformance (Privacy.expected_trace folds over the same list). *)

let walk (type s) (module S : SCHEME with type state = s) transport ~policy ctx
    (states : s array) =
  let all_exhausted () =
    Array.for_all S.exhausted states
    [@leak_ok
      "consulted only to stop rounds that would be pure padding when padding is \
       disabled (calibration) or the plan has overflowed — both documented \
       access-pattern costs of the unpadded/incremental modes"]
  in
  (* One fetch slot: ask every member which page it wants; a member
     without a real need gets a dummy retrieval of page 0.  The slot is
     issued iff padding demands it or some member has a real request, and
     the whole merged fetch retries as a unit so members stay in
     lockstep.  Returns whether any member had a real request. *)
  let slot ~pad_slot ~file =
    let (wants [@secret]) = Array.map (fun st -> S.next_page st ~file) states in
    let any_real =
      (Array.exists Option.is_some wants
      [@leak_ok
        "trip count is the member count (the public batch size); which members \
         carry a real request stays inside the option payloads"])
    in
    (if pad_slot || any_real then begin
       let (pages [@secret]) = Array.map (Option.value ~default:0) wants in
       let blobs =
         with_retry ~policy ~on_retry:transport.on_retry (fun () ->
             transport.fetch ~file pages)
       in
       Array.iteri
         (fun i blob ->
           match wants.(i) with
           | Some _ -> S.deliver states.(i) ~file blob
           | None -> ())
         blobs
     end)
    [@leak_ok
      "with padding on, the slot is issued unconditionally — the branch is \
       constant-true and the fetch count is the public plan's; page indices are \
       hidden by the PIR layer, and delivery is client-local"];
    any_real
  in
  List.iter
    (fun step ->
      match step with
      | QP.Next_round ->
          (if ctx.pad || not (all_exhausted ()) then transport.next_round ())
          [@leak_ok
            "with padding on, every plan round runs — the branch is constant-true; \
             unpadded (calibration) runs already forgo the plan's shape"]
      | QP.Fetch_window { file; count } ->
          Obs.with_span ("window:" ^ file) (fun () ->
              for _ = 1 to count do
                ignore (slot ~pad_slot:ctx.pad ~file)
              done)
      | QP.Decode_barrier { label } ->
          Obs.with_span label (fun () ->
              Array.iter (fun st -> S.barrier st ~label) states))
    (QP.steps ctx.header.H.plan ~pages_per_region:ctx.header.H.pages_per_region);
  (* Overflow: a query that out-grows a mis-calibrated plan keeps
     fetching (HY long records, LM/AF searches) instead of failing — the
     trace deviation is the access-pattern cost those schemes accept,
     and Calibrate exists to make this loop unreachable.  No spans here:
     a span call count that depends on the query would break the
     constant-shape telemetry policy. *)
  (match QP.overflow ctx.header.H.plan with
  | None -> ()
  | Some { QP.file; window; per_round } ->
      let continue_ = ref (not (all_exhausted ())) in
      while !continue_ do
        if per_round then transport.next_round ();
        let any = ref false in
        for _ = 1 to window do
          if slot ~pad_slot:false ~file then any := true
        done;
        continue_ := !any && not (all_exhausted ())
      done)
  [@leak_ok
    "overflow fetches beyond the public plan are LM/AF/HY's documented \
     access-pattern cost; the loop stops as soon as no member needs real data"]
  [@@oblivious]

let run_transport (module S : SCHEME) transport ~policy ~pacing ctx queries =
  let states = Array.map (S.init ctx) queries in
  (* Phase reports are unconditional — every walk reports exactly once,
     including walks aborted by retry exhaustion or replica failure, so
     an execution scheduler's accounting never depends on the outcome.
     The release point sits after the last server-visible operation
     (the overflow loop included): a suspended fiber has nothing left
     to say to the server, so resuming it later cannot reorder the
     server-visible schedule. *)
  (match walk (module S) transport ~policy ctx states with
  | () -> pacing.on_server ~seconds:(transport.accounted ())
  | exception e ->
      pacing.on_server ~seconds:(transport.accounted ());
      raise e);
  pacing.on_decode ~bytes:(Array.length queries * plan_slots ctx * ctx.psize);
  pacing.on_release ();
  Obs.with_span "solve" (fun () -> Array.map S.answer states)
  [@@oblivious]

let run scheme session ~policy ctx q =
  (run_transport scheme (session_transport session) ~policy ~pacing:sequential ctx
     [| q |]).(0)
  [@@oblivious]

let run_batch ?(pacing = sequential) scheme batcher ~policy ctx queries =
  if Array.length queries <> Psp_pir.Batcher.width batcher then
    invalid_arg "Engine.run_batch: one query per batcher session required";
  run_transport scheme (batcher_transport batcher) ~policy ~pacing ctx queries
  [@@oblivious]
