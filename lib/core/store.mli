(** Client-side store of downloaded network data.

    Schemes decode fetched region blobs into this structure and solve the
    final shortest-path instance over it.  Everything is client-local:
    no function here issues a fetch, so the module is outside the
    adversary's view by construction. *)

type t

val create : unit -> t

val add_record : t -> int -> Psp_index.Encoding.node_record -> unit
(** [add_record store region r] files node [r] under [region]; duplicate
    deliveries of the same node are ignored. *)

val add_triple : t -> Psp_index.Encoding.edge_triple -> unit
(** Append one subgraph edge to the adjacency (PI/HY edge records). *)

val record : t -> int -> Psp_index.Encoding.node_record option
val has_record : t -> int -> bool

val snap : t -> int -> x:float -> y:float -> int
(** Nearest stored node of the given region to the coordinates.
    @raise Failure if the region holds no nodes (malformed database). *)

val dijkstra : t -> source:int -> target:int -> (int list * float) option
(** Exact shortest path over the downloaded adjacency; [None] when the
    target is unreachable from the source within the store. *)
