(** The querying client — the left side of Figure 1.

    A client knows only its own source/destination coordinates and what
    the public header tells it; everything else arrives over the PIR
    interface.  This module is a facade: it downloads the header,
    locates the endpoint regions, and hands the {!Registry}-selected
    scheme to the {!Engine}, which walks the public query plan (CI §5.4,
    PI/PI* §6, HY §6, LM/AF §4) including the dummy padding that makes
    every trace conform to the published plan.

    Returns the path (as a node-id sequence with its cost), the server
    session statistics (PIR time, communication time, per-file page
    counts, the adversary-visible trace) and the client-side CPU time —
    the three response-time components of Table 3. *)

type retry_policy = Engine.retry_policy = {
  max_attempts : int;  (** total tries per retrieval, first one included *)
  base_backoff : float;
      (** simulated seconds before the first retry; doubles per attempt *)
}

val default_retry : retry_policy
(** 4 attempts, 0.1 s base backoff. *)

type status =
  | Served  (** fault-free execution *)
  | Degraded of { retries : int }
      (** the answer is correct, but recovery from transient faults or
          corrupt pages cost [retries] extra retrievals *)
  | Unavailable of { point : string; attempts : int }
      (** the retry budget ran out at failpoint [point]; no answer.
          This replaces an exception so callers always get the partial
          trace and the recovery cost that was incurred. *)
  | Unknown_scheme of { scheme : string }
      (** the header announced a scheme tag the {!Registry} does not
          know; no oblivious round was begun.  This replaces a [Failure]
          so callers can distinguish a version skew from a malformed
          database. *)

type result = {
  path : (int list * float) option;
      (** node sequence (source first) and total cost; [None] if the
          destination is unreachable (or the query was [Unavailable]) *)
  stats : Psp_pir.Server.Session.stats;
  client_seconds : float;
  regions_fetched : int;
      (** region-page budget the query consumed, in region units (for
          LM/AF this counts the rs = rt dummy slot too — it is what plan
          calibration must budget for) *)
  status : status;
}

type endpoints = { sx : float; sy : float; tx : float; ty : float }
(** One query's raw coordinates, for {!query_batch}. *)

exception Replica_failed of {
  replica : int;
  reason : string;
  stats : Psp_pir.Server.Session.stats array;
}
(** A replica-level failure ({!Engine.failover_class}: tampering,
    outage, timeout) aborted the plan walk.  The abandoned sessions are
    finished first, so the partial traces and accounted costs travel
    with the exception; the replicated entry points catch it and replay
    the whole plan against the next replica.  Escapes {!query} and
    {!query_batch} only when replica failpoints are armed against a
    standalone server — there is nowhere to fail over to. *)

val query :
  ?pad:bool ->
  ?retry:retry_policy ->
  Psp_pir.Server.t ->
  sx:float -> sy:float -> tx:float -> ty:float ->
  result
(** Execute one shortest-path query from (sx, sy) to (tx, ty).  Source
    and destination are snapped to the nearest network node of their
    regions.  [pad] (default true) enforces the query plan with dummy
    retrievals; calibration passes disable it.

    Transient faults and checksum failures raised by the server are
    retried under [retry] (default {!default_retry}) with deterministic
    exponential backoff; the retry schedule depends only on fault
    outcomes and attempt numbers, never on query content, so traces stay
    indistinguishable across queries under any fixed fault schedule
    (DESIGN.md, "Failure handling").  An exhausted budget yields
    [status = Unavailable _]; an unrecognised scheme tag yields
    [status = Unknown_scheme _].
    @raise Failure on a malformed database or a plan the query cannot
    fit into. *)

val query_batch :
  ?pad:bool ->
  ?retry:retry_policy ->
  ?pacing:Engine.pacing ->
  Psp_pir.Server.t ->
  endpoints array ->
  result array
(** Execute N queries concurrently over one {!Psp_pir.Batcher}: all
    members walk the same public plan in lockstep and each fetch slot
    becomes one merged oblivious-store pass, amortizing the PIR cost
    (Table 2) across the batch.  Member [i]'s result — path, stats,
    per-member trace — matches what a sequential [query] would have
    produced; [client_seconds] reports the per-query share of the
    batch's wall-clock.  The batch width is public.  A batch-granular
    fault that exhausts the retry budget degrades {e every} member to
    [Unavailable] identically.  An empty array returns an empty array
    without contacting the server.

    [pacing] (default {!Engine.sequential}) threads the engine's phase
    reports to an execution scheduler; {!Psp_async.Pipeline} suspends
    the call at the engine's release point through it.  It changes
    nothing about what the server observes. *)

(** {1 Replicated serving}

    Whole-plan replay failover over a {!Psp_pir.Replica_set}: when a
    replica fails mid-plan (tampering, outage, timeout — see
    {!Engine.failover_class}) or exhausts the retry budget, the entire
    public plan is replayed against the next healthy replica, never
    resumed.  Each replica therefore observes either a complete plan
    trace or a fault-schedule-determined prefix of one — both
    query-independent, so Theorem 1 holds per replica under every fault
    schedule (docs/RESILIENCE.md). *)

type abandoned = {
  on_replica : int;
  reason : string;  (** the {!Engine.failover_class} string *)
  attempt_stats : Psp_pir.Server.Session.stats array;
      (** the abandoned attempt's finished sessions: partial traces and
          the cost already incurred (one per batch member) *)
}

type replicated = {
  results : result array;
      (** one per query (singleton for {!query_replicated}); a query
          that survived via failover is at best [Degraded], its retry
          count raised by the number of failovers *)
  replica : int;  (** the replica that served the final attempt *)
  failovers : int;
  failover_seconds : float;
      (** modeled switch cost: {!Psp_pir.Cost_model.failover_seconds}
          summed over failovers (the abandoned attempts' own costs are
          in [abandoned]) *)
  abandoned : abandoned list;  (** oldest first *)
}

val query_replicated :
  ?pad:bool ->
  ?retry:retry_policy ->
  ?max_failovers:int ->
  Psp_pir.Replica_set.t ->
  sx:float -> sy:float -> tx:float -> ty:float ->
  replicated
(** {!query} against the replica the set's breakers select, failing
    over (whole-plan replay) on {!Replica_failed} or retry exhaustion
    until a replica serves, breakers admit no replica, or
    [max_failovers] (default [3 × width]) is exceeded — then the last
    attempt's [Unavailable] results are returned.  Simulated time
    (attempt costs plus failover backoff) drives the breakers' clock.
    @raise Psp_pir.Replica_set.No_replica_available only when every
    breaker is already open before the first attempt. *)

val query_batch_replicated :
  ?pad:bool ->
  ?retry:retry_policy ->
  ?max_failovers:int ->
  Psp_pir.Replica_set.t ->
  endpoints array ->
  replicated
(** {!query_batch} with the same failover loop: any replica-level fault
    is batch-granular, so the whole batch replays together and members
    stay mutually trace-identical on every replica. *)

val query_nodes_replicated :
  ?pad:bool ->
  ?retry:retry_policy ->
  ?max_failovers:int ->
  Psp_pir.Replica_set.t ->
  Psp_graph.Graph.t ->
  int -> int ->
  replicated
(** {!query_replicated} over node ids resolved through the server-side
    graph. *)

val query_nodes_batch_replicated :
  ?pad:bool ->
  ?retry:retry_policy ->
  ?max_failovers:int ->
  Psp_pir.Replica_set.t ->
  Psp_graph.Graph.t ->
  (int * int) array ->
  replicated
(** {!query_batch_replicated} over node-id pairs. *)

val query_nodes :
  ?pad:bool -> ?retry:retry_policy -> Psp_pir.Server.t -> Psp_graph.Graph.t -> int -> int -> result
(** Convenience for harnesses: look up the nodes' coordinates in the
    (server-side) graph and query by coordinates. *)

val query_nodes_batch :
  ?pad:bool ->
  ?retry:retry_policy ->
  ?pacing:Engine.pacing ->
  Psp_pir.Server.t ->
  Psp_graph.Graph.t ->
  (int * int) array ->
  result array
(** {!query_batch} over node-id pairs resolved through the server-side
    graph. *)
