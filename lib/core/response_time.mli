(** Response-time decomposition (§7.1, Table 3).

    The paper reports elapsed time from query submission to the client
    holding the shortest path, split into (i) server processing — PIR
    time for the private schemes, plaintext query processing for OBF —
    (ii) communication time and (iii) client-side computation. *)

type t = {
  pir_seconds : float;  (** SCP time for the private page retrievals *)
  comm_seconds : float;  (** simulated transfer time (3G link) *)
  server_cpu_seconds : float;  (** plaintext server work (OBF only) *)
  client_seconds : float;  (** client-side decode + Dijkstra *)
  decode_seconds : float;
      (** modeled handheld decode time for the plan-fixed delivered byte
          volume ({!Psp_pir.Cost_model.decode_seconds}); reported
          separately by the pipelined scheduler, whose overlap analysis
          needs the decode phase distinguished from [client_seconds]
          (the measured host-CPU share); 0 elsewhere *)
  queue_seconds : float;
      (** time spent waiting in the serving frontend's queue before the
          batch that served the query was dispatched
          ({!Psp_pir.Cost_model.queueing_delay_seconds}); 0 for direct
          queries that never pass through a scheduler *)
}

val total : t -> float
(** Sum of the components: the reported response time. *)

val of_result : Client.result -> t
(** Decomposition of one query's result (from the session's cost-model
    accounting plus the measured client time). *)

val zero : t
(** All components zero — the fold seed for {!add}. *)

val of_stats : Psp_pir.Server.Session.stats -> t
(** Decomposition of one finished session's cost-model accounting
    (client time unknown there: 0). *)

val of_replicated : Client.replicated -> t array
(** Per-member decomposition of a replicated query: the serving
    attempt, {e plus} every abandoned attempt's accounted cost, {e
    plus} the modeled failover seconds (charged as communication time)
    — so [Degraded] answers report the recovery overhead instead of
    the clean-run cost. *)

val with_queue : seconds:float -> t -> t
(** Replace the queueing component (the scheduler charges it once per
    served query).
    @raise Invalid_argument when [seconds < 0]. *)

val with_decode : seconds:float -> t -> t
(** Replace the modeled-decode component (the pipelined scheduler
    charges it once per served query).
    @raise Invalid_argument when [seconds < 0]. *)

val add : t -> t -> t
(** Component-wise sum. *)

val scale : float -> t -> t
(** Component-wise scaling. *)

val mean : t list -> t
(** Component-wise mean (the 1,000-query workload average). *)

val pp : Format.formatter -> t -> unit
