module H = Psp_index.Header
module QP = Psp_index.Query_plan
module FB = Psp_index.Fi_builder
module Sc = Scheme_common

(* HY (§6): one combined index+data file.  Round 3 reads an r-page
   window at the looked-up record; round 4 reads the record's region
   pages (one page per region in the combined layout) — or, for a long
   subgraph record, first the record's tail beyond r.  The tail and
   every region page count against the public round4 budget; a record
   that outgrows it spills into the engine's overflow slots. *)

type state = {
  ctx : Engine.ctx;
  q : Engine.query;
  store : Store.t;
  r_pages : int;
  round4 : int;
  mutable lookup_sent : bool;
  mutable lookup_blob : bytes option;
  mutable entry_page : int;
  mutable entry_offset : int;
  mutable head_start : int;
  mutable head_sent : int;
  mutable head_pages : bytes list;  (* reversed *)
  mutable head_got : int;
  mutable tail_needed : int;
  mutable tail_sent : int;
  mutable tail_pages : bytes list;  (* reversed *)
  mutable tail_got : int;
  mutable to_send : (int * int) list;  (* region, combined-file page *)
  mutable awaiting : int list;  (* regions with a slot in flight, FIFO *)
  mutable triples : Psp_index.Encoding.edge_triple array;
  mutable decoded : bool;
  mutable real_count : int;
}

let init ctx (q [@secret]) =
  let r_pages, round4 =
    match ctx.Engine.header.H.plan with
    | QP.Hy { r; round4 } -> (r, round4)
    | _ -> failwith "Client: HY database with non-HY plan"
  in
  { ctx;
    q;
    store = Store.create ();
    r_pages;
    round4;
    lookup_sent = false;
    lookup_blob = None;
    entry_page = 0;
    entry_offset = 0;
    head_start = 0;
    head_sent = 0;
    head_pages = [];
    head_got = 0;
    tail_needed = 0;
    tail_sent = 0;
    tail_pages = [];
    tail_got = 0;
    to_send = [];
    awaiting = [];
    triples = [||];
    decoded = false;
    real_count = 0 }
  [@@oblivious]

let push_region (st [@secret]) (region [@secret]) =
  st.to_send <-
    st.to_send
    @ [ (region, st.ctx.Engine.header.H.region_first_page.(region)) ]
  [@@oblivious]

(* The record's region set (or its endpoint pair for subgraph records)
   becomes the round-4 send queue. *)
let finish_with_regions (st [@secret]) (regions [@secret]) =
  (let to_fetch =
     List.sort_uniq compare
       (st.q.Engine.rs :: st.q.Engine.rt :: Array.to_list regions)
   in
   if List.length to_fetch > st.round4 then
     failwith "Client: HY fetch set exceeds the query plan budget";
   st.real_count <- List.length to_fetch;
   List.iter (push_region st) to_fetch)
  [@leak_ok
    "budget check fails closed with a constant message; a well-formed database \
     never trips it (round4 bounds every region set plus endpoints)"]
  [@@oblivious]

let finish_with_triples (st [@secret]) (triples [@secret]) =
  (st.triples <- triples;
   st.real_count <- 2;
   push_region st st.q.Engine.rs;
   if st.q.Engine.rt <> st.q.Engine.rs then push_region st st.q.Engine.rt)
  [@leak_ok
    "balanced branch: when source and target share a region the second slot \
     degrades to a dummy retrieval, so exactly two round-4 slots are consumed \
     either way"]
  [@@oblivious]

let next_page (st [@secret]) ~file =
  (match file with
  | "lookup" ->
      if st.lookup_sent then None
      else begin
        st.lookup_sent <- true;
        let page, _ =
          Sc.lookup_slot st.ctx.Engine.header ~psize:st.ctx.Engine.psize
            ~rs:st.q.Engine.rs ~rt:st.q.Engine.rt
        in
        Some page
      end
  | _ ->
      if st.head_sent < st.r_pages then begin
        let p = st.head_start + st.head_sent in
        st.head_sent <- st.head_sent + 1;
        Some p
      end
      else if st.tail_sent < st.tail_needed then begin
        let p = st.entry_page + st.r_pages + st.tail_sent in
        st.tail_sent <- st.tail_sent + 1;
        Some p
      end
      else
        match st.to_send with
        | [] -> None
        | (region, page) :: rest ->
            st.to_send <- rest;
            st.awaiting <- st.awaiting @ [ region ];
            Some page)
  [@leak_ok
    "phase bookkeeping picks which page index fills a plan-fixed fetch slot; the \
     long-record tail and every region page count against the padded round4 budget"]
  [@@oblivious]

let deliver (st [@secret]) ~file blob =
  (match file with
  | "lookup" -> st.lookup_blob <- Some blob
  | _ ->
      if st.head_got < st.r_pages then begin
        st.head_pages <- blob :: st.head_pages;
        st.head_got <- st.head_got + 1
      end
      else if st.tail_got < st.tail_needed then begin
        st.tail_pages <- blob :: st.tail_pages;
        st.tail_got <- st.tail_got + 1;
        if st.tail_got = st.tail_needed then begin
          (* only subgraph records may span past r (r bounds region sets);
             the decode runs here — not under a barrier span — because a
             span at this data-dependent site would break the
             constant-shape telemetry policy *)
          let pages =
            Array.of_list (List.rev st.head_pages @ List.rev st.tail_pages)
          in
          match
            Sc.decode_fi st.ctx.Engine.header ~pages ~base_page:0
              ~offset:st.entry_offset
          with
          | FB.Edges triples ->
              st.decoded <- true;
              finish_with_triples st triples
          | FB.Regions _ -> failwith "Client: HY record past r is not a subgraph"
        end
      end
      else
        match st.awaiting with
        | [] -> failwith "Client: unexpected region page delivery"
        | region :: rest ->
            st.awaiting <- rest;
            List.iter
              (Store.add_record st.store region)
              (Sc.decode_region_window st.ctx.Engine.header [ blob ]))
  [@leak_ok
    "client-local decode of already-fetched pages; malformed records fail closed \
     with constant messages"]
  [@@oblivious]

let barrier (st [@secret]) ~label =
  (match label with
  | "lookup" ->
      let blob =
        match st.lookup_blob with
        | Some b -> b
        | None -> failwith "Client: lookup page missing at barrier"
      in
      let _, pos =
        Sc.lookup_slot st.ctx.Engine.header ~psize:st.ctx.Engine.psize
          ~rs:st.q.Engine.rs ~rt:st.q.Engine.rt
      in
      let page, offset, span = Sc.decode_entry blob ~pos in
      st.entry_page <- page;
      st.entry_offset <- offset;
      if span <= st.r_pages then
        (* the whole record (and its reference chain) fits in round 3 *)
        st.head_start <-
          Sc.window_start ~file_pages:st.ctx.Engine.header.H.data_offset
            ~span:st.r_pages ~page
      else begin
        st.head_start <- page;
        st.tail_needed <- span - st.r_pages
      end
  | "decode" ->
      if st.tail_needed = 0 then begin
        let window = Array.of_list (List.rev st.head_pages) in
        (match
           Sc.decode_fi st.ctx.Engine.header ~pages:window
             ~base_page:(st.entry_page - st.head_start) ~offset:st.entry_offset
         with
        | FB.Regions regions -> finish_with_regions st regions
        | FB.Edges triples -> finish_with_triples st triples);
        st.decoded <- true
      end
      (* long record: the tail is still outstanding, so the decode runs in
         [deliver] when its last page lands — the barrier span itself is
         still emitted by the engine at this plan-fixed position *)
  | _ -> ())
  [@leak_ok
    "client-local decode of already-fetched pages; both record shapes fetch \
     exactly r combined pages in round 3, and the short/long split only moves \
     where the decode runs, never a fetch"]
  [@@oblivious]

let exhausted (st [@secret]) =
  (st.lookup_sent && st.head_sent >= st.r_pages && st.decoded
  && st.tail_sent >= st.tail_needed
  && st.to_send = [] && st.awaiting = [])
  [@leak_ok
    "consulted by the engine's exhaustion check, whose gating is justified at the \
     engine's sites"]
  [@@oblivious]

let answer (st [@secret]) =
  (Array.iter (Store.add_triple st.store) st.triples
  [@leak_ok
    "client-local decode of already-retrieved pages; the server cannot observe \
     this trip count"]);
  let s = Store.snap st.store st.q.Engine.rs ~x:st.q.Engine.sx ~y:st.q.Engine.sy
  and t = Store.snap st.store st.q.Engine.rt ~x:st.q.Engine.tx ~y:st.q.Engine.ty in
  (Store.dijkstra st.store ~source:s ~target:t, st.real_count)
  [@@oblivious]
