(** CI (§5.4): compressed index.  The lookup entry names an FI record
    whose region set — plus both endpoint regions — is fetched in round
    4, padded to the public budget [m + 2]. *)

include Engine.SCHEME
