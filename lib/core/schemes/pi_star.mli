(** PI* (§6.1): PI over clustered regions.  Shares {!Pi}'s retrieval
    machine verbatim; the layout differences arrive via the header. *)

include Engine.SCHEME
