(** PI (§6): precomputed-index.  The FI record carries the shortest
    path's subgraph as edge triples; only the two endpoint regions'
    data pages are fetched (a shared region degrades the second window
    to dummy retrievals). *)

include Engine.SCHEME
