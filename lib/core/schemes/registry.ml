(* The scheme registry: the one place a header's scheme tag turns into
   code.  Replaces the old string dispatch inside the client, so an
   unknown tag becomes a typed status instead of a Failure. *)

let find : string -> Engine.scheme option = function
  | "CI" -> Some (module Ci)
  | "PI" -> Some (module Pi)
  | "PI*" -> Some (module Pi_star)
  | "HY" -> Some (module Hy)
  | "LM" -> Some (module Lm)
  | "AF" -> Some (module Af)
  | _ -> None

let names = [ "CI"; "PI"; "PI*"; "HY"; "LM"; "AF" ]
