(** HY (§6): hybrid scheme over one combined index+data file.  Round 3
    reads an r-page window at the looked-up record; round 4 reads the
    record's region pages (or a long subgraph record's tail first), all
    counted against the public [round4] budget. *)

include Engine.SCHEME
