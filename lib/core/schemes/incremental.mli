(** LM and AF (§4): incremental region fetching.

    A best-first search suspended inside [next_page]: each plan round
    grants one region's worth of data-page slots, and the search pulls
    the region of the next frontier node it pops — the deliberate
    access-pattern trade these schemes make (DESIGN.md).  Padding still
    tops the session up to the public page budget. *)

val alt_heuristic :
  Psp_index.Encoding.node_record -> Psp_index.Encoding.node_record -> float
(** ALT (landmark) lower bound between two nodes; 0 when either side
    lacks landmark vectors. *)

val region_rects :
  Psp_index.Header.t -> (float * float * float * float) array
(** Leaf bounding rectangles of the header's KD-tree, indexed by
    region; the root box is unbounded, so sides may be infinite. *)

val rect_distance : float * float * float * float -> x:float -> y:float -> float
(** Euclidean distance from a point to a rectangle (0 inside). *)

module Make (_ : sig
  val use_alt : bool
  val use_flags : bool
end) : Engine.SCHEME
(** [use_alt] steers the search with ALT bounds (LM); [use_flags]
    prunes edges by arc-flags towards the target region (AF). *)
