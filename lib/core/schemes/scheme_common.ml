module H = Psp_index.Header
module E = Psp_index.Encoding
module FB = Psp_index.Fi_builder

(* Helpers shared by the scheme modules.  Everything here is
   client-local arithmetic or decoding over already-fetched pages: no
   function issues a fetch, so these cannot change the server's view —
   they only compute which page index the engine puts into a fetch slot
   it was issuing anyway. *)

let lookup_slot (header : H.t) ~psize ~rs:(rs [@secret]) ~rt:(rt [@secret]) =
  let per_page = psize / E.lookup_entry_bytes in
  let idx = (rs * header.H.region_count) + rt in
  (idx / per_page, idx mod per_page * E.lookup_entry_bytes)
  [@@oblivious]

let decode_entry blob ~pos = E.decode_lookup_entry blob ~pos

let window_start ~file_pages ~span ~page:(page [@secret]) =
  max 0 (min page (file_pages - span))
  [@@oblivious]

let decode_fi (header : H.t) ~pages ~base_page ~offset =
  FB.decode ~quantize:header.H.config.E.quantize ~pages ~base_page ~offset

let decode_region_window (header : H.t) pages =
  let blob = Bytes.concat Bytes.empty pages in
  E.decode_region header.H.config blob

(* ------------------------------------------------------------------ *)
(* A queue of pending region fetches, spoon-fed to the engine one page
   per slot: [rq_next] hands out the next page of the in-flight region
   (or starts the next queued one), [rq_deliver] collects the pages and
   files the decoded records into the store once the region completes. *)

type region_queue = {
  rq_header : H.t;
  rq_store : Store.t;
  rq_pages : int;  (* pages per region *)
  mutable rq_queue : int list;
  mutable rq_current : (int * int * bytes list) option;
      (* region, pages requested, delivered pages in reverse *)
}

let region_queue (header : H.t) store ~pages_per_region =
  { rq_header = header;
    rq_store = store;
    rq_pages = pages_per_region;
    rq_queue = [];
    rq_current = None }

let rq_push q (region [@secret]) = q.rq_queue <- q.rq_queue @ [ region ] [@@oblivious]

let rq_next (q [@secret]) =
  (match q.rq_current with
  | Some (region, sent, got) ->
      q.rq_current <- Some (region, sent + 1, got);
      Some (q.rq_header.H.region_first_page.(region) + sent)
  | None -> (
      match q.rq_queue with
      | [] -> None
      | region :: rest ->
          q.rq_queue <- rest;
          q.rq_current <- Some (region, 1, []);
          Some q.rq_header.H.region_first_page.(region)))
  [@leak_ok
    "queue bookkeeping only picks which page index fills a plan-fixed fetch slot; \
     an empty queue yields a dummy retrieval, never a skipped one (with padding)"]
  [@@oblivious]

let rq_deliver (q [@secret]) blob =
  (match q.rq_current with
  | None -> failwith "Client: unexpected region page delivery"
  | Some (region, sent, got) ->
      let got = blob :: got in
      if List.length got >= q.rq_pages then begin
        List.iter
          (Store.add_record q.rq_store region)
          (decode_region_window q.rq_header (List.rev got));
        q.rq_current <- None
      end
      else q.rq_current <- Some (region, sent, got))
  [@leak_ok
    "client-local decode of already-fetched pages; a malformed region fails closed \
     with a constant message"]
  [@@oblivious]

let rq_idle (q [@secret]) =
  (q.rq_current = None && q.rq_queue = [])
  [@leak_ok
    "consulted by the engine's exhaustion check, whose gating is itself justified at \
     the engine's sites"]
  [@@oblivious]
