(* AF (§4.3): incremental fetching pruned by arc-flags towards the
   target region. *)
include Incremental.Make (struct
  let use_alt = false
  let use_flags = true
end)
