(** LM (§4.2): incremental fetching with ALT (landmark) lower bounds.
    [Incremental.Make] with [use_alt]. *)

include Engine.SCHEME
