(** AF (§4.3): incremental fetching pruned by arc-flags towards the
    target region.  [Incremental.Make] with [use_flags]. *)

include Engine.SCHEME
