(* LM (§4.2): incremental fetching with ALT (landmark) lower bounds. *)
include Incremental.Make (struct
  let use_alt = true
  let use_flags = false
end)
