module H = Psp_index.Header
module QP = Psp_index.Query_plan
module E = Psp_index.Encoding
module Sc = Scheme_common

(* LM and AF (§4): incremental region fetching.  The search is a
   best-first walk that pulls a region the first time it pops a node
   living there — suspended inside [next_page], so the engine's
   plan-fixed slots (one region's worth of data pages per round) drive
   it forward without the scheme ever issuing a fetch itself. *)

let alt_heuristic (v : E.node_record) (t : E.node_record) =
  match (v.E.landmark, t.E.landmark) with
  | Some (to_v, from_v), Some (to_t, from_t) ->
      let bound = ref 0.0 in
      for a = 0 to Array.length to_v - 1 do
        bound := Float.max !bound (to_v.(a) -. to_t.(a));
        bound := Float.max !bound (from_t.(a) -. from_v.(a))
      done;
      Float.max !bound 0.0
  | _ -> 0.0

(* Leaf bounding rectangles of the header's KD-tree; the root box is
   unbounded, so sides may be infinite. *)
let region_rects (header : H.t) =
  let rects =
    Array.make header.H.region_count (neg_infinity, neg_infinity, infinity, infinity)
  in
  let rec walk tree ((x0, y0, x1, y1) as box) =
    match tree with
    | Psp_partition.Kdtree.Leaf { region } -> rects.(region) <- box
    | Psp_partition.Kdtree.Split { axis; coord; less; geq } -> (
        match axis with
        | Psp_partition.Kdtree.X ->
            walk less (x0, y0, coord, y1);
            walk geq (coord, y0, x1, y1)
        | Psp_partition.Kdtree.Y ->
            walk less (x0, y0, x1, coord);
            walk geq (x0, coord, x1, y1))
  in
  walk header.H.tree (neg_infinity, neg_infinity, infinity, infinity);
  rects

let rect_distance (x0, y0, x1, y1) ~x ~y =
  let dx = Float.max 0.0 (Float.max (x0 -. x) (x -. x1)) in
  let dy = Float.max 0.0 (Float.max (y0 -. y) (y -. y1)) in
  sqrt ((dx *. dx) +. (dy *. dy))

module Make (C : sig
  val use_alt : bool
  val use_flags : bool
end) : Engine.SCHEME = struct
  type state = {
    ctx : Engine.ctx;
    q : Engine.query;
    store : Store.t;
    budget_regions : int;
    rq : Sc.region_queue;
    fetched : (int, unit) Hashtbl.t;
    dist : (int, float) Hashtbl.t;
    parent : (int, int) Hashtbl.t;
    closed : (int, unit) Hashtbl.t;
    region_of_frontier : (int, int) Hashtbl.t;
    heap : Psp_util.Min_heap.t;
    mutable consumed : int;  (* region units, dummy slots included *)
    mutable rects : (float * float * float * float) array option;
    mutable s_id : int;
    mutable t_id : int;
    mutable t_record : E.node_record option;
    mutable pending_node : int option;  (* re-queued when its region lands *)
    mutable setup_done : bool;
    mutable search_done : bool;
    mutable found : bool;
  }

  let init ctx (q [@secret]) =
    (let budget_regions =
       match ctx.Engine.header.H.plan with
       | QP.Lm { total_data_pages } -> total_data_pages
       | QP.Af { max_regions; _ } -> max_regions
       | _ -> failwith "Client: LM/AF database with wrong plan"
     in
     let store = Store.create () in
     let rq =
       Sc.region_queue ctx.Engine.header store
         ~pages_per_region:ctx.Engine.header.H.pages_per_region
     in
     let fetched = Hashtbl.create 16 in
     (* round 2: the source and destination regions (a shared region's
        second window degrades to dummy slots but still counts) *)
     Sc.rq_push rq q.Engine.rs;
     Hashtbl.replace fetched q.Engine.rs ();
     if q.Engine.rt <> q.Engine.rs then begin
       Sc.rq_push rq q.Engine.rt;
       Hashtbl.replace fetched q.Engine.rt ()
     end;
     { ctx;
       q;
       store;
       budget_regions;
       rq;
       fetched;
       dist = Hashtbl.create 1024;
       parent = Hashtbl.create 1024;
       closed = Hashtbl.create 1024;
       region_of_frontier = Hashtbl.create 64;
       heap = Psp_util.Min_heap.create ();
       consumed = 2;
       rects = None;
       s_id = -1;
       t_id = -1;
       t_record = None;
       pending_node = None;
       setup_done = false;
       search_done = false;
       found = false })
    [@leak_ok
      "balanced setup: both arms consume exactly one region window in round 2, \
       and the consumed counter charges the dummy window against the budget just \
       as calibration expects"]
    [@@oblivious]

  (* A frontier node in a not-yet-fetched region has no ALT vector, but
     its region's rectangle (public, from the header) gives an admissible
     stand-in: heuristic_scale times the rectangle's distance to the
     destination.  Without this, distant regions look free and get
     fetched eagerly. *)
  let h (st [@secret]) (v [@secret]) =
    (if not C.use_alt then 0.0
     else
       let t_record =
         match st.t_record with
         | Some r -> r
         | None -> failwith "Client: heuristic consulted before setup"
       in
       match Store.record st.store v with
       | Some r -> alt_heuristic r t_record
       | None -> (
           (* unfetched: bound by its region's rectangle *)
           match (st.rects, Hashtbl.find_opt st.region_of_frontier v) with
           | Some rects, Some region ->
               st.ctx.Engine.header.H.heuristic_scale
               *. rect_distance rects.(region) ~x:t_record.E.x ~y:t_record.E.y
           | _ -> 0.0))
    [@leak_ok
      "heuristic evaluation is client-local arithmetic; it only steers which \
       region the search pulls next, the incremental schemes' accepted \
       access-pattern cost"]
    [@@oblivious]

  let relax (st [@secret]) u (record [@secret]) =
    (let du = Hashtbl.find st.dist u in
     List.iter
       (fun (e : E.adj) ->
         let usable =
           (not C.use_flags)
           ||
           match e.E.flags with
           | Some flags -> Psp_util.Bitset.mem flags st.q.Engine.rt
           | None -> failwith "Client: AF database lacks arc-flags"
         in
         if usable then begin
           let nd = du +. e.E.weight in
           let better =
             match Hashtbl.find_opt st.dist e.E.target with
             | Some old -> nd < old
             | None -> true
           in
           if better then begin
             Hashtbl.replace st.dist e.E.target nd;
             Hashtbl.replace st.parent e.E.target u;
             (* the mixed (rect / ALT) heuristic is admissible but not
                consistent, so a strict improvement must reopen an
                already-closed node; with reopening, stopping at t's
                first pop stays exact *)
             Hashtbl.remove st.closed e.E.target;
             if e.E.target_region >= 0 then
               Hashtbl.replace st.region_of_frontier e.E.target e.E.target_region;
             Psp_util.Min_heap.push st.heap
               ~priority:(nd +. h st e.E.target)
               e.E.target
           end
         end)
       record.E.adj)
    [@leak_ok
      "edge relaxation is client-local; it only steers which region the search \
       pulls next, the incremental schemes' accepted access-pattern cost"]
    [@@oblivious]

  (* Advance the search until it needs a region's first page (returned),
     terminates, or runs dry. *)
  let rec advance (st [@secret]) =
    (match Psp_util.Min_heap.pop st.heap with
    | None ->
        st.search_done <- true;
        None
    | Some (key, u) ->
        if Hashtbl.mem st.closed u then advance st
        else begin
          match Store.record st.store u with
          | None -> (
              (* node lives in a region we have not fetched yet *)
              let region =
                match Hashtbl.find_opt st.region_of_frontier u with
                | Some r -> r
                | None -> failwith "Client: frontier node with unknown region"
              in
              if Hashtbl.mem st.fetched region then begin
                Psp_util.Min_heap.push st.heap
                  ~priority:(Hashtbl.find st.dist u +. h st u)
                  u;
                advance st
              end
              else begin
                Hashtbl.replace st.fetched region ();
                st.consumed <- st.consumed + 1;
                st.pending_node <- Some u;
                Sc.rq_push st.rq region;
                match Sc.rq_next st.rq with
                | Some page -> Some page
                | None -> failwith "Client: region queue yielded no page"
              end)
          | Some _ when key +. 1e-12 < Hashtbl.find st.dist u +. h st u ->
              (* the node was queued before its region (and heuristic) was
                 known: its key understates g + h, and closing it now could
                 be premature — re-queue at the proper key *)
              Psp_util.Min_heap.push st.heap
                ~priority:(Hashtbl.find st.dist u +. h st u)
                u;
              advance st
          | Some record ->
              Hashtbl.replace st.closed u ();
              if u = st.t_id then begin
                st.found <- true;
                st.search_done <- true;
                None
              end
              else begin
                relax st u record;
                advance st
              end
        end)
    [@leak_ok
      "the best-first search order is secret-dependent by design in LM/AF; every \
       server-visible fetch it triggers fills a slot the engine counts against — \
       and pads up to — the public page budget before the query returns"]
    [@@oblivious]

  let next_page (st [@secret]) ~file =
    (ignore file;
     match Sc.rq_next st.rq with
     | Some page -> Some page
     | None ->
         if (not st.setup_done) || st.search_done then None else advance st)
    [@leak_ok
      "slot bookkeeping: an idle queue before setup or after termination yields \
       dummy retrievals, never skipped slots (with padding)"]
    [@@oblivious]

  let deliver (st [@secret]) ~file blob =
    (ignore file;
     Sc.rq_deliver st.rq blob;
     match st.pending_node with
     | Some u when Sc.rq_idle st.rq ->
         (* the region the search was waiting on is fully landed *)
         st.pending_node <- None;
         Psp_util.Min_heap.push st.heap
           ~priority:(Hashtbl.find st.dist u +. h st u)
           u
     | _ -> ())
    [@leak_ok "delivery is client-local; the fetch already happened"]
    [@@oblivious]

  let barrier (st [@secret]) ~label =
    (match label with
    | "setup" ->
        st.s_id <-
          Store.snap st.store st.q.Engine.rs ~x:st.q.Engine.sx ~y:st.q.Engine.sy;
        st.t_id <-
          Store.snap st.store st.q.Engine.rt ~x:st.q.Engine.tx ~y:st.q.Engine.ty;
        st.t_record <- Store.record st.store st.t_id;
        if C.use_alt then st.rects <- Some (region_rects st.ctx.Engine.header);
        Hashtbl.replace st.dist st.s_id 0.0;
        Psp_util.Min_heap.push st.heap ~priority:(h st st.s_id) st.s_id;
        st.setup_done <- true
    | _ -> ())
    [@leak_ok
      "client-local search initialisation over already-fetched regions; no fetch \
       is issued here"]
    [@@oblivious]

  let exhausted (st [@secret]) =
    (st.setup_done && st.search_done && Sc.rq_idle st.rq)
    [@leak_ok
      "consulted by the engine's exhaustion check, whose gating is justified at \
       the engine's sites"]
    [@@oblivious]

  let answer (st [@secret]) =
    (let path =
       if not st.found then None
       else begin
         let rec build v acc =
           match Hashtbl.find_opt st.parent v with
           | None -> v :: acc
           | Some p -> build p (v :: acc)
         in
         Some (build st.t_id [], Hashtbl.find st.dist st.t_id)
       end
     in
     (* report the region budget consumed rather than the distinct-region
        count: the rs = rt dummy window counts against the plan, and
        calibration must budget for it; with padding the engine topped the
        session up to the public budget *)
     ( path,
       if st.ctx.Engine.pad then max st.consumed st.budget_regions
       else st.consumed ))
    [@leak_ok "path reconstruction is client-local; no fetch is issued after it"]
    [@@oblivious]
end
