(** The scheme registry: the one place a header's scheme tag turns into
    code. *)

val find : string -> Engine.scheme option
(** The pluggable module for a header's scheme tag, or [None] for an
    unknown tag (surfaced as {!Client.status.Unknown_scheme}). *)

val names : string list
(** Every registered tag, in the paper's presentation order. *)
