module H = Psp_index.Header
module QP = Psp_index.Query_plan
module FB = Psp_index.Fi_builder
module Sc = Scheme_common

(* PI and PI* (§6): lookup entry → fi_span index window → a precomputed
   subgraph record, plus the two endpoint regions' data pages. *)

type state = {
  ctx : Engine.ctx;
  q : Engine.query;
  store : Store.t;
  fi_span : int;
  mutable lookup_sent : bool;
  mutable lookup_blob : bytes option;
  mutable entry_page : int;
  mutable entry_offset : int;
  mutable win_start : int;
  mutable win_sent : int;
  mutable win_pages : bytes list;  (* reversed *)
  rq : Sc.region_queue;
  mutable triples : Psp_index.Encoding.edge_triple array;
  mutable decoded : bool;
}

let init ctx (q [@secret]) =
  let fi_span =
    match ctx.Engine.header.H.plan with
    | QP.Pi { fi_span } -> fi_span
    | QP.Pi_star { fi_span; _ } -> fi_span
    | _ -> failwith "Client: PI database with non-PI plan"
  in
  let store = Store.create () in
  { ctx;
    q;
    store;
    fi_span;
    lookup_sent = false;
    lookup_blob = None;
    entry_page = 0;
    entry_offset = 0;
    win_start = 0;
    win_sent = 0;
    win_pages = [];
    rq =
      Sc.region_queue ctx.Engine.header store
        ~pages_per_region:ctx.Engine.header.H.pages_per_region;
    triples = [||];
    decoded = false }
  [@@oblivious]

let next_page (st [@secret]) ~file =
  (match file with
  | "lookup" ->
      if st.lookup_sent then None
      else begin
        st.lookup_sent <- true;
        let page, _ =
          Sc.lookup_slot st.ctx.Engine.header ~psize:st.ctx.Engine.psize
            ~rs:st.q.Engine.rs ~rt:st.q.Engine.rt
        in
        Some page
      end
  | "index" ->
      if st.win_sent >= st.fi_span then None
      else begin
        let p = st.win_start + st.win_sent in
        st.win_sent <- st.win_sent + 1;
        Some p
      end
  | _ -> Sc.rq_next st.rq)
  [@leak_ok
    "phase bookkeeping picks which page index fills a plan-fixed fetch slot; the \
     engine issues the same slot sequence regardless of these branches (when source \
     and target share a region, the second region window degrades to dummy \
     retrievals, keeping both arms at pages_per_region data pages)"]
  [@@oblivious]

let deliver (st [@secret]) ~file blob =
  (match file with
  | "lookup" -> st.lookup_blob <- Some blob
  | "index" -> st.win_pages <- blob :: st.win_pages
  | _ -> Sc.rq_deliver st.rq blob)
  [@leak_ok "delivery is client-local; the fetch already happened"]
  [@@oblivious]

let barrier (st [@secret]) ~label =
  (match label with
  | "lookup" ->
      let blob =
        match st.lookup_blob with
        | Some b -> b
        | None -> failwith "Client: lookup page missing at barrier"
      in
      let _, pos =
        Sc.lookup_slot st.ctx.Engine.header ~psize:st.ctx.Engine.psize
          ~rs:st.q.Engine.rs ~rt:st.q.Engine.rt
      in
      let page, offset, _span = Sc.decode_entry blob ~pos in
      st.entry_page <- page;
      st.entry_offset <- offset;
      st.win_start <-
        Sc.window_start ~file_pages:st.ctx.Engine.header.H.index_pages ~span:st.fi_span
          ~page
  | "decode" ->
      let window = Array.of_list (List.rev st.win_pages) in
      (match
         Sc.decode_fi st.ctx.Engine.header ~pages:window
           ~base_page:(st.entry_page - st.win_start) ~offset:st.entry_offset
       with
      | FB.Edges e -> st.triples <- e
      | FB.Regions _ -> failwith "Client: PI look-up led to a region-set record");
      st.decoded <- true;
      Sc.rq_push st.rq st.q.Engine.rs;
      if st.q.Engine.rt <> st.q.Engine.rs then Sc.rq_push st.rq st.q.Engine.rt
  | _ -> ())
  [@leak_ok
    "client-local decode of already-fetched pages; a malformed record fails closed \
     with a constant message, and the shared-region branch only shortens the real \
     part of a window whose total length the plan fixes"]
  [@@oblivious]

let exhausted (st [@secret]) =
  (st.lookup_sent && st.win_sent >= st.fi_span && st.decoded && Sc.rq_idle st.rq)
  [@leak_ok
    "consulted by the engine's exhaustion check, whose gating is justified at the \
     engine's sites"]
  [@@oblivious]

let answer (st [@secret]) =
  (Array.iter (Store.add_triple st.store) st.triples
  [@leak_ok
    "client-local decode of already-retrieved pages; the server cannot observe \
     this trip count"]);
  let s = Store.snap st.store st.q.Engine.rs ~x:st.q.Engine.sx ~y:st.q.Engine.sy
  and t = Store.snap st.store st.q.Engine.rt ~x:st.q.Engine.tx ~y:st.q.Engine.ty in
  (Store.dijkstra st.store ~source:s ~target:t, 2)
  [@@oblivious]
