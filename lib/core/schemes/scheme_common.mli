(** Client-local helpers shared by the scheme modules.

    Nothing here issues a fetch: these functions compute which page index
    the engine puts into a fetch slot it was issuing anyway, or decode
    pages that were already retrieved. *)

val lookup_slot :
  Psp_index.Header.t -> psize:int -> rs:int -> rt:int -> int * int
(** Lookup-file page and in-page byte position of the (rs, rt) entry. *)

val decode_entry : bytes -> pos:int -> int * int * int
(** Decoded lookup entry: (first index page, byte offset, page span). *)

val window_start : file_pages:int -> span:int -> page:int -> int
(** First page of a [span]-wide window around [page], clamped to the
    file. *)

val decode_fi :
  Psp_index.Header.t ->
  pages:bytes array ->
  base_page:int ->
  offset:int ->
  Psp_index.Fi_builder.decoded
(** Decode an FI record out of a fetched index window. *)

val decode_region_window : Psp_index.Header.t -> bytes list -> Psp_index.Encoding.node_record list
(** Decode one region's node records from its pages (in order). *)

(** A queue of pending region fetches, spoon-fed to the engine one page
    per fetch slot. *)
type region_queue

val region_queue : Psp_index.Header.t -> Store.t -> pages_per_region:int -> region_queue
val rq_push : region_queue -> int -> unit

val rq_next : region_queue -> int option
(** The next page of the in-flight region (starting the next queued one
    as needed), or [None] when the queue is drained. *)

val rq_deliver : region_queue -> bytes -> unit
(** Collect one delivered page; completing a region decodes it into the
    store. *)

val rq_idle : region_queue -> bool
