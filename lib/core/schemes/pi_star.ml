(* PI* (§6.1) shares PI's retrieval machine verbatim: only the database
   layout (clustered regions, so pages_per_region covers a cluster) and
   the plan's data-window width differ, and both arrive via the header. *)
include Pi
