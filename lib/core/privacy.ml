module T = Psp_pir.Trace
module H = Psp_index.Header
module QP = Psp_index.Query_plan

let indistinguishable traces =
  match traces with
  | [] | [ _ ] -> Ok ()
  | first :: rest ->
      let rec check i = function
        | [] -> Ok ()
        | t :: tl ->
            if T.equal first t then check (i + 1) tl
            else
              Error
                (Printf.sprintf "trace %d differs from trace 0 (%s vs %s)" i
                   (T.fingerprint t) (T.fingerprint first))
      in
      check 1 rest

(* The expectation is a pure fold over the plan's step list — the same
   list Engine walks — so the published plan has one operational
   definition and "what the engine does" versus "what the proof of
   Theorem 1 assumes" cannot drift apart. *)
let expected_trace header ~header_pages =
  let t = T.create () in
  T.record t (T.Plain_download { round = 1; file = "header"; pages = header_pages });
  let round = ref 1 in
  List.iter
    (function
      | QP.Next_round -> incr round
      | QP.Fetch_window { file; count } ->
          for _ = 1 to count do
            T.record t (T.Pir_fetch { round = !round; file })
          done
      | QP.Decode_barrier _ -> ())
    (QP.steps header.H.plan ~pages_per_region:header.H.pages_per_region);
  t

let conforms header ~header_pages trace =
  let expected = expected_trace header ~header_pages in
  if T.equal expected trace then Ok ()
  else
    Error
      (Format.asprintf "trace deviates from plan.@ expected:@ %a@ got:@ %a" T.pp expected
         T.pp trace)
