(** The scheme-agnostic execution engine.

    Theorem 1 rests on every query executing one publicly-known plan, so
    the plan — not the scheme — owns the retrieval loop here: the engine
    walks {!Psp_index.Query_plan.steps} and fills every fetch slot with
    the page a {!SCHEME} asks for, or a dummy retrieval when the scheme
    needs nothing (padding).  Retry with deterministic backoff,
    telemetry spans at plan-fixed positions, and trace conformance (the
    walker issues exactly the step list that
    {!Privacy.expected_trace} folds over) all live here, once.

    Schemes are passive: [next_page] picks which page index fills the
    slot the engine was issuing anyway, [deliver] consumes the payload,
    [barrier] runs plan-fixed client-local decode points, and [answer]
    solves over the accumulated {!Store}.  Nothing a scheme does can
    change how many fetches the server observes while padding is on. *)

type retry_policy = {
  max_attempts : int;  (** total tries per retrieval, first one included *)
  base_backoff : float;
      (** simulated seconds before the first retry; doubles per attempt *)
}

val default_retry : retry_policy
(** 4 attempts, 0.1 s base backoff. *)

type ctx = {
  header : Psp_index.Header.t;
  psize : int;  (** page size in bytes, from the downloaded header *)
  pad : bool;  (** false only in calibration runs *)
}

type query = { rs : int; rt : int; sx : float; sy : float; tx : float; ty : float }
(** Located source/target regions plus the raw coordinates — all secret. *)

type answer = (int list * float) option * int
(** The path (if any) and the consumed region budget (see
    {!Client.result.regions_fetched}). *)

module type SCHEME = sig
  type state

  val init : ctx -> query -> state

  val next_page : state -> file:string -> int option
  (** The page index to fill the current fetch slot against [file], or
      [None] when the scheme has no real need (the engine pads with a
      dummy retrieval of page 0). *)

  val deliver : state -> file:string -> bytes -> unit
  (** The payload of the last real slot this state requested. *)

  val barrier : state -> label:string -> unit
  (** A plan-fixed client-local decode point (no fetches). *)

  val exhausted : state -> bool
  (** No further real fetches needed — consulted to stop unpadded
      (calibration) walks and the overflow loop. *)

  val answer : state -> answer
end

type scheme = (module SCHEME)

exception Gave_up of { point : string; attempts : int }
(** The retry budget ran out at the named failpoint. *)

val recoverable : exn -> string option
(** The failpoint name for faults the retry loop may absorb — transient
    injections and checksum failures (redacted to the file name). *)

val failover_class : exn -> string option
(** The reason string for failures that must fail the {e replica} over
    instead of being retried in place: {!Psp_pir.Server.Tampered}
    (redacted to the file name), {!Psp_pir.Server.Replica_down} and
    {!Psp_pir.Server.Replica_timeout}.  Disjoint from {!recoverable};
    the client's failover loop replays the entire public plan against
    the next healthy replica. *)

val with_retry :
  policy:retry_policy -> on_retry:(backoff:float -> unit) -> (unit -> 'a) -> 'a
(** Bounded retry with deterministic exponential backoff
    ([base_backoff · 2{^attempt-1}]).  The schedule depends only on
    fault outcomes and attempt numbers — never on query content — so
    traces stay indistinguishable under any fixed fault schedule.
    @raise Gave_up when the budget is exhausted. *)

(** {2 Pacing: phase reports for pipelined execution}

    The walk has two phases with different resources: a {e server}
    phase (every PIR round, the overflow loop included) bounded by the
    serial SCP, and a {e client tail} (trailing decode plus the solve
    over the accumulated store) that only burns handheld CPU.  A
    {!pacing} record lets an execution scheduler see the boundary: the
    engine reports the accounted server seconds and the plan-fixed
    decode byte volume, then calls [on_release] {e after} the last
    server-visible operation and {e before} the solve.
    {!Psp_async.Pipeline} implements [on_release] as an effect that
    suspends the running fiber there, so the next batch's PIR pass
    overlaps this batch's tail.  Because a released walk has nothing
    left to say to the server, resuming the tail later cannot reorder
    the server-visible schedule — only wall-clock timing changes.

    Everything reported is public: accounted seconds are
    plan-determined cost aggregates, and the byte count is the public
    step list's slot count times the page size (overflow fetches are
    deliberately excluded — their count is query-dependent).  Reports
    fire exactly once per walk, on aborted walks too, so a scheduler's
    accounting never depends on the outcome. *)

type pacing = {
  on_server : seconds:float -> unit;
      (** total server-side accounted seconds at the release point
          ({!Psp_pir.Server.Session.accounted_seconds} summed over the
          transport's sessions) *)
  on_decode : bytes:int -> unit;
      (** plan-fixed byte volume the client-side decode consumes:
          members × plan slots × page size *)
  on_release : unit -> unit;
      (** the suspension point: server done, client tail remains *)
}

val sequential : pacing
(** The inert default: all three hooks do nothing. *)

val run :
  scheme ->
  Psp_pir.Server.Session.t ->
  policy:retry_policy ->
  ctx ->
  query ->
  answer
(** Walk the plan once for one query.
    @raise Gave_up on retry-budget exhaustion; Failure on a malformed
    database. *)

val run_batch :
  ?pacing:pacing ->
  scheme ->
  Psp_pir.Batcher.t ->
  policy:retry_policy ->
  ctx ->
  query array ->
  answer array
(** Walk the plan once for N same-plan queries in lockstep: each fetch
    slot becomes one merged {!Psp_pir.Batcher.fetch} pass, and a retry
    re-issues every member's identical request so members stay mutually
    trace-identical.  The batch width flows through the batcher into the
    oblivious store, where the pass executes as one level scan per level
    per chunk ({!Psp_pir.Pyramid_store.fetch_many}) — so the engine's
    simulated amortization and the store's executed page touches agree
    by construction.
    @raise Invalid_argument unless there is one query per batcher
    session. *)
