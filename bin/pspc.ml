(* pspc — command-line front end for the private shortest-path system.

   Subcommands:
     generate   synthesize a road network (or a Table 1 preset) to DIMACS
     build      build a scheme database from a network and report its layout
     query      answer a private shortest-path query end to end
     serve      run a mixed multi-tenant stream through the scheduler-driven
                serving frontend (lib/serve)
     trace      print the adversary's view of a query and check it against
                the published plan
     stats      run sample queries and report the telemetry registry
     inspect    summarize a network's structure
     lint       statically check [@@oblivious] code for secret-dependent
                branches, lengths and effectful calls (see also psplint)

   Networks are passed either as `--preset old --preset-scale 16` or as
   DIMACS files (`--gr map.gr --co map.co`). *)

open Cmdliner
module G = Psp_graph.Graph
module DB = Psp_index.Database
module PF = Psp_storage.Page_file
module Obs = Psp_obs.Obs

(* ------------------------------------------------------------------ *)
(* Shared options *)

let preset_arg =
  let doc = "Use a Table 1 preset network (old/ger/arg/den/ind/nor)." in
  Arg.(value & opt (some string) None & info [ "preset" ] ~doc)

let preset_scale =
  let doc = "Divide the preset's published size by this factor." in
  Arg.(value & opt float 16.0 & info [ "preset-scale" ] ~doc)

let gr_arg =
  let doc = "DIMACS .gr graph file." in
  Arg.(value & opt (some file) None & info [ "gr" ] ~doc)

let co_arg =
  let doc = "DIMACS .co coordinate file." in
  Arg.(value & opt (some file) None & info [ "co" ] ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 2012 & info [ "seed" ] ~doc)

let scheme_arg =
  let doc = "Scheme: CI, PI, HY, PI*, LM or AF." in
  Arg.(value & opt string "CI" & info [ "scheme" ] ~doc)

let page_size_arg =
  let doc = "Disk page size in bytes." in
  Arg.(value & opt int 4096 & info [ "page-size" ] ~doc)

let fault_arg =
  let doc =
    "Arm a failpoint (repeatable).  SPEC is point=schedule with schedule one of \
     never, always, first:N, hits:N,N,..., p:F, flap:U,D — e.g. \
     --fault pir.fetch.transient=hits:2,5 or --fault pir.replica.down=flap:120,2.  \
     See DESIGN.md for the failpoint list."
  in
  Arg.(value & opt_all string [] & info [ "fault" ] ~doc ~docv:"SPEC")

let replicas_arg =
  let doc =
    "Serve through N replicas with authenticated pages and oblivious whole-plan \
     failover (N >= 1; 1 keeps the standalone path)."
  in
  Arg.(value & opt int 1 & info [ "replicas" ] ~doc)

let fault_seed_arg =
  let doc = "Seed for probabilistic (p:F) fault schedules." in
  Arg.(value & opt int 2012 & info [ "fault-seed" ] ~doc)

let metrics_arg =
  let doc = "Print the telemetry registry (lib/obs) after the command finishes." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let report_metrics metrics =
  if metrics then Format.printf "@.telemetry:@.%a" Obs.pp ()

let arm_faults specs seed =
  Psp_fault.Fault.reset ();
  List.iter
    (fun spec ->
      match Psp_fault.Fault.arm_spec ~seed spec with
      | Ok () -> ()
      | Error e -> failwith (Printf.sprintf "bad --fault %S: %s" spec e))
    specs

let report_status (r : Psp_core.Client.result) =
  match r.Psp_core.Client.status with
  | Psp_core.Client.Served -> ()
  | Psp_core.Client.Degraded { retries } ->
      Printf.printf "  degraded: recovered from faults with %d retries (%.2fs backoff)\n"
        retries r.Psp_core.Client.stats.Psp_pir.Server.Session.recovery_seconds
  | Psp_core.Client.Unavailable { point; attempts } ->
      Printf.printf "  UNAVAILABLE: gave up after %d attempts at failpoint %s\n" attempts
        point
  | Psp_core.Client.Unknown_scheme { scheme } ->
      Printf.printf "  UNKNOWN SCHEME: header announces %S; update this client\n" scheme

(* Degraded-or-better exits 0 (the answer is correct even when recovery
   cost was paid); Unavailable/Unknown exit 3 so fault-matrix CI jobs
   can assert availability. *)
let status_exit (r : Psp_core.Client.result) =
  match r.Psp_core.Client.status with
  | Psp_core.Client.Served | Psp_core.Client.Degraded _ -> 0
  | Psp_core.Client.Unavailable _ | Psp_core.Client.Unknown_scheme _ -> 3

let report_failovers (rep : Psp_core.Client.replicated) =
  if rep.Psp_core.Client.failovers > 0 then begin
    Printf.printf "  failovers: %d (served by replica %d, +%.2fs modeled switch cost)\n"
      rep.Psp_core.Client.failovers rep.Psp_core.Client.replica
      rep.Psp_core.Client.failover_seconds;
    List.iter
      (fun (a : Psp_core.Client.abandoned) ->
        Printf.printf "    abandoned replica %d: %s\n" a.Psp_core.Client.on_replica
          a.Psp_core.Client.reason)
      rep.Psp_core.Client.abandoned
  end

let load_network preset preset_scale gr co seed =
  match (preset, gr, co) with
  | Some name, None, None -> (
      match Psp_netgen.Presets.of_string name with
      | Some p -> Psp_netgen.Presets.graph ~scale:preset_scale ~seed p
      | None -> failwith (Printf.sprintf "unknown preset %S" name))
  | None, Some gr, Some co -> Psp_netgen.Dimacs.parse_files ~gr_path:gr ~co_path:co
  | None, None, None ->
      (* a handy default: a small city-sized network *)
      Psp_netgen.Synthetic.generate
        { Psp_netgen.Synthetic.nodes = 2000;
          edges = 2260;
          width = 4000.0;
          height = 4000.0;
          seed }
  | _ -> failwith "pass either --preset or both --gr and --co"

let build_database g scheme page_size seed =
  let calibration_queries = Psp_netgen.Synthetic.random_queries g ~count:200 ~seed in
  match String.uppercase_ascii scheme with
  | "CI" -> DB.build_ci ~page_size g
  | "PI" -> DB.build_pi ~page_size g
  | "HY" ->
      let p = DB.prepare ~page_size g in
      let threshold = max 1 (DB.prepared_max_cardinality p / 3) in
      DB.build_hy ~prepared:p ~threshold ~page_size g
  | "PI*" | "PISTAR" -> DB.build_pi_star ~cluster:2 ~page_size g
  | "LM" ->
      let db, _ = DB.build_lm ~anchors:5 ~seed ~page_size g in
      Psp_core.Calibrate.lm db ~queries:calibration_queries
  | "AF" ->
      let db, _ = DB.build_af ~target_regions:16 ~page_size g in
      Psp_core.Calibrate.af db ~queries:calibration_queries
  | s -> failwith (Printf.sprintf "unknown scheme %S" s)

(* ------------------------------------------------------------------ *)
(* generate *)

let generate_cmd =
  let out =
    Arg.(value & opt string "network" & info [ "o"; "output" ] ~doc:"Output basename.")
  in
  let nodes = Arg.(value & opt int 2000 & info [ "nodes" ] ~doc:"Node count.") in
  let edges = Arg.(value & opt (some int) None & info [ "edges" ] ~doc:"Street count.") in
  let run preset preset_scale seed out nodes edges =
    let g =
      match preset with
      | Some _ -> load_network preset preset_scale None None seed
      | None ->
          Psp_netgen.Synthetic.generate
            { Psp_netgen.Synthetic.nodes;
              edges = Option.value ~default:(nodes + (nodes / 8)) edges;
              width = 2.0 *. sqrt (float_of_int nodes *. 1000.0);
              height = 2.0 *. sqrt (float_of_int nodes *. 1000.0);
              seed }
    in
    let gr_path = out ^ ".gr" and co_path = out ^ ".co" in
    Psp_netgen.Dimacs.write_files g ~comment:"generated by pspc" ~gr_path ~co_path;
    Printf.printf "wrote %s (%d nodes) and %s (%d directed edges)\n" gr_path
      (G.node_count g) co_path (G.edge_count g)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesize a road network to DIMACS files")
    Term.(const run $ preset_arg $ preset_scale $ seed_arg $ out $ nodes $ edges)

(* ------------------------------------------------------------------ *)
(* build *)

let build_cmd =
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~doc:"Persist the built database bundle to this directory.")
  in
  let run preset preset_scale gr co seed scheme page_size save =
    let g = load_network preset preset_scale gr co seed in
    let started = Unix.gettimeofday () in
    let db = build_database g scheme page_size seed in
    let elapsed = Unix.gettimeofday () -. started in
    Printf.printf "built %s database in %.1fs\n" db.DB.scheme elapsed;
    Printf.printf "  network: %d nodes, %d directed edges\n" (G.node_count g)
      (G.edge_count g);
    Printf.printf "  regions: %d (%d border nodes)\n"
      db.DB.header.Psp_index.Header.region_count db.DB.stats.DB.borders_total;
    List.iter
      (fun f ->
        Printf.printf "  file %-9s %6d pages  %8.2f MB  %5.1f%% utilized\n" (PF.name f)
          (PF.page_count f)
          (float_of_int (PF.size_bytes f) /. 1e6)
          (100.0 *. PF.utilization f))
      (DB.files db);
    Printf.printf "  query plan: %s (%d private page fetches per query)\n"
      (Format.asprintf "%a" Psp_index.Query_plan.pp db.DB.header.Psp_index.Header.plan)
      (Psp_index.Query_plan.total_pir_fetches db.DB.header.Psp_index.Header.plan);
    match save with
    | None -> ()
    | Some dir ->
        Psp_index.Bundle.save (Psp_index.Bundle.of_database db) ~dir;
        Printf.printf "  bundle saved to %s/\n" dir
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build a scheme database and report its layout")
    Term.(
      const run $ preset_arg $ preset_scale $ gr_arg $ co_arg $ seed_arg $ scheme_arg
      $ page_size_arg $ save_arg)

(* ------------------------------------------------------------------ *)
(* query *)

let query_cmd =
  let s_arg = Arg.(value & opt (some int) None & info [ "s" ] ~doc:"Source node id.") in
  let t_arg = Arg.(value & opt (some int) None & info [ "t" ] ~doc:"Destination node id.") in
  let oblivious =
    Arg.(value & flag & info [ "oblivious" ] ~doc:"Serve through the real ORAM.")
  in
  let run preset preset_scale gr co seed scheme page_size s t oblivious replicas faults
      fault_seed metrics =
    if replicas < 1 then failwith "--replicas must be >= 1";
    let g = load_network preset preset_scale gr co seed in
    let db = build_database g scheme page_size seed in
    let mode = if oblivious then `Oblivious else `Simulated in
    let cost = Psp_pir.Cost_model.ibm4764 in
    let key = Psp_crypto.Sha256.digest_string "pspc" in
    let serve =
      if replicas = 1 then begin
        let server = Psp_pir.Server.create ~mode ~cost ~key (DB.files db) in
        fun s t ->
          let r = Psp_core.Client.query_nodes server g s t in
          (r, Psp_core.Response_time.of_result r, None)
      end
      else begin
        let rset =
          Psp_pir.Replica_set.create ~mode ~cost ~key ~replicas (DB.files db)
        in
        fun s t ->
          let rep = Psp_core.Client.query_nodes_replicated rset g s t in
          ( rep.Psp_core.Client.results.(0),
            (Psp_core.Response_time.of_replicated rep).(0),
            Some rep )
      end
    in
    arm_faults faults fault_seed;
    Obs.reset ();
    let rng = Psp_util.Rng.create seed in
    let s = Option.value ~default:(Psp_util.Rng.int rng (G.node_count g)) s in
    let t = Option.value ~default:(Psp_util.Rng.int rng (G.node_count g)) t in
    let r, rt, rep = serve s t in
    Psp_fault.Fault.reset ();
    (match r.Psp_core.Client.path with
    | None -> Printf.printf "no path from %d to %d\n" s t
    | Some (nodes, cost) ->
        Printf.printf "%s: path %d -> %d, cost %.2f, %d hops\n" db.DB.scheme s t cost
          (List.length nodes - 1);
        let truth = Psp_graph.Dijkstra.distance g s t in
        Printf.printf "  oracle cost %.2f (%s)\n" truth
          (if Float.abs (cost -. truth) <= 1e-3 *. Float.max 1.0 truth then "match"
           else "MISMATCH"));
    report_status r;
    Option.iter report_failovers rep;
    Format.printf "  simulated response: %a@." Psp_core.Response_time.pp rt;
    report_metrics metrics;
    exit (status_exit r)
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run one private shortest-path query end to end")
    Term.(
      const run $ preset_arg $ preset_scale $ gr_arg $ co_arg $ seed_arg $ scheme_arg
      $ page_size_arg $ s_arg $ t_arg $ oblivious $ replicas_arg $ fault_arg
      $ fault_seed_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* batch *)

let batch_cmd =
  let width =
    Arg.(value & opt int 4 & info [ "width" ] ~doc:"Queries per merged batch.")
  in
  let count =
    Arg.(value & opt int 8 & info [ "queries" ] ~doc:"Total queries to serve.")
  in
  let oblivious =
    Arg.(value & flag & info [ "oblivious" ] ~doc:"Serve through the real ORAM.")
  in
  let run preset preset_scale gr co seed scheme page_size width count oblivious faults
      fault_seed metrics =
    if width <= 0 then failwith "--width must be positive";
    let g = load_network preset preset_scale gr co seed in
    let db = build_database g scheme page_size seed in
    let mode = if oblivious then `Oblivious else `Simulated in
    let server =
      Psp_pir.Server.create ~mode ~cost:Psp_pir.Cost_model.ibm4764
        ~key:(Psp_crypto.Sha256.digest_string "pspc") (DB.files db)
    in
    arm_faults faults fault_seed;
    Obs.reset ();
    let queries = Psp_netgen.Synthetic.random_queries g ~count ~seed:(seed + 1) in
    let results = ref [] in
    let chunk_start = ref 0 in
    while !chunk_start < count do
      let w = min width (count - !chunk_start) in
      let chunk = Array.sub queries !chunk_start w in
      (* replay the same fault schedule for every batch, as `pspc trace`
         does per query *)
      Psp_fault.Fault.rewind ();
      let rs = Psp_core.Client.query_nodes_batch server g chunk in
      Array.iteri
        (fun i r -> results := ((fst chunk.(i), snd chunk.(i)), r) :: !results)
        rs;
      chunk_start := !chunk_start + w
    done;
    Psp_fault.Fault.reset ();
    let results = List.rev !results in
    let correct = ref 0 and answered = ref 0 in
    let total_response = ref 0.0 in
    List.iter
      (fun ((s, t), (r : Psp_core.Client.result)) ->
        (match r.Psp_core.Client.path with
        | Some (_, cost) ->
            incr answered;
            let truth = Psp_graph.Dijkstra.distance g s t in
            if Float.abs (cost -. truth) <= 1e-3 *. Float.max 1.0 truth then
              incr correct
        | None -> ());
        report_status r;
        total_response :=
          !total_response
          +. Psp_core.Response_time.total (Psp_core.Response_time.of_result r))
      results;
    let traces =
      List.map
        (fun (_, (r : Psp_core.Client.result)) ->
          r.Psp_core.Client.stats.Psp_pir.Server.Session.trace)
        results
    in
    (match Psp_core.Privacy.indistinguishable traces with
    | Ok () ->
        Printf.printf
          "all %d member traces identical: batched queries are indistinguishable\n"
          count
    | Error e -> Printf.printf "PRIVACY VIOLATION: %s\n" e);
    Printf.printf
      "%s: served %d queries in batches of %d: %d answered, %d correct\n"
      db.DB.scheme count width !answered !correct;
    Printf.printf "  amortized simulated response: %.3fs per query\n"
      (!total_response /. float_of_int (max 1 count));
    report_metrics metrics
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Serve many private queries as merged same-plan batches")
    Term.(
      const run $ preset_arg $ preset_scale $ gr_arg $ co_arg $ seed_arg $ scheme_arg
      $ page_size_arg $ width $ count $ oblivious $ fault_arg $ fault_seed_arg
      $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* serve *)

let serve_cmd =
  let tenants_arg =
    Arg.(value & opt string "ci,pi"
         & info [ "tenants" ] ~docv:"SCHEMES"
             ~doc:"Comma-separated scheme list served side by side (e.g. \
                   $(b,ci,pi)).  Each scheme becomes one tenant database over \
                   the same network.")
  in
  let count =
    Arg.(value & opt int 12 & info [ "queries" ] ~doc:"Queries per tenant.")
  in
  let arrivals_arg =
    Arg.(value & opt string "bursts:300x4"
         & info [ "arrivals" ] ~docv:"SPEC"
             ~doc:"Arrival process per tenant: $(b,steady:RATE), \
                   $(b,poisson:RATE) or $(b,bursts:PERIODxMEAN).")
  in
  let slo_arg =
    Arg.(value & opt float 60.0 & info [ "slo" ] ~doc:"Latency SLO in model seconds.")
  in
  let min_width_arg =
    Arg.(value & opt int 1 & info [ "min-width" ] ~doc:"Smallest batch width.")
  in
  let max_width_arg =
    Arg.(value & opt int 16 & info [ "max-width" ] ~doc:"Largest batch width.")
  in
  let policy_arg =
    Arg.(value & opt string "adaptive"
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"$(b,adaptive) or $(b,fixed:W) (fill-or-timeout at width W).")
  in
  let pipeline_arg =
    Arg.(value & opt int 0
         & info [ "pipeline" ] ~docv:"DEPTH"
             ~doc:"Execute batches through the effects-based pipeline with up \
                   to $(docv) batches in flight (fetch overlaps earlier \
                   batches' decode).  Uses the fixed width of \
                   $(b,--policy fixed:W), or $(b,--max-width) under the \
                   adaptive policy.  0 (default) disables pipelining; 1 is \
                   the synchronous schedule.")
  in
  let percentile sorted q =
    let n = Array.length sorted in
    if n = 0 then nan
    else
      let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
      sorted.(max 0 (min (n - 1) (rank - 1)))
  in
  let run preset preset_scale gr co seed page_size tenants count arrivals slo min_width
      max_width policy pipeline faults fault_seed metrics =
    let policy =
      match String.lowercase_ascii policy with
      | "adaptive" -> Psp_serve.Scheduler.Adaptive
      | p -> (
          match String.index_opt p ':' with
          | Some i when String.sub p 0 i = "fixed" -> (
              match
                int_of_string_opt (String.sub p (i + 1) (String.length p - i - 1))
              with
              | Some w when w >= 1 -> Psp_serve.Scheduler.Fixed w
              | _ -> failwith (Printf.sprintf "bad --policy %S: fixed:W needs W >= 1" p))
          | _ -> failwith (Printf.sprintf "unknown --policy %S" p))
    in
    let policy =
      if pipeline < 0 then failwith "--pipeline needs DEPTH >= 0"
      else if pipeline = 0 then policy
      else
        let width =
          match policy with
          | Psp_serve.Scheduler.Fixed w -> w
          | Psp_serve.Scheduler.Adaptive | Psp_serve.Scheduler.Pipelined _ ->
              max_width
        in
        Psp_serve.Scheduler.Pipelined { width; depth = pipeline }
    in
    let process =
      match Psp_netgen.Workload.arrival_of_string arrivals with
      | Ok p -> p
      | Error e -> failwith (Printf.sprintf "bad --arrivals %S: %s" arrivals e)
    in
    let schemes =
      List.filter (fun s -> s <> "") (String.split_on_char ',' tenants)
    in
    if schemes = [] then failwith "--tenants needs at least one scheme";
    let g = load_network preset preset_scale gr co seed in
    let cost = Psp_pir.Cost_model.ibm4764 in
    let key = Psp_crypto.Sha256.digest_string "pspc" in
    let seen = Hashtbl.create 4 in
    let tenant_of idx scheme =
      let base = String.lowercase_ascii scheme in
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt seen base) in
      Hashtbl.replace seen base n;
      let name = if n = 1 then base else Printf.sprintf "%s-%d" base n in
      let db = build_database g scheme page_size seed in
      let server = Psp_pir.Server.create ~cost ~key (DB.files db) in
      let pairs = Psp_netgen.Synthetic.random_queries g ~count ~seed:(seed + 1 + idx) in
      let arrivals =
        Psp_netgen.Workload.arrivals process ~count ~seed:(seed + 13 + idx)
      in
      ( { Psp_serve.Scheduler.name; server; graph = g },
        (name, pairs, arrivals),
        db.DB.scheme )
    in
    let built = List.mapi tenant_of schemes in
    let cfg = { Psp_serve.Scheduler.min_width; max_width; slo; policy } in
    arm_faults faults fault_seed;
    Obs.reset ();
    let jobs = Psp_serve.Scheduler.mix (List.map (fun (_, s, _) -> s) built) in
    let report =
      Psp_serve.Scheduler.run cfg
        ~tenants:(List.map (fun (t, _, _) -> t) built)
        ~jobs
    in
    Psp_fault.Fault.reset ();
    Printf.printf "served %d queries across %d tenants (%s policy, slo %.1fs)\n"
      (Array.length report.Psp_serve.Scheduler.served)
      (List.length built)
      (match policy with
      | Psp_serve.Scheduler.Adaptive -> "adaptive"
      | Psp_serve.Scheduler.Fixed w -> Printf.sprintf "fixed:%d" w
      | Psp_serve.Scheduler.Pipelined { width; depth } ->
          Printf.sprintf "pipelined:%dx%d" width depth)
      slo;
    let unavailable = ref 0 in
    List.iter
      (fun (tn, _, scheme) ->
        let name = tn.Psp_serve.Scheduler.name in
        let mine =
          Array.of_list
            (List.filter
               (fun (s : Psp_serve.Scheduler.served) ->
                 s.Psp_serve.Scheduler.job.Psp_serve.Queue.tenant = name)
               (Array.to_list report.Psp_serve.Scheduler.served))
        in
        Array.iter
          (fun (s : Psp_serve.Scheduler.served) ->
            match s.Psp_serve.Scheduler.result.Psp_core.Client.status with
            | Psp_core.Client.Unavailable _ | Psp_core.Client.Unknown_scheme _ ->
                incr unavailable
            | _ -> ())
          mine;
        let batches =
          List.filter
            (fun (b : Psp_serve.Scheduler.batch_record) ->
              b.Psp_serve.Scheduler.b_tenant = name)
            report.Psp_serve.Scheduler.batches
        in
        let widths =
          List.map (fun (b : Psp_serve.Scheduler.batch_record) ->
              b.Psp_serve.Scheduler.b_width)
            batches
        in
        let lat =
          Array.map (fun (s : Psp_serve.Scheduler.served) ->
              s.Psp_serve.Scheduler.latency)
            mine
        in
        Array.sort compare lat;
        let over =
          Array.fold_left (fun acc l -> if l > slo then acc + 1 else acc) 0 lat
        in
        Printf.printf
          "  %-6s (%s): %d queries in %d batches, widths %d-%d (mean %.1f)\n" name
          scheme (Array.length mine) (List.length batches)
          (List.fold_left min max_int widths)
          (List.fold_left max 0 widths)
          (float_of_int (List.fold_left ( + ) 0 widths)
          /. float_of_int (max 1 (List.length widths)));
        Printf.printf
          "         latency p50 %.2fs  p95 %.2fs  p99 %.2fs  (%d over slo)\n"
          (percentile lat 0.50) (percentile lat 0.95) (percentile lat 0.99) over)
      built;
    (* the privacy invariant, checked on the live run: members of every
       dispatched batch must be mutually indistinguishable *)
    let by_batch = Hashtbl.create 16 in
    Array.iter
      (fun (s : Psp_serve.Scheduler.served) ->
        let k =
          ( s.Psp_serve.Scheduler.job.Psp_serve.Queue.tenant,
            s.Psp_serve.Scheduler.dispatched )
        in
        Hashtbl.replace by_batch k
          (s.Psp_serve.Scheduler.result.Psp_core.Client.stats
             .Psp_pir.Server.Session.trace
          :: Option.value ~default:[] (Hashtbl.find_opt by_batch k)))
      report.Psp_serve.Scheduler.served;
    let violations =
      Hashtbl.fold
        (fun _ traces acc ->
          match Psp_core.Privacy.indistinguishable traces with
          | Ok () -> acc
          | Error e -> e :: acc)
        by_batch []
    in
    (match violations with
    | [] ->
        Printf.printf
          "all batch members mutually indistinguishable (%d batches, makespan %.1fs)\n"
          (List.length report.Psp_serve.Scheduler.batches)
          report.Psp_serve.Scheduler.makespan
    | e :: _ -> Printf.printf "PRIVACY VIOLATION: %s\n" e);
    report_metrics metrics;
    if !unavailable > 0 then begin
      Printf.printf "%d queries UNAVAILABLE\n" !unavailable;
      exit 3
    end;
    if violations <> [] then exit 4
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a mixed multi-tenant query stream through the adaptive scheduler")
    Term.(
      const run $ preset_arg $ preset_scale $ gr_arg $ co_arg $ seed_arg
      $ page_size_arg $ tenants_arg $ count $ arrivals_arg $ slo_arg $ min_width_arg
      $ max_width_arg $ policy_arg $ pipeline_arg $ fault_arg $ fault_seed_arg
      $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* trace *)

let trace_cmd =
  let count = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Queries to trace.") in
  let run preset preset_scale gr co seed scheme page_size count faults fault_seed metrics =
    let g = load_network preset preset_scale gr co seed in
    let db = build_database g scheme page_size seed in
    let server =
      Psp_pir.Server.create ~cost:Psp_pir.Cost_model.ibm4764
        ~key:(Psp_crypto.Sha256.digest_string "pspc") (DB.files db)
    in
    arm_faults faults fault_seed;
    Obs.reset ();
    let queries = Psp_netgen.Synthetic.random_queries g ~count ~seed:(seed + 1) in
    let results =
      Array.to_list
        (Array.map
           (fun (s, t) ->
             (* replay the same fault schedule for every query: the
                indistinguishability check below must hold even while
                faults force retries *)
             Psp_fault.Fault.rewind ();
             Psp_core.Client.query_nodes server g s t)
           queries)
    in
    Psp_fault.Fault.reset ();
    let traces =
      List.map
        (fun (r : Psp_core.Client.result) ->
          r.Psp_core.Client.stats.Psp_pir.Server.Session.trace)
        results
    in
    Format.printf "adversary view of every query (scheme %s):@.%a@." db.DB.scheme
      Psp_pir.Trace.pp (List.hd traces);
    (match Psp_core.Privacy.indistinguishable traces with
    | Ok () -> Printf.printf "all %d traces identical: queries are indistinguishable\n" count
    | Error e -> Printf.printf "PRIVACY VIOLATION: %s\n" e);
    let retries =
      List.fold_left
        (fun acc (r : Psp_core.Client.result) ->
          acc + r.Psp_core.Client.stats.Psp_pir.Server.Session.retries)
        0 results
    in
    if retries > 0 then
      Printf.printf "recovered from injected faults with %d retries total\n" retries;
    let header_pages = PF.page_count db.DB.header_file in
    (match Psp_core.Privacy.conforms db.DB.header ~header_pages (List.hd traces) with
    | Ok () -> Printf.printf "trace conforms to the published query plan\n"
    | Error e ->
        if faults = [] then Printf.printf "PLAN VIOLATION: %s\n" e
        else
          Printf.printf
            "trace deviates from the fault-free plan (expected under injection): %s\n" e);
    report_metrics metrics
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Show the adversary's view and check indistinguishability")
    Term.(
      const run $ preset_arg $ preset_scale $ gr_arg $ co_arg $ seed_arg $ scheme_arg
      $ page_size_arg $ count $ fault_arg $ fault_seed_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* stats *)

let stats_cmd =
  let count =
    Arg.(value & opt int 10 & info [ "queries" ] ~doc:"Queries to run before reporting.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the full snapshot as JSON.")
  in
  let shape =
    Arg.(value & flag
         & info [ "shape" ]
             ~doc:"Print only the constant-shape digest (identical for every \
                   same-plan query; see docs/OBSERVABILITY.md).")
  in
  let run preset preset_scale gr co seed scheme page_size count json shape_only =
    let g = load_network preset preset_scale gr co seed in
    let db = build_database g scheme page_size seed in
    let server =
      Psp_pir.Server.create ~cost:Psp_pir.Cost_model.ibm4764
        ~key:(Psp_crypto.Sha256.digest_string "pspc") (DB.files db)
    in
    Obs.reset ();
    let queries = Psp_netgen.Synthetic.random_queries g ~count ~seed:(seed + 1) in
    Array.iter (fun (s, t) -> ignore (Psp_core.Client.query_nodes server g s t)) queries;
    if shape_only then print_endline (Obs.shape ())
    else if json then print_endline (Psp_obs.Json.to_string_pretty (Obs.to_json ()))
    else begin
      Printf.printf "telemetry after %d %s queries:\n" count db.DB.scheme;
      Format.printf "%a" Obs.pp ()
    end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run sample queries and report the oblivious telemetry registry")
    Term.(
      const run $ preset_arg $ preset_scale $ gr_arg $ co_arg $ seed_arg $ scheme_arg
      $ page_size_arg $ count $ json $ shape)

(* ------------------------------------------------------------------ *)
(* inspect *)

let inspect_cmd =
  let run preset preset_scale gr co seed =
    let g = load_network preset preset_scale gr co seed in
    let x0, y0, x1, y1 = G.bounding_box g in
    Printf.printf "nodes: %d\ndirected edges: %d\n" (G.node_count g) (G.edge_count g);
    Printf.printf "bounding box: (%.1f, %.1f) - (%.1f, %.1f)\n" x0 y0 x1 y1;
    let degrees = Array.init (G.node_count g) (G.out_degree g) in
    let total = Array.fold_left ( + ) 0 degrees in
    Printf.printf "mean out-degree: %.2f\n"
      (float_of_int total /. float_of_int (G.node_count g));
    let spt = Psp_graph.Dijkstra.tree g ~source:0 in
    let reachable =
      Array.fold_left
        (fun acc d -> if d < infinity then acc + 1 else acc)
        0 spt.Psp_graph.Dijkstra.dist
    in
    Printf.printf "reachable from node 0: %d (%s)\n" reachable
      (if reachable = G.node_count g then "connected" else "NOT connected")
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Summarize a network's structure")
    Term.(const run $ preset_arg $ preset_scale $ gr_arg $ co_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* lint *)

let lint_cmd =
  let paths =
    Arg.(value & pos_all string []
         & info [] ~docv:"PATH"
             ~doc:"$(b,.cmt) files or directories searched recursively. Defaults to \
                   the audited libraries under _build/default/lib.")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"Print only the summary line.") in
  let audit =
    Arg.(value & flag
         & info [ "audit" ] ~doc:"List every $(b,[@@oblivious]) function audited.")
  in
  let root =
    Arg.(value & opt (some string) None
         & info [ "root" ] ~docv:"DIR"
             ~doc:"Whole-program mode: index every $(b,.cmt) under DIR-relative \
                   PATHs into one call graph and report cross-module flows with \
                   full call chains.")
  in
  let sarif =
    Arg.(value & opt (some string) None
         & info [ "sarif" ] ~docv:"FILE" ~doc:"Write a SARIF 2.1.0 report to FILE.")
  in
  let baseline =
    Arg.(value & opt (some string) None
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"Suppress findings accepted in FILE; report baseline drift.")
  in
  let write_baseline =
    Arg.(value & opt (some string) None
         & info [ "write-baseline" ] ~docv:"FILE"
             ~doc:"Regenerate FILE from the current findings and exit 0.")
  in
  let run paths quiet audit root sarif baseline write_baseline =
    let paths =
      if paths <> [] || root <> None then paths
      else
        List.filter_map
          (fun lib ->
            let dir = Printf.sprintf "_build/default/lib/%s" lib in
            if Sys.file_exists dir then Some dir else None)
          [ "core"; "pir"; "index" ]
    in
    exit
      (Psp_lint.Lint.main ?root ?sarif ?baseline ?write_baseline ~paths ~quiet ~audit
         ())
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically check the oblivious core for secret-dependent behaviour")
    Term.(const run $ paths $ quiet $ audit $ root $ sarif $ baseline $ write_baseline)

(* ------------------------------------------------------------------ *)
(* render *)

let render_cmd =
  let out =
    Arg.(value & opt string "network.svg" & info [ "o"; "output" ] ~doc:"SVG output path.")
  in
  let s_arg = Arg.(value & opt (some int) None & info [ "s" ] ~doc:"Source node id.") in
  let t_arg = Arg.(value & opt (some int) None & info [ "t" ] ~doc:"Destination node id.") in
  let run preset preset_scale gr co seed scheme page_size out s t =
    let g = load_network preset preset_scale gr co seed in
    let db = build_database g scheme page_size seed in
    let rng = Psp_util.Rng.create (seed + 7) in
    let s = Option.value ~default:(Psp_util.Rng.int rng (G.node_count g)) s in
    let t = Option.value ~default:(Psp_util.Rng.int rng (G.node_count g)) t in
    let server =
      Psp_pir.Server.create ~cost:Psp_pir.Cost_model.ibm4764
        ~key:(Psp_crypto.Sha256.digest_string "pspc") (DB.files db)
    in
    let r = Psp_core.Client.query_nodes server g s t in
    let path =
      match r.Psp_core.Client.path with Some (nodes, _) -> nodes | None -> []
    in
    let part = db.DB.partition in
    let highlight_regions =
      (* the regions this query's footprint covers *)
      List.sort_uniq compare
        (List.map (fun v -> Psp_partition.Kdtree.region_of_node part v) path)
    in
    let options =
      { Psp_partition.Render.default_options with
        Psp_partition.Render.highlight_regions;
        path }
    in
    Psp_partition.Render.save ~path:out
      (Psp_partition.Render.svg ~options g (Some part));
    Printf.printf "rendered %s: %s query %d -> %d over %d regions\n" out db.DB.scheme s
      t
      (List.length highlight_regions)
  in
  Cmd.v
    (Cmd.info "render" ~doc:"Render the network, partition and a query to SVG")
    Term.(
      const run $ preset_arg $ preset_scale $ gr_arg $ co_arg $ seed_arg $ scheme_arg
      $ page_size_arg $ out $ s_arg $ t_arg)

let () =
  let doc = "Private shortest paths with no information leakage (VLDB 2012)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "pspc" ~doc)
          [ generate_cmd;
            build_cmd;
            query_cmd;
            batch_cmd;
            serve_cmd;
            trace_cmd;
            stats_cmd;
            inspect_cmd;
            render_cmd;
            lint_cmd ]))
