(* psplint — static obliviousness & leakage linter for the PIR hot path.

   Usage: psplint [--quiet] [--audit] PATH...

   PATHs are .cmt files or directories searched recursively (dune emits
   .cmt next to the objects, e.g. _build/default/lib/core/.psp_core.objs/byte).
   Exit status: 0 clean, 1 findings, 2 bad input. *)

let () =
  let quiet = ref false and audit = ref false and paths = ref [] in
  let spec =
    [ ("--quiet", Arg.Set quiet, " Print only the summary line");
      ("--audit", Arg.Set audit, " List every [@@oblivious] function audited") ]
  in
  let usage = "psplint [--quiet] [--audit] PATH..." in
  Arg.parse (Arg.align spec) (fun p -> paths := p :: !paths) usage;
  exit (Psp_lint.Lint.main ~paths:(List.rev !paths) ~quiet:!quiet ~audit:!audit)
