(* psplint — static obliviousness & leakage linter for the PIR hot path.

   Usage: psplint [--quiet] [--audit] [--root DIR] [--sarif FILE]
                  [--baseline FILE] [--write-baseline FILE] PATH...

   Without --root, PATHs are .cmt files or directories analyzed
   per-module (dune emits .cmt next to the objects, e.g.
   _build/default/lib/core/.psp_core.objs/byte).  With --root DIR the
   whole-program mode runs: every .cmt under DIR-relative PATHs is
   indexed into one call graph, interprocedural summaries are iterated
   to a fixpoint, and cross-module flows are reported with full call
   chains; modules reachable from the oblivious surface but never
   loaded are flagged (unanalyzed-module).

   Exit status: 0 clean, 1 findings, 2 bad input. *)

let () =
  let quiet = ref false and audit = ref false and paths = ref [] in
  let root = ref "" in
  let sarif = ref "" in
  let baseline = ref "" in
  let write_baseline = ref "" in
  let spec =
    [ ("--quiet", Arg.Set quiet, " Print only the summary line");
      ("--audit", Arg.Set audit, " List every [@@oblivious] function audited");
      ( "--root",
        Arg.Set_string root,
        "DIR Whole-program mode: analyze the union of PATHs relative to DIR" );
      ("--sarif", Arg.Set_string sarif, "FILE Write a SARIF 2.1.0 report to FILE");
      ( "--baseline",
        Arg.Set_string baseline,
        "FILE Suppress findings accepted in FILE; report drift" );
      ( "--write-baseline",
        Arg.Set_string write_baseline,
        "FILE Regenerate FILE from the current findings and exit 0" ) ]
  in
  let usage =
    "psplint [--quiet] [--audit] [--root DIR] [--sarif FILE] [--baseline FILE] \
     [--write-baseline FILE] PATH..."
  in
  Arg.parse (Arg.align spec) (fun p -> paths := p :: !paths) usage;
  let opt r = if !r = "" then None else Some !r in
  exit
    (Psp_lint.Lint.main ?root:(opt root) ?sarif:(opt sarif) ?baseline:(opt baseline)
       ?write_baseline:(opt write_baseline) ~paths:(List.rev !paths) ~quiet:!quiet
       ~audit:!audit ())
