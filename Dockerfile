# Development / CI container for psp.
#
# Bakes in the full toolchain plus the pinned ocamlformat so every gate
# that GitHub CI runs — build, tests, whole-program lint, formatting —
# also runs locally in the container (ROADMAP: "ocamlformat
# in-container").  The ocamlformat pin must match the `format` job in
# .github/workflows/ci.yml and lib/core/schemes/.ocamlformat.

FROM ocaml/opam:debian-12-ocaml-5.2

RUN sudo apt-get update \
    && sudo apt-get install -y --no-install-recommends python3 \
    && sudo rm -rf /var/lib/apt/lists/*

# Library deps first (stable layer), then the pinned formatter.
RUN opam install --yes dune alcotest qcheck-core qcheck-alcotest \
    bechamel ppx_deriving fmt logs cmdliner odoc \
    && opam install --yes ocamlformat.0.26.2

WORKDIR /home/opam/psp
COPY --chown=opam:opam . .

# Everything CI gates on, runnable as one smoke command:
#   docker build -t psp . && docker run --rm psp
CMD ["opam", "exec", "--", "sh", "-c", "\
  dune build @all && dune runtest && dune build @lint && \
  dune build psplint.sarif && python3 .github/sarif-schema.py _build/default/psplint.sarif && \
  ocamlformat --check lib/core/schemes/*.ml lib/core/schemes/*.mli"]
