(* One function per table/figure of the paper's evaluation (§7).
   Every function prints the same rows/series the paper reports;
   EXPERIMENTS.md records the paper-vs-measured comparison. *)

module G = Psp_graph.Graph
module DB = Psp_index.Database
module PF = Psp_storage.Page_file
module CM = Psp_pir.Cost_model
module QP = Psp_index.Query_plan
module P = Psp_netgen.Presets
open Psp_core
open Harness

let small_networks = [ P.Oldenburg; P.Germany; P.Argentina ]
let large_networks = [ P.Denmark; P.India; P.North_america ]

(* ------------------------------------------------------------------ *)

let table1 env =
  header_line "Table 1: Road networks";
  let rows =
    List.map
      (fun p ->
        let g = graph env p in
        [ P.full_name p;
          string_of_int (P.paper_nodes p);
          string_of_int (P.paper_edges p);
          string_of_int (G.node_count g);
          string_of_int (G.edge_count g / 2) ])
      (Array.to_list P.all)
  in
  table
    ~columns:
      [ "Network"; "paper nodes"; "paper edges"; Printf.sprintf "nodes (/%.0f)" env.scale;
        Printf.sprintf "streets (/%.0f)" env.scale ]
    rows

let table2 env =
  header_line "Table 2: System specifications (cost model)";
  let c = CM.ibm4764 in
  table ~columns:[ "parameter"; "value" ]
    [ [ "disk page size"; Printf.sprintf "%d B" c.CM.page_size ];
      [ "disk seek time"; Printf.sprintf "%.0f ms" (c.CM.disk_seek *. 1e3) ];
      [ "disk read/write rate"; Printf.sprintf "%.0f MB/s" (c.CM.disk_rate /. 1e6) ];
      [ "SCP read/write rate"; Printf.sprintf "%.0f MB/s" (c.CM.scp_io_rate /. 1e6) ];
      [ "SCP encryption rate"; Printf.sprintf "%.0f MB/s" (c.CM.scp_crypto_rate /. 1e6) ];
      [ "communication bandwidth"; Printf.sprintf "%.0f KB/s" (c.CM.bandwidth /. 1e3) ];
      [ "communication RTT"; Printf.sprintf "%.0f ms" (c.CM.rtt *. 1e3) ];
      [ "SCP memory"; Printf.sprintf "%d MB" (c.CM.scp_memory / 1024 / 1024) ];
      [ "derived: one secure page op"; Printf.sprintf "%.2f ms" (CM.page_op_seconds c *. 1e3) ];
      [ "derived: PIR fetch, 1 GB file";
        Printf.sprintf "%.2f s" (CM.pir_fetch_seconds c ~file_pages:(1_000_000_000 / 4096)) ];
      [ "derived: max file (c*sqrt N)";
        Printf.sprintf "%.2f GB" (float_of_int (CM.max_file_bytes c) /. 1e9) ];
      [ "scaled max file (this run)"; Printf.sprintf "%.1f MB" (mb env.full_limit) ] ]

(* ------------------------------------------------------------------ *)

let figure5 env =
  header_line "Figure 5: LM fine-tuning (Argentina)";
  let preset = P.Argentina in
  let rows =
    List.map
      (fun anchors ->
        let db = build_lm env preset ~anchors in
        let t = quick_response env preset db in
        [ string_of_int anchors; seconds t; megabytes (DB.total_bytes db) ])
      lm_sweep
  in
  table ~columns:[ "landmarks"; "response time (s)"; "space (MB)" ] rows

let scheme_row env preset name db =
  let m = run env preset db in
  [ name;
    seconds (Response_time.total m.time);
    seconds m.time.Response_time.pir_seconds;
    seconds m.time.Response_time.comm_seconds;
    Printf.sprintf "%.3f" m.time.Response_time.client_seconds;
    Printf.sprintf "%d of %d" m.data_fetches m.data_pages;
    Printf.sprintf "%d of %d" m.index_fetches m.index_pages;
    megabytes m.space_bytes;
    Printf.sprintf "%d/%d" m.correct m.total ]

let columns_t3 =
  [ "method"; "response (s)"; "PIR (s)"; "comm (s)"; "client (s)"; "Fd pages";
    "Fi pages"; "space (MB)"; "correct" ]

let table3 env =
  header_line "Table 3: Components of response time (Argentina)";
  let preset = P.Argentina in
  let p = prepared env preset in
  let g = graph env preset in
  let rows =
    [ scheme_row env preset "AF" (tuned_af env preset);
      scheme_row env preset "LM" (tuned_lm env preset);
      scheme_row env preset "CI" (DB.build_ci ~prepared:p ~page_size:env.page_size g);
      scheme_row env preset "PI" (DB.build_pi ~prepared:p ~page_size:env.page_size g) ]
  in
  table ~columns:columns_t3 rows

let figure6 env =
  header_line "Figure 6: OBF vs obfuscation set size (Argentina)";
  let preset = P.Argentina in
  let g = graph env preset in
  let p = prepared env preset in
  let ci = quick_response env preset (DB.build_ci ~prepared:p ~page_size:env.page_size g) in
  let pi = quick_response env preset (DB.build_pi ~prepared:p ~page_size:env.page_size g) in
  let obf = Obf.create ~cost:env.cost ~seed:env.seed g in
  let sample = Array.sub (workload env preset) 0 (min 20 env.queries) in
  let rows =
    List.map
      (fun set_size ->
        let times =
          Array.to_list
            (Array.map
               (fun (s, t) -> fst (Obf.query obf ~set_size ~s ~t_node:t))
               sample)
        in
        [ string_of_int set_size;
          seconds (Response_time.total (Response_time.mean times)) ])
      [ 20; 30; 40; 50; 60; 70; 80; 90; 100 ]
  in
  table ~columns:[ "|S| = |T|"; "OBF response (s)" ] rows;
  Printf.printf "reference lines: CI = %.2f s, PI = %.2f s\n" ci pi

let figure7 env =
  header_line "Figure 7: AF / LM / CI / PI across road networks";
  List.iter
    (fun preset ->
      subheader (P.short_name preset);
      let p = prepared env preset in
      let g = graph env preset in
      table ~columns:columns_t3
        [ scheme_row env preset "AF" (tuned_af env preset);
          scheme_row env preset "LM" (tuned_lm env preset);
          scheme_row env preset "CI" (DB.build_ci ~prepared:p ~page_size:env.page_size g);
          scheme_row env preset "PI" (DB.build_pi ~prepared:p ~page_size:env.page_size g) ])
    small_networks

let figure8 env =
  header_line "Figure 8: Effect of packed partitioning (CI/PI vs CI-P/PI-P)";
  List.iter
    (fun preset ->
      subheader (P.short_name preset);
      let g = graph env preset in
      let p = prepared env preset in
      let variants =
        [ ("CI", DB.build_ci ~prepared:p ~page_size:env.page_size g);
          ("CI-P", DB.build_ci ~packed:false ~page_size:env.page_size g);
          ("PI", DB.build_pi ~prepared:p ~page_size:env.page_size g);
          ("PI-P", DB.build_pi ~packed:false ~page_size:env.page_size g) ]
      in
      let rows =
        List.map
          (fun (name, db) ->
            let util = 100.0 *. PF.utilization db.DB.data in
            let t = quick_response env preset db in
            [ name; Printf.sprintf "%.1f%%" util; seconds t; megabytes (DB.total_bytes db) ])
          variants
      in
      table ~columns:[ "method"; "Fd utilization"; "response (s)"; "space (MB)" ] rows)
    small_networks

let figure9 env =
  header_line "Figure 9: Effect of index compression (CI/PI vs CI-C/PI-C)";
  List.iter
    (fun preset ->
      subheader (P.short_name preset);
      let g = graph env preset in
      let p = prepared env preset in
      let variants =
        [ ("CI", lazy (DB.build_ci ~prepared:p ~page_size:env.page_size g));
          ("CI-C", lazy (DB.build_ci ~prepared:p ~compress:false ~page_size:env.page_size g));
          ("PI", lazy (DB.build_pi ~prepared:p ~page_size:env.page_size g));
          ("PI-C", lazy (DB.build_pi ~prepared:p ~compress:false ~page_size:env.page_size g)) ]
      in
      let rows =
        List.map
          (fun (name, db) ->
            let db = Lazy.force db in
            if feasible env db then
              [ name; seconds (quick_response env preset db); megabytes (DB.total_bytes db) ]
            else [ name; "Nil"; megabytes (DB.total_bytes db) ])
          variants
      in
      table ~columns:[ "method"; "response (s)"; "space (MB)" ] rows)
    small_networks

let figure10 env =
  header_line "Figure 10: HY on Denmark";
  let preset = P.Denmark in
  let g = graph env preset in
  let p = prepared env preset in
  subheader "(a) distribution of |S_ij| in CI";
  let histogram = DB.prepared_histogram p in
  let m = Array.length histogram - 1 in
  let buckets = 10 in
  let width = max 1 ((m / buckets) + 1) in
  let rows = ref [] in
  for b = 0 to buckets - 1 do
    let lo = b * width and hi = min m ((b + 1) * width - 1) in
    if lo <= m then begin
      let count = ref 0 in
      for c = lo to hi do
        if c < Array.length histogram then count := !count + histogram.(c)
      done;
      rows := [ Printf.sprintf "%d-%d" lo hi; string_of_int !count ] :: !rows
    end
  done;
  table ~columns:[ "|S_ij|"; "pairs" ] (List.rev !rows);
  Printf.printf "max |S_ij| (m) = %d\n" m;
  subheader "(b,c) HY vs cardinality threshold";
  let ci = DB.build_ci ~prepared:p ~page_size:env.page_size g in
  let thresholds =
    List.sort_uniq compare (List.init 10 (fun i -> max 1 (m * (i + 1) / 10)))
  in
  let rows =
    List.map
      (fun threshold ->
        let db = DB.build_hy ~prepared:p ~threshold ~page_size:env.page_size g in
        let time = if feasible env db then seconds (quick_response env preset db) else "Nil" in
        [ string_of_int threshold; time; megabytes (DB.total_bytes db) ])
      thresholds
  in
  table ~columns:[ "threshold on |S_ij|"; "response (s)"; "space (MB)" ] rows;
  Printf.printf "reference: CI = %.2f s, %.2f MB; DB size limit = %.1f MB\n"
    (quick_response env preset ci)
    (mb (DB.total_bytes ci))
    (mb env.full_limit)

let figure11 env =
  header_line "Figure 11: PI* vs cluster size (Denmark)";
  let preset = P.Denmark in
  let g = graph env preset in
  let p = prepared env preset in
  let ci = DB.build_ci ~prepared:p ~page_size:env.page_size g in
  let rows =
    List.map
      (fun cluster ->
        let db = DB.build_pi_star ~cluster ~page_size:env.page_size g in
        let time = if feasible env db then seconds (quick_response env preset db) else "Nil" in
        [ string_of_int cluster; time; megabytes (DB.total_bytes db) ])
      [ 2; 4; 6; 8; 10; 12; 14; 16; 18; 20 ]
  in
  table ~columns:[ "cluster pages"; "response (s)"; "space (MB)" ] rows;
  Printf.printf "reference: CI = %.2f s, %.2f MB; DB size limit = %.1f MB\n"
    (quick_response env preset ci)
    (mb (DB.total_bytes ci))
    (mb env.full_limit)

let figure12 env =
  header_line "Figure 12: CI / HY / PI* on larger networks";
  List.iter
    (fun preset ->
      subheader (P.short_name preset);
      let g = graph env preset in
      let p = prepared env preset in
      let entries =
        [ ("CI", DB.build_ci ~prepared:p ~page_size:env.page_size g);
          ("HY", tuned_hy env preset);
          ("PI*", tuned_pi_star env preset) ]
      in
      let rows =
        List.map
          (fun (name, db) ->
            let m = run env preset db in
            [ name;
              seconds (Response_time.total m.time);
              megabytes m.space_bytes;
              Printf.sprintf "%d/%d" m.correct m.total ])
          entries
      in
      table ~columns:[ "method"; "response (s)"; "space (MB)"; "correct" ] rows)
    large_networks

(* ------------------------------------------------------------------ *)
(* Extra ablations beyond the paper *)

let extras env =
  header_line "Extras: page-size sensitivity of CI (Argentina)";
  let preset = P.Argentina in
  let g = graph env preset in
  let rows =
    List.map
      (fun page_size ->
        let db = DB.build_ci ~page_size g in
        let cost = CM.with_max_file { env.cost with CM.page_size } ~bytes:env.full_limit in
        let env' = { env with page_size; cost } in
        [ string_of_int page_size;
          seconds (quick_response env' preset db);
          megabytes (DB.total_bytes db);
          string_of_int db.DB.header.Psp_index.Header.region_count ])
      [ 1024; 2048; 4096; 8192 ]
  in
  table ~columns:[ "page size (B)"; "response (s)"; "space (MB)"; "regions" ] rows;
  header_line "Extras: PI vs a full-scan trivial PIR bound (Argentina)";
  (* trivial PIR streams the whole database per query: the information-
     theoretic baseline the amortized protocol is compared against *)
  let p = prepared env preset in
  let pi = DB.build_pi ~prepared:p ~page_size:env.page_size g in
  let db_bytes = DB.total_bytes pi in
  let scan_seconds =
    float_of_int db_bytes /. CM.ibm4764.CM.disk_rate
    +. (float_of_int db_bytes /. CM.ibm4764.CM.scp_crypto_rate)
  in
  Printf.printf "PI per-query PIR time: %.2f s; trivial scan of the %.1f MB DB: %.2f s\n"
    (quick_response env preset pi) (mb db_bytes) scan_seconds;
  Printf.printf "(at the paper's full 1.1 GB PI index, the scan alone would take ~2 min)\n";
  header_line "Extras: approximate schemes (future work, Argentina)";
  (* epsilon-quantized weights: smaller DBs, answers within (1+eps) *)
  let g = graph env preset in
  let queries = Array.sub (workload env preset) 0 (min 100 env.queries) in
  let rows =
    List.map
      (fun epsilon ->
        let db = DB.build_pi ~prepared:p ~epsilon ~page_size:env.page_size g in
        let server = Psp_pir.Server.create ~cost:env.cost ~key (DB.files db) in
        let worst = ref 0.0 in
        Array.iter
          (fun (s, t) ->
            let truth = Psp_graph.Dijkstra.distance g s t in
            match (Client.query_nodes server g s t).Client.path with
            | Some (_, got) when truth > 0.0 ->
                worst := Float.max !worst ((got -. truth) /. truth)
            | _ -> ())
          queries;
        [ Printf.sprintf "%.3f" epsilon;
          megabytes (DB.total_bytes db);
          Printf.sprintf "%.3f%%" (100.0 *. !worst);
          seconds (quick_response env preset db) ])
      [ 0.0; 0.01; 0.05; 0.1 ]
  in
  table
    ~columns:[ "epsilon"; "PI space (MB)"; "worst deviation"; "response (s)" ]
    rows;
  header_line "Extras: response time is workload-independent (CI, Argentina)";
  (* the fixed query plan makes every query cost the same, whatever the
     access pattern - the property obfuscation schemes lack *)
  let ci = DB.build_ci ~prepared:p ~page_size:env.page_size g in
  let server = Psp_pir.Server.create ~cost:env.cost ~key (DB.files ci) in
  let rows =
    List.map
      (fun dist ->
        let qs = Psp_netgen.Workload.generate g dist ~count:40 ~seed:env.seed in
        let times = ref [] and fingerprints = ref [] in
        Array.iter
          (fun (s, t) ->
            let r = Client.query_nodes server g s t in
            times := Response_time.of_result r :: !times;
            fingerprints :=
              Psp_pir.Trace.fingerprint r.Client.stats.Psp_pir.Server.Session.trace
              :: !fingerprints)
          qs;
        let mean = Response_time.mean !times in
        [ Psp_netgen.Workload.describe dist;
          seconds (Response_time.total mean);
          string_of_int (List.length (List.sort_uniq compare !fingerprints)) ])
      [ Psp_netgen.Workload.Uniform;
        Psp_netgen.Workload.Local { radius = 300.0 };
        Psp_netgen.Workload.Commute { hubs = 3 };
        Psp_netgen.Workload.Repeated { distinct = 2 } ]
  in
  table ~columns:[ "workload"; "mean response (s)"; "distinct server views" ] rows

(* ------------------------------------------------------------------ *)
(* Resilience: cost of oblivious retry/recovery under fault injection *)

let resilience env =
  header_line "Resilience: retry counts and recovery overhead under faults";
  let preset = P.Oldenburg in
  let g = graph env preset in
  let entries =
    [ ("CI", DB.build_ci ~page_size:env.page_size g);
      ("PI", DB.build_pi ~page_size:env.page_size g);
      ("HY", tuned_hy env preset);
      ("PI*", tuned_pi_star env preset) ]
  in
  (* every query replays this schedule (Harness.run rewinds it), so the
     injected faults are query-independent and traces stay equal *)
  let schedule = "pir.fetch.transient=hits:2,7 + pir.fetch.corrupt=hits:11" in
  Printf.printf "fault schedule: %s\n" schedule;
  let rows =
    List.map
      (fun (name, db) ->
        let baseline = run env preset db in
        Psp_fault.Fault.arm "pir.fetch.transient" (Psp_fault.Fault.Hits [ 2; 7 ]);
        Psp_fault.Fault.arm "pir.fetch.corrupt" (Psp_fault.Fault.Hits [ 11 ]);
        let faulted = run env preset db in
        Psp_fault.Fault.reset ();
        let base_t = Response_time.total baseline.time in
        let fault_t = Response_time.total faulted.time in
        [ name;
          Printf.sprintf "%d" faulted.retries;
          Printf.sprintf "%.2f" (float_of_int faulted.retries /. float_of_int faulted.total);
          seconds (faulted.recovery_seconds /. float_of_int faulted.total);
          Printf.sprintf "%+.1f%%" (100.0 *. (fault_t -. base_t) /. base_t);
          Printf.sprintf "%d/%d" faulted.correct faulted.total;
          string_of_int faulted.unavailable ])
      entries
  in
  table
    ~columns:
      [ "method"; "retries"; "retries/query"; "recovery (s/query)"; "overhead";
        "correct"; "unavailable" ]
    rows

(* ------------------------------------------------------------------ *)

(* Batched multi-query serving: N same-plan queries walk the plan in
   lockstep (Psp_pir.Batcher), so each round's page requests merge into
   one oblivious-store pass and the log²N pass cost amortizes across the
   batch (Table 2).  The servers run in `Pyramid mode, so the merged
   pass is {e executed} (Pyramid_store.fetch_many), not just simulated:
   the table reports the executed slot touches and level scans per
   query next to the simulated response, and the per-query touch count
   staying flat while scans/query fall ~1/width is the executed-side
   amortization the cost model charges for.  BENCH_batch.json captures
   the same series. *)
let batch env =
  header_line "Batched serving: amortized response vs batch width";
  let preset = P.Oldenburg in
  let g = graph env preset in
  let entries =
    [ ("CI", DB.build_ci ~page_size:env.page_size g); ("HY", tuned_hy env preset) ]
  in
  let widths = [ 1; 2; 4; 8; 16 ] in
  let queries = workload env preset in
  let rows =
    List.concat_map
      (fun (name, db) ->
        check_feasible env db;
        let serve w =
          let server =
            Psp_pir.Server.create ~mode:`Pyramid ~cost:env.cost ~key (DB.files db)
          in
          let times = ref [] and correct = ref 0 in
          let retries = ref 0 and recovery = ref 0.0 and unavailable = ref 0 in
          let i = ref 0 in
          while !i < Array.length queries do
            let chunk = Array.sub queries !i (min w (Array.length queries - !i)) in
            (* replay any armed fault schedule identically per batch *)
            if Psp_fault.Fault.active () then Psp_fault.Fault.rewind ();
            let rs = Client.query_nodes_batch server g chunk in
            Array.iteri
              (fun k (r : Client.result) ->
                let s, t = chunk.(k) in
                times := Response_time.of_result r :: !times;
                retries := !retries + r.Client.stats.Psp_pir.Server.Session.retries;
                recovery :=
                  !recovery +. r.Client.stats.Psp_pir.Server.Session.recovery_seconds;
                (match r.Client.status with
                | Client.Unavailable _ -> incr unavailable
                | _ -> ());
                let truth = Psp_graph.Dijkstra.distance g s t in
                match r.Client.path with
                | Some (_, got)
                  when Float.abs (got -. truth) <= 1e-3 *. Float.max 1.0 truth ->
                    incr correct
                | _ -> ())
              rs;
            i := !i + Array.length chunk
          done;
          let data_fetches, index_fetches = plan_fetches db in
          let samples = Array.of_list (List.rev_map Response_time.total !times) in
          let touches = Psp_pir.Server.executed_slot_touches server in
          let scans = Psp_pir.Server.executed_level_scans server in
          bench_runs :=
            { r_label =
                Printf.sprintf "%s-b%d:%s" name w
                  (Psp_netgen.Presets.short_name preset);
              r_samples = samples;
              r_fetches_per_query = data_fetches + index_fetches;
              r_retries = !retries;
              r_recovery_seconds = !recovery;
              r_unavailable = !unavailable;
              r_correct = !correct;
              r_total = Array.length queries;
              r_exec_touches = touches;
              r_level_scans = scans }
            :: !bench_runs;
          (samples, !correct, touches, scans)
        in
        let base = ref nan in
        List.map
          (fun w ->
            let samples, correct, touches, scans = serve w in
            let n = Array.length samples in
            let sum = Array.fold_left ( +. ) 0.0 samples in
            let mean = sum /. float_of_int n in
            if w = 1 then base := mean;
            let per q = float_of_int q /. float_of_int n in
            [ Printf.sprintf "%s b=%d" name w;
              seconds mean;
              Printf.sprintf "%.2fx" (!base /. mean);
              Printf.sprintf "%.0f" (3600.0 *. float_of_int n /. sum);
              Printf.sprintf "%.0f" (per touches);
              Printf.sprintf "%.1f" (per scans);
              Printf.sprintf "%d/%d" correct n ])
          widths)
      entries
  in
  table
    ~columns:
      [ "method"; "response (s/query)"; "speedup"; "throughput (q/h)";
        "exec touches/q"; "level scans/q"; "correct" ]
    rows

(* ------------------------------------------------------------------ *)

(* Replicated serving under chaos: availability and tail latency as the
   replica count and the per-exchange fault rate grow.  Each query runs
   through {!Client.query_nodes_replicated}: a tampered page or a dead
   replica abandons the whole plan and replays it elsewhere, so the
   sweep measures what the failover machinery buys operationally.
   Unlike the [resilience] experiment, the schedule is NOT rewound per
   query: availability is a property of accumulated faults over a
   workload (the per-query trace-equality proofs live in the test
   suite, which does rewind).  BENCH_replication.json captures every
   series. *)
let replication env =
  header_line "Replication: availability and p99 vs replicas x fault rate";
  let preset = P.Oldenburg in
  let g = graph env preset in
  let db = DB.build_ci ~page_size:env.page_size g in
  check_feasible env db;
  let queries = workload env preset in
  let replica_counts = [ 1; 2; 3 ] and rates = [ 0.0; 0.005; 0.02 ] in
  let serve replicas rate =
    let rset =
      Psp_pir.Replica_set.create ~cost:env.cost ~key ~replicas (DB.files db)
    in
    if rate > 0.0 then begin
      (* chaos mix, seeded so runs reproduce: outages arrive as bursts
         (a flapping host stays down for several exchanges — exactly
         the shape a lone replica cannot ride out but a wider set can),
         tampering and latency spikes as per-exchange coin flips *)
      Psp_fault.Fault.arm "pir.replica.down"
        (Psp_fault.Fault.Flapping
           { up = max 1 (int_of_float (1.0 /. rate)); down = 6 });
      Psp_fault.Fault.arm ~seed:11 "pir.fetch.tamper" (Psp_fault.Fault.Probability rate);
      Psp_fault.Fault.arm ~seed:13 "pir.replica.latency"
        (Psp_fault.Fault.Probability (rate /. 2.0))
    end;
    let times = ref [] and correct = ref 0 in
    let served = ref 0 and retries = ref 0 in
    let recovery = ref 0.0 and unavailable = ref 0 in
    Array.iter
      (fun (s, t) ->
        match Client.query_nodes_replicated rset g s t with
        | rep ->
            let r = rep.Client.results.(0) in
            let rt = (Response_time.of_replicated rep).(0) in
            times := rt :: !times;
            retries :=
              !retries + r.Client.stats.Psp_pir.Server.Session.retries
              + rep.Client.failovers;
            recovery :=
              !recovery
              +. r.Client.stats.Psp_pir.Server.Session.recovery_seconds
              +. rep.Client.failover_seconds;
            (match r.Client.status with
            | Client.Served | Client.Degraded _ -> incr served
            | _ -> incr unavailable);
            let truth = Psp_graph.Dijkstra.distance g s t in
            (match r.Client.path with
            | Some (_, got)
              when Float.abs (got -. truth) <= 1e-3 *. Float.max 1.0 truth ->
                incr correct
            | _ -> ())
        | exception Psp_pir.Replica_set.No_replica_available ->
            (* every breaker open: the query never ran.  Count the
               outage and let a timeout's worth of simulated time pass
               so cooldowns elapse and the set can heal. *)
            incr unavailable;
            Psp_pir.Replica_set.advance rset
              (Psp_pir.Cost_model.timeout_seconds env.cost))
      queries;
    Psp_fault.Fault.reset ();
    let data_fetches, index_fetches = plan_fetches db in
    let samples = Array.of_list (List.rev_map Response_time.total !times) in
    bench_runs :=
      { r_label =
          Printf.sprintf "%s-r%d-f%.3f:%s" db.DB.scheme replicas rate
            (Psp_netgen.Presets.short_name preset);
        r_samples = samples;
        r_fetches_per_query = data_fetches + index_fetches;
        r_retries = !retries;
        r_recovery_seconds = !recovery;
        r_unavailable = !unavailable;
        r_correct = !correct;
        r_total = Array.length queries;
        r_exec_touches = 0;
        r_level_scans = 0 }
      :: !bench_runs;
    (samples, !served, !correct, !retries)
  in
  let rows =
    List.concat_map
      (fun replicas ->
        List.map
          (fun rate ->
            let samples, served, correct, retries = serve replicas rate in
            let n = Array.length queries in
            let sorted = Array.copy samples in
            Array.sort compare sorted;
            let p99 =
              if Array.length sorted = 0 then nan
              else
                sorted.(max 0
                          (min (Array.length sorted - 1)
                             (int_of_float
                                (ceil (0.99 *. float_of_int (Array.length sorted)))
                             - 1)))
            in
            [ string_of_int replicas;
              Printf.sprintf "%.3f" rate;
              Printf.sprintf "%.1f%%" (100.0 *. float_of_int served /. float_of_int n);
              seconds p99;
              string_of_int retries;
              Printf.sprintf "%d/%d" correct n ])
          rates)
      replica_counts
  in
  table
    ~columns:
      [ "replicas"; "fault rate"; "availability"; "p99 (s)"; "recoveries"; "correct" ]
    rows

(* ------------------------------------------------------------------ *)

(* Multi-tenant serving: the scheduler-driven frontend (lib/serve) over
   a CI and a PI database side by side, driven by a bursty arrival
   process.  The adaptive policy is compared against fill-or-timeout
   batchers at fixed widths 1, 4 and 16 on the same stream; the p95
   column is the acceptance bar — adaptive must beat every fixed width,
   because width 1 serializes each burst, width 4 strands a burst's
   stragglers until the SLO timeout and width 16 rarely fills at all.
   Latency here is the virtual-clock end-to-end figure: queueing wait
   plus the whole batch's modeled service.  BENCH_serve.json captures
   one run per policy. *)
let serve env =
  header_line "Multi-tenant serving: adaptive vs fixed batch width";
  let preset = P.Oldenburg in
  let g = graph env preset in
  let tenant_dbs =
    [ ("ci", DB.build_ci ~page_size:env.page_size g);
      ("pi", DB.build_pi ~page_size:env.page_size g) ]
  in
  List.iter (fun (_, db) -> check_feasible env db) tenant_dbs;
  let count = max 16 (env.queries / 5) in
  let slo = 60.0 in
  let streams =
    List.mapi
      (fun idx (name, _) ->
        ( name,
          Psp_netgen.Synthetic.random_queries g ~count ~seed:(env.seed + 1 + idx),
          Psp_netgen.Workload.arrivals
            (Psp_netgen.Workload.Bursts { period = 400.0; mean_size = 6 })
            ~count ~seed:(env.seed + 13 + idx) ))
      tenant_dbs
  in
  let policies =
    [ ("adaptive", Psp_serve.Scheduler.Adaptive);
      ("fixed-1", Psp_serve.Scheduler.Fixed 1);
      ("fixed-4", Psp_serve.Scheduler.Fixed 4);
      ("fixed-16", Psp_serve.Scheduler.Fixed 16) ]
  in
  let run_policy (label, policy) =
    let cfg = { Psp_serve.Scheduler.min_width = 1; max_width = 16; slo; policy } in
    let tenants =
      List.map
        (fun (name, db) ->
          { Psp_serve.Scheduler.name;
            server =
              Psp_pir.Server.create ~mode:`Pyramid ~cost:env.cost ~key (DB.files db);
            graph = g })
        tenant_dbs
    in
    let jobs = Psp_serve.Scheduler.mix streams in
    let report = Psp_serve.Scheduler.run cfg ~tenants ~jobs in
    let served = report.Psp_serve.Scheduler.served in
    let correct = ref 0 and retries = ref 0 in
    let recovery = ref 0.0 and unavailable = ref 0 in
    Array.iter
      (fun (s : Psp_serve.Scheduler.served) ->
        let r = s.Psp_serve.Scheduler.result in
        retries := !retries + r.Client.stats.Psp_pir.Server.Session.retries;
        recovery :=
          !recovery +. r.Client.stats.Psp_pir.Server.Session.recovery_seconds;
        (match r.Client.status with
        | Client.Unavailable _ -> incr unavailable
        | _ -> ());
        let j = s.Psp_serve.Scheduler.job in
        let truth =
          Psp_graph.Dijkstra.distance g j.Psp_serve.Queue.src j.Psp_serve.Queue.dst
        in
        match r.Client.path with
        | Some (_, got) when Float.abs (got -. truth) <= 1e-3 *. Float.max 1.0 truth
          ->
            incr correct
        | _ -> ())
      served;
    let samples =
      Array.map (fun (s : Psp_serve.Scheduler.served) -> s.Psp_serve.Scheduler.latency)
        served
    in
    let touches, scans =
      List.fold_left
        (fun (t, s) tn ->
          ( t + Psp_pir.Server.executed_slot_touches tn.Psp_serve.Scheduler.server,
            s + Psp_pir.Server.executed_level_scans tn.Psp_serve.Scheduler.server ))
        (0, 0) tenants
    in
    let data_fetches, index_fetches = plan_fetches (snd (List.hd tenant_dbs)) in
    bench_runs :=
      { r_label =
          Printf.sprintf "serve-%s:%s" label (Psp_netgen.Presets.short_name preset);
        r_samples = samples;
        r_fetches_per_query = data_fetches + index_fetches;
        r_retries = !retries;
        r_recovery_seconds = !recovery;
        r_unavailable = !unavailable;
        r_correct = !correct;
        r_total = Array.length served;
        r_exec_touches = touches;
        r_level_scans = scans }
      :: !bench_runs;
    (report, samples, !correct)
  in
  let pct sorted q =
    let n = Array.length sorted in
    if n = 0 then nan
    else
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      sorted.(max 0 (min (n - 1) (rank - 1)))
  in
  let rows =
    List.map
      (fun (label, policy) ->
        let report, samples, correct = run_policy (label, policy) in
        let sorted = Array.copy samples in
        Array.sort compare sorted;
        let widths =
          List.map
            (fun (b : Psp_serve.Scheduler.batch_record) ->
              b.Psp_serve.Scheduler.b_width)
            report.Psp_serve.Scheduler.batches
        in
        let n = Array.length samples in
        [ label;
          seconds (pct sorted 0.50);
          seconds (pct sorted 0.95);
          seconds (pct sorted 0.99);
          Printf.sprintf "%.1f"
            (float_of_int (List.fold_left ( + ) 0 widths)
            /. float_of_int (max 1 (List.length widths)));
          string_of_int (List.length widths);
          Printf.sprintf "%.0f" report.Psp_serve.Scheduler.makespan;
          Printf.sprintf "%d/%d" correct n ])
      policies
  in
  table
    ~columns:
      [ "policy"; "p50 (s)"; "p95 (s)"; "p99 (s)"; "mean width"; "batches";
        "makespan (s)"; "correct" ]
    rows

(* ------------------------------------------------------------------ *)

(* Pipelined serving: the effects-based executor (lib/async) against
   the synchronous schedule on the same stream.  Every configuration is
   a Pipelined policy — depth 1 IS the synchronous schedule (one batch
   fully fetches and decodes before the next fetch starts), so the
   depth-1 row is the baseline and deeper rows show what overlapping a
   batch's PIR pass with earlier batches' client-side decode tails
   buys.  Batch composition is depth-independent by construction (the
   scheduler forms batches on a formation clock that ignores the
   depth), so the comparison is pure execution overlap: same batches,
   same traces, same fetch sequence — test/test_pipeline.ml asserts
   byte-equality; this experiment measures the wall-clock side.  The
   acceptance bar (pinned in the tests): at width >= 4, depth >= 2 must
   beat depth 1 on mean response.  BENCH_pipeline.json captures one run
   per configuration. *)
let pipeline env =
  header_line "Pipelined serving: decode/fetch overlap vs the synchronous schedule";
  let preset = P.Oldenburg in
  let g = graph env preset in
  let tenant_dbs =
    [ ("ci", DB.build_ci ~page_size:env.page_size g);
      ("pi", DB.build_pi ~page_size:env.page_size g) ]
  in
  List.iter (fun (_, db) -> check_feasible env db) tenant_dbs;
  let count = max 16 (env.queries / 5) in
  let slo = 60.0 in
  let streams =
    List.mapi
      (fun idx (name, _) ->
        ( name,
          Psp_netgen.Synthetic.random_queries g ~count ~seed:(env.seed + 1 + idx),
          Psp_netgen.Workload.arrivals
            (Psp_netgen.Workload.Bursts { period = 400.0; mean_size = 6 })
            ~count ~seed:(env.seed + 13 + idx) ))
      tenant_dbs
  in
  let configs =
    List.concat_map
      (fun width ->
        List.map (fun depth -> (width, depth)) [ 1; 2; 4 ])
      [ 4; 8 ]
  in
  let run_config (width, depth) =
    let cfg =
      { Psp_serve.Scheduler.min_width = 1;
        max_width = 16;
        slo;
        policy = Psp_serve.Scheduler.Pipelined { width; depth } }
    in
    let tenants =
      List.map
        (fun (name, db) ->
          { Psp_serve.Scheduler.name;
            server =
              Psp_pir.Server.create ~mode:`Pyramid ~cost:env.cost ~key (DB.files db);
            graph = g })
        tenant_dbs
    in
    let jobs = Psp_serve.Scheduler.mix streams in
    let report = Psp_serve.Scheduler.run cfg ~tenants ~jobs in
    let overlap_fraction = Psp_obs.Obs.get (Psp_obs.Obs.gauge "pipeline.overlap_fraction") in
    let served = report.Psp_serve.Scheduler.served in
    let correct = ref 0 and retries = ref 0 in
    let recovery = ref 0.0 and unavailable = ref 0 in
    Array.iter
      (fun (s : Psp_serve.Scheduler.served) ->
        let r = s.Psp_serve.Scheduler.result in
        retries := !retries + r.Client.stats.Psp_pir.Server.Session.retries;
        recovery :=
          !recovery +. r.Client.stats.Psp_pir.Server.Session.recovery_seconds;
        (match r.Client.status with
        | Client.Unavailable _ -> incr unavailable
        | _ -> ());
        let j = s.Psp_serve.Scheduler.job in
        let truth =
          Psp_graph.Dijkstra.distance g j.Psp_serve.Queue.src j.Psp_serve.Queue.dst
        in
        match r.Client.path with
        | Some (_, got) when Float.abs (got -. truth) <= 1e-3 *. Float.max 1.0 truth
          ->
            incr correct
        | _ -> ())
      served;
    let samples =
      Array.map (fun (s : Psp_serve.Scheduler.served) -> s.Psp_serve.Scheduler.latency)
        served
    in
    let touches, scans =
      List.fold_left
        (fun (t, s) tn ->
          ( t + Psp_pir.Server.executed_slot_touches tn.Psp_serve.Scheduler.server,
            s + Psp_pir.Server.executed_level_scans tn.Psp_serve.Scheduler.server ))
        (0, 0) tenants
    in
    let data_fetches, index_fetches = plan_fetches (snd (List.hd tenant_dbs)) in
    bench_runs :=
      { r_label =
          Printf.sprintf "pipeline-w%d-d%d:%s" width depth
            (Psp_netgen.Presets.short_name preset);
        r_samples = samples;
        r_fetches_per_query = data_fetches + index_fetches;
        r_retries = !retries;
        r_recovery_seconds = !recovery;
        r_unavailable = !unavailable;
        r_correct = !correct;
        r_total = Array.length served;
        r_exec_touches = touches;
        r_level_scans = scans }
      :: !bench_runs;
    (report, samples, !correct, overlap_fraction)
  in
  let pct sorted q =
    let n = Array.length sorted in
    if n = 0 then nan
    else
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      sorted.(max 0 (min (n - 1) (rank - 1)))
  in
  let mean a =
    if Array.length a = 0 then nan
    else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)
  in
  let baseline_mean = Hashtbl.create 4 in
  let rows =
    List.map
      (fun (width, depth) ->
        let report, samples, correct, overlap = run_config (width, depth) in
        let sorted = Array.copy samples in
        Array.sort compare sorted;
        let m = mean samples in
        if depth = 1 then Hashtbl.replace baseline_mean width m;
        let speedup =
          match Hashtbl.find_opt baseline_mean width with
          | Some b when m > 0.0 -> Printf.sprintf "%.2fx" (b /. m)
          | _ -> "-"
        in
        let n = Array.length samples in
        [ Printf.sprintf "w%d d%d" width depth;
          seconds (pct sorted 0.50);
          seconds (pct sorted 0.95);
          seconds m;
          speedup;
          Printf.sprintf "%.0f%%" (100.0 *. overlap);
          string_of_int (List.length report.Psp_serve.Scheduler.batches);
          Printf.sprintf "%.0f" report.Psp_serve.Scheduler.makespan;
          Printf.sprintf "%d/%d" correct n ])
      configs
  in
  table
    ~columns:
      [ "config"; "p50 (s)"; "p95 (s)"; "mean (s)"; "vs sync"; "overlap";
        "batches"; "makespan (s)"; "correct" ]
    rows
