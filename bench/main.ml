(* Experiment driver: regenerates every table and figure of the paper's
   evaluation (§7) plus extra ablations and Bechamel micro-benchmarks of
   the computational kernels.

     dune exec bench/main.exe                       # everything
     dune exec bench/main.exe -- --experiment t3    # one artifact
     dune exec bench/main.exe -- --scale 4 --queries 500
*)

let all_experiments : (string * string * (Harness.env -> unit)) list =
  [ ("t1", "Table 1: road networks", Experiments.table1);
    ("t2", "Table 2: system specifications", Experiments.table2);
    ("f5", "Figure 5: LM fine-tuning", Experiments.figure5);
    ("t3", "Table 3: response-time components", Experiments.table3);
    ("f6", "Figure 6: OBF vs set size", Experiments.figure6);
    ("f7", "Figure 7: schemes across networks", Experiments.figure7);
    ("f8", "Figure 8: packed partitioning", Experiments.figure8);
    ("f9", "Figure 9: index compression", Experiments.figure9);
    ("f10", "Figure 10: HY on Denmark", Experiments.figure10);
    ("f11", "Figure 11: PI* cluster size", Experiments.figure11);
    ("f12", "Figure 12: larger networks", Experiments.figure12);
    ("extras", "extra ablations", Experiments.extras);
    ("resilience", "resilience: retry cost under fault injection", Experiments.resilience);
    ("batch", "batched serving: response vs batch width", Experiments.batch);
    ("serve", "multi-tenant serving: adaptive vs fixed batch width", Experiments.serve);
    ("pipeline", "pipelined serving: decode/fetch overlap vs synchronous", Experiments.pipeline);
    ("replication", "replicated serving: availability under chaos", Experiments.replication);
    ("kernels", "bechamel kernel micro-benchmarks", fun env -> Kernels.run env) ]

let run_experiments env selected =
  let wanted =
    match selected with
    | [] -> all_experiments
    | ids ->
        List.filter_map
          (fun id ->
            match List.find_opt (fun (i, _, _) -> i = id) all_experiments with
            | Some e -> Some e
            | None ->
                Printf.eprintf "unknown experiment %S (known: %s)\n" id
                  (String.concat ", " (List.map (fun (i, _, _) -> i) all_experiments));
                exit 2)
          ids
  in
  Printf.printf
    "psp experiment harness | scale 1/%.0f | %d queries/workload | page %d B | file cap %.1f MB\n"
    env.Harness.scale env.Harness.queries env.Harness.page_size
    (Harness.mb env.Harness.full_limit);
  let started = Unix.gettimeofday () in
  List.iter
    (fun (id, _, f) ->
      let t0 = Unix.gettimeofday () in
      (* fresh telemetry per experiment, so each BENCH_<id>.json snapshot
         covers exactly that experiment's queries *)
      Psp_obs.Obs.reset ();
      Harness.reset_runs ();
      f env;
      let artifact = Harness.write_bench env ~experiment:id in
      Printf.printf "[%s done in %.1fs, wrote %s]\n%!" id
        (Unix.gettimeofday () -. t0)
        artifact)
    wanted;
  Printf.printf "\nall done in %.1fs\n" (Unix.gettimeofday () -. started)

open Cmdliner

let scale =
  let doc = "Divide the paper's network sizes (and the PIR file cap) by this factor." in
  Arg.(value & opt float 8.0 & info [ "scale" ] ~doc)

let queries =
  let doc = "Queries per workload (the paper uses 1000)." in
  Arg.(value & opt int 200 & info [ "queries" ] ~doc)

let seed =
  let doc = "Workload / generator seed." in
  Arg.(value & opt int 2012 & info [ "seed" ] ~doc)

let experiments =
  let doc = "Run only the listed experiment ids (t1 t2 f5 t3 f6..f12 extras kernels)." in
  Arg.(value & opt_all string [] & info [ "experiment"; "e" ] ~doc)

let csv =
  let doc = "Also append every table's rows to this CSV file (for plotting)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~doc)

let cmd =
  let run scale queries seed selected csv =
    Option.iter Harness.set_csv csv;
    Fun.protect ~finally:Harness.close_csv (fun () ->
        run_experiments (Harness.make_env ~scale ~queries ~seed ()) selected)
  in
  Cmd.v
    (Cmd.info "psp-bench" ~doc:"Reproduce the paper's tables and figures")
    Term.(const run $ scale $ queries $ seed $ experiments $ csv)

let () = exit (Cmd.eval cmd)
