(* Shared infrastructure for the experiment harness: the scaled
   environment, graph/database caches, workload execution and table
   rendering.

   Scaling: the paper's pre-computation ran offline for its six full
   networks.  We divide node/edge counts by [scale] (default 8) and
   divide the PIR interface's 2.5 GByte file cap by the same factor, so
   every relative comparison — who wins, where a scheme becomes
   infeasible, how packing/compression move the curves — reproduces at
   a size where the whole suite builds in minutes.  Run with
   [--scale 1] for the full published sizes (hours of pre-computation). *)

module G = Psp_graph.Graph
module DB = Psp_index.Database
module PF = Psp_storage.Page_file
module CM = Psp_pir.Cost_model
module QP = Psp_index.Query_plan
open Psp_core

type env = {
  scale : float;
  queries : int;
  seed : int;
  page_size : int;
  cost : CM.t;           (** cost model with the scaled file cap *)
  full_limit : int;      (** the scaled "2.5 GByte" in bytes *)
}

let make_env ?(scale = 8.0) ?(queries = 200) ?(seed = 2012) () =
  let base = CM.ibm4764 in
  let full_limit = int_of_float (2.5e9 /. scale) in
  { scale;
    queries;
    seed;
    page_size = base.CM.page_size;
    cost = CM.with_max_file base ~bytes:full_limit;
    full_limit }

let key = Psp_crypto.Sha256.digest_string "psp-bench"

(* ------------------------------------------------------------------ *)
(* Caches: graphs, workloads and prepared pre-computations are shared
   across experiments. *)

let graph_cache : (Psp_netgen.Presets.name, G.t) Hashtbl.t = Hashtbl.create 8

let graph env preset =
  match Hashtbl.find_opt graph_cache preset with
  | Some g -> g
  | None ->
      let g = Psp_netgen.Presets.graph ~scale:env.scale preset in
      Hashtbl.replace graph_cache preset g;
      g

let workload_cache : (Psp_netgen.Presets.name, (int * int) array) Hashtbl.t =
  Hashtbl.create 8

let workload env preset =
  match Hashtbl.find_opt workload_cache preset with
  | Some w -> w
  | None ->
      let w =
        Psp_netgen.Synthetic.random_queries (graph env preset) ~count:env.queries
          ~seed:env.seed
      in
      Hashtbl.replace workload_cache preset w;
      w

let prepared_cache : (Psp_netgen.Presets.name, DB.prepared) Hashtbl.t = Hashtbl.create 8

let prepared env preset =
  match Hashtbl.find_opt prepared_cache preset with
  | Some p -> p
  | None ->
      let p = DB.prepare ~page_size:env.page_size (graph env preset) in
      Hashtbl.replace prepared_cache preset p;
      p

(* ------------------------------------------------------------------ *)
(* Workload execution *)

type measurement = {
  time : Response_time.t;         (** mean per-query response breakdown *)
  space_bytes : int;              (** whole database *)
  data_fetches : int;             (** plan: private pages from the data file *)
  index_fetches : int;            (** plan: private pages from the index file *)
  data_pages : int;
  index_pages : int;
  correct : int;                  (** queries matching the Dijkstra oracle *)
  total : int;
  retries : int;                  (** recovery attempts across the workload *)
  recovery_seconds : float;       (** total simulated backoff spent recovering *)
  unavailable : int;              (** queries that exhausted the retry budget *)
}

exception Infeasible of string
(** A file exceeds what the (scaled) PIR interface supports. *)

(* ------------------------------------------------------------------ *)
(* Bench-run registry: every [run] call records its per-query latency
   samples here, and the driver dumps them (plus the lib/obs snapshot)
   to BENCH_<experiment>.json after each experiment. *)

type run_record = {
  r_label : string;               (** "<scheme>:<network>" *)
  r_samples : float array;        (** per-query simulated response, seconds *)
  r_fetches_per_query : int;      (** plan: private page fetches per query *)
  r_retries : int;
  r_recovery_seconds : float;
  r_unavailable : int;
  r_correct : int;
  r_total : int;
  r_exec_touches : int;           (** executed oblivious-store slot touches *)
  r_level_scans : int;            (** executed merged level scans / sweeps *)
}

let bench_runs : run_record list ref = ref []
let reset_runs () = bench_runs := []

let feasible env db =
  List.for_all (fun f -> PF.size_bytes f <= env.full_limit) (DB.files db)

let check_feasible env db =
  List.iter
    (fun f ->
      if PF.size_bytes f > env.full_limit then
        raise
          (Infeasible
             (Printf.sprintf "file %s is %.1f MB > %.1f MB cap" (PF.name f)
                (float_of_int (PF.size_bytes f) /. 1e6)
                (float_of_int env.full_limit /. 1e6))))
    (DB.files db)

let plan_fetches db =
  let fetches = QP.pir_fetches db.DB.header.Psp_index.Header.plan in
  let get name = Option.value ~default:0 (List.assoc_opt name fetches) in
  match db.DB.scheme with
  | "HY" -> (get "combined", 0)
  | _ -> (get "data", get "index")

(* Run the workload against a database and aggregate the paper's
   metrics.  Correctness is checked against the Dijkstra oracle on the
   true graph on every query. *)
let run env preset db =
  check_feasible env db;
  let g = graph env preset in
  let server = Psp_pir.Server.create ~cost:env.cost ~key (DB.files db) in
  let queries = workload env preset in
  let times = ref [] in
  let correct = ref 0 in
  let retries = ref 0 and recovery = ref 0.0 and unavailable = ref 0 in
  Array.iter
    (fun (s, t) ->
      (* replay any armed fault schedule identically for every query, so
         workloads under injection stay trace-indistinguishable *)
      if Psp_fault.Fault.active () then Psp_fault.Fault.rewind ();
      let r = Client.query_nodes server g s t in
      times := Response_time.of_result r :: !times;
      retries := !retries + r.Client.stats.Psp_pir.Server.Session.retries;
      recovery := !recovery +. r.Client.stats.Psp_pir.Server.Session.recovery_seconds;
      (match r.Client.status with Client.Unavailable _ -> incr unavailable | _ -> ());
      let truth = Psp_graph.Dijkstra.distance g s t in
      match r.Client.path with
      | Some (_, got) when Float.abs (got -. truth) <= 1e-3 *. Float.max 1.0 truth ->
          incr correct
      | _ -> ())
    queries;
  let data_fetches, index_fetches = plan_fetches db in
  bench_runs :=
    { r_label =
        Printf.sprintf "%s:%s" db.DB.scheme (Psp_netgen.Presets.short_name preset);
      r_samples = Array.of_list (List.rev_map Response_time.total !times);
      r_fetches_per_query = data_fetches + index_fetches;
      r_retries = !retries;
      r_recovery_seconds = !recovery;
      r_unavailable = !unavailable;
      r_correct = !correct;
      r_total = Array.length queries;
      (* `Simulated servers execute no store passes; the batch
         experiment's `Pyramid runs fill these in. *)
      r_exec_touches = Psp_pir.Server.executed_slot_touches server;
      r_level_scans = Psp_pir.Server.executed_level_scans server }
    :: !bench_runs;
  { time = Response_time.mean !times;
    space_bytes = DB.total_bytes db;
    data_fetches;
    index_fetches;
    data_pages = PF.page_count db.DB.data;
    index_pages = (match db.DB.index with Some f -> PF.page_count f | None -> 0);
    correct = !correct;
    total = Array.length queries;
    retries = !retries;
    recovery_seconds = !recovery;
    unavailable = !unavailable }

(* ------------------------------------------------------------------ *)
(* Baseline tuning (§7.2): pick the parameter giving the best response
   time, like the paper does per network. *)

let build_lm env preset ~anchors =
  let g = graph env preset in
  let db, _ = DB.build_lm ~anchors ~seed:env.seed ~page_size:env.page_size g in
  Calibrate.lm db ~queries:(workload env preset)

let build_af env preset ~target_regions =
  let g = graph env preset in
  let db, _ = DB.build_af ~target_regions ~page_size:env.page_size g in
  Calibrate.af db ~queries:(workload env preset)

let lm_sweep = [ 1; 2; 3; 5; 8; 10; 15; 20 ]
let af_sweep = [ 4; 6; 8; 12; 16; 24 ]

let tuned_cache : (string * Psp_netgen.Presets.name, DB.t) Hashtbl.t = Hashtbl.create 8

(* Response time is plan-determined (every query is padded to the same
   page budget), so tuning sweeps measure a single query. *)
let quick_response env preset db =
  check_feasible env db;
  let g = graph env preset in
  let server = Psp_pir.Server.create ~cost:env.cost ~key (DB.files db) in
  let s, t = (workload env preset).(0) in
  Response_time.total (Response_time.of_result (Client.query_nodes server g s t))

let tuned_lm env preset =
  match Hashtbl.find_opt tuned_cache ("LM", preset) with
  | Some db -> db
  | None ->
      let best =
        List.fold_left
          (fun best anchors ->
            let db = build_lm env preset ~anchors in
            let t = quick_response env preset db in
            match best with
            | Some (_, bt) when bt <= t -> best
            | _ -> Some (db, t))
          None lm_sweep
      in
      let db = fst (Option.get best) in
      Hashtbl.replace tuned_cache ("LM", preset) db;
      db

let tuned_af env preset =
  match Hashtbl.find_opt tuned_cache ("AF", preset) with
  | Some db -> db
  | None ->
      let best =
        List.fold_left
          (fun best target_regions ->
            let db = build_af env preset ~target_regions in
            let t = quick_response env preset db in
            match best with
            | Some (_, bt) when bt <= t -> best
            | _ -> Some (db, t))
          None af_sweep
      in
      let db = fst (Option.get best) in
      Hashtbl.replace tuned_cache ("AF", preset) db;
      db

(* HY and PI* tuning (§7.5): smallest parameter whose index file stays
   within the (scaled) PIR size cap. *)

let tuned_hy env preset =
  match Hashtbl.find_opt tuned_cache ("HY", preset) with
  | Some db -> db
  | None ->
      let p = prepared env preset in
      let m = DB.prepared_max_cardinality p in
      let g = graph env preset in
      let candidates =
        List.sort_uniq compare [ max 1 (m / 10); max 1 (m / 4); max 1 (m / 2); m ]
      in
      (* best response time among the thresholds whose files fit *)
      let best =
        List.fold_left
          (fun best threshold ->
            let db = DB.build_hy ~prepared:p ~threshold ~page_size:env.page_size g in
            if not (feasible env db) then best
            else begin
              let t = quick_response env preset db in
              match best with
              | Some (_, bt) when bt <= t -> best
              | _ -> Some (db, t)
            end)
          None candidates
      in
      let db =
        match best with
        | Some (db, _) -> db
        | None -> DB.build_hy ~prepared:p ~threshold:m ~page_size:env.page_size g
      in
      Hashtbl.replace tuned_cache ("HY", preset) db;
      db

let tuned_pi_star env preset =
  match Hashtbl.find_opt tuned_cache ("PI*", preset) with
  | Some db -> db
  | None ->
      let g = graph env preset in
      let rec first cluster =
        if cluster > 20 then
          raise (Infeasible "PI*: no cluster size within the file cap")
        else begin
          let db = DB.build_pi_star ~cluster ~page_size:env.page_size g in
          if feasible env db then db else first (cluster + 1)
        end
      in
      (* smallest feasible cluster; response rises monotonically with it *)
      let db = first 2 in
      Hashtbl.replace tuned_cache ("PI*", preset) db;
      db

(* ------------------------------------------------------------------ *)
(* Rendering *)

let mb bytes = float_of_int bytes /. 1e6

(* Optional CSV sink: every printed table is also appended there as
   "<section>,<subsection>,<col>=<cell>,..." rows for plotting. *)
let csv_channel : out_channel option ref = ref None
let csv_section = ref ""
let csv_subsection = ref ""

let set_csv path =
  csv_channel := Some (open_out path)

let close_csv () =
  match !csv_channel with
  | Some oc ->
      close_out_noerr oc;
      csv_channel := None
  | None -> ()

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let header_line title =
  csv_section := title;
  csv_subsection := "";
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subheader title =
  csv_subsection := title;
  Printf.printf "\n-- %s --\n" title

let print_row fmt = Printf.printf fmt

let table ~columns rows =
  (match !csv_channel with
  | Some oc ->
      List.iter
        (fun row ->
          output_string oc
            (String.concat ","
               (csv_escape !csv_section :: csv_escape !csv_subsection
               :: List.map csv_escape row));
          output_char oc '\n')
        rows;
      flush oc
  | None -> ());
  let widths =
    List.mapi
      (fun i c -> List.fold_left (fun w row -> max w (String.length (List.nth row i))) (String.length c) rows)
      columns
  in
  let print_cells cells =
    List.iteri
      (fun i cell -> Printf.printf "%-*s  " (List.nth widths i) cell)
      cells;
    print_newline ()
  in
  print_cells columns;
  print_cells (List.map (fun w -> String.make w '-') widths);
  List.iter print_cells rows

let seconds v = Printf.sprintf "%.2f" v
let megabytes v = Printf.sprintf "%.2f" (mb v)

(* ------------------------------------------------------------------ *)
(* JSON artifacts: one BENCH_<experiment>.json per experiment, holding
   each run's throughput and latency quantiles plus the full lib/obs
   snapshot.  EXPERIMENTS.md ("Telemetry columns") documents the
   format; CI validates it against a schema. *)

module J = Psp_obs.Json

(* nearest-rank percentile over a sorted copy of the samples *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let run_json r =
  let sorted = Array.copy r.r_samples in
  Array.sort compare sorted;
  let sum = Array.fold_left ( +. ) 0.0 r.r_samples in
  let n = Array.length r.r_samples in
  J.Obj
    [ ("label", J.String r.r_label);
      ("queries", J.Int n);
      ("correct", J.Int r.r_correct);
      ("fetches_per_query", J.Int r.r_fetches_per_query);
      ("throughput_qps",
       J.Float (if sum > 0.0 then float_of_int n /. sum else 0.0));
      ("latency_seconds",
       J.Obj
         [ ("mean", J.Float (if n = 0 then nan else sum /. float_of_int n));
           ("p50", J.Float (percentile sorted 0.50));
           ("p95", J.Float (percentile sorted 0.95));
           ("p99", J.Float (percentile sorted 0.99));
           ("min", J.Float (if n = 0 then nan else sorted.(0)));
           ("max", J.Float (if n = 0 then nan else sorted.(n - 1))) ]);
      ("retries", J.Int r.r_retries);
      ("recovery_seconds", J.Float r.r_recovery_seconds);
      ("unavailable", J.Int r.r_unavailable);
      ("executed_slot_touches", J.Int r.r_exec_touches);
      ("level_scans", J.Int r.r_level_scans) ]

let write_bench env ~experiment =
  let path = Printf.sprintf "BENCH_%s.json" experiment in
  let doc =
    J.Obj
      [ ("schema", J.String "psp-bench/1");
        ("experiment", J.String experiment);
        ("scale", J.Float env.scale);
        ("queries_per_workload", J.Int env.queries);
        ("seed", J.Int env.seed);
        ("page_size", J.Int env.page_size);
        ("runs", J.List (List.rev_map run_json !bench_runs));
        ("metrics", Psp_obs.Obs.to_json ()) ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (J.to_string_pretty doc);
      output_char oc '\n');
  path
