#!/usr/bin/env python3
"""Validate a BENCH_<experiment>.json artifact against the psp-bench/1 schema.

Usage: python3 .github/bench-schema.py BENCH_t3.json

Exits non-zero (and prints every violation) when the artifact is
malformed.  Kept as a plain-stdlib script so CI needs no extra
dependencies; the JSON itself is produced by Harness.write_bench and
documented in docs/OBSERVABILITY.md §5.
"""

import json
import sys

LATENCY_KEYS = ("mean", "p50", "p95", "p99", "min", "max")

RUN_INT_KEYS = (
    "queries",
    "correct",
    "fetches_per_query",
    "retries",
    "unavailable",
    "executed_slot_touches",
    "level_scans",
)


def fail(errors):
    for e in errors:
        print(f"bench-schema: {e}", file=sys.stderr)
    sys.exit(1)


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def check_run(i, run, errors):
    where = f"runs[{i}]"
    if not isinstance(run, dict):
        errors.append(f"{where}: not an object")
        return
    label = run.get("label")
    if not isinstance(label, str) or ":" not in label:
        errors.append(f"{where}.label: expected 'SCHEME:network' string, got {label!r}")
    for k in RUN_INT_KEYS:
        if not isinstance(run.get(k), int) or isinstance(run.get(k), bool):
            errors.append(f"{where}.{k}: expected integer, got {run.get(k)!r}")
    if not is_num(run.get("throughput_qps")) or run.get("throughput_qps", -1) < 0:
        errors.append(f"{where}.throughput_qps: expected non-negative number")
    if not is_num(run.get("recovery_seconds")):
        errors.append(f"{where}.recovery_seconds: expected number")
    lat = run.get("latency_seconds")
    if not isinstance(lat, dict):
        errors.append(f"{where}.latency_seconds: expected object")
    else:
        for k in LATENCY_KEYS:
            if not is_num(lat.get(k)):
                errors.append(f"{where}.latency_seconds.{k}: expected number")
        if all(is_num(lat.get(k)) for k in ("min", "p50", "max")):
            if not (lat["min"] <= lat["p50"] <= lat["max"]):
                errors.append(f"{where}.latency_seconds: min <= p50 <= max violated")
    if isinstance(run.get("queries"), int) and isinstance(run.get("correct"), int):
        if run["correct"] > run["queries"]:
            errors.append(f"{where}: correct ({run['correct']}) > queries ({run['queries']})")


def check(doc):
    errors = []
    if doc.get("schema") != "psp-bench/1":
        errors.append(f"schema: expected 'psp-bench/1', got {doc.get('schema')!r}")
    if not isinstance(doc.get("experiment"), str):
        errors.append("experiment: expected string")
    # scale is a down-scaling divisor and may be fractional
    if not is_num(doc.get("scale")) or doc.get("scale", 0) <= 0:
        errors.append(f"scale: expected positive number, got {doc.get('scale')!r}")
    for k in ("queries_per_workload", "seed", "page_size"):
        if not isinstance(doc.get(k), int) or isinstance(doc.get(k), bool):
            errors.append(f"{k}: expected integer, got {doc.get(k)!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        errors.append("runs: expected non-empty array")
    else:
        for i, run in enumerate(runs):
            check_run(i, run, errors)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("metrics: expected object (Obs.to_json snapshot)")
    else:
        for k in ("counters", "histograms", "spans"):
            if k not in metrics:
                errors.append(f"metrics.{k}: missing")
    return errors


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    path = sys.argv[1]
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail([f"{path}: {e}"])
    errors = check(doc)
    if errors:
        fail(errors)
    runs = doc["runs"]
    print(f"bench-schema: {path} ok ({len(runs)} run(s), "
          f"experiment {doc['experiment']}, scale {doc['scale']})")


if __name__ == "__main__":
    main()
