#!/usr/bin/env python3
"""Check relative links and intra-repo anchors in the Markdown docs.

Usage: python3 .github/check-doc-links.py [file.md ...]

With no arguments, checks README.md, DESIGN.md, EXPERIMENTS.md,
CONTRIBUTING.md, ROADMAP.md and docs/*.md.  For every Markdown link
[text](target) whose target is not an absolute URL, the script verifies
that

  * the referenced file (resolved relative to the linking file) exists
    in the working tree, and
  * when the target carries a #fragment, the referenced Markdown file
    has a heading whose GitHub-style slug matches it.

External http(s)/mailto links are skipped (CI must not depend on the
network), as are links inside fenced code blocks.  Exits non-zero and
prints every violation; plain stdlib so CI needs no extra dependencies.
"""

import os
import re
import sys

DEFAULT_FILES = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "CONTRIBUTING.md",
                 "ROADMAP.md"]

LINK_RE = re.compile(r"(?<!\!)\[(?:[^\]\\]|\\.)*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading):
    """GitHub's anchor algorithm: lowercase, drop everything but
    alphanumerics/spaces/hyphens, spaces become hyphens."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = re.sub(r"[*_]", "", text)                      # emphasis markers
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def strip_fenced(lines):
    """Yield lines outside fenced code blocks."""
    in_fence = False
    for line in lines:
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield line


def anchors_of(path, cache={}):
    if path in cache:
        return cache[path]
    slugs = {}
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError:
        cache[path] = None
        return None
    for line in strip_fenced(lines):
        m = HEADING_RE.match(line)
        if m:
            slug = github_slug(m.group(2))
            # duplicate headings get -1, -2, ... suffixes on GitHub
            n = slugs.get(slug, -1) + 1
            slugs[slug] = n
            if n:
                slugs[f"{slug}-{n}"] = 0
    cache[path] = set(slugs)
    return cache[path]


def check_file(md, errors):
    try:
        with open(md, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        errors.append(f"{md}: {e}")
        return
    base = os.path.dirname(md)
    for lineno, line in enumerate(strip_fenced(lines), 1):
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                continue  # http:, https:, mailto:, ...
            path, _, frag = target.partition("#")
            if path:
                resolved = os.path.normpath(os.path.join(base, path))
                if not os.path.exists(resolved):
                    errors.append(f"{md}:{lineno}: broken link {target!r} "
                                  f"({resolved} does not exist)")
                    continue
            else:
                resolved = md  # pure fragment: #section in the same file
            if frag:
                if not resolved.endswith((".md", ".markdown")):
                    continue  # can't check anchors in non-Markdown targets
                anchors = anchors_of(resolved)
                if anchors is not None and frag.lower() not in anchors:
                    errors.append(f"{md}:{lineno}: broken anchor {target!r} "
                                  f"(no heading slugs to #{frag} in {resolved})")


def main():
    files = sys.argv[1:]
    if not files:
        files = [f for f in DEFAULT_FILES if os.path.exists(f)]
        files += sorted(
            os.path.join("docs", f) for f in os.listdir("docs")
            if f.endswith(".md")
        ) if os.path.isdir("docs") else []
    errors = []
    for md in files:
        check_file(md, errors)
    if errors:
        for e in errors:
            print(f"doc-links: {e}", file=sys.stderr)
        sys.exit(1)
    print(f"doc-links: {len(files)} file(s) ok")


if __name__ == "__main__":
    main()
