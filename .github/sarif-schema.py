#!/usr/bin/env python3
"""Validate the psplint SARIF artifact against the SARIF 2.1.0 shape.

Usage: python3 .github/sarif-schema.py _build/default/psplint.sarif

Structural check only — enough to guarantee the code-scanning upload
will parse: version/schema pinning, the run/tool/driver skeleton, the
rule catalog, and for every result a resolvable ruleId/ruleIndex, a
physical location, a partial fingerprint, and well-formed codeFlows.
Kept plain-stdlib so CI needs no extra dependencies.
"""

import json
import sys

EXPECTED_RULES = {
    "secret-branch",
    "secret-length",
    "effectful-call",
    "secret-exception",
    "secret-telemetry",
    "secret-alloc",
    "secret-loop",
    "secret-compare",
    "missing-justification",
    "unanalyzed-module",
    "baseline-drift",
}


def fail(errors):
    for e in errors:
        print(f"sarif-schema: {e}", file=sys.stderr)
    sys.exit(1)


def check_location(where, loc, errors):
    phys = loc.get("physicalLocation") if isinstance(loc, dict) else None
    if not isinstance(phys, dict):
        errors.append(f"{where}: missing physicalLocation")
        return
    art = phys.get("artifactLocation")
    if not isinstance(art, dict) or not isinstance(art.get("uri"), str):
        errors.append(f"{where}.artifactLocation.uri: missing")
    region = phys.get("region")
    if not isinstance(region, dict) or not isinstance(region.get("startLine"), int):
        errors.append(f"{where}.region.startLine: missing")
    elif region["startLine"] < 1:
        errors.append(f"{where}.region.startLine: {region['startLine']} < 1")


def check_result(i, result, rule_ids, errors):
    where = f"results[{i}]"
    if not isinstance(result, dict):
        errors.append(f"{where}: not an object")
        return
    rule_id = result.get("ruleId")
    if rule_id not in rule_ids:
        errors.append(f"{where}.ruleId: {rule_id!r} not in the rule catalog")
    idx = result.get("ruleIndex")
    if not isinstance(idx, int) or not 0 <= idx < len(rule_ids):
        errors.append(f"{where}.ruleIndex: {idx!r} out of range")
    elif rule_ids[idx] != rule_id:
        errors.append(f"{where}.ruleIndex: points at {rule_ids[idx]!r}, not {rule_id!r}")
    msg = result.get("message")
    if not isinstance(msg, dict) or not isinstance(msg.get("text"), str):
        errors.append(f"{where}.message.text: missing")
    locs = result.get("locations")
    if not isinstance(locs, list) or not locs:
        errors.append(f"{where}.locations: missing")
    else:
        check_location(f"{where}.locations[0]", locs[0], errors)
    fps = result.get("partialFingerprints")
    if not isinstance(fps, dict) or not any(k.startswith("psplint/") for k in fps):
        errors.append(f"{where}.partialFingerprints: missing psplint/* key")
    for j, flow in enumerate(result.get("codeFlows", [])):
        tfs = flow.get("threadFlows") if isinstance(flow, dict) else None
        if not isinstance(tfs, list) or not tfs:
            errors.append(f"{where}.codeFlows[{j}].threadFlows: missing")
            continue
        steps = tfs[0].get("locations")
        if not isinstance(steps, list) or len(steps) < 2:
            errors.append(
                f"{where}.codeFlows[{j}]: a chain needs at least two steps"
            )
            continue
        for k, step in enumerate(steps):
            inner = step.get("location") if isinstance(step, dict) else None
            check_location(f"{where}.codeFlows[{j}].steps[{k}]", inner or {}, errors)


def main(path):
    errors = []
    with open(path) as f:
        log = json.load(f)
    if log.get("version") != "2.1.0":
        errors.append(f"version: expected '2.1.0', got {log.get('version')!r}")
    if "sarif-2.1.0" not in str(log.get("$schema", "")):
        errors.append(f"$schema: {log.get('$schema')!r} does not pin sarif-2.1.0")
    runs = log.get("runs")
    if not isinstance(runs, list) or len(runs) != 1:
        fail(errors + [f"runs: expected exactly one run, got {runs!r}"])
    driver = runs[0].get("tool", {}).get("driver", {})
    if driver.get("name") != "psplint":
        errors.append(f"tool.driver.name: expected 'psplint', got {driver.get('name')!r}")
    rules = driver.get("rules", [])
    rule_ids = [r.get("id") for r in rules if isinstance(r, dict)]
    missing = EXPECTED_RULES - set(rule_ids)
    if missing:
        errors.append(f"rule catalog is missing {sorted(missing)}")
    for r in rules:
        if not isinstance(r.get("shortDescription", {}).get("text"), str):
            errors.append(f"rule {r.get('id')!r}: missing shortDescription.text")
    results = runs[0].get("results")
    if not isinstance(results, list):
        errors.append(f"results: expected a list, got {type(results).__name__}")
        results = []
    for i, result in enumerate(results):
        check_result(i, result, rule_ids, errors)
    if errors:
        fail(errors)
    print(f"sarif-schema: OK ({len(results)} result(s), {len(rule_ids)} rule(s))")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
