#!/usr/bin/env python3
"""Gate a BENCH_<experiment>.json artifact against pinned reference values.

Usage: python3 .github/bench-compare.py BENCH_t3.json [more BENCH_*.json ...]

Reads .github/bench-refs.json (schema psp-bench-refs/1) and, for every
run label pinned there under the artifact's experiment, checks that the
smoke run did not regress:

  - latency (p95 and mean) must stay within the tolerance band:
      measured <= ref * (1 + latency_rel) + latency_abs
    The band absorbs the measured client-CPU share of the response
    decomposition (milliseconds of machine noise on top of the
    deterministic simulated seconds) — anything past it is a real
    regression in the modeled schedule.
  - unavailable must not exceed the pinned count (availability gate)
  - correct must not fall below the pinned count (answer-quality gate)

A pinned run that is missing from the artifact is an error (a silently
dropped configuration is the regression CI exists to catch).  Runs
present in the artifact but not pinned produce a warning, not a
failure, so adding a configuration does not require touching the refs
in the same commit — pin it in the next one.

Exit codes: 0 ok, 1 regression/malformed input, 2 usage.
Plain stdlib, like the other .github gates.
"""

import json
import os
import sys

REFS_PATH = os.path.join(os.path.dirname(__file__), "bench-refs.json")


def load(path):
    try:
        with open(path, "rb") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench-compare: {path}: {e}", file=sys.stderr)
        sys.exit(1)


def compare(doc, refs, errors, warnings):
    experiment = doc.get("experiment")
    exp_refs = refs.get("experiments", {}).get(experiment)
    if exp_refs is None:
        errors.append(
            f"experiment {experiment!r} has no pinned references in "
            f"{os.path.basename(REFS_PATH)}; run the smoke command locally and pin it"
        )
        return
    tol = refs.get("tolerance", {})
    rel = tol.get("latency_rel", 0.25)
    abs_ = tol.get("latency_abs", 0.5)
    runs = {r.get("label"): r for r in doc.get("runs", [])}
    for label, ref in exp_refs.get("runs", {}).items():
        run = runs.pop(label, None)
        if run is None:
            errors.append(f"{experiment}: pinned run {label!r} missing from artifact")
            continue
        lat = run.get("latency_seconds", {})
        for key in ("p95", "mean"):
            if key not in ref:
                continue
            bound = ref[key] * (1.0 + rel) + abs_
            got = lat.get(key)
            if not isinstance(got, (int, float)) or got > bound:
                errors.append(
                    f"{experiment}/{label}: latency {key} {got} exceeds "
                    f"{bound:.3f} (ref {ref[key]} +{rel * 100:.0f}% +{abs_}s)"
                )
        if "unavailable" in ref and run.get("unavailable", 0) > ref["unavailable"]:
            errors.append(
                f"{experiment}/{label}: {run.get('unavailable')} unavailable "
                f"queries (pinned allows {ref['unavailable']})"
            )
        if "correct" in ref and run.get("correct", 0) < ref["correct"]:
            errors.append(
                f"{experiment}/{label}: only {run.get('correct')} correct "
                f"(pinned floor {ref['correct']})"
            )
    for label in runs:
        warnings.append(f"{experiment}: run {label!r} is not pinned (no gate applied)")


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    refs = load(REFS_PATH)
    if refs.get("schema") != "psp-bench-refs/1":
        print(
            f"bench-compare: {REFS_PATH}: expected schema psp-bench-refs/1, "
            f"got {refs.get('schema')!r}",
            file=sys.stderr,
        )
        sys.exit(1)
    errors, warnings = [], []
    for path in sys.argv[1:]:
        compare(load(path), refs, errors, warnings)
    for w in warnings:
        print(f"bench-compare: warning: {w}", file=sys.stderr)
    if errors:
        for e in errors:
            print(f"bench-compare: REGRESSION: {e}", file=sys.stderr)
        sys.exit(1)
    print(f"bench-compare: {', '.join(sys.argv[1:])} within pinned bounds")


if __name__ == "__main__":
    main()
