(* The observability substrate: histogram bucket geometry, counter
   saturation, span nesting and misnesting, JSON exporter round-trip
   (through an independent mini-parser), and the headline constant-shape
   invariant — two distinct (s, t) queries under the same public plan
   must leave byte-identical metric shapes behind. *)

module Obs = Psp_obs.Obs
module Json = Psp_obs.Json
module DB = Psp_index.Database
module Server = Psp_pir.Server
open Psp_core

(* ------------------------------------------------------------------ *)
(* Histograms *)

let test_bucket_boundaries () =
  let base = 1e-9 in
  Alcotest.(check int) "zero -> bucket 0" 0 (Obs.bucket_of 0.0);
  Alcotest.(check int) "negative -> bucket 0" 0 (Obs.bucket_of (-1.0));
  Alcotest.(check int) "nan -> bucket 0" 0 (Obs.bucket_of nan);
  Alcotest.(check int) "below base -> bucket 0" 0 (Obs.bucket_of (base /. 2.0));
  Alcotest.(check int) "base -> bucket 1" 1 (Obs.bucket_of base);
  Alcotest.(check int) "just below 2*base -> bucket 1" 1
    (Obs.bucket_of (base *. 1.999));
  Alcotest.(check int) "2*base -> bucket 2" 2 (Obs.bucket_of (base *. 2.0));
  Alcotest.(check int) "1 second" (Obs.bucket_of 1.0) 30;
  Alcotest.(check int) "huge -> overflow bucket" 63 (Obs.bucket_of 1e30);
  Alcotest.(check int) "infinity -> overflow bucket" 63 (Obs.bucket_of infinity);
  (* the buckets tile the line: every bound is its own bucket's lower edge *)
  for i = 1 to 62 do
    let lo, hi = Obs.bucket_bounds i in
    Alcotest.(check int) (Printf.sprintf "lower bound of bucket %d" i) i
      (Obs.bucket_of lo);
    Alcotest.(check int)
      (Printf.sprintf "upper bound of bucket %d opens bucket %d" i (i + 1))
      (i + 1) (Obs.bucket_of hi)
  done

let test_histogram_stats () =
  Obs.reset ();
  let h = Obs.histogram "t.hist" in
  Alcotest.(check int) "empty count" 0 (Obs.samples h);
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Obs.quantile h 0.5));
  List.iter (Obs.observe h) [ 0.004; 0.001; 0.002; 0.003; 0.1 ];
  Alcotest.(check int) "count" 5 (Obs.samples h);
  Alcotest.(check (float 1e-12)) "sum" 0.110 (Obs.sum h);
  Alcotest.(check (float 0.0)) "min" 0.001 (Obs.min_value h);
  Alcotest.(check (float 0.0)) "max" 0.1 (Obs.max_value h);
  Alcotest.(check int) "bucket occupancy" 5
    (List.fold_left (fun acc i -> acc + Obs.bucket_count h i) 0
       (List.init 64 Fun.id));
  (* log2 estimate: within a factor of 2 above the true quantile, and
     clamped into the observed range *)
  let p50 = Obs.quantile h 0.5 in
  Alcotest.(check bool) "p50 in (true, 2*true]" true (p50 >= 0.002 && p50 <= 0.008);
  Alcotest.(check (float 0.0)) "p0 clamps to min" 0.001 (Obs.quantile h 0.0);
  Alcotest.(check (float 0.0)) "p100 clamps to max" 0.1 (Obs.quantile h 1.0)

(* ------------------------------------------------------------------ *)
(* Counters *)

let test_counter_overflow () =
  Obs.reset ();
  let c = Obs.counter "t.ctr" in
  Obs.incr c;
  Obs.add c 41;
  Alcotest.(check int) "normal arithmetic" 42 (Obs.count c);
  Obs.add c (max_int - 10);
  Alcotest.(check int) "saturates at max_int" max_int (Obs.count c);
  Obs.incr c;
  Alcotest.(check int) "stays saturated" max_int (Obs.count c);
  Alcotest.check_raises "negative delta rejected"
    (Invalid_argument "Obs.add(t.ctr): negative delta") (fun () -> Obs.add c (-1));
  Alcotest.(check int) "interning returns the same handle" max_int
    (Obs.count (Obs.counter "t.ctr"))

(* ------------------------------------------------------------------ *)
(* Spans *)

let misnest_count () = Obs.count (Obs.counter "obs.span.misnested")

let test_span_nesting () =
  Obs.reset ();
  let ticks = ref 0.0 in
  Obs.set_clock (fun () -> !ticks);
  Fun.protect ~finally:(fun () -> Obs.set_clock Sys.time) @@ fun () ->
  Obs.with_span "query" (fun () ->
      ticks := !ticks +. 1.0;
      Obs.with_span "fetch" (fun () ->
          Alcotest.(check string) "path" "query/fetch" (Obs.current_path ());
          Obs.add_pages 3;
          ticks := !ticks +. 2.0);
      Obs.with_span "fetch" (fun () -> Obs.add_pages 1));
  Alcotest.(check string) "stack unwound" "" (Obs.current_path ());
  (match Obs.span_stats "query/fetch" with
  | None -> Alcotest.fail "no aggregate for query/fetch"
  | Some s ->
      Alcotest.(check int) "two calls" 2 s.Obs.calls;
      Alcotest.(check (float 1e-9)) "inner time" 2.0 s.Obs.seconds;
      Alcotest.(check int) "pages attributed" 4 s.Obs.pages);
  (match Obs.span_stats "query" with
  | None -> Alcotest.fail "no aggregate for query"
  | Some s ->
      Alcotest.(check int) "one call" 1 s.Obs.calls;
      Alcotest.(check (float 1e-9)) "inclusive time" 3.0 s.Obs.seconds;
      Alcotest.(check int) "inclusive pages" 4 s.Obs.pages);
  Alcotest.(check int) "clean nesting" 0 (misnest_count ())

let test_span_misnesting () =
  Obs.reset ();
  (* exiting an outer span force-closes the inner one *)
  let a = Obs.enter "a" in
  let b = Obs.enter "b" in
  Obs.exit a;
  Alcotest.(check int) "inner force-close counted" 1 (misnest_count ());
  Alcotest.(check bool) "inner still aggregated" true (Obs.span_stats "a/b" <> None);
  Alcotest.(check string) "stack empty" "" (Obs.current_path ());
  (* the stale handle is already closed: counted again, no crash *)
  Obs.exit b;
  Alcotest.(check int) "double exit counted" 2 (misnest_count ());
  (* exceptions do not leak open spans *)
  (try Obs.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check string) "protected exit" "" (Obs.current_path ());
  Alcotest.(check int) "exception path is not a misnest" 2 (misnest_count ())

(* ------------------------------------------------------------------ *)
(* JSON exporter round-trip, via an independent mini-parser *)

type json =
  | JNull
  | JBool of bool
  | JNum of float
  | JStr of string
  | JList of json list
  | JObj of (string * json) list

exception Parse of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail m = raise (Parse (Printf.sprintf "%s at %d" m !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let lit word v =
    String.iter expect word;
    v
  in
  let string_body () =
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'f' -> Buffer.add_char buf '\012'
          | Some 'u' ->
              if !pos + 4 >= n then fail "truncated \\u";
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              pos := !pos + 4;
              Buffer.add_char buf (Char.chr (code land 0xFF))
          | _ -> fail "bad escape");
          advance ();
          go ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    expect '"';
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    JNum (float_of_string (String.sub s start (!pos - start)))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); JObj [])
        else
          let rec members acc =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                JObj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); JList [])
        else
          let rec items acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                JList (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
    | Some '"' -> JStr (string_body ())
    | Some 't' -> lit "true" (JBool true)
    | Some 'f' -> lit "false" (JBool false)
    | Some 'n' -> lit "null" JNull
    | _ -> number ()
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | JObj kvs -> (
      match List.assoc_opt k kvs with
      | Some v -> v
      | None -> Alcotest.failf "missing member %S" k)
  | _ -> Alcotest.failf "not an object looking up %S" k

let jnum = function
  | JNum f -> f
  | _ -> Alcotest.fail "expected a number"

let test_json_roundtrip () =
  Obs.reset ();
  let weird = "quote\" slash\\ nl\n tab\t ctl\001" in
  Obs.add (Obs.counter weird) 7;
  Obs.add (Obs.counter "t.pages") 123;
  Obs.set (Obs.gauge "t.ratio") 0.1875;
  let h = Obs.histogram "t.lat" in
  List.iter (Obs.observe h) [ 0.002; 0.004; 0.008 ];
  Obs.with_span "t.span" (fun () -> Obs.add_pages 5);
  (* both renderings must parse and agree *)
  let v = Obs.to_json () in
  let compact = parse_json (Json.to_string v) in
  let pretty = parse_json (Json.to_string_pretty v) in
  Alcotest.(check bool) "pretty/compact agree" true (compact = pretty);
  let counters = member "counters" compact in
  Alcotest.(check (float 0.0)) "escaped name round-trips" 7.0
    (jnum (member weird counters));
  Alcotest.(check (float 0.0)) "counter value" 123.0
    (jnum (member "t.pages" counters));
  Alcotest.(check (float 0.0)) "gauge value" 0.1875
    (jnum (member "t.ratio" (member "gauges" compact)));
  let hist = member "t.lat" (member "histograms" compact) in
  Alcotest.(check (float 0.0)) "hist count" 3.0 (jnum (member "count" hist));
  Alcotest.(check (float 1e-18)) "hist sum exact through %.17g" 0.014
    (jnum (member "sum" hist));
  let span = member "t.span" (member "spans" compact) in
  Alcotest.(check (float 0.0)) "span calls" 1.0 (jnum (member "calls" span));
  Alcotest.(check (float 0.0)) "span pages" 5.0 (jnum (member "pages" span))

(* ------------------------------------------------------------------ *)
(* Constant shape: two distinct (s, t) queries, same public plan, must
   produce byte-identical metric shapes.  Fresh server per query so ORAM
   reshuffle cadence starts from the same state. *)

let key = Psp_crypto.Sha256.digest_string "obs tests"
let cost = Psp_pir.Cost_model.ibm4764
let page_size = 256

let g =
  Psp_netgen.Synthetic.generate
    { Psp_netgen.Synthetic.nodes = 150;
      edges = 150 + (150 / 8);
      width = 1000.0;
      height = 1000.0;
      seed = 23 }

let shape_of_query db (s, t) =
  let server = Server.create ~cost ~key (DB.files db) in
  Obs.reset ();
  let r = Client.query_nodes server g s t in
  ignore r.Client.path;
  Obs.shape ()

let test_constant_shape () =
  let queries = Psp_netgen.Synthetic.random_queries g ~count:2 ~seed:7 in
  let q1 = queries.(0) and q2 = queries.(1) in
  Alcotest.(check bool) "distinct queries" true (q1 <> q2);
  List.iter
    (fun (name, db) ->
      let s1 = shape_of_query db q1 and s2 = shape_of_query db q2 in
      Alcotest.(check bool)
        (name ^ ": shape is non-trivial")
        true
        (String.length s1 > 0);
      Alcotest.(check string) (name ^ ": shapes byte-identical") s1 s2)
    [ ("CI", DB.build_ci ~page_size g);
      ("PI", DB.build_pi ~page_size g);
      ("HY", DB.build_hy ~threshold:5 ~page_size g) ]

let () =
  Alcotest.run "obs"
    [ ( "histogram",
        [ Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "stats & quantiles" `Quick test_histogram_stats ] );
      ( "counter",
        [ Alcotest.test_case "saturation" `Quick test_counter_overflow ] );
      ( "span",
        [ Alcotest.test_case "nesting & attribution" `Quick test_span_nesting;
          Alcotest.test_case "misnesting" `Quick test_span_misnesting ] );
      ( "export",
        [ Alcotest.test_case "json round-trip" `Quick test_json_roundtrip ] );
      ( "constant-shape",
        [ Alcotest.test_case "same plan, same shape" `Quick test_constant_shape ] )
    ]
