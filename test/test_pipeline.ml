(* The effects-based pipelined executor (lib/async) and the scheduler's
   Pipelined policy.  The load-bearing claims: (1) the executor's
   modeled timeline follows the two-resource recurrence and degenerates
   to the synchronous schedule at depth 1; (2) pipelining changes ONLY
   wall-clock instants — per-member traces, answers, batch sequences
   and the telemetry shape are byte-identical across depths, under
   fault schedules too; (3) the overlap is worth something: at width >=
   4 the pipelined schedule strictly beats the synchronous one on mean
   response for a back-to-back workload (the bench acceptance bar,
   pinned here). *)

module DB = Psp_index.Database
module Server = Psp_pir.Server
module Session = Psp_pir.Server.Session
module CM = Psp_pir.Cost_model
module F = Psp_fault.Fault
module Workload = Psp_netgen.Workload
module Scheduler = Psp_serve.Scheduler
module Queue = Psp_serve.Queue
module Pipeline = Psp_async.Pipeline
module Obs = Psp_obs.Obs
open Psp_core

let key = Psp_crypto.Sha256.digest_string "pipeline tests"
let cost = CM.ibm4764
let page_size = 256

let g =
  Psp_netgen.Synthetic.generate
    { Psp_netgen.Synthetic.nodes = 120;
      edges = 135;
      width = 1000.0;
      height = 1000.0;
      seed = 5 }

let queries = Psp_netgen.Synthetic.random_queries g ~count:32 ~seed:9

let databases =
  lazy [ ("ci", DB.build_ci ~page_size g); ("pi", DB.build_pi ~page_size g) ]

let server_of db = Server.create ~cost ~key (DB.files db)

let tenants () =
  List.map
    (fun (name, db) -> { Scheduler.name; server = server_of db; graph = g })
    (Lazy.force databases)

let close a b = Float.abs (a -. b) < 1e-9

(* Interned up front so shape snapshots cannot differ by when a test
   first touched this counter. *)
let c_misnested = Obs.counter "obs.span.misnested"
let trace_of (r : Client.result) = Psp_pir.Trace.fingerprint r.Client.stats.Session.trace

(* ------------------------------------------------------------------ *)
(* Executor unit tests: synthetic fibers with known phase costs *)

let fiber log i ~fetch ~decode () =
  log := Printf.sprintf "f%d" i :: !log;
  Pipeline.yield (Pipeline.Fetch fetch);
  Pipeline.yield (Pipeline.Decode decode);
  Pipeline.release ();
  log := Printf.sprintf "t%d" i :: !log;
  i

let test_timeline_depth2 () =
  let p = Pipeline.create ~depth:2 () in
  let log = ref [] in
  let jobs =
    List.map
      (fun i -> Pipeline.submit p ~ready:0.0 (fiber log i ~fetch:10.0 ~decode:4.0))
      [ 0; 1; 2 ]
  in
  Pipeline.drain p;
  (match jobs with
  | [ j0; j1; j2 ] ->
      (* s_i = max(ready, e_(i-1), c_(i-2)); e = s + F; c = e + D *)
      List.iter
        (fun (label, got, want) ->
          Alcotest.(check bool) label true (close got want))
        [ ("s0", Pipeline.started_at j0, 0.0);
          ("e0", Pipeline.fetch_finished_at j0, 10.0);
          ("c0", Pipeline.completed_at j0, 14.0);
          ("s1 = e0 (server serial)", Pipeline.started_at j1, 10.0);
          ("c1", Pipeline.completed_at j1, 24.0);
          ("s2 = max(e1, c0)", Pipeline.started_at j2, 20.0);
          ("c2", Pipeline.completed_at j2, 34.0);
          (* job1's fetch [10,20] covers job0's decode [10,14] entirely *)
          ("overlap0", Pipeline.overlap_seconds j0, 4.0);
          ("overlap1", Pipeline.overlap_seconds j1, 4.0);
          ("overlap2 (nothing behind it)", Pipeline.overlap_seconds j2, 0.0);
          ("makespan", Pipeline.makespan p, 34.0) ];
      List.iteri
        (fun i j -> Alcotest.(check (option int)) "result" (Some i) (Pipeline.result j))
        [ j0; j1; j2 ]
  | _ -> assert false);
  (* real execution order: both fiber heads run before the first parked
     tail is forced by window pressure *)
  Alcotest.(check (list string)) "interleaved real order"
    [ "f0"; "f1"; "t0"; "f2"; "t1"; "t2" ]
    (List.rev !log)

let test_timeline_depth1_is_synchronous () =
  let p = Pipeline.create ~depth:1 () in
  let log = ref [] in
  let jobs =
    List.map
      (fun i -> Pipeline.submit p ~ready:0.0 (fiber log i ~fetch:10.0 ~decode:4.0))
      [ 0; 1; 2 ]
  in
  Pipeline.drain p;
  List.iteri
    (fun i j ->
      Alcotest.(check bool)
        (Printf.sprintf "s%d = i * (F + D)" i)
        true
        (close (Pipeline.started_at j) (float_of_int i *. 14.0));
      Alcotest.(check bool) "no overlap at depth 1" true
        (close (Pipeline.overlap_seconds j) 0.0))
    jobs;
  Alcotest.(check (list string)) "strictly sequential real order"
    [ "f0"; "t0"; "f1"; "t1"; "f2"; "t2" ]
    (List.rev !log)

let test_ready_and_window_gates () =
  let p = Pipeline.create ~depth:2 () in
  let log = ref [] in
  (* late arrival: the server idles until ready *)
  let j0 = Pipeline.submit p ~ready:5.0 (fiber log 0 ~fetch:2.0 ~decode:100.0) in
  let j1 = Pipeline.submit p ~ready:5.0 (fiber log 1 ~fetch:2.0 ~decode:1.0) in
  (* window gate: job2 may not start before c0 = 107 even though the
     server is free at e1 = 9 *)
  let j2 = Pipeline.submit p ~ready:5.0 (fiber log 2 ~fetch:2.0 ~decode:1.0) in
  Pipeline.drain p;
  Alcotest.(check bool) "s0 waits for ready" true (close (Pipeline.started_at j0) 5.0);
  Alcotest.(check bool) "s1 = e0" true (close (Pipeline.started_at j1) 7.0);
  Alcotest.(check bool) "s2 gated by c0" true
    (close (Pipeline.started_at j2) (Pipeline.completed_at j0));
  Alcotest.(check bool) "in-flight drained" true (Pipeline.in_flight p = 0)

let test_executor_misc () =
  (match Pipeline.create ~depth:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "depth 0 must be rejected");
  let p = Pipeline.create () in
  Alcotest.(check int) "default depth" 2 (Pipeline.depth p);
  (* a fiber that never releases finishes in its first slice *)
  let j = Pipeline.submit p ~ready:0.0 (fun () -> 42) in
  Alcotest.(check (option int)) "immediate result" (Some 42) (Pipeline.result j);
  Alcotest.(check int) "await is idempotent" 42 (Pipeline.await p j);
  (* exceptions inside the fiber propagate at submit *)
  (match Pipeline.submit p ~ready:0.0 (fun () -> failwith "boom") with
  | exception Failure m -> Alcotest.(check string) "fiber exn" "boom" m
  | _ -> Alcotest.fail "expected the fiber's exception");
  (* parked result is invisible until the tail runs *)
  let j2 =
    Pipeline.submit p ~ready:0.0 (fun () ->
        Pipeline.yield (Pipeline.Fetch 1.0);
        Pipeline.release ();
        7)
  in
  Alcotest.(check (option int)) "parked" None (Pipeline.result j2);
  Alcotest.(check int) "await forces the tail" 7 (Pipeline.await p j2)

(* Fibers run on their own span stacks: the telemetry shape of an
   interleaved (depth 2) execution equals the synchronous (depth 1)
   one, and parked time is not attributed to a fiber's open spans. *)
let test_obs_context_isolation () =
  let spanning_fiber i () =
    Obs.with_span "job" (fun () ->
        Obs.with_span "fetch" (fun () -> Pipeline.yield (Pipeline.Fetch 1.0));
        Pipeline.release ();
        Obs.with_span "tail" (fun () -> i))
  in
  let shape_at depth =
    Obs.reset ();
    let p = Pipeline.create ~depth () in
    let jobs = List.map (fun i -> Pipeline.submit p ~ready:0.0 (spanning_fiber i)) [ 0; 1; 2 ] in
    Pipeline.drain p;
    List.iteri
      (fun i j -> Alcotest.(check (option int)) "value" (Some i) (Pipeline.result j))
      jobs;
    let shape = Obs.shape () in
    Alcotest.(check int) "no misnesting" 0 (Obs.count c_misnested);
    (match Obs.span_stats "job/tail" with
    | Some st -> Alcotest.(check int) "tail calls" 3 st.Obs.calls
    | None -> Alcotest.fail "span job/tail missing");
    shape
  in
  let s1 = shape_at 1 in
  let s2 = shape_at 2 in
  let s4 = shape_at 4 in
  Alcotest.(check string) "shape depth 2 = depth 1" s1 s2;
  Alcotest.(check string) "shape depth 4 = depth 1" s1 s4

(* ------------------------------------------------------------------ *)
(* Cost model: the decode phase and the overlap estimate *)

let test_cost_model_decode () =
  Alcotest.(check bool) "decode_seconds = bytes / rate" true
    (close (CM.decode_seconds cost ~bytes:200_000) (200_000.0 /. cost.CM.client_decode_rate));
  Alcotest.(check bool) "zero bytes" true (close (CM.decode_seconds cost ~bytes:0) 0.0);
  (match CM.decode_seconds cost ~bytes:(-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative bytes must be rejected");
  Alcotest.(check bool) "depth 1 = fetch + decode" true
    (close (CM.pipelined_response_seconds ~fetch:10.0 ~decode:4.0 ~depth:1) 14.0);
  Alcotest.(check bool) "deep pipeline floors at the fetch bound" true
    (close (CM.pipelined_response_seconds ~fetch:10.0 ~decode:4.0 ~depth:1000) 10.0);
  Alcotest.(check bool) "depth 2" true
    (close (CM.pipelined_response_seconds ~fetch:10.0 ~decode:4.0 ~depth:2) 10.0);
  Alcotest.(check bool) "decode-bound depth 2" true
    (close (CM.pipelined_response_seconds ~fetch:2.0 ~decode:10.0 ~depth:2) 6.0);
  (match CM.pipelined_response_seconds ~fetch:1.0 ~decode:1.0 ~depth:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "depth 0 must be rejected")

let test_response_time_decode () =
  let t = Response_time.with_decode ~seconds:2.5 Response_time.zero in
  Alcotest.(check bool) "decode component counted in total" true
    (close (Response_time.total t) 2.5);
  Alcotest.(check bool) "add sums decode" true
    (close (Response_time.add t t).Response_time.decode_seconds 5.0);
  Alcotest.(check bool) "scale scales decode" true
    (close (Response_time.scale 2.0 t).Response_time.decode_seconds 5.0);
  (match Response_time.with_decode ~seconds:(-1.0) Response_time.zero with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative decode must be rejected")

(* ------------------------------------------------------------------ *)
(* Scheduler equivalence: pipelining changes instants, nothing else *)

let mixed_jobs ?(count = 6) ?(off = 0) ~seed () =
  let pairs n o = Array.init n (fun i -> queries.((o + i) mod Array.length queries)) in
  let arrivals =
    Workload.arrivals (Workload.Bursts { period = 400.0; mean_size = 3 }) ~count ~seed
  in
  Scheduler.mix
    [ ("ci", pairs count off, arrivals); ("pi", pairs count (off + 8), arrivals) ]

let pipelined_cfg depth =
  { Scheduler.min_width = 1;
    max_width = 8;
    slo = 400.0;
    policy = Scheduler.Pipelined { width = 4; depth } }

let run_at_depth ?off ~seed depth =
  (* force the lazy database builds before the telemetry snapshot, so
     the first run's shape does not carry the one-time build I/O *)
  ignore (Lazy.force databases);
  Obs.reset ();
  let jobs = mixed_jobs ?off ~seed () in
  let report = Scheduler.run (pipelined_cfg depth) ~tenants:(tenants ()) ~jobs in
  (report, Obs.shape ())

let observables (report : Scheduler.report) =
  ( Array.to_list
      (Array.map
         (fun (s : Scheduler.served) ->
           Printf.sprintf "%s[%d] %s path=%s" s.Scheduler.job.Queue.tenant
             s.Scheduler.job.Queue.index
             (trace_of s.Scheduler.result)
             (match s.Scheduler.result.Client.path with
             | Some (p, c) ->
                 Printf.sprintf "%s/%.6f" (String.concat "," (List.map string_of_int p)) c
             | None -> "-"))
         report.Scheduler.served),
    List.map
      (fun (b : Scheduler.batch_record) ->
        Printf.sprintf "%s w=%d t=%.6f" b.Scheduler.b_tenant b.Scheduler.b_width
          b.Scheduler.b_dispatched)
      report.Scheduler.batches )

let test_depth_invariance () =
  let base, shape1 = run_at_depth ~seed:3 1 in
  let traces1, batches1 = observables base in
  List.iter
    (fun depth ->
      let report, shape = run_at_depth ~seed:3 depth in
      let traces, batches = observables report in
      Alcotest.(check (list string))
        (Printf.sprintf "depth %d: per-member traces and answers = synchronous" depth)
        traces1 traces;
      Alcotest.(check (list string))
        (Printf.sprintf "depth %d: batch sequence = synchronous" depth)
        batches1 batches;
      Alcotest.(check string)
        (Printf.sprintf "depth %d: telemetry shape = synchronous" depth)
        shape1 shape)
    [ 2; 4 ]

(* The server-visible fetch sequence is the concatenation of batch
   traces in dispatch order; with the batch sequence and per-member
   traces equal across depths it is equal too.  This asserts the
   executed-store side of the same fact: the oblivious store performed
   exactly the same physical work under every depth. *)
let test_executed_work_depth_invariant () =
  let work depth =
    (* pyramid-mode servers: the executed-work odometers live in the
       oblivious store, which the default (simulated-only) mode skips *)
    let tns =
      List.map
        (fun (name, db) ->
          { Scheduler.name;
            server = Server.create ~mode:`Pyramid ~cost ~key (DB.files db);
            graph = g })
        (Lazy.force databases)
    in
    let jobs = mixed_jobs ~seed:23 () in
    let _ = Scheduler.run (pipelined_cfg depth) ~tenants:tns ~jobs in
    List.map
      (fun tn ->
        ( Server.executed_slot_touches tn.Scheduler.server,
          Server.executed_level_scans tn.Scheduler.server ))
      tns
  in
  let w1 = work 1 in
  Alcotest.(check bool) "some executed work" true
    (List.exists (fun (t, _) -> t > 0) w1);
  List.iter
    (fun depth ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "slot touches and level scans at depth %d" depth)
        w1 (work depth))
    [ 2; 4 ]

(* 32-seed fault sweep: under a replayed recoverable fault schedule,
   the synchronous (depth 1) and pipelined (depth 4) runs must agree on
   everything the LBS and the client can see — the faults land on the
   same retrievals of the same members — and batch members stay
   mutually indistinguishable. *)
let test_fault_sweep_depth_invariant () =
  for seed = 0 to 31 do
    let rng = Psp_util.Rng.create (0xa5fc + seed) in
    let pick n = 1 + Psp_util.Rng.int rng n in
    let arms =
      List.filteri
        (fun i _ -> i = seed mod 2 || Psp_util.Rng.int rng 2 = 0)
        [ ("pir.fetch.transient", F.Hits [ pick 6; 6 + pick 6 ]);
          ("pir.fetch.corrupt", F.Hits [ pick 10 ]) ]
    in
    List.iter (fun (p, s) -> F.arm p s) arms;
    Fun.protect ~finally:F.reset (fun () ->
        let run depth =
          F.rewind ();
          let report, _ = run_at_depth ~seed depth in
          let by_batch = Hashtbl.create 8 in
          Array.iter
            (fun (s : Scheduler.served) ->
              let k = (s.Scheduler.job.Queue.tenant, s.Scheduler.dispatched) in
              Hashtbl.replace by_batch k
                (s.Scheduler.result.Client.stats.Session.trace
                :: Option.value ~default:[] (Hashtbl.find_opt by_batch k)))
            report.Scheduler.served;
          Hashtbl.iter
            (fun (tenant, _) traces ->
              match Privacy.indistinguishable traces with
              | Ok () -> ()
              | Error e ->
                  Alcotest.fail
                    (Printf.sprintf "seed %d depth %d: %s batch members leak: %s"
                       seed depth tenant e))
            by_batch;
          let retries =
            Array.to_list
              (Array.map
                 (fun (s : Scheduler.served) ->
                   s.Scheduler.result.Client.stats.Session.retries)
                 report.Scheduler.served)
          in
          let traces, batches = observables report in
          (traces, batches, retries)
        in
        let t1, b1, r1 = run 1 and t4, b4, r4 = run 4 in
        Alcotest.(check (list string))
          (Printf.sprintf "seed %d: faulted traces identical across depths" seed)
          t1 t4;
        Alcotest.(check (list string))
          (Printf.sprintf "seed %d: faulted batch sequence identical" seed)
          b1 b4;
        Alcotest.(check (list int))
          (Printf.sprintf "seed %d: faults hit the same members" seed)
          r1 r4)
  done

(* ------------------------------------------------------------------ *)
(* The acceptance bar (also measured by bench --experiment pipeline):
   for a back-to-back burst at width >= 4, overlapping decode with the
   next batch's fetch strictly improves mean response over the
   synchronous schedule, and the modeled latencies never get worse. *)

let latencies ~width ~depth =
  let count = 16 in
  let pairs = Array.init count (fun i -> queries.(i mod Array.length queries)) in
  let arrivals = Array.make count 0.0 in
  let jobs = Scheduler.mix [ ("ci", pairs, arrivals) ] in
  let db = List.assoc "ci" (Lazy.force databases) in
  let cfg =
    { Scheduler.min_width = 1;
      max_width = 16;
      slo = 400.0;
      policy = Scheduler.Pipelined { width; depth } }
  in
  let report =
    Scheduler.run cfg
      ~tenants:[ { Scheduler.name = "ci"; server = server_of db; graph = g } ]
      ~jobs
  in
  Array.map (fun (s : Scheduler.served) -> s.Scheduler.latency) report.Scheduler.served

let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let test_pipelined_beats_sync () =
  List.iter
    (fun width ->
      let sync = latencies ~width ~depth:1 in
      let piped = latencies ~width ~depth:2 in
      Alcotest.(check int) "same job count" (Array.length sync) (Array.length piped);
      Array.iteri
        (fun i p ->
          Alcotest.(check bool)
            (Printf.sprintf "width %d: job %d never slower pipelined" width i)
            true
            (p <= sync.(i) +. 1e-9))
        piped;
      Alcotest.(check bool)
        (Printf.sprintf "width %d: pipelined mean %.3fs < sync mean %.3fs" width
           (mean piped) (mean sync))
        true
        (mean piped < mean sync))
    [ 4; 8 ]

let test_config_validation () =
  let jobs = mixed_jobs ~count:2 ~seed:7 () in
  List.iter
    (fun policy ->
      let cfg = { Scheduler.min_width = 1; max_width = 8; slo = 60.0; policy } in
      match Scheduler.run cfg ~tenants:(tenants ()) ~jobs with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "invalid pipelined config must be rejected")
    [ Scheduler.Pipelined { width = 0; depth = 2 };
      Scheduler.Pipelined { width = 4; depth = 0 } ]

let () =
  Alcotest.run "pipeline"
    [ ( "executor",
        [ Alcotest.test_case "depth-2 timeline and overlap" `Quick test_timeline_depth2;
          Alcotest.test_case "depth 1 is synchronous" `Quick
            test_timeline_depth1_is_synchronous;
          Alcotest.test_case "ready and window gates" `Quick test_ready_and_window_gates;
          Alcotest.test_case "lifecycle, await, errors" `Quick test_executor_misc;
          Alcotest.test_case "span-context isolation" `Quick test_obs_context_isolation ] );
      ( "model",
        [ Alcotest.test_case "decode and overlap estimates" `Quick test_cost_model_decode;
          Alcotest.test_case "response-time decode component" `Quick
            test_response_time_decode ] );
      ( "equivalence",
        [ Alcotest.test_case "traces/batches/shape across depths 1-2-4" `Slow
            test_depth_invariance;
          Alcotest.test_case "executed store work depth-invariant" `Slow
            test_executed_work_depth_invariant;
          Alcotest.test_case "32-seed fault sweep across depths" `Slow
            test_fault_sweep_depth_invariant;
          Alcotest.test_case "config validation" `Quick test_config_validation ] );
      ( "speedup",
        [ Alcotest.test_case "pipelined beats sync at width 4 and 8" `Slow
            test_pipelined_beats_sync ] ) ]
